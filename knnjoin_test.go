package knnjoin

import (
	"math"
	"testing"
	"testing/quick"

	"knnjoin/internal/dataset"
)

func forest(n int, seed int64) []Object { return dataset.Forest(n, seed) }

// assertAgree checks two result sets match by distance multiset per row.
func assertAgree(t *testing.T, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].RID != want[i].RID {
			t.Fatalf("row %d RID %d, want %d", i, got[i].RID, want[i].RID)
		}
		if len(got[i].Neighbors) != len(want[i].Neighbors) {
			t.Fatalf("r %d: %d neighbors, want %d", got[i].RID, len(got[i].Neighbors), len(want[i].Neighbors))
		}
		for j := range want[i].Neighbors {
			if math.Abs(got[i].Neighbors[j].Dist-want[i].Neighbors[j].Dist) > 1e-9 {
				t.Fatalf("r %d nb %d dist %v, want %v", got[i].RID, j,
					got[i].Neighbors[j].Dist, want[i].Neighbors[j].Dist)
			}
		}
	}
}

// The headline integration test: all five algorithms agree on the same
// data.
func TestAllAlgorithmsAgree(t *testing.T) {
	objs := forest(600, 1)
	want, _, err := Join(objs, objs, Options{K: 5, Algorithm: BruteForce})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{PGBJ, PBJ, HBRJ, Broadcast, Theta} {
		got, st, err := Join(objs, objs, Options{K: 5, Algorithm: alg, Nodes: 9, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		assertAgree(t, got, want)
		if st.Pairs <= 0 || st.RSize != 600 || st.SSize != 600 || st.Dims != 10 {
			t.Fatalf("%v: implausible stats %+v", alg, st)
		}
	}
}

func TestZKNNApproximateButPlausible(t *testing.T) {
	objs := dataset.Uniform(1200, 3, 100, 20)
	exact, _, err := SelfJoin(objs, Options{K: 5, Algorithm: BruteForce})
	if err != nil {
		t.Fatal(err)
	}
	approx, st, err := SelfJoin(objs, Options{K: 5, Algorithm: ZKNN, Nodes: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Algorithm != "H-zkNNJ" {
		t.Fatalf("algorithm = %q", st.Algorithm)
	}
	if len(approx) != len(exact) {
		t.Fatalf("rows = %d, want %d", len(approx), len(exact))
	}
	// Recall must be high on regular data; exact equality is not required.
	hits, total := 0, 0
	for i := range exact {
		want := make(map[int64]bool)
		for _, nb := range exact[i].Neighbors {
			want[nb.ID] = true
		}
		for _, nb := range approx[i].Neighbors {
			total++
			if want[nb.ID] {
				hits++
			}
		}
	}
	if recall := float64(hits) / float64(total); recall < 0.85 {
		t.Fatalf("recall = %.3f, want ≥ 0.85", recall)
	}
	// ZKNN rejects non-Euclidean metrics explicitly.
	if _, _, err := SelfJoin(objs, Options{K: 5, Algorithm: ZKNN, Metric: L1}); err == nil {
		t.Fatal("ZKNN with L1 accepted")
	}
}

func TestLSHApproximateButPlausible(t *testing.T) {
	objs := dataset.Uniform(1200, 3, 100, 21)
	exact, _, err := SelfJoin(objs, Options{K: 5, Algorithm: BruteForce})
	if err != nil {
		t.Fatal(err)
	}
	approx, st, err := SelfJoin(objs, Options{K: 5, Algorithm: LSH, Nodes: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Algorithm != "RankReduce" {
		t.Fatalf("algorithm = %q", st.Algorithm)
	}
	if len(approx) != len(exact) {
		t.Fatalf("rows = %d, want %d", len(approx), len(exact))
	}
	hits, total := 0, 0
	for i := range exact {
		want := make(map[int64]bool)
		for _, nb := range exact[i].Neighbors {
			want[nb.ID] = true
		}
		total += len(exact[i].Neighbors)
		for _, nb := range approx[i].Neighbors {
			if want[nb.ID] {
				hits++
			}
		}
	}
	if recall := float64(hits) / float64(total); recall < 0.6 {
		t.Fatalf("recall = %.3f, want ≥ 0.6 with default tables", recall)
	}
	if _, _, err := SelfJoin(objs, Options{K: 5, Algorithm: LSH, Metric: LInf}); err == nil {
		t.Fatal("LSH with L∞ accepted")
	}
}

func TestClosestPairsAPI(t *testing.T) {
	r := dataset.Uniform(300, 3, 100, 22)
	s := dataset.Uniform(400, 3, 100, 23)
	pairs, st, err := ClosestPairs(r, s, PairOptions{K: 15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 15 {
		t.Fatalf("got %d pairs, want 15", len(pairs))
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i].Dist < pairs[i-1].Dist {
			t.Fatal("pairs not ascending")
		}
	}
	if st.Dims != 3 || st.RSize != 300 || st.SSize != 400 {
		t.Fatalf("implausible stats %+v", st)
	}

	// Self-join with both filters: no self pairs, one orientation only.
	selfPairs, _, err := ClosestPairs(r, r, PairOptions{K: 10, ExcludeSelf: true, Unordered: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range selfPairs {
		if p.RID >= p.SID {
			t.Fatalf("filters violated: %+v", p)
		}
	}

	if _, _, err := ClosestPairs(r, s, PairOptions{}); err == nil {
		t.Error("K=0 accepted")
	}
	if got, _, err := ClosestPairs(nil, s, PairOptions{K: 3}); err != nil || len(got) != 0 {
		t.Errorf("empty R: %v, %v", got, err)
	}
	bad := []Object{{ID: 0, Point: Point{1}}}
	if _, _, err := ClosestPairs(bad, s, PairOptions{K: 3}); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestJoinAsymmetric(t *testing.T) {
	r := dataset.Uniform(200, 3, 100, 2)
	s := dataset.Uniform(300, 3, 100, 3)
	want, _, _ := Join(r, s, Options{K: 4, Algorithm: BruteForce})
	got, _, err := Join(r, s, Options{K: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertAgree(t, got, want)
}

func TestJoinValidation(t *testing.T) {
	objs := forest(10, 4)
	if _, _, err := Join(objs, objs, Options{}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, _, err := Join(objs, objs, Options{K: -1}); err == nil {
		t.Error("negative K accepted")
	}
	if _, _, err := Join(objs, objs, Options{K: 2, Algorithm: Algorithm(42)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestJoinRejectsMixedDimensions(t *testing.T) {
	r := []Object{{ID: 0, Point: Point{1, 2}}, {ID: 1, Point: Point{1, 2, 3}}}
	if _, _, err := Join(r, r[:1], Options{K: 1}); err == nil {
		t.Error("mixed dims in R accepted")
	}
	r2 := []Object{{ID: 0, Point: Point{1, 2}}}
	s2 := []Object{{ID: 1, Point: Point{1}}}
	if _, _, err := Join(r2, s2, Options{K: 1}); err == nil {
		t.Error("R/S dim mismatch accepted")
	}
}

func TestJoinDeterministicPerSeed(t *testing.T) {
	objs := dataset.OSM(300, 10)
	a, _, err := SelfJoin(objs, Options{K: 4, Seed: 9, Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := SelfJoin(objs, Options{K: 4, Seed: 9, Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].RID != b[i].RID || len(a[i].Neighbors) != len(b[i].Neighbors) {
			t.Fatal("same seed produced different shapes")
		}
		for j := range a[i].Neighbors {
			if a[i].Neighbors[j] != b[i].Neighbors[j] {
				t.Fatalf("same seed produced different neighbors at r=%d", a[i].RID)
			}
		}
	}
}

func TestJoinEmptyR(t *testing.T) {
	s := forest(10, 5)
	got, st, err := Join(nil, s, Options{K: 3})
	if err != nil || len(got) != 0 || st == nil {
		t.Fatalf("empty R: got=%v st=%v err=%v", got, st, err)
	}
}

func TestJoinDefaultsApplied(t *testing.T) {
	objs := dataset.Uniform(100, 2, 10, 6)
	_, st, err := Join(objs, objs, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Nodes != 4 {
		t.Fatalf("default Nodes = %d, want 4", st.Nodes)
	}
}

func TestSelfJoinNearestIsSelf(t *testing.T) {
	objs := dataset.Uniform(80, 2, 100, 7)
	got, _, err := SelfJoin(objs, Options{K: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range got {
		if res.Neighbors[0].Dist != 0 {
			t.Fatalf("r %d nearest dist %v, want 0", res.RID, res.Neighbors[0].Dist)
		}
	}
}

func TestExcludeSelf(t *testing.T) {
	objs := dataset.Uniform(80, 2, 100, 8)
	got, _, err := SelfJoin(objs, Options{K: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	got = ExcludeSelf(got)
	for _, res := range got {
		if len(res.Neighbors) != 3 {
			t.Fatalf("r %d has %d neighbors after ExcludeSelf, want 3", res.RID, len(res.Neighbors))
		}
		for _, nb := range res.Neighbors {
			if nb.ID == res.RID {
				t.Fatalf("r %d still contains itself", res.RID)
			}
		}
	}
}

func TestExcludeSelfNoMatch(t *testing.T) {
	rs := []Result{{RID: 1, Neighbors: []Neighbor{{ID: 2, Dist: 1}}}}
	got := ExcludeSelf(rs)
	if len(got[0].Neighbors) != 1 {
		t.Fatal("ExcludeSelf removed a non-self neighbor")
	}
}

func TestParseAlgorithm(t *testing.T) {
	cases := map[string]Algorithm{
		"pgbj": PGBJ, "": PGBJ, "PBJ": PBJ, "h-brj": HBRJ, "hbrj": HBRJ,
		"broadcast": Broadcast, "basic": Broadcast, "brute": BruteForce, "exact": BruteForce,
		"zknn": ZKNN, "theta": Theta, "1-bucket-theta": Theta, "lsh": LSH, "rankreduce": LSH,
	}
	for in, want := range cases {
		got, err := ParseAlgorithm(in)
		if err != nil || got != want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseAlgorithm("quantum"); err == nil {
		t.Error("unknown algorithm accepted")
	}
	for _, a := range []Algorithm{PGBJ, PBJ, HBRJ, Broadcast, BruteForce, ZKNN, Theta, LSH} {
		if a.String() == "" {
			t.Error("empty algorithm name")
		}
		back, err := ParseAlgorithm(a.String())
		if err != nil || back != a {
			t.Errorf("round trip %v → %q → %v, err %v", a, a.String(), back, err)
		}
	}
}

func TestJoinStatsMeaningful(t *testing.T) {
	objs := forest(1000, 9)
	_, st, err := SelfJoin(objs, Options{K: 10, Nodes: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st.Selectivity() <= 0 || st.Selectivity() > 1.01 {
		t.Fatalf("selectivity %v out of range", st.Selectivity())
	}
	if st.ShuffleBytes <= 0 || st.ReplicasS <= 0 {
		t.Fatalf("missing shuffle accounting: %+v", st)
	}
	if st.AvgReplication() < 1 {
		// Every S object must reach at least the reducer handling its own
		// cell's group, since distance 0 candidates live there.
		t.Fatalf("avg replication %v < 1", st.AvgReplication())
	}
	if got := st.TotalWall(); got <= 0 {
		t.Fatalf("no wall time recorded: %v", got)
	}
}

// Property: PGBJ agrees with brute force on random little workloads of
// every shape (dims, k, node counts).
func TestJoinAgreementQuick(t *testing.T) {
	f := func(seed int64, dimRaw, kRaw, nodesRaw uint8) bool {
		dim := int(dimRaw)%5 + 1
		k := int(kRaw)%7 + 1
		nodes := int(nodesRaw)%6 + 1
		objs := dataset.Uniform(120, dim, 100, seed)
		want, _, err := Join(objs, objs, Options{K: k, Algorithm: BruteForce})
		if err != nil {
			return false
		}
		got, _, err := Join(objs, objs, Options{K: k, Nodes: nodes, Seed: seed})
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].RID != want[i].RID || len(got[i].Neighbors) != len(want[i].Neighbors) {
				return false
			}
			for j := range want[i].Neighbors {
				if math.Abs(got[i].Neighbors[j].Dist-want[i].Neighbors[j].Dist) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
