// Choosing an approximate join: H-zkNNJ vs RankReduce-LSH.
//
// The paper restricts its evaluation to exact methods (§7); this example
// is the practical counterpart for users who can trade recall for speed.
// It runs both approximate joins on the same two workloads — low-
// dimensional skewed spatial data and 10-d CoverType-like data — and
// prints recall against the exact join next to the computation cost, so
// the decision rule is visible in the output:
//
//   - 2-d: the z-order curve keeps 31 bits per dimension and H-zkNNJ's
//     recall is near-perfect at a fraction of LSH's cost;
//   - 10-d: the curve is down to 6 bits per dimension, z-locality
//     collapses, and LSH's random projections win decisively.
//
// Run with: go run ./examples/approx
package main

import (
	"fmt"
	"log"

	"knnjoin"
	"knnjoin/internal/dataset"
	"knnjoin/internal/zknn"
)

const k = 10

func main() {
	for _, workload := range []struct {
		name string
		objs []knnjoin.Object
	}{
		{"OSM-like 2-d (8000 points)", dataset.OSM(8000, 1)},
		{"CoverType-like 10-d (8000 points)", dataset.Forest(8000, 2)},
	} {
		fmt.Printf("%s:\n", workload.name)
		exact, exactStats, err := knnjoin.SelfJoin(workload.objs, knnjoin.Options{K: k, Nodes: 8, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s recall 1.000  %8.1f‰ selectivity  (PGBJ, the exact reference)\n",
			"exact", exactStats.Selectivity()*1000)

		for _, alg := range []knnjoin.Algorithm{knnjoin.ZKNN, knnjoin.LSH} {
			approx, st, err := knnjoin.SelfJoin(workload.objs, knnjoin.Options{
				K: k, Algorithm: alg, Nodes: 8, Seed: 1,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-12s recall %.3f  %8.1f‰ selectivity\n",
				alg.String(), zknn.Recall(approx, exact), st.Selectivity()*1000)
		}
		fmt.Println()
	}
	fmt.Println("rule of thumb: z-order below ~4 dimensions, LSH above — or PGBJ, which is")
	fmt.Println("exact and often competitive once its pruning bites (see EXPERIMENTS.md).")
}
