// Distributed k-medoids clustering built on the kNN join — the paper's
// other §1 clustering application ("k-means and k-medoids clustering").
//
// k-medoids constrains centers to actual data objects, which makes it
// robust to outliers that drag k-means centroids away. This example runs
// CLARA-style k-medoids: PAM swaps on a driver-side sample pick
// candidate medoids, and the expensive full-data step — assigning every
// object to its nearest medoid and scoring the configuration — is a
// distributed 1-NN join of the dataset against the medoid set.
//
// The data is blob-structured with a handful of extreme, mutually
// distant outliers — each too far from every other to share a medoid,
// so claiming one would cost more (two blobs merging) than it saves.
// That is exactly the regime where the two objectives diverge: the
// robust medoids ignore the outliers, the means absorb them. The contrast at the end is the point of the example: the
// mean of each recovered cluster — what a k-means update would produce —
// is dragged tens of units off the true centers by the outliers, while
// the medoids stay on them, because medoids must be data objects and the
// absolute-distance objective is robust.
//
// Run with: go run ./examples/kmedoids
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"knnjoin"
	"knnjoin/internal/vector"
)

const (
	numPoints   = 12000
	numOutliers = 4
	numClusters = 5
	dims        = 3
	sampleSize  = 400
	maxSwaps    = 200
)

func main() {
	points, trueCenters := contaminatedBlobs(numPoints, numClusters, dims, 17)

	// --- PAM on a driver-side sample (the CLARA trick) -----------------
	rng := rand.New(rand.NewSource(3))
	sample := make([]knnjoin.Object, sampleSize)
	for i := range sample {
		sample[i] = points[rng.Intn(len(points))]
	}
	medoids := pamSample(sample, numClusters, rng)

	// --- Full-data assignment: a distributed 1-NN join -----------------
	medoidObjs := make([]knnjoin.Object, len(medoids))
	for i, m := range medoids {
		medoidObjs[i] = knnjoin.Object{ID: int64(i), Point: m}
	}
	results, st, err := knnjoin.Join(points, medoidObjs, knnjoin.Options{K: 1, Nodes: 8, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	sizes := make([]int, numClusters)
	means := make([]knnjoin.Point, numClusters)
	for i := range means {
		means[i] = make(knnjoin.Point, dims)
	}
	byID := make(map[int64]knnjoin.Point, len(points))
	for _, o := range points {
		byID[o.ID] = o.Point
	}
	var cost float64
	for _, res := range results {
		c := res.Neighbors[0].ID
		sizes[c]++
		cost += res.Neighbors[0].Dist
		for d, v := range byID[res.RID] {
			means[c][d] += v
		}
	}
	for i := range means {
		for d := range means[i] {
			means[i][d] /= float64(sizes[i])
		}
	}

	fmt.Printf("k-medoids over %d points (%d extreme planted outliers):\n", len(points), numOutliers)
	var worstMedoid, worstMean float64
	for i, m := range medoids {
		md := nearestCenterDist(m, trueCenters)
		cd := nearestCenterDist(means[i], trueCenters)
		if md > worstMedoid {
			worstMedoid = md
		}
		if cd > worstMean {
			worstMean = cd
		}
		fmt.Printf("  cluster %d: %5d points | medoid off true center by %5.2f | its mean (k-means update) off by %6.2f\n",
			i, sizes[i], md, cd)
	}
	fmt.Printf("total absolute cost: %.0f\n\n", cost)
	fmt.Printf("worst medoid deviation: %.2f vs worst mean deviation: %.2f (blob sigma is 4.0)\n",
		worstMedoid, worstMean)
	fmt.Printf("assignment join: %v wall, %.2f‰ selectivity\n", st.TotalWall(), st.Selectivity()*1000)
}

// pamSample runs PAM build + swap on the sample: greedy seeding, then
// first-improvement swaps until no swap helps or the budget runs out.
func pamSample(sample []knnjoin.Object, k int, rng *rand.Rand) []knnjoin.Point {
	medoids := make([]int, k)
	for i := range medoids {
		medoids[i] = rng.Intn(len(sample))
	}
	cost := func(meds []int) float64 {
		var total float64
		for _, o := range sample {
			best := math.Inf(1)
			for _, m := range meds {
				if d := vector.Dist(o.Point, sample[m].Point); d < best {
					best = d
				}
			}
			total += best
		}
		return total
	}
	cur := cost(medoids)
	for swap := 0; swap < maxSwaps; swap++ {
		improved := false
		for mi := range medoids {
			for ci := range sample {
				old := medoids[mi]
				if ci == old {
					continue
				}
				medoids[mi] = ci
				if c := cost(medoids); c < cur {
					cur = c
					improved = true
					break
				}
				medoids[mi] = old
			}
			if improved {
				break
			}
		}
		if !improved {
			break
		}
	}
	out := make([]knnjoin.Point, k)
	for i, m := range medoids {
		out[i] = sample[m].Point.Clone()
	}
	return out
}

// contaminatedBlobs generates k Gaussian blobs plus numOutliers extreme
// points placed in alternating far corners, so no two outliers are close
// enough to share a medoid profitably.
func contaminatedBlobs(n, k, dims int, seed int64) ([]knnjoin.Object, []knnjoin.Point) {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]knnjoin.Point, k)
	for i := range centers {
		c := make(knnjoin.Point, dims)
		for d := range c {
			c[d] = rng.Float64() * 100
		}
		centers[i] = c
	}
	objs := make([]knnjoin.Object, n)
	for i := range objs {
		p := make(knnjoin.Point, dims)
		if i < numOutliers {
			for d := range p {
				sign := float64(1)
				if (i>>d)&1 == 1 {
					sign = -1
				}
				p[d] = sign * (40000 + float64(i)*5000)
			}
		} else {
			c := centers[rng.Intn(k)]
			for d := range p {
				p[d] = c[d] + rng.NormFloat64()*4
			}
		}
		objs[i] = knnjoin.Object{ID: int64(i), Point: p}
	}
	return objs, centers
}

func nearestCenterDist(p knnjoin.Point, centers []knnjoin.Point) float64 {
	best := math.Inf(1)
	for _, c := range centers {
		if d := vector.Dist(p, c); d < best {
			best = d
		}
	}
	return best
}
