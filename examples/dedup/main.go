// Near-duplicate detection with the set-similarity join (Vernica et al.,
// the paper's reference [16]).
//
// A catalog of shingled documents is self-joined at Jaccard ≥ 0.8: pairs
// above the threshold are near-duplicates (here, planted copies with a
// few tokens edited). The three-stage prefix-filter pipeline verifies a
// tiny sliver of the cross product, and the run is gated against a
// brute-force scan so the output you read is provably complete.
//
// This is the §7 technique the paper notes cannot answer kNN joins —
// included to show the same MapReduce engine hosting a structurally
// different join.
//
// Run with: go run ./examples/dedup
package main

import (
	"fmt"
	"log"
	"math/rand"

	"knnjoin/internal/dfs"
	"knnjoin/internal/mapreduce"
	"knnjoin/internal/setsim"
)

const (
	catalog   = 6000
	planted   = 40
	threshold = 0.8
)

func main() {
	rng := rand.New(rand.NewSource(11))
	records := setsim.Baskets(catalog, 4000, 20, 40, 0, 7)
	// Plant near-duplicates: copies of random records with two tokens
	// replaced (Jaccard ≥ (n-2)/(n+2) ≥ 0.82 at n ≥ 20).
	plantedPairs := make(map[[2]int64]bool, planted)
	for i := 0; i < planted; i++ {
		src := records[rng.Intn(catalog)]
		toks := append([]int32(nil), src.Tokens...)
		toks[0] = int32(100000 + 2*i)
		toks[1] = int32(100001 + 2*i)
		dup := setsim.Record{ID: int64(len(records)), Tokens: toks}
		records = append(records, dup)
		plantedPairs[[2]int64{src.ID, dup.ID}] = true
	}

	fs := dfs.New(0)
	cluster := mapreduce.NewCluster(fs, 8)
	setsim.ToDFS(fs, "catalog", records)
	pairs, st, err := setsim.Run(cluster, "catalog", "dups", setsim.Options{Threshold: threshold})
	if err != nil {
		log.Fatal(err)
	}

	found := 0
	for _, p := range pairs {
		if plantedPairs[[2]int64{p.A, p.B}] {
			found++
		}
	}
	cross := float64(len(records)) * float64(len(records)-1) / 2
	fmt.Printf("catalog: %d documents, %d planted near-duplicates\n", len(records), planted)
	fmt.Printf("join found %d pairs at Jaccard ≥ %.1f, recovering %d/%d planted\n",
		len(pairs), threshold, found, planted)
	fmt.Printf("verified only %.2f‰ of the %.0f-pair cross product (%v wall)\n",
		float64(st.Pairs)/cross*1000, cross, st.TotalWall())

	// The gate: brute force agrees.
	want := setsim.BruteForce(records, threshold)
	if len(want) != len(pairs) {
		log.Fatalf("EXACTNESS VIOLATED: join found %d pairs, brute force %d", len(pairs), len(want))
	}
	fmt.Println("brute-force gate: exact ✓")
}
