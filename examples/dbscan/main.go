// DBSCAN clustering on top of a distributed range join.
//
// DBSCAN's expensive step is finding every point's ε-neighborhood — a
// range self-join, which this repository runs with the paper's PGBJ
// pipeline (Voronoi partitioning, grouping, Corollary-2 replica routing)
// using the fixed radius ε in place of the derived kNN bound. With all
// neighborhoods in hand, the clustering itself is a cheap BFS over core
// points.
//
// The example builds two crescent-shaped clusters plus background noise,
// clusters them, and reports cluster sizes and noise — the standard
// workload k-means gets wrong and DBSCAN gets right.
//
// Run with: go run ./examples/dbscan
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"knnjoin"
	"knnjoin/internal/vector"
)

const (
	eps    = 0.18 // neighborhood radius
	minPts = 6    // core-point threshold (incl. the point itself)
)

func main() {
	objs := twoMoons(1500, 60, 42)

	// The ε-neighborhoods of all points in one distributed range join.
	results, st, err := knnjoin.RangeJoin(objs, objs, knnjoin.RangeOptions{
		Radius: eps, Nodes: 8, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	neighborhood := make(map[int64][]int64, len(results))
	for _, res := range results {
		ids := make([]int64, len(res.Neighbors))
		for i, nb := range res.Neighbors {
			ids[i] = nb.ID
		}
		neighborhood[res.RID] = ids
	}

	// Classic DBSCAN over the precomputed neighborhoods.
	const (
		unvisited = 0
		noise     = -1
	)
	label := make(map[int64]int, len(objs))
	clusterID := 0
	for _, o := range objs {
		if label[o.ID] != unvisited {
			continue
		}
		if len(neighborhood[o.ID]) < minPts {
			label[o.ID] = noise
			continue
		}
		clusterID++
		label[o.ID] = clusterID
		queue := append([]int64(nil), neighborhood[o.ID]...)
		for len(queue) > 0 {
			q := queue[0]
			queue = queue[1:]
			if label[q] == noise {
				label[q] = clusterID // border point, reachable from a core
			}
			if label[q] != unvisited {
				continue
			}
			label[q] = clusterID
			if len(neighborhood[q]) >= minPts {
				queue = append(queue, neighborhood[q]...)
			}
		}
	}

	sizes := make(map[int]int)
	for _, o := range objs {
		sizes[label[o.ID]]++
	}
	fmt.Printf("DBSCAN(eps=%.2f, minPts=%d) over %d points:\n", eps, minPts, len(objs))
	for c := 1; c <= clusterID; c++ {
		fmt.Printf("  cluster %d: %d points\n", c, sizes[c])
	}
	fmt.Printf("  noise: %d points\n\n", sizes[noise])
	fmt.Printf("range-join cost: %v wall, %.2f‰ selectivity, %.2f avg replication of S\n",
		st.TotalWall(), st.Selectivity()*1000, st.AvgReplication())
}

// twoMoons generates the interleaved-crescents dataset: n points per
// moon plus background noise points over the bounding box.
func twoMoons(n, noisePts int, seed int64) []knnjoin.Object {
	rng := rand.New(rand.NewSource(seed))
	var objs []knnjoin.Object
	id := int64(0)
	add := func(x, y float64) {
		objs = append(objs, knnjoin.Object{ID: id, Point: vector.Point{x, y}})
		id++
	}
	jitter := func() float64 { return rng.NormFloat64() * 0.05 }
	for i := 0; i < n; i++ {
		t := math.Pi * rng.Float64()
		add(math.Cos(t)+jitter(), math.Sin(t)+jitter())       // upper moon
		add(1-math.Cos(t)+jitter(), 0.5-math.Sin(t)+jitter()) // lower moon
	}
	for i := 0; i < noisePts; i++ {
		add(rng.Float64()*3-1, rng.Float64()*2.5-1)
	}
	return objs
}
