// Quickstart: the smallest useful kNN join.
//
// Generates two small point clouds, joins them with the default algorithm
// (PGBJ on a 4-node simulated cluster), and prints the first few result
// rows plus the run's cost report.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"knnjoin"
	"knnjoin/internal/dataset"
)

func main() {
	// R: 1,000 query points. S: 5,000 data points. Both 4-dimensional.
	r := dataset.Uniform(1000, 4, 100, 1)
	s := dataset.Uniform(5000, 4, 100, 2)

	results, st, err := knnjoin.Join(r, s, knnjoin.Options{K: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("first three result rows:")
	for _, res := range results[:3] {
		fmt.Printf("  r=%d:", res.RID)
		for _, nb := range res.Neighbors {
			fmt.Printf("  (s=%d, d=%.2f)", nb.ID, nb.Dist)
		}
		fmt.Println()
	}

	fmt.Println("\ncost report:")
	fmt.Printf("  %s\n", st)
	for _, p := range st.Phases {
		fmt.Printf("  %-20s %v\n", p.Name, p.Wall)
	}
	fmt.Printf("\nselectivity: %.2f per thousand of the %d×%d cross product\n",
		st.Selectivity()*1000, st.RSize, st.SSize)
	fmt.Printf("each S object was shipped to %.2f reducers on average\n", st.AvgReplication())
}
