// Geospatial nearest-service lookup over OSM-like data — the workload
// behind the paper's OpenStreetMap evaluation (Figure 9).
//
// R holds 20,000 "customer" locations, S holds 60,000 "service point"
// locations, both drawn from the same skewed city-cluster distribution.
// The example answers "the 5 nearest service points for every customer"
// with each distributed algorithm and compares their shuffle and
// computation costs on identical results.
//
// Run with: go run ./examples/geospatial
package main

import (
	"fmt"
	"log"

	"knnjoin"
	"knnjoin/internal/dataset"
	"knnjoin/internal/stats"
)

func main() {
	customers := dataset.OSM(20000, 7)
	services := dataset.OSM(60000, 8)

	fmt.Printf("%d customers × %d service points, k=5, 9 nodes\n\n", len(customers), len(services))
	fmt.Printf("%-10s  %-12s  %-14s  %-12s  %-12s\n", "algo", "wall", "selectivity ‰", "shuffle", "S replicas")

	var sample []knnjoin.Result
	for _, alg := range []knnjoin.Algorithm{knnjoin.PGBJ, knnjoin.PBJ, knnjoin.HBRJ} {
		results, st, err := knnjoin.Join(customers, services, knnjoin.Options{
			K: 5, Algorithm: alg, Nodes: 9, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		if sample == nil {
			sample = results
		}
		fmt.Printf("%-10s  %-12v  %-14.3f  %-12s  %.2f×\n",
			alg, st.TotalWall().Round(1e6), st.Selectivity()*1000,
			stats.FormatBytes(st.ShuffleBytes), st.AvgReplication())
	}

	fmt.Println("\nsample answers (customer → nearest services):")
	for _, res := range sample[:3] {
		c := customers[res.RID]
		fmt.Printf("  customer %d at (%.3f, %.3f):\n", res.RID, c.Point[0], c.Point[1])
		for _, nb := range res.Neighbors {
			fmt.Printf("    service %-6d %.4f° away\n", nb.ID, nb.Dist)
		}
	}
}
