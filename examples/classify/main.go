// kNN classification via a single kNN join — the batch-scoring pattern
// that motivates kNN joins in data mining pipelines (§1): instead of one
// kNN query per test object, one join classifies the whole test set.
//
// The example generates a labeled 6-dimensional mixture (five classes),
// splits it into train/test, joins test against train with k=7, and
// classifies each test object by majority vote over its neighbors.
//
// Run with: go run ./examples/classify
package main

import (
	"fmt"
	"log"
	"math/rand"

	"knnjoin"
)

const (
	classes  = 5
	dims     = 6
	trainN   = 12000
	testN    = 2000
	k        = 7
	spread   = 6.0
	sepScale = 40.0
)

// genLabeled draws points from `classes` Gaussian blobs and returns the
// objects plus their true labels indexed by object ID.
func genLabeled(n int, seed int64, idBase int64) ([]knnjoin.Object, map[int64]int) {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, classes)
	cRng := rand.New(rand.NewSource(99)) // shared centers across calls
	for c := range centers {
		centers[c] = make([]float64, dims)
		for d := range centers[c] {
			centers[c][d] = cRng.Float64() * sepScale
		}
	}
	objs := make([]knnjoin.Object, n)
	labels := make(map[int64]int, n)
	for i := range objs {
		c := rng.Intn(classes)
		p := make(knnjoin.Point, dims)
		for d := range p {
			p[d] = centers[c][d] + rng.NormFloat64()*spread
		}
		id := idBase + int64(i)
		objs[i] = knnjoin.Object{ID: id, Point: p}
		labels[id] = c
	}
	return objs, labels
}

func main() {
	train, trainLabels := genLabeled(trainN, 1, 0)
	test, testLabels := genLabeled(testN, 2, trainN)

	results, st, err := knnjoin.Join(test, train, knnjoin.Options{K: k, Nodes: 8, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	correct := 0
	confusion := make([][]int, classes)
	for i := range confusion {
		confusion[i] = make([]int, classes)
	}
	for _, res := range results {
		votes := make([]int, classes)
		for _, nb := range res.Neighbors {
			votes[trainLabels[nb.ID]]++
		}
		pred, best := 0, -1
		for c, v := range votes {
			if v > best {
				pred, best = c, v
			}
		}
		truth := testLabels[res.RID]
		confusion[truth][pred]++
		if pred == truth {
			correct++
		}
	}

	fmt.Printf("classified %d test objects against %d training objects (k=%d)\n",
		len(test), len(train), k)
	fmt.Printf("accuracy: %.1f%%\n\n", 100*float64(correct)/float64(len(test)))
	fmt.Println("confusion matrix (rows = truth, cols = predicted):")
	for truth, row := range confusion {
		fmt.Printf("  class %d: %v\n", truth, row)
	}
	fmt.Printf("\njoin cost: %v wall, %.2f‰ selectivity, %s shuffled\n",
		st.TotalWall().Round(1e6), st.Selectivity()*1000, fmtBytes(st.ShuffleBytes))
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
