// Outlier detection with a kNN self-join — one of the paper's motivating
// applications (§1 cites distance-based outliers, Knorr & Ng, VLDB'98).
//
// An object's outlier score is the distance to its k-th nearest neighbor:
// points in dense regions score low, isolated points score high. A kNN
// self-join computes every object's score in one pass. This example
// plants 10 far-away objects in a CoverType-like dataset and shows the
// join-based detector ranks exactly those highest.
//
// Run with: go run ./examples/outlier
package main

import (
	"fmt"
	"log"
	"sort"

	"knnjoin"
	"knnjoin/internal/dataset"
)

func main() {
	const (
		n       = 8000
		planted = 10
		k       = 6 // the join asks for k+1 and drops the self-match
	)
	objs := dataset.Forest(n, 42)
	// Plant outliers: push the terrain attributes far outside their range.
	for i := 0; i < planted; i++ {
		o := &objs[i*700]
		for d := 0; d < 6; d++ {
			o.Point[d] += 50000 + float64(i*1000)
		}
	}

	results, st, err := knnjoin.SelfJoin(objs, knnjoin.Options{K: k + 1, Nodes: 8, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	results = knnjoin.ExcludeSelf(results)

	type scored struct {
		id    int64
		score float64
	}
	scores := make([]scored, len(results))
	for i, res := range results {
		scores[i] = scored{res.RID, res.Neighbors[len(res.Neighbors)-1].Dist}
	}
	sort.Slice(scores, func(i, j int) bool { return scores[i].score > scores[j].score })

	fmt.Printf("top %d outliers by distance to %d-th neighbor:\n", planted, k)
	plantedHit := 0
	for _, s := range scores[:planted] {
		isPlanted := s.id%700 == 0 && s.id < planted*700
		if isPlanted {
			plantedHit++
		}
		fmt.Printf("  object %-6d score %10.1f planted=%v\n", s.id, s.score, isPlanted)
	}
	fmt.Printf("\nrecovered %d/%d planted outliers\n", plantedHit, planted)
	fmt.Printf("join cost: %v wall, %.2f‰ selectivity\n", st.TotalWall(), st.Selectivity()*1000)
}
