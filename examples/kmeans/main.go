// Distributed k-means clustering built on the kNN join — the paper's
// first motivating application (§1: "k-means and k-medoids clustering").
//
// Lloyd's assignment step is exactly a 1-NN join of the points against
// the current centroids: Join(points, centroids, K=1). Each iteration
// runs the assignment as a distributed join, recomputes centroids, and
// stops when assignments are stable. On blob-structured data the
// recovered centroids land on the generating centers.
//
// Run with: go run ./examples/kmeans
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"knnjoin"
)

const (
	numPoints   = 15000
	numClusters = 6
	dims        = 4
	maxIters    = 20
)

func main() {
	points, trueCenters := blobs(numPoints, numClusters, dims, 11)

	// Initialize centroids from random points (seeded for determinism).
	rng := rand.New(rand.NewSource(5))
	centroids := make([]knnjoin.Point, numClusters)
	for i := range centroids {
		centroids[i] = points[rng.Intn(len(points))].Point.Clone()
	}

	assign := make([]int, len(points))
	for iter := 1; iter <= maxIters; iter++ {
		// Assignment step: 1-NN join points ⋉ centroids.
		centroidObjs := make([]knnjoin.Object, numClusters)
		for i, c := range centroids {
			centroidObjs[i] = knnjoin.Object{ID: int64(i), Point: c}
		}
		results, st, err := knnjoin.Join(points, centroidObjs, knnjoin.Options{
			K: 1, Nodes: 6, Seed: int64(iter),
		})
		if err != nil {
			log.Fatal(err)
		}

		changed := 0
		for i, res := range results {
			c := int(res.Neighbors[0].ID)
			if assign[i] != c {
				assign[i] = c
				changed++
			}
		}
		// Update step: new centroids are cluster means.
		sums := make([]knnjoin.Point, numClusters)
		counts := make([]int, numClusters)
		for i := range sums {
			sums[i] = make(knnjoin.Point, dims)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d, v := range p.Point {
				sums[c][d] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue
			}
			for d := range sums[c] {
				sums[c][d] /= float64(counts[c])
			}
			centroids[c] = sums[c]
		}
		fmt.Printf("iter %2d: %5d reassignments, join wall %v\n", iter, changed, st.TotalWall().Round(1e6))
		if changed == 0 {
			break
		}
	}

	// Match recovered centroids to generating centers (greedy nearest).
	fmt.Println("\nrecovered centroids vs generating centers:")
	used := make([]bool, numClusters)
	var totalErr float64
	for _, c := range centroids {
		best, bestD := -1, math.Inf(1)
		for i, tc := range trueCenters {
			if used[i] {
				continue
			}
			if d := dist(c, tc); d < bestD {
				best, bestD = i, d
			}
		}
		used[best] = true
		totalErr += bestD
		fmt.Printf("  centroid → center %d, off by %.2f\n", best, bestD)
	}
	fmt.Printf("mean centroid error: %.2f (cluster σ is 4.0)\n", totalErr/numClusters)
}

// blobs draws n points from k Gaussian blobs and returns them with the
// generating centers.
func blobs(n, k, dims int, seed int64) ([]knnjoin.Object, []knnjoin.Point) {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]knnjoin.Point, k)
	for i := range centers {
		centers[i] = make(knnjoin.Point, dims)
		for d := range centers[i] {
			centers[i][d] = rng.Float64() * 100
		}
	}
	points := make([]knnjoin.Object, n)
	for i := range points {
		c := centers[rng.Intn(k)]
		p := make(knnjoin.Point, dims)
		for d := range p {
			p[d] = c[d] + rng.NormFloat64()*4
		}
		points[i] = knnjoin.Object{ID: int64(i), Point: p}
	}
	return points, centers
}

func dist(a, b knnjoin.Point) float64 {
	var s float64
	for d := range a {
		diff := a[d] - b[d]
		s += diff * diff
	}
	return math.Sqrt(s)
}
