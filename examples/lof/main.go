// Density-based outlier detection with LOF over a distributed kNN join —
// the paper's §1 motivating application through Breunig et al. (ref [5]).
//
// The plain k-distance score (see examples/outlier) fails on data with
// mixed densities: everything in a sparse region outranks a point
// sitting suspiciously just outside a dense cluster. LOF fixes that by
// scoring each object against its *local* density. This example builds a
// city-like map (a dense downtown, a sparse suburb) from the OSM-like
// generator, plants anomalies beside the dense cluster, and shows LOF
// ranks the planted points first while the sparse suburb stays inlier —
// then shows the k-distance score getting the same data wrong.
//
// Run with: go run ./examples/lof
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"knnjoin"
	"knnjoin/internal/vector"
)

func main() {
	const (
		downtown = 4000 // dense cluster size
		suburb   = 400  // sparse cluster size
		planted  = 6
		minPts   = 10
	)
	rng := rand.New(rand.NewSource(7))
	var objs []knnjoin.Object
	id := int64(0)
	add := func(x, y float64) {
		objs = append(objs, knnjoin.Object{ID: id, Point: vector.Point{x, y}})
		id++
	}
	// Downtown: tight Gaussian blob, ~0.01° spread.
	for i := 0; i < downtown; i++ {
		add(103.85+rng.NormFloat64()*0.01, 1.29+rng.NormFloat64()*0.01)
	}
	// Suburb: the same shape stretched 20×, so its absolute k-distances
	// dwarf downtown's. Draws are truncated at 2σ so the suburb has no
	// natural outliers of its own — the planted ones should be the only
	// anomalies on the map.
	trunc := func(sigma float64) float64 {
		for {
			if v := rng.NormFloat64(); v > -2 && v < 2 {
				return v * sigma
			}
		}
	}
	for i := 0; i < suburb; i++ {
		add(104.5+trunc(0.2), 1.5+trunc(0.2))
	}
	// Planted anomalies: scattered a short hop off downtown in different
	// directions — nothing by suburb standards, glaring by downtown
	// standards.
	plantedIDs := make(map[int64]bool, planted)
	for i := 0; i < planted; i++ {
		plantedIDs[id] = true
		angle := 2 * math.Pi * float64(i) / planted
		add(103.85+0.06*math.Cos(angle), 1.29+0.06*math.Sin(angle))
	}

	scores, st, err := knnjoin.LOF(objs, minPts, knnjoin.Options{Nodes: 8, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("top %d by LOF (minPts=%d):\n", planted, minPts)
	lofHits := 0
	for _, s := range scores[:planted] {
		if plantedIDs[s.ID] {
			lofHits++
		}
		fmt.Printf("  object %-6d LOF %6.2f planted=%v\n", s.ID, s.LOF, plantedIDs[s.ID])
	}
	fmt.Printf("LOF recovered %d/%d planted anomalies\n\n", lofHits, planted)

	// The same detection with the plain k-distance score, for contrast.
	results, _, err := knnjoin.SelfJoin(objs, knnjoin.Options{K: minPts + 1, Nodes: 8, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	results = knnjoin.ExcludeSelf(results)
	type scored struct {
		id    int64
		kdist float64
	}
	kd := make([]scored, len(results))
	for i, res := range results {
		kd[i] = scored{res.RID, res.Neighbors[len(res.Neighbors)-1].Dist}
	}
	sort.Slice(kd, func(i, j int) bool { return kd[i].kdist > kd[j].kdist })
	kdHits := 0
	for _, s := range kd[:planted] {
		if plantedIDs[s.id] {
			kdHits++
		}
	}
	fmt.Printf("k-distance score recovered %d/%d (sparse suburb drowns the signal)\n\n", kdHits, planted)
	fmt.Printf("join cost: %v wall, %.2f‰ selectivity, shuffle %d records\n",
		st.TotalWall(), st.Selectivity()*1000, st.ShuffleRecords)
}
