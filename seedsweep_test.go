package knnjoin

import (
	"testing"

	"knnjoin/internal/dataset"
)

// Seed-sweep equivalence: the exact distributed algorithms must match
// BruteForce on every seed — both the data seed (different point clouds)
// and the algorithm seed (different pivots for PGBJ/PBJ) vary, so the
// sweep covers distinct Voronoi partitionings, groupings and block
// layouts flowing through the streaming shuffle.
func TestSeedSweepExactAlgorithmsMatchBruteForce(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is not short")
	}
	for seed := int64(1); seed <= 4; seed++ {
		r := dataset.Uniform(420, 4, 100, 10*seed)
		s := dataset.Uniform(500, 4, 100, 10*seed+1)
		want, _, err := Join(r, s, Options{K: 4, Algorithm: BruteForce})
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range []Algorithm{PGBJ, PBJ, HBRJ} {
			got, st, err := Join(r, s, Options{K: 4, Algorithm: alg, Nodes: 6, Seed: seed})
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, alg, err)
			}
			assertAgree(t, got, want)
			if st.ShuffleBytes <= 0 || st.ShuffleRecords <= 0 {
				t.Fatalf("seed %d %v: no shuffle accounted: %+v", seed, alg, st)
			}
		}
	}
}

// Cross-run determinism through the new shuffle: the same seed must give
// byte-identical neighbor lists (ids and distances, not just distances).
func TestJoinRepeatableWithinSeed(t *testing.T) {
	objs := forest(400, 3)
	for _, alg := range []Algorithm{PGBJ, HBRJ, Broadcast} {
		first, _, err := SelfJoin(objs, Options{K: 3, Algorithm: alg, Nodes: 5, Seed: 7})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		second, _, err := SelfJoin(objs, Options{K: 3, Algorithm: alg, Nodes: 5, Seed: 7})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(first) != len(second) {
			t.Fatalf("%v: result size changed across runs", alg)
		}
		for i := range first {
			if first[i].RID != second[i].RID || len(first[i].Neighbors) != len(second[i].Neighbors) {
				t.Fatalf("%v: row %d differs across runs", alg, i)
			}
			for j := range first[i].Neighbors {
				if first[i].Neighbors[j] != second[i].Neighbors[j] {
					t.Fatalf("%v: r %d neighbor %d differs across runs: %+v vs %+v",
						alg, first[i].RID, j, first[i].Neighbors[j], second[i].Neighbors[j])
				}
			}
		}
	}
}
