package knnjoin

import (
	"testing"

	"knnjoin/internal/dataset"
)

var allKernels = []Kernel{KernelBlock, KernelScalar, KernelF32, KernelQuantized, KernelAuto}

// Every kernel tier must produce byte-identical join output: the f32 and
// quantized tiers only filter — survivors are re-ranked with the exact
// float64 kernel — so even the last distance bit must agree with the
// default block tier, for every algorithm that owns a reduce-side scan.
func TestKernelTiersIdenticalJoins(t *testing.T) {
	objs := forest(500, 3)
	for _, alg := range []Algorithm{PGBJ, PBJ, Broadcast, Theta, LSH} {
		base := Options{K: 5, Algorithm: alg, Nodes: 9, Seed: 1}
		want, _, err := SelfJoin(objs, base)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		for _, kern := range allKernels {
			opts := base
			opts.Kernel = kern
			got, _, err := SelfJoin(objs, opts)
			if err != nil {
				t.Fatalf("%v/%v: %v", alg, kern, err)
			}
			assertIdentical(t, kern.String(), got, want)
		}
	}
}

// Same contract for the θ-range join.
func TestKernelTiersIdenticalRangeJoin(t *testing.T) {
	objs := dataset.Uniform(700, 4, 50, 7)
	base := RangeOptions{Radius: 8, Nodes: 4, Seed: 1}
	want, _, err := RangeJoin(objs, objs, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, kern := range allKernels {
		opts := base
		opts.Kernel = kern
		got, _, err := RangeJoin(objs, objs, opts)
		if err != nil {
			t.Fatalf("%v: %v", kern, err)
		}
		assertIdentical(t, kern.String(), got, want)
	}
}

// The Auto algorithm threads the kernel through the planner and into
// whatever plan it picks; the output contract still holds.
func TestKernelWithAutoAlgorithm(t *testing.T) {
	objs := forest(400, 5)
	want, _, err := SelfJoin(objs, Options{K: 4, Algorithm: Auto, Nodes: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := SelfJoin(objs, Options{
		K: 4, Algorithm: Auto, Nodes: 4, Seed: 1, Kernel: KernelQuantized,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Plan == nil {
		t.Fatal("Auto produced no plan info")
	}
	assertIdentical(t, KernelQuantized.String(), got, want)
}
