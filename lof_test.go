package knnjoin

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"knnjoin/internal/dataset"
	"knnjoin/internal/vector"
)

func TestLOFUniformDataScoresNearOne(t *testing.T) {
	objs := dataset.Uniform(1500, 2, 100, 1)
	scores, st, err := LOF(objs, 10, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(objs) {
		t.Fatalf("scored %d objects, want %d", len(scores), len(objs))
	}
	if st.K != 11 {
		t.Fatalf("join ran with K=%d, want minPts+1=11", st.K)
	}
	vals := make([]float64, len(scores))
	for i, s := range scores {
		vals[i] = s.LOF
	}
	sort.Float64s(vals)
	median := vals[len(vals)/2]
	if median < 0.8 || median > 1.3 {
		t.Fatalf("median LOF on uniform data = %v, want ≈ 1", median)
	}
}

func TestLOFPlantedOutliersRankFirst(t *testing.T) {
	objs := dataset.Uniform(2000, 3, 100, 2)
	planted := map[int64]bool{}
	for i := 0; i < 5; i++ {
		id := int64(i * 397)
		planted[id] = true
		for d := range objs[id].Point {
			objs[id].Point[d] += 5000 + float64(i)*500
		}
	}
	scores, _, err := LOF(objs, 8, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, s := range scores[:5] {
		if planted[s.ID] {
			hits++
		}
	}
	if hits != 5 {
		t.Fatalf("top-5 LOF recovered %d/5 planted outliers: %+v", hits, scores[:5])
	}
	if scores[0].LOF < 2 {
		t.Fatalf("top planted outlier LOF = %v, want ≫ 1", scores[0].LOF)
	}
}

// LOF's defining property over the plain k-distance score: an object just
// outside a *dense* cluster outranks objects inside a *sparse* cluster,
// even though the sparse cluster's members have larger k-distances.
func TestLOFIsDensityRelative(t *testing.T) {
	var objs []Object
	id := int64(0)
	add := func(x, y float64) {
		objs = append(objs, Object{ID: id, Point: vector.Point{x, y}})
		id++
	}
	// Dense grid cluster at origin, spacing 1.
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			add(float64(i), float64(j))
		}
	}
	// Sparse grid cluster far away, spacing 20.
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			add(10000+20*float64(i), 20*float64(j))
		}
	}
	// The local outlier: a point a short hop off the dense cluster —
	// close in absolute distance, far relative to local density.
	add(4.5, 16)
	outlierID := id - 1

	scores, _, err := LOF(objs, 6, Options{Seed: 4, Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if scores[0].ID != outlierID {
		t.Fatalf("top LOF = object %d (%.2f), want planted local outlier %d", scores[0].ID, scores[0].LOF, outlierID)
	}
	// Sparse-cluster interior points must stay inliers (≈1) despite their
	// large absolute k-distances.
	byID := make(map[int64]float64, len(scores))
	for _, s := range scores {
		byID[s.ID] = s.LOF
	}
	sparseInterior := byID[100+44] // row 4, col 4 of the sparse grid
	if sparseInterior > 1.2 {
		t.Fatalf("sparse-cluster interior LOF = %v, want ≈ 1", sparseInterior)
	}
}

func TestLOFDuplicatePoints(t *testing.T) {
	objs := make([]Object, 30)
	for i := range objs {
		objs[i] = Object{ID: int64(i), Point: vector.Point{1, 2, 3}}
	}
	scores, _, err := LOF(objs, 4, Options{Seed: 5, Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scores {
		if s.LOF != 1 {
			t.Fatalf("duplicate pile LOF = %v for object %d, want 1 (∞/∞ convention)", s.LOF, s.ID)
		}
	}
}

func TestLOFDuplicatePileWithStraggler(t *testing.T) {
	objs := make([]Object, 20)
	for i := range objs {
		objs[i] = Object{ID: int64(i), Point: vector.Point{0, 0}}
	}
	objs[19] = Object{ID: 19, Point: vector.Point{50, 0}}
	scores, _, err := LOF(objs, 3, Options{Seed: 6, Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if scores[0].ID != 19 {
		t.Fatalf("top LOF = object %d, want the straggler 19", scores[0].ID)
	}
	if !math.IsInf(scores[0].LOF, 1) {
		t.Fatalf("straggler next to a zero-width pile should score +Inf, got %v", scores[0].LOF)
	}
	for _, s := range scores[1:] {
		if s.LOF != 1 {
			t.Fatalf("pile member %d scored %v, want 1", s.ID, s.LOF)
		}
	}
}

func TestLOFValidation(t *testing.T) {
	objs := dataset.Uniform(50, 2, 100, 7)
	if _, _, err := LOF(objs, 0, Options{}); err == nil {
		t.Error("minPts=0 accepted")
	}
	if _, err := LOFFromResults(nil, 0); err == nil {
		t.Error("LOFFromResults minPts=0 accepted")
	}
	// Too few neighbors in the results.
	short := []Result{{RID: 1, Neighbors: []Neighbor{{ID: 2, Dist: 1}}}}
	if _, err := LOFFromResults(short, 3); err == nil {
		t.Error("short neighbor list accepted")
	}
	// Neighbor without its own result row (not a self-join).
	dangling := []Result{{RID: 1, Neighbors: []Neighbor{{ID: 99, Dist: 1}}}}
	if _, err := LOFFromResults(dangling, 1); err == nil {
		t.Error("dangling neighbor accepted")
	}
}

func TestLOFFromResultsMatchesLOF(t *testing.T) {
	objs := dataset.Uniform(400, 3, 100, 8)
	direct, _, err := LOF(objs, 5, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := SelfJoin(objs, Options{K: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	viaResults, err := LOFFromResults(ExcludeSelf(results), 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range direct {
		if got := viaResults[s.ID]; math.Abs(got-s.LOF) > 1e-12 {
			t.Fatalf("object %d: LOF()=%v, LOFFromResults()=%v", s.ID, s.LOF, got)
		}
	}
}

// Property: LOF is scale-invariant — multiplying every coordinate by a
// positive constant changes all distances by the same factor, which
// cancels in every lrd ratio.
func TestLOFScaleInvariantQuick(t *testing.T) {
	objs := dataset.Uniform(300, 3, 100, 12)
	base, _, err := LOF(objs, 5, Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	baseByID := make(map[int64]float64, len(base))
	for _, s := range base {
		baseByID[s.ID] = s.LOF
	}
	f := func(scaleRaw uint8) bool {
		scale := float64(scaleRaw%100)/10 + 0.1 // 0.1 .. 10.0
		scaled := make([]Object, len(objs))
		for i, o := range objs {
			p := o.Point.Clone()
			for d := range p {
				p[d] *= scale
			}
			scaled[i] = Object{ID: o.ID, Point: p}
		}
		got, _, err := LOF(scaled, 5, Options{Seed: 13})
		if err != nil {
			return false
		}
		for _, s := range got {
			if math.Abs(s.LOF-baseByID[s.ID]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestLOFDeterministic(t *testing.T) {
	objs := dataset.OSM(800, 10)
	a, _, err := LOF(objs, 6, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := LOF(objs, 6, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs across identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
