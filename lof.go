package knnjoin

import (
	"fmt"
	"math"
	"sort"
)

// LOFScore is one object's Local Outlier Factor. Scores near 1 mean the
// object sits at its neighborhood's density; substantially larger scores
// mean it is locally sparse — an outlier.
type LOFScore struct {
	ID  int64
	LOF float64
}

// LOF runs the paper's flagship application from §1: density-based
// outlier detection (Breunig et al., SIGMOD 2000 — the paper's reference
// [5]) powered by a distributed kNN self-join.
//
// It self-joins objs with K = minPts+1, drops each object's self-match,
// and scores every object with LOFFromResults. Scores are returned
// sorted descending, most anomalous first; the join's cost report is
// returned alongside.
func LOF(objs []Object, minPts int, opts Options) ([]LOFScore, *Stats, error) {
	if minPts < 1 {
		return nil, nil, fmt.Errorf("knnjoin: LOF minPts must be at least 1, got %d", minPts)
	}
	opts.K = minPts + 1
	results, st, err := SelfJoin(objs, opts)
	if err != nil {
		return nil, nil, err
	}
	scores, err := LOFFromResults(ExcludeSelf(results), minPts)
	if err != nil {
		return nil, nil, err
	}
	out := make([]LOFScore, 0, len(scores))
	for id, s := range scores {
		out = append(out, LOFScore{ID: id, LOF: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].LOF != out[j].LOF {
			return out[i].LOF > out[j].LOF
		}
		return out[i].ID < out[j].ID
	})
	return out, st, nil
}

// LOFFromResults computes Local Outlier Factor scores from an existing
// kNN self-join result, keyed by object ID. Each result must hold the
// object's nearest neighbors ascending with the self-match already
// removed (see ExcludeSelf) and at least minPts entries; the first
// minPts are used.
//
// The three steps follow Breunig et al.: the minPts-distance of each
// object is its minPts-th neighbor distance; the reachability distance
// from p to a neighbor o is max(minPts-distance(o), d(p,o)); the local
// reachability density lrd(p) is the inverse mean reachability distance
// of p's neighborhood; and LOF(p) is the mean ratio lrd(o)/lrd(p) over
// the neighborhood. Duplicate-heavy data can make lrd infinite; the
// conventional ∞/∞ = 1 keeps co-located points inliers.
//
// One deviation from the original definition: the neighborhood is
// exactly the minPts join neighbors, so distance ties beyond position
// minPts are dropped rather than extending the neighborhood. Join
// results carry no tie information; for real-valued data the difference
// is measure-zero.
func LOFFromResults(results []Result, minPts int) (map[int64]float64, error) {
	if minPts < 1 {
		return nil, fmt.Errorf("knnjoin: LOF minPts must be at least 1, got %d", minPts)
	}
	type hood struct {
		neighbors []Neighbor
		kdist     float64
		lrd       float64
	}
	hoods := make(map[int64]*hood, len(results))
	for _, res := range results {
		if len(res.Neighbors) < minPts {
			return nil, fmt.Errorf("knnjoin: LOF needs %d neighbors for object %d, join result has %d (run the join with K ≥ minPts+1 and ExcludeSelf)",
				minPts, res.RID, len(res.Neighbors))
		}
		nbs := res.Neighbors[:minPts]
		hoods[res.RID] = &hood{neighbors: nbs, kdist: nbs[minPts-1].Dist}
	}

	// Local reachability density per object.
	for id, h := range hoods {
		var sum float64
		for _, nb := range h.neighbors {
			o, ok := hoods[nb.ID]
			if !ok {
				return nil, fmt.Errorf("knnjoin: LOF neighbor %d of object %d has no join result — LOF needs a self-join", nb.ID, id)
			}
			sum += math.Max(o.kdist, nb.Dist)
		}
		if sum == 0 {
			h.lrd = math.Inf(1)
		} else {
			h.lrd = float64(minPts) / sum
		}
	}

	scores := make(map[int64]float64, len(hoods))
	for id, h := range hoods {
		var sum float64
		for _, nb := range h.neighbors {
			o := hoods[nb.ID]
			switch {
			case math.IsInf(o.lrd, 1) && math.IsInf(h.lrd, 1):
				sum++ // co-located with co-located neighbors: plain inlier
			case math.IsInf(h.lrd, 1):
				// p is on a duplicate pile, neighbor is not: denser than
				// anything around it, ratio 0.
			default:
				sum += o.lrd / h.lrd
			}
		}
		scores[id] = sum / float64(minPts)
	}
	return scores, nil
}
