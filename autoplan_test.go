package knnjoin

import (
	"testing"

	"knnjoin/internal/dataset"
	"knnjoin/internal/stats"
)

// TestAutoPlanRanksAndExplains exercises the public planning API: the
// ranked list is non-empty, sorted, deterministic per seed, and its
// first exact entry is a parseable configuration.
func TestAutoPlanRanksAndExplains(t *testing.T) {
	objs := dataset.Gaussian(2000, 4, 8, 0, 100, 1)
	opts := Options{K: 10, Seed: 3}
	plans, err := AutoPlan(objs, objs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) < 10 {
		t.Fatalf("only %d candidate plans; the grid should produce more", len(plans))
	}
	for i := 1; i < len(plans); i++ {
		if plans[i].Score < plans[i-1].Score {
			t.Fatalf("plans not sorted at rank %d", i)
		}
	}
	again, err := AutoPlan(objs, objs, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plans {
		if plans[i].Config() != again[i].Config() || plans[i].Score != again[i].Score {
			t.Fatalf("rank %d not deterministic: %q vs %q", i, plans[i].Config(), again[i].Config())
		}
	}
	var exact *Plan
	for i := range plans {
		if !plans[i].Approximate {
			exact = &plans[i]
			break
		}
	}
	if exact == nil {
		t.Fatal("no exact plan in the ranking")
	}
	if _, err := ParseAlgorithm(exact.Algo); err != nil {
		t.Fatalf("winning plan's algorithm %q is not executable: %v", exact.Algo, err)
	}
	if _, err := AutoPlan(objs, objs, Options{K: 0}); err == nil {
		t.Error("AutoPlan accepted K=0")
	}
}

// TestAutoJoinMatchesDirectRun: a join with Algorithm Auto must return
// exactly what running the chosen configuration by hand returns, and
// its Stats must carry both the plan (with predictions) and nonzero
// measured actuals — predicted versus actual is the planner's
// falsifiability contract.
func TestAutoJoinMatchesDirectRun(t *testing.T) {
	objs := dataset.Uniform(2500, 4, 100, 2)
	auto, st, err := Join(objs, objs, Options{K: 10, Algorithm: Auto, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st.Plan == nil {
		t.Fatal("Stats.Plan is nil for an Auto join")
	}
	if st.Plan.Candidates < 10 {
		t.Errorf("plan ranked against %d candidates, want the full grid", st.Plan.Candidates)
	}
	if st.Plan.PredictedDistComps <= 0 {
		t.Error("no predicted distance computations recorded")
	}
	if st.Pairs <= 0 {
		t.Error("no actual distance computations recorded")
	}
	algo, err := ParseAlgorithm(st.Plan.Algorithm)
	if err != nil {
		t.Fatal(err)
	}
	if algo != BruteForce {
		if st.Plan.PredictedShuffleBytes <= 0 || st.ShuffleBytes <= 0 {
			t.Errorf("cluster plan must carry predicted (%d) and actual (%d) shuffle bytes",
				st.Plan.PredictedShuffleBytes, st.ShuffleBytes)
		}
		// The prediction must be in the actual's neighborhood, not a
		// placeholder: within 3× either way.
		ratio := float64(st.Plan.PredictedShuffleBytes) / float64(st.ShuffleBytes)
		if ratio < 1.0/3 || ratio > 3 {
			t.Errorf("predicted shuffle %d vs actual %d (ratio %.2f)",
				st.Plan.PredictedShuffleBytes, st.ShuffleBytes, ratio)
		}
	}
	direct := Options{K: 10, Algorithm: algo, Seed: 5, NumPivots: st.Plan.NumPivots}
	if st.Plan.PivotStrategy != "" {
		if direct.PivotStrategy, err = ParsePivotStrategy(st.Plan.PivotStrategy); err != nil {
			t.Fatal(err)
		}
	}
	if st.Plan.GroupStrategy != "" {
		if direct.GroupStrategy, err = ParseGroupStrategy(st.Plan.GroupStrategy); err != nil {
			t.Fatal(err)
		}
	}
	want, _, err := Join(objs, objs, direct)
	if err != nil {
		t.Fatal(err)
	}
	if len(auto) != len(want) {
		t.Fatalf("auto returned %d results, direct %d", len(auto), len(want))
	}
	for i := range want {
		if auto[i].RID != want[i].RID || len(auto[i].Neighbors) != len(want[i].Neighbors) {
			t.Fatalf("result %d differs between auto and direct runs", i)
		}
		for j := range want[i].Neighbors {
			if auto[i].Neighbors[j] != want[i].Neighbors[j] {
				t.Fatalf("result %d neighbor %d differs: %v vs %v",
					i, j, auto[i].Neighbors[j], want[i].Neighbors[j])
			}
		}
	}
}

// TestAutoJoinEmptyInputs: Auto degrades to the centralized join on
// degenerate inputs instead of failing to sample them.
func TestAutoJoinEmptyInputs(t *testing.T) {
	objs := dataset.Uniform(50, 3, 100, 1)
	if _, _, err := Join(nil, objs, Options{K: 3, Algorithm: Auto}); err != nil {
		t.Fatalf("empty R: %v", err)
	}
	res, st, err := Join(objs, nil, Options{K: 3, Algorithm: Auto})
	if err != nil {
		t.Fatalf("empty S: %v", err)
	}
	if len(res) != 0 || st == nil {
		t.Fatalf("empty S returned %d results", len(res))
	}
	if _, _, err := Join(objs, objs, Options{Algorithm: Auto}); err == nil {
		t.Error("Auto with K=0 accepted")
	}
}

// TestStatsJobsActuals is the regression gate for the per-job actuals:
// every distributed algorithm must report at least one job whose
// shuffle-byte and distance-computation actuals sum to the aggregate
// counters, and the whole breakdown (walls aside) must be identical
// across runs with one seed.
func TestStatsJobsActuals(t *testing.T) {
	objs := dataset.Uniform(600, 4, 100, 3)
	run := func(a Algorithm) *Stats {
		t.Helper()
		_, st, err := Join(objs, objs, Options{K: 5, Algorithm: a, Seed: 9})
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		return st
	}
	stripWall := func(jobs []stats.JobStat) []stats.JobStat {
		out := append([]stats.JobStat(nil), jobs...)
		for i := range out {
			out[i].Wall = 0
			out[i].MapWall = 0
			out[i].ReduceWall = 0
		}
		return out
	}
	for _, a := range []Algorithm{PGBJ, PBJ, HBRJ, Broadcast, Theta, ZKNN, LSH} {
		t.Run(a.String(), func(t *testing.T) {
			st := run(a)
			if len(st.Jobs) == 0 {
				t.Fatal("no per-job actuals recorded")
			}
			var shuffle, comps int64
			for _, j := range st.Jobs {
				if j.Name == "" {
					t.Error("job with empty name")
				}
				shuffle += j.ShuffleBytes
				comps += j.DistComps
			}
			if shuffle != st.ShuffleBytes {
				t.Errorf("job shuffle bytes sum %d != aggregate %d", shuffle, st.ShuffleBytes)
			}
			if shuffle <= 0 {
				t.Error("zero shuffle bytes across all jobs")
			}
			if comps <= 0 {
				t.Error("zero distance computations across all jobs")
			}
			a2 := stripWall(run(a).Jobs)
			a1 := stripWall(st.Jobs)
			if len(a1) != len(a2) {
				t.Fatalf("job count unstable across runs: %d vs %d", len(a1), len(a2))
			}
			for i := range a1 {
				if a1[i] != a2[i] {
					t.Errorf("job %d actuals unstable per seed: %+v vs %+v", i, a1[i], a2[i])
				}
			}
		})
	}
	// The centralized join has no jobs — the breakdown stays empty.
	if st := run(BruteForce); len(st.Jobs) != 0 {
		t.Errorf("bruteforce recorded %d jobs", len(st.Jobs))
	}
}
