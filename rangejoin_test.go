package knnjoin

import (
	"math"
	"testing"

	"knnjoin/internal/dataset"
	"knnjoin/internal/rangejoin"
	"knnjoin/internal/vector"
)

func TestRangeJoinMatchesBruteForce(t *testing.T) {
	objs := dataset.Uniform(800, 3, 100, 30)
	want := rangejoin.BruteForce(objs, objs, 12, vector.L2)
	got, st, err := RangeJoin(objs, objs, RangeOptions{Radius: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].RID != want[i].RID || len(got[i].Neighbors) != len(want[i].Neighbors) {
			t.Fatalf("row %d mismatch: %+v vs %+v", i, got[i], want[i])
		}
		for j := range want[i].Neighbors {
			if got[i].Neighbors[j].ID != want[i].Neighbors[j].ID ||
				math.Abs(got[i].Neighbors[j].Dist-want[i].Neighbors[j].Dist) > 1e-9 {
				t.Fatalf("r %d neighbor %d mismatch", want[i].RID, j)
			}
		}
	}
	if st.Algorithm != "range-join" || st.Dims != 3 {
		t.Fatalf("implausible stats %+v", st)
	}
	if st.OutputPairs <= 0 || st.ShuffleBytes <= 0 {
		t.Fatalf("missing accounting: %+v", st)
	}
}

func TestRangeJoinValidationAndEdges(t *testing.T) {
	objs := dataset.Uniform(50, 2, 100, 31)
	if _, _, err := RangeJoin(objs, objs, RangeOptions{Radius: -1}); err == nil {
		t.Error("negative radius accepted")
	}
	if got, st, err := RangeJoin(nil, objs, RangeOptions{Radius: 1}); err != nil || len(got) != 0 || st == nil {
		t.Errorf("empty R: %v, %v, %v", got, st, err)
	}
	if got, _, err := RangeJoin(objs, nil, RangeOptions{Radius: 1}); err != nil || len(got) != 0 {
		t.Errorf("empty S: %v, %v", got, err)
	}
	bad := []Object{{ID: 0, Point: Point{1}}}
	if _, _, err := RangeJoin(bad, objs, RangeOptions{Radius: 1}); err == nil {
		t.Error("dim mismatch accepted")
	}
}

// Property: range-join results grow monotonically with the radius — a
// larger θ can only add pairs, never lose them.
func TestRangeJoinRadiusMonotone(t *testing.T) {
	objs := dataset.Uniform(300, 2, 100, 33)
	var prev int64 = -1
	for _, radius := range []float64{1, 4, 9, 25, 60} {
		_, st, err := RangeJoin(objs, objs, RangeOptions{Radius: radius, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if st.OutputPairs < prev {
			t.Fatalf("radius %v produced %d pairs, fewer than the smaller radius's %d",
				radius, st.OutputPairs, prev)
		}
		prev = st.OutputPairs
	}
	if prev < int64(len(objs)) {
		t.Fatalf("largest radius found only %d pairs", prev)
	}
}

func TestRangeJoinOtherMetric(t *testing.T) {
	objs := dataset.Uniform(400, 3, 100, 32)
	want := rangejoin.BruteForce(objs, objs, 9, vector.L1)
	got, _, err := RangeJoin(objs, objs, RangeOptions{Radius: 9, Metric: L1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
}
