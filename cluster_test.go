package knnjoin

import (
	"os"
	"reflect"
	"strings"
	"testing"

	"knnjoin/internal/dataset"
	"knnjoin/internal/obs"
)

// TestMain lets re-executions of this test binary serve as MapReduce
// worker processes for the Workers > 0 tests below.
func TestMain(m *testing.M) {
	RunWorkerIfSpawned()
	os.Exit(m.Run())
}

func skipClusterShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("cluster mode spawns worker processes; skipped with -short")
	}
}

// assertRanOnWorkers fails unless every MapReduce job of the run
// committed all its tasks on worker processes — the proof the run did
// not silently fall back to the in-process engine.
func assertRanOnWorkers(t *testing.T, st *Stats) {
	t.Helper()
	if len(st.Jobs) == 0 {
		t.Fatal("no per-job stats recorded")
	}
	for _, j := range st.Jobs {
		if j.WorkerTasks == 0 {
			t.Fatalf("job %q committed no tasks on worker processes", j.Name)
		}
	}
}

// TestClusterModeMatchesInProcess runs every join algorithm once on the
// in-process engine and once on three worker processes: the multi-
// process engine must return byte-identical results — same neighbor
// IDs, same distances, same order.
func TestClusterModeMatchesInProcess(t *testing.T) {
	skipClusterShort(t)
	r := dataset.Uniform(300, 4, 100, 11)
	s := dataset.Uniform(340, 4, 100, 12)
	for _, alg := range []Algorithm{PGBJ, PBJ, HBRJ, Broadcast, ZKNN, Theta, LSH} {
		t.Run(alg.String(), func(t *testing.T) {
			opts := Options{K: 3, Algorithm: alg, Nodes: 4, Seed: 5}
			want, _, err := Join(r, s, opts)
			if err != nil {
				t.Fatalf("in-process: %v", err)
			}
			opts.Workers = 3
			got, st, err := Join(r, s, opts)
			if err != nil {
				t.Fatalf("3 workers: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v: cluster-mode output differs from in-process output", alg)
			}
			assertRanOnWorkers(t, st)
		})
	}
}

// TestClusterModeRangeJoin covers the range-join pipeline, whose join
// job is a distinct registered kind from the kNN jobs.
func TestClusterModeRangeJoin(t *testing.T) {
	skipClusterShort(t)
	r := dataset.Uniform(250, 3, 100, 21)
	s := dataset.Uniform(280, 3, 100, 22)
	opts := RangeOptions{Radius: 18, Nodes: 4, Seed: 3}
	want, _, err := RangeJoin(r, s, opts)
	if err != nil {
		t.Fatalf("in-process: %v", err)
	}
	opts.Workers = 3
	got, st, err := RangeJoin(r, s, opts)
	if err != nil {
		t.Fatalf("3 workers: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("cluster-mode range join differs from in-process output")
	}
	assertRanOnWorkers(t, st)
}

// TestClusterModeClosestPairs covers the top-k pair pipeline.
func TestClusterModeClosestPairs(t *testing.T) {
	skipClusterShort(t)
	r := dataset.Uniform(220, 3, 100, 31)
	s := dataset.Uniform(240, 3, 100, 32)
	opts := PairOptions{K: 10, Nodes: 4, Seed: 9}
	want, _, err := ClosestPairs(r, s, opts)
	if err != nil {
		t.Fatalf("in-process: %v", err)
	}
	opts.Workers = 3
	got, st, err := ClosestPairs(r, s, opts)
	if err != nil {
		t.Fatalf("3 workers: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("cluster-mode closest pairs differ from in-process output")
	}
	assertRanOnWorkers(t, st)
}

// TestClusterModeRecoversFromKilledWorker is the ISSUE's acceptance
// scenario end to end: a kNN join on three worker processes, one of
// them killed mid-job, completes via task re-execution with results
// byte-identical to the single-process engine. Attempt is pinned to 1
// so the re-dispatched attempt is not killed again.
func TestClusterModeRecoversFromKilledWorker(t *testing.T) {
	skipClusterShort(t)
	r := dataset.Uniform(300, 4, 100, 41)
	s := dataset.Uniform(340, 4, 100, 42)
	opts := Options{K: 3, Algorithm: PGBJ, Nodes: 4, Seed: 5}
	want, _, err := Join(r, s, opts)
	if err != nil {
		t.Fatalf("in-process: %v", err)
	}
	opts.Workers = 3
	opts.Faults = &FaultPlan{Events: []FaultEvent{
		{Worker: -1, Task: "pgbj-join/map/0", Attempt: 1, Point: AtMidTask, Action: ActKill},
	}}
	got, st, err := Join(r, s, opts)
	if err != nil {
		t.Fatalf("3 workers with mid-join kill: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("output differs after a worker was killed mid-join")
	}
	assertRanOnWorkers(t, st)
	var reexec int64
	for _, j := range st.Jobs {
		reexec += j.ReexecutedAttempts
	}
	if reexec < 1 {
		t.Fatalf("ReexecutedAttempts = %d, want >= 1 after the kill", reexec)
	}
}

// TestTracedFaultedJoinProducesMergedTrace is the observability PR's
// acceptance scenario: a FaultPlan-killed three-worker PGBJ join with
// tracing enabled must (a) stay byte-identical to the untraced
// in-process run, and (b) leave a merged trace in which the killed
// attempt, the coordinator's re-dispatch, and the winning committed
// attempt are distinct spans; the trace must render as a timeline and
// survive a Chrome trace-event export round trip.
func TestTracedFaultedJoinProducesMergedTrace(t *testing.T) {
	skipClusterShort(t)
	r := dataset.Uniform(300, 4, 100, 41)
	s := dataset.Uniform(340, 4, 100, 42)
	opts := Options{K: 3, Algorithm: PGBJ, Nodes: 4, Seed: 5}
	want, _, err := Join(r, s, opts)
	if err != nil {
		t.Fatalf("in-process: %v", err)
	}

	dir := t.TempDir()
	opts.Workers = 3
	opts.TraceDir = dir
	opts.Faults = &FaultPlan{Events: []FaultEvent{
		{Worker: -1, Task: "pgbj-join/map/0", Attempt: 1, Point: AtMidTask, Action: ActKill},
	}}
	got, _, err := Join(r, s, opts)
	if err != nil {
		t.Fatalf("3 traced workers with mid-join kill: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("tracing perturbed the join output")
	}

	spans, err := obs.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}

	var killed, committed *obs.SpanRecord
	redispatched := false
	for i := range spans {
		sp := &spans[i]
		attrs := sp.Attrs
		if sp.Name == "task" && attrs["task"] == "pgbj-join/map/0" {
			switch attrs["outcome"] {
			case "killed":
				killed = sp
			case "committed":
				committed = sp
			}
		}
		for _, ev := range sp.Events {
			if ev.Name == "re-dispatch" && ev.Attrs["task"] == "pgbj-join/map/0" {
				redispatched = true
			}
		}
	}
	if killed == nil {
		t.Fatal("no task span with outcome=killed for pgbj-join/map/0")
	}
	if committed == nil {
		t.Fatal("no task span with outcome=committed for pgbj-join/map/0")
	}
	if killed.SpanID == committed.SpanID {
		t.Fatal("killed and committed attempts share a span")
	}
	if killed.TraceID != committed.TraceID {
		t.Fatalf("attempts in different traces: %s vs %s", killed.TraceID, committed.TraceID)
	}
	if !redispatched {
		t.Fatal("no re-dispatch event recorded for the killed task")
	}
	foundFault := false
	for _, ev := range killed.Events {
		if ev.Name == "fault-kill" {
			foundFault = true
		}
	}
	if !foundFault {
		t.Fatal("killed attempt's span carries no fault-kill event")
	}

	timeline := obs.Timeline(spans, 120)
	if !strings.Contains(timeline, "coord") || !strings.Contains(timeline, "task") {
		t.Fatalf("timeline missing expected lanes:\n%s", timeline)
	}
	raw, err := obs.ChromeTrace(spans)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ParseChromeTrace(raw)
	if err != nil {
		t.Fatalf("chrome export does not round-trip: %v", err)
	}
	if len(evs) < len(spans) {
		t.Fatalf("chrome export has %d events for %d spans", len(evs), len(spans))
	}
}
