package knnjoin_test

import (
	"fmt"

	"knnjoin"
)

// The smallest complete join: two tiny datasets, k = 2.
func ExampleJoin() {
	r := []knnjoin.Object{
		{ID: 0, Point: knnjoin.Point{0, 0}},
		{ID: 1, Point: knnjoin.Point{10, 10}},
	}
	s := []knnjoin.Object{
		{ID: 100, Point: knnjoin.Point{1, 0}},
		{ID: 101, Point: knnjoin.Point{0, 2}},
		{ID: 102, Point: knnjoin.Point{9, 10}},
		{ID: 103, Point: knnjoin.Point{50, 50}}, // never a 2-NN of anything
	}
	results, _, err := knnjoin.Join(r, s, knnjoin.Options{K: 2})
	if err != nil {
		panic(err)
	}
	for _, res := range results {
		fmt.Printf("r=%d:", res.RID)
		for _, nb := range res.Neighbors {
			fmt.Printf(" (s=%d d=%.0f)", nb.ID, nb.Dist)
		}
		fmt.Println()
	}
	// Output:
	// r=0: (s=100 d=1) (s=101 d=2)
	// r=1: (s=102 d=1) (s=101 d=13)
}

// A self-join asks each object for its neighbors within the same set;
// with K+1 and ExcludeSelf the trivial self-match is dropped. Object 1
// is equidistant to 0 and 2; kNN ties may resolve to either (Definition
// 1 permits any), deterministically per seed.
func ExampleSelfJoin() {
	objs := []knnjoin.Object{
		{ID: 0, Point: knnjoin.Point{0, 0}},
		{ID: 1, Point: knnjoin.Point{3, 4}},
		{ID: 2, Point: knnjoin.Point{6, 8}},
	}
	results, _, err := knnjoin.SelfJoin(objs, knnjoin.Options{K: 2})
	if err != nil {
		panic(err)
	}
	results = knnjoin.ExcludeSelf(results)
	for _, res := range results {
		fmt.Printf("r=%d nearest other: s=%d d=%.0f\n", res.RID, res.Neighbors[0].ID, res.Neighbors[0].Dist)
	}
	// Output:
	// r=0 nearest other: s=1 d=5
	// r=1 nearest other: s=2 d=5
	// r=2 nearest other: s=1 d=5
}

// Algorithms are swappable; they return identical results at different
// costs.
func ExampleParseAlgorithm() {
	alg, err := knnjoin.ParseAlgorithm("h-brj")
	fmt.Println(alg, err)
	// Output:
	// hbrj <nil>
}

// ClosestPairs answers a different question than Join: not "who are each
// object's neighbors" but "which pairs are closest overall".
func ExampleClosestPairs() {
	objs := []knnjoin.Object{
		{ID: 0, Point: knnjoin.Point{0, 0}},
		{ID: 1, Point: knnjoin.Point{1, 0}}, // 0–1 is the closest pair
		{ID: 2, Point: knnjoin.Point{10, 0}},
		{ID: 3, Point: knnjoin.Point{14, 0}}, // 2–3 is the runner-up
	}
	pairs, _, err := knnjoin.ClosestPairs(objs, objs, knnjoin.PairOptions{
		K: 2, ExcludeSelf: true, Unordered: true,
	})
	if err != nil {
		panic(err)
	}
	for _, p := range pairs {
		fmt.Printf("(%d, %d) d=%.0f\n", p.RID, p.SID, p.Dist)
	}
	// Output:
	// (0, 1) d=1
	// (2, 3) d=4
}

// LOF scores outliers against their local density: the lone point far
// from the grid gets the top score, grid interior points score ≈ 1.
func ExampleLOF() {
	var objs []knnjoin.Object
	id := int64(0)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			objs = append(objs, knnjoin.Object{ID: id, Point: knnjoin.Point{float64(i), float64(j)}})
			id++
		}
	}
	objs = append(objs, knnjoin.Object{ID: id, Point: knnjoin.Point{20, 20}})

	scores, _, err := knnjoin.LOF(objs, 3, knnjoin.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("most anomalous: object %d (LOF %.1f)\n", scores[0].ID, scores[0].LOF)
	// Output:
	// most anomalous: object 25 (LOF 20.3)
}

// Planning without executing: rank every candidate configuration for a
// workload, then let Join run the winner by setting Algorithm to Auto.
func ExampleAutoPlan() {
	r := make([]knnjoin.Object, 512)
	for i := range r {
		r[i] = knnjoin.Object{ID: int64(i), Point: knnjoin.Point{float64(i % 32), float64(i / 32)}}
	}
	plans, err := knnjoin.AutoPlan(r, r, knnjoin.Options{K: 4, Seed: 1})
	if err != nil {
		panic(err)
	}
	// plans[0] is the cheapest; approximate plans are flagged.
	for _, p := range plans[:3] {
		fmt.Printf("%s approx=%v predicted-replication=%.1f\n",
			p.Algo, p.Approximate, float64(p.Predicted.ReplicasS)/float64(len(r)))
	}
	// Executing the pick — identical to running plans[0] by hand:
	_, stats, err := knnjoin.Join(r, r, knnjoin.Options{K: 4, Algorithm: knnjoin.Auto, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("chosen:", stats.Plan.Algorithm)
}
