package knnjoin

import (
	"math"
	"os"
	"testing"

	"knnjoin/internal/dataset"
)

// spillSizes picks dataset sizes: small enough for every PR's CI run
// under -short, larger otherwise.
func spillSizes(t *testing.T) (nr, ns int) {
	if testing.Short() {
		return 150, 170
	}
	return 420, 500
}

// assertIdentical requires bit-identical results: same rows, same
// neighbor ids, same float64 distance bits — the spill backend replays
// the exact record sequences of the in-memory shuffle, so nothing softer
// than equality is acceptable.
func assertIdentical(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].RID != want[i].RID || len(got[i].Neighbors) != len(want[i].Neighbors) {
			t.Fatalf("%s: row %d shape differs: %+v vs %+v", label, i, got[i], want[i])
		}
		for j := range want[i].Neighbors {
			g, w := got[i].Neighbors[j], want[i].Neighbors[j]
			if g.ID != w.ID || math.Float64bits(g.Dist) != math.Float64bits(w.Dist) {
				t.Fatalf("%s: r %d neighbor %d differs: %+v vs %+v", label, got[i].RID, j, g, w)
			}
		}
	}
}

// Every join algorithm must produce byte-identical output on the
// out-of-core backend — with a memory limit far below the dataset size,
// so the shuffle genuinely spills — as on the in-memory backend.
func TestSpillBackendMatchesInMemoryAcrossAlgorithms(t *testing.T) {
	nr, ns := spillSizes(t)
	r := dataset.Uniform(nr, 4, 100, 11)
	s := dataset.Uniform(ns, 4, 100, 12)
	// 16KiB is far below the tagged datasets (4 dims ≈ 57B/record before
	// replication), so map tasks must spill their runs.
	const memLimit = 16 << 10

	for _, alg := range []Algorithm{PGBJ, PBJ, HBRJ, Broadcast, ZKNN, Theta, LSH} {
		opts := Options{K: 4, Algorithm: alg, Nodes: 5, Seed: 3, ChunkRecords: 64}
		want, _, err := Join(r, s, opts)
		if err != nil {
			t.Fatalf("%v in-memory: %v", alg, err)
		}
		opts.MemLimit = memLimit
		got, st, err := Join(r, s, opts)
		if err != nil {
			t.Fatalf("%v spill: %v", alg, err)
		}
		assertIdentical(t, alg.String(), got, want)
		if st.ShuffleBytes <= memLimit {
			t.Fatalf("%v: shuffle %dB did not exceed the %dB limit — the spill path was not exercised",
				alg, st.ShuffleBytes, memLimit)
		}
	}
}

// The sibling operators ride the same backend: θ-range join and top-k
// closest pairs must also be spill-invariant.
func TestSpillBackendMatchesInMemoryForSiblingOperators(t *testing.T) {
	nr, ns := spillSizes(t)
	r := dataset.Uniform(nr, 3, 100, 21)
	s := dataset.Uniform(ns, 3, 100, 22)
	const memLimit = 16 << 10

	wantR, _, err := RangeJoin(r, s, RangeOptions{Radius: 25, Nodes: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	gotR, _, err := RangeJoin(r, s, RangeOptions{Radius: 25, Nodes: 4, Seed: 5, MemLimit: memLimit})
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "range-join", gotR, wantR)

	wantP, _, err := ClosestPairs(r, s, PairOptions{K: 25, Nodes: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	gotP, _, err := ClosestPairs(r, s, PairOptions{K: 25, Nodes: 4, Seed: 5, MemLimit: memLimit})
	if err != nil {
		t.Fatal(err)
	}
	if len(gotP) != len(wantP) {
		t.Fatalf("pairs: %d results, want %d", len(gotP), len(wantP))
	}
	for i := range wantP {
		if gotP[i].RID != wantP[i].RID || gotP[i].SID != wantP[i].SID ||
			math.Float64bits(gotP[i].Dist) != math.Float64bits(wantP[i].Dist) {
			t.Fatalf("pairs: row %d differs: %+v vs %+v", i, gotP[i], wantP[i])
		}
	}
}

// A spilled join must still match BruteForce — closing the loop with
// the correctness oracle — and the caller-provided spill root must be
// left in place (the caller owns it), empty again once the join's
// private env subdirectory is cleaned up.
func TestSpillBackendAgainstBruteForce(t *testing.T) {
	nr, ns := spillSizes(t)
	r := dataset.Uniform(nr, 4, 100, 31)
	s := dataset.Uniform(ns, 4, 100, 32)

	want, _, err := Join(r, s, Options{K: 5, Algorithm: BruteForce})
	if err != nil {
		t.Fatal(err)
	}
	spillRoot := t.TempDir()
	got, _, err := Join(r, s, Options{
		K: 5, Algorithm: PGBJ, Nodes: 6, Seed: 2,
		SpillDir: spillRoot, MemLimit: 8 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertAgree(t, got, want)

	entries, err := os.ReadDir(spillRoot)
	if err != nil {
		t.Fatalf("caller-provided spill root was removed: %v", err)
	}
	if len(entries) != 0 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("join left spill debris in the caller's root: %v", names)
	}
}
