#!/bin/sh
# benchtrend.sh — append benchmark suite results to a CSV history.
#
# The BENCH_*.json files are point snapshots: each run overwrites the
# last, so regressions between snapshots leave no trail. This script
# runs the requested suites and APPENDS one timestamped CSV row per
# measurement to BENCH_history.csv, building the perf-trend artifact
# the ROADMAP tracks.
#
# Usage:
#
#   scripts/benchtrend.sh                 # default suites: shuffle dist
#   scripts/benchtrend.sh serve kernels   # any of: shuffle spill serve
#                                         # plan cluster shards dist kernels
#
# Columns: utc_time,git_rev,suite,name,measure,ns_per_op,allocs_per_op,
# bytes_per_op. "measure" distinguishes nested measurements (distbench
# reports scalar/block/tier paths per benchmark; shufflebench rows
# leave it empty).
set -eu
cd "$(dirname "$0")/.."

HISTORY=BENCH_history.csv
STAMP=$(date -u +%Y-%m-%dT%H:%M:%SZ)
REV=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

[ $# -gt 0 ] && suites="$*" || suites="shuffle dist"

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

if [ ! -f "$HISTORY" ]; then
    echo "utc_time,git_rev,suite,name,measure,ns_per_op,allocs_per_op,bytes_per_op" > "$HISTORY"
fi

# flatten turns one suite's JSON report into CSV rows. The timing
# suites emit each measurement as ns_per_op / allocs_per_op /
# bytes_per_op lines in that order, so a row completes on
# bytes_per_op; the plan suite reports wall_ns walls instead (no
# alloc accounting — those rows carry zeros). The preceding "name"
# line names the benchmark and the nearest enclosing `"key": {`
# labels nested measurements.
flatten() {
    awk -v stamp="$STAMP" -v rev="$REV" -v suite="$1" '
        function row(ns, al, by) {
            printf "%s,%s,%s,%s,%s,%.0f,%d,%d\n", stamp, rev, suite, name, measure, ns, al, by
        }
        /"name":/ {
            line = $0
            gsub(/.*"name": *"/, "", line); gsub(/".*/, "", line)
            name = line; measure = ""
        }
        /"[A-Za-z0-9_-]+": *\{/ {
            line = $0
            gsub(/^[ \t]*"/, "", line); gsub(/": *\{.*/, "", line)
            measure = line
        }
        /"ns_per_op":/          { ns = $2 + 0 }
        /"allocs_per_op":/      { al = $2 + 0 }
        /"bytes_per_op":/       { row(ns, al, $2 + 0) }
        /^[ \t]*"wall_ns":/     { row($2 + 0, 0, 0) }
        /^[ \t]*"planned_wall_ns":/ { measure = "planned"; row($2 + 0, 0, 0); measure = "" }
    ' "$2"
}

for s in $suites; do
    case "$s" in
        shuffle|spill|serve|plan|cluster|shards)
            echo "benchtrend: running shufflebench -suite $s" >&2
            go run ./cmd/shufflebench -suite "$s" -out "$tmp" >/dev/null
            ;;
        dist|kernels)
            echo "benchtrend: running distbench -suite $s" >&2
            go run ./cmd/distbench -suite "$s" -out "$tmp" >/dev/null
            ;;
        *)
            echo "benchtrend: unknown suite '$s'" >&2
            exit 1
            ;;
    esac
    flatten "$s" "$tmp" >> "$HISTORY"
done

echo "benchtrend: appended $(wc -l < "$HISTORY" | tr -d ' ') total rows in $HISTORY"
