#!/bin/sh
# check_bce.sh — fail if the compiler emits per-coordinate bounds checks
# inside the internal/vector scan loops.
#
# The fused kernels rely on the paired re-slice idiom
# (`row := coords[i*dim : i*dim+len(q)]; qr := q[:len(row)]`, as in
# sqDistL2) to let the compiler prove every `row[j]`/`qr[j]` access in
# bounds; a refactor that breaks the proof silently reintroduces a
# branch per coordinate. `-d=ssa/check_bce` prints one diagnostic per
# remaining bounds check; this gate maps each diagnostic line to its
# enclosing function and fails on any IsInBounds inside a scan-path
# function. Slice-expression checks (IsSliceInBounds) are the idiom's
# own once-per-row cost and stay allowed; so do checks in constructors
# and helpers, which run once per block, not per coordinate.
set -eu
cd "$(dirname "$0")/.."

# Scan-path functions: one indexing bounds check here costs a branch per
# coordinate of every distance computation.
hot='scanScalar|scanF64|scanF32|scanQuant|sqDistL2|rangeGuts'

diags=$(go build -gcflags='knnjoin/internal/vector=-d=ssa/check_bce' ./internal/vector/ 2>&1 || true)
if ! printf '%s\n' "$diags" | grep -q "Found Is"; then
    echo "check_bce: no diagnostics emitted — compiler flag broken?" >&2
    exit 1
fi

bad=$(printf '%s\n' "$diags" | grep "Found IsInBounds" | while IFS=: read -r file line rest; do
    [ -f "$file" ] || continue
    fn=$(awk -v n="$line" 'NR<=n && /^func /{f=$0} END{print f}' "$file")
    if printf '%s' "$fn" | grep -qE "($hot)\("; then
        echo "$file:$line: IsInBounds in ${fn%%\{*}"
    fi
done)

if [ -n "$bad" ]; then
    echo "per-coordinate bounds checks found in internal/vector scan loops:" >&2
    printf '%s\n' "$bad" >&2
    exit 1
fi
echo "check_bce: internal/vector scan loops are bounds-check free"
