// Command knnbench regenerates the paper's evaluation: every table and
// figure of §6, plus the repository's extension experiments, as aligned
// text tables.
//
// Usage:
//
//	knnbench                      # run everything at the default scale
//	knnbench -exp fig8,fig11      # selected experiments
//	knnbench -scale 0.1 -nodes 8  # smaller/faster reproduction
//	knnbench -list                # list experiment names
//
// The default scale (1.0) uses Forest×10 = 200,000 objects and takes on
// the order of tens of minutes for the full sweep on a multicore machine;
// -scale 0.1 finishes in a couple of minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"knnjoin/internal/experiments"
	"knnjoin/internal/obs"
	"knnjoin/internal/stats"
	"knnjoin/internal/vector"
)

var order = []string{
	"table2", "table3", "fig6", "fig7", "fig8", "fig9",
	"fig10", "fig11", "fig12", "ablation", "grouping-cost",
	"zknn", "lsh", "baselines", "topk", "range", "skew", "setsim", "centralized",
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "knnbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("knnbench", flag.ContinueOnError)
	scale := fs.Float64("scale", 1.0, "dataset scale (1.0 = Forest×10 with 200K objects)")
	nodes := fs.Int("nodes", 16, "default simulated cluster nodes")
	k := fs.Int("k", 10, "default k")
	seed := fs.Int64("seed", 1, "seed for data and algorithms")
	expFlag := fs.String("exp", "all", "comma-separated experiments (see -list)")
	list := fs.Bool("list", false, "list experiment names and exit")
	spillDir := fs.String("spill-dir", "", "out-of-core backend: run every experiment with DFS chunks and shuffle runs under this directory")
	memLimitFlag := fs.String("mem-limit", "", "resident shuffle budget per run, e.g. 256M (spills to -spill-dir or a temp dir)")
	kernelName := fs.String("kernel", "block", "distance kernel tier: scalar | block | f32 | quantized | auto")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		stop, err := obs.StartCPUProfile(*cpuProfile)
		if err != nil {
			return err
		}
		defer stop()
	}
	if *memProfile != "" {
		defer func() {
			if err := obs.WriteHeapProfile(*memProfile); err != nil {
				fmt.Fprintln(os.Stderr, "knnbench: heap profile:", err)
			}
		}()
	}
	kernel, err := vector.ParseKernel(*kernelName)
	if err != nil {
		return fmt.Errorf("-kernel: %w", err)
	}
	var memLimit int64
	if *memLimitFlag != "" {
		var err error
		if memLimit, err = stats.ParseBytes(*memLimitFlag); err != nil {
			return fmt.Errorf("-mem-limit: %w", err)
		}
	}
	if *list {
		for _, name := range order {
			fmt.Println(name)
		}
		return nil
	}

	selected := make(map[string]bool)
	if *expFlag == "all" || *expFlag == "" {
		for _, n := range order {
			selected[n] = true
		}
	} else {
		for _, n := range strings.Split(*expFlag, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if !contains(order, n) {
				return fmt.Errorf("unknown experiment %q (see -list)", n)
			}
			selected[n] = true
		}
	}

	r := experiments.NewRunner(experiments.Config{
		Scale: *scale, Seed: *seed, Nodes: *nodes, K: *k,
		SpillDir: *spillDir, MemLimit: memLimit, Kernel: kernel,
	})
	start := time.Now()
	fmt.Printf("knnbench: scale=%.3g nodes=%d k=%d seed=%d (Forest×10 = %d objects)\n\n",
		*scale, r.Config().Nodes, r.Config().K, *seed, len(r.ForestX(10)))

	// fig6 and fig7 come from one shared sweep; compute lazily, once.
	var fig6, fig7 *experiments.ExpResult
	sweep := func() error {
		if fig6 != nil {
			return nil
		}
		var err error
		fig6, fig7, err = r.Fig6and7()
		return err
	}

	for _, name := range order {
		if !selected[name] {
			continue
		}
		var res *experiments.ExpResult
		var err error
		switch name {
		case "table2":
			res, err = r.Table2()
		case "table3":
			res, err = r.Table3()
		case "fig6":
			if err = sweep(); err == nil {
				res = fig6
			}
		case "fig7":
			if err = sweep(); err == nil {
				res = fig7
			}
		case "fig8":
			res, err = r.Fig8()
		case "fig9":
			res, err = r.Fig9()
		case "fig10":
			res, err = r.Fig10()
		case "fig11":
			res, err = r.Fig11()
		case "fig12":
			res, err = r.Fig12()
		case "ablation":
			res, err = r.Ablation()
		case "grouping-cost":
			res, err = r.GroupingCost()
		case "zknn":
			res, err = r.ZKNN()
		case "lsh":
			res, err = r.LSH()
		case "baselines":
			res, err = r.Baselines()
		case "topk":
			res, err = r.TopKPairs()
		case "range":
			res, err = r.RangeJoinExp()
		case "skew":
			res, err = r.Skew()
		case "setsim":
			res, err = r.SetSim()
		case "centralized":
			res, err = r.Centralized()
		}
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := res.Render(os.Stdout); err != nil {
			return err
		}
	}
	fmt.Printf("knnbench: done in %v\n", time.Since(start).Round(time.Second))
	return nil
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
