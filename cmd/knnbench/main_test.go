package main

import (
	"os"
	"strings"
	"testing"
)

func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	rp, wp, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = wp
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		var b strings.Builder
		buf := make([]byte, 8192)
		for {
			n, err := rp.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- b.String()
	}()
	ferr := f()
	wp.Close()
	return <-done, ferr
}

func TestList(t *testing.T) {
	out, err := captureStdout(t, func() error { return run([]string{"-list"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range order {
		if !strings.Contains(out, name) {
			t.Fatalf("list output missing %s", name)
		}
	}
}

func TestSingleExperiment(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-scale", "0.005", "-nodes", "4", "-k", "3", "-exp", "table2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "== table2") || strings.Contains(out, "== fig8") {
		t.Fatalf("unexpected selection:\n%s", out)
	}
}

func TestFig7UsesSharedSweep(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-scale", "0.005", "-nodes", "4", "-k", "3", "-exp", "fig7"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "== fig7") || strings.Contains(out, "== fig6") {
		t.Fatalf("fig7-only selection wrong:\n%s", out)
	}
}

func TestEveryExperimentBranch(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	out, err := captureStdout(t, func() error {
		return run([]string{"-scale", "0.005", "-nodes", "4", "-k", "3", "-exp", strings.Join(order, ",")})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range order {
		if !strings.Contains(out, "== "+name) {
			t.Fatalf("output missing experiment %s", name)
		}
	}
}

func TestErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-exp", "fig99"},
		{"-not-a-flag"},
	} {
		if _, err := captureStdout(t, func() error { return run(args) }); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}
