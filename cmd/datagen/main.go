// Command datagen generates the synthetic datasets used throughout the
// repository (CoverType-like "forest", OSM-like spatial data, uniform
// noise) as CSV files with one "id,x1,x2,..." line per object.
//
// Usage:
//
//	datagen -kind forest -n 20000 -expand 10 -o forest10.csv
//	datagen -kind osm -n 100000 -o osm.csv
//	datagen -kind uniform -n 5000 -dims 4 -o cloud.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"knnjoin/internal/codec"
	"knnjoin/internal/dataset"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	kind := fs.String("kind", "forest", "dataset kind: forest | osm | uniform")
	n := fs.Int("n", 20000, "number of base objects")
	expand := fs.Int("expand", 1, "expansion factor (forest only; the paper's ×t datasets)")
	dims := fs.Int("dims", 4, "dimensionality (uniform only)")
	scale := fs.Float64("scale", 100, "coordinate range (uniform only)")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n <= 0 {
		return fmt.Errorf("-n must be positive")
	}

	var objs []codec.Object
	switch *kind {
	case "forest":
		objs = dataset.Forest(*n, *seed)
		if *expand > 1 {
			objs = dataset.Renumber(dataset.Expand(objs, *expand))
		}
	case "osm":
		objs = dataset.OSM(*n, *seed)
	case "uniform":
		if *dims <= 0 {
			return fmt.Errorf("-dims must be positive")
		}
		objs = dataset.Uniform(*n, *dims, *scale, *seed)
	default:
		return fmt.Errorf("unknown -kind %q (want forest, osm or uniform)", *kind)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := dataset.WriteCSV(w, objs); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d objects (%d dims)\n", len(objs), objs[0].Point.Dim())
	return nil
}
