// Command datagen generates the synthetic datasets used throughout the
// repository (CoverType-like "forest", OSM-like spatial data, uniform
// noise, Gaussian cluster mixtures, Zipf-skewed density) as CSV files
// with one "id,x1,x2,..." line per object.
//
// Usage:
//
//	datagen -kind forest -n 20000 -expand 10 -o forest10.csv
//	datagen -kind osm -n 100000 -o osm.csv
//	datagen -kind uniform -n 5000 -dims 4 -o cloud.csv
//	datagen -kind gaussian -n 5000 -dims 4 -clusters 8 -stddev 3 -o blobs.csv
//	datagen -kind zipf -n 5000 -dims 2 -clusters 64 -o skewed.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"knnjoin/internal/codec"
	"knnjoin/internal/dataset"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	kind := fs.String("kind", "forest", "dataset kind: forest | osm | uniform | gaussian | zipf")
	n := fs.Int("n", 20000, "number of base objects")
	expand := fs.Int("expand", 1, "expansion factor (forest only; the paper's ×t datasets)")
	dims := fs.Int("dims", 4, "dimensionality (uniform, gaussian, zipf)")
	scale := fs.Float64("scale", 100, "coordinate range (uniform, gaussian, zipf)")
	clusters := fs.Int("clusters", 8, "gaussian: mixture components; zipf: anchor sites (0 = default)")
	stddev := fs.Float64("stddev", 0, "gaussian: per-coordinate cluster spread (0 = scale/20)")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n <= 0 {
		return fmt.Errorf("-n must be positive")
	}

	var objs []codec.Object
	switch *kind {
	case "forest":
		objs = dataset.Forest(*n, *seed)
		if *expand > 1 {
			objs = dataset.Renumber(dataset.Expand(objs, *expand))
		}
	case "osm":
		objs = dataset.OSM(*n, *seed)
	case "uniform":
		if *dims <= 0 {
			return fmt.Errorf("-dims must be positive")
		}
		objs = dataset.Uniform(*n, *dims, *scale, *seed)
	case "gaussian":
		if *dims <= 0 {
			return fmt.Errorf("-dims must be positive")
		}
		objs = dataset.Gaussian(*n, *dims, *clusters, *stddev, *scale, *seed)
	case "zipf":
		if *dims <= 0 {
			return fmt.Errorf("-dims must be positive")
		}
		objs = dataset.Zipf(*n, *dims, *clusters, *scale, *seed)
	default:
		return fmt.Errorf("unknown -kind %q (want forest, osm, uniform, gaussian or zipf)", *kind)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := dataset.WriteCSV(w, objs); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d objects (%d dims)\n", len(objs), objs[0].Point.Dim())
	return nil
}
