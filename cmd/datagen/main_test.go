package main

import (
	"os"
	"path/filepath"
	"testing"

	"knnjoin/internal/dataset"
)

func TestRunGeneratesEachKind(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		args []string
		n    int
		dims int
	}{
		{"forest", []string{"-kind", "forest", "-n", "50"}, 50, 10},
		{"forest-expanded", []string{"-kind", "forest", "-n", "20", "-expand", "3"}, 60, 10},
		{"osm", []string{"-kind", "osm", "-n", "40"}, 40, 2},
		{"uniform", []string{"-kind", "uniform", "-n", "30", "-dims", "5"}, 30, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := filepath.Join(dir, tc.name+".csv")
			if err := run(append(tc.args, "-o", out)); err != nil {
				t.Fatal(err)
			}
			f, err := os.Open(out)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			objs, err := dataset.ReadCSV(f)
			if err != nil {
				t.Fatal(err)
			}
			if len(objs) != tc.n {
				t.Fatalf("got %d objects, want %d", len(objs), tc.n)
			}
			if objs[0].Point.Dim() != tc.dims {
				t.Fatalf("dims = %d, want %d", objs[0].Point.Dim(), tc.dims)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-kind", "marble"},
		{"-n", "0"},
		{"-kind", "uniform", "-dims", "0"},
		{"-bogus-flag"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.csv"), filepath.Join(dir, "b.csv")
	if err := run([]string{"-kind", "osm", "-n", "25", "-seed", "7", "-o", a}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-kind", "osm", "-n", "25", "-seed", "7", "-o", b}); err != nil {
		t.Fatal(err)
	}
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if string(da) != string(db) {
		t.Fatal("same seed produced different files")
	}
}
