package main

import (
	"os"
	"path/filepath"
	"testing"

	"knnjoin/internal/dataset"
)

func TestRunGeneratesEachKind(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		args []string
		n    int
		dims int
	}{
		{"forest", []string{"-kind", "forest", "-n", "50"}, 50, 10},
		{"forest-expanded", []string{"-kind", "forest", "-n", "20", "-expand", "3"}, 60, 10},
		{"osm", []string{"-kind", "osm", "-n", "40"}, 40, 2},
		{"uniform", []string{"-kind", "uniform", "-n", "30", "-dims", "5"}, 30, 5},
		{"gaussian", []string{"-kind", "gaussian", "-n", "40", "-dims", "3", "-clusters", "4"}, 40, 3},
		{"zipf", []string{"-kind", "zipf", "-n", "40", "-dims", "2", "-clusters", "16"}, 40, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := filepath.Join(dir, tc.name+".csv")
			if err := run(append(tc.args, "-o", out)); err != nil {
				t.Fatal(err)
			}
			f, err := os.Open(out)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			objs, err := dataset.ReadCSV(f)
			if err != nil {
				t.Fatal(err)
			}
			if len(objs) != tc.n {
				t.Fatalf("got %d objects, want %d", len(objs), tc.n)
			}
			if objs[0].Point.Dim() != tc.dims {
				t.Fatalf("dims = %d, want %d", objs[0].Point.Dim(), tc.dims)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-kind", "marble"},
		{"-n", "0"},
		{"-kind", "uniform", "-dims", "0"},
		{"-kind", "gaussian", "-dims", "0"},
		{"-kind", "zipf", "-dims", "-1"},
		{"-bogus-flag"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	kinds := [][]string{
		{"-kind", "osm", "-n", "25"},
		{"-kind", "gaussian", "-n", "25", "-dims", "3", "-clusters", "4"},
		{"-kind", "zipf", "-n", "25", "-dims", "2", "-clusters", "8"},
	}
	for _, base := range kinds {
		t.Run(base[1], func(t *testing.T) {
			dir := t.TempDir()
			a, b, c := filepath.Join(dir, "a.csv"), filepath.Join(dir, "b.csv"), filepath.Join(dir, "c.csv")
			if err := run(append(append([]string{}, base...), "-seed", "7", "-o", a)); err != nil {
				t.Fatal(err)
			}
			if err := run(append(append([]string{}, base...), "-seed", "7", "-o", b)); err != nil {
				t.Fatal(err)
			}
			if err := run(append(append([]string{}, base...), "-seed", "8", "-o", c)); err != nil {
				t.Fatal(err)
			}
			da, _ := os.ReadFile(a)
			db, _ := os.ReadFile(b)
			dc, _ := os.ReadFile(c)
			if string(da) != string(db) {
				t.Fatal("same seed produced different files")
			}
			if string(da) == string(dc) {
				t.Fatal("different seeds produced identical files")
			}
		})
	}
}
