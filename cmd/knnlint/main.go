// Command knnlint runs the project's invariant checkers — the
// internal/lint analyzer suite — over the packages matching its
// arguments (default ./...). It is the compile-time gate CI runs on
// every PR: the invariants it encodes (gob wire-safety of job specs,
// deterministic map iteration on byte-identity paths, the squared-
// distance contract, query purity on shared indexes, atomic snapshot
// discipline, and the documentation rules) have each produced at least
// one real bug when left to review.
//
// Usage:
//
//	knnlint [packages]             # run every analyzer
//	knnlint -only maprange ./...   # run one analyzer
//	knnlint -list                  # print the analyzers and their docs
//
// A finding is suppressed site-by-site with a justified directive on
// the offending line or the line above it:
//
//	//lint:allow <analyzer>: <one-line justification>
//
// Directives without a justification (or naming an unknown analyzer)
// are themselves findings, so the whitelist cannot rot.
package main

import (
	"flag"
	"fmt"
	"os"

	"knnjoin/internal/lint"
)

func main() {
	only := flag.String("only", "", "run only the named analyzer")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers := lint.All
	if *only != "" {
		a := lint.ByName(*only)
		if a == nil {
			fmt.Fprintf(os.Stderr, "knnlint: unknown analyzer %q\n", *only)
			os.Exit(2)
		}
		analyzers = []*lint.Analyzer{a}
	}
	os.Exit(lint.RunCLI(os.Stdout, analyzers, flag.Args()))
}
