package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunWritesValidJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-out", out, "-benchtime", "1"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Suite != "mapreduce-shuffle" || len(rep.Results) != 3 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 || r.AllocsPerOp <= 0 || r.ShuffleRecords <= 0 || r.ShuffleBytes <= 0 {
			t.Fatalf("implausible result: %+v", r)
		}
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-nonsense"}); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-benchtime", "0"}); err == nil {
		t.Fatal("zero benchtime accepted")
	}
}
