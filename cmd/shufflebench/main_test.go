package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunWritesValidJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-out", out, "-benchtime", "1"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Suite != "mapreduce-shuffle" || len(rep.Results) != 3 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 || r.AllocsPerOp <= 0 || r.ShuffleRecords <= 0 || r.ShuffleBytes <= 0 {
			t.Fatalf("implausible result: %+v", r)
		}
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-nonsense"}); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-benchtime", "0"}); err == nil {
		t.Fatal("zero benchtime accepted")
	}
}

func TestSpillSuiteWritesValidJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "spill.json")
	if err := run([]string{"-suite", "spill", "-out", out, "-benchtime", "1",
		"-mem-limit", "64K", "-spill-dir", t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Suite != "mapreduce-spill" || len(rep.Results) != 6 || rep.MemLimit != 64<<10 {
		t.Fatalf("unexpected report: suite=%q results=%d limit=%d", rep.Suite, len(rep.Results), rep.MemLimit)
	}
	for i := 0; i < len(rep.Results); i += 2 {
		mem, sp := rep.Results[i], rep.Results[i+1]
		if mem.Engine != "in-memory" || sp.Engine != "spill" {
			t.Fatalf("engine pairing broken at %d: %q/%q", i, mem.Engine, sp.Engine)
		}
		if mem.ShuffleBytes != sp.ShuffleBytes || mem.ShuffleRecords != sp.ShuffleRecords {
			t.Fatalf("%s: engines shuffled different workloads", mem.Name)
		}
		if sp.ShuffleBytes > rep.MemLimit {
			if sp.SpilledRuns == 0 {
				t.Fatalf("%s: over-limit workload did not spill", sp.Name)
			}
			if sp.PeakResidentBytes > rep.MemLimit {
				t.Fatalf("%s: spill peak %d exceeds limit %d", sp.Name, sp.PeakResidentBytes, rep.MemLimit)
			}
		}
	}
}

func TestRunRejectsBadSuite(t *testing.T) {
	if err := run([]string{"-suite", "nope"}); err == nil {
		t.Fatal("bad suite accepted")
	}
}
