package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunWritesValidJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-out", out, "-benchtime", "1"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Suite != "mapreduce-shuffle" || len(rep.Results) != 3 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 || r.AllocsPerOp <= 0 || r.ShuffleRecords <= 0 || r.ShuffleBytes <= 0 {
			t.Fatalf("implausible result: %+v", r)
		}
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-nonsense"}); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-benchtime", "0"}); err == nil {
		t.Fatal("zero benchtime accepted")
	}
}

func TestSpillSuiteWritesValidJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "spill.json")
	if err := run([]string{"-suite", "spill", "-out", out, "-benchtime", "1",
		"-mem-limit", "64K", "-spill-dir", t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Suite != "mapreduce-spill" || len(rep.Results) != 6 || rep.MemLimit != 64<<10 {
		t.Fatalf("unexpected report: suite=%q results=%d limit=%d", rep.Suite, len(rep.Results), rep.MemLimit)
	}
	for i := 0; i < len(rep.Results); i += 2 {
		mem, sp := rep.Results[i], rep.Results[i+1]
		if mem.Engine != "in-memory" || sp.Engine != "spill" {
			t.Fatalf("engine pairing broken at %d: %q/%q", i, mem.Engine, sp.Engine)
		}
		if mem.ShuffleBytes != sp.ShuffleBytes || mem.ShuffleRecords != sp.ShuffleRecords {
			t.Fatalf("%s: engines shuffled different workloads", mem.Name)
		}
		if sp.ShuffleBytes > rep.MemLimit {
			if sp.SpilledRuns == 0 {
				t.Fatalf("%s: over-limit workload did not spill", sp.Name)
			}
			if sp.PeakResidentBytes > rep.MemLimit {
				t.Fatalf("%s: spill peak %d exceeds limit %d", sp.Name, sp.PeakResidentBytes, rep.MemLimit)
			}
		}
	}
}

func TestRunRejectsBadSuite(t *testing.T) {
	if err := run([]string{"-suite", "nope"}); err == nil {
		t.Fatal("bad suite accepted")
	}
}

func TestServeSuiteWritesValidJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "serve.json")
	if err := run([]string{"-suite", "serve", "-out", out,
		"-clients", "4", "-requests", "200"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep ServeReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Suite != "knnserve-load" || len(rep.Results) != 3 { // clients 1, 2, 4
		t.Fatalf("unexpected report: suite=%q results=%d", rep.Suite, len(rep.Results))
	}
	for _, r := range rep.Results {
		if !r.Verified {
			t.Fatalf("%s: responses not verified byte-identical", r.Name)
		}
		if r.ThroughputRPS <= 0 || r.P50Ms <= 0 || r.P99Ms < r.P50Ms {
			t.Fatalf("%s: implausible latency profile %+v", r.Name, r)
		}
		if r.CacheHitRate <= 0 || r.CacheHitRate >= 1 {
			t.Fatalf("%s: hit rate %v outside (0,1) — pool sizing broken", r.Name, r.CacheHitRate)
		}
		if r.DistComputations <= 0 {
			t.Fatalf("%s: no distance computations recorded", r.Name)
		}
	}
}

func TestServeSuiteRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-suite", "serve", "-clients", "0"}); err == nil {
		t.Fatal("zero clients accepted")
	}
	if err := run([]string{"-suite", "serve", "-clients", "8", "-requests", "4"}); err == nil {
		t.Fatal("requests < clients accepted")
	}
	if err := run([]string{"-suite", "serve", "-k", "0"}); err == nil {
		t.Fatal("zero k accepted")
	}
}

func TestPlanSuiteWritesValidJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("plan suite measures real joins")
	}
	out := filepath.Join(t.TempDir(), "plan.json")
	if err := run([]string{"-suite", "plan", "-out", out,
		"-plan-n", "800", "-plan-reps", "1"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep PlanReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Suite != "planner-vs-grid" || len(rep.Workloads) != 4 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	for _, w := range rep.Workloads {
		if w.Planned == "" || w.PlannedWallNs <= 0 || w.BestWallNs <= 0 || len(w.Fixed) != 7 {
			t.Fatalf("implausible workload row: %+v", w)
		}
		if w.WorstWallNs < w.BestWallNs {
			t.Fatalf("worst %f < best %f", w.WorstWallNs, w.BestWallNs)
		}
		if w.PredictedDistComps <= 0 || w.PlannedDistComps <= 0 {
			t.Fatalf("missing predicted/actual dist comps: %+v", w)
		}
	}
}

func TestPlanSuiteRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-suite", "plan", "-plan-n", "10"},
		{"-suite", "plan", "-plan-reps", "0"},
		{"-suite", "plan", "-k", "0"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}
