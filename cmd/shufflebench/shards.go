package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"knnjoin/internal/dataset"
	"knnjoin/internal/serve"
	"knnjoin/internal/shard"
	"knnjoin/internal/stats"
	"knnjoin/internal/vindex"
)

// ShardsResult is one sharded-serving measurement in BENCH_shards.json.
type ShardsResult struct {
	Name          string  `json:"name"`
	Shards        int     `json:"shards"`
	Replicas      int     `json:"replicas"`
	Clients       int     `json:"clients"`
	Requests      int     `json:"requests"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	// AvgShardsContacted is the router's mean distinct-shards-per-query:
	// below Shards means the Theorem-1/2 bounds pruned whole shards.
	AvgShardsContacted float64 `json:"avg_shards_contacted"`
	// ScanRPCs counts delegated scan calls; Failovers replica failover
	// transitions (non-zero only in the recovery row).
	ScanRPCs  int64 `json:"scan_rpcs"`
	Failovers int64 `json:"failovers"`
	// Verified is true when every response was byte-identical to the
	// single-node server's answer (rows fail hard otherwise).
	Verified bool `json:"verified"`
}

// ShardsReport is the top-level BENCH_shards.json document.
type ShardsReport struct {
	Suite        string         `json:"suite"`
	IndexObjects int            `json:"index_objects"`
	Dim          int            `json:"dim"`
	K            int            `json:"k"`
	QueryPool    int            `json:"query_pool"`
	Results      []ShardsResult `json:"results"`
}

// shardsWorkload is a clustered dataset (where shard pruning has
// teeth), its saved index file, and the single-node ground-truth bytes
// every sharded response must reproduce.
type shardsWorkload struct {
	idxPath string
	ix      *vindex.Index
	bodies  []string
	want    [][]byte
	k       int
	cleanup func()
}

func newShardsWorkload(objects, pool, k int) (*shardsWorkload, error) {
	const dim, clusters = 4, 8
	objs := dataset.Gaussian(objects, dim, clusters, 0.04, 100, 17)
	ix, err := vindex.Build(objs, vindex.Options{Seed: 1})
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "shardsbench-*")
	if err != nil {
		return nil, err
	}
	w := &shardsWorkload{ix: ix, k: k, cleanup: func() { os.RemoveAll(dir) }}
	w.idxPath = filepath.Join(dir, "bench.idx")
	f, err := os.Create(w.idxPath)
	if err != nil {
		w.cleanup()
		return nil, err
	}
	if err := ix.Save(f); err != nil {
		f.Close()
		w.cleanup()
		return nil, err
	}
	if err := f.Close(); err != nil {
		w.cleanup()
		return nil, err
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < pool; i++ {
		q := objs[rng.Intn(len(objs))].Point.Clone()
		for d := range q {
			q[d] += rng.NormFloat64() * 2
		}
		res, st := ix.KNNWithStats(q, k)
		body, err := json.Marshal(serve.KNNRequest{Point: q, K: k})
		if err != nil {
			w.cleanup()
			return nil, err
		}
		want, err := serve.MarshalKNN(res, st)
		if err != nil {
			w.cleanup()
			return nil, err
		}
		w.bodies = append(w.bodies, string(body))
		w.want = append(w.want, want)
	}
	return w, nil
}

// drive fires requests kNN queries from clients goroutines at url,
// hard-failing on any response that is not byte-identical to the
// single-node ground truth, and returns per-request latencies (ms).
func (w *shardsWorkload) drive(url string, clients, requests int) ([]float64, error) {
	perClient := requests / clients
	latencies := make([][]float64, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 300))
			lat := make([]float64, 0, perClient)
			for i := 0; i < perClient; i++ {
				qi := rng.Intn(len(w.bodies))
				t0 := time.Now()
				resp, err := http.Post(url+"/knn", "application/json", strings.NewReader(w.bodies[qi]))
				if err != nil {
					errs[c] = err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs[c] = err
					return
				}
				lat = append(lat, float64(time.Since(t0).Nanoseconds())/1e6)
				if resp.StatusCode != http.StatusOK {
					errs[c] = fmt.Errorf("client %d: status %d: %s", c, resp.StatusCode, body)
					return
				}
				if !bytes.Equal(body, w.want[qi]) {
					errs[c] = fmt.Errorf("client %d query %d: sharded response not byte-identical to single-node", c, qi)
					return
				}
			}
			latencies[c] = lat
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var all []float64
	for _, lat := range latencies {
		all = append(all, lat...)
	}
	return all, nil
}

// measureShardRow starts a cluster, drives the workload through a
// serve.Server over the router, and reports the row.
func (w *shardsWorkload) measureShardRow(name string, shards, replicas, clients, requests int, plan *shard.FaultPlan, rcfg shard.RouterConfig) (ShardsResult, error) {
	cluster, err := shard.StartCluster(shard.ClusterConfig{
		IndexPath: w.idxPath, Shards: shards, Replicas: replicas, Faults: plan,
	})
	if err != nil {
		return ShardsResult{}, err
	}
	defer cluster.Close()
	router := shard.NewRouter(cluster, rcfg)
	defer router.Close()
	// Cache off: the subject is routing, not the result cache.
	s := serve.NewBackend(router, w.idxPath, serve.Config{CacheSize: -1, Loader: router.Loader})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	start := time.Now()
	lat, err := w.drive(ts.URL, clients, requests)
	elapsed := time.Since(start)
	if err != nil {
		return ShardsResult{}, fmt.Errorf("%s: %w", name, err)
	}
	rst := router.Stats()
	return ShardsResult{
		Name:               name,
		Shards:             shards,
		Replicas:           replicas,
		Clients:            clients,
		Requests:           len(lat),
		ThroughputRPS:      float64(len(lat)) / elapsed.Seconds(),
		P50Ms:              stats.Quantile(lat, 0.50),
		P99Ms:              stats.Quantile(lat, 0.99),
		AvgShardsContacted: rst.AvgShardsContacted,
		ScanRPCs:           rst.ScanRPCs,
		Failovers:          rst.Failovers,
		Verified:           true, // drive fails hard otherwise
	}, nil
}

func runShardsSuite(objects, requests, k int) (*ShardsReport, error) {
	pool := requests / 4
	if pool < 8 {
		pool = 8
	}
	w, err := newShardsWorkload(objects, pool, k)
	if err != nil {
		return nil, err
	}
	defer w.cleanup()
	report := &ShardsReport{
		Suite:        "knnserve-shards",
		IndexObjects: w.ix.Len(),
		Dim:          w.ix.Dim(),
		K:            k,
		QueryPool:    pool,
	}
	const clients = 4

	// Shard-count ladder: aggregate QPS and shards-contacted versus
	// shard count, every response pinned to the single-node bytes.
	for _, shards := range []int{1, 2, 4} {
		row, err := w.measureShardRow(fmt.Sprintf("knn/shards=%d", shards),
			shards, 1, clients, requests, nil, shard.RouterConfig{})
		if err != nil {
			return nil, err
		}
		if shards > 1 && row.AvgShardsContacted >= float64(shards) {
			return nil, fmt.Errorf("%s: routing never pruned a shard (avg contacted %.2f of %d)",
				row.Name, row.AvgShardsContacted, shards)
		}
		report.Results = append(report.Results, row)
	}

	// Recovery row: one replica of every shard is killed mid-stream;
	// byte-identity must hold through the failover.
	plan := &shard.FaultPlan{Events: []shard.FaultEvent{
		{Shard: 0, Replica: 0, AfterScans: requests / 8, Action: shard.FaultKill},
		{Shard: 1, Replica: 0, AfterScans: requests / 8, Action: shard.FaultKill},
	}}
	row, err := w.measureShardRow("knn/shards=2/kill-one-replica",
		2, 2, clients, requests, plan, shard.RouterConfig{})
	if err != nil {
		return nil, err
	}
	if row.Failovers == 0 {
		return nil, fmt.Errorf("recovery row: fault plan fired no failovers")
	}
	report.Results = append(report.Results, row)
	return report, nil
}
