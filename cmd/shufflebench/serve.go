package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"knnjoin/internal/dataset"
	"knnjoin/internal/serve"
	"knnjoin/internal/stats"
	"knnjoin/internal/vector"
	"knnjoin/internal/vindex"
)

// ServeResult is one load-generation measurement in BENCH_serve.json.
type ServeResult struct {
	Name          string  `json:"name"`
	Clients       int     `json:"clients"`
	Requests      int     `json:"requests"`
	BatchRequests int     `json:"batch_requests"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P90Ms         float64 `json:"p90_ms"`
	P99Ms         float64 `json:"p99_ms"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	// DistComputations totals the index work behind every cache miss,
	// from the server's /stats endpoint.
	DistComputations int64 `json:"dist_computations"`
	// Verified is true when every response — individual and batched —
	// was byte-identical to the sequential vindex answer.
	Verified bool `json:"verified"`
}

// ServeReport is the top-level BENCH_serve.json document.
type ServeReport struct {
	Suite        string        `json:"suite"`
	IndexObjects int           `json:"index_objects"`
	Dim          int           `json:"dim"`
	K            int           `json:"k"`
	QueryPool    int           `json:"query_pool"`
	Results      []ServeResult `json:"results"`
}

// serveWorkload is the shared setup of every load-generation row: one
// index, a fixed query pool, and the sequential ground-truth response
// bytes each server answer must reproduce exactly.
type serveWorkload struct {
	ix      *vindex.Index
	queries []vector.Point
	bodies  []string // marshaled KNNRequest per query
	want    [][]byte // sequential vindex answer per query
	k       int
}

func newServeWorkload(objects, pool, k int) (*serveWorkload, error) {
	objs := dataset.Forest(objects, 1)
	ix, err := vindex.Build(objs, vindex.Options{Seed: 1})
	if err != nil {
		return nil, err
	}
	w := &serveWorkload{ix: ix, k: k}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < pool; i++ {
		q := objs[rng.Intn(len(objs))].Point.Clone()
		for d := range q {
			q[d] += rng.NormFloat64() * 3
		}
		res, st := ix.KNNWithStats(q, k)
		body, err := json.Marshal(serve.KNNRequest{Point: q, K: k})
		if err != nil {
			return nil, err
		}
		want, err := serve.MarshalKNN(res, st)
		if err != nil {
			return nil, err
		}
		w.queries = append(w.queries, q)
		w.bodies = append(w.bodies, string(body))
		w.want = append(w.want, want)
	}
	return w, nil
}

// driveClients fires `requests` kNN queries from `clients` concurrent
// goroutines against url, verifying byte-identity of every response, and
// returns the client-observed per-request latencies in milliseconds.
func (w *serveWorkload) driveClients(url string, clients, requests int) ([]float64, error) {
	perClient := requests / clients
	latencies := make([][]float64, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 100))
			lat := make([]float64, 0, perClient)
			for i := 0; i < perClient; i++ {
				qi := rng.Intn(len(w.queries))
				t0 := time.Now()
				resp, err := http.Post(url+"/knn", "application/json", strings.NewReader(w.bodies[qi]))
				if err != nil {
					errs[c] = err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs[c] = err
					return
				}
				lat = append(lat, float64(time.Since(t0).Nanoseconds())/1e6)
				if resp.StatusCode != http.StatusOK {
					errs[c] = fmt.Errorf("client %d: status %d: %s", c, resp.StatusCode, body)
					return
				}
				if !bytes.Equal(body, w.want[qi]) {
					errs[c] = fmt.Errorf("client %d query %d: response not byte-identical to sequential vindex", c, qi)
					return
				}
			}
			latencies[c] = lat
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var all []float64
	for _, lat := range latencies {
		all = append(all, lat...)
	}
	return all, nil
}

// driveBatches sends `batches` /knn/batch requests of batchSize queries
// each and verifies every per-query result byte-identically.
func (w *serveWorkload) driveBatches(url string, batches, batchSize int) error {
	rng := rand.New(rand.NewSource(999))
	for b := 0; b < batches; b++ {
		idx := make([]int, batchSize)
		var req serve.BatchRequest
		for i := range idx {
			idx[i] = rng.Intn(len(w.queries))
			req.Queries = append(req.Queries, serve.KNNRequest{Point: w.queries[idx[i]], K: w.k})
		}
		body, err := json.Marshal(req)
		if err != nil {
			return err
		}
		resp, err := http.Post(url+"/knn/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("batch %d: status %d: %s", b, resp.StatusCode, raw)
		}
		var br serve.BatchResponse
		if err := json.Unmarshal(raw, &br); err != nil {
			return err
		}
		if len(br.Results) != batchSize {
			return fmt.Errorf("batch %d: %d results, want %d", b, len(br.Results), batchSize)
		}
		for i, res := range br.Results {
			if !bytes.Equal(res, w.want[idx[i]]) {
				return fmt.Errorf("batch %d result %d: not byte-identical to sequential vindex", b, i)
			}
		}
	}
	return nil
}

func runServeSuite(clients, requests, k int) (*ServeReport, error) {
	const objects = 20000
	pool := requests / 4
	if pool < 8 {
		pool = 8
	}
	w, err := newServeWorkload(objects, pool, k)
	if err != nil {
		return nil, err
	}
	report := &ServeReport{
		Suite:        "knnserve-load",
		IndexObjects: w.ix.Len(),
		Dim:          w.ix.Dim(),
		K:            k,
		QueryPool:    pool,
	}

	// Concurrency ladder up to the requested client count — never above
	// it, and requests ≥ clients (flag-validated) keeps every row's
	// per-client share ≥ 1.
	rows := []int{1, clients / 2, clients}
	sort.Ints(rows)
	seen := map[int]bool{}
	const batches = 8
	for _, c := range rows {
		if c < 1 || seen[c] {
			continue
		}
		seen[c] = true
		// A fresh server per row: each row's cache starts cold, so hit
		// rates are comparable across rows.
		s := serve.New(w.ix, "", serve.Config{Workers: c, CacheSize: pool})
		ts := httptest.NewServer(s.Handler())
		start := time.Now()
		lat, err := w.driveClients(ts.URL, c, requests)
		elapsed := time.Since(start)
		if err == nil {
			err = w.driveBatches(ts.URL, batches, min(64, pool))
		}
		if err != nil {
			ts.Close()
			return nil, err
		}
		st := s.Stats()
		ts.Close()
		report.Results = append(report.Results, ServeResult{
			Name:             fmt.Sprintf("knn/clients=%d", c),
			Clients:          c,
			Requests:         len(lat),
			BatchRequests:    batches,
			ThroughputRPS:    float64(len(lat)) / elapsed.Seconds(),
			P50Ms:            stats.Quantile(lat, 0.50),
			P90Ms:            stats.Quantile(lat, 0.90),
			P99Ms:            stats.Quantile(lat, 0.99),
			CacheHitRate:     st.Cache.HitRate,
			DistComputations: st.DistComputations,
			Verified:         true, // driveClients/driveBatches fail hard otherwise
		})
	}
	return report, nil
}
