package main

import (
	"fmt"
	"reflect"
	"time"

	"knnjoin"
	"knnjoin/internal/dataset"
)

// The cluster suite measures the multi-process MapReduce engine against
// the in-process engine on one kNN self-join workload: wall time and
// shuffle volume as the worker count grows, plus one fault-injected row
// where a worker is killed mid-join and the job must recover by task
// re-execution. Every row's results are checked byte-identical to the
// in-process run — a mismatch hard-fails the suite.

// ClusterResult is one engine configuration's outcome.
type ClusterResult struct {
	// Name identifies the row: "in-process", "workers=N" or
	// "workers=N/kill-one".
	Name string `json:"name"`
	// Workers is the worker-process count; zero is the in-process engine.
	Workers int `json:"workers"`
	// WallNs is the join's end-to-end wall time.
	WallNs int64 `json:"wall_ns"`
	// ShuffleRecords and ShuffleBytes are summed over the join's jobs.
	ShuffleRecords int64 `json:"shuffle_records"`
	ShuffleBytes   int64 `json:"shuffle_bytes"`
	// WorkerTasks counts task attempts committed by worker processes,
	// summed over jobs (zero in-process).
	WorkerTasks int `json:"worker_tasks,omitempty"`
	// ReexecutedAttempts counts lease- or damage-driven task
	// re-dispatches, summed over jobs — the recovery row must show at
	// least one.
	ReexecutedAttempts int64 `json:"reexecuted_attempts,omitempty"`
}

// ClusterReport is the BENCH_cluster.json document.
type ClusterReport struct {
	Suite   string          `json:"suite"`
	Algo    string          `json:"algo"`
	Records int             `json:"records"`
	K       int             `json:"k"`
	Nodes   int             `json:"nodes"`
	Results []ClusterResult `json:"results"`
}

func clusterRow(name string, opts knnjoin.Options, objs []knnjoin.Object,
	want []knnjoin.Result) (ClusterResult, error) {
	start := time.Now()
	got, st, err := knnjoin.SelfJoin(objs, opts)
	wall := time.Since(start)
	if err != nil {
		return ClusterResult{}, fmt.Errorf("%s: %w", name, err)
	}
	if want != nil && !reflect.DeepEqual(got, want) {
		return ClusterResult{}, fmt.Errorf("%s: output differs from the in-process engine", name)
	}
	row := ClusterResult{Name: name, Workers: opts.Workers, WallNs: wall.Nanoseconds()}
	for _, j := range st.Jobs {
		row.ShuffleRecords += j.ShuffleRecords
		row.ShuffleBytes += j.ShuffleBytes
		row.WorkerTasks += j.WorkerTasks
		row.ReexecutedAttempts += j.ReexecutedAttempts
	}
	return row, nil
}

func runClusterSuite(records, k, nodes int) (*ClusterReport, error) {
	objs := dataset.Uniform(records, 4, 100, 17)
	opts := knnjoin.Options{K: k, Algorithm: knnjoin.PGBJ, Nodes: nodes, Seed: 5}

	report := &ClusterReport{
		Suite: "mapreduce-cluster", Algo: opts.Algorithm.String(),
		Records: records, K: k, Nodes: nodes,
	}

	// Baseline: the in-process engine defines the expected bytes.
	want, _, err := knnjoin.SelfJoin(objs, opts)
	if err != nil {
		return nil, fmt.Errorf("in-process: %w", err)
	}
	base, err := clusterRow("in-process", opts, objs, nil)
	if err != nil {
		return nil, err
	}
	report.Results = append(report.Results, base)

	for _, w := range []int{1, 2, 3} {
		wopts := opts
		wopts.Workers = w
		row, err := clusterRow(fmt.Sprintf("workers=%d", w), wopts, objs, want)
		if err != nil {
			return nil, err
		}
		if row.WorkerTasks == 0 {
			return nil, fmt.Errorf("workers=%d: no tasks committed on worker processes", w)
		}
		report.Results = append(report.Results, row)
	}

	// Recovery: three workers, one killed mid-join (attempt 1 only, so
	// the re-dispatched attempt survives). The job must still finish
	// with identical bytes, via at least one re-execution.
	fopts := opts
	fopts.Workers = 3
	fopts.Faults = &knnjoin.FaultPlan{Events: []knnjoin.FaultEvent{
		{Worker: -1, Task: "pgbj-join/map/0", Attempt: 1,
			Point: knnjoin.AtMidTask, Action: knnjoin.ActKill},
	}}
	row, err := clusterRow("workers=3/kill-one", fopts, objs, want)
	if err != nil {
		return nil, err
	}
	if row.ReexecutedAttempts < 1 {
		return nil, fmt.Errorf("kill-one row: ReexecutedAttempts = %d, want >= 1", row.ReexecutedAttempts)
	}
	report.Results = append(report.Results, row)
	return report, nil
}
