// Command shufflebench runs the MapReduce shuffle micro-benchmarks and
// writes the results as JSON, so the shuffle's performance trajectory is
// tracked across changes in a machine-readable form (committed as
// BENCH_shuffle.json at the repository root). The workloads are the same
// internal/benchjobs jobs bench_test.go measures with `go test -bench`.
//
// Usage:
//
//	shufflebench                     # print JSON to stdout
//	shufflebench -out BENCH_shuffle.json
//	shufflebench -benchtime 50       # inner iterations per measurement
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"knnjoin/internal/benchjobs"
	"knnjoin/internal/mapreduce"
)

// Result is one benchmark's outcome in the emitted JSON.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// ShuffleRecords and ShuffleBytes characterize the measured workload,
	// so a future run can tell a perf change from a workload change.
	ShuffleRecords int64 `json:"shuffle_records"`
	ShuffleBytes   int64 `json:"shuffle_bytes"`
}

// Report is the top-level JSON document.
type Report struct {
	Suite   string   `json:"suite"`
	Engine  string   `json:"engine"`
	Results []Result `json:"results"`
}

func measure(name string, job *mapreduce.Job, iters int) (Result, error) {
	in := benchjobs.Input(benchjobs.Records)
	var jobErr error
	var stats *mapreduce.JobStats
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for it := 0; it < iters; it++ {
				js, err := benchjobs.Run(job, in)
				if err != nil {
					jobErr = err
					b.FailNow()
				}
				stats = js
			}
		}
	})
	if jobErr != nil {
		return Result{}, fmt.Errorf("%s: %w", name, jobErr)
	}
	n := br.N * iters
	return Result{
		Name:           name,
		Iterations:     n,
		NsPerOp:        float64(br.T.Nanoseconds()) / float64(n),
		AllocsPerOp:    br.AllocsPerOp() / int64(iters),
		BytesPerOp:     br.AllocedBytesPerOp() / int64(iters),
		ShuffleRecords: stats.ShuffleRecords,
		ShuffleBytes:   stats.ShuffleBytes,
	}, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("shufflebench", flag.ContinueOnError)
	out := fs.String("out", "", "output file (default stdout)")
	iters := fs.Int("benchtime", 10, "inner iterations per measurement")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *iters < 1 {
		return fmt.Errorf("-benchtime must be at least 1, got %d", *iters)
	}

	report := Report{Suite: "mapreduce-shuffle", Engine: "sort-merge-streaming"}
	cases := []struct {
		name string
		job  *mapreduce.Job
	}{
		{"flat/keys=32000", benchjobs.FlatJob(32000)},
		{"flat/keys=256", benchjobs.FlatJob(256)},
		{"composite/secondary-sort", benchjobs.CompositeJob()},
	}
	for _, c := range cases {
		res, err := measure(c.name, c.job, *iters)
		if err != nil {
			return err
		}
		report.Results = append(report.Results, res)
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(*out, enc, 0o644)
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "shufflebench:", err)
		os.Exit(1)
	}
}
