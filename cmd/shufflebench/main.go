// Command shufflebench runs the MapReduce shuffle micro-benchmarks and
// writes the results as JSON, so the shuffle's performance trajectory is
// tracked across changes in a machine-readable form. Two suites exist,
// both committed at the repository root:
//
//   - "shuffle" (BENCH_shuffle.json): the in-memory sort-merge shuffle on
//     the internal/benchjobs workloads bench_test.go also measures;
//   - "spill" (BENCH_spill.json): the same workloads at 4× the input on
//     the in-memory backend versus the out-of-core backend under a
//     memory limit far below the shuffle size — demonstrating that
//     spilled jobs stay under the limit (peak_resident_bytes) at a
//     bounded slowdown while shuffling the same records;
//   - "serve" (BENCH_serve.json): the knnserve query tier under load —
//     N concurrent clients firing kNN queries (plus batch requests) at
//     an in-process server, measuring throughput, p50/p90/p99 latency
//     and cache hit rate while verifying every response is
//     byte-identical to a sequential vindex query;
//   - "plan" (BENCH_plan.json): the cost-based planner against a grid of
//     fixed plans on four workload shapes (uniform, gaussian, zipf,
//     lopsided |R|≪|S|) — hard-failing when the planner's pick measures
//     more than 1.5× slower than the best fixed plan;
//   - "cluster" (BENCH_cluster.json): the multi-process coordinator/worker
//     engine versus the in-process engine on one kNN self-join — wall time
//     and shuffle volume at 1/2/3 worker processes plus a recovery row
//     where a worker is killed mid-join, every row verified byte-identical
//     to the in-process result;
//   - "shards" (BENCH_shards.json): the sharded serving tier — aggregate
//     QPS, p50/p99 and shards-contacted-per-query at 1/2/4 shard
//     processes, plus a recovery row where one replica per shard is
//     killed mid-stream, every response verified byte-identical to the
//     single-node server.
//
// Usage:
//
//	shufflebench                                  # shuffle suite to stdout
//	shufflebench -out BENCH_shuffle.json
//	shufflebench -suite spill -out BENCH_spill.json
//	shufflebench -suite spill -mem-limit 128K
//	shufflebench -suite serve -out BENCH_serve.json
//	shufflebench -suite serve -clients 16 -requests 5000
//	shufflebench -suite plan -out BENCH_plan.json
//	shufflebench -suite plan -plan-n 1500         # CI-sized plan suite
//	shufflebench -suite cluster -out BENCH_cluster.json
//	shufflebench -suite shards -out BENCH_shards.json
//	shufflebench -suite shards -shards-n 1500 -requests 400   # CI-sized
//	shufflebench -benchtime 50                    # inner iterations per measurement
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"knnjoin"
	"knnjoin/internal/benchjobs"
	"knnjoin/internal/mapreduce"
	"knnjoin/internal/shard"
	"knnjoin/internal/stats"
)

// Result is one benchmark's outcome in the emitted JSON.
type Result struct {
	Name        string  `json:"name"`
	Engine      string  `json:"engine,omitempty"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// ShuffleRecords and ShuffleBytes characterize the measured workload,
	// so a future run can tell a perf change from a workload change.
	ShuffleRecords int64 `json:"shuffle_records"`
	ShuffleBytes   int64 `json:"shuffle_bytes"`
	// Spill-suite fields: the engine's residency high-water mark and how
	// much of the shuffle went to run files on disk.
	PeakResidentBytes int64 `json:"peak_resident_bytes,omitempty"`
	SpilledRuns       int64 `json:"spilled_runs,omitempty"`
	SpilledBytes      int64 `json:"spilled_bytes,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Suite    string   `json:"suite"`
	Engine   string   `json:"engine"`
	MemLimit int64    `json:"mem_limit,omitempty"`
	Results  []Result `json:"results"`
}

func measureJob(name, engine string, job *mapreduce.Job, records int, eng mapreduce.Engine, iters int) (Result, error) {
	in := benchjobs.Input(records)
	var jobErr error
	var js *mapreduce.JobStats
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for it := 0; it < iters; it++ {
				s, err := benchjobs.RunEngine(job, in, eng)
				if err != nil {
					jobErr = err
					b.FailNow()
				}
				js = s
			}
		}
	})
	if jobErr != nil {
		return Result{}, fmt.Errorf("%s: %w", name, jobErr)
	}
	n := br.N * iters
	return Result{
		Name:              name,
		Engine:            engine,
		Iterations:        n,
		NsPerOp:           float64(br.T.Nanoseconds()) / float64(n),
		AllocsPerOp:       br.AllocsPerOp() / int64(iters),
		BytesPerOp:        br.AllocedBytesPerOp() / int64(iters),
		ShuffleRecords:    js.ShuffleRecords,
		ShuffleBytes:      js.ShuffleBytes,
		PeakResidentBytes: js.PeakResidentBytes,
		SpilledRuns:       js.SpilledRuns,
		SpilledBytes:      js.SpilledBytes,
	}, nil
}

// benchCases are the workloads both suites share.
func benchCases(records int) []struct {
	name string
	job  *mapreduce.Job
} {
	return []struct {
		name string
		job  *mapreduce.Job
	}{
		{fmt.Sprintf("flat/keys=%d", 16*records), benchjobs.FlatJob(16 * records)},
		{"flat/keys=256", benchjobs.FlatJob(256)},
		{"composite/secondary-sort", benchjobs.CompositeJob()},
	}
}

func runShuffleSuite(iters int) (*Report, error) {
	report := &Report{Suite: "mapreduce-shuffle", Engine: "sort-merge-streaming"}
	for _, c := range benchCases(benchjobs.Records) {
		res, err := measureJob(c.name, "", c.job, benchjobs.Records, mapreduce.Engine{}, iters)
		if err != nil {
			return nil, err
		}
		res.PeakResidentBytes, res.SpilledRuns, res.SpilledBytes = 0, 0, 0 // not this suite's subject
		report.Results = append(report.Results, res)
	}
	return report, nil
}

func runSpillSuite(iters int, memLimit int64, spillDir string) (*Report, error) {
	dir := spillDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "shufflebench-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("-spill-dir: %w", err)
	}
	// 4× the shuffle-suite input: large enough that the shuffle far
	// exceeds the memory limit, so spilling is genuinely forced.
	records := 4 * benchjobs.Records
	report := &Report{Suite: "mapreduce-spill", Engine: "external-shuffle", MemLimit: memLimit}
	for _, c := range benchCases(records) {
		mem, err := measureJob(c.name, "in-memory", c.job, records, mapreduce.Engine{}, iters)
		if err != nil {
			return nil, err
		}
		report.Results = append(report.Results, mem)
		sp, err := measureJob(c.name, "spill", c.job, records,
			mapreduce.Engine{SpillDir: dir, MemLimit: memLimit}, iters)
		if err != nil {
			return nil, err
		}
		report.Results = append(report.Results, sp)
		if sp.ShuffleBytes > memLimit && sp.PeakResidentBytes > memLimit {
			return nil, fmt.Errorf("%s: spill engine peak %dB exceeds the %dB limit",
				c.name, sp.PeakResidentBytes, memLimit)
		}
	}
	return report, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("shufflebench", flag.ContinueOnError)
	out := fs.String("out", "", "output file (default stdout)")
	iters := fs.Int("benchtime", 10, "inner iterations per measurement")
	suite := fs.String("suite", "shuffle", "benchmark suite: shuffle | spill | serve | plan | cluster | shards")
	memLimitFlag := fs.String("mem-limit", "256K", "spill suite: resident shuffle budget")
	spillDir := fs.String("spill-dir", "", "spill suite: run-file directory (default: a temp dir)")
	clients := fs.Int("clients", 8, "serve suite: concurrent load-generator clients")
	requests := fs.Int("requests", 2000, "serve suite: kNN requests per measurement row")
	k := fs.Int("k", 10, "serve and plan suites: neighbors per query")
	planN := fs.Int("plan-n", 4000, "plan suite: objects per workload shape")
	planNodes := fs.Int("plan-nodes", 4, "plan suite: simulated cluster nodes")
	planReps := fs.Int("plan-reps", 2, "plan suite: runs per configuration (fastest kept)")
	clusterN := fs.Int("cluster-n", 1500, "cluster suite: objects in the self-join workload")
	clusterNodes := fs.Int("cluster-nodes", 4, "cluster suite: simulated cluster nodes")
	shardsN := fs.Int("shards-n", 6000, "shards suite: objects in the clustered index")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *iters < 1 {
		return fmt.Errorf("-benchtime must be at least 1, got %d", *iters)
	}

	var report any
	var err error
	switch *suite {
	case "shuffle":
		report, err = runShuffleSuite(*iters)
	case "spill":
		var memLimit int64
		if memLimit, err = stats.ParseBytes(*memLimitFlag); err != nil {
			return fmt.Errorf("-mem-limit: %w", err)
		}
		report, err = runSpillSuite(*iters, memLimit, *spillDir)
	case "serve":
		if *clients < 1 || *requests < *clients {
			return fmt.Errorf("serve suite needs -clients ≥ 1 and -requests ≥ -clients")
		}
		if *k < 1 {
			return fmt.Errorf("-k must be at least 1, got %d", *k)
		}
		report, err = runServeSuite(*clients, *requests, *k)
	case "plan":
		if *planN < 160 || *k < 1 || *planNodes < 1 || *planReps < 1 {
			return fmt.Errorf("plan suite needs -plan-n ≥ 160, -k ≥ 1, -plan-nodes ≥ 1, -plan-reps ≥ 1")
		}
		report, err = runPlanSuite(*planN, *k, *planNodes, *planReps)
	case "cluster":
		if *clusterN < 100 || *k < 1 || *clusterNodes < 1 {
			return fmt.Errorf("cluster suite needs -cluster-n ≥ 100, -k ≥ 1, -cluster-nodes ≥ 1")
		}
		report, err = runClusterSuite(*clusterN, *k, *clusterNodes)
	case "shards":
		if *shardsN < 200 || *k < 1 || *requests < 32 {
			return fmt.Errorf("shards suite needs -shards-n ≥ 200, -k ≥ 1, -requests ≥ 32")
		}
		report, err = runShardsSuite(*shardsN, *requests, *k)
	default:
		return fmt.Errorf("unknown suite %q (want shuffle, spill, serve, plan, cluster or shards)", *suite)
	}
	if err != nil {
		return err
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(*out, enc, 0o644)
}

func main() {
	// The cluster suite re-executes this binary as worker processes, and
	// the shards suite as shard replicas; both hooks are env-gated no-ops
	// in the parent.
	knnjoin.RunWorkerIfSpawned()
	shard.RunShardIfSpawned()
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "shufflebench:", err)
		os.Exit(1)
	}
}
