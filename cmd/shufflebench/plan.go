package main

import (
	"fmt"
	"time"

	"knnjoin"
	"knnjoin/internal/codec"
	"knnjoin/internal/dataset"
)

// planRatioGate is the suite's acceptance bound: the planner's pick must
// never measure more than this factor slower than the best fixed plan in
// the grid. planSlackNs absorbs sub-millisecond timer noise on runs so
// short that a ratio alone would be meaningless.
const (
	planRatioGate = 1.5
	planSlackNs   = 5e6
)

// FixedPlan is one grid configuration's measurement.
type FixedPlan struct {
	Name         string  `json:"name"`
	WallNs       float64 `json:"wall_ns"`
	ShuffleBytes int64   `json:"shuffle_bytes"`
	DistComps    int64   `json:"dist_comps"`
}

// PlanWorkload is one workload shape's row in BENCH_plan.json: what the
// planner picked, how it measured, and the full fixed grid it was judged
// against.
type PlanWorkload struct {
	Name  string `json:"name"`
	RSize int    `json:"r_size"`
	SSize int    `json:"s_size"`
	Dims  int    `json:"dims"`

	Planned               string  `json:"planned"`
	PlanningWallNs        float64 `json:"planning_wall_ns"`
	PlannedWallNs         float64 `json:"planned_wall_ns"`
	PlannedShuffleBytes   int64   `json:"planned_shuffle_bytes"`
	PredictedShuffleBytes int64   `json:"predicted_shuffle_bytes"`
	PlannedDistComps      int64   `json:"planned_dist_comps"`
	PredictedDistComps    int64   `json:"predicted_dist_comps"`

	BestFixed   string      `json:"best_fixed"`
	BestWallNs  float64     `json:"best_wall_ns"`
	WorstFixed  string      `json:"worst_fixed"`
	WorstWallNs float64     `json:"worst_wall_ns"`
	RatioToBest float64     `json:"ratio_to_best"`
	Fixed       []FixedPlan `json:"fixed"`
}

// PlanReport is the plan suite's JSON document.
type PlanReport struct {
	Suite     string         `json:"suite"`
	N         int            `json:"n"`
	K         int            `json:"k"`
	Nodes     int            `json:"nodes"`
	Workloads []PlanWorkload `json:"workloads"`
}

// planWorkloads builds the four shapes the acceptance criteria name:
// uniform noise, Gaussian clusters, Zipf-skewed density, and a lopsided
// |R| ≪ |S| join.
func planWorkloads(n int) []struct {
	name string
	r, s []codec.Object
} {
	return []struct {
		name string
		r, s []codec.Object
	}{
		{"uniform", dataset.Uniform(n, 4, 100, 1), nil},
		{"gaussian", dataset.Gaussian(n, 4, 8, 0, 100, 1), nil},
		{"zipf", dataset.Zipf(n, 2, 64, 100, 1), nil},
		{"lopsided", dataset.Uniform(n/16, 4, 100, 1), dataset.Uniform(n, 4, 100, 2)},
	}
}

// measureJoin runs one configuration `reps` times and keeps the fastest
// wall plus its stats — the standard way to strip scheduler noise from
// a deterministic computation.
func measureJoin(r, s []codec.Object, opts knnjoin.Options, reps int) (float64, *knnjoin.Stats, error) {
	best := -1.0
	var bestStats *knnjoin.Stats
	for i := 0; i < reps; i++ {
		start := time.Now()
		_, st, err := knnjoin.Join(r, s, opts)
		wall := float64(time.Since(start).Nanoseconds())
		if err != nil {
			return 0, nil, err
		}
		if best < 0 || wall < best {
			best, bestStats = wall, st
		}
	}
	return best, bestStats, nil
}

func runPlanSuite(n, k, nodes, reps int) (*PlanReport, error) {
	report := &PlanReport{Suite: "planner-vs-grid", N: n, K: k, Nodes: nodes}
	grid := []struct {
		name string
		opts knnjoin.Options
	}{
		{"pgbj/geometric", knnjoin.Options{Algorithm: knnjoin.PGBJ, GroupStrategy: knnjoin.GeometricGrouping}},
		{"pgbj/greedy", knnjoin.Options{Algorithm: knnjoin.PGBJ, GroupStrategy: knnjoin.GreedyGrouping}},
		{"pbj", knnjoin.Options{Algorithm: knnjoin.PBJ}},
		{"hbrj", knnjoin.Options{Algorithm: knnjoin.HBRJ}},
		{"broadcast", knnjoin.Options{Algorithm: knnjoin.Broadcast}},
		{"theta", knnjoin.Options{Algorithm: knnjoin.Theta}},
		{"bruteforce", knnjoin.Options{Algorithm: knnjoin.BruteForce}},
	}
	for _, w := range planWorkloads(n) {
		s := w.s
		if s == nil {
			s = w.r
		}
		row := PlanWorkload{Name: w.name, RSize: len(w.r), SSize: len(s), Dims: w.r[0].Point.Dim()}

		for _, g := range grid {
			opts := g.opts
			opts.K, opts.Nodes, opts.Seed = k, nodes, 1
			wall, st, err := measureJoin(w.r, s, opts, reps)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", w.name, g.name, err)
			}
			row.Fixed = append(row.Fixed, FixedPlan{
				Name: g.name, WallNs: wall, ShuffleBytes: st.ShuffleBytes, DistComps: st.Pairs,
			})
			if row.BestWallNs == 0 || wall < row.BestWallNs {
				row.BestFixed, row.BestWallNs = g.name, wall
			}
			if wall > row.WorstWallNs {
				row.WorstFixed, row.WorstWallNs = g.name, wall
			}
		}

		// Plan once (timed separately — planning is a one-shot cost the
		// caller amortizes over the join), then measure the picked plan's
		// execution like any fixed grid entry.
		planStart := time.Now()
		plans, err := knnjoin.AutoPlan(w.r, s, knnjoin.Options{K: k, Nodes: nodes, Seed: 1})
		if err != nil {
			return nil, fmt.Errorf("%s/plan: %w", w.name, err)
		}
		row.PlanningWallNs = float64(time.Since(planStart).Nanoseconds())
		var pick *knnjoin.Plan
		for i := range plans {
			if !plans[i].Approximate {
				pick = &plans[i]
				break
			}
		}
		if pick == nil {
			return nil, fmt.Errorf("%s: planner returned no exact plan", w.name)
		}
		algo, err := knnjoin.ParseAlgorithm(pick.Algo)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.name, err)
		}
		wall, st, err := measureJoin(w.r, s, knnjoin.Options{
			K: k, Algorithm: algo, Nodes: nodes, Seed: 1, NumPivots: pick.NumPivots,
			PivotStrategy: pick.PivotStrategy, GroupStrategy: pick.GroupStrategy,
		}, reps)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", w.name, pick.Config(), err)
		}
		row.Planned = pick.Config()
		row.PlannedWallNs = wall
		row.PlannedShuffleBytes = st.ShuffleBytes
		row.PredictedShuffleBytes = pick.Predicted.ShuffleBytes
		row.PlannedDistComps = st.Pairs
		row.PredictedDistComps = pick.Predicted.DistComps
		row.RatioToBest = wall / row.BestWallNs

		if wall > row.BestWallNs*planRatioGate && wall-row.BestWallNs > planSlackNs {
			return nil, fmt.Errorf(
				"%s: planner pick %q measured %.1fms, %.2f× the best fixed plan %q (%.1fms) — gate is %.1f×",
				w.name, row.Planned, wall/1e6, row.RatioToBest, row.BestFixed,
				row.BestWallNs/1e6, planRatioGate)
		}
		report.Workloads = append(report.Workloads, row)
	}
	return report, nil
}
