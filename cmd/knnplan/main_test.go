package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"knnjoin/internal/dataset"
)

// writeDataset generates a CSV input for the CLI tests.
func writeDataset(t *testing.T, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pts.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := dataset.WriteCSV(f, dataset.Gaussian(n, 4, 6, 0, 100, 1)); err != nil {
		t.Fatal(err)
	}
	return path
}

// capture runs the CLI and returns what it wrote.
func capture(t *testing.T, args []string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestRunExplainsPlans(t *testing.T) {
	path := writeDataset(t, 1200)
	got := capture(t, []string{"-r", path, "-self", "-k", "5", "-top", "6"})
	for _, want := range []string{"|R|=1200", "intrinsic", "pgbj", "score"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// -top must bound the table: header+separator+6 rows+stats line+blank.
	if lines := strings.Count(strings.TrimSpace(got), "\n"); lines > 11 {
		t.Errorf("-top 6 printed %d lines:\n%s", lines, got)
	}
}

func TestRunJSON(t *testing.T) {
	path := writeDataset(t, 1200)
	got := capture(t, []string{"-r", path, "-self", "-k", "5", "-json"})
	var rep jsonReport
	if err := json.Unmarshal([]byte(got), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, got)
	}
	if rep.RSize != 1200 || rep.Dims != 4 || len(rep.Plans) == 0 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	if rep.Plans[0].Rank != 1 || rep.Plans[0].Score <= 0 {
		t.Fatalf("bad first plan: %+v", rep.Plans[0])
	}
	for i := 1; i < len(rep.Plans); i++ {
		if rep.Plans[i].Score < rep.Plans[i-1].Score {
			t.Fatal("JSON plans not ranked")
		}
	}
}

func TestRunErrors(t *testing.T) {
	path := writeDataset(t, 100)
	for _, args := range [][]string{
		{},
		{"-r", path},
		{"-r", path, "-self", "-metric", "chebyshov"},
		{"-r", path, "-self", "-mem-limit", "5ib"},
		{"-r", "/does/not/exist.csv", "-self"},
		{"-r", path, "-self", "-k", "0"},
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
	// Mismatched dimensionalities must error, not panic mid-planning.
	mismatched := filepath.Join(t.TempDir(), "r2.csv")
	f2, err := os.Create(mismatched)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(f2, dataset.Uniform(50, 2, 100, 1)); err != nil {
		t.Fatal(err)
	}
	f2.Close()
	if err := run([]string{"-r", path, "-s", mismatched, "-k", "5"}, &bytes.Buffer{}); err == nil {
		t.Error("mismatched dimensionalities accepted")
	}
}
