// Command knnplan is EXPLAIN for kNN joins: it samples the input
// datasets, runs the cost-based planner, and prints the measured
// statistics plus every candidate plan ranked by predicted cost —
// without executing any join. The top exact plan is what
// `knnjoin -algo auto` would run.
//
// Usage:
//
//	knnplan -r r.csv -s s.csv -k 10
//	knnplan -r pts.csv -self -k 10 -nodes 16 -top 5
//	knnplan -r pts.csv -self -k 10 -mem-limit 64M -json
//
// Input files hold one "id,x1,x2,..." line per object (see cmd/datagen).
// The text output is the ranked plan table; -json emits the statistics
// and plans machine-readably instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"knnjoin/internal/codec"
	"knnjoin/internal/dataset"
	"knnjoin/internal/planner"
	"knnjoin/internal/stats"
	"knnjoin/internal/vector"
)

// jsonPlan is the machine-readable form of one ranked plan.
type jsonPlan struct {
	Rank        int                `json:"rank"`
	Config      string             `json:"config"`
	Algo        string             `json:"algo"`
	NumPivots   int                `json:"num_pivots,omitempty"`
	Approximate bool               `json:"approximate,omitempty"`
	Score       float64            `json:"score"`
	Predicted   planner.Prediction `json:"predicted"`
	Why         string             `json:"why"`
}

// jsonReport is the -json document.
type jsonReport struct {
	RSize        int        `json:"r_size"`
	SSize        int        `json:"s_size"`
	Dims         int        `json:"dims"`
	IntrinsicDim float64    `json:"intrinsic_dim"`
	ClusterSkew  float64    `json:"cluster_skew"`
	Plans        []jsonPlan `json:"plans"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "knnplan:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("knnplan", flag.ContinueOnError)
	rPath := fs.String("r", "", "CSV file of the outer dataset R (required)")
	sPath := fs.String("s", "", "CSV file of the inner dataset S")
	self := fs.Bool("self", false, "self-join: use R as S")
	k := fs.Int("k", 10, "number of nearest neighbors")
	metricName := fs.String("metric", "l2", "distance metric: l2 | l1 | linf")
	nodes := fs.Int("nodes", 4, "simulated cluster nodes")
	numPivots := fs.Int("pivots", 0, "pin the pivot grid to this count (0 = sweep)")
	sample := fs.Int("sample", 0, "reservoir sample size per dataset (0 = default)")
	seed := fs.Int64("seed", 1, "random seed")
	top := fs.Int("top", 0, "print only the best N plans (0 = all)")
	memLimitFlag := fs.String("mem-limit", "", "resident shuffle budget, e.g. 64M (prices spill pressure)")
	asJSON := fs.Bool("json", false, "emit JSON instead of the text table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rPath == "" {
		return fmt.Errorf("-r is required")
	}
	if *sPath == "" && !*self {
		return fmt.Errorf("provide -s or -self")
	}
	metric, err := vector.ParseMetric(*metricName)
	if err != nil {
		return err
	}
	var memLimit int64
	if *memLimitFlag != "" {
		if memLimit, err = stats.ParseBytes(*memLimitFlag); err != nil {
			return fmt.Errorf("-mem-limit: %w", err)
		}
	}

	r, err := readCSV(*rPath)
	if err != nil {
		return fmt.Errorf("reading R: %w", err)
	}
	s := r
	if !*self {
		if s, err = readCSV(*sPath); err != nil {
			return fmt.Errorf("reading S: %w", err)
		}
	}

	opts := planner.Options{
		K: *k, Nodes: *nodes, Metric: metric, MemLimit: memLimit,
		SampleSize: *sample, Seed: *seed, NumPivots: *numPivots,
	}
	ds, err := planner.Measure(r, s, opts)
	if err != nil {
		return err
	}
	plans, err := planner.Plans(ds, opts)
	if err != nil {
		return err
	}
	if *top > 0 && *top < len(plans) {
		plans = plans[:*top]
	}

	if *asJSON {
		rep := jsonReport{
			RSize: ds.RSize, SSize: ds.SSize, Dims: ds.Dims,
			IntrinsicDim: ds.IntrinsicDim, ClusterSkew: ds.ClusterSkew,
		}
		for i, p := range plans {
			rep.Plans = append(rep.Plans, jsonPlan{
				Rank: i + 1, Config: p.Config(), Algo: p.Algo, NumPivots: p.NumPivots,
				Approximate: p.Approximate, Score: p.Score, Predicted: p.Predicted, Why: p.Why,
			})
		}
		enc, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		_, err = fmt.Fprintln(w, string(enc))
		return err
	}
	_, err = fmt.Fprint(w, planner.Explain(ds, plans))
	return err
}

func readCSV(path string) ([]codec.Object, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadCSV(f)
}
