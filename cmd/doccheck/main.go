// Command doccheck walks every Go package in the module and fails when
// one lacks a package comment — the documentation gate the CI docs job
// runs alongside `go test -run Example ./...`, so the package map in
// ARCHITECTURE.md never drifts ahead of godoc.
//
// A package passes when at least one of its non-test files carries a doc
// comment on the package clause (doc.go or top-of-file, either works).
// Test-only packages (package x_test) are exempt: their documentation
// lives with the package under test.
//
// Usage:
//
//	doccheck            # check the module rooted in the working directory
//	doccheck ./internal # check one subtree
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// check walks root and returns the directories whose package lacks a
// package comment.
func check(root string) (missing []string, err error) {
	// dir → has any non-test .go file / has a package doc comment.
	type state struct{ hasGo, hasDoc bool }
	pkgs := map[string]*state{}
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(token.NewFileSet(), path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if perr != nil {
			return fmt.Errorf("parse %s: %w", path, perr)
		}
		dir := filepath.Dir(path)
		st := pkgs[dir]
		if st == nil {
			st = &state{}
			pkgs[dir] = st
		}
		st.hasGo = true
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			st.hasDoc = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for dir, st := range pkgs {
		if st.hasGo && !st.hasDoc {
			missing = append(missing, dir)
		}
	}
	sort.Strings(missing)
	return missing, nil
}

func run(args []string) error {
	root := "."
	if len(args) > 1 {
		return fmt.Errorf("usage: doccheck [root]")
	}
	if len(args) == 1 {
		root = args[0]
	}
	missing, err := check(root)
	if err != nil {
		return err
	}
	if len(missing) > 0 {
		for _, dir := range missing {
			fmt.Fprintf(os.Stderr, "doccheck: package in %s has no package comment\n", dir)
		}
		return fmt.Errorf("%d package(s) undocumented", len(missing))
	}
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(1)
	}
}
