// Command doccheck is the documentation gate the CI docs job runs
// alongside `go test -run Example ./...`, so the package map in
// ARCHITECTURE.md never drifts ahead of godoc. It enforces two rules:
//
//  1. Every Go package in the tree has a package comment. A package
//     passes when at least one of its non-test files carries a doc
//     comment on the package clause (doc.go or top-of-file, either
//     works). Test-only packages (package x_test) are exempt: their
//     documentation lives with the package under test.
//
//  2. In the API-bearing packages — the module root and the runtime core
//     under internal/ (mapreduce, driver, dfs, codec, vector, grouping,
//     serve, vindex, planner, shard) — every exported identifier has a doc comment:
//     functions, methods
//     with exported receivers, types, and const/var declarations (a doc
//     comment on the enclosing const/var block covers its members, the
//     stdlib convention for enum-style groups).
//
// Usage:
//
//	doccheck            # check the module rooted in the working directory
//	doccheck ./internal # check one subtree
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// exportedDocDirs lists the directories (relative to the checked root,
// "." is the root package) whose exported identifiers must all carry doc
// comments. Everything else only needs a package comment.
var exportedDocDirs = map[string]bool{
	".":                  true,
	"internal/mapreduce": true,
	"internal/driver":    true,
	"internal/dfs":       true,
	"internal/codec":     true,
	"internal/vector":    true,
	"internal/grouping":  true,
	"internal/serve":     true,
	"internal/vindex":    true,
	"internal/planner":   true,
	"internal/shard":     true,
}

// problem is one finding: a location and what is missing there. line
// and col are kept numeric so findings sort in source order, not in the
// lexicographic order of the rendered position ("x.go:10" before
// "x.go:2").
type problem struct {
	pos       string
	file      string
	line, col int
	what      string
}

// hasDoc reports whether a doc comment group carries actual text.
func hasDoc(g *ast.CommentGroup) bool {
	return g != nil && strings.TrimSpace(g.Text()) != ""
}

// receiverExported reports whether a method's receiver type is exported
// (methods on unexported types are internal API and exempt).
func receiverExported(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = x.X
		case *ast.Ident:
			return ast.IsExported(x.Name)
		default:
			return true
		}
	}
}

// checkExported walks one parsed file and reports exported declarations
// without doc comments.
func checkExported(fset *token.FileSet, f *ast.File) []problem {
	var out []problem
	add := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		out = append(out, problem{
			pos: p.String(), file: p.Filename, line: p.Line, col: p.Column, what: what,
		})
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !receiverExported(d) {
				continue
			}
			if !hasDoc(d.Doc) {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				add(d.Pos(), fmt.Sprintf("exported %s %s has no doc comment", kind, d.Name.Name))
			}
		case *ast.GenDecl:
			switch d.Tok {
			case token.TYPE:
				for _, spec := range d.Specs {
					ts := spec.(*ast.TypeSpec)
					if !ts.Name.IsExported() {
						continue
					}
					if !hasDoc(ts.Doc) && !hasDoc(d.Doc) {
						add(ts.Pos(), fmt.Sprintf("exported type %s has no doc comment", ts.Name.Name))
					}
				}
			case token.CONST, token.VAR:
				// A doc comment on the block covers every member — the
				// stdlib convention for enum-style const groups.
				if hasDoc(d.Doc) {
					continue
				}
				for _, spec := range d.Specs {
					vs := spec.(*ast.ValueSpec)
					for _, name := range vs.Names {
						if !name.IsExported() {
							continue
						}
						if !hasDoc(vs.Doc) && !hasDoc(vs.Comment) {
							add(name.Pos(), fmt.Sprintf("exported %s %s has no doc comment", d.Tok, name.Name))
						}
					}
				}
			}
		}
	}
	return out
}

// check walks root and returns every documentation problem found.
func check(root string) ([]problem, error) {
	// dir → has any non-test .go file / has a package doc comment.
	type state struct{ hasGo, hasDoc bool }
	pkgs := map[string]*state{}
	var problems []problem
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, rerr := filepath.Rel(root, filepath.Dir(path))
		if rerr != nil {
			return rerr
		}
		fset := token.NewFileSet()
		mode := parser.PackageClauseOnly | parser.ParseComments
		if exportedDocDirs[filepath.ToSlash(rel)] {
			mode = parser.ParseComments
		}
		f, perr := parser.ParseFile(fset, path, nil, mode)
		if perr != nil {
			return fmt.Errorf("parse %s: %w", path, perr)
		}
		dir := filepath.Dir(path)
		st := pkgs[dir]
		if st == nil {
			st = &state{}
			pkgs[dir] = st
		}
		st.hasGo = true
		if hasDoc(f.Doc) {
			st.hasDoc = true
		}
		if exportedDocDirs[filepath.ToSlash(rel)] {
			problems = append(problems, checkExported(fset, f)...)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for dir, st := range pkgs {
		if st.hasGo && !st.hasDoc {
			problems = append(problems, problem{
				pos: dir, file: dir, what: "package has no package comment",
			})
		}
	}
	sort.Slice(problems, func(i, j int) bool {
		a, b := problems[i], problems[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		return a.what < b.what
	})
	return problems, nil
}

func run(args []string) error {
	root := "."
	if len(args) > 1 {
		return fmt.Errorf("usage: doccheck [root]")
	}
	if len(args) == 1 {
		root = args[0]
	}
	problems, err := check(root)
	if err != nil {
		return err
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %s\n", p.pos, p.what)
		}
		return fmt.Errorf("%d documentation problem(s)", len(problems))
	}
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(1)
	}
}
