// Command doccheck is a compatibility wrapper kept for muscle memory
// and old scripts: the documentation rules it used to implement —
// package comments everywhere, doc comments on every exported
// identifier in the API-bearing packages — now live in the doccomment
// analyzer of internal/lint, and cmd/knnlint runs them alongside the
// rest of the invariant suite. This wrapper runs exactly that one
// analyzer, so the doc rules have a single implementation.
//
// Usage:
//
//	doccheck                # check the whole module (./...)
//	doccheck ./internal/... # check one subtree, as a package pattern
package main

import (
	"os"

	"knnjoin/internal/lint"
)

func main() {
	os.Exit(lint.RunCLI(os.Stderr, []*lint.Analyzer{lint.DocComment}, os.Args[1:]))
}
