package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckFindsUndocumentedPackage(t *testing.T) {
	root := t.TempDir()
	write(t, filepath.Join(root, "good", "doc.go"), "// Package good is documented.\npackage good\n")
	write(t, filepath.Join(root, "bad", "bad.go"), "package bad\n")
	// A doc comment on any file of the package suffices.
	write(t, filepath.Join(root, "split", "a.go"), "package split\n")
	write(t, filepath.Join(root, "split", "doc.go"), "// Package split is documented elsewhere.\npackage split\n")
	// Test files never carry the package doc.
	write(t, filepath.Join(root, "testonly", "x.go"), "package testonly\n")
	write(t, filepath.Join(root, "testonly", "x_test.go"), "// Not a package doc.\npackage testonly\n")

	problems, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{filepath.Join(root, "bad"), filepath.Join(root, "testonly")}
	if len(problems) != len(want) {
		t.Fatalf("problems = %v, want dirs %v", problems, want)
	}
	for i := range want {
		if problems[i].pos != want[i] || !strings.Contains(problems[i].what, "package comment") {
			t.Fatalf("problems = %v, want dirs %v", problems, want)
		}
	}
}

// The exported-identifier rule applies inside the API-bearing
// directories: undocumented exported funcs, methods, types and lone
// consts are findings; documented const blocks, unexported names and
// methods on unexported types are not.
func TestCheckFindsUndocumentedExportedIdentifiers(t *testing.T) {
	root := t.TempDir()
	write(t, filepath.Join(root, "internal", "dfs", "x.go"), `// Package dfs is a fixture.
package dfs

type Exported struct{}

func Undocumented() {}

// Documented does things, documented.
func Documented() {}

func (Exported) Method() {}

// DocumentedMethod is covered.
func (Exported) DocumentedMethod() {}

func unexported() {}

type hidden struct{}

func (hidden) ExportedOnHidden() {}

const Lone = 1

// Block doc covers the members, stdlib-style.
const (
	A = iota
	B
)

var Stray int
`)
	// The same gaps outside the enforced directories are fine.
	write(t, filepath.Join(root, "internal", "other", "y.go"),
		"// Package other is documented.\npackage other\n\nfunc Free() {}\n")

	problems, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, p := range problems {
		got = append(got, p.what)
	}
	want := []string{
		"exported type Exported has no doc comment",
		"exported function Undocumented has no doc comment",
		"exported method Method has no doc comment",
		"exported const Lone has no doc comment",
		"exported var Stray has no doc comment",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d problems %v, want %d", len(got), got, len(want))
	}
	for _, w := range want {
		found := false
		for _, g := range got {
			found = found || g == w
		}
		if !found {
			t.Fatalf("missing finding %q in %v", w, got)
		}
	}
}

// The repository itself must pass: every package carries a comment and
// the core packages document every exported identifier.
func TestRepositoryIsFullyDocumented(t *testing.T) {
	problems, err := check("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) > 0 {
		t.Fatalf("documentation problems: %v", problems)
	}
}

func TestRunRejectsExtraArgs(t *testing.T) {
	if err := run([]string{"a", "b"}); err == nil {
		t.Fatal("extra args accepted")
	}
}
