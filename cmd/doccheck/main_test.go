package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckFindsUndocumentedPackage(t *testing.T) {
	root := t.TempDir()
	write(t, filepath.Join(root, "good", "doc.go"), "// Package good is documented.\npackage good\n")
	write(t, filepath.Join(root, "bad", "bad.go"), "package bad\n")
	// A doc comment on any file of the package suffices.
	write(t, filepath.Join(root, "split", "a.go"), "package split\n")
	write(t, filepath.Join(root, "split", "doc.go"), "// Package split is documented elsewhere.\npackage split\n")
	// Test files never carry the package doc.
	write(t, filepath.Join(root, "testonly", "x.go"), "package testonly\n")
	write(t, filepath.Join(root, "testonly", "x_test.go"), "// Not a package doc.\npackage testonly\n")

	missing, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{filepath.Join(root, "bad"), filepath.Join(root, "testonly")}
	if len(missing) != len(want) {
		t.Fatalf("missing = %v, want %v", missing, want)
	}
	for i := range want {
		if missing[i] != want[i] {
			t.Fatalf("missing = %v, want %v", missing, want)
		}
	}
}

// The repository itself must pass: every package carries a comment.
func TestRepositoryIsFullyDocumented(t *testing.T) {
	missing, err := check("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Fatalf("undocumented packages: %v", missing)
	}
}

func TestRunRejectsExtraArgs(t *testing.T) {
	if err := run([]string{"a", "b"}); err == nil {
		t.Fatal("extra args accepted")
	}
}
