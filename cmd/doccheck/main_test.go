package main

import (
	"strings"
	"testing"

	"knnjoin/internal/lint"
)

// The rule-level behavior (package comments, exported identifiers,
// block docs, test files) is pinned by the doccomment fixture tests in
// internal/lint; this wrapper only needs its own seam covered: the
// exact RunCLI invocation main performs must hold on the repository.

// TestRepositoryIsFullyDocumented runs the doccomment analyzer over
// the whole module — every package carries a comment and the
// API-bearing packages document every exported identifier.
func TestRepositoryIsFullyDocumented(t *testing.T) {
	var sb strings.Builder
	if code := lint.RunCLI(&sb, []*lint.Analyzer{lint.DocComment}, []string{"knnjoin/..."}); code != 0 {
		t.Fatalf("doccheck on the repository exited %d:\n%s", code, sb.String())
	}
}

// TestBadPatternFails pins the load-failure exit code the wrapper
// inherits: an unknown package pattern is an error (2), not a clean
// run.
func TestBadPatternFails(t *testing.T) {
	var sb strings.Builder
	if code := lint.RunCLI(&sb, []*lint.Analyzer{lint.DocComment}, []string{"knnjoin/doesnotexist"}); code != 2 {
		t.Fatalf("doccheck on a bad pattern exited %d, want 2:\n%s", code, sb.String())
	}
}
