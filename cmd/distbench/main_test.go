package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunWritesValidJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-out", out, "-suite", "dist", "-sizes", "400", "-queries", "4", "-k", "3"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Suite != "distance-path" || len(rep.Results) != 6 { // 1 size × 3 dims × {decode, join}
		t.Fatalf("unexpected report: %+v", rep)
	}
	for _, r := range rep.Results {
		if r.Scalar.NsPerOp <= 0 || r.Block.NsPerOp <= 0 || r.Speedup <= 0 {
			t.Fatalf("implausible result: %+v", r)
		}
		if r.Scalar.AllocsPerOp <= 0 || r.Block.AllocsPerOp <= 0 {
			t.Fatalf("implausible allocs: %+v", r)
		}
	}
}

// The smoke mode is CI's equality gate: every kernel tier's join output
// must match the float64 baseline bit-for-bit. It times nothing, so it
// stays fast enough to run on every push.
func TestKernelSmoke(t *testing.T) {
	if err := run([]string{"-suite", "kernels", "-smoke", "-sizes", "600", "-queries", "8", "-k", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-nonsense"}); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-k", "0"}); err == nil {
		t.Fatal("zero k accepted")
	}
	if err := run([]string{"-sizes", "10,x"}); err == nil {
		t.Fatal("malformed sizes accepted")
	}
	if err := run([]string{"-sizes", ""}); err == nil {
		t.Fatal("empty sizes accepted")
	}
	if err := run([]string{"-suite", "nope"}); err == nil {
		t.Fatal("unknown suite accepted")
	}
}
