// Command distbench runs the distance-path micro-benchmarks — reducer
// value-group decode and the PGBJ-reducer-shaped join — through both the
// legacy per-Object path and the columnar Block path, plus the kernel
// tier matrix (scalar / block / f32 / quantized across dimensionalities)
// through the query-batched kernels — and writes the results as JSON
// (committed as BENCH_dist.json at the repository root), so the distance
// path's performance trajectory is tracked across changes next to the
// shuffle's. The workloads are the same internal/benchjobs functions
// bench_test.go measures with `go test -bench`; every path and every
// kernel tier runs identical candidate sets and their outputs are
// cross-checked (down to the distance bits) before timing.
//
// Usage:
//
//	distbench                     # both suites, JSON to stdout
//	distbench -out BENCH_dist.json
//	distbench -suite kernels      # only the kernel tier matrix
//	distbench -suite kernels -smoke  # cross-check outputs only, no timing (CI)
//	distbench -queries 64         # override the per-suite query defaults (dist 64, kernels 512)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"knnjoin/internal/benchjobs"
	"knnjoin/internal/obs"
	"knnjoin/internal/vector"
)

// Path is one side's measurement: the scalar (per-Object) or block
// (columnar) implementation of the same workload.
type Path struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Result is one workload's before/after pair.
type Result struct {
	Name string `json:"name"`
	N    int    `json:"n"`
	Dim  int    `json:"dim"`
	// Scalar is the per-Object decode path (one DecodeTagged and one
	// Point allocation per record, Metric.Dist per candidate) — the
	// "before" series.
	Scalar Path `json:"scalar"`
	// Block is the columnar path (DecodeBlock once per group, fused
	// squared-distance kernels, emit-time sqrt) — the "after" series.
	Block      Path    `json:"block"`
	Speedup    float64 `json:"speedup"`
	AllocRatio float64 `json:"alloc_ratio"`
}

// KernelRow is one (n, dim) cell of the kernel tier matrix: the
// PGBJ-reducer-shaped join measured through the query-batched kernels at
// every tier, with the headline speedups quoted against the exact block
// tier. Every tier's output is cross-checked against the per-Object
// scalar join before timing — bit-identical down to the distance bits.
type KernelRow struct {
	Name string `json:"name"`
	N    int    `json:"n"`
	Dim  int    `json:"dim"`
	// Tiers maps kernel name → measurement.
	Tiers map[string]Path `json:"tiers"`
	// SpeedupF32 and SpeedupQuantized are ns/op ratios vs the block tier.
	SpeedupF32       float64 `json:"speedup_f32_vs_block"`
	SpeedupQuantized float64 `json:"speedup_quantized_vs_block"`
}

// Report is the top-level JSON document.
type Report struct {
	Suite  string `json:"suite"`
	Kernel string `json:"kernel"`
	K      int    `json:"k"`
	// Queries is the dist suite's per-join query count; KernelQueries is
	// the kernels suite's reducer-sized batch (see run's flag handling).
	Queries       int      `json:"queries"`
	KernelQueries int      `json:"kernel_queries,omitempty"`
	Results       []Result `json:"results,omitempty"`
	// Kernels is the tier matrix (suite "kernels" or "all").
	Kernels []KernelRow `json:"kernels,omitempty"`
}

func measure(fn func() error) (Path, error) {
	var err error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if e := fn(); e != nil {
				err = e
				b.FailNow()
			}
		}
	})
	if err != nil {
		return Path{}, err
	}
	return Path{
		NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
		AllocsPerOp: br.AllocsPerOp(),
		BytesPerOp:  br.AllocedBytesPerOp(),
	}, nil
}

func ratio(scalar, block float64) float64 {
	if block == 0 {
		return 0
	}
	return scalar / block
}

func run(args []string) error {
	fs := flag.NewFlagSet("distbench", flag.ContinueOnError)
	out := fs.String("out", "", "output file (default stdout)")
	k := fs.Int("k", 10, "neighbors per query in the join workloads")
	queries := fs.Int("queries", 0, "queries per join measurement (0 = suite default: 64 for dist, 512 for kernels)")
	sizes := fs.String("sizes", "10000,100000", "comma-separated group sizes n")
	suite := fs.String("suite", "all", "which suite to run: dist | kernels | all")
	smoke := fs.Bool("smoke", false, "cross-check outputs only, skip timing (CI equality gate)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		stop, err := obs.StartCPUProfile(*cpuProfile)
		if err != nil {
			return err
		}
		defer stop()
	}
	if *memProfile != "" {
		defer func() {
			if err := obs.WriteHeapProfile(*memProfile); err != nil {
				fmt.Fprintln(os.Stderr, "distbench: heap profile:", err)
			}
		}()
	}
	if *k < 1 || *queries < 0 {
		return fmt.Errorf("-k must be at least 1 and -queries non-negative")
	}
	// The kernels suite times the pgbj-reduce task shape: decode + tier
	// build once, then the whole R partition of queries against the
	// block. Its default batch is therefore reducer-sized (512) rather
	// than the dist suite's 64, so one-time build costs amortize the way
	// they do in a real reduce task.
	distQ, kernQ := *queries, *queries
	if *queries == 0 {
		distQ, kernQ = 64, 512
	}
	if *suite != "dist" && *suite != "kernels" && *suite != "all" {
		return fmt.Errorf("-suite must be dist, kernels, or all, got %q", *suite)
	}
	var ns []int
	for _, f := range strings.Split(*sizes, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil || v < 1 {
			return fmt.Errorf("-sizes entries must be positive integers, got %q", f)
		}
		ns = append(ns, v)
	}
	if len(ns) == 0 {
		return fmt.Errorf("-sizes is empty")
	}

	report := Report{Suite: "distance-path", Kernel: "columnar-block", K: *k, Queries: distQ}
	if *suite == "kernels" {
		report.Suite = "kernels"
	}
	if *suite != "dist" {
		report.KernelQueries = kernQ
	}
	dims := []int{2, 8, 32}
	tiers := []vector.Kernel{
		vector.KernelScalar, vector.KernelBlock, vector.KernelF32, vector.KernelQuantized,
	}
	for _, n := range ns {
		for _, dim := range dims {
			recs := benchjobs.DistInput(n, dim, 1)
			qs := benchjobs.DistQueries(distQ, dim, 2)
			theta, err := benchjobs.DistTheta(recs, benchjobs.DistWindowFrac)
			if err != nil {
				return err
			}

			// Cross-check every path before timing anything: the block
			// path and every kernel tier must reproduce the scalar join
			// bit-for-bit (ids, order, and distance bits — see
			// benchjobs.checksum). This check IS the -smoke mode.
			want, err := benchjobs.JoinScalar(recs, qs, *k, theta)
			if err != nil {
				return err
			}
			got, err := benchjobs.JoinBlock(recs, qs, *k, theta)
			if err != nil {
				return err
			}
			if got != want {
				return fmt.Errorf("join paths disagree at n=%d dim=%d: scalar %d, block %d", n, dim, want, got)
			}
			for _, kern := range tiers {
				got, err := benchjobs.JoinKernelBatch(recs, qs, *k, theta, kern)
				if err != nil {
					return err
				}
				if got != want {
					return fmt.Errorf("kernel %v join differs from float64 baseline at n=%d dim=%d: %d, want %d",
						kern, n, dim, got, want)
				}
			}
			if *smoke {
				continue
			}

			if *suite != "kernels" {
				dec, err := pair(fmt.Sprintf("decode/d=%d/n=%d", dim, n), n, dim,
					func() error { _, err := benchjobs.DecodeScalar(recs); return err },
					func() error { _, err := benchjobs.DecodeBlock(recs); return err })
				if err != nil {
					return err
				}
				join, err := pair(fmt.Sprintf("pgbj-reduce/d=%d/n=%d", dim, n), n, dim,
					func() error { _, err := benchjobs.JoinScalar(recs, qs, *k, theta); return err },
					func() error { _, err := benchjobs.JoinBlock(recs, qs, *k, theta); return err })
				if err != nil {
					return err
				}
				report.Results = append(report.Results, dec, join)
			}
			if *suite != "dist" {
				qsK := qs
				if kernQ != distQ {
					qsK = benchjobs.DistQueries(kernQ, dim, 2)
				}
				row := KernelRow{
					Name:  fmt.Sprintf("pgbj-reduce/d=%d/n=%d", dim, n),
					N:     n,
					Dim:   dim,
					Tiers: make(map[string]Path, len(tiers)),
				}
				for _, kern := range tiers {
					kern := kern
					m, err := measure(func() error {
						_, err := benchjobs.JoinKernelBatch(recs, qsK, *k, theta, kern)
						return err
					})
					if err != nil {
						return fmt.Errorf("%s/%v: %w", row.Name, kern, err)
					}
					row.Tiers[kern.String()] = m
				}
				blockNs := row.Tiers[vector.KernelBlock.String()].NsPerOp
				row.SpeedupF32 = ratio(blockNs, row.Tiers[vector.KernelF32.String()].NsPerOp)
				row.SpeedupQuantized = ratio(blockNs, row.Tiers[vector.KernelQuantized.String()].NsPerOp)
				report.Kernels = append(report.Kernels, row)
			}
		}
	}
	if *smoke {
		fmt.Fprintf(os.Stderr, "distbench: smoke ok — all kernel tiers match the float64 baseline (%d sizes × %d dims)\n",
			len(ns), len(dims))
		return nil
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(*out, enc, 0o644)
}

// pair measures the scalar and block implementations of one workload.
func pair(name string, n, dim int, scalar, block func() error) (Result, error) {
	s, err := measure(scalar)
	if err != nil {
		return Result{}, fmt.Errorf("%s/scalar: %w", name, err)
	}
	b, err := measure(block)
	if err != nil {
		return Result{}, fmt.Errorf("%s/block: %w", name, err)
	}
	return Result{
		Name: name, N: n, Dim: dim,
		Scalar:     s,
		Block:      b,
		Speedup:    ratio(s.NsPerOp, b.NsPerOp),
		AllocRatio: ratio(float64(s.AllocsPerOp), float64(b.AllocsPerOp)),
	}, nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "distbench:", err)
		os.Exit(1)
	}
}
