// Command distbench runs the distance-path micro-benchmarks — reducer
// value-group decode and the PGBJ-reducer-shaped join — through both the
// legacy per-Object path and the columnar Block path, and writes the
// paired results as JSON (committed as BENCH_dist.json at the repository
// root), so the distance path's performance trajectory is tracked across
// changes next to the shuffle's. The workloads are the same
// internal/benchjobs functions bench_test.go measures with `go test
// -bench`; both paths run identical candidate sets and their outputs are
// cross-checked before timing.
//
// Usage:
//
//	distbench                     # print JSON to stdout
//	distbench -out BENCH_dist.json
//	distbench -queries 64         # queries per join measurement
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"knnjoin/internal/benchjobs"
)

// Path is one side's measurement: the scalar (per-Object) or block
// (columnar) implementation of the same workload.
type Path struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Result is one workload's before/after pair.
type Result struct {
	Name string `json:"name"`
	N    int    `json:"n"`
	Dim  int    `json:"dim"`
	// Scalar is the per-Object decode path (one DecodeTagged and one
	// Point allocation per record, Metric.Dist per candidate) — the
	// "before" series.
	Scalar Path `json:"scalar"`
	// Block is the columnar path (DecodeBlock once per group, fused
	// squared-distance kernels, emit-time sqrt) — the "after" series.
	Block      Path    `json:"block"`
	Speedup    float64 `json:"speedup"`
	AllocRatio float64 `json:"alloc_ratio"`
}

// Report is the top-level JSON document.
type Report struct {
	Suite   string   `json:"suite"`
	Kernel  string   `json:"kernel"`
	K       int      `json:"k"`
	Queries int      `json:"queries"`
	Results []Result `json:"results"`
}

func measure(fn func() error) (Path, error) {
	var err error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if e := fn(); e != nil {
				err = e
				b.FailNow()
			}
		}
	})
	if err != nil {
		return Path{}, err
	}
	return Path{
		NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
		AllocsPerOp: br.AllocsPerOp(),
		BytesPerOp:  br.AllocedBytesPerOp(),
	}, nil
}

func ratio(scalar, block float64) float64 {
	if block == 0 {
		return 0
	}
	return scalar / block
}

func run(args []string) error {
	fs := flag.NewFlagSet("distbench", flag.ContinueOnError)
	out := fs.String("out", "", "output file (default stdout)")
	k := fs.Int("k", 10, "neighbors per query in the join workloads")
	queries := fs.Int("queries", 64, "queries per join measurement")
	sizes := fs.String("sizes", "10000,100000", "comma-separated group sizes n")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *k < 1 || *queries < 1 {
		return fmt.Errorf("-k and -queries must be at least 1")
	}
	var ns []int
	for _, f := range strings.Split(*sizes, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil || v < 1 {
			return fmt.Errorf("-sizes entries must be positive integers, got %q", f)
		}
		ns = append(ns, v)
	}
	if len(ns) == 0 {
		return fmt.Errorf("-sizes is empty")
	}

	report := Report{Suite: "distance-path", Kernel: "columnar-block", K: *k, Queries: *queries}
	dims := []int{2, 8, 32}
	for _, n := range ns {
		for _, dim := range dims {
			recs := benchjobs.DistInput(n, dim, 1)
			qs := benchjobs.DistQueries(*queries, dim, 2)
			theta, err := benchjobs.DistTheta(recs, benchjobs.DistWindowFrac)
			if err != nil {
				return err
			}

			// Cross-check the two paths before timing them: the block
			// kernels must reproduce the scalar join exactly.
			want, err := benchjobs.JoinScalar(recs, qs, *k, theta)
			if err != nil {
				return err
			}
			got, err := benchjobs.JoinBlock(recs, qs, *k, theta)
			if err != nil {
				return err
			}
			if got != want {
				return fmt.Errorf("join paths disagree at n=%d dim=%d: scalar %d, block %d", n, dim, want, got)
			}

			dec, err := pair(fmt.Sprintf("decode/d=%d/n=%d", dim, n), n, dim,
				func() error { _, err := benchjobs.DecodeScalar(recs); return err },
				func() error { _, err := benchjobs.DecodeBlock(recs); return err })
			if err != nil {
				return err
			}
			join, err := pair(fmt.Sprintf("pgbj-reduce/d=%d/n=%d", dim, n), n, dim,
				func() error { _, err := benchjobs.JoinScalar(recs, qs, *k, theta); return err },
				func() error { _, err := benchjobs.JoinBlock(recs, qs, *k, theta); return err })
			if err != nil {
				return err
			}
			report.Results = append(report.Results, dec, join)
		}
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(*out, enc, 0o644)
}

// pair measures the scalar and block implementations of one workload.
func pair(name string, n, dim int, scalar, block func() error) (Result, error) {
	s, err := measure(scalar)
	if err != nil {
		return Result{}, fmt.Errorf("%s/scalar: %w", name, err)
	}
	b, err := measure(block)
	if err != nil {
		return Result{}, fmt.Errorf("%s/block: %w", name, err)
	}
	return Result{
		Name: name, N: n, Dim: dim,
		Scalar:     s,
		Block:      b,
		Speedup:    ratio(s.NsPerOp, b.NsPerOp),
		AllocRatio: ratio(float64(s.AllocsPerOp), float64(b.AllocsPerOp)),
	}, nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "distbench:", err)
		os.Exit(1)
	}
}
