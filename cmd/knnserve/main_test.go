package main

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"knnjoin/internal/dataset"
	"knnjoin/internal/serve"
	"knnjoin/internal/shard"
)

// TestMain lets -shards tests re-exec this test binary as shard
// replicas, mirroring main().
func TestMain(m *testing.M) {
	shard.RunShardIfSpawned()
	os.Exit(m.Run())
}

func writeTestCSV(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pts.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := dataset.WriteCSV(f, dataset.Uniform(400, 3, 100, 1)); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFlagValidation(t *testing.T) {
	ctx := context.Background()
	for _, args := range [][]string{
		{},                                    // neither -index nor -data
		{"-index", "a.idx", "-data", "b.csv"}, // both
		{"-index", "/nonexistent.idx"},
		{"-data", "/nonexistent.csv"},
		{"-data", "x.csv", "-metric", "cosine"},
		{"-data", "x.csv", "-pivot-strategy", "psychic"},
		{"-index", "a.idx", "-shards", "-1"},  // negative shard count
		{"-index", "a.idx", "-replicas", "0"}, // replicas below 1
	} {
		if err := run(ctx, args, nil); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}

// Boot the real binary path end-to-end: build from CSV, serve on an
// ephemeral port, answer /healthz and /knn, shut down on cancellation.
func TestServeFromCSVEndToEnd(t *testing.T) {
	csv := writeTestCSV(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-data", csv, "-addr", "127.0.0.1:0", "-pivots", "20"}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h serve.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" || h.Objects != 400 {
		t.Fatalf("healthz %+v", h)
	}

	resp, err = http.Post("http://"+addr+"/knn", "application/json",
		strings.NewReader(`{"point":[50,50,50],"k":5}`))
	if err != nil {
		t.Fatal(err)
	}
	var kr serve.KNNResponse
	if err := json.NewDecoder(resp.Body).Decode(&kr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(kr.Neighbors) != 5 {
		t.Fatalf("knn status %d, %d neighbors", resp.StatusCode, len(kr.Neighbors))
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// TestServeShardedEndToEnd boots -shards mode from a CSV: the router
// spawns shard replicas of this test binary and the endpoints answer
// over the fanned-out index.
func TestServeShardedEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns shard processes")
	}
	csv := writeTestCSV(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-data", csv, "-addr", "127.0.0.1:0", "-pivots", "20",
			"-shards", "2", "-replicas", "2"}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h serve.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" || h.Objects != 400 {
		t.Fatalf("healthz %+v", h)
	}

	resp, err = http.Post("http://"+addr+"/knn", "application/json",
		strings.NewReader(`{"point":[50,50,50],"k":5}`))
	if err != nil {
		t.Fatal(err)
	}
	var kr serve.KNNResponse
	if err := json.NewDecoder(resp.Body).Decode(&kr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(kr.Neighbors) != 5 {
		t.Fatalf("knn status %d, %d neighbors", resp.StatusCode, len(kr.Neighbors))
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
}
