// Command knnserve is the concurrent kNN query service over the pivot
// index (internal/serve): load an index built by `knnindex build` (or
// build one from a CSV dataset at startup) and answer kNN, range and
// batched kNN queries over HTTP/JSON.
//
// Usage:
//
//	knnserve -index pts.idx -addr :8080
//	knnserve -data pts.csv -pivots 200 -addr :8080
//	knnserve -index pts.idx -workers 8 -cache 4096
//	knnserve -index pts.idx -shards 4 -replicas 2
//
// With -shards N the process becomes the router of a sharded cluster:
// it re-executes itself N×R times, each child serving a subset of the
// index's Voronoi cells, and answers the same endpoints with responses
// byte-identical to the single-process server (see internal/shard).
//
// Endpoints:
//
//	POST /knn        {"point":[...],"k":5}
//	POST /range      {"point":[...],"radius":10}
//	POST /knn/batch  {"queries":[{"point":[...],"k":5}, ...]}
//	POST /reload     {"path":"new.idx"}   (empty path re-reads -index)
//	GET  /stats      counters, latency quantiles, cache hit rate
//	GET  /metrics    Prometheus text exposition
//	GET  /healthz    liveness
//
// -pprof exposes net/http/pprof under /debug/pprof; -trace DIR writes
// request spans as JSONL for cmd/knntrace.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"knnjoin/internal/dataset"
	"knnjoin/internal/obs"
	"knnjoin/internal/pivot"
	"knnjoin/internal/serve"
	"knnjoin/internal/shard"
	"knnjoin/internal/vector"
	"knnjoin/internal/vindex"
)

func main() {
	// Children of -shards mode re-enter this binary; this turns them
	// into shard replicas and never returns for them.
	shard.RunShardIfSpawned()
	if err := run(context.Background(), os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "knnserve:", err)
		os.Exit(1)
	}
}

// run parses flags, builds the server, and serves until SIGINT/SIGTERM
// or parent cancellation. ready, when non-nil, receives the bound
// address once listening (used by tests to serve on ":0").
func run(parent context.Context, args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("knnserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	idxPath := fs.String("index", "", "index file built by `knnindex build`")
	data := fs.String("data", "", "CSV dataset to index at startup (alternative to -index)")
	numPivots := fs.Int("pivots", 0, "with -data: pivot count (0 = auto ≈ 2√n)")
	metricName := fs.String("metric", "l2", "with -data: distance metric: l2 | l1 | linf")
	pivotStrat := fs.String("pivot-strategy", "random", "with -data: pivot selection: random | farthest | kmeans")
	boundK := fs.Int("boundk", 16, "with -data: per-partition kNN summary size")
	seed := fs.Int64("seed", 1, "with -data: random seed")
	workers := fs.Int("workers", 0, "concurrent query execution bound (0 = GOMAXPROCS)")
	cacheSize := fs.Int("cache", 1024, "LRU result cache entries (0 disables)")
	maxBatch := fs.Int("max-batch", 1024, "maximum queries per /knn/batch request")
	kernelName := fs.String("kernel", "block", "distance kernel tier: scalar | block | f32 | quantized | auto")
	shards := fs.Int("shards", 0, "serve as a sharded cluster of this many shard processes (0 = single process)")
	replicas := fs.Int("replicas", 1, "with -shards: replica processes per shard")
	traceDir := fs.String("trace", "", "write request/scan spans as JSONL under this directory (render with knntrace)")
	pprofOn := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*idxPath == "") == (*data == "") {
		return fmt.Errorf("need exactly one of -index or -data")
	}
	if *shards < 0 {
		return fmt.Errorf("-shards must be non-negative, got %d", *shards)
	}
	if *replicas < 1 {
		return fmt.Errorf("-replicas must be at least 1, got %d", *replicas)
	}
	kernel, err := vector.ParseKernel(*kernelName)
	if err != nil {
		return err
	}

	var ix *vindex.Index
	source := ""
	switch {
	case *idxPath != "":
		var err error
		if ix, err = vindex.LoadFile(*idxPath); err != nil {
			return err
		}
		source = *idxPath
	default:
		metric, err := vector.ParseMetric(*metricName)
		if err != nil {
			return err
		}
		ps, err := pivot.ParseStrategy(*pivotStrat)
		if err != nil {
			return err
		}
		f, err := os.Open(*data)
		if err != nil {
			return err
		}
		objs, err := dataset.ReadCSV(f)
		f.Close()
		if err != nil {
			return err
		}
		ix, err = vindex.Build(objs, vindex.Options{
			Metric: metric, NumPivots: *numPivots, PivotStrategy: ps, Seed: *seed, BoundK: *boundK,
		})
		if err != nil {
			return err
		}
	}

	// At the flag layer an explicit 0 means "no cache" (the library's
	// zero value means "default size") — translate before constructing.
	if *cacheSize == 0 {
		*cacheSize = -1
	}
	var tracer *obs.Tracer
	if *traceDir != "" {
		var err error
		if tracer, err = obs.NewTracer(*traceDir, "serve"); err != nil {
			return err
		}
		defer tracer.Close()
	}
	cfg := serve.Config{Workers: *workers, CacheSize: *cacheSize, MaxBatch: *maxBatch, Kernel: kernel, Tracer: tracer}

	var s *serve.Server
	if *shards > 0 {
		// The shard replicas load their cell subsets from a file; an
		// index built from -data is persisted first so they can.
		path := *idxPath
		if path == "" {
			f, err := os.CreateTemp("", "knnserve-*.idx")
			if err != nil {
				return err
			}
			if err := ix.Save(f); err != nil {
				f.Close()
				os.Remove(f.Name())
				return err
			}
			if err := f.Close(); err != nil {
				os.Remove(f.Name())
				return err
			}
			path = f.Name()
			defer os.Remove(path)
		}
		cluster, err := shard.StartCluster(shard.ClusterConfig{
			IndexPath: path, Shards: *shards, Replicas: *replicas, Kernel: kernel,
			TraceDir: *traceDir, Pprof: *pprofOn,
		})
		if err != nil {
			return err
		}
		defer cluster.Close()
		// The router's shard_* families join the server's registry so
		// one /metrics page covers routing and serving.
		cfg.Metrics = obs.NewRegistry()
		router := shard.NewRouter(cluster, shard.RouterConfig{
			ProbeInterval: time.Second, Tracer: tracer, Metrics: cfg.Metrics,
		})
		defer router.Close()
		cfg.Loader = router.Loader
		s = serve.NewBackend(router, path, cfg)
		fmt.Fprintf(os.Stderr, "knnserve: routing over %d shards × %d replicas\n", *shards, *replicas)
	} else {
		s = serve.New(ix, source, cfg)
	}
	handler := s.Handler()
	if *pprofOn {
		mux := http.NewServeMux()
		obs.RegisterPprof(mux)
		mux.Handle("/", handler)
		handler = mux
	}
	srv := &http.Server{Addr: *addr, Handler: handler}

	ctx, stop := signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "knnserve: serving %d objects in %d partitions (dim %d) on %s\n",
		ix.Len(), ix.NumPartitions(), ix.Dim(), ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
