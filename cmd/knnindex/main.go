// Command knnindex builds, persists, and queries the pivot-based online
// index (internal/vindex): the paper's Voronoi partitioning machinery
// packaged for ad-hoc single queries instead of full joins.
//
// Usage:
//
//	knnindex build -data pts.csv -o pts.idx -pivots 200
//	knnindex query -index pts.idx -point "12.5,3.1" -k 5
//	knnindex range -index pts.idx -point "12.5,3.1" -radius 10
//	knnindex stats -index pts.idx
package main

import (
	"flag"
	"fmt"
	"os"

	"knnjoin/internal/codec"
	"knnjoin/internal/dataset"
	"knnjoin/internal/pivot"
	"knnjoin/internal/vector"
	"knnjoin/internal/vindex"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "knnindex:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: knnindex <build|query|range|stats> [flags]")
	}
	switch args[0] {
	case "build":
		return runBuild(args[1:])
	case "query":
		return runQuery(args[1:])
	case "range":
		return runRange(args[1:])
	case "stats":
		return runStats(args[1:])
	}
	return fmt.Errorf("unknown subcommand %q (want build, query, range or stats)", args[0])
}

func runBuild(args []string) error {
	fs := flag.NewFlagSet("knnindex build", flag.ContinueOnError)
	data := fs.String("data", "", "CSV dataset to index (required)")
	out := fs.String("o", "", "output index file (required)")
	numPivots := fs.Int("pivots", 0, "pivot count (0 = auto ≈ 2√n)")
	metricName := fs.String("metric", "l2", "distance metric: l2 | l1 | linf")
	pivotStrat := fs.String("pivot-strategy", "random", "pivot selection: random | farthest | kmeans")
	boundK := fs.Int("boundk", 16, "per-partition kNN summary size (tight bounds for k ≤ boundk)")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" || *out == "" {
		return fmt.Errorf("build needs -data and -o")
	}
	metric, err := vector.ParseMetric(*metricName)
	if err != nil {
		return err
	}
	ps, err := pivot.ParseStrategy(*pivotStrat)
	if err != nil {
		return err
	}
	objs, err := readCSV(*data)
	if err != nil {
		return err
	}
	ix, err := vindex.Build(objs, vindex.Options{
		Metric: metric, NumPivots: *numPivots, PivotStrategy: ps, Seed: *seed, BoundK: *boundK,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ix.Save(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "knnindex: indexed %d objects into %d partitions → %s\n",
		ix.Len(), ix.NumPartitions(), *out)
	return nil
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("knnindex query", flag.ContinueOnError)
	idxPath := fs.String("index", "", "index file (required)")
	pointStr := fs.String("point", "", "query point, comma-separated (required)")
	k := fs.Int("k", 10, "number of neighbors")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ix, q, err := loadIndexAndPoint(*idxPath, *pointStr)
	if err != nil {
		return err
	}
	res, st := ix.KNNWithStats(q, *k)
	for _, c := range res {
		fmt.Printf("%d,%g\n", c.ID, c.Dist)
	}
	fmt.Fprintf(os.Stderr, "knnindex: %d distance computations, %d partitions scanned, %d pruned\n",
		st.DistComputations, st.PartitionsScanned, st.PartitionsPruned)
	return nil
}

func runRange(args []string) error {
	fs := flag.NewFlagSet("knnindex range", flag.ContinueOnError)
	idxPath := fs.String("index", "", "index file (required)")
	pointStr := fs.String("point", "", "query point, comma-separated (required)")
	radius := fs.Float64("radius", 1, "search radius")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *radius < 0 {
		return fmt.Errorf("-radius must be non-negative")
	}
	ix, q, err := loadIndexAndPoint(*idxPath, *pointStr)
	if err != nil {
		return err
	}
	for _, o := range ix.Range(q, *radius) {
		fmt.Printf("%d,%s\n", o.ID, o.Point)
	}
	return nil
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("knnindex stats", flag.ContinueOnError)
	idxPath := fs.String("index", "", "index file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *idxPath == "" {
		return fmt.Errorf("stats needs -index")
	}
	ix, err := loadIndex(*idxPath)
	if err != nil {
		return err
	}
	fmt.Printf("objects:    %d\npartitions: %d\n", ix.Len(), ix.NumPartitions())
	return nil
}

func loadIndexAndPoint(idxPath, pointStr string) (*vindex.Index, vector.Point, error) {
	if idxPath == "" || pointStr == "" {
		return nil, nil, fmt.Errorf("need -index and -point")
	}
	ix, err := loadIndex(idxPath)
	if err != nil {
		return nil, nil, err
	}
	q, err := vector.Parse(pointStr)
	if err != nil {
		return nil, nil, err
	}
	return ix, q, nil
}

func loadIndex(path string) (*vindex.Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return vindex.Load(f)
}

func readCSV(path string) ([]codec.Object, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadCSV(f)
}
