package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"knnjoin/internal/dataset"
)

func buildTestIndex(t *testing.T) (csvPath, idxPath string) {
	t.Helper()
	dir := t.TempDir()
	csvPath = filepath.Join(dir, "pts.csv")
	idxPath = filepath.Join(dir, "pts.idx")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := dataset.WriteCSV(f, dataset.Uniform(300, 3, 100, 1)); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"build", "-data", csvPath, "-o", idxPath, "-pivots", "20"}); err != nil {
		t.Fatal(err)
	}
	return csvPath, idxPath
}

func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	rp, wp, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = wp
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := rp.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- b.String()
	}()
	ferr := f()
	wp.Close()
	return <-done, ferr
}

func TestBuildQueryRangeStats(t *testing.T) {
	_, idx := buildTestIndex(t)

	out, err := captureStdout(t, func() error {
		return run([]string{"query", "-index", idx, "-point", "50,50,50", "-k", "5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(strings.Split(strings.TrimSpace(out), "\n")); n != 5 {
		t.Fatalf("query returned %d lines, want 5", n)
	}

	out, err = captureStdout(t, func() error {
		return run([]string{"range", "-index", idx, "-point", "50,50,50", "-radius", "30"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, ",") {
		t.Fatalf("range output looks empty: %q", out)
	}

	out, err = captureStdout(t, func() error {
		return run([]string{"stats", "-index", idx})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "objects:    300") || !strings.Contains(out, "partitions: 20") {
		t.Fatalf("stats output = %q", out)
	}
}

func TestErrors(t *testing.T) {
	csv, idx := buildTestIndex(t)
	for _, args := range [][]string{
		{},
		{"explode"},
		{"build"},                                // missing flags
		{"build", "-data", csv},                  // missing -o
		{"build", "-data", "missing", "-o", "x"}, // bad file
		{"build", "-data", csv, "-o", "/nonexistent-dir/x.idx"},
		{"build", "-data", csv, "-o", idx, "-metric", "cosine"},
		{"build", "-data", csv, "-o", idx, "-pivot-strategy", "psychic"},
		{"query", "-index", idx},                          // missing point
		{"query", "-index", "missing", "-point", "1,2,3"}, // bad index
		{"query", "-index", idx, "-point", "not-a-point"}, // bad point
		{"range", "-index", idx, "-point", "1,2,3", "-radius", "-1"},
		{"stats"},
	} {
		if _, err := captureStdout(t, func() error { return run(args) }); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}

func TestQueryMatchesAcrossSaveLoad(t *testing.T) {
	_, idx := buildTestIndex(t)
	a, err := captureStdout(t, func() error {
		return run([]string{"query", "-index", idx, "-point", "10,20,30", "-k", "3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := captureStdout(t, func() error {
		return run([]string{"query", "-index", idx, "-point", "10,20,30", "-k", "3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("repeated queries on the same index differ")
	}
}
