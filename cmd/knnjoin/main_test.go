package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"knnjoin/internal/dataset"
)

func writeTestCSV(t *testing.T, n int, seed int64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pts.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := dataset.WriteCSV(f, dataset.Uniform(n, 3, 100, seed)); err != nil {
		t.Fatal(err)
	}
	return path
}

// captureStdout runs f with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	rp, wp, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = wp
	defer func() { os.Stdout = old }()
	ferr := f()
	wp.Close()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := rp.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return b.String(), ferr
}

func TestRunSelfJoin(t *testing.T) {
	csv := writeTestCSV(t, 100, 1)
	out, err := captureStdout(t, func() error {
		return run([]string{"-r", csv, "-self", "-k", "2", "-nodes", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 200 { // 100 objects × k=2
		t.Fatalf("got %d result lines, want 200", len(lines))
	}
	// Self-join: first neighbor of object 0 is itself at distance 0.
	if !strings.HasPrefix(lines[0], "0,0,0") {
		t.Fatalf("first line = %q", lines[0])
	}
}

func TestRunTwoDatasets(t *testing.T) {
	r := writeTestCSV(t, 40, 2)
	s := writeTestCSV(t, 60, 3)
	out, err := captureStdout(t, func() error {
		return run([]string{"-r", r, "-s", s, "-k", "3", "-algo", "hbrj", "-nodes", "4"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(strings.Split(strings.TrimSpace(out), "\n")); n != 120 {
		t.Fatalf("got %d lines, want 120", n)
	}
}

func TestRunStatsOnly(t *testing.T) {
	csv := writeTestCSV(t, 50, 4)
	out, err := captureStdout(t, func() error {
		return run([]string{"-r", csv, "-self", "-k", "2", "-stats-only"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "" {
		t.Fatalf("stats-only printed result pairs: %q", out)
	}
}

func TestRunPairsMode(t *testing.T) {
	csv := writeTestCSV(t, 100, 7)
	out, err := captureStdout(t, func() error {
		return run([]string{"-r", csv, "-self", "-k", "5", "-pairs", "-exclude-self", "-unordered", "-nodes", "4"})
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d pair lines, want 5", len(lines))
	}
	for _, line := range lines {
		if strings.Count(line, ",") != 2 {
			t.Fatalf("malformed pair line %q", line)
		}
	}
}

func TestRunRangeMode(t *testing.T) {
	csv := writeTestCSV(t, 120, 8)
	out, err := captureStdout(t, func() error {
		return run([]string{"-r", csv, "-self", "-range", "10", "-nodes", "4"})
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 120 { // at least every self-match
		t.Fatalf("got %d range lines, want ≥ 120", len(lines))
	}
	for _, line := range lines[:5] {
		if strings.Count(line, ",") != 2 {
			t.Fatalf("malformed line %q", line)
		}
	}
}

func TestRunCovTypeInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "covtype.data")
	var b strings.Builder
	for i := 0; i < 30; i++ {
		for col := 0; col < 55; col++ {
			if col > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", i*55+col)
		}
		b.WriteByte('\n')
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := captureStdout(t, func() error {
		return run([]string{"-r", path, "-self", "-covtype", "-k", "2", "-nodes", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(strings.Split(strings.TrimSpace(out), "\n")); n != 60 {
		t.Fatalf("got %d lines, want 60", n)
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	csv := writeTestCSV(t, 80, 5)
	var outputs []string
	for _, algo := range []string{"pgbj", "pbj", "hbrj", "broadcast", "theta", "bruteforce"} {
		out, err := captureStdout(t, func() error {
			return run([]string{"-r", csv, "-self", "-k", "3", "-algo", algo, "-nodes", "4"})
		})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		outputs = append(outputs, out)
	}
	// All algorithms emit the same number of pairs; distances agree per
	// line because ties are broken by ID everywhere.
	for i := 1; i < len(outputs); i++ {
		if outputs[i] != outputs[0] {
			t.Fatalf("algorithm %d output differs from pgbj", i)
		}
	}
}

func TestRunErrors(t *testing.T) {
	csv := writeTestCSV(t, 10, 6)
	for _, args := range [][]string{
		{},                         // missing -r
		{"-r", csv},                // missing -s / -self
		{"-r", "missing", "-self"}, // bad file
		{"-r", csv, "-self", "-algo", "quantum"},
		{"-r", csv, "-self", "-metric", "hamming"},
		{"-r", csv, "-self", "-pivot-strategy", "psychic"},
		{"-r", csv, "-self", "-group-strategy", "astrology"},
		{"-r", csv, "-self", "-k", "0"},
	} {
		if _, err := captureStdout(t, func() error { return run(args) }); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}

func TestRunAutoAlgo(t *testing.T) {
	csv := writeTestCSV(t, 150, 9)
	out, err := captureStdout(t, func() error {
		return run([]string{"-r", csv, "-self", "-k", "2", "-algo", "auto", "-nodes", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(strings.Split(strings.TrimSpace(out), "\n")); n != 300 {
		t.Fatalf("got %d result lines, want 300", n)
	}
	// Auto must match the manually picked algorithms bit for bit.
	direct, err := captureStdout(t, func() error {
		return run([]string{"-r", csv, "-self", "-k", "2", "-algo", "bruteforce", "-nodes", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if out != direct {
		t.Fatal("auto output differs from the exact join")
	}
}

func TestRunExplain(t *testing.T) {
	csv := writeTestCSV(t, 200, 10)
	out, err := captureStdout(t, func() error {
		return run([]string{"-r", csv, "-self", "-k", "3", "-explain"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"|R|=200", "score", "bruteforce"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, ",0,0") {
		t.Error("explain mode still printed result pairs")
	}
}
