// Command knnjoin runs a k-nearest-neighbor join over CSV datasets using
// any of the implemented algorithms and prints the result pairs plus the
// paper's cost measures.
//
// Usage:
//
//	knnjoin -r r.csv -s s.csv -k 10 -algo pgbj -nodes 16
//	knnjoin -r pts.csv -self -k 5 -algo hbrj -stats-only
//	knnjoin -r pts.csv -self -k 20 -pairs -exclude-self -unordered
//	knnjoin -r huge.csv -self -k 10 -mem-limit 256M   # out-of-core backend
//	knnjoin -r pts.csv -self -k 10 -algo auto          # cost-based planner picks
//	knnjoin -r pts.csv -self -k 10 -explain            # print ranked plans, run nothing
//	knnjoin -r pts.csv -self -k 10 -workers 4          # multi-process cluster mode
//
// Input files hold one "id,x1,x2,..." line per object (see cmd/datagen).
// Output lines are "rID,sID,distance", one per result pair — ordered by
// rID then ascending distance for a kNN join, or globally ascending by
// distance in -pairs mode (the top-k closest-pairs join of Kim & Shim).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"knnjoin"
	"knnjoin/internal/dataset"
	"knnjoin/internal/obs"
	"knnjoin/internal/planner"
	"knnjoin/internal/stats"
)

func main() {
	// With -workers N the coordinator re-executes this binary as its
	// worker processes; spawned copies must turn into workers before
	// anything else runs.
	knnjoin.RunWorkerIfSpawned()
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "knnjoin:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("knnjoin", flag.ContinueOnError)
	rPath := fs.String("r", "", "CSV file of the outer dataset R (required)")
	sPath := fs.String("s", "", "CSV file of the inner dataset S")
	self := fs.Bool("self", false, "self-join: use R as S")
	k := fs.Int("k", 10, "number of nearest neighbors")
	algoName := fs.String("algo", "pgbj", "algorithm: pgbj | pbj | hbrj | broadcast | theta | bruteforce | zknn | lsh | auto")
	metricName := fs.String("metric", "l2", "distance metric: l2 | l1 | linf")
	nodes := fs.Int("nodes", 4, "simulated cluster nodes")
	numPivots := fs.Int("pivots", 0, "number of pivots (0 = auto)")
	pivotStrat := fs.String("pivot-strategy", "random", "pivot selection: random | farthest | kmeans")
	groupStrat := fs.String("group-strategy", "geometric", "grouping: geometric | greedy")
	seed := fs.Int64("seed", 1, "random seed")
	statsOnly := fs.Bool("stats-only", false, "print cost statistics, not result pairs")
	pairsMode := fs.Bool("pairs", false, "top-k closest pairs of R×S instead of a kNN join")
	excludeSelf := fs.Bool("exclude-self", false, "with -pairs: drop pairs of an object with itself")
	unordered := fs.Bool("unordered", false, "with -pairs: report each unordered pair once (rID < sID)")
	radius := fs.Float64("range", 0, "θ-range join with this radius instead of a kNN join")
	covtype := fs.Bool("covtype", false, "inputs are UCI covtype.data[.gz] files (10 quantitative attributes)")
	spillDir := fs.String("spill-dir", "", "out-of-core backend: spill DFS chunks and shuffle runs under this directory")
	memLimitFlag := fs.String("mem-limit", "", "resident shuffle budget, e.g. 64M (spills to -spill-dir or a temp dir)")
	explain := fs.Bool("explain", false, "print the planner's ranked candidate plans and exit without joining")
	kernelName := fs.String("kernel", "block", "distance kernel tier: scalar | block | f32 | quantized | auto")
	workers := fs.Int("workers", 0, "run MapReduce jobs on this many worker processes (0 = in-process engine)")
	traceDir := fs.String("trace", "", "with -workers: write observability spans as JSONL under this directory (render with knntrace)")
	pprofOn := fs.Bool("pprof", false, "with -workers: expose net/http/pprof on the coordinator's HTTP server")
	verbose := fs.Bool("v", false, "print the per-job breakdown (shuffle, spill, map/reduce walls)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		stop, err := obs.StartCPUProfile(*cpuProfile)
		if err != nil {
			return err
		}
		defer stop()
	}
	if *memProfile != "" {
		defer func() {
			if err := obs.WriteHeapProfile(*memProfile); err != nil {
				fmt.Fprintln(os.Stderr, "knnjoin: heap profile:", err)
			}
		}()
	}
	var memLimit int64
	if *memLimitFlag != "" {
		var err error
		if memLimit, err = stats.ParseBytes(*memLimitFlag); err != nil {
			return fmt.Errorf("-mem-limit: %w", err)
		}
	}
	if *rPath == "" {
		return fmt.Errorf("-r is required")
	}
	if *sPath == "" && !*self {
		return fmt.Errorf("provide -s or -self")
	}

	algo, err := knnjoin.ParseAlgorithm(*algoName)
	if err != nil {
		return err
	}
	metric, err := knnjoin.ParseMetric(*metricName)
	if err != nil {
		return err
	}
	ps, err := knnjoin.ParsePivotStrategy(*pivotStrat)
	if err != nil {
		return err
	}
	gs, err := knnjoin.ParseGroupStrategy(*groupStrat)
	if err != nil {
		return err
	}
	kernel, err := knnjoin.ParseKernel(*kernelName)
	if err != nil {
		return err
	}

	r, err := readInput(*rPath, *covtype)
	if err != nil {
		return fmt.Errorf("reading R: %w", err)
	}
	s := r
	if !*self {
		if s, err = readInput(*sPath, *covtype); err != nil {
			return fmt.Errorf("reading S: %w", err)
		}
	}

	if *explain {
		popts := planner.Options{
			K: *k, Nodes: *nodes, Metric: metric, MemLimit: memLimit,
			Seed: *seed, NumPivots: *numPivots, Kernel: kernel,
		}
		ds, err := planner.Measure(r, s, popts)
		if err != nil {
			return err
		}
		plans, err := planner.Plans(ds, popts)
		if err != nil {
			return err
		}
		fmt.Print(planner.Explain(ds, plans))
		return nil
	}

	if *radius > 0 {
		results, st, err := knnjoin.RangeJoin(r, s, knnjoin.RangeOptions{
			Radius: *radius, Metric: metric, Nodes: *nodes,
			NumPivots: *numPivots, PivotStrategy: ps, Seed: *seed,
			SpillDir: *spillDir, MemLimit: memLimit, Kernel: kernel,
			Workers: *workers, TraceDir: *traceDir,
		})
		if err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, st.String())
		if *verbose {
			printJobs(st.Jobs)
		}
		if *statsOnly {
			return nil
		}
		return writeResults(results)
	}

	if *pairsMode {
		pairs, st, err := knnjoin.ClosestPairs(r, s, knnjoin.PairOptions{
			K: *k, Metric: metric, Nodes: *nodes,
			ExcludeSelf: *excludeSelf, Unordered: *unordered, Seed: *seed,
			SpillDir: *spillDir, MemLimit: memLimit, Workers: *workers,
			TraceDir: *traceDir,
		})
		if err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, st.String())
		if *verbose {
			printJobs(st.Jobs)
		}
		if *statsOnly {
			return nil
		}
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		for _, p := range pairs {
			if _, err := fmt.Fprintf(w, "%d,%d,%g\n", p.RID, p.SID, p.Dist); err != nil {
				return err
			}
		}
		return nil
	}

	results, st, err := knnjoin.Join(r, s, knnjoin.Options{
		K: *k, Algorithm: algo, Metric: metric, Nodes: *nodes,
		NumPivots: *numPivots, PivotStrategy: ps, GroupStrategy: gs, Seed: *seed,
		SpillDir: *spillDir, MemLimit: memLimit, Kernel: kernel, Workers: *workers,
		TraceDir: *traceDir, Pprof: *pprofOn,
	})
	if err != nil {
		return err
	}

	if st.Plan != nil {
		fmt.Fprintln(os.Stderr, st.Plan.String())
	}
	fmt.Fprintln(os.Stderr, st.String())
	for _, p := range st.Phases {
		fmt.Fprintf(os.Stderr, "  %-20s %v\n", p.Name, p.Wall)
	}
	if *verbose {
		printJobs(st.Jobs)
	}
	if *statsOnly {
		return nil
	}
	return writeResults(results)
}

// printJobs writes the per-job actuals table to stderr: where each
// job's shuffle bytes, spill bytes and wall time (split into map and
// reduce phases) went.
func printJobs(jobs []stats.JobStat) {
	if len(jobs) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "  %-24s %12s %12s %12s %12s %12s\n",
		"job", "shuffle", "spilled", "map", "reduce", "wall")
	for _, j := range jobs {
		fmt.Fprintf(os.Stderr, "  %-24s %12s %12s %12v %12v %12v\n",
			j.Name, stats.FormatBytes(j.ShuffleBytes), stats.FormatBytes(j.SpilledBytes),
			j.MapWall.Round(time.Microsecond), j.ReduceWall.Round(time.Microsecond),
			j.Wall.Round(time.Microsecond))
	}
}

// writeResults prints "rID,sID,distance" lines to stdout.
func writeResults(results []knnjoin.Result) error {
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, res := range results {
		for _, nb := range res.Neighbors {
			if _, err := fmt.Fprintf(w, "%d,%d,%g\n", res.RID, nb.ID, nb.Dist); err != nil {
				return err
			}
		}
	}
	return nil
}

func readInput(path string, covtype bool) ([]knnjoin.Object, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if covtype {
		return dataset.ReadCovType(f, 0)
	}
	return dataset.ReadCSV(f)
}
