// Command knntrace merges the per-process JSONL span files a traced
// run wrote (knnjoin -workers N -trace DIR, knnserve -trace DIR) and
// renders them: an ASCII per-process timeline on stdout by default, or
// Chrome trace-event JSON with -chrome (load the file in Perfetto or
// chrome://tracing).
//
// Usage:
//
//	knntrace /tmp/trace-dir                 # ASCII timeline
//	knntrace -chrome trace.json /tmp/dir    # Chrome trace-event export
//	knntrace -width 160 /tmp/dir            # wider timeline
package main

import (
	"flag"
	"fmt"
	"os"

	"knnjoin/internal/obs"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "knntrace:", err)
		os.Exit(1)
	}
}

func run(out *os.File, args []string) error {
	fs := flag.NewFlagSet("knntrace", flag.ContinueOnError)
	chrome := fs.String("chrome", "", "write Chrome trace-event JSON to this file instead of rendering a timeline")
	width := fs.Int("width", 100, "timeline bar width in columns")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: knntrace [-chrome out.json] [-width N] TRACE_DIR")
	}
	spans, err := obs.ReadDir(fs.Arg(0))
	if err != nil {
		return err
	}
	if len(spans) == 0 {
		return fmt.Errorf("no spans found in %s", fs.Arg(0))
	}
	if *chrome != "" {
		raw, err := obs.ChromeTrace(spans)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*chrome, raw, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d spans to %s (load in Perfetto or chrome://tracing)\n", len(spans), *chrome)
		return nil
	}
	_, err = out.WriteString(obs.Timeline(spans, *width))
	return err
}
