package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"knnjoin/internal/obs"
)

// writeTrace populates dir with a two-process trace: a coordinator job
// span parenting a worker task span with one fault event.
func writeTrace(t *testing.T, dir string) {
	t.Helper()
	coord, err := obs.NewTracer(dir, "coord")
	if err != nil {
		t.Fatal(err)
	}
	job := coord.StartSpan("job:test", obs.SpanContext{})
	worker, err := obs.NewTracer(dir, "worker-0")
	if err != nil {
		t.Fatal(err)
	}
	task := worker.StartSpan("task", job.Context())
	task.Event("fault-kill", "point", "mid-task")
	task.SetAttr("outcome", "killed")
	task.End()
	job.End()
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	if err := worker.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTimelineOutput(t *testing.T) {
	dir := t.TempDir()
	writeTrace(t, dir)

	outFile := filepath.Join(dir, "out.txt")
	f, err := os.Create(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(f, []string{dir}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	raw, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	for _, want := range []string{"coord", "worker-0", "job:test", "task", "!"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestChromeExportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	writeTrace(t, dir)

	chrome := filepath.Join(dir, "trace.json")
	f, err := os.Create(filepath.Join(dir, "out.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := run(f, []string{"-chrome", chrome, dir}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ParseChromeTrace(raw)
	if err != nil {
		t.Fatalf("exported trace does not parse: %v", err)
	}
	var durations, instants int
	for _, ev := range evs {
		switch ev.Ph {
		case "X":
			durations++
		case "i":
			instants++
		}
	}
	if durations != 2 {
		t.Errorf("duration events = %d, want 2", durations)
	}
	if instants != 1 {
		t.Errorf("instant events = %d, want 1 (the fault-kill)", instants)
	}
}

func TestEmptyDirErrors(t *testing.T) {
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "out.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := run(f, []string{dir}); err == nil {
		t.Fatal("expected an error for a spanless directory")
	}
}
