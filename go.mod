module knnjoin

go 1.24
