package knnjoin

import (
	"fmt"
	"math"
	"strings"

	"knnjoin/internal/codec"
	"knnjoin/internal/driver"
	"knnjoin/internal/hbrj"
	"knnjoin/internal/lsh"
	"knnjoin/internal/naive"
	"knnjoin/internal/pgbj"
	"knnjoin/internal/pivot"
	"knnjoin/internal/planner"
	"knnjoin/internal/rangejoin"
	"knnjoin/internal/stats"
	"knnjoin/internal/theta"
	"knnjoin/internal/topk"
	"knnjoin/internal/vector"
	"knnjoin/internal/zknn"
)

// Point is an n-dimensional coordinate vector.
type Point = vector.Point

// Metric identifies the distance measure.
type Metric = vector.Metric

// Distance metrics. L2 (Euclidean) is the default, matching the paper.
const (
	L2   = vector.L2
	L1   = vector.L1
	LInf = vector.LInf
)

// Object is a point with a dataset-unique identifier.
type Object = codec.Object

// Neighbor is one (s, distance) entry of a join result.
type Neighbor = codec.Neighbor

// Result holds one R object's k nearest neighbors, ascending by distance.
type Result = codec.Result

// Stats reports what a join cost; see the stats package for field docs.
type Stats = stats.Report

// Algorithm selects the join implementation.
type Algorithm int

const (
	// PGBJ is the paper's contribution: Voronoi partitioning with pivot
	// grouping, one MapReduce join job, minimal S-replication. Default.
	PGBJ Algorithm = iota
	// PBJ is PGBJ's pruning inside the √N×√N block framework (no
	// grouping, extra merge job).
	PBJ
	// HBRJ is the R-tree block-join baseline of Zhang et al. (EDBT'12).
	HBRJ
	// Broadcast is the §3 basic strategy: S replicated to every reducer.
	Broadcast
	// BruteForce is the centralized exact join; no cluster involved.
	BruteForce
	// ZKNN is H-zkNNJ (Zhang et al., EDBT'12): the z-order APPROXIMATE
	// join the paper excludes from its exact comparison (§7). Results
	// are close to exact (recall rises with data regularity and the
	// shift count) but not guaranteed; every reported distance is a true
	// distance to a real S object.
	ZKNN
	// Theta is 1-Bucket-Theta (Okcan & Riedewald, SIGMOD'11): the
	// random-tiling theta-join framework of the paper's related work
	// (§7, ref [14]) evaluating the kNN predicate per matrix region.
	// Exact, skew-proof, but computes the full cross product like HBRJ.
	Theta
	// LSH is a RankReduce-style locality-sensitive-hashing join (Stupar
	// et al., LSDS-IR'10; ref [15]): APPROXIMATE like ZKNN, with recall
	// governed by the table count rather than the shift count.
	LSH
	// Auto delegates the choice to the cost-based planner: the join
	// samples both datasets, evaluates the paper's cost model across
	// every exact algorithm and its tuning grid, executes the cheapest
	// plan, and records the chosen plan plus its predictions in Stats
	// (see AutoPlan).
	Auto
)

// String returns the algorithm's conventional name.
func (a Algorithm) String() string {
	switch a {
	case PGBJ:
		return "pgbj"
	case PBJ:
		return "pbj"
	case HBRJ:
		return "hbrj"
	case Broadcast:
		return "broadcast"
	case BruteForce:
		return "bruteforce"
	case ZKNN:
		return "zknn"
	case Theta:
		return "theta"
	case LSH:
		return "lsh"
	case Auto:
		return "auto"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ParseAlgorithm converts a name ("pgbj", "h-brj", ...) into an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch strings.ToLower(strings.ReplaceAll(strings.TrimSpace(s), "-", "")) {
	case "pgbj", "":
		return PGBJ, nil
	case "pbj":
		return PBJ, nil
	case "hbrj":
		return HBRJ, nil
	case "broadcast", "basic":
		return Broadcast, nil
	case "bruteforce", "brute", "exact":
		return BruteForce, nil
	case "zknn", "hzknnj", "approx":
		return ZKNN, nil
	case "theta", "1buckettheta", "onebuckettheta":
		return Theta, nil
	case "lsh", "rankreduce":
		return LSH, nil
	case "auto", "plan":
		return Auto, nil
	}
	return PGBJ, fmt.Errorf("knnjoin: unknown algorithm %q", s)
}

// ParseMetric converts a metric name ("l2", "l1", "linf", "max", ...)
// into a Metric.
func ParseMetric(s string) (Metric, error) { return vector.ParseMetric(s) }

// Kernel selects the reduce-side distance scan tier (see vector.Kernel):
// the fused float64 block kernels (default), the reference scalar shape,
// the float32-mirror filter tier, the quantized uint8 filter tier, or an
// automatic per-block choice. Every tier returns bit-identical join
// results; they differ only in speed.
type Kernel = vector.Kernel

// Distance kernel tiers.
const (
	KernelBlock     = vector.KernelBlock
	KernelScalar    = vector.KernelScalar
	KernelF32       = vector.KernelF32
	KernelQuantized = vector.KernelQuantized
	KernelAuto      = vector.KernelAuto
)

// ParseKernel converts a kernel name ("block", "scalar", "f32",
// "quantized", "auto") into a Kernel.
func ParseKernel(s string) (Kernel, error) { return vector.ParseKernel(s) }

// PivotStrategy selects how PGBJ/PBJ choose pivots (§4.1).
type PivotStrategy = pivot.Strategy

// ParsePivotStrategy converts a strategy name ("random", "farthest",
// "kmeans") into a PivotStrategy.
func ParsePivotStrategy(s string) (PivotStrategy, error) { return pivot.ParseStrategy(s) }

// ParseGroupStrategy converts a grouping name ("geometric", "greedy")
// into a GroupStrategy.
func ParseGroupStrategy(s string) (GroupStrategy, error) { return pgbj.ParseGroupStrategy(s) }

// Pivot-selection strategies.
const (
	RandomPivots   = pivot.Random
	FarthestPivots = pivot.Farthest
	KMeansPivots   = pivot.KMeans
)

// GroupStrategy selects how PGBJ clusters partitions into reducer groups
// (§5.2).
type GroupStrategy = pgbj.GroupStrategy

// Grouping strategies.
const (
	GeometricGrouping = pgbj.Geometric
	GreedyGrouping    = pgbj.Greedy
)

// Options configures a join. The zero value of every field except K is
// usable: PGBJ on 4 simulated nodes with L2, random pivots and geometric
// grouping — the configuration the paper recommends after §6.1.
type Options struct {
	// K is the number of neighbors per R object. Required, positive.
	K int
	// Algorithm selects the implementation; default PGBJ.
	Algorithm Algorithm
	// Metric is the distance measure; default L2.
	Metric Metric
	// Nodes is the simulated cluster size (reducers); default 4.
	Nodes int
	// NumPivots is |P| for PGBJ/PBJ; default ≈ 2·√|R|, clamped to
	// [Nodes, |R|].
	NumPivots int
	// PivotStrategy is the §4.1 selection strategy; default random.
	PivotStrategy PivotStrategy
	// GroupStrategy is the §5.2 grouping strategy; default geometric.
	GroupStrategy GroupStrategy
	// Seed fixes all randomized choices; runs are deterministic per seed.
	Seed int64
	// ChunkRecords is the DFS split size (records per map task); default
	// dfs.DefaultChunkRecords.
	ChunkRecords int
	// SpillDir selects the out-of-core execution backend: dataset chunks
	// and shuffle runs live under this directory instead of in memory,
	// and reducers stream sorted runs back off disk. Empty keeps the
	// in-memory backend. Join results are byte-identical either way.
	SpillDir string
	// MemLimit bounds the shuffle bytes held resident (half for retained
	// runs, half for merge buffers). MemLimit > 0 with an empty SpillDir
	// spills to a temporary directory removed when the join returns.
	MemLimit int64
	// Kernel selects the reduce-side distance scan tier. Every tier
	// yields bit-identical results; the default is the fused float64
	// block kernels. HBRJ (R-tree traversal) and ZKNN (non-contiguous
	// z-order windows) ignore it — their inner loops are not block
	// scans — as does the centralized BruteForce verification baseline.
	Kernel Kernel
	// Workers, when positive, executes the MapReduce jobs on that many
	// separate worker processes coordinated over RPC instead of the
	// in-process engine. Results are byte-identical either way. The
	// program's main (or TestMain) must call RunWorkerIfSpawned first
	// so re-executions of the binary can serve as workers.
	Workers int
	// Faults is an optional deterministic fault-injection plan applied
	// to the worker processes — testing hook; nil injects nothing.
	// Only meaningful with Workers > 0.
	Faults *FaultPlan
	// TraceDir, when set with Workers > 0, makes the coordinator and
	// every worker write observability spans as JSONL files under this
	// directory (merge and render them with cmd/knntrace). Empty
	// disables tracing; join results are byte-identical either way.
	TraceDir string
	// Pprof, with Workers > 0, exposes net/http/pprof on the
	// coordinator's HTTP server for live profiling of long joins.
	Pprof bool
}

func (o Options) withDefaults(rSize int) (Options, error) {
	if o.K <= 0 {
		return o, fmt.Errorf("knnjoin: Options.K must be positive, got %d", o.K)
	}
	if o.Nodes <= 0 {
		o.Nodes = 4
	}
	if o.NumPivots <= 0 {
		o.NumPivots = int(2 * math.Sqrt(float64(rSize)))
	}
	if o.NumPivots < o.Nodes {
		o.NumPivots = o.Nodes
	}
	if o.NumPivots > rSize {
		o.NumPivots = rSize
	}
	return o, nil
}

// Plan is one ranked candidate configuration produced by the cost-based
// planner: a concrete algorithm plus tuning knobs, the model's
// prediction, and the score the ranking sorts by (lower is better).
type Plan = planner.Plan

// Prediction is the cost model's estimate attached to each Plan: jobs,
// shuffle volume, S replication, distance computations and spill
// pressure.
type Prediction = planner.Prediction

// AutoPlan ranks every candidate configuration for joining r and s with
// the given options: it samples both datasets, measures their shape
// (intrinsic dimensionality, cluster skew), evaluates the paper's cost
// model — Theorem-7 replication, Theorem-2 window selectivity, shuffle
// volume, spill pressure under MemLimit — for each algorithm across a
// grid of NumPivots, PivotStrategy and GroupStrategy, and returns the
// plans sorted by ascending predicted cost. Approximate algorithms
// (ZKNN, LSH) are ranked but flagged; Join with Algorithm Auto executes
// the first exact plan. Options.NumPivots, when positive, pins the
// pivot grid to that value; K is required and Seed makes planning
// deterministic.
func AutoPlan(r, s []Object, opts Options) ([]Plan, error) {
	if opts.K <= 0 {
		return nil, fmt.Errorf("knnjoin: Options.K must be positive, got %d", opts.K)
	}
	po := planner.Options{
		K: opts.K, Nodes: opts.Nodes, Metric: opts.Metric,
		MemLimit: opts.MemLimit, Seed: opts.Seed, NumPivots: opts.NumPivots,
		Kernel: opts.Kernel,
	}
	ds, err := planner.Measure(r, s, po)
	if err != nil {
		return nil, err
	}
	return planner.Plans(ds, po)
}

// resolveAuto runs the planner and pins the options to the winning
// plan's configuration, returning the plan record Join stores in Stats.
func resolveAuto(r, s []Object, opts Options) (Options, *stats.PlanInfo, error) {
	if len(r) == 0 || len(s) == 0 {
		// Nothing to sample; the centralized join handles the degenerate
		// input without cluster overhead.
		opts.Algorithm = BruteForce
		return opts, nil, nil
	}
	plans, err := AutoPlan(r, s, opts)
	if err != nil {
		return opts, nil, err
	}
	best := planner.Best(plans, false)
	if best == nil {
		return opts, nil, fmt.Errorf("knnjoin: planner produced no executable plan")
	}
	algo, err := ParseAlgorithm(best.Algo)
	if err != nil {
		return opts, nil, err
	}
	opts.Algorithm = algo
	if best.NumPivots > 0 {
		opts.NumPivots = best.NumPivots
		opts.PivotStrategy = best.PivotStrategy
		opts.GroupStrategy = best.GroupStrategy
	}
	return opts, best.PlanInfo(len(plans)), nil
}

// Join computes the kNN join of r and s — exact for every algorithm but
// ZKNN and LSH. Results are ordered by R object ID; each holds
// min(K, |S|) neighbors ascending by distance (the approximate
// algorithms may return fewer when their candidate structures miss).
// The returned Stats expose the run's cost measures. With Algorithm
// Auto the cost-based planner picks the algorithm and knobs first, and
// Stats.Plan records the choice with its predictions.
func Join(r, s []Object, opts Options) ([]Result, *Stats, error) {
	var planInfo *stats.PlanInfo
	if opts.Algorithm == Auto {
		if opts.K <= 0 {
			return nil, nil, fmt.Errorf("knnjoin: Options.K must be positive, got %d", opts.K)
		}
		var err error
		if opts, planInfo, err = resolveAuto(r, s, opts); err != nil {
			return nil, nil, err
		}
	}
	opts, err := opts.withDefaults(len(r))
	if err != nil {
		return nil, nil, err
	}
	if len(r) == 0 {
		return nil, &Stats{Algorithm: opts.Algorithm.String(), K: opts.K}, nil
	}

	if opts.Algorithm == BruteForce {
		if err := driver.CheckDims(r, s); err != nil {
			return nil, nil, fmt.Errorf("knnjoin: %w", err)
		}
		results, pairs := naive.BruteForce(r, s, opts.K, opts.Metric)
		rep := &Stats{Algorithm: "bruteforce", K: opts.K, RSize: len(r), SSize: len(s),
			Dims: r[0].Point.Dim(), Nodes: 1, Pairs: pairs, OutputPairs: countPairs(results)}
		rep.Plan = planInfo
		return results, rep, nil
	}

	env, err := driver.NewEnv(driver.Config{
		Nodes: opts.Nodes, ChunkRecords: opts.ChunkRecords,
		SpillDir: opts.SpillDir, MemLimit: opts.MemLimit,
		Workers: opts.Workers, Faults: opts.Faults, TraceDir: opts.TraceDir,
		Pprof: opts.Pprof,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("knnjoin: %w", err)
	}
	defer env.Close()
	if err := env.LoadRS(r, s); err != nil {
		return nil, nil, fmt.Errorf("knnjoin: %w", err)
	}
	cluster, rf, sf, of := env.Cluster, driver.RFile, driver.SFile, driver.OutFile

	var rep *Stats
	switch opts.Algorithm {
	case PGBJ:
		rep, err = pgbj.Run(cluster, rf, sf, of, pgbj.Options{
			K: opts.K, Metric: opts.Metric, NumPivots: opts.NumPivots,
			PivotStrategy: opts.PivotStrategy, GroupStrategy: opts.GroupStrategy,
			Seed: opts.Seed, Kernel: opts.Kernel,
		})
	case PBJ:
		rep, err = pgbj.RunPBJ(cluster, rf, sf, of, pgbj.Options{
			K: opts.K, Metric: opts.Metric, NumPivots: opts.NumPivots,
			PivotStrategy: opts.PivotStrategy, Seed: opts.Seed, Kernel: opts.Kernel,
		})
	case HBRJ:
		rep, err = hbrj.Run(cluster, rf, sf, of, hbrj.Options{K: opts.K, Metric: opts.Metric})
	case Broadcast:
		rep, err = naive.Broadcast(cluster, rf, sf, of, naive.BroadcastOptions{
			K: opts.K, Metric: opts.Metric, Kernel: opts.Kernel,
		})
	case ZKNN:
		if opts.Metric != L2 {
			return nil, nil, fmt.Errorf("knnjoin: ZKNN supports only the L2 metric (z-order locality is Euclidean)")
		}
		rep, err = zknn.Run(cluster, rf, sf, of, zknn.Options{K: opts.K, Seed: opts.Seed})
	case Theta:
		rep, err = theta.Run(cluster, rf, sf, of, theta.Options{
			K: opts.K, Metric: opts.Metric, Seed: opts.Seed, Kernel: opts.Kernel,
		})
	case LSH:
		if opts.Metric != L2 {
			return nil, nil, fmt.Errorf("knnjoin: LSH supports only the L2 metric (the p-stable hash family is Euclidean)")
		}
		rep, err = lsh.Run(cluster, rf, sf, of, lsh.Options{K: opts.K, Seed: opts.Seed, Kernel: opts.Kernel})
	default:
		return nil, nil, fmt.Errorf("knnjoin: unknown algorithm %v", opts.Algorithm)
	}
	if err != nil {
		return nil, nil, err
	}
	rep.Dims = r[0].Point.Dim()
	rep.Plan = planInfo
	results, err := env.Results()
	if err != nil {
		return nil, nil, err
	}
	return results, rep, nil
}

func countPairs(results []Result) int64 {
	var n int64
	for _, r := range results {
		n += int64(len(r.Neighbors))
	}
	return n
}

// SelfJoin computes the kNN self-join of objs (R = S), the workload used
// throughout the paper's evaluation. Note that with R = S each object's
// nearest neighbor is itself at distance zero; pass K+1 and drop the
// self-match if you need k proper neighbors (see ExcludeSelf).
func SelfJoin(objs []Object, opts Options) ([]Result, *Stats, error) {
	return Join(objs, objs, opts)
}

// RangeOptions configures RangeJoin.
type RangeOptions struct {
	// Radius is θ, the inclusive distance threshold. Required, ≥ 0.
	Radius float64
	// Metric is the distance measure; default L2.
	Metric Metric
	// Nodes is the simulated cluster size; default 4.
	Nodes int
	// NumPivots is |P|; default ≈ 2·√|R|, clamped to [Nodes, |R|].
	NumPivots int
	// PivotStrategy is the §4.1 selection strategy; default random.
	PivotStrategy PivotStrategy
	// Seed fixes pivot selection; runs are deterministic per seed.
	Seed int64
	// SpillDir selects the out-of-core backend (see Options.SpillDir).
	SpillDir string
	// MemLimit bounds resident shuffle bytes (see Options.MemLimit).
	MemLimit int64
	// Kernel selects the reduce-side distance scan tier (see
	// Options.Kernel); results are identical for every tier.
	Kernel Kernel
	// Workers runs the jobs on worker processes (see Options.Workers).
	Workers int
	// Faults is the worker fault-injection plan (see Options.Faults).
	Faults *FaultPlan
	// TraceDir enables span tracing (see Options.TraceDir).
	TraceDir string
}

// RangeJoin computes the θ-range join of r and s on the emulated
// cluster: every (r, s) pair with distance at most Radius, grouped per R
// object with neighbors ascending. It runs the paper's PGBJ pipeline
// with the fixed radius standing in for the derived kNN bound θ_i
// (Definition 3 made distributed). R objects with no in-range partner
// are omitted from the result.
func RangeJoin(r, s []Object, opts RangeOptions) ([]Result, *Stats, error) {
	if opts.Radius < 0 {
		return nil, nil, fmt.Errorf("knnjoin: RangeOptions.Radius must not be negative, got %g", opts.Radius)
	}
	if opts.Nodes <= 0 {
		opts.Nodes = 4
	}
	if opts.NumPivots <= 0 {
		opts.NumPivots = int(2 * math.Sqrt(float64(len(r))))
	}
	if opts.NumPivots < opts.Nodes {
		opts.NumPivots = opts.Nodes
	}
	if opts.NumPivots > len(r) {
		opts.NumPivots = len(r)
	}
	if len(r) == 0 || len(s) == 0 {
		return nil, &Stats{Algorithm: "range-join"}, nil
	}
	env, err := driver.NewEnv(driver.Config{
		Nodes: opts.Nodes, SpillDir: opts.SpillDir, MemLimit: opts.MemLimit,
		Workers: opts.Workers, Faults: opts.Faults, TraceDir: opts.TraceDir,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("knnjoin: %w", err)
	}
	defer env.Close()
	if err := env.LoadRS(r, s); err != nil {
		return nil, nil, fmt.Errorf("knnjoin: %w", err)
	}
	rep, err := rangejoin.Run(env.Cluster, driver.RFile, driver.SFile, driver.OutFile, rangejoin.Options{
		Radius: opts.Radius, Metric: opts.Metric, NumPivots: opts.NumPivots,
		PivotStrategy: opts.PivotStrategy, Seed: opts.Seed, Kernel: opts.Kernel,
	})
	if err != nil {
		return nil, nil, err
	}
	rep.Dims = r[0].Point.Dim()
	results, err := env.Results()
	if err != nil {
		return nil, nil, err
	}
	return results, rep, nil
}

// Pair is one result of a top-k closest-pairs join: an R object, an S
// object and their distance.
type Pair = topk.Pair

// PairOptions configures ClosestPairs.
type PairOptions struct {
	// K is the number of closest pairs to return. Required, positive.
	K int
	// Metric is the distance measure; default L2.
	Metric Metric
	// Nodes is the simulated cluster size; default 4.
	Nodes int
	// ExcludeSelf drops pairs whose two IDs are equal — the natural
	// setting for self-joins.
	ExcludeSelf bool
	// Unordered keeps only pairs with RID < SID, so a self-join reports
	// each unordered pair once.
	Unordered bool
	// Seed fixes the threshold sampling; runs are deterministic per seed.
	Seed int64
	// SpillDir selects the out-of-core backend (see Options.SpillDir).
	SpillDir string
	// MemLimit bounds resident shuffle bytes (see Options.MemLimit).
	MemLimit int64
	// Workers runs the jobs on worker processes (see Options.Workers).
	Workers int
	// Faults is the worker fault-injection plan (see Options.Faults).
	Faults *FaultPlan
	// TraceDir enables span tracing (see Options.TraceDir).
	TraceDir string
}

// ClosestPairs finds the k closest (r, s) pairs of R × S on the emulated
// cluster — the top-k similarity join of Kim & Shim (ICDE'12), which the
// paper's related work (§7, ref [11]) describes as the special case of
// the kNN join. The result is exact, ascending by distance; ties beyond
// position k are dropped. The returned Stats expose the run's cost
// measures.
func ClosestPairs(r, s []Object, opts PairOptions) ([]Pair, *Stats, error) {
	if opts.K <= 0 {
		return nil, nil, fmt.Errorf("knnjoin: PairOptions.K must be positive, got %d", opts.K)
	}
	if opts.Nodes <= 0 {
		opts.Nodes = 4
	}
	if len(r) == 0 || len(s) == 0 {
		return nil, &Stats{Algorithm: "top-k pairs", K: opts.K}, nil
	}
	env, err := driver.NewEnv(driver.Config{
		Nodes: opts.Nodes, SpillDir: opts.SpillDir, MemLimit: opts.MemLimit,
		Workers: opts.Workers, Faults: opts.Faults, TraceDir: opts.TraceDir,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("knnjoin: %w", err)
	}
	defer env.Close()
	if err := env.LoadRS(r, s); err != nil {
		return nil, nil, fmt.Errorf("knnjoin: %w", err)
	}
	pairs, rep, err := topk.Run(env.Cluster, driver.RFile, driver.SFile, driver.OutFile, topk.Options{
		K: opts.K, Metric: opts.Metric, ExcludeSelf: opts.ExcludeSelf,
		Unordered: opts.Unordered, Seed: opts.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	rep.Dims = r[0].Point.Dim()
	return pairs, rep, nil
}

// ExcludeSelf removes each result's self-match (the neighbor whose ID
// equals the R object's ID) in place and returns results. At most one
// neighbor per result is removed; results without a self-match are
// unchanged. Useful after SelfJoin with K one larger than needed.
func ExcludeSelf(results []Result) []Result {
	for i := range results {
		nbs := results[i].Neighbors
		for j, nb := range nbs {
			if nb.ID == results[i].RID {
				results[i].Neighbors = append(nbs[:j:j], nbs[j+1:]...)
				break
			}
		}
	}
	return results
}
