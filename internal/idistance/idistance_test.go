package idistance

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"knnjoin/internal/codec"
	"knnjoin/internal/dataset"
	"knnjoin/internal/naive"
	"knnjoin/internal/vector"
)

func bruteDists(objs []codec.Object, q vector.Point, k int, m vector.Metric) []float64 {
	ds := make([]float64, len(objs))
	for i, o := range objs {
		ds[i] = m.Dist(q, o.Point)
	}
	sort.Float64s(ds)
	if k > len(ds) {
		k = len(ds)
	}
	return ds[:k]
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Fatal("empty build accepted")
	}
	if _, _, err := Join(nil, nil, 0, Options{}); err == nil {
		t.Fatal("k=0 join accepted")
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	objs := dataset.Forest(3000, 31)
	ix, err := Build(objs, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 50; trial++ {
		q := objs[rng.Intn(len(objs))].Point.Clone()
		for d := range q {
			q[d] += rng.NormFloat64() * 20
		}
		k := rng.Intn(12) + 1
		got := ix.KNN(q, k)
		want := bruteDists(objs, q, k, vector.L2)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i].Dist-want[i]) > 1e-9 {
				t.Fatalf("trial %d pos %d: %v, want %v", trial, i, got[i].Dist, want[i])
			}
		}
	}
}

func TestKNNSkewedData(t *testing.T) {
	objs := dataset.OSM(4000, 33)
	ix, err := Build(objs, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 30; trial++ {
		q := vector.Point{rng.Float64()*360 - 180, rng.Float64()*170 - 85}
		got := ix.KNN(q, 6)
		want := bruteDists(objs, q, 6, vector.L2)
		for i := range want {
			if math.Abs(got[i].Dist-want[i]) > 1e-9 {
				t.Fatalf("trial %d pos %d: %v, want %v", trial, i, got[i].Dist, want[i])
			}
		}
	}
}

func TestKNNNoDuplicateNeighbors(t *testing.T) {
	objs := dataset.Uniform(500, 3, 100, 35)
	ix, err := Build(objs, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(36))
	for trial := 0; trial < 40; trial++ {
		q := dataset.Uniform(1, 3, 100, rng.Int63())[0].Point
		got := ix.KNN(q, 20)
		seen := make(map[int64]bool)
		for _, c := range got {
			if seen[c.ID] {
				t.Fatalf("duplicate neighbor %d (ring-growth double count)", c.ID)
			}
			seen[c.ID] = true
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	objs := dataset.Uniform(15, 2, 10, 37)
	ix, err := Build(objs, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.KNN(vector.Point{5, 5}, 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
	if got := ix.KNN(vector.Point{5, 5}, 50); len(got) != 15 {
		t.Fatalf("k>n returned %d", len(got))
	}
	// A query far outside the dataset still terminates and is exact.
	far := vector.Point{1e6, -1e6}
	got := ix.KNN(far, 3)
	want := bruteDists(objs, far, 3, vector.L2)
	for i := range want {
		if math.Abs(got[i].Dist-want[i]) > 1e-6 {
			t.Fatalf("far query pos %d: %v, want %v", i, got[i].Dist, want[i])
		}
	}
}

func TestRangeMatchesLinearScan(t *testing.T) {
	objs := dataset.Uniform(2000, 3, 100, 38)
	ix, err := Build(objs, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(39))
	for trial := 0; trial < 40; trial++ {
		q := dataset.Uniform(1, 3, 100, rng.Int63())[0].Point
		radius := rng.Float64() * 30
		got := ix.Range(q, radius)
		var want []int64
		for _, o := range objs {
			if vector.Dist(q, o.Point) <= radius {
				want = append(want, o.ID)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i] {
				t.Fatalf("trial %d pos %d: %d, want %d", trial, i, got[i].ID, want[i])
			}
		}
	}
}

func TestKNNPrunes(t *testing.T) {
	objs := dataset.OSM(20000, 40)
	ix, err := Build(objs, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ix.DistCount = 0
	rng := rand.New(rand.NewSource(41))
	const queries = 20
	for i := 0; i < queries; i++ {
		ix.KNN(objs[rng.Intn(len(objs))].Point, 10)
	}
	if perQuery := ix.DistCount / queries; perQuery > int64(len(objs))/2 {
		t.Fatalf("avg %d distances per query — iDistance pruning ineffective", perQuery)
	}
}

func TestJoinMatchesBruteForce(t *testing.T) {
	rObjs := dataset.Uniform(300, 4, 100, 42)
	sObjs := dataset.Uniform(400, 4, 100, 43)
	got, ix, err := Join(rObjs, sObjs, 5, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if ix.DistCount <= 0 {
		t.Fatal("join recorded no distance computations")
	}
	want, _ := naive.BruteForce(rObjs, sObjs, 5, vector.L2)
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].RID != want[i].RID {
			t.Fatalf("row %d RID %d, want %d", i, got[i].RID, want[i].RID)
		}
		for j := range want[i].Neighbors {
			if math.Abs(got[i].Neighbors[j].Dist-want[i].Neighbors[j].Dist) > 1e-9 {
				t.Fatalf("r %d nb %d: %v, want %v", got[i].RID, j,
					got[i].Neighbors[j].Dist, want[i].Neighbors[j].Dist)
			}
		}
	}
}

func TestJoinSelfJoinForest(t *testing.T) {
	objs := dataset.Forest(800, 44)
	got, _, err := Join(objs, objs, 4, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range got {
		if res.Neighbors[0].Dist != 0 {
			t.Fatalf("r %d nearest dist %v, want 0 (self)", res.RID, res.Neighbors[0].Dist)
		}
	}
}

// Property: exactness holds for arbitrary shapes and pivot counts.
func TestKNNCorrectQuick(t *testing.T) {
	f := func(seed int64, nRaw, kRaw, pRaw uint8) bool {
		n := int(nRaw)%120 + 1
		k := int(kRaw)%8 + 1
		objs := dataset.Uniform(n, 3, 100, seed)
		ix, err := Build(objs, Options{Seed: seed, NumPivots: int(pRaw)%n + 1})
		if err != nil {
			return false
		}
		q := dataset.Uniform(1, 3, 100, seed+1)[0].Point
		got := ix.KNN(q, k)
		want := bruteDists(objs, q, k, vector.L2)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if math.Abs(got[i].Dist-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	objs := dataset.Forest(20000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(objs, Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKNN(b *testing.B) {
	objs := dataset.Forest(20000, 1)
	ix, err := Build(objs, Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	q := objs[3].Point
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.KNN(q, 10)
	}
}
