// Package idistance implements the iDistance index of Jagadish, Ooi, Tan,
// Yu and Zhang (refs [9] and [20] of the paper) and the centralized kNN
// join built on it, IJoin-style (ref [19]).
//
// iDistance is the single-machine ancestor of the paper's partitioning:
// objects are assigned to their closest reference point (pivot), mapped
// onto the one-dimensional key i·c + |o, p_i|, and stored in a B+-tree.
// A kNN query runs an expanding ring search: for radius r, each partition
// whose annulus intersects the query sphere contributes the key range
// [i·c + max(L_i, |q,p_i| − r), i·c + min(U_i, |q,p_i| + r)] — exactly the
// window the paper generalizes as Theorem 2.
//
// The package exists both as a working index and as executable provenance
// for the paper's §2.3 bounds.
package idistance

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"knnjoin/internal/bptree"
	"knnjoin/internal/codec"
	"knnjoin/internal/nnheap"
	"knnjoin/internal/pivot"
	"knnjoin/internal/vector"
)

// Options configures index construction.
type Options struct {
	// Metric is the distance measure; zero value is L2.
	Metric vector.Metric
	// NumPivots is the number of reference points; zero picks ≈ 2·√n
	// (the iDistance paper suggests a few dozen to a few hundred).
	NumPivots int
	// PivotStrategy defaults to k-means, the iDistance paper's
	// recommendation (cluster centers as reference points).
	PivotStrategy pivot.Strategy
	// Seed fixes pivot selection.
	Seed int64
	// Order is the B+-tree node capacity; zero picks the default.
	Order int
}

func (o Options) withDefaults(n int) Options {
	if o.NumPivots <= 0 {
		o.NumPivots = 2 * intSqrt(n)
	}
	if o.NumPivots < 1 {
		o.NumPivots = 1
	}
	if o.NumPivots > n {
		o.NumPivots = n
	}
	return o
}

func intSqrt(n int) int {
	x := 0
	for (x+1)*(x+1) <= n {
		x++
	}
	return x
}

// Index is an iDistance index over a dataset.
type Index struct {
	metric vector.Metric
	pivots []vector.Point
	c      float64 // partition key stride, > max partition radius
	lo, hi []float64
	tree   *bptree.Tree
	objs   []codec.Object // tree values are indexes into objs

	// DistCount accrues distance computations across queries.
	DistCount int64
}

// Build constructs the index. Objects are copied; objs may be reused.
func Build(objs []codec.Object, opts Options) (*Index, error) {
	if len(objs) == 0 {
		return nil, fmt.Errorf("idistance: cannot build over an empty dataset")
	}
	opts = opts.withDefaults(len(objs))
	strategy := opts.PivotStrategy
	if strategy == pivot.Random && opts.NumPivots > 1 {
		strategy = pivot.KMeans
	}
	pivots, err := pivot.Select(strategy, objs, opts.NumPivots, pivot.Options{
		Metric: opts.Metric,
		Seed:   opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	ix := &Index{
		metric: opts.Metric,
		pivots: pivots,
		lo:     make([]float64, len(pivots)),
		hi:     make([]float64, len(pivots)),
		objs:   append([]codec.Object(nil), objs...),
	}
	for i := range ix.lo {
		ix.lo[i] = math.Inf(1)
		ix.hi[i] = math.Inf(-1)
	}
	// First pass: assignments and per-partition radii, to fix the stride.
	parts := make([]int, len(objs))
	dists := make([]float64, len(objs))
	for x, o := range objs {
		best, bestD := 0, opts.Metric.Dist(o.Point, pivots[0])
		for i := 1; i < len(pivots); i++ {
			if d := opts.Metric.Dist(o.Point, pivots[i]); d < bestD {
				best, bestD = i, d
			}
		}
		parts[x], dists[x] = best, bestD
		if bestD < ix.lo[best] {
			ix.lo[best] = bestD
		}
		if bestD > ix.hi[best] {
			ix.hi[best] = bestD
		}
	}
	maxRad := 0.0
	for i := range ix.hi {
		if !math.IsInf(ix.hi[i], -1) && ix.hi[i] > maxRad {
			maxRad = ix.hi[i]
		}
	}
	ix.c = maxRad*1.0625 + 1 // strictly larger than any radius
	ix.tree = bptree.New(opts.Order)
	for x := range objs {
		ix.tree.Insert(float64(parts[x])*ix.c+dists[x], int64(x))
	}
	return ix, nil
}

// Len returns the number of indexed objects.
func (ix *Index) Len() int { return len(ix.objs) }

// NumPartitions returns the reference-point count.
func (ix *Index) NumPartitions() int { return len(ix.pivots) }

// KNN returns the k nearest objects to q, ascending by distance (ties by
// ID), via the iDistance expanding ring search.
func (ix *Index) KNN(q vector.Point, k int) []nnheap.Candidate {
	if k <= 0 || len(ix.objs) == 0 {
		return nil
	}
	qDist := make([]float64, len(ix.pivots))
	for i, p := range ix.pivots {
		qDist[i] = ix.metric.Dist(q, p)
		ix.DistCount++
	}

	heap := nnheap.NewKHeap(k)
	// visited guards against re-verifying an object when ring growth
	// re-opens an already-scanned window.
	visited := make([]bool, len(ix.objs))

	r := ix.c / 16
	if r <= 0 {
		r = 1
	}
	maxR := 0.0
	for i := range ix.pivots {
		if !math.IsInf(ix.hi[i], -1) && qDist[i]+ix.hi[i] > maxR {
			maxR = qDist[i] + ix.hi[i]
		}
	}
	for {
		for i := range ix.pivots {
			if math.IsInf(ix.hi[i], -1) {
				continue // empty partition
			}
			// Theorem-2 window for radius r.
			lo := math.Max(ix.lo[i], qDist[i]-r)
			hi := math.Min(ix.hi[i], qDist[i]+r)
			if lo > hi {
				continue
			}
			ix.scan(q, i, lo, hi, heap, visited)
		}
		if heap.Full() && heap.Top().Dist <= r {
			break // the k-th candidate is inside the verified radius
		}
		if r > maxR {
			break // the whole dataset has been covered
		}
		r *= 2
	}
	return heap.Sorted()
}

// scan verifies all not-yet-visited objects of partition i whose pivot
// distance lies in [lo, hi].
func (ix *Index) scan(q vector.Point, i int, lo, hi float64, heap *nnheap.KHeap, visited []bool) {
	base := float64(i) * ix.c
	for _, it := range ix.tree.Range(base+lo, base+hi) {
		if visited[it.Value] {
			continue
		}
		visited[it.Value] = true
		o := ix.objs[it.Value]
		d := ix.metric.Dist(q, o.Point)
		ix.DistCount++
		heap.Push(nnheap.Candidate{ID: o.ID, Dist: d})
	}
}

// Range returns all objects within radius of q in ID order — Definition 3
// answered through the B+-tree windows.
func (ix *Index) Range(q vector.Point, radius float64) []codec.Object {
	var out []codec.Object
	for i := range ix.pivots {
		if math.IsInf(ix.hi[i], -1) {
			continue
		}
		qd := ix.metric.Dist(q, ix.pivots[i])
		ix.DistCount++
		lo := math.Max(ix.lo[i], qd-radius)
		hi := math.Min(ix.hi[i], qd+radius)
		if lo > hi {
			continue
		}
		base := float64(i) * ix.c
		for _, it := range ix.tree.Range(base+lo, base+hi) {
			o := ix.objs[it.Value]
			ix.DistCount++
			if ix.metric.Dist(q, o.Point) <= radius {
				out = append(out, o)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Join computes the exact centralized kNN join R ⋉ S in the manner of
// IJoin [19]: build one iDistance index over S and probe it for every r,
// parallelized over the available cores. Results are ordered by R object
// ID.
func Join(rObjs, sObjs []codec.Object, k int, opts Options) ([]codec.Result, *Index, error) {
	if k <= 0 {
		return nil, nil, fmt.Errorf("idistance: k must be positive, got %d", k)
	}
	ix, err := Build(sObjs, opts)
	if err != nil {
		return nil, nil, err
	}
	out := make([]codec.Result, len(rObjs))
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	var distMu sync.Mutex
	var totalDist int64
	chunk := (len(rObjs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(rObjs) {
			break
		}
		hi := lo + chunk
		if hi > len(rObjs) {
			hi = len(rObjs)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			// Shadow index shares storage but keeps a private DistCount so
			// workers don't race on the counter.
			shadow := *ix
			shadow.DistCount = 0
			for x := lo; x < hi; x++ {
				cands := shadow.KNN(rObjs[x].Point, k)
				nbs := make([]codec.Neighbor, len(cands))
				for j, c := range cands {
					nbs[j] = codec.Neighbor{ID: c.ID, Dist: c.Dist}
				}
				out[x] = codec.Result{RID: rObjs[x].ID, Neighbors: nbs}
			}
			distMu.Lock()
			totalDist += shadow.DistCount
			distMu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	ix.DistCount += totalDist
	sort.Slice(out, func(a, b int) bool { return out[a].RID < out[b].RID })
	return out, ix, nil
}
