package theta

import (
	"math"
	"testing"
	"testing/quick"

	"knnjoin/internal/codec"
	"knnjoin/internal/dataset"
	"knnjoin/internal/dfs"
	"knnjoin/internal/mapreduce"
	"knnjoin/internal/naive"
	"knnjoin/internal/stats"
	"knnjoin/internal/vector"
)

func runTheta(t testing.TB, rObjs, sObjs []codec.Object, opts Options, nodes int) ([]codec.Result, *stats.Report) {
	t.Helper()
	fs := dfs.New(256)
	cluster := mapreduce.NewCluster(fs, nodes)
	dataset.ToDFS(fs, "R", rObjs, codec.FromR)
	dataset.ToDFS(fs, "S", sObjs, codec.FromS)
	rep, err := Run(cluster, "R", "S", "out", opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := naive.ReadResults(fs, "out")
	if err != nil {
		t.Fatal(err)
	}
	return got, rep
}

func sameResults(t *testing.T, got, want []codec.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].RID != want[i].RID {
			t.Fatalf("row %d: RID %d, want %d", i, got[i].RID, want[i].RID)
		}
		if len(got[i].Neighbors) != len(want[i].Neighbors) {
			t.Fatalf("r %d: %d neighbors, want %d", want[i].RID, len(got[i].Neighbors), len(want[i].Neighbors))
		}
		for j := range want[i].Neighbors {
			if math.Abs(got[i].Neighbors[j].Dist-want[i].Neighbors[j].Dist) > 1e-9 {
				t.Fatalf("r %d neighbor %d: dist %v, want %v",
					want[i].RID, j, got[i].Neighbors[j].Dist, want[i].Neighbors[j].Dist)
			}
		}
	}
}

func TestExactVsBruteForce(t *testing.T) {
	objs := dataset.Forest(1000, 1)
	for _, k := range []int{1, 10} {
		for _, nodes := range []int{1, 4, 7, 16} {
			want, _ := naive.BruteForce(objs, objs, k, vector.L2)
			got, _ := runTheta(t, objs, objs, Options{K: k, Seed: 1}, nodes)
			sameResults(t, got, want)
		}
	}
}

func TestExactAsymmetricSizes(t *testing.T) {
	rObjs := dataset.Uniform(200, 3, 100, 2)
	sObjs := dataset.Uniform(2000, 3, 100, 3)
	want, _ := naive.BruteForce(rObjs, sObjs, 8, vector.L2)
	got, rep := runTheta(t, rObjs, sObjs, Options{K: 8, Seed: 4}, 8)
	sameResults(t, got, want)
	// With |S| = 10|R| the balanced tiling should use more columns than
	// rows so the big side is replicated less.
	rows, cols := Tiling(len(rObjs), len(sObjs), 8)
	if rows >= cols {
		t.Fatalf("tiling %dx%d does not favor the larger S", rows, cols)
	}
	if rep.ReplicasS != int64(rows)*int64(len(sObjs)) {
		t.Fatalf("replicas = %d, want %d", rep.ReplicasS, int64(rows)*int64(len(sObjs)))
	}
}

func TestExactOtherMetric(t *testing.T) {
	objs := dataset.Uniform(600, 4, 100, 5)
	want, _ := naive.BruteForce(objs, objs, 5, vector.L1)
	got, _ := runTheta(t, objs, objs, Options{K: 5, Metric: vector.L1, Seed: 6}, 6)
	sameResults(t, got, want)
}

func TestFixedTiling(t *testing.T) {
	objs := dataset.Uniform(400, 3, 100, 7)
	want, _ := naive.BruteForce(objs, objs, 4, vector.L2)
	got, _ := runTheta(t, objs, objs, Options{K: 4, Rows: 3, Cols: 2, Seed: 8}, 6)
	sameResults(t, got, want)
}

// Adversarial ID distributions are the framework's selling point: IDs
// that all collide under mod-based blocking must still produce balanced
// regions and exact results.
func TestSkewedIDsStayBalanced(t *testing.T) {
	objs := dataset.Uniform(1200, 3, 100, 9)
	for i := range objs {
		objs[i].ID *= 64 // every ID ≡ 0 mod 64: ID-hash blocking would collapse
	}
	want, _ := naive.BruteForce(objs, objs, 6, vector.L2)
	got, _ := runTheta(t, objs, objs, Options{K: 6, Seed: 10}, 16)
	sameResults(t, got, want)

	// Row/column occupancy: no cell of the assignment may be empty and
	// none may hold more than 3× its fair share.
	rows, cols := Tiling(len(objs), len(objs), 16)
	rowCount := make([]int, rows)
	colCount := make([]int, cols)
	for _, o := range objs {
		rowCount[assign(o.ID, 10, rows)]++
		colCount[assign(o.ID, 11, cols)]++
	}
	for _, counts := range [][]int{rowCount, colCount} {
		fair := len(objs) / len(counts)
		for i, c := range counts {
			if c == 0 || c > 3*fair {
				t.Fatalf("cell %d holds %d of ~%d objects — skewed", i, c, fair)
			}
		}
	}
}

func TestShuffleMatchesTiling(t *testing.T) {
	objs := dataset.Uniform(500, 3, 100, 12)
	nodes := 9
	_, rep := runTheta(t, objs, objs, Options{K: 5, Seed: 13}, nodes)
	rows, cols := Tiling(len(objs), len(objs), nodes)
	// Region-join shuffle records: |R|·cols + |S|·rows (merge job adds
	// its own records on top).
	wantAtLeast := int64(len(objs))*int64(cols) + int64(len(objs))*int64(rows)
	if rep.ShuffleRecords < wantAtLeast {
		t.Fatalf("shuffle records %d < region-join minimum %d", rep.ShuffleRecords, wantAtLeast)
	}
}

func TestTiling(t *testing.T) {
	cases := []struct {
		r, s, n    int
		rows, cols int
	}{
		{100, 100, 16, 4, 4},
		{100, 100, 1, 1, 1},
		{100, 1000, 16, 1, 16},
		{1000, 100, 16, 13, 1},
		{100, 100, 0, 1, 1},
		{0, 100, 8, 1, 1},
	}
	for _, c := range cases {
		rows, cols := Tiling(c.r, c.s, c.n)
		if rows != c.rows || cols != c.cols {
			t.Errorf("Tiling(%d, %d, %d) = %dx%d, want %dx%d", c.r, c.s, c.n, rows, cols, c.rows, c.cols)
		}
		if rows*cols > c.n && c.n >= 1 {
			t.Errorf("Tiling(%d, %d, %d) = %dx%d exceeds %d reducers", c.r, c.s, c.n, rows, cols, c.n)
		}
	}
}

// Property: assignments stay in range and are deterministic for any ID,
// including negative ones.
func TestAssignQuick(t *testing.T) {
	f := func(id, seed int64, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		a := assign(id, seed, n)
		return a >= 0 && a < n && a == assign(id, seed, n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestValidation(t *testing.T) {
	fs := dfs.New(0)
	cluster := mapreduce.NewCluster(fs, 2)
	if _, err := Run(cluster, "R", "S", "out", Options{K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Run(cluster, "R", "S", "out", Options{K: 3, Rows: -1}); err == nil {
		t.Error("negative tiling accepted")
	}
	if _, err := Run(cluster, "missing", "S", "out", Options{K: 3}); err == nil {
		t.Error("missing input accepted")
	}
}

func BenchmarkTheta(b *testing.B) {
	objs := dataset.Uniform(5000, 4, 100, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := dfs.New(0)
		cluster := mapreduce.NewCluster(fs, 8)
		dataset.ToDFS(fs, "R", objs, codec.FromR)
		dataset.ToDFS(fs, "S", objs, codec.FromS)
		if _, err := Run(cluster, "R", "S", "out", Options{K: 10, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
