// Package theta implements 1-Bucket-Theta (Okcan and Riedewald,
// SIGMOD'11), reference [14] of the paper: a single-job randomized
// framework that evaluates a join with an *arbitrary* condition by
// tiling the |R|×|S join matrix into a grid of reducer regions.
//
// Every R object is assigned a uniform random row of the matrix and
// shipped to all regions covering that row; every S object gets a random
// column and is shipped to all regions covering it. Each reducer
// therefore owns a rectangle of the cross product, and every (r, s) pair
// meets in exactly one region regardless of the join condition — here,
// the kNN predicate, evaluated per region with a bounded heap, followed
// by the shared merge job that keeps each r's global k best.
//
// Compared to H-BRJ's √N×√N ID-hash blocks the tiling is chosen for the
// actual |R|/|S| ratio and the assignment is random rather than
// ID-derived, so adversarial ID distributions cannot skew the regions —
// the framework's selling point. Like H-BRJ it computes the full cross
// product spread over N reducers; it is a baseline, not a contender
// against PGBJ's pruning.
package theta

import (
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"knnjoin/internal/codec"
	"knnjoin/internal/dfs"
	"knnjoin/internal/driver"
	"knnjoin/internal/hbrj"
	"knnjoin/internal/mapreduce"
	"knnjoin/internal/stats"
	"knnjoin/internal/vector"
)

// Options configures a 1-Bucket-Theta kNN join.
type Options struct {
	// K is the number of neighbors. Required, positive.
	K int
	// Metric is the distance measure; default L2.
	Metric vector.Metric
	// Rows and Cols fix the matrix tiling. Zero selects the balanced
	// tiling for the cluster size and the |R|/|S| ratio.
	Rows, Cols int
	// Seed fixes the random row/column assignment.
	Seed int64
	// Kernel selects the reduce-side distance scan tier (see
	// vector.Kernel); the zero value keeps the fused float64 kernels.
	Kernel vector.Kernel
}

func (o Options) withDefaults() (Options, error) {
	if o.K <= 0 {
		return o, fmt.Errorf("theta: k must be positive, got %d", o.K)
	}
	if o.Rows < 0 || o.Cols < 0 {
		return o, fmt.Errorf("theta: negative tiling %dx%d", o.Rows, o.Cols)
	}
	return o, nil
}

// Tiling returns the (rows, cols) grid for joining rSize×sSize on n
// reducers: region areas are balanced when rows/cols ≈ rSize/sSize, so
// rows = √(n·rSize/sSize) rounded into [1, n], cols = n/rows.
func Tiling(rSize, sSize, n int) (rows, cols int) {
	if n <= 1 || rSize <= 0 || sSize <= 0 {
		return 1, 1
	}
	rows = int(math.Round(math.Sqrt(float64(n) * float64(rSize) / float64(sSize)))) //lint:allow sqrtfree: √(n·|R|/|S|) sizes the block grid once per job, no distance involved
	if rows < 1 {
		rows = 1
	}
	if rows > n {
		rows = n
	}
	cols = n / rows
	if cols < 1 {
		cols = 1
	}
	return rows, cols
}

// assign maps an object ID to a deterministic pseudo-random cell index in
// [0, n) — uniform regardless of the ID distribution, unlike an ID-hash
// block scheme. The seed decorrelates the R and S assignments.
func assign(id int64, seed int64, n int) int {
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(id >> (8 * i))
		buf[8+i] = byte(seed >> (8 * i))
	}
	h.Write(buf[:])
	return int(h.Sum64() % uint64(n))
}

// Run executes the join. rFile and sFile must contain Tagged records;
// outFile receives one codec.Result per R object.
func Run(cluster *mapreduce.Cluster, rFile, sFile, outFile string, opts Options) (*stats.Report, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	report := &stats.Report{
		Algorithm: "1-Bucket-Theta",
		K:         opts.K,
		Nodes:     cluster.Nodes(),
		RSize:     cluster.FS().Size(rFile),
		SSize:     cluster.FS().Size(sFile),
	}
	rows, cols := opts.Rows, opts.Cols
	if rows == 0 || cols == 0 {
		rows, cols = Tiling(report.RSize, report.SSize, cluster.Nodes())
	}

	partialFile := outFile + ".partial"
	job := regionKind.New(regionSpec{
		RFile:  rFile,
		SFile:  sFile,
		Output: partialFile,
		Rows:   rows,
		Cols:   cols,
		Opts:   opts,
	})
	start := time.Now()
	js, err := cluster.Run(job)
	if err != nil {
		return nil, err
	}
	report.AddPhase("Region Join", time.Since(start))
	driver.AddJobStats(report, js)
	report.Pairs += js.Counters["pairs"]
	report.ShuffleBytes += js.ShuffleBytes
	report.ShuffleRecords += js.ShuffleRecords
	report.ReplicasS = js.Counters["replicas_s"]
	report.SimMakespan += js.SimMapMakespan + js.SimReduceMakespan
	report.JoinSkew = js.ReduceSkew()

	ms, err := hbrj.MergeResults(cluster, partialFile, outFile, opts.K)
	cluster.FS().Remove(partialFile)
	if err != nil {
		return nil, err
	}
	report.AddPhase("Result Merging", ms.Wall())
	driver.AddJobStats(report, ms)
	report.ShuffleBytes += ms.ShuffleBytes
	report.ShuffleRecords += ms.ShuffleRecords
	report.SimMakespan += ms.SimMapMakespan + ms.SimReduceMakespan
	report.OutputPairs = ms.Counters["result_pairs"]
	return report, nil
}

// regionSpec rebuilds the region-join job in a worker process.
type regionSpec struct {
	RFile, SFile string
	Output       string
	Rows, Cols   int
	Opts         Options
}

var regionKind = mapreduce.DefineKind("theta-region-join", buildRegionJob)

func buildRegionJob(s regionSpec) *mapreduce.Job {
	return &mapreduce.Job{
		Name:           "theta-region-join",
		Input:          []string{s.RFile, s.SFile},
		Output:         s.Output,
		NumReducers:    s.Rows * s.Cols,
		Partition:      mapreduce.Uint32Partition,
		GroupKeyPrefix: codec.RegionKeyGroupPrefix,
		Side: map[string]any{
			"opts": s.Opts,
			"rows": s.Rows,
			"cols": s.Cols,
		},
		Map:    regionMap,
		Reduce: regionReduce,
	}
}

// regionMap ships each r to every region covering its random row and
// each s to every region covering its random column.
func regionMap(ctx *mapreduce.TaskContext, rec dfs.Record, emit mapreduce.Emit) error {
	opts := ctx.Side("opts").(Options)
	rows := ctx.Side("rows").(int)
	cols := ctx.Side("cols").(int)
	t, err := codec.DecodeTagged(rec)
	if err != nil {
		return err
	}
	switch t.Src {
	case codec.FromR:
		row := assign(t.ID, opts.Seed, rows)
		for col := 0; col < cols; col++ {
			emit(codec.RegionKey(row*cols+col, t), rec)
		}
	case codec.FromS:
		col := assign(t.ID, opts.Seed+1, cols)
		ctx.Counter("replicas_s", int64(rows))
		for row := 0; row < rows; row++ {
			emit(codec.RegionKey(row*cols+col, t), rec)
		}
	}
	return nil
}

// regionReduce joins one matrix region: the local kNN of its R rows
// against its S columns, by nested loop with a bounded heap — the
// framework assumes nothing about the join condition, so no index. The
// loop runs on the query-batched block kernels via driver.JoinBlocksKNN:
// one decode per group, S swept in cache-sized panels across batches of
// R rows, squared distances under L2 until the emit-time sqrt.
func regionReduce(ctx *mapreduce.TaskContext, _ []byte, values *mapreduce.Values, emit mapreduce.Emit) error {
	opts := ctx.Side("opts").(Options)
	rBlk, sBlk, err := driver.CollectRSBlocksKernel(values, opts.Kernel)
	if err != nil {
		return err
	}
	driver.JoinBlocksKNN(rBlk, sBlk, opts.K, opts.Metric, emit)
	pairs := int64(rBlk.Len()) * int64(sBlk.Len())
	ctx.Counter("pairs", pairs)
	ctx.AddWork(pairs)
	return nil
}
