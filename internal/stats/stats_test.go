package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestReportSelectivity(t *testing.T) {
	r := &Report{RSize: 1000, SSize: 2000, Pairs: 4000}
	if got := r.Selectivity(); math.Abs(got-4000.0/2e6) > 1e-15 {
		t.Fatalf("Selectivity = %v", got)
	}
	empty := &Report{}
	if empty.Selectivity() != 0 {
		t.Fatal("empty report selectivity should be 0")
	}
}

func TestReportAvgReplication(t *testing.T) {
	r := &Report{SSize: 100, ReplicasS: 250}
	if got := r.AvgReplication(); got != 2.5 {
		t.Fatalf("AvgReplication = %v", got)
	}
	if (&Report{}).AvgReplication() != 0 {
		t.Fatal("empty report replication should be 0")
	}
}

func TestReportPhases(t *testing.T) {
	r := &Report{}
	r.AddPhase("a", time.Second)
	r.AddPhase("b", 2*time.Second)
	if r.TotalWall() != 3*time.Second {
		t.Fatalf("TotalWall = %v", r.TotalWall())
	}
	if r.PhaseWall("b") != 2*time.Second {
		t.Fatalf("PhaseWall(b) = %v", r.PhaseWall("b"))
	}
	if r.PhaseWall("missing") != 0 {
		t.Fatal("missing phase should be 0")
	}
}

func TestReportString(t *testing.T) {
	r := &Report{Algorithm: "pgbj", K: 10, RSize: 5, SSize: 5}
	s := r.String()
	if !strings.Contains(s, "pgbj") || !strings.Contains(s, "k=10") {
		t.Fatalf("String = %q", s)
	}
}

func TestFormatBytes(t *testing.T) {
	tests := map[int64]string{
		0:               "0B",
		512:             "512B",
		2048:            "2.00KiB",
		3 * 1024 * 1024: "3.00MiB",
		5 << 30:         "5.00GiB",
	}
	for in, want := range tests {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestDescribeInts(t *testing.T) {
	d := DescribeInts([]int{2, 4, 4, 4, 5, 5, 7, 9})
	if d.Min != 2 || d.Max != 9 || d.Avg != 5 {
		t.Fatalf("got %+v", d)
	}
	if math.Abs(d.Dev-2) > 1e-12 { // classic example: σ = 2
		t.Fatalf("Dev = %v, want 2", d.Dev)
	}
	if z := DescribeInts(nil); z != (Describe{}) {
		t.Fatalf("empty describe = %+v", z)
	}
	one := DescribeInts([]int{42})
	if one.Min != 42 || one.Max != 42 || one.Avg != 42 || one.Dev != 0 {
		t.Fatalf("single describe = %+v", one)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 10 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 5 {
		t.Fatalf("median = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
	// Input must not be mutated (sorted copy).
	unsorted := []float64{3, 1, 2}
	Quantile(unsorted, 0.5)
	if unsorted[0] != 3 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"name", "count", "time"}}
	tb.AddRow("alpha", 3, 1500*time.Millisecond)
	tb.AddRow("b", 12345, time.Second)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "count") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Fatalf("separator = %q", lines[1])
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[2], "1.5s") {
		t.Fatalf("row = %q", lines[2])
	}
	// Columns align: "count" column starts at the same offset in all rows.
	idx := strings.Index(lines[0], "count")
	if !strings.HasPrefix(lines[2][idx:], "3") && !strings.Contains(lines[2][idx:idx+8], "3") {
		t.Fatalf("misaligned column in %q", lines[2])
	}
}

func TestFormatFloat(t *testing.T) {
	tests := map[float64]string{
		3:        "3",
		1234:     "1234",
		123.456:  "123.5",
		0.5:      "0.500",
		0.000123: "0.000123",
	}
	for in, want := range tests {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
	if got := FormatFloat(math.NaN()); got != "NaN" {
		t.Errorf("NaN = %q", got)
	}
}

// Property: DescribeInts bounds are consistent: Min ≤ Avg ≤ Max and
// Dev ≥ 0 for any input.
func TestDescribeQuick(t *testing.T) {
	f := func(xs []int16) bool {
		if len(xs) == 0 {
			return true
		}
		in := make([]int, len(xs))
		for i, x := range xs {
			in[i] = int(x)
		}
		d := DescribeInts(in)
		return float64(d.Min) <= d.Avg+1e-9 && d.Avg <= float64(d.Max)+1e-9 && d.Dev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Quantile is monotone in q.
func TestQuantileMonotoneQuick(t *testing.T) {
	f := func(xs []float64, aRaw, bRaw uint8) bool {
		if len(xs) == 0 {
			return true
		}
		for i := range xs {
			if math.IsNaN(xs[i]) {
				xs[i] = 0
			}
		}
		a := float64(aRaw) / 255
		b := float64(bRaw) / 255
		if a > b {
			a, b = b, a
		}
		qa, qb := Quantile(xs, a), Quantile(xs, b)
		return qa <= qb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuantileAgainstSort(t *testing.T) {
	xs := []float64{9, 4, 6, 1, 3}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if got := Quantile(xs, 0.2); got != sorted[0] {
		t.Fatalf("q0.2 = %v, want %v", got, sorted[0])
	}
	if got := Quantile(xs, 0.8); got != sorted[3] {
		t.Fatalf("q0.8 = %v, want %v", got, sorted[3])
	}
}

func TestParseBytes(t *testing.T) {
	cases := map[string]int64{
		"0": 0, "4096": 4096, "64K": 64 << 10, "64KB": 64 << 10,
		"1M": 1 << 20, "1.5GiB": 3 << 29, "2g": 2 << 30, "1T": 1 << 40,
		" 16 MiB ": 16 << 20,
	}
	for in, want := range cases {
		got, err := ParseBytes(in)
		if err != nil {
			t.Fatalf("ParseBytes(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("ParseBytes(%q) = %d, want %d", in, got, want)
		}
	}
	for _, bad := range []string{
		"", "x", "-1", "12Q", "B", "16000000T", "9e30", "8388608T",
		"9223372036854775808",
		// Malformed suffixes that the old parser silently accepted by
		// trimming "iB"/"B" before validating the unit letter.
		"5ib", "1.5ib", "7b k", "7bk", "5kk", "5bib", "5 i b", "4096 junk",
		"5.5.5", "5..", ".",
	} {
		if _, err := ParseBytes(bad); err == nil {
			t.Fatalf("ParseBytes(%q) did not fail", bad)
		}
	}
}
