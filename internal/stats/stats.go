// Package stats defines the measurement vocabulary of the paper's
// evaluation (§6): per-phase running time, distance-computation
// selectivity (Equation 13), shuffling cost in bytes, and replication of
// S — plus small helpers for descriptive statistics and aligned text
// tables used by the experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Phase is one timed stage of a join pipeline. The paper's Figure 6
// decomposes PGBJ into pivot selection, data partitioning, index merging,
// partition grouping, and the kNN join itself.
type Phase struct {
	Name string
	Wall time.Duration
}

// JobStat holds one MapReduce job's measured actuals: the per-job
// breakdown of the aggregate shuffle and distance-computation counters a
// Report carries. Every algorithm records one entry per job it runs, in
// execution order, so callers of the public API can see exactly where
// shuffle bytes and distance computations were spent — and so the
// planner's per-job predictions are falsifiable against them.
type JobStat struct {
	// Name is the job's name ("pgbj-join", "knn-merge", ...).
	Name string
	// ShuffleRecords and ShuffleBytes are the records and key+value bytes
	// that crossed this job's shuffle (zero for map-only jobs).
	ShuffleRecords int64
	ShuffleBytes   int64
	// DistComps is the job's "pairs" counter: distance computations
	// performed by its map and reduce tasks, per the Equation-13 note.
	DistComps int64
	// SpilledBytes counts shuffle bytes written to run files on disk by
	// the out-of-core backend (zero on the in-memory backend).
	SpilledBytes int64
	// Wall is the job's map plus reduce wall time.
	Wall time.Duration
	// MapWall and ReduceWall split Wall into the job's phases: map (for
	// distributed jobs, first task dispatch through the last map
	// commit — the shuffle's run files are written inside the map
	// tasks) and reduce (merge through the last reduce commit). They
	// show where a job's time went, not just its total; map-only jobs
	// leave ReduceWall zero.
	MapWall    time.Duration
	ReduceWall time.Duration
	// WorkerTasks counts task attempts committed by separate worker
	// processes — zero on the in-process engine, and at least the
	// job's task count when it ran distributed (more after recovery
	// re-executions).
	WorkerTasks int
	// ReexecutedAttempts counts task attempts re-dispatched after a
	// worker's lease expired or its output was found damaged; zero on
	// the in-process engine and on fault-free distributed runs.
	ReexecutedAttempts int64
}

// PlanInfo records what the cost-based planner chose and predicted for a
// run whose configuration was planned rather than hand-picked (Algorithm
// Auto, or an explicit AutoPlan). Predicted values are the cost model's
// estimates; the Report's ShuffleBytes, Pairs and ReplicasS fields hold
// the measured actuals the predictions are checked against.
type PlanInfo struct {
	// Algorithm, NumPivots, PivotStrategy and GroupStrategy are the
	// chosen configuration (strategy fields are empty for algorithms
	// without pivots).
	Algorithm     string
	NumPivots     int
	PivotStrategy string
	GroupStrategy string
	// Score is the plan's predicted cost in the planner's nanosecond-like
	// cost units; lower is better. Candidates is how many plans the
	// chosen one was ranked against.
	Score      float64
	Candidates int
	// PredictedShuffleBytes, PredictedDistComps and PredictedReplicasS
	// are the cost model's estimates for the chosen plan.
	PredictedShuffleBytes int64
	PredictedDistComps    int64
	PredictedReplicasS    int64
	// Why is the planner's one-line human-readable justification.
	Why string
}

// String renders the chosen plan and its predictions on one line.
func (p *PlanInfo) String() string {
	cfg := p.Algorithm
	if p.NumPivots > 0 {
		cfg = fmt.Sprintf("%s pivots=%d/%s", p.Algorithm, p.NumPivots, p.PivotStrategy)
		if p.GroupStrategy != "" {
			cfg += "/" + p.GroupStrategy
		}
	}
	return fmt.Sprintf("plan %s score=%.3g predicted: shuffle=%s dist=%d repl=%d",
		cfg, p.Score, FormatBytes(p.PredictedShuffleBytes), p.PredictedDistComps, p.PredictedReplicasS)
}

// Report aggregates everything one join run measures.
type Report struct {
	Algorithm string
	K         int
	RSize     int
	SSize     int
	Dims      int
	Nodes     int

	// Pairs counts distance computations between objects, including
	// object–pivot distances, per the paper's note under Equation 13.
	Pairs int64
	// ShuffleBytes and ShuffleRecords total across all MapReduce jobs.
	ShuffleBytes   int64
	ShuffleRecords int64
	// ReplicasS counts S-object copies sent to reducers; ReplicasS/SSize
	// is the paper's "average replication of S" (Figure 7b).
	ReplicasS int64
	// SimMakespan is the deterministic simulated parallel cost: the sum
	// over phases of the per-phase max work assigned to one node.
	SimMakespan int64
	// JoinSkew is the max-over-mean reduce-task input of the main join
	// job: 1 is perfect balance, and the slowest reducer's load — the
	// job's critical path — grows with it. This quantifies the §6.1.1
	// "unbalanced workload" discussion.
	JoinSkew float64
	// OutputPairs is the number of (r, neighbor) result pairs.
	OutputPairs int64

	Phases []Phase

	// Jobs holds the per-MapReduce-job actuals in execution order; the
	// aggregate counters above sum over it (plus driver-side work such as
	// pivot selection, which belongs to no job).
	Jobs []JobStat

	// Plan is set when the run's configuration was chosen by the
	// cost-based planner (Algorithm Auto); nil for hand-picked runs.
	Plan *PlanInfo
}

// AddJob appends one job's measured actuals.
func (r *Report) AddJob(j JobStat) {
	r.Jobs = append(r.Jobs, j)
}

// AddPhase appends a timed phase.
func (r *Report) AddPhase(name string, wall time.Duration) {
	r.Phases = append(r.Phases, Phase{Name: name, Wall: wall})
}

// PhaseWall returns the recorded wall time of the named phase, or zero.
func (r *Report) PhaseWall(name string) time.Duration {
	for _, p := range r.Phases {
		if p.Name == name {
			return p.Wall
		}
	}
	return 0
}

// TotalWall sums all phase wall times.
func (r *Report) TotalWall() time.Duration {
	var t time.Duration
	for _, p := range r.Phases {
		t += p.Wall
	}
	return t
}

// Selectivity implements Equation 13: computed pairs over |R|·|S|, as a
// fraction (multiply by 1000 for the paper's "per thousand" axis).
func (r *Report) Selectivity() float64 {
	if r.RSize == 0 || r.SSize == 0 {
		return 0
	}
	return float64(r.Pairs) / (float64(r.RSize) * float64(r.SSize))
}

// AvgReplication returns the average number of copies of each S object
// shipped to reducers (Figure 7b's y-axis).
func (r *Report) AvgReplication() float64 {
	if r.SSize == 0 {
		return 0
	}
	return float64(r.ReplicasS) / float64(r.SSize)
}

// String renders a one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("%s k=%d |R|=%d |S|=%d dims=%d nodes=%d wall=%v sel=%.4f‰ shuffle=%s repl=%.2f",
		r.Algorithm, r.K, r.RSize, r.SSize, r.Dims, r.Nodes,
		r.TotalWall().Round(time.Millisecond), r.Selectivity()*1000,
		FormatBytes(r.ShuffleBytes), r.AvgReplication())
}

// byteUnits maps every accepted (upper-cased) unit suffix to its
// multiplier. All units are binary, so "KB" is an alias of "KiB" — the
// convention FormatBytes emits.
var byteUnits = map[string]int64{
	"": 1, "B": 1,
	"K": 1 << 10, "KB": 1 << 10, "KIB": 1 << 10,
	"M": 1 << 20, "MB": 1 << 20, "MIB": 1 << 20,
	"G": 1 << 30, "GB": 1 << 30, "GIB": 1 << 30,
	"T": 1 << 40, "TB": 1 << 40, "TIB": 1 << 40,
}

// ParseBytes parses a human byte count: a plain non-negative integer, or
// an integer (or decimal) with a binary unit K/M/G/T, case-insensitive,
// with an optional trailing "iB"/"B" ("64M", "1.5GiB", "4096"). Spaces
// around the number and unit are ignored ("16 MiB"). The inverse of
// FormatBytes for CLI flags like -mem-limit.
//
// The whole suffix must be a valid unit: malformed inputs whose trailing
// letters merely contain unit-like fragments ("5ib", "7b k") are
// rejected rather than silently read as a bare number.
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(s)
	// Split into the longest leading number and the unit suffix.
	cut := 0
	for cut < len(t) && (t[cut] == '.' || ('0' <= t[cut] && t[cut] <= '9')) {
		cut++
	}
	unit := strings.ToUpper(strings.TrimSpace(t[cut:]))
	mult, ok := byteUnits[unit]
	if !ok {
		return 0, fmt.Errorf("stats: bad byte count %q (unknown unit %q)", s, t[cut:])
	}
	v, err := strconv.ParseFloat(t[:cut], 64)
	if err != nil || v < 0 || math.IsNaN(v) || math.IsInf(v, 0) ||
		v*float64(mult) >= math.MaxInt64 {
		return 0, fmt.Errorf("stats: bad byte count %q", s)
	}
	return int64(v * float64(mult)), nil
}

// FormatBytes renders a byte count with a binary suffix.
func FormatBytes(b int64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%dB", b)
	}
	div, exp := int64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.2f%ciB", float64(b)/float64(div), "KMGTPE"[exp])
}

// Describe holds the descriptive statistics the paper's Tables 2 and 3
// report for partition and group sizes.
type Describe struct {
	Min, Max int
	Avg, Dev float64
}

// DescribeInts computes min/max/mean/standard deviation of xs. The
// standard deviation is the population deviation, matching the tables.
func DescribeInts(xs []int) Describe {
	if len(xs) == 0 {
		return Describe{}
	}
	d := Describe{Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		if x < d.Min {
			d.Min = x
		}
		if x > d.Max {
			d.Max = x
		}
		sum += float64(x)
	}
	d.Avg = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		diff := float64(x) - d.Avg
		sq += diff * diff
	}
	d.Dev = math.Sqrt(sq / float64(len(xs)))
	return d
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by nearest-rank; xs
// need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if q <= 0 {
		return cp[0]
	}
	if q >= 1 {
		return cp[len(cp)-1]
	}
	idx := int(math.Ceil(q*float64(len(cp)))) - 1
	if idx < 0 {
		idx = 0
	}
	return cp[idx]
}

// Table renders rows as an aligned text table with a header, the output
// format of the experiment harness (mirroring the paper's tables).
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells, stringifying each value.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = FormatFloat(v)
		case time.Duration:
			row[i] = v.Round(time.Millisecond).String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: integers without decimals, small
// magnitudes with enough precision to be meaningful.
func FormatFloat(v float64) string {
	switch {
	case math.IsNaN(v) || math.IsInf(v, 0):
		return fmt.Sprint(v)
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - len([]rune(c)); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
