package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"knnjoin/internal/dataset"
	"knnjoin/internal/obs"
)

// TestMetricsEndpointParses scrapes GET /metrics after real traffic and
// checks the payload is well-formed Prometheus text exposition whose
// counters reflect the requests served.
func TestMetricsEndpointParses(t *testing.T) {
	objs := dataset.Uniform(200, 3, 100, 5)
	s := New(buildIndex(t, objs), "", Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	q := dataset.Uniform(1, 3, 100, 50)[0].Point
	for i := 0; i < 3; i++ {
		if code, body := post(t, ts, "/knn", knnBody(q, 5)); code != http.StatusOK {
			t.Fatalf("/knn status %d: %s", code, body)
		}
	}

	code, body := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d: %s", code, body)
	}
	fams, err := obs.ParseText(string(body))
	if err != nil {
		t.Fatalf("/metrics does not parse: %v\n%s", err, body)
	}
	byName := make(map[string]obs.Family, len(fams))
	for _, f := range fams {
		byName[f.Name] = f
	}
	knn, ok := byName["knnserve_knn_requests_total"]
	if !ok {
		t.Fatal("knnserve_knn_requests_total missing from /metrics")
	}
	if knn.Samples[0].Value != 3 {
		t.Fatalf("knnserve_knn_requests_total = %g, want 3", knn.Samples[0].Value)
	}
	lat, ok := byName["knnserve_request_latency_ms"]
	if !ok {
		t.Fatal("knnserve_request_latency_ms missing from /metrics")
	}
	if lat.Type != "histogram" {
		t.Fatalf("knnserve_request_latency_ms type = %s, want histogram", lat.Type)
	}
}
