package serve

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"knnjoin/internal/dataset"
	"knnjoin/internal/obs"
)

// Regression: quantiles over a partially filled ring must sample only
// the recorded entries, never the zero-valued tail of the buffer. With
// 10 samples of 5ms in a 100-slot window, a tail-including bug would
// report p50 == 0.
func TestLatencyRingPartialWindow(t *testing.T) {
	l := latencyRing{buf: make([]float64, 100)}
	for i := 0; i < 10; i++ {
		l.add(5)
	}
	count, p50, p90, p99 := l.quantiles()
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if p50 != 5 || p90 != 5 || p99 != 5 {
		t.Fatalf("quantiles over partial window = %v/%v/%v, want 5/5/5 (zero tail leaked in)", p50, p90, p99)
	}
}

func TestLatencyRingWrapsWindow(t *testing.T) {
	l := latencyRing{buf: make([]float64, 4)}
	for _, ms := range []float64{100, 100, 100, 100, 1, 1, 1, 1} {
		l.add(ms)
	}
	count, p50, _, p99 := l.quantiles()
	if count != 8 {
		t.Fatalf("count = %d, want 8", count)
	}
	if p50 != 1 || p99 != 1 {
		t.Fatalf("quantiles after wrap = p50=%v p99=%v, want 1/1 (old window leaked in)", p50, p99)
	}
}

// The ring feeds the /metrics histogram without changing the /stats
// JSON shape: same adds must be visible in both, and /stats must keep
// its exact nearest-rank values.
func TestLatencyRingFeedsHistogram(t *testing.T) {
	reg := &obs.Registry{}
	h := reg.Histogram("test_latency_ms", "test", nil)
	l := latencyRing{buf: make([]float64, 100), hist: h}
	for i := 0; i < 10; i++ {
		l.add(5)
	}
	if h.Count() != 10 {
		t.Fatalf("histogram count = %d, want 10", h.Count())
	}
	if h.Sum() != 50 {
		t.Fatalf("histogram sum = %v, want 50", h.Sum())
	}
	_, p50, _, _ := l.quantiles()
	if p50 != 5 {
		t.Fatalf("ring p50 = %v, want exact 5", p50)
	}
}

// /stats keeps its JSON shape (latency_ms_p50 etc.) now that the ring
// also feeds the exposition histogram.
func TestStatsShapeUnchanged(t *testing.T) {
	ix := buildIndex(t, dataset.Uniform(200, 4, 10, 3))
	s := NewBackend(indexBackend{ix}, "", Config{CacheSize: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post(t, ts, "/knn", `{"point":[1,2,3,4],"k":3}`)

	code, body := get(t, ts, "/stats")
	if code != 200 {
		t.Fatalf("GET /stats = %d", code)
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("unmarshal /stats: %v", err)
	}
	lat, ok := m["latency_ms"].(map[string]any)
	if !ok {
		t.Fatalf("/stats lost latency_ms object: %s", body)
	}
	for _, key := range []string{"count", "p50", "p90", "p99"} {
		if _, ok := lat[key]; !ok {
			t.Fatalf("/stats latency_ms lost key %q: %s", key, body)
		}
	}
	if _, ok := m["queries"]; !ok {
		t.Fatalf("/stats lost queries: %s", body)
	}
}
