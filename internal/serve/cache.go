package serve

import (
	"container/list"
	"encoding/binary"
	"math"
	"sync"

	"knnjoin/internal/vector"
)

// lruCache is a fixed-capacity LRU over immutable response bodies. One
// cache belongs to one index snapshot, so a hot reload swaps the cache
// together with the index and stale results can never be served. Callers
// must not mutate returned values.
type lruCache struct {
	mu           sync.Mutex
	cap          int
	ll           *list.List // front = most recently used
	byKey        map[string]*list.Element
	hits, misses int64
}

type cacheEntry struct {
	key string
	val []byte
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), byKey: make(map[string]*list.Element)}
}

// get returns the cached value and promotes the entry. The hit/miss
// counters feed the /stats endpoint.
func (c *lruCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).val, true
	}
	c.misses++
	return nil, false
}

// put inserts (or refreshes) an entry, evicting the least recently used
// one beyond capacity.
func (c *lruCache) put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// stats returns the hit/miss counters and current entry count.
func (c *lruCache) stats() (hits, misses int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}

// cacheKey encodes (point, k) as the binary cache key: the exact float
// bits, so only bit-identical query points share an entry.
func cacheKey(q vector.Point, k int) string {
	b := make([]byte, 0, 8+8*len(q))
	b = binary.LittleEndian.AppendUint64(b, uint64(k))
	for _, v := range q {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return string(b)
}
