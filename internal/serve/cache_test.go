package serve

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"knnjoin/internal/vector"
)

func TestLRUEvictionAndPromotion(t *testing.T) {
	c := newLRU(2)
	c.put("a", []byte("1"))
	c.put("b", []byte("2"))
	if v, ok := c.get("a"); !ok || !bytes.Equal(v, []byte("1")) {
		t.Fatal("a missing")
	}
	// "b" is now least recently used; inserting "c" evicts it.
	c.put("c", []byte("3"))
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a was evicted despite promotion")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c missing")
	}
	hits, misses, entries := c.stats()
	if entries != 2 {
		t.Fatalf("entries = %d, want 2", entries)
	}
	if hits != 3 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 3/1", hits, misses)
	}
}

func TestLRURefreshExistingKey(t *testing.T) {
	c := newLRU(2)
	c.put("a", []byte("1"))
	c.put("a", []byte("2"))
	if v, _ := c.get("a"); !bytes.Equal(v, []byte("2")) {
		t.Fatalf("refresh kept old value %q", v)
	}
	if _, _, entries := c.stats(); entries != 1 {
		t.Fatal("refresh duplicated the entry")
	}
}

func TestLRUConcurrentAccess(t *testing.T) {
	c := newLRU(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%32)
				if v, ok := c.get(key); ok && len(v) == 0 {
					t.Error("empty cached value")
					return
				}
				c.put(key, []byte{byte(g)})
			}
		}(g)
	}
	wg.Wait()
}

func TestCacheKeyDistinguishesPointAndK(t *testing.T) {
	a := cacheKey(vector.Point{1, 2}, 5)
	if b := cacheKey(vector.Point{1, 2}, 6); a == b {
		t.Fatal("k not part of the key")
	}
	if b := cacheKey(vector.Point{1, 2.0000001}, 5); a == b {
		t.Fatal("point bits not part of the key")
	}
	if b := cacheKey(vector.Point{1, 2}, 5); a != b {
		t.Fatal("identical queries produced different keys")
	}
	// +0 and -0 have different bits — distinct keys is fine; NaN inputs
	// are rejected before the cache, so bit-equality is the right rule.
}
