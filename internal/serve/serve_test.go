package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"knnjoin/internal/codec"
	"knnjoin/internal/dataset"
	"knnjoin/internal/nnheap"
	"knnjoin/internal/vector"
	"knnjoin/internal/vindex"
)

func buildIndex(t *testing.T, objs []codec.Object) *vindex.Index {
	t.Helper()
	ix, err := vindex.Build(objs, vindex.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func post(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func knnBody(q vector.Point, k int) string {
	b, _ := json.Marshal(KNNRequest{Point: q, K: k})
	return string(b)
}

// wantKNNBody is the sequential ground truth: the bytes the server must
// answer for (q, k).
func wantKNNBody(t *testing.T, ix *vindex.Index, q vector.Point, k int) []byte {
	t.Helper()
	res, st := ix.KNNWithStats(q, k)
	b, err := MarshalKNN(res, st)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestKNNEndpointMatchesVindex(t *testing.T) {
	objs := dataset.Uniform(800, 3, 100, 5)
	ix := buildIndex(t, objs)
	s := New(ix, "", Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for trial := 0; trial < 10; trial++ {
		q := dataset.Uniform(1, 3, 100, int64(trial)+50)[0].Point
		code, body := post(t, ts, "/knn", knnBody(q, 7))
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
		if want := wantKNNBody(t, ix, q, 7); !bytes.Equal(body, want) {
			t.Fatalf("trial %d: response differs from sequential vindex query:\n got %s\nwant %s",
				trial, body, want)
		}
	}
}

func TestKNNBadInputs(t *testing.T) {
	objs := dataset.Uniform(100, 2, 10, 3)
	s := New(buildIndex(t, objs), "", Config{MaxBatch: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, path, body string
	}{
		{"malformed json", "/knn", `{"point":`},
		{"empty point", "/knn", `{"point":[],"k":3}`},
		{"dim mismatch", "/knn", `{"point":[1,2,3],"k":3}`},
		{"k zero", "/knn", `{"point":[1,2],"k":0}`},
		{"k negative", "/knn", `{"point":[1,2],"k":-4}`},
		{"non-numeric coordinate", "/knn", `{"point":[1,"x"],"k":3}`},
		{"range malformed json", "/range", `{"point":`},
		{"range empty point", "/range", `{"point":[],"radius":5}`},
		{"range negative radius", "/range", `{"point":[1,2],"radius":-1}`},
		{"range non-numeric radius", "/range", `{"point":[1,2],"radius":"x"}`},
		{"range dim mismatch", "/range", `{"point":[1],"radius":5}`},
		{"batch malformed json", "/knn/batch", `{"queries":`},
		{"empty batch", "/knn/batch", `{"queries":[]}`},
		{"batch member k zero", "/knn/batch", `{"queries":[{"point":[1,2],"k":0}]}`},
		{"batch member k negative", "/knn/batch", `{"queries":[{"point":[1,2],"k":-3}]}`},
		{"batch member empty point", "/knn/batch", `{"queries":[{"point":[],"k":1}]}`},
		{"oversized batch", "/knn/batch",
			`{"queries":[{"point":[1,2],"k":1},{"point":[1,2],"k":1},{"point":[1,2],"k":1},{"point":[1,2],"k":1},{"point":[1,2],"k":1}]}`},
		{"batch bad member", "/knn/batch", `{"queries":[{"point":[1,2],"k":1},{"point":[1,2,9],"k":1}]}`},
	}
	for _, c := range cases {
		code, body := post(t, ts, c.path, c.body)
		if code < 400 || code >= 500 {
			t.Errorf("%s: status %d (%s), want 4xx", c.name, code, body)
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body %q not an ErrorResponse", c.name, body)
		}
	}
	if st := s.Stats(); st.Queries.Errors != int64(len(cases)) {
		t.Fatalf("error counter = %d, want %d", st.Queries.Errors, len(cases))
	}
	// Wrong method is routed to 405 by the mux.
	if code, _ := get(t, ts, "/knn"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /knn status %d, want 405", code)
	}
}

// JSON cannot carry NaN/Inf literals, so the non-finite guard is
// exercised directly.
func TestValidatePointNonFinite(t *testing.T) {
	if err := validatePoint(vector.Point{1, math.NaN()}, 2); err == nil {
		t.Fatal("NaN coordinate accepted")
	}
	if err := validatePoint(vector.Point{math.Inf(1), 0}, 2); err == nil {
		t.Fatal("Inf coordinate accepted")
	}
	if err := validatePoint(vector.Point{1, 2}, 2); err != nil {
		t.Fatalf("finite point rejected: %v", err)
	}
}

func TestKNNKLargerThanN(t *testing.T) {
	objs := dataset.Uniform(15, 2, 10, 3)
	s := New(buildIndex(t, objs), "", Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := post(t, ts, "/knn", knnBody(vector.Point{5, 5}, 100))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp KNNResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Neighbors) != 15 {
		t.Fatalf("k>n returned %d neighbors, want all 15", len(resp.Neighbors))
	}

	// A hostile k must not force an O(k) allocation: it is clamped to
	// the index size and still answers the complete neighbor list.
	code, body = post(t, ts, "/knn", knnBody(vector.Point{5, 5}, 2_000_000_000))
	if code != http.StatusOK {
		t.Fatalf("huge-k status %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Neighbors) != 15 {
		t.Fatalf("huge k returned %d neighbors, want all 15", len(resp.Neighbors))
	}
}

func TestOversizedBodyRejected(t *testing.T) {
	objs := dataset.Uniform(50, 2, 10, 3)
	s := New(buildIndex(t, objs), "", Config{MaxBodyBytes: 256})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	big := `{"point":[1,2],"k":3,"pad":"` + strings.Repeat("x", 4096) + `"}`
	for _, path := range []string{"/knn", "/range", "/knn/batch", "/reload"} {
		code, body := post(t, ts, path, big)
		if code != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: oversized body status %d (%s), want 413", path, code, body)
		}
	}
	// In-budget requests still work.
	if code, _ := post(t, ts, "/knn", knnBody(vector.Point{1, 2}, 3)); code != http.StatusOK {
		t.Fatal("small request rejected under the byte budget")
	}
}

func TestCacheHitReturnsSameBytesAsMiss(t *testing.T) {
	objs := dataset.Uniform(500, 2, 100, 9)
	s := New(buildIndex(t, objs), "", Config{CacheSize: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	q := vector.Point{42.5, 17.25}
	_, miss := post(t, ts, "/knn", knnBody(q, 5))
	_, hit := post(t, ts, "/knn", knnBody(q, 5))
	if !bytes.Equal(miss, hit) {
		t.Fatalf("cache hit differs from miss:\nmiss %s\nhit  %s", miss, hit)
	}
	st := s.Stats()
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("cache counters hits=%d misses=%d, want 1/1", st.Cache.Hits, st.Cache.Misses)
	}
	// Different k must not share the entry.
	_, other := post(t, ts, "/knn", knnBody(q, 6))
	if bytes.Equal(other, hit) {
		t.Fatal("k=6 served the k=5 cache entry")
	}
}

func TestBatchMatchesIndividualQueries(t *testing.T) {
	objs := dataset.Uniform(600, 2, 100, 11)
	ix := buildIndex(t, objs)
	s := New(ix, "", Config{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var batch BatchRequest
	for i := 0; i < 20; i++ {
		q := dataset.Uniform(1, 2, 100, int64(i)+200)[0].Point
		batch.Queries = append(batch.Queries, KNNRequest{Point: q, K: i%5 + 1})
	}
	reqBody, _ := json.Marshal(batch)
	code, body := post(t, ts, "/knn/batch", string(reqBody))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(batch.Queries) {
		t.Fatalf("%d results, want %d", len(resp.Results), len(batch.Queries))
	}
	for i, q := range batch.Queries {
		if want := wantKNNBody(t, ix, q.Point, q.K); !bytes.Equal(resp.Results[i], want) {
			t.Fatalf("batch result %d differs from sequential vindex query", i)
		}
	}
}

// A multi-chunk batch on a filter-tier kernel must still answer every
// query byte-identically to a sequential vindex query on the same
// index, and /stats must report the configured tier.
func TestBatchKernelMatchesSequential(t *testing.T) {
	objs := dataset.Uniform(800, 8, 100, 17)
	ix := buildIndex(t, objs)
	s := New(ix, "", Config{Workers: 4, Kernel: vector.KernelQuantized, CacheSize: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if got := s.Stats().Index.Kernel; got != "quantized" {
		t.Fatalf("stats kernel %q, want quantized", got)
	}
	var batch BatchRequest
	for i := 0; i < 3*batchChunk+5; i++ { // forces several chunks
		q := dataset.Uniform(1, 8, 100, int64(i)+900)[0].Point
		batch.Queries = append(batch.Queries, KNNRequest{Point: q, K: i%7 + 1})
	}
	reqBody, _ := json.Marshal(batch)
	code, body := post(t, ts, "/knn/batch", string(reqBody))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	for i, q := range batch.Queries {
		if want := wantKNNBody(t, ix, q.Point, q.K); !bytes.Equal(resp.Results[i], want) {
			t.Fatalf("batch result %d differs from sequential vindex query", i)
		}
	}
}

func TestRangeEndpointMatchesVindex(t *testing.T) {
	objs := dataset.Uniform(400, 2, 50, 13)
	ix := buildIndex(t, objs)
	s := New(ix, "", Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	q := vector.Point{25, 25}
	code, body := post(t, ts, "/range", `{"point":[25,25],"radius":10}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp RangeResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	want, _ := ix.RangeWithStats(q, 10)
	if len(resp.Objects) != len(want) {
		t.Fatalf("%d objects, want %d", len(resp.Objects), len(want))
	}
	for i := range want {
		if resp.Objects[i].ID != want[i].ID {
			t.Fatalf("object %d: ID %d, want %d", i, resp.Objects[i].ID, want[i].ID)
		}
	}
}

func saveIndex(t *testing.T, ix *vindex.Index, path string) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReloadUnderConcurrentLoad swaps snapshots while queries hammer the
// server: every response must be exactly the sequential answer of one of
// the two index generations — never a mix, never an error.
func TestReloadUnderConcurrentLoad(t *testing.T) {
	dir := t.TempDir()
	objsA := dataset.Uniform(500, 2, 100, 21)
	objsB := make([]codec.Object, len(objsA))
	for i, o := range objsA {
		p := o.Point.Clone()
		p[0] += 1000 // far-shifted points, distinct IDs
		objsB[i] = codec.Object{ID: o.ID + 1_000_000, Point: p}
	}
	ixA, ixB := buildIndex(t, objsA), buildIndex(t, objsB)
	pathA, pathB := filepath.Join(dir, "a.idx"), filepath.Join(dir, "b.idx")
	saveIndex(t, ixA, pathA)
	saveIndex(t, ixB, pathB)

	// Expected bytes per generation. The loaded index must answer
	// identically to the in-memory one it was saved from.
	const k = 5
	queries := make([]vector.Point, 8)
	wantA := make([][]byte, len(queries))
	wantB := make([][]byte, len(queries))
	for i := range queries {
		queries[i] = dataset.Uniform(1, 2, 100, int64(i)+400)[0].Point
		wantA[i] = wantKNNBody(t, ixA, queries[i], k)
		wantB[i] = wantKNNBody(t, ixB, queries[i], k)
	}

	s := New(ixA, pathA, Config{Workers: 4, CacheSize: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				qi := (g + i) % len(queries)
				resp, err := http.Post(ts.URL+"/knn", "application/json",
					strings.NewReader(knnBody(queries[qi], k)))
				if err != nil {
					errCh <- err.Error()
					return
				}
				var buf bytes.Buffer
				buf.ReadFrom(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Sprintf("status %d during reload: %s", resp.StatusCode, buf.Bytes())
					return
				}
				body := buf.Bytes()
				if !bytes.Equal(body, wantA[qi]) && !bytes.Equal(body, wantB[qi]) {
					errCh <- fmt.Sprintf("query %d: response matches neither generation: %s", qi, body)
					return
				}
			}
		}(g)
	}
	// Alternate generations while the load runs.
	for swap := 0; swap < 10; swap++ {
		path := pathB
		if swap%2 == 1 {
			path = pathA
		}
		code, body := post(t, ts, "/reload", fmt.Sprintf(`{"path":%q}`, path))
		if code != http.StatusOK {
			t.Fatalf("reload %d: status %d: %s", swap, code, body)
		}
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for msg := range errCh {
		t.Fatal(msg)
	}
	if st := s.Stats(); st.Reloads != 10 {
		t.Fatalf("reloads = %d, want 10", st.Reloads)
	}
}

func TestReloadErrors(t *testing.T) {
	objs := dataset.Uniform(50, 2, 10, 3)
	s := New(buildIndex(t, objs), "", Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Built in-process, no path given: nothing to re-read.
	if code, _ := post(t, ts, "/reload", `{}`); code != http.StatusBadRequest {
		t.Fatalf("pathless reload status %d, want 400", code)
	}
	// Nonexistent file.
	if code, _ := post(t, ts, "/reload", `{"path":"/nonexistent.idx"}`); code != http.StatusUnprocessableEntity {
		t.Fatalf("bad-path reload status %d, want 422", code)
	}
	// Garbage file.
	bad := filepath.Join(t.TempDir(), "garbage.idx")
	os.WriteFile(bad, []byte("not an index"), 0o644)
	if code, _ := post(t, ts, "/reload", fmt.Sprintf(`{"path":%q}`, bad)); code != http.StatusUnprocessableEntity {
		t.Fatalf("garbage reload status %d, want 422", code)
	}
	// Failed reloads must leave the old snapshot serving.
	if code, _ := post(t, ts, "/knn", knnBody(vector.Point{5, 5}, 3)); code != http.StatusOK {
		t.Fatalf("query after failed reloads: status %d", code)
	}
}

func TestStatsAndHealthz(t *testing.T) {
	objs := dataset.Uniform(300, 2, 100, 31)
	s := New(buildIndex(t, objs), "", Config{CacheSize: 16})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	q := vector.Point{1, 2}
	post(t, ts, "/knn", knnBody(q, 3))
	post(t, ts, "/knn", knnBody(q, 3)) // cache hit
	post(t, ts, "/range", `{"point":[1,2],"radius":5}`)
	post(t, ts, "/knn/batch", `{"queries":[{"point":[3,4],"k":2},{"point":[5,6],"k":2}]}`)

	code, body := get(t, ts, "/stats")
	if code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Queries.KNN != 2 || st.Queries.Range != 1 || st.Queries.Batch != 1 || st.Queries.BatchQueries != 2 {
		t.Fatalf("query counts %+v", st.Queries)
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 3 { // q(k=3) hit; miss for q, and the two batch points
		t.Fatalf("cache %+v, want 1 hit / 3 misses", st.Cache)
	}
	if st.LatencyMs.Count != 5 { // 2 knn + 1 range + 2 batch sub-queries
		t.Fatalf("latency count %d, want 5", st.LatencyMs.Count)
	}
	if st.DistComputations <= 0 {
		t.Fatal("no distance computations recorded")
	}
	if st.Index.Objects != 300 || st.Index.Dim != 2 {
		t.Fatalf("index info %+v", st.Index)
	}

	code, body = get(t, ts, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	var h HealthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Objects != 300 {
		t.Fatalf("healthz %+v", h)
	}
}

// TestConcurrentMixedLoad drives every endpoint from many goroutines at
// once (run under -race in CI): correctness of each response plus no
// data races inside the server.
func TestConcurrentMixedLoad(t *testing.T) {
	objs := dataset.Uniform(700, 2, 100, 41)
	ix := buildIndex(t, objs)
	s := New(ix, "", Config{Workers: 4, CacheSize: 32})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	queries := make([]vector.Point, 6)
	want := make([][]byte, len(queries))
	for i := range queries {
		queries[i] = dataset.Uniform(1, 2, 100, int64(i)+700)[0].Point
		want[i] = wantKNNBody(t, ix, queries[i], 4)
	}

	var wg sync.WaitGroup
	errCh := make(chan string, 32)
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				qi := (g*7 + i) % len(queries)
				switch i % 3 {
				case 0, 1:
					resp, err := http.Post(ts.URL+"/knn", "application/json",
						strings.NewReader(knnBody(queries[qi], 4)))
					if err != nil {
						errCh <- err.Error()
						return
					}
					var buf bytes.Buffer
					buf.ReadFrom(resp.Body)
					resp.Body.Close()
					if !bytes.Equal(buf.Bytes(), want[qi]) {
						errCh <- "concurrent /knn response diverged"
						return
					}
				case 2:
					resp, err := http.Get(ts.URL + "/stats")
					if err != nil {
						errCh <- err.Error()
						return
					}
					resp.Body.Close()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for msg := range errCh {
		t.Fatal(msg)
	}
}

// failingBackend delegates metadata to a real backend but fails every
// query — the sharded router's failure mode (all replicas of a shard
// down) — pinning the handlers' 502 mapping for backend errors.
type failingBackend struct{ Backend }

var errBoom = errors.New("all replicas down")

func (f failingBackend) KNNWithStats(_ context.Context, q vector.Point, k int) ([]nnheap.Candidate, vindex.Stats, error) {
	return nil, vindex.Stats{}, errBoom
}

func (f failingBackend) KNNBatchWithStats(_ context.Context, qs []vector.Point, ks []int) ([][]nnheap.Candidate, []vindex.Stats, error) {
	return nil, nil, errBoom
}

func (f failingBackend) RangeWithStats(_ context.Context, q vector.Point, radius float64) ([]codec.Object, vindex.Stats, error) {
	return nil, vindex.Stats{}, errBoom
}

func TestBackendErrorsAnswer502(t *testing.T) {
	ix := buildIndex(t, dataset.Uniform(100, 2, 10, 3))
	s := NewBackend(failingBackend{indexBackend{ix}}, "", Config{CacheSize: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, c := range []struct{ name, path, body string }{
		{"knn", "/knn", `{"point":[1,2],"k":3}`},
		{"range", "/range", `{"point":[1,2],"radius":5}`},
		{"batch", "/knn/batch", `{"queries":[{"point":[1,2],"k":1}]}`},
	} {
		code, body := post(t, ts, c.path, c.body)
		if code != http.StatusBadGateway {
			t.Errorf("%s: status %d (%s), want 502", c.name, code, body)
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || !strings.Contains(er.Error, "all replicas down") {
			t.Errorf("%s: error body %q does not surface the backend failure", c.name, body)
		}
	}
}
