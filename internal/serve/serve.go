// Package serve is the online query tier over the pivot index: an
// HTTP/JSON server that answers kNN and range queries from a shared,
// immutable vindex.Index snapshot. It exists because vindex queries are
// side-effect free — many goroutines can read one Index — which this
// package turns into a serving surface in the spirit of the
// related work on throughput-oriented kNN query processing (Nodarakis et
// al.'s AkNN classification service; Gowanlock's batched hybrid join):
// batches of independent queries amortized over one shared partitioning.
//
// The server owns four mechanisms:
//
//   - a bounded worker pool: at most Config.Workers queries execute at
//     once, whatever the HTTP concurrency;
//   - an atomic snapshot: the index (plus its result cache) lives behind
//     one atomic pointer, so /reload swaps datasets without locking —
//     in-flight queries finish on the snapshot they started with;
//   - an LRU result cache keyed by (point, k) holding the exact response
//     bytes, so a hit is byte-identical to the miss that filled it;
//   - counters and a latency ring feeding /stats (query counts, p50/p90/
//     p99, cache hit rate, distance-computation totals).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"knnjoin/internal/codec"
	"knnjoin/internal/nnheap"
	"knnjoin/internal/obs"
	"knnjoin/internal/vector"
	"knnjoin/internal/vindex"
)

// Backend is the query engine a Server fronts. The single-node backend
// is a *vindex.Index (wrapped to add the error results an in-process
// index can never produce); the sharded backend is internal/shard's
// router. Every handler, validation message, cache and marshaling path
// in this package is shared by all backends, which is what makes
// "sharded responses are byte-identical to single-node responses" a
// structural property: only the three query calls differ.
//
// The query methods must be safe for concurrent use and must match
// vindex semantics exactly: KNN results ascending by distance (ties by
// ID), range results in ascending ID order, Stats accounted per query.
// The context carries the request's trace span (obs.SpanFromContext)
// so remote backends parent their RPC spans under it; it never affects
// any result byte, and in-process backends may ignore it.
type Backend interface {
	// KNNWithStats answers one kNN query.
	KNNWithStats(ctx context.Context, q vector.Point, k int) ([]nnheap.Candidate, vindex.Stats, error)
	// KNNBatchWithStats answers len(qs) queries; results[i] and stats[i]
	// must equal a KNNWithStats(qs[i], ks[i]) call's.
	KNNBatchWithStats(ctx context.Context, qs []vector.Point, ks []int) ([][]nnheap.Candidate, []vindex.Stats, error)
	// RangeWithStats answers one range query.
	RangeWithStats(ctx context.Context, q vector.Point, radius float64) ([]codec.Object, vindex.Stats, error)
	// Len, Dim and NumPartitions describe the indexed dataset.
	Len() int
	// Dim is the dimensionality of the indexed points.
	Dim() int
	// NumPartitions is the pivot count.
	NumPartitions() int
	// Kernel reports the active distance scan tier.
	Kernel() vector.Kernel
}

// kernelSetter is implemented by backends whose scan tier the server
// can re-resolve when a snapshot is taken (the single-node index).
// Backends without it — the sharded router, whose shard processes fix
// their kernel at spawn — keep their own.
type kernelSetter interface {
	SetKernel(vector.Kernel)
}

// indexBackend adapts *vindex.Index to Backend: an in-process index
// cannot fail a query, so the adapter adds nil errors to the embedded
// index's own methods.
type indexBackend struct{ *vindex.Index }

func (b indexBackend) KNNWithStats(_ context.Context, q vector.Point, k int) ([]nnheap.Candidate, vindex.Stats, error) {
	res, st := b.Index.KNNWithStats(q, k)
	return res, st, nil
}

func (b indexBackend) KNNBatchWithStats(_ context.Context, qs []vector.Point, ks []int) ([][]nnheap.Candidate, []vindex.Stats, error) {
	res, sts := b.Index.KNNBatchWithStats(qs, ks)
	return res, sts, nil
}

func (b indexBackend) RangeWithStats(_ context.Context, q vector.Point, radius float64) ([]codec.Object, vindex.Stats, error) {
	res, st := b.Index.RangeWithStats(q, radius)
	return res, st, nil
}

// errBackend marks a query failure originating in the backend (an
// unreachable shard, say) rather than in response marshaling, so the
// handlers can answer 502 instead of 500.
var errBackend = errors.New("backend query failed")

// Config sizes the server's bounded resources. The zero value picks
// sensible defaults for every field.
type Config struct {
	// Workers bounds concurrently executing queries (default: GOMAXPROCS).
	Workers int
	// CacheSize is the LRU capacity in entries (default 1024; negative
	// disables caching).
	CacheSize int
	// MaxBatch bounds the queries accepted in one /knn/batch request
	// (default 1024).
	MaxBatch int
	// MaxBodyBytes bounds the accepted request body size, enforced
	// while reading — an oversized request fails at the byte budget,
	// not after being decoded into memory (default 16 MiB).
	MaxBodyBytes int64
	// LatencyWindow is the number of recent per-query latencies retained
	// for the /stats quantiles (default 4096).
	LatencyWindow int
	// Kernel selects the index's distance scan tier (see vector.Kernel);
	// it is applied to every snapshot the server takes ownership of —
	// the initial index and each /reload. The zero value keeps the fused
	// float64 kernels. Backends that fix their own tier (the sharded
	// router) ignore it.
	Kernel vector.Kernel
	// Loader produces the backend /reload swaps in for a given index
	// file path. Nil means the single-node default: vindex.LoadFile. The
	// sharded router installs a loader that reloads every shard before
	// swapping the routing table.
	Loader func(path string) (Backend, error)
	// Tracer, when non-nil, records one span per request (annotated
	// with cache hit/miss and the query's work accounting) and carries
	// its context to the backend. Nil disables tracing; outputs are
	// byte-identical either way.
	Tracer *obs.Tracer
	// Metrics is the registry behind GET /metrics. Nil makes the server
	// create its own; pass one to share a registry across subsystems in
	// one process (a shard proc registers shard families on it too).
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.LatencyWindow <= 0 {
		c.LatencyWindow = 4096
	}
	return c
}

// snapshot is one immutable serving generation: the backend and the
// cache of its results. Reload replaces the whole snapshot atomically,
// so a query never mixes an old backend with a new cache or vice versa.
type snapshot struct {
	be     Backend
	cache  *lruCache // nil when caching is disabled
	source string    // index file the snapshot came from ("" if built in-process)
}

// Server answers kNN queries over an atomically swappable index
// snapshot. Construct with New; all methods are safe for concurrent use.
type Server struct {
	cfg  Config
	snap atomic.Pointer[snapshot]
	sem  chan struct{} // worker pool: one token per executing query

	start    time.Time
	reloadMu sync.Mutex // serializes /reload (queries never take it)

	knnCount     atomic.Int64
	rangeCount   atomic.Int64
	batchCount   atomic.Int64
	batchQueries atomic.Int64
	errCount     atomic.Int64
	distComps    atomic.Int64
	reloads      atomic.Int64

	lat latencyRing

	// Observability mirrors of the counters above for /metrics, plus
	// the request tracer. The tracer may be nil (disabled); the metric
	// handles never are — they come from the registry, which always
	// exists.
	tracer      *obs.Tracer
	metrics     *obs.Registry
	mKNN        *obs.Counter
	mRange      *obs.Counter
	mBatch      *obs.Counter
	mBatchQs    *obs.Counter
	mErrors     *obs.Counter
	mDistComps  *obs.Counter
	mReloads    *obs.Counter
	mCacheHits  *obs.Counter
	mCacheMiss  *obs.Counter
	mLatencyHst *obs.Histogram
}

// New returns a server over ix. source records where the index came from
// (the index file path, or "" when built in-process); /reload without an
// explicit path re-reads it.
func New(ix *vindex.Index, source string, cfg Config) *Server {
	return NewBackend(indexBackend{ix}, source, cfg)
}

// NewBackend is New for a non-index backend (the sharded router).
func NewBackend(be Backend, source string, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		sem:    make(chan struct{}, cfg.Workers),
		start:  time.Now(),
		tracer: cfg.Tracer,
	}
	s.metrics = cfg.Metrics
	if s.metrics == nil {
		s.metrics = obs.NewRegistry()
	}
	s.mKNN = s.metrics.Counter("knnserve_knn_requests_total", "Answered /knn requests.")
	s.mRange = s.metrics.Counter("knnserve_range_requests_total", "Answered /range requests.")
	s.mBatch = s.metrics.Counter("knnserve_batch_requests_total", "Answered /knn/batch requests.")
	s.mBatchQs = s.metrics.Counter("knnserve_batch_queries_total", "Queries answered inside batches.")
	s.mErrors = s.metrics.Counter("knnserve_errors_total", "Non-2xx answers across all endpoints.")
	s.mDistComps = s.metrics.Counter("knnserve_dist_computations_total", "Distance evaluations by cache-missing queries.")
	s.mReloads = s.metrics.Counter("knnserve_reloads_total", "Index snapshot swaps.")
	s.mCacheHits = s.metrics.Counter("knnserve_cache_hits_total", "Result-cache hits.")
	s.mCacheMiss = s.metrics.Counter("knnserve_cache_misses_total", "Result-cache misses.")
	s.mLatencyHst = s.metrics.Histogram("knnserve_request_latency_ms", "Per-query latency in milliseconds.", nil)
	// The /stats quantile ring and the /metrics histogram share one
	// observation point: latencyRing.add feeds both (satellite of the
	// observability PR — the ring keeps its exact nearest-rank
	// quantiles, the histogram serves scrapes).
	s.lat = latencyRing{buf: make([]float64, cfg.LatencyWindow), hist: s.mLatencyHst}
	s.snap.Store(newSnapshot(be, source, cfg))
	return s
}

// Metrics returns the server's metric registry — the one /metrics
// serves — so co-resident subsystems (a shard process's scan handlers)
// can register their own families on it.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

func newSnapshot(be Backend, source string, cfg Config) *snapshot {
	// The server takes ownership of the backend: applying the configured
	// kernel tier mutates the index, which is safe here because the
	// snapshot is not yet published and queries only ever see stored
	// snapshots. Backends that fix their own tier skip this.
	if ks, ok := be.(kernelSetter); ok && be.Kernel() != cfg.Kernel {
		ks.SetKernel(cfg.Kernel)
	}
	var cache *lruCache
	if cfg.CacheSize > 0 {
		cache = newLRU(cfg.CacheSize)
	}
	return &snapshot{be: be, cache: cache, source: source}
}

// Swap atomically replaces the serving snapshot with a new index (and a
// fresh, empty result cache). In-flight queries finish on the snapshot
// they loaded; new queries see the new index.
func (s *Server) Swap(ix *vindex.Index, source string) {
	s.SwapBackend(indexBackend{ix}, source)
}

// SwapBackend is Swap for a non-index backend.
func (s *Server) SwapBackend(be Backend, source string) {
	s.snap.Store(newSnapshot(be, source, s.cfg))
	s.reloads.Add(1)
	s.mReloads.Inc()
}

// Index returns the current snapshot's index when the backend is a
// single-node index, nil otherwise (for tests and tools; the returned
// index is immutable).
func (s *Server) Index() *vindex.Index {
	if ib, ok := s.snap.Load().be.(indexBackend); ok {
		return ib.Index
	}
	return nil
}

// Backend returns the current snapshot's backend.
func (s *Server) Backend() Backend { return s.snap.Load().be }

// Handler returns the HTTP routing table:
//
//	POST /knn        one kNN query
//	POST /range      one range query
//	POST /knn/batch  up to MaxBatch kNN queries, answered in order
//	POST /reload     swap in a new index snapshot from disk
//	GET  /stats      counters, latency quantiles, cache hit rate
//	GET  /metrics    the same counters in Prometheus text format
//	GET  /healthz    liveness plus index size
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /knn", s.handleKNN)
	mux.HandleFunc("POST /range", s.handleRange)
	mux.HandleFunc("POST /knn/batch", s.handleBatch)
	mux.HandleFunc("POST /reload", s.handleReload)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.Handle("GET /metrics", s.metrics.Handler())
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// KNNRequest is the body of /knn and each element of /knn/batch.
type KNNRequest struct {
	// Point is the query point; its dimensionality must match the index.
	Point vector.Point `json:"point"`
	// K is the number of neighbors wanted (≥ 1). Values above the index
	// size are clamped to it — the result is the complete neighbor list
	// either way.
	K int `json:"k"`
}

// RangeRequest is the body of /range.
type RangeRequest struct {
	// Point is the query point.
	Point vector.Point `json:"point"`
	// Radius is the non-negative search radius.
	Radius float64 `json:"radius"`
}

// BatchRequest is the body of /knn/batch.
type BatchRequest struct {
	// Queries are answered concurrently on the worker pool; the response
	// preserves their order.
	Queries []KNNRequest `json:"queries"`
}

// Neighbor is one kNN result entry.
type Neighbor struct {
	// ID is the indexed object's identifier.
	ID int64 `json:"id"`
	// Dist is its distance to the query point.
	Dist float64 `json:"dist"`
}

// QueryStats is the per-query work accounting embedded in responses. For
// a cache hit it describes the computation that originally produced the
// cached result, keeping hits byte-identical to the miss that filled
// them.
type QueryStats struct {
	// DistComputations counts distance evaluations.
	DistComputations int64 `json:"dist_computations"`
	// PartitionsScanned counts Voronoi cells examined.
	PartitionsScanned int `json:"partitions_scanned"`
	// PartitionsPruned counts cells skipped by the paper's bounds.
	PartitionsPruned int `json:"partitions_pruned"`
}

// KNNResponse is the body of /knn answers.
type KNNResponse struct {
	// Neighbors in ascending distance order, ties by ID.
	Neighbors []Neighbor `json:"neighbors"`
	// Stats is the query's work accounting.
	Stats QueryStats `json:"stats"`
}

// RangeObject is one /range result entry.
type RangeObject struct {
	// ID is the indexed object's identifier.
	ID int64 `json:"id"`
	// Point is the object's coordinates.
	Point vector.Point `json:"point"`
}

// RangeResponse is the body of /range answers, objects in ID order.
type RangeResponse struct {
	// Objects within the radius, in ascending ID order.
	Objects []RangeObject `json:"objects"`
	// Stats is the query's work accounting.
	Stats QueryStats `json:"stats"`
}

// BatchResponse is the body of /knn/batch answers.
type BatchResponse struct {
	// Results holds one marshaled KNNResponse per query, in request
	// order; kept raw so each is byte-identical to the /knn answer for
	// the same (point, k).
	Results []json.RawMessage `json:"results"`
}

// ReloadRequest is the body of /reload. An empty path re-reads the
// snapshot's original index file.
type ReloadRequest struct {
	// Path is the index file to load (written by knnindex build).
	Path string `json:"path"`
}

// ReloadResponse reports what /reload swapped in.
type ReloadResponse struct {
	// Objects and Partitions describe the new index.
	Objects int `json:"objects"`
	// Partitions is the new index's pivot count.
	Partitions int `json:"partitions"`
	// Source is the file the new snapshot was loaded from.
	Source string `json:"source"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	// Error is the human-readable reason.
	Error string `json:"error"`
}

// MarshalKNN renders the canonical /knn response body for a result
// computed by vindex. The serve handlers and the load-generator's
// sequential verification both use it, which is what makes "server
// answers are byte-identical to sequential vindex queries" a checkable
// property rather than a claim. It errors when a distance is
// non-finite (JSON cannot carry it), which happens only when the
// indexed dataset itself contains non-finite coordinates.
func MarshalKNN(cands []nnheap.Candidate, st vindex.Stats) ([]byte, error) {
	resp := KNNResponse{
		Neighbors: make([]Neighbor, len(cands)),
		Stats:     queryStats(st),
	}
	for i, c := range cands {
		resp.Neighbors[i] = Neighbor{ID: c.ID, Dist: c.Dist}
	}
	return json.Marshal(resp)
}

func queryStats(st vindex.Stats) QueryStats {
	return QueryStats{
		DistComputations:  st.DistComputations,
		PartitionsScanned: st.PartitionsScanned,
		PartitionsPruned:  st.PartitionsPruned,
	}
}

// validatePoint rejects queries the index cannot answer meaningfully:
// empty points, dimension mismatches, and non-finite coordinates.
func validatePoint(q vector.Point, dim int) error {
	if len(q) == 0 {
		return fmt.Errorf("empty query point")
	}
	if len(q) != dim {
		return fmt.Errorf("query point has %d dimensions, index has %d", len(q), dim)
	}
	for _, v := range q {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("query point has a non-finite coordinate")
		}
	}
	return nil
}

func (s *Server) writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	s.errCount.Add(1)
	s.mErrors.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(body)
}

// decode reads a request body into dst under the configured byte
// budget, answering 413/400 itself on failure.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(dst); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.writeErr(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", mbe.Limit)
			return false
		}
		s.writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// batchChunk is how many cache-missing batch queries share one round-
// lockstep index call (and one worker-pool token). Large enough that
// co-located queries amortize partition panel sweeps, small enough that
// a MaxBatch-sized request still fans out across the worker pool.
const batchChunk = 32

// clampK bounds k by the index size: an index can never return more
// than Len neighbors, and the vindex heaps allocate O(k), so the clamp
// keeps a hostile k from forcing a huge allocation. Results for any
// clamped k are the complete neighbor list.
func clampK(k, n int) int {
	if k > n {
		return n
	}
	return k
}

// queryKNN answers one kNN query against snap on the worker pool,
// returning the response body, whether it was served from cache, and
// the query's work accounting (zero on a cache hit — the hit's stats
// live inside the cached body).
func (s *Server) queryKNN(ctx context.Context, snap *snapshot, q vector.Point, k int) ([]byte, bool, vindex.Stats, error) {
	key := ""
	if snap.cache != nil {
		key = cacheKey(q, k)
		if body, ok := snap.cache.get(key); ok {
			s.mCacheHits.Inc()
			return body, true, vindex.Stats{}, nil
		}
		s.mCacheMiss.Inc()
	}
	s.sem <- struct{}{}
	res, st, err := snap.be.KNNWithStats(ctx, q, k)
	<-s.sem
	if err != nil {
		return nil, false, st, fmt.Errorf("%w: %v", errBackend, err)
	}
	s.distComps.Add(st.DistComputations)
	s.mDistComps.Add(st.DistComputations)
	body, err := MarshalKNN(res, st)
	if err != nil {
		return nil, false, st, err
	}
	if snap.cache != nil {
		snap.cache.put(key, body)
	}
	return body, false, st, nil
}

// writeQueryErr maps a query failure to its status: backend failures
// (only a remote backend can produce one) are 502, marshal failures 500.
func (s *Server) writeQueryErr(w http.ResponseWriter, err error) {
	if errors.Is(err, errBackend) {
		s.writeErr(w, http.StatusBadGateway, "%v", err)
		return
	}
	s.writeErr(w, http.StatusInternalServerError, "marshal response: %v", err)
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	var req KNNRequest
	if !s.decode(w, r, &req) {
		return
	}
	span := s.tracer.StartSpan("knn", obs.SpanContext{})
	defer span.End()
	snap := s.snap.Load()
	if err := validatePoint(req.Point, snap.be.Dim()); err != nil {
		span.SetAttr("outcome", "bad-request")
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.K < 1 {
		span.SetAttr("outcome", "bad-request")
		s.writeErr(w, http.StatusBadRequest, "k must be at least 1, got %d", req.K)
		return
	}
	span.SetAttr("k", fmt.Sprint(req.K))
	t0 := time.Now()
	ctx := obs.ContextWithSpan(r.Context(), span)
	body, hit, st, err := s.queryKNN(ctx, snap, req.Point, clampK(req.K, snap.be.Len()))
	if err != nil {
		span.SetAttr("outcome", "error")
		s.writeQueryErr(w, err)
		return
	}
	annotateQuery(span, hit, st)
	s.lat.add(float64(time.Since(t0).Nanoseconds()) / 1e6)
	s.knnCount.Add(1)
	s.mKNN.Inc()
	writeJSON(w, http.StatusOK, body)
}

// annotateQuery stamps a request span with the cache outcome and the
// query's work accounting (QueryStats); cache hits carry no fresh
// accounting — the hit's stats are inside the cached body.
func annotateQuery(span *obs.Span, hit bool, st vindex.Stats) {
	if span == nil {
		return
	}
	span.SetAttr("outcome", "ok")
	if hit {
		span.SetAttr("cache", "hit")
		return
	}
	span.SetAttr("cache", "miss")
	span.SetAttr("dist_computations", fmt.Sprint(st.DistComputations))
	span.SetAttr("partitions_scanned", fmt.Sprint(st.PartitionsScanned))
	span.SetAttr("partitions_pruned", fmt.Sprint(st.PartitionsPruned))
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	var req RangeRequest
	if !s.decode(w, r, &req) {
		return
	}
	span := s.tracer.StartSpan("range", obs.SpanContext{})
	defer span.End()
	snap := s.snap.Load()
	if err := validatePoint(req.Point, snap.be.Dim()); err != nil {
		span.SetAttr("outcome", "bad-request")
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Radius < 0 || math.IsNaN(req.Radius) {
		span.SetAttr("outcome", "bad-request")
		s.writeErr(w, http.StatusBadRequest, "radius must be non-negative, got %v", req.Radius)
		return
	}
	span.SetAttr("radius", fmt.Sprint(req.Radius))
	t0 := time.Now()
	s.sem <- struct{}{}
	objs, st, qerr := snap.be.RangeWithStats(obs.ContextWithSpan(r.Context(), span), req.Point, req.Radius)
	<-s.sem
	if qerr != nil {
		span.SetAttr("outcome", "error")
		s.writeQueryErr(w, fmt.Errorf("%w: %v", errBackend, qerr))
		return
	}
	s.distComps.Add(st.DistComputations)
	s.mDistComps.Add(st.DistComputations)
	annotateQuery(span, false, st)
	resp := RangeResponse{Objects: make([]RangeObject, len(objs)), Stats: queryStats(st)}
	for i, o := range objs {
		resp.Objects[i] = RangeObject{ID: o.ID, Point: o.Point}
	}
	body, err := json.Marshal(resp)
	if err != nil {
		s.writeErr(w, http.StatusInternalServerError, "marshal response: %v", err)
		return
	}
	s.lat.add(float64(time.Since(t0).Nanoseconds()) / 1e6)
	s.rangeCount.Add(1)
	s.mRange.Inc()
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		s.writeErr(w, http.StatusBadRequest, "batch has no queries")
		return
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		s.writeErr(w, http.StatusBadRequest, "batch of %d queries exceeds the %d limit",
			len(req.Queries), s.cfg.MaxBatch)
		return
	}
	span := s.tracer.StartSpan("batch", obs.SpanContext{})
	defer span.End()
	span.SetAttr("queries", fmt.Sprint(len(req.Queries)))
	ctx := obs.ContextWithSpan(r.Context(), span)
	// One snapshot for the whole batch: a concurrent reload must not
	// split a batch across index generations.
	snap := s.snap.Load()
	for i, q := range req.Queries {
		if err := validatePoint(q.Point, snap.be.Dim()); err != nil {
			s.writeErr(w, http.StatusBadRequest, "query %d: %v", i, err)
			return
		}
		if q.K < 1 {
			s.writeErr(w, http.StatusBadRequest, "query %d: k must be at least 1, got %d", i, q.K)
			return
		}
	}
	// Cache pass first, then the misses ride the index's round-lockstep
	// batch API in chunks: queries of one chunk share each partition's
	// cache-sized panel sweeps (one worker token per chunk, so a big
	// batch still spreads across the pool). Per-query results and stats
	// are exactly those of sequential KNNWithStats calls, so a batch-
	// filled cache entry is byte-identical to the /knn miss that would
	// have filled it.
	results := make([]json.RawMessage, len(req.Queries))
	queryErrs := make([]error, len(req.Queries))
	keys := make([]string, len(req.Queries))
	misses := make([]int, 0, len(req.Queries))
	for i, q := range req.Queries {
		if snap.cache == nil {
			misses = append(misses, i)
			continue
		}
		t0 := time.Now()
		keys[i] = cacheKey(q.Point, clampK(q.K, snap.be.Len()))
		if body, ok := snap.cache.get(keys[i]); ok {
			s.mCacheHits.Inc()
			s.lat.add(float64(time.Since(t0).Nanoseconds()) / 1e6)
			results[i] = body
		} else {
			s.mCacheMiss.Inc()
			misses = append(misses, i)
		}
	}
	span.SetAttr("cache_hits", fmt.Sprint(len(req.Queries)-len(misses)))
	span.SetAttr("cache_misses", fmt.Sprint(len(misses)))
	var wg sync.WaitGroup
	for c := 0; c < len(misses); c += batchChunk {
		chunk := misses[c:min(c+batchChunk, len(misses))]
		wg.Add(1)
		go func(chunk []int) {
			defer wg.Done()
			t0 := time.Now()
			pts := make([]vector.Point, len(chunk))
			ks := make([]int, len(chunk))
			for x, i := range chunk {
				pts[x] = req.Queries[i].Point
				ks[x] = clampK(req.Queries[i].K, snap.be.Len())
			}
			s.sem <- struct{}{}
			res, sts, err := snap.be.KNNBatchWithStats(ctx, pts, ks)
			<-s.sem
			if err != nil {
				qerr := fmt.Errorf("%w: %v", errBackend, err)
				for _, i := range chunk {
					queryErrs[i] = qerr
				}
				return
			}
			// Each query of the chunk waited the chunk's wall time for
			// its answer, so that is its recorded latency.
			elapsed := float64(time.Since(t0).Nanoseconds()) / 1e6
			for x, i := range chunk {
				s.distComps.Add(sts[x].DistComputations)
				s.mDistComps.Add(sts[x].DistComputations)
				body, err := MarshalKNN(res[x], sts[x])
				if err != nil {
					queryErrs[i] = err
					continue
				}
				if snap.cache != nil {
					snap.cache.put(keys[i], body)
				}
				results[i] = body
				s.lat.add(elapsed)
			}
		}(chunk)
	}
	wg.Wait()
	for i, err := range queryErrs {
		if err != nil {
			span.SetAttr("outcome", "error")
			if errors.Is(err, errBackend) {
				s.writeErr(w, http.StatusBadGateway, "query %d: %v", i, err)
			} else {
				s.writeErr(w, http.StatusInternalServerError, "query %d: marshal response: %v", i, err)
			}
			return
		}
	}
	span.SetAttr("outcome", "ok")
	s.batchCount.Add(1)
	s.batchQueries.Add(int64(len(req.Queries)))
	s.mBatch.Inc()
	s.mBatchQs.Add(int64(len(req.Queries)))
	body, err := json.Marshal(BatchResponse{Results: results})
	if err != nil {
		s.writeErr(w, http.StatusInternalServerError, "marshal response: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	var req ReloadRequest
	if !s.decode(w, r, &req) {
		return
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	path := req.Path
	if path == "" {
		path = s.snap.Load().source
	}
	if path == "" {
		s.writeErr(w, http.StatusBadRequest,
			"no path given and the current snapshot was not loaded from a file")
		return
	}
	loader := s.cfg.Loader
	if loader == nil {
		loader = func(path string) (Backend, error) {
			ix, err := vindex.LoadFile(path)
			if err != nil {
				return nil, err
			}
			return indexBackend{ix}, nil
		}
	}
	be, err := loader(path)
	if err != nil {
		s.writeErr(w, http.StatusUnprocessableEntity, "loading %s: %v", path, err)
		return
	}
	s.SwapBackend(be, path)
	body, _ := json.Marshal(ReloadResponse{
		Objects: be.Len(), Partitions: be.NumPartitions(), Source: path,
	})
	writeJSON(w, http.StatusOK, body)
}

// QueryCounts breaks the served query totals down by endpoint.
type QueryCounts struct {
	// KNN counts /knn requests; Range /range; Batch whole /knn/batch
	// requests and BatchQueries the queries inside them; Errors every
	// non-2xx answer.
	KNN int64 `json:"knn"`
	// Range counts /range requests.
	Range int64 `json:"range"`
	// Batch counts /knn/batch requests.
	Batch int64 `json:"batch"`
	// BatchQueries counts individual queries inside batches.
	BatchQueries int64 `json:"batch_queries"`
	// Errors counts non-2xx answers across all endpoints.
	Errors int64 `json:"errors"`
}

// LatencyQuantiles summarizes the latency ring in milliseconds.
type LatencyQuantiles struct {
	// Count is the number of recorded query latencies (capped at the
	// ring size for the quantiles themselves).
	Count int64 `json:"count"`
	// P50, P90 and P99 are nearest-rank quantiles over the ring.
	P50 float64 `json:"p50"`
	// P90 is the 90th-percentile latency.
	P90 float64 `json:"p90"`
	// P99 is the 99th-percentile latency.
	P99 float64 `json:"p99"`
}

// CacheStats reports the current snapshot's result cache.
type CacheStats struct {
	// Hits and Misses count lookups against the current snapshot's cache.
	Hits int64 `json:"hits"`
	// Misses counts lookups that had to compute.
	Misses int64 `json:"misses"`
	// HitRate is Hits/(Hits+Misses), 0 when no lookups happened.
	HitRate float64 `json:"hit_rate"`
	// Entries is the live entry count; Capacity the configured bound.
	Entries int `json:"entries"`
	// Capacity is the configured maximum entry count (0 = disabled).
	Capacity int `json:"capacity"`
}

// IndexInfo describes the current snapshot.
type IndexInfo struct {
	// Objects is the indexed object count.
	Objects int `json:"objects"`
	// Partitions is the pivot count.
	Partitions int `json:"partitions"`
	// Dim is the dimensionality of the indexed points.
	Dim int `json:"dim"`
	// Source is the index file backing the snapshot ("" if built
	// in-process).
	Source string `json:"source,omitempty"`
	// Kernel is the active distance scan tier ("block", "f32",
	// "quantized", ...; "auto" resolves per partition block).
	Kernel string `json:"kernel"`
}

// StatsResponse is the body of /stats.
type StatsResponse struct {
	// UptimeSeconds is the time since New.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Queries are the per-endpoint counters.
	Queries QueryCounts `json:"queries"`
	// LatencyMs are the per-query latency quantiles.
	LatencyMs LatencyQuantiles `json:"latency_ms"`
	// Cache reports the current snapshot's result cache.
	Cache CacheStats `json:"cache"`
	// DistComputations totals the distance evaluations of every cache
	// miss served so far.
	DistComputations int64 `json:"dist_computations"`
	// Reloads counts snapshot swaps.
	Reloads int64 `json:"reloads"`
	// Index describes the current snapshot.
	Index IndexInfo `json:"index"`
}

// Stats assembles the current /stats payload (exported so tools can
// read it without an HTTP round trip).
func (s *Server) Stats() StatsResponse {
	snap := s.snap.Load()
	resp := StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Queries: QueryCounts{
			KNN:          s.knnCount.Load(),
			Range:        s.rangeCount.Load(),
			Batch:        s.batchCount.Load(),
			BatchQueries: s.batchQueries.Load(),
			Errors:       s.errCount.Load(),
		},
		DistComputations: s.distComps.Load(),
		Reloads:          s.reloads.Load(),
		Index: IndexInfo{
			Objects:    snap.be.Len(),
			Partitions: snap.be.NumPartitions(),
			Dim:        snap.be.Dim(),
			Source:     snap.source,
			Kernel:     snap.be.Kernel().String(),
		},
	}
	resp.LatencyMs.Count, resp.LatencyMs.P50, resp.LatencyMs.P90, resp.LatencyMs.P99 = s.lat.quantiles()
	if snap.cache != nil {
		hits, misses, entries := snap.cache.stats()
		resp.Cache = CacheStats{Hits: hits, Misses: misses, Entries: entries, Capacity: s.cfg.CacheSize}
		if total := hits + misses; total > 0 {
			resp.Cache.HitRate = float64(hits) / float64(total)
		}
	}
	return resp
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	body, err := json.Marshal(s.Stats())
	if err != nil {
		s.writeErr(w, http.StatusInternalServerError, "marshal stats: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// HealthResponse is the body of /healthz.
type HealthResponse struct {
	// Status is "ok" whenever an index is loaded.
	Status string `json:"status"`
	// Objects is the current snapshot's object count.
	Objects int `json:"objects"`
	// Partitions is the current snapshot's pivot count.
	Partitions int `json:"partitions"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	if snap == nil || snap.be == nil {
		s.writeErr(w, http.StatusServiceUnavailable, "no index loaded")
		return
	}
	body, _ := json.Marshal(HealthResponse{
		Status: "ok", Objects: snap.be.Len(), Partitions: snap.be.NumPartitions(),
	})
	writeJSON(w, http.StatusOK, body)
}

// latencyRing retains the most recent per-query latencies (milliseconds)
// in a fixed ring so /stats quantiles reflect recent traffic, not the
// whole process lifetime.
type latencyRing struct {
	mu    sync.Mutex
	buf   []float64
	next  int
	count int64 // total recorded, may exceed len(buf)

	// hist mirrors every add into the /metrics exposition histogram.
	// The ring stays authoritative for /stats (exact nearest-rank
	// quantiles over the window); the histogram trades that precision
	// for a cheap, mergeable scrape format. May be nil.
	hist *obs.Histogram
}

func (l *latencyRing) add(ms float64) {
	l.mu.Lock()
	l.buf[l.next] = ms
	l.next = (l.next + 1) % len(l.buf)
	l.count++
	l.mu.Unlock()
	l.hist.Observe(ms)
}

func (l *latencyRing) quantiles() (count int64, p50, p90, p99 float64) {
	l.mu.Lock()
	n := int(l.count)
	if n > len(l.buf) {
		n = len(l.buf)
	}
	sample := append([]float64(nil), l.buf[:n]...)
	count = l.count
	l.mu.Unlock()
	if n == 0 {
		return count, 0, 0, 0
	}
	// One sort, three nearest-rank reads — /stats is polled by monitors,
	// so don't re-sort per quantile (stats.Quantile copies and sorts its
	// input on every call).
	sort.Float64s(sample)
	rank := func(q float64) float64 {
		idx := int(math.Ceil(q*float64(n))) - 1
		if idx < 0 {
			idx = 0
		}
		return sample[idx]
	}
	return count, rank(0.50), rank(0.90), rank(0.99)
}
