package mapreduce

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"knnjoin/internal/dfs"
	"knnjoin/internal/obs"
)

// workerEnv carries a workerConfig (JSON) into a spawned worker process.
// Worker processes are re-executed copies of the parent binary, so the
// same job-kind registrations are linked in; RunWorkerIfSpawned turns
// the re-exec into a worker loop before the program's own main logic.
const workerEnv = "KNNJOIN_MR_WORKER"

// RunWorkerIfSpawned checks whether this process was spawned as a
// MapReduce worker and, if so, runs the worker loop and exits — it never
// returns in that case. Call it first thing in main (and in TestMain for
// test binaries that use a distributed cluster); it is a no-op in
// ordinary processes.
func RunWorkerIfSpawned() {
	raw := os.Getenv(workerEnv)
	if raw == "" {
		return
	}
	var cfg workerConfig
	if err := json.Unmarshal([]byte(raw), &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "mapreduce worker: bad config: %v\n", err)
		os.Exit(1)
	}
	os.Exit(runWorker(cfg))
}

// worker is one task-executing process attached to a coordinator.
type worker struct {
	cfg      workerConfig
	client   *http.Client
	store    *dfs.Remote
	inj      *injector
	hbPaused atomic.Bool

	// tracer records task-attempt spans (nil when tracing is off);
	// curSpan is the span of the attempt currently executing, kept
	// where the fault observer can reach it before a kill.
	tracer  *obs.Tracer
	curSpan atomic.Pointer[obs.Span]

	cachedJobID int64
	cachedJob   *Job
}

func runWorker(cfg workerConfig) int {
	w := &worker{cfg: cfg, client: &http.Client{}}
	if cfg.TraceDir != "" {
		tr, err := obs.NewTracer(cfg.TraceDir, fmt.Sprintf("worker-%d", cfg.Index))
		if err != nil {
			fmt.Fprintf(os.Stderr, "mapreduce worker %d: tracer: %v\n", cfg.Index, err)
			return 1
		}
		w.tracer = tr
		defer tr.Close()
	}
	w.inj = newInjector(cfg.Index, cfg.Faults,
		func(p bool) { w.hbPaused.Store(p) },
		w.observeFault)
	store, err := dfs.NewRemote(cfg.URL + "/dfs")
	if err != nil {
		fmt.Fprintf(os.Stderr, "mapreduce worker %d: chunk service: %v\n", cfg.Index, err)
		return 1
	}
	w.store = store
	failures := 0
	for {
		var resp pollResponse
		if err := w.post("/poll", pollRequest{Worker: cfg.Index}, &resp); err != nil {
			// The coordinator being unreachable for a sustained stretch
			// means the job (or the whole cluster) is gone; exit rather
			// than poll forever.
			if failures++; failures > 200 {
				return 1
			}
			time.Sleep(20 * time.Millisecond)
			continue
		}
		failures = 0
		if resp.Shutdown {
			return 0
		}
		if resp.Task == nil {
			wait := resp.WaitMs
			if wait <= 0 {
				wait = 10
			}
			time.Sleep(time.Duration(wait) * time.Millisecond)
			continue
		}
		w.runTask(resp.Task)
	}
}

// post sends one JSON request to the coordinator and decodes the reply.
func (w *worker) post(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := w.client.Post(w.cfg.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return fmt.Errorf("mapreduce worker: %s: HTTP %d", path, r.StatusCode)
	}
	return json.NewDecoder(r.Body).Decode(resp)
}

// jobFor rebuilds the task's job from the kind registry, caching the
// result — the cluster runs jobs sequentially, so one entry suffices.
func (w *worker) jobFor(t *wireTask) (*Job, error) {
	if w.cachedJob != nil && w.cachedJobID == t.JobID {
		return w.cachedJob, nil
	}
	job, err := buildKindJob(t.Kind, t.Spec)
	if err != nil {
		return nil, err
	}
	w.cachedJobID, w.cachedJob = t.JobID, job
	return job, nil
}

// runTask executes one assignment end to end: heartbeats while working,
// then reports the completion (retrying the report itself, which must
// not be lost to a transient connection error when the work is durable).
// The attempt runs under its own span, parented to the coordinator's
// job span via the assignment's trace context; the span's outcome attr
// distinguishes the winning commit ("committed") from speculative
// losers and late duplicates ("discarded"), failures ("error"), and —
// via the fault observer — attempts that never got to report
// ("killed").
func (w *worker) runTask(t *wireTask) {
	span := w.tracer.StartSpan("task",
		obs.SpanContext{TraceID: t.TraceID, SpanID: t.SpanParent})
	span.SetAttr("task", fmt.Sprintf("%s/%s/%d", t.JobName, t.Phase, t.Index))
	span.SetAttr("attempt", fmt.Sprint(t.Attempt))
	span.SetAttr("worker", fmt.Sprint(w.cfg.Index))
	w.curSpan.Store(span)
	defer func() {
		w.curSpan.Store(nil)
		span.End()
		// Flush per task: worker processes can be torn down without a
		// graceful shutdown, and a buffered span would vanish with them.
		w.tracer.Flush()
	}()

	stop := make(chan struct{})
	go w.heartbeatLoop(t, stop)
	comp := w.execute(t)
	close(stop)
	comp.Worker = w.cfg.Index
	comp.JobID = t.JobID
	comp.Phase = t.Phase
	comp.Index = t.Index
	comp.Attempt = t.Attempt
	if comp.Err != "" {
		span.SetAttr("outcome", "error")
		span.SetAttr("err", comp.Err)
	}
	for i := 0; i < 3; i++ {
		var resp completionResponse
		if err := w.post("/done", comp, &resp); err == nil {
			if comp.Err == "" {
				if resp.Accepted {
					span.SetAttr("outcome", "committed")
				} else {
					span.SetAttr("outcome", "discarded")
				}
			}
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	if comp.Err == "" {
		span.SetAttr("outcome", "unreported")
	}
}

// observeFault records a fired fault event on the current attempt's
// span. For kills it also stamps the outcome, ends the span, and
// flushes the tracer — this runs just before the injector's os.Exit,
// so the killed attempt survives into the merged trace.
func (w *worker) observeFault(ev *FaultEvent, task string, attempt int) {
	span := w.curSpan.Load()
	span.Event("fault-"+faultActionName(ev.Action),
		"task", task,
		"attempt", fmt.Sprint(attempt),
		"point", faultPointName(ev.Point))
	if ev.Action == ActKill {
		span.SetAttr("outcome", "killed")
		span.End()
		w.tracer.Flush()
	}
}

// heartbeatLoop renews the attempt's lease until the task finishes.
// ActFreeze pauses it, simulating a worker presumed dead.
func (w *worker) heartbeatLoop(t *wireTask, stop chan struct{}) {
	every := time.Duration(w.cfg.HeartbeatMs) * time.Millisecond
	if every <= 0 {
		every = 100 * time.Millisecond
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			if w.hbPaused.Load() {
				continue
			}
			var resp heartbeatResponse
			msg := heartbeatMsg{Worker: w.cfg.Index, JobID: t.JobID,
				Phase: t.Phase, Index: t.Index, Attempt: t.Attempt}
			w.post("/heartbeat", msg, &resp) // best-effort; an abandoned attempt just wastes work
		}
	}
}

// execute runs the attempt and returns its completion report.
func (w *worker) execute(t *wireTask) completion {
	var comp completion
	job, err := w.jobFor(t)
	if err != nil {
		comp.Err = err.Error()
		return comp
	}
	taskID := fmt.Sprintf("%s/%s/%d", t.JobName, t.Phase, t.Index)
	if job.FailTask != nil {
		if err := job.FailTask(taskID, t.Attempt); err != nil {
			comp.Err = err.Error()
			return comp
		}
	}
	if err := os.MkdirAll(t.RunDir, 0o755); err != nil {
		comp.Err = err.Error()
		return comp
	}
	w.inj.at(taskID, t.Attempt, AtTaskStart)
	if t.Phase == "map" {
		err = w.executeMap(t, job, taskID, &comp)
	} else {
		err = w.executeReduce(t, job, taskID, &comp)
	}
	if err != nil {
		comp.Err = err.Error()
	}
	return comp
}

// executeMap runs one map attempt: load the split through the chunk
// service, map every record into per-reducer buckets, then either
// sort/combine/commit the buckets as run files (reduce jobs) or commit
// the bucket-concatenated values as the task's output (map-only jobs) —
// bucket order, exactly like the in-process engine.
func (w *worker) executeMap(t *wireTask, job *Job, taskID string, comp *completion) error {
	splits, err := w.store.Splits(job.Input...)
	if err != nil {
		return err
	}
	if t.SplitIndex < 0 || t.SplitIndex >= len(splits) {
		return fmt.Errorf("mapreduce: split %d out of range (%d splits)", t.SplitIndex, len(splits))
	}
	records, err := splits[t.SplitIndex].Load()
	if err != nil {
		return err
	}
	ctx := &TaskContext{JobName: t.JobName, TaskID: taskID, side: job.Side, counters: NewCounterSet()}
	if job.MapSetup != nil {
		if err := job.MapSetup(ctx); err != nil {
			return fmt.Errorf("map setup: %w", err)
		}
	}
	partition := resolvePartition(job)
	buckets := make([][]KV, t.NumReducers)
	emit := func(key, value []byte) {
		r := 0
		if t.NumReducers > 1 {
			r = partition(key, t.NumReducers)
			if r < 0 || r >= t.NumReducers {
				panic(fmt.Sprintf("mapreduce: partition function returned %d for %d reducers", r, t.NumReducers))
			}
		}
		buckets[r] = append(buckets[r], KV{Key: key, Value: value})
	}
	for i, rec := range records {
		if i == len(records)/2 {
			w.inj.at(taskID, t.Attempt, AtMidTask)
		}
		if err := job.Map(ctx, rec, emit); err != nil {
			return fmt.Errorf("map record: %w", err)
		}
	}
	comp.Records = int64(len(records))

	if t.MapOnly {
		w.inj.at(taskID, t.Attempt, AtPreCommit)
		var out []dfs.Record
		for _, b := range buckets {
			for _, kv := range b {
				out = append(out, dfs.Record(kv.Value))
			}
		}
		path := filepath.Join(t.RunDir, "out")
		if err := writeFramedFile(path, out); err != nil {
			return err
		}
		comp.Output = wireRun{Path: path, Records: int64(len(out))}
		w.inj.at(taskID, t.Attempt, AtPostCommit)
		comp.Work = ctx.work
		comp.Counters = ctx.counters.Snapshot()
		return nil
	}

	rs := &runState{spillDir: t.RunDir, fanIn: defaultFanIn, bufSize: spillBufSize}
	for r := range buckets {
		sortRun(buckets[r], job.ValueCompare)
		if job.Combine != nil {
			combined, err := combineRun(ctx, job, buckets[r])
			if err != nil {
				return fmt.Errorf("combine: %w", err)
			}
			buckets[r] = combined
		}
	}
	w.inj.at(taskID, t.Attempt, AtPreCommit)
	for r, kvs := range buckets {
		if len(kvs) == 0 {
			continue
		}
		rf, err := writeRunFile(rs, kvs)
		if err != nil {
			return err
		}
		comp.MapRuns = append(comp.MapRuns, wireMapRun{Reducer: r, Path: rf.path,
			Records: rf.records, Bytes: rf.bytes})
	}
	if ev := w.inj.at(taskID, t.Attempt, AtPostCommit); ev != nil && ev.Action == ActTruncateRun {
		if n := len(comp.MapRuns); n > 0 {
			truncateTail(comp.MapRuns[n-1].Path, ev.TruncateBytes)
		}
	}
	comp.Work = ctx.work
	comp.SpilledRuns = rs.spilledRuns.Load()
	comp.SpilledBytes = rs.spilledBytes.Load()
	comp.Counters = ctx.counters.Snapshot()
	return nil
}

// executeReduce runs one reduce attempt: k-way-merge the committed map
// runs (in the wire order, which is map-task order — the same
// tie-breaking seq the in-process engine uses), stream key groups
// through the reduce function, and commit the output records as one
// framed file. A truncated or missing input run fails the attempt and is
// reported in BadRuns so the coordinator re-executes its producer.
func (w *worker) executeReduce(t *wireTask, job *Job, taskID string, comp *completion) error {
	ctx := &TaskContext{JobName: t.JobName, TaskID: taskID, side: job.Side, counters: NewCounterSet()}
	if job.ReduceSetup != nil {
		if err := job.ReduceSetup(ctx); err != nil {
			return fmt.Errorf("reduce setup: %w", err)
		}
	}
	rs := &runState{spillDir: t.RunDir, fanIn: defaultFanIn, bufSize: spillBufSize}
	runs := make([]runData, len(t.Runs))
	given := make(map[string]bool, len(t.Runs))
	for i, r := range t.Runs {
		runs[i] = runData{file: &runFile{path: r.Path, records: r.Records, bytes: r.Bytes}}
		given[r.Path] = true
	}
	reportBad := func(err error) error {
		var bad *runBadError
		if errors.As(err, &bad) && given[bad.path] {
			comp.BadRuns = append(comp.BadRuns, bad.path)
		}
		return err
	}
	runs, err := reduceFanIn(rs, runs, job.ValueCompare, rs.fanIn)
	if err != nil {
		return reportBad(err)
	}
	cursors := openRuns(rs, runs)
	defer func() {
		for _, cu := range cursors {
			cu.close()
		}
	}()
	m := newMergerCursors(cursors, job.ValueCompare)
	var out []dfs.Record
	emit := func(_, value []byte) {
		out = append(out, dfs.Record(value))
	}
	var groupsSeen int64
	reduce := func(ctx *TaskContext, key []byte, values *Values, emit Emit) error {
		if groupsSeen == 1 {
			w.inj.at(taskID, t.Attempt, AtMidTask)
		}
		groupsSeen++
		return job.Reduce(ctx, key, values, emit)
	}
	groups, err := streamGroups(ctx, reduce, m, job.GroupKeyPrefix, emit)
	if err != nil {
		return reportBad(err)
	}
	if err := m.failure(); err != nil {
		return reportBad(err)
	}
	w.inj.at(taskID, t.Attempt, AtPreCommit)
	path := filepath.Join(t.RunDir, "out")
	if err := writeFramedFile(path, out); err != nil {
		return err
	}
	comp.Output = wireRun{Path: path, Records: int64(len(out))}
	w.inj.at(taskID, t.Attempt, AtPostCommit)
	comp.Groups = groups
	comp.Work = ctx.work
	comp.SpilledRuns = rs.spilledRuns.Load()
	comp.SpilledBytes = rs.spilledBytes.Load()
	comp.Counters = ctx.counters.Snapshot()
	return nil
}

// truncateTail chops n trailing bytes off the file (fault injection).
func truncateTail(path string, n int64) {
	if info, err := os.Stat(path); err == nil {
		size := info.Size() - n
		if size < 0 {
			size = 0
		}
		os.Truncate(path, size)
	}
}

// writeFramedFile commits records to path as uvarint-framed records,
// written to a temporary name and renamed into place — a file that
// exists under its final name is always complete.
func writeFramedFile(path string, records []dfs.Record) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, spillBufSize)
	for _, rec := range records {
		if err = dfs.WriteFrame(w, rec); err != nil {
			break
		}
	}
	if err == nil {
		err = w.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(path+".tmp", path)
	}
	if err != nil {
		os.Remove(path + ".tmp")
		return fmt.Errorf("mapreduce: output file %s: %w", path, err)
	}
	return nil
}

// readFramedFile loads a writeFramedFile-committed file, verifying the
// expected record count.
func readFramedFile(path string, records int64) ([]dfs.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, spillBufSize)
	out := make([]dfs.Record, 0, records)
	for i := int64(0); i < records; i++ {
		rec, err := dfs.ReadFrame(r)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: output file %s truncated at record %d: %w", path, i, err)
		}
		out = append(out, dfs.Record(rec))
	}
	return out, nil
}
