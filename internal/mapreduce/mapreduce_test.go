package mapreduce

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"knnjoin/internal/dfs"
)

func newTestCluster(nodes, chunk int) *Cluster {
	return NewCluster(dfs.New(chunk), nodes)
}

func writeLines(fs dfs.Store, name string, lines ...string) {
	recs := make([]dfs.Record, len(lines))
	for i, l := range lines {
		recs[i] = dfs.Record(l)
	}
	fs.Write(name, recs)
}

// wordCountJob is the canonical end-to-end smoke test of the engine.
func wordCountJob(input, output string, combine bool) *Job {
	j := &Job{
		Name:   "wordcount",
		Input:  []string{input},
		Output: output,
		Map: func(_ *TaskContext, rec dfs.Record, emit Emit) error {
			for _, w := range strings.Fields(string(rec)) {
				emit([]byte(w), []byte("1"))
			}
			return nil
		},
		Reduce: func(_ *TaskContext, key []byte, values *Values, emit Emit) error {
			total := 0
			for v, ok := values.Next(); ok; v, ok = values.Next() {
				n, err := strconv.Atoi(string(v))
				if err != nil {
					return err
				}
				total += n
			}
			emit(key, []byte(fmt.Sprintf("%s=%d", key, total)))
			return nil
		},
	}
	if combine {
		j.Combine = func(_ *TaskContext, key []byte, values *Values, emit Emit) error {
			total := 0
			for v, ok := values.Next(); ok; v, ok = values.Next() {
				n, _ := strconv.Atoi(string(v))
				total += n
			}
			emit(key, []byte(strconv.Itoa(total)))
			return nil
		}
	}
	return j
}

func readCounts(t *testing.T, fs dfs.Store, name string) map[string]int {
	t.Helper()
	recs, err := fs.Read(name)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]int)
	for _, r := range recs {
		parts := strings.SplitN(string(r), "=", 2)
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			t.Fatal(err)
		}
		out[parts[0]] = n
	}
	return out
}

func TestWordCount(t *testing.T) {
	c := newTestCluster(4, 2)
	writeLines(c.FS(), "in", "a b a", "b c", "a", "c c c")
	stats, err := c.Run(wordCountJob("in", "out", false))
	if err != nil {
		t.Fatal(err)
	}
	got := readCounts(t, c.FS(), "out")
	want := map[string]int{"a": 3, "b": 2, "c": 4}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("count[%s] = %d, want %d", k, got[k], v)
		}
	}
	if stats.MapTasks != 2 { // 4 records, chunk=2
		t.Errorf("MapTasks = %d, want 2", stats.MapTasks)
	}
	if stats.MapInputRecords != 4 {
		t.Errorf("MapInputRecords = %d, want 4", stats.MapInputRecords)
	}
	if stats.ShuffleRecords != 9 { // 9 words emitted
		t.Errorf("ShuffleRecords = %d, want 9", stats.ShuffleRecords)
	}
	if stats.ReduceGroups != 3 {
		t.Errorf("ReduceGroups = %d, want 3", stats.ReduceGroups)
	}
	if stats.OutputRecords != 3 {
		t.Errorf("OutputRecords = %d, want 3", stats.OutputRecords)
	}
}

func TestCombinerReducesShuffle(t *testing.T) {
	lines := []string{"x x x x", "x x x x", "y y y y", "y y y y"}
	run := func(combine bool) (*JobStats, map[string]int) {
		c := newTestCluster(2, 2)
		writeLines(c.FS(), "in", lines...)
		stats, err := c.Run(wordCountJob("in", "out", combine))
		if err != nil {
			t.Fatal(err)
		}
		return stats, readCounts(t, c.FS(), "out")
	}
	plain, gotPlain := run(false)
	combined, gotCombined := run(true)
	for k, v := range gotPlain {
		if gotCombined[k] != v {
			t.Errorf("combiner changed result for %s: %d vs %d", k, gotCombined[k], v)
		}
	}
	if combined.ShuffleRecords >= plain.ShuffleRecords {
		t.Errorf("combiner did not reduce shuffle records: %d vs %d",
			combined.ShuffleRecords, plain.ShuffleRecords)
	}
	if combined.ShuffleBytes >= plain.ShuffleBytes {
		t.Errorf("combiner did not reduce shuffle bytes: %d vs %d",
			combined.ShuffleBytes, plain.ShuffleBytes)
	}
}

// The combiner runs over the map task's sorted run: each invocation must
// see one full key group with every value of that key in this task,
// already in sorted order.
func TestCombinerSeesSortedGroups(t *testing.T) {
	c := newTestCluster(1, 100) // one map task: groups span the whole input
	writeLines(c.FS(), "in", "b a c a b a")
	var mu sync.Mutex
	combineCalls := make(map[string]int)
	var keyOrder []string
	job := wordCountJob("in", "out", true)
	inner := job.Combine
	job.Combine = func(ctx *TaskContext, key []byte, values *Values, emit Emit) error {
		mu.Lock()
		combineCalls[string(key)]++
		keyOrder = append(keyOrder, string(key))
		mu.Unlock()
		return inner(ctx, key, values, emit)
	}
	if _, err := c.Run(job); err != nil {
		t.Fatal(err)
	}
	for k, n := range combineCalls {
		if n != 1 {
			t.Errorf("combiner called %d times for key %s, want 1 (sorted run groups)", n, k)
		}
	}
	if !sort.StringsAreSorted(keyOrder) {
		t.Errorf("combiner key order %v, want sorted", keyOrder)
	}
	got := readCounts(t, c.FS(), "out")
	if got["a"] != 3 || got["b"] != 2 || got["c"] != 1 {
		t.Errorf("wrong counts after combining: %v", got)
	}
}

func TestMapOnlyJob(t *testing.T) {
	c := newTestCluster(3, 2)
	writeLines(c.FS(), "in", "1", "2", "3", "4", "5")
	job := &Job{
		Name:   "double",
		Input:  []string{"in"},
		Output: "out",
		Map: func(_ *TaskContext, rec dfs.Record, emit Emit) error {
			n, _ := strconv.Atoi(string(rec))
			emit(nil, []byte(strconv.Itoa(2*n)))
			return nil
		},
	}
	stats, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ShuffleRecords != 0 || stats.ShuffleBytes != 0 {
		t.Error("map-only job should not shuffle")
	}
	recs, _ := c.FS().Read("out")
	if len(recs) != 5 {
		t.Fatalf("got %d output records", len(recs))
	}
	// Map-only output preserves split order.
	for i, want := range []string{"2", "4", "6", "8", "10"} {
		if string(recs[i]) != want {
			t.Fatalf("out[%d] = %s, want %s", i, recs[i], want)
		}
	}
}

func TestReduceKeysSorted(t *testing.T) {
	c := newTestCluster(1, 100)
	writeLines(c.FS(), "in", "b", "a", "c", "a")
	var mu sync.Mutex
	var order []string
	job := &Job{
		Name:        "order",
		Input:       []string{"in"},
		Output:      "out",
		NumReducers: 1,
		Map: func(_ *TaskContext, rec dfs.Record, emit Emit) error {
			emit(rec, rec)
			return nil
		},
		Reduce: func(_ *TaskContext, key []byte, values *Values, emit Emit) error {
			mu.Lock()
			order = append(order, string(key))
			mu.Unlock()
			emit(key, key)
			return nil
		},
	}
	if _, err := c.Run(job); err != nil {
		t.Fatal(err)
	}
	if !sort.StringsAreSorted(order) {
		t.Fatalf("reduce key order = %v, want sorted", order)
	}
}

// uint32Key is a test-local big-endian key encoder (the production one
// lives in internal/codec, which this package must not import).
func uint32Key(v uint32) []byte {
	return binary.BigEndian.AppendUint32(nil, v)
}

// Regression for the string-keyed engine's ordering footgun: numeric keys
// sorted as decimal strings put "10" before "9". Binary big-endian keys
// must reach the reducer in true numeric order, and the job's output must
// be byte-identical across runs.
func TestNumericKeyOrderAndDeterminism(t *testing.T) {
	run := func() ([]uint32, []dfs.Record) {
		c := newTestCluster(4, 3)
		lines := make([]string, 25)
		for i := range lines {
			lines[i] = strconv.Itoa(24 - i) // emitted in descending order
		}
		writeLines(c.FS(), "in", lines...)
		var mu sync.Mutex
		var order []uint32
		job := &Job{
			Name:        "numeric",
			Input:       []string{"in"},
			Output:      "out",
			NumReducers: 1,
			Map: func(_ *TaskContext, rec dfs.Record, emit Emit) error {
				n, _ := strconv.Atoi(string(rec))
				emit(uint32Key(uint32(n)), rec)
				return nil
			},
			Reduce: func(_ *TaskContext, key []byte, values *Values, emit Emit) error {
				mu.Lock()
				order = append(order, binary.BigEndian.Uint32(key))
				mu.Unlock()
				for v, ok := values.Next(); ok; v, ok = values.Next() {
					emit(key, v)
				}
				return nil
			},
		}
		if _, err := c.Run(job); err != nil {
			t.Fatal(err)
		}
		recs, _ := c.FS().Read("out")
		return order, recs
	}
	order, out1 := run()
	for i, k := range order {
		if int(k) != i {
			t.Fatalf("reduce key order %v, want 0..24 ascending (string sort would give 0,1,10,11,...)", order)
		}
	}
	_, out2 := run()
	if len(out1) != len(out2) {
		t.Fatalf("output size differs across runs: %d vs %d", len(out1), len(out2))
	}
	for i := range out1 {
		if !bytes.Equal(out1[i], out2[i]) {
			t.Fatalf("output record %d differs across runs: %q vs %q", i, out1[i], out2[i])
		}
	}
}

// Secondary sort via ValueCompare: values of one key arrive ordered by
// the comparator even though they were emitted shuffled across map tasks.
func TestSecondarySortValueCompare(t *testing.T) {
	c := newTestCluster(4, 2) // several map tasks: merge must interleave
	writeLines(c.FS(), "in", "9", "3", "7", "1", "8", "2", "6", "4", "5", "0")
	var mu sync.Mutex
	var got []string
	job := &Job{
		Name:        "secsort",
		Input:       []string{"in"},
		Output:      "out",
		NumReducers: 2,
		Map: func(_ *TaskContext, rec dfs.Record, emit Emit) error {
			emit([]byte("k"), rec)
			return nil
		},
		ValueCompare: func(a, b []byte) int { return bytes.Compare(a, b) },
		Reduce: func(_ *TaskContext, key []byte, values *Values, emit Emit) error {
			mu.Lock()
			defer mu.Unlock()
			for v, ok := values.Next(); ok; v, ok = values.Next() {
				got = append(got, string(v))
				emit(key, v)
			}
			return nil
		},
	}
	if _, err := c.Run(job); err != nil {
		t.Fatal(err)
	}
	if !sort.StringsAreSorted(got) {
		t.Fatalf("values arrived unsorted under ValueCompare: %v", got)
	}
	if len(got) != 10 {
		t.Fatalf("got %d values, want 10", len(got))
	}
}

// Composite keys with GroupKeyPrefix: one reduce call per 4-byte prefix,
// values streamed in full-key (suffix) order — Hadoop's grouping
// comparator pattern, which the pivot joins use to shuffle-sort their S
// partitions by pivot distance.
func TestGroupKeyPrefixSecondarySort(t *testing.T) {
	c := newTestCluster(3, 2)
	var lines []string
	for i := 0; i < 12; i++ {
		lines = append(lines, strconv.Itoa(i))
	}
	writeLines(c.FS(), "in", lines...)
	var mu sync.Mutex
	groups := make(map[uint32][]uint32) // group id → suffix arrival order
	var calls int
	job := &Job{
		Name:           "prefix",
		Input:          []string{"in"},
		Output:         "out",
		NumReducers:    2,
		GroupKeyPrefix: 4,
		Partition:      Uint32Partition,
		Map: func(_ *TaskContext, rec dfs.Record, emit Emit) error {
			n, _ := strconv.Atoi(string(rec))
			// key = group(n%2) | suffix(11-n): suffix descends as n rises.
			key := uint32Key(uint32(n % 2))
			key = binary.BigEndian.AppendUint32(key, uint32(11-n))
			emit(key, rec)
			return nil
		},
		Reduce: func(_ *TaskContext, key []byte, values *Values, emit Emit) error {
			g := binary.BigEndian.Uint32(key)
			mu.Lock()
			defer mu.Unlock()
			calls++
			for {
				full := values.Key()
				v, ok := values.Next()
				if !ok {
					break
				}
				if binary.BigEndian.Uint32(full) != g {
					t.Errorf("value of group %d carried key prefix %d", g, binary.BigEndian.Uint32(full))
				}
				groups[g] = append(groups[g], binary.BigEndian.Uint32(full[4:]))
				emit(key, v)
			}
			return nil
		},
	}
	if _, err := c.Run(job); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("reduce calls = %d, want 2 (one per group prefix)", calls)
	}
	for g, suffixes := range groups {
		if len(suffixes) != 6 {
			t.Fatalf("group %d got %d values, want 6", g, len(suffixes))
		}
		for i := 1; i < len(suffixes); i++ {
			if suffixes[i] < suffixes[i-1] {
				t.Fatalf("group %d suffixes not ascending: %v", g, suffixes)
			}
		}
	}
}

func TestSetupHooksRunPerTask(t *testing.T) {
	c := newTestCluster(2, 1) // 4 records, chunk=1 → 4 map tasks
	writeLines(c.FS(), "in", "1", "2", "3", "4")
	var mapSetups, reduceSetups int64
	var mu sync.Mutex
	job := &Job{
		Name:        "setup",
		Input:       []string{"in"},
		Output:      "out",
		NumReducers: 3,
		MapSetup: func(ctx *TaskContext) error {
			mu.Lock()
			mapSetups++
			mu.Unlock()
			if !strings.Contains(ctx.TaskID, "/map/") {
				t.Errorf("bad map TaskID %s", ctx.TaskID)
			}
			return nil
		},
		ReduceSetup: func(ctx *TaskContext) error {
			mu.Lock()
			reduceSetups++
			mu.Unlock()
			return nil
		},
		Map: func(_ *TaskContext, rec dfs.Record, emit Emit) error {
			emit(rec, rec)
			return nil
		},
		Reduce: func(_ *TaskContext, key []byte, _ *Values, emit Emit) error {
			emit(key, key)
			return nil
		},
	}
	if _, err := c.Run(job); err != nil {
		t.Fatal(err)
	}
	if mapSetups != 4 {
		t.Errorf("map setups = %d, want 4", mapSetups)
	}
	if reduceSetups != 3 {
		t.Errorf("reduce setups = %d, want 3", reduceSetups)
	}
}

func TestSideData(t *testing.T) {
	c := newTestCluster(2, 10)
	writeLines(c.FS(), "in", "x")
	job := &Job{
		Name:   "side",
		Input:  []string{"in"},
		Output: "out",
		Side:   map[string]any{"factor": 7},
		Map: func(ctx *TaskContext, rec dfs.Record, emit Emit) error {
			f := ctx.Side("factor").(int)
			emit(nil, []byte(strconv.Itoa(f)))
			if ctx.Side("missing") != nil {
				t.Error("missing side data should be nil")
			}
			return nil
		},
	}
	if _, err := c.Run(job); err != nil {
		t.Fatal(err)
	}
	recs, _ := c.FS().Read("out")
	if string(recs[0]) != "7" {
		t.Fatalf("side data not delivered: %s", recs[0])
	}
}

func TestUserCounters(t *testing.T) {
	c := newTestCluster(2, 2)
	writeLines(c.FS(), "in", "a", "b", "c")
	job := &Job{
		Name:   "counters",
		Input:  []string{"in"},
		Output: "out",
		Map: func(ctx *TaskContext, rec dfs.Record, emit Emit) error {
			ctx.Counter("records", 1)
			ctx.AddWork(10)
			emit(nil, rec)
			return nil
		},
	}
	stats, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Counters["records"] != 3 {
		t.Errorf("records counter = %d, want 3", stats.Counters["records"])
	}
	if stats.SimMapMakespan <= 0 {
		t.Error("expected positive simulated makespan")
	}
}

func TestTaskRetrySucceeds(t *testing.T) {
	c := newTestCluster(2, 2)
	writeLines(c.FS(), "in", "a", "b", "c", "d")
	var mu sync.Mutex
	failed := make(map[string]bool)
	job := wordCountJob("in", "out", false)
	job.MaxAttempts = 3
	job.FailTask = func(taskID string, attempt int) error {
		mu.Lock()
		defer mu.Unlock()
		if attempt == 1 && !failed[taskID] {
			failed[taskID] = true
			return errors.New("injected fault")
		}
		return nil
	}
	stats, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) == 0 {
		t.Fatal("fault injector never fired")
	}
	got := readCounts(t, c.FS(), "out")
	if got["a"]+got["b"]+got["c"]+got["d"] != 4 {
		t.Fatalf("wrong result after retries: %v", got)
	}
	if stats.MapInputRecords != 4 {
		t.Errorf("MapInputRecords = %d", stats.MapInputRecords)
	}
}

func TestTaskFailsAfterMaxAttempts(t *testing.T) {
	c := newTestCluster(2, 2)
	writeLines(c.FS(), "in", "a")
	job := wordCountJob("in", "out", false)
	job.MaxAttempts = 2
	job.FailTask = func(taskID string, attempt int) error {
		if strings.Contains(taskID, "/map/") {
			return errors.New("persistent fault")
		}
		return nil
	}
	if _, err := c.Run(job); err == nil {
		t.Fatal("expected job failure")
	} else if !strings.Contains(err.Error(), "after 2 attempts") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestMapErrorAborts(t *testing.T) {
	c := newTestCluster(1, 10)
	writeLines(c.FS(), "in", "boom")
	job := &Job{
		Name:   "err",
		Input:  []string{"in"},
		Output: "out",
		Map: func(_ *TaskContext, _ dfs.Record, _ Emit) error {
			return errors.New("map exploded")
		},
	}
	if _, err := c.Run(job); err == nil || !strings.Contains(err.Error(), "map exploded") {
		t.Fatalf("err = %v", err)
	}
}

func TestReduceErrorAborts(t *testing.T) {
	c := newTestCluster(1, 10)
	writeLines(c.FS(), "in", "x")
	job := wordCountJob("in", "out", false)
	job.Reduce = func(_ *TaskContext, _ []byte, _ *Values, _ Emit) error {
		return errors.New("reduce exploded")
	}
	if _, err := c.Run(job); err == nil || !strings.Contains(err.Error(), "reduce exploded") {
		t.Fatalf("err = %v", err)
	}
}

// A reduce function that returns without draining its group must not
// derail the following groups — the engine drains the remainder.
func TestReduceMaySkipValues(t *testing.T) {
	c := newTestCluster(2, 2)
	writeLines(c.FS(), "in", "a a a", "b b", "c")
	var mu sync.Mutex
	var keys []string
	job := &Job{
		Name:        "skip",
		Input:       []string{"in"},
		Output:      "out",
		NumReducers: 1,
		Map: func(_ *TaskContext, rec dfs.Record, emit Emit) error {
			for _, w := range strings.Fields(string(rec)) {
				emit([]byte(w), []byte(w))
			}
			return nil
		},
		Reduce: func(_ *TaskContext, key []byte, values *Values, emit Emit) error {
			mu.Lock()
			keys = append(keys, string(key))
			mu.Unlock()
			values.Next() // consume one value, abandon the rest
			emit(key, key)
			return nil
		},
	}
	js, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(keys)
	if strings.Join(keys, "") != "abc" {
		t.Fatalf("reduce keys = %v, want one call each for a, b, c", keys)
	}
	if js.ReduceGroups != 3 {
		t.Fatalf("ReduceGroups = %d, want 3", js.ReduceGroups)
	}
}

func TestJobValidation(t *testing.T) {
	c := newTestCluster(1, 10)
	if _, err := c.Run(&Job{Name: "nomap", Output: "o"}); err == nil {
		t.Error("job without Map accepted")
	}
	if _, err := c.Run(&Job{Name: "noout", Map: func(*TaskContext, dfs.Record, Emit) error { return nil }}); err == nil {
		t.Error("job without Output accepted")
	}
	job := wordCountJob("missing", "out", false)
	if _, err := c.Run(job); err == nil {
		t.Error("job with missing input accepted")
	}
	combined := wordCountJob("in", "out", true)
	combined.Reduce = nil
	if _, err := c.Run(combined); err == nil {
		t.Error("map-only job with a combiner accepted (combiner would be silently skipped)")
	}
}

func TestCustomPartitioner(t *testing.T) {
	c := newTestCluster(4, 100)
	writeLines(c.FS(), "in", "0", "1", "2", "3", "4", "5")
	var mu sync.Mutex
	seen := make(map[string]string) // key -> taskID
	job := &Job{
		Name:        "part",
		Input:       []string{"in"},
		Output:      "out",
		NumReducers: 3,
		Partition: func(key []byte, n int) int {
			v, _ := strconv.Atoi(string(key))
			return v % n
		},
		Map: func(_ *TaskContext, rec dfs.Record, emit Emit) error {
			emit(rec, rec)
			return nil
		},
		Reduce: func(ctx *TaskContext, key []byte, _ *Values, emit Emit) error {
			mu.Lock()
			seen[string(key)] = ctx.TaskID
			mu.Unlock()
			emit(key, key)
			return nil
		},
	}
	if _, err := c.Run(job); err != nil {
		t.Fatal(err)
	}
	for key, task := range seen {
		v, _ := strconv.Atoi(key)
		want := fmt.Sprintf("part/reduce/%d", v%3)
		if task != want {
			t.Errorf("key %s reduced on %s, want %s", key, task, want)
		}
	}
}

func TestDefaultPartitionInRange(t *testing.T) {
	for i := 0; i < 1000; i++ {
		k := []byte(strconv.Itoa(i))
		for _, n := range []int{1, 2, 7, 16} {
			if p := DefaultPartition(k, n); p < 0 || p >= n {
				t.Fatalf("DefaultPartition(%q,%d) = %d", k, n, p)
			}
		}
	}
}

func TestUint32Partition(t *testing.T) {
	for i := 0; i < 100; i++ {
		key := uint32Key(uint32(i))
		for _, n := range []int{1, 3, 16} {
			if p := Uint32Partition(key, n); p != i%n {
				t.Fatalf("Uint32Partition(%d,%d) = %d, want %d", i, n, p, i%n)
			}
		}
	}
	if p := Uint32Partition([]byte{1}, 4); p != 0 {
		t.Fatalf("short key partition = %d, want 0", p)
	}
}

func TestMakespan(t *testing.T) {
	tests := []struct {
		work  []int64
		nodes int
		want  int64
	}{
		{nil, 4, 0},
		{[]int64{10}, 4, 10},
		{[]int64{5, 5, 5, 5}, 2, 10},
		{[]int64{8, 1, 1, 1, 1}, 2, 8},
		{[]int64{3, 3, 3}, 1, 9},
	}
	for _, tc := range tests {
		if got := makespan(tc.work, tc.nodes); got != tc.want {
			t.Errorf("makespan(%v,%d) = %d, want %d", tc.work, tc.nodes, got, tc.want)
		}
	}
}

// Property: the shuffle delivers every emitted record to exactly one
// reducer, for arbitrary inputs, cluster sizes and reducer counts.
func TestExactlyOnceDeliveryQuick(t *testing.T) {
	f := func(words []string, nodesRaw, reducersRaw, chunkRaw uint8) bool {
		nodes := int(nodesRaw)%8 + 1
		reducers := int(reducersRaw)%8 + 1
		chunk := int(chunkRaw)%5 + 1
		c := NewCluster(dfs.New(chunk), nodes)
		lines := make([]dfs.Record, 0, len(words))
		expected := make(map[string]int)
		for i, w := range words {
			// Sanitize into a deterministic, printable key.
			key := fmt.Sprintf("w%d_%d", len(w), i%7)
			lines = append(lines, dfs.Record(key))
			expected[key]++
		}
		c.FS().Write("in", lines)
		var mu sync.Mutex
		delivered := make(map[string]int)
		job := &Job{
			Name:        "once",
			Input:       []string{"in"},
			Output:      "out",
			NumReducers: reducers,
			Map: func(_ *TaskContext, rec dfs.Record, emit Emit) error {
				emit(rec, rec)
				return nil
			},
			Reduce: func(_ *TaskContext, key []byte, values *Values, emit Emit) error {
				n := len(values.Collect())
				mu.Lock()
				delivered[string(key)] += n
				mu.Unlock()
				return nil
			},
		}
		if _, err := c.Run(job); err != nil {
			return false
		}
		if len(delivered) != len(expected) {
			return false
		}
		for k, v := range expected {
			if delivered[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: results are independent of cluster size and chunk size —
// parallelism must never change the answer.
func TestDeterminismAcrossClusterShapes(t *testing.T) {
	lines := make([]string, 100)
	for i := range lines {
		lines[i] = fmt.Sprintf("k%d v", i%13)
	}
	var baseline map[string]int
	for _, shape := range []struct{ nodes, chunk int }{{1, 1000}, {2, 7}, {8, 3}, {16, 1}} {
		c := newTestCluster(shape.nodes, shape.chunk)
		writeLines(c.FS(), "in", lines...)
		if _, err := c.Run(wordCountJob("in", "out", true)); err != nil {
			t.Fatal(err)
		}
		got := readCounts(t, c.FS(), "out")
		if baseline == nil {
			baseline = got
			continue
		}
		if len(got) != len(baseline) {
			t.Fatalf("shape %+v changed result size", shape)
		}
		for k, v := range baseline {
			if got[k] != v {
				t.Fatalf("shape %+v: count[%s] = %d, want %d", shape, k, got[k], v)
			}
		}
	}
}

func TestEmptyInputFile(t *testing.T) {
	c := newTestCluster(2, 4)
	c.FS().Write("in", nil)
	stats, err := c.Run(wordCountJob("in", "out", false))
	if err != nil {
		t.Fatal(err)
	}
	if stats.MapTasks != 0 || stats.OutputRecords != 0 {
		t.Fatalf("empty input stats = %+v", stats)
	}
	recs, err := c.FS().Read("out")
	if err != nil || len(recs) != 0 {
		t.Fatalf("output = %v, %v", recs, err)
	}
}

func TestReduceTaskRetry(t *testing.T) {
	c := newTestCluster(2, 2)
	writeLines(c.FS(), "in", "a", "b")
	var mu sync.Mutex
	failed := make(map[string]bool)
	job := wordCountJob("in", "out", false)
	job.MaxAttempts = 2
	job.FailTask = func(taskID string, attempt int) error {
		if !strings.Contains(taskID, "/reduce/") {
			return nil
		}
		mu.Lock()
		defer mu.Unlock()
		if !failed[taskID] {
			failed[taskID] = true
			return errors.New("injected reduce fault")
		}
		return nil
	}
	if _, err := c.Run(job); err != nil {
		t.Fatal(err)
	}
	if len(failed) == 0 {
		t.Fatal("reduce fault injector never fired")
	}
	got := readCounts(t, c.FS(), "out")
	if got["a"] != 1 || got["b"] != 1 {
		t.Fatalf("wrong result after reduce retries: %v", got)
	}
}

// A reduce retry must replay the merge stream from the start: the second
// attempt sees every group, fully ordered, even though the first attempt
// consumed part of the stream before failing.
func TestReduceRetryReplaysStream(t *testing.T) {
	c := newTestCluster(2, 2)
	writeLines(c.FS(), "in", "a b c d", "a b c d")
	var mu sync.Mutex
	attempts := 0
	counted := make(map[string]int)
	job := &Job{
		Name:        "replay",
		Input:       []string{"in"},
		Output:      "out",
		NumReducers: 1,
		MaxAttempts: 2,
		Map: func(_ *TaskContext, rec dfs.Record, emit Emit) error {
			for _, w := range strings.Fields(string(rec)) {
				emit([]byte(w), []byte("1"))
			}
			return nil
		},
		Reduce: func(_ *TaskContext, key []byte, values *Values, emit Emit) error {
			n := len(values.Collect())
			mu.Lock()
			defer mu.Unlock()
			// Fail mid-stream on the first attempt, after consuming "a".
			if attempts == 0 && string(key) == "a" {
				attempts++
				return errors.New("mid-stream fault")
			}
			counted[string(key)] = n
			emit(key, key)
			return nil
		},
	}
	if _, err := c.Run(job); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b", "c", "d"} {
		if counted[k] != 2 {
			t.Fatalf("after retry, key %s counted %d values, want 2 (stream not replayed?)", k, counted[k])
		}
	}
}

func TestMoreReducersThanNodes(t *testing.T) {
	c := newTestCluster(2, 10)
	writeLines(c.FS(), "in", "a b c d e f g h")
	job := wordCountJob("in", "out", false)
	job.NumReducers = 16
	stats, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReduceTasks != 16 {
		t.Fatalf("ReduceTasks = %d", stats.ReduceTasks)
	}
	if got := readCounts(t, c.FS(), "out"); len(got) != 8 {
		t.Fatalf("got %d words", len(got))
	}
}

func TestNewClusterPanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCluster(dfs.New(0), 0)
}

func BenchmarkWordCount(b *testing.B) {
	lines := make([]string, 2000)
	for i := range lines {
		lines[i] = fmt.Sprintf("alpha beta g%d delta", i%97)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := newTestCluster(8, 256)
		writeLines(c.FS(), "in", lines...)
		if _, err := c.Run(wordCountJob("in", "out", true)); err != nil {
			b.Fatal(err)
		}
	}
}

// Properties of the simulated scheduler: the makespan of any task set on
// n nodes is at least the largest task and at most the serial total, and
// adding nodes never hurts.
func TestMakespanBoundsQuick(t *testing.T) {
	f := func(workRaw []uint16, nRaw uint8) bool {
		n := int(nRaw)%16 + 1
		work := make([]int64, len(workRaw))
		var total, max int64
		for i, w := range workRaw {
			work[i] = int64(w)
			total += int64(w)
			if int64(w) > max {
				max = int64(w)
			}
		}
		m := makespan(work, n)
		if len(work) == 0 {
			return m == 0
		}
		if m < max || m > total {
			return false
		}
		return makespan(work, n+1) <= m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestReduceSkewAccounting(t *testing.T) {
	c := newTestCluster(4, 2)
	writeLines(c.FS(), "in", "a b c d e f g h", "a a a a a a a a")
	job := &Job{
		Name:   "skew",
		Input:  []string{"in"},
		Output: "out",
		Map: func(_ *TaskContext, rec dfs.Record, emit Emit) error {
			for _, w := range strings.Fields(string(rec)) {
				emit([]byte(w), []byte("1"))
			}
			return nil
		},
		Reduce: func(_ *TaskContext, key []byte, values *Values, emit Emit) error {
			emit(key, key)
			return nil
		},
		NumReducers: 4,
	}
	js, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(js.ReduceInputRecords) != 4 {
		t.Fatalf("per-reducer records = %v, want 4 entries", js.ReduceInputRecords)
	}
	var total int64
	for _, n := range js.ReduceInputRecords {
		total += n
	}
	if total != js.ShuffleRecords {
		t.Fatalf("per-reducer sum %d != shuffle records %d", total, js.ShuffleRecords)
	}
	// The duplicated word lands on one reducer: skew must exceed 1; and it
	// can never exceed the reducer count.
	skew := js.ReduceSkew()
	if skew <= 1 || skew > 4 {
		t.Fatalf("skew = %v, want in (1, 4]", skew)
	}
}

func TestReduceSkewPerfectBalance(t *testing.T) {
	js := JobStats{ReduceInputRecords: []int64{5, 5, 5, 5}}
	if s := js.ReduceSkew(); s != 1 {
		t.Fatalf("balanced skew = %v, want 1", s)
	}
	empty := JobStats{ReduceInputRecords: []int64{0, 0}}
	if s := empty.ReduceSkew(); s != 0 {
		t.Fatalf("empty skew = %v, want 0", s)
	}
	none := JobStats{}
	if s := none.ReduceSkew(); s != 0 {
		t.Fatalf("no-reduce skew = %v, want 0", s)
	}
}

// The k-way merge itself, on adversarial run shapes: interleaved,
// disjoint, duplicate-heavy and empty runs must come out fully sorted
// with every record present exactly once.
func TestMergerProperties(t *testing.T) {
	runs := [][]KV{
		{{Key: []byte("a"), Value: []byte("1")}, {Key: []byte("c"), Value: []byte("2")}, {Key: []byte("e"), Value: []byte("3")}},
		{},
		{{Key: []byte("a"), Value: []byte("4")}, {Key: []byte("a"), Value: []byte("5")}, {Key: []byte("b"), Value: []byte("6")}},
		{{Key: []byte("e"), Value: []byte("7")}},
	}
	m := newMerger(runs, nil)
	var keys, vals []string
	for {
		kv, ok := m.peek()
		if !ok {
			break
		}
		m.pop()
		keys = append(keys, string(kv.Key))
		vals = append(vals, string(kv.Value))
	}
	if got := strings.Join(keys, ""); got != "aaabcee" {
		t.Fatalf("merged key order = %q, want aaabcee", got)
	}
	// Ties break by run index: run 0's "a" precedes run 2's.
	if got := strings.Join(vals, ""); got != "1456237" {
		t.Fatalf("merged value order = %q, want 1456237 (run-order ties)", got)
	}
}

// runParallel must stop handing out task indices once a worker has
// failed: only work already started may drain. A failing first task over
// a huge task count must leave almost all of it undispatched.
func TestRunParallelShortCircuits(t *testing.T) {
	c := newTestCluster(4, 1)
	var calls atomic.Int64
	err := c.runParallel(100000, func(i int) error {
		calls.Add(1)
		if i == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v, want boom", err)
	}
	// Task 0 fails immediately; after that at most the in-flight tasks
	// plus a dispatch race's worth may run. Anything near the full count
	// means the dispatcher kept going.
	if n := calls.Load(); n > 1000 {
		t.Fatalf("ran %d of 100000 tasks after an early failure", n)
	}
}

// A failing map task must short-circuit a large job end-to-end: the
// cluster stops dispatching remaining splits instead of mapping them all
// and then discarding the result.
func TestFailingMapTaskShortCircuitsJob(t *testing.T) {
	fs := dfs.New(1) // one record per split
	const splits = 5000
	lines := make([]string, splits)
	for i := range lines {
		lines[i] = strconv.Itoa(i)
	}
	writeLines(fs, "in", lines...)
	c := NewCluster(fs, 2)
	var mapped atomic.Int64
	job := &Job{
		Name:   "failfast",
		Input:  []string{"in"},
		Output: "out",
		Map: func(_ *TaskContext, rec dfs.Record, emit Emit) error {
			mapped.Add(1)
			if string(rec) == "0" {
				return errors.New("poisoned record")
			}
			emit(rec, rec)
			return nil
		},
		Reduce: func(_ *TaskContext, key []byte, values *Values, emit Emit) error {
			emit(key, key)
			return nil
		},
	}
	if _, err := c.Run(job); err == nil {
		t.Fatal("job with a poisoned split succeeded")
	}
	if n := mapped.Load(); n > splits/10 {
		t.Fatalf("mapped %d of %d records after the poisoned split failed", n, splits)
	}
}
