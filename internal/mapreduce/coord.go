package mapreduce

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"knnjoin/internal/dfs"
	"knnjoin/internal/obs"
)

// The coordinator side of the distributed engine: job/task state, lease
// bookkeeping, and the scheduling decisions behind /poll, /done and
// /heartbeat. All state is guarded by distEngine.mu; handlers do no I/O
// under the lock — output assembly happens on the job's driving
// goroutine after the last task commits.
//
// Task lifecycle: pending → running → done. A running task carries one
// or more active attempts (more than one only under speculation). An
// attempt disappears by reporting completion, or by missing heartbeats
// past its lease — in which case the task returns to pending and is
// re-dispatched. Completion is a commit gate: the first successful
// report wins the task, later reports (a presumed-dead worker coming
// back, or the loser of a speculative race) are acknowledged and
// discarded, which is what makes task attempts exactly-once in effect
// even though execution is at-least-once.

// Task states of the distributed scheduler.
const (
	taskPending = iota
	taskRunning
	taskDone
)

// attemptRec is one in-flight attempt's lease record.
type attemptRec struct {
	attempt  int
	worker   int
	started  time.Time
	deadline time.Time
}

// distTask is the coordinator's state for one map or reduce task.
type distTask struct {
	phase    string
	index    int
	state    int
	attempts int // attempts dispatched so far
	failures int // error-reported attempts (not lease losses)
	active   []attemptRec

	// Committed results, valid once state == taskDone.
	mapRuns      []wireMapRun
	output       wireRun
	records      int64
	groups       int64
	work         int64
	spilledRuns  int64
	spilledBytes int64
	counters     map[string]int64
}

// coordJob is the coordinator's state for the one running job.
type coordJob struct {
	id          int64
	job         *Job
	nReduce     int
	mapOnly     bool
	maxAttempts int
	dir         string

	maps        []distTask
	reduces     []distTask
	mapsDone    int
	reducesDone int

	// runProducer maps a committed run file path to the map task that
	// produced it, so a reducer reporting a damaged run names the task
	// to re-execute.
	runProducer map[string]int

	redispatches  int
	maxRedispatch int

	err       error
	completed bool
	finished  chan struct{}

	start     time.Time
	mapDoneAt time.Time
	stats     JobStats

	// span is the coordinator's job span (nil when tracing is off);
	// scheduling decisions — lease losses, speculation, duplicate
	// discards, bad-run repairs — land on it as events.
	span *obs.Span
}

// task returns the addressed task, or nil.
func (j *coordJob) task(phase string, index int) *distTask {
	var ts []distTask
	switch phase {
	case "map":
		ts = j.maps
	case "reduce":
		ts = j.reduces
	default:
		return nil
	}
	if index < 0 || index >= len(ts) {
		return nil
	}
	return &ts[index]
}

// finishLocked ends the job exactly once. Caller holds e.mu.
func (e *distEngine) finishLocked(j *coordJob, err error) {
	if j.completed {
		return
	}
	j.completed = true
	j.err = err
	close(j.finished)
}

// expireLeases drops attempts whose lease lapsed and returns their
// tasks to pending for re-dispatch. A job that keeps losing attempts
// (e.g. a fault plan killing every worker that touches a task) fails
// once the re-dispatch budget is exhausted rather than spinning forever.
// Caller holds e.mu.
func (e *distEngine) expireLeases(j *coordJob, now time.Time) {
	for _, tasks := range [][]distTask{j.maps, j.reduces} {
		for i := range tasks {
			t := &tasks[i]
			if t.state != taskRunning {
				continue
			}
			kept := t.active[:0]
			for _, a := range t.active {
				if a.deadline.After(now) {
					kept = append(kept, a)
				}
			}
			if len(kept) == len(t.active) {
				continue
			}
			t.active = kept
			if len(t.active) == 0 {
				t.state = taskPending
				j.span.Event("lease-expired",
					"task", fmt.Sprintf("%s/%s/%d", j.job.Name, t.phase, t.index))
				j.stats.ReexecutedAttempts++
				e.mReexec.Inc()
				j.redispatches++
				if j.redispatches > j.maxRedispatch {
					e.finishLocked(j, fmt.Errorf("mapreduce: job %q: task %s/%d re-dispatched %d times — giving up",
						j.job.Name, t.phase, t.index, j.redispatches))
					return
				}
			}
		}
	}
}

// assign answers one /poll: a pending map task first, then — once every
// map has committed — a pending reduce task, then (when configured) a
// speculative backup attempt against the longest-running straggler.
func (e *distEngine) assign(worker int) pollResponse {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed.Load() {
		return pollResponse{Shutdown: true}
	}
	j := e.cur
	if j == nil || j.completed {
		return pollResponse{WaitMs: 10}
	}
	now := time.Now()
	e.expireLeases(j, now)
	if j.completed {
		return pollResponse{WaitMs: 10}
	}
	for i := range j.maps {
		if t := &j.maps[i]; t.state == taskPending {
			return pollResponse{Task: e.assignTask(j, t, worker, now)}
		}
	}
	if j.mapsDone == len(j.maps) {
		for i := range j.reduces {
			if t := &j.reduces[i]; t.state == taskPending {
				return pollResponse{Task: e.assignTask(j, t, worker, now)}
			}
		}
	}
	if e.cfg.SpeculativeAfter > 0 {
		cands := j.maps
		if j.mapsDone == len(j.maps) {
			cands = j.reduces
		}
		for i := range cands {
			t := &cands[i]
			// Back up a task only when its sole attempt has been running
			// past the speculation threshold on some other worker.
			if t.state == taskRunning && len(t.active) == 1 &&
				t.active[0].worker != worker &&
				now.Sub(t.active[0].started) >= e.cfg.SpeculativeAfter {
				j.span.Event("speculative-attempt",
					"task", fmt.Sprintf("%s/%s/%d", j.job.Name, t.phase, t.index),
					"worker", fmt.Sprint(worker))
				j.stats.SpeculativeAttempts++
				e.mSpec.Inc()
				return pollResponse{Task: e.assignTask(j, t, worker, now)}
			}
		}
	}
	return pollResponse{WaitMs: 10}
}

// assignTask dispatches a new attempt of t to worker. Caller holds e.mu.
func (e *distEngine) assignTask(j *coordJob, t *distTask, worker int, now time.Time) *wireTask {
	t.attempts++
	att := t.attempts
	t.state = taskRunning
	lease := e.lease()
	t.active = append(t.active, attemptRec{attempt: att, worker: worker,
		started: now, deadline: now.Add(lease)})
	wt := &wireTask{
		JobID: j.id, JobName: j.job.Name, Kind: j.job.Kind, Spec: j.job.Spec,
		Phase: t.phase, Index: t.index, Attempt: att,
		NumReducers: j.nReduce, MapOnly: j.mapOnly,
		SplitIndex: t.index,
		RunDir:     filepath.Join(j.dir, fmt.Sprintf("%s%d-a%d-w%d", t.phase, t.index, att, worker)),
		LeaseMs:    lease.Milliseconds(),
	}
	ctx := j.span.Context()
	wt.TraceID, wt.SpanParent = ctx.TraceID, ctx.SpanID
	if att > 1 {
		j.span.Event("re-dispatch",
			"task", fmt.Sprintf("%s/%s/%d", j.job.Name, t.phase, t.index),
			"attempt", fmt.Sprint(att),
			"worker", fmt.Sprint(worker))
	}
	if t.phase == "reduce" {
		// The fan-in list is derived at assignment time from currently
		// committed map runs, so an attempt dispatched after a bad-run
		// repair sees the re-executed producer's fresh files.
		for mi := range j.maps {
			for _, mr := range j.maps[mi].mapRuns {
				if mr.Reducer == t.index {
					wt.Runs = append(wt.Runs, wireRun{Path: mr.Path, Records: mr.Records, Bytes: mr.Bytes})
				}
			}
		}
	}
	return wt
}

// complete processes one /done report.
func (e *distEngine) complete(c *completion) completionResponse {
	e.mu.Lock()
	defer e.mu.Unlock()
	j := e.cur
	if j == nil || j.completed || c.JobID != j.id {
		return completionResponse{}
	}
	t := j.task(c.Phase, c.Index)
	if t == nil {
		return completionResponse{}
	}
	for i, a := range t.active {
		if a.attempt == c.Attempt {
			t.active = append(t.active[:i], t.active[i+1:]...)
			break
		}
	}
	if c.Err != "" {
		if len(c.BadRuns) > 0 {
			// Damaged intermediates are an environment failure, not a task
			// failure: un-commit the producing map tasks so they re-execute,
			// and retry this task without charging its failure budget.
			for _, path := range c.BadRuns {
				mi, ok := j.runProducer[path]
				if !ok {
					continue
				}
				m := &j.maps[mi]
				if m.state != taskDone {
					continue
				}
				for _, mr := range m.mapRuns {
					delete(j.runProducer, mr.Path)
				}
				m.mapRuns = nil
				m.counters = nil
				m.state = taskPending
				j.mapsDone--
				j.span.Event("bad-run-repair", "path", path,
					"producer", fmt.Sprintf("%s/map/%d", j.job.Name, mi))
				j.stats.ReexecutedAttempts++
				e.mReexec.Inc()
			}
			j.stats.ReexecutedAttempts++
			e.mReexec.Inc()
		} else {
			t.failures++
			if t.failures >= j.maxAttempts {
				e.finishLocked(j, fmt.Errorf("mapreduce: task %s/%s/%d failed after %d attempts: %s",
					j.job.Name, c.Phase, c.Index, t.failures, c.Err))
				return completionResponse{}
			}
		}
		if t.state == taskRunning && len(t.active) == 0 {
			t.state = taskPending
		}
		return completionResponse{}
	}
	if t.state == taskDone {
		// Duplicate completion — a speculative loser or a presumed-dead
		// worker coming back. The first commit won; discard this one.
		j.span.Event("duplicate-discarded",
			"task", fmt.Sprintf("%s/%s/%d", j.job.Name, c.Phase, c.Index),
			"attempt", fmt.Sprint(c.Attempt),
			"worker", fmt.Sprint(c.Worker))
		return completionResponse{}
	}
	t.state = taskDone
	t.active = nil
	t.mapRuns = c.MapRuns
	t.output = c.Output
	t.records = c.Records
	t.groups = c.Groups
	t.work = c.Work
	t.spilledRuns = c.SpilledRuns
	t.spilledBytes = c.SpilledBytes
	t.counters = c.Counters
	j.stats.WorkerTasks++
	e.mTasks.Inc()
	if c.Phase == "map" {
		for _, mr := range c.MapRuns {
			j.runProducer[mr.Path] = c.Index
		}
		j.mapsDone++
		if j.mapsDone == len(j.maps) && j.mapDoneAt.IsZero() {
			j.mapDoneAt = time.Now()
		}
	} else {
		j.reducesDone++
	}
	if j.mapsDone == len(j.maps) && j.reducesDone == len(j.reduces) {
		e.finishLocked(j, nil)
	}
	return completionResponse{Accepted: true}
}

// heartbeat renews an attempt's lease.
func (e *distEngine) heartbeat(h *heartbeatMsg) heartbeatResponse {
	e.mu.Lock()
	defer e.mu.Unlock()
	j := e.cur
	if j == nil || j.completed || h.JobID != j.id {
		return heartbeatResponse{Abandoned: true}
	}
	t := j.task(h.Phase, h.Index)
	if t == nil || t.state != taskRunning {
		return heartbeatResponse{Abandoned: true}
	}
	for i := range t.active {
		if t.active[i].attempt == h.Attempt {
			t.active[i].deadline = time.Now().Add(e.lease())
			return heartbeatResponse{}
		}
	}
	return heartbeatResponse{Abandoned: true}
}

// run executes one job on the worker pool: install the task table, wait
// for the commit of every task (watchdogging leases and worker
// liveness), then assemble the output and statistics from the committed
// attempts — and only from those, which is why job output is
// byte-identical to the in-process engine no matter how many attempts
// died or duplicated along the way.
func (e *distEngine) run(job *Job, nReduce, maxAttempts int) (*JobStats, error) {
	splits, err := e.fs.Splits(job.Input...)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", job.Name, err)
	}
	id := e.jobSeq.Add(1)
	j := &coordJob{
		id: id, job: job, nReduce: nReduce, mapOnly: job.Reduce == nil,
		maxAttempts: maxAttempts,
		dir:         filepath.Join(e.dir, fmt.Sprintf("job-%d", id)),
		runProducer: make(map[string]int),
		finished:    make(chan struct{}),
		start:       time.Now(),
	}
	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", job.Name, err)
	}
	defer os.RemoveAll(j.dir)
	j.maps = make([]distTask, len(splits))
	for i := range j.maps {
		j.maps[i] = distTask{phase: "map", index: i, state: taskPending}
	}
	if !j.mapOnly {
		j.reduces = make([]distTask, nReduce)
		for i := range j.reduces {
			j.reduces[i] = distTask{phase: "reduce", index: i, state: taskPending}
		}
	}
	j.maxRedispatch = 16 + 8*(len(j.maps)+len(j.reduces))
	j.stats = JobStats{Job: job.Name, MapTasks: len(j.maps), ReduceTasks: len(j.reduces)}
	e.mJobs.Inc()
	j.span = e.tracer.StartSpan("job:"+job.Name, e.rootSpan.Context())
	j.span.SetAttr("kind", job.Kind)
	j.span.SetAttr("maps", fmt.Sprint(len(j.maps)))
	j.span.SetAttr("reduces", fmt.Sprint(len(j.reduces)))
	defer j.span.End()

	e.mu.Lock()
	if e.closed.Load() {
		e.mu.Unlock()
		return nil, fmt.Errorf("mapreduce: job %q: cluster closed", job.Name)
	}
	if e.cur != nil {
		name := e.cur.job.Name
		e.mu.Unlock()
		return nil, fmt.Errorf("mapreduce: job %q: cluster already running job %q", job.Name, name)
	}
	if len(j.maps)+len(j.reduces) == 0 {
		j.completed = true
		close(j.finished)
	}
	e.cur = j
	e.mu.Unlock()

	// Drive the job: tasks commit via /done; the watchdog expires leases
	// even when no worker is polling, and aborts if every worker died.
	tick := time.NewTicker(25 * time.Millisecond)
	defer tick.Stop()
	for running := true; running; {
		select {
		case <-j.finished:
			running = false
		case <-tick.C:
			e.mu.Lock()
			if !j.completed {
				if e.live.Load() == 0 {
					e.finishLocked(j, fmt.Errorf("mapreduce: job %q: all %d worker processes exited",
						job.Name, e.cfg.Workers))
				} else {
					e.expireLeases(j, time.Now())
				}
			}
			e.mu.Unlock()
		}
	}
	e.mu.Lock()
	e.cur = nil
	jerr := j.err
	e.mu.Unlock()
	j.span.SetAttr("reexecuted", fmt.Sprint(j.stats.ReexecutedAttempts))
	j.span.SetAttr("speculative", fmt.Sprint(j.stats.SpeculativeAttempts))
	if jerr != nil {
		j.span.SetAttr("outcome", "error")
		j.span.SetAttr("err", jerr.Error())
		return nil, jerr
	}
	j.span.SetAttr("outcome", "ok")
	return e.assemble(j)
}

// assemble reads the committed output files — map tasks in index order
// for map-only jobs, reduce tasks in index order otherwise, the exact
// concatenation order of the in-process engine — writes the job output,
// and folds the committed attempts' metrics into JobStats.
func (e *distEngine) assemble(j *coordJob) (*JobStats, error) {
	stats := &j.stats
	outTasks := j.reduces
	if j.mapOnly {
		outTasks = j.maps
	}
	var out []dfs.Record
	for i := range outTasks {
		t := &outTasks[i]
		if t.output.Path == "" {
			continue
		}
		recs, err := readFramedFile(t.output.Path, t.output.Records)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: job %q: %w", j.job.Name, err)
		}
		out = append(out, recs...)
	}
	if err := e.fs.Write(j.job.Output, out); err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", j.job.Name, err)
	}
	stats.OutputRecords = int64(len(out))

	counters := NewCounterSet()
	mapWork := make([]int64, len(j.maps))
	if !j.mapOnly {
		stats.ReduceInputRecords = make([]int64, j.nReduce)
	}
	for i := range j.maps {
		t := &j.maps[i]
		stats.MapInputRecords += t.records
		mapWork[i] = t.work
		stats.SpilledRuns += t.spilledRuns
		stats.SpilledBytes += t.spilledBytes
		for _, mr := range t.mapRuns {
			stats.ShuffleBytes += mr.Bytes
			stats.ShuffleRecords += mr.Records
			stats.ReduceInputRecords[mr.Reducer] += mr.Records
		}
		for name, v := range t.counters { //lint:allow maprange: integer counter merge, CounterSet.Add is commutative
			counters.Add(name, v)
		}
	}
	stats.SimMapMakespan = makespan(mapWork, e.nodes)
	if !j.mapOnly {
		reduceWork := make([]int64, len(j.reduces))
		for i := range j.reduces {
			t := &j.reduces[i]
			stats.ReduceGroups += t.groups
			reduceWork[i] = t.work
			stats.SpilledRuns += t.spilledRuns
			stats.SpilledBytes += t.spilledBytes
			for name, v := range t.counters { //lint:allow maprange: integer counter merge, CounterSet.Add is commutative
				counters.Add(name, v)
			}
		}
		stats.SimReduceMakespan = makespan(reduceWork, e.nodes)
	}
	stats.Counters = counters.Snapshot()
	e.mShufB.Add(stats.ShuffleBytes)
	e.mSpillB.Add(stats.SpilledBytes)
	end := time.Now()
	if j.mapDoneAt.IsZero() {
		j.mapDoneAt = end
	}
	stats.MapWall = j.mapDoneAt.Sub(j.start)
	stats.ReduceWall = end.Sub(j.mapDoneAt)
	return stats, nil
}
