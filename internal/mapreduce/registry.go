package mapreduce

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
)

// The job-kind registry solves the one problem that separates the
// in-process engine from a real cluster: a Job is made of Go closures
// (Map, Reduce, Combine, Side values), and closures cannot be sent to
// another process. Instead of serializing functions, each driver package
// registers a named constructor — a Kind — that rebuilds its job from a
// small gob-encoded spec. Worker processes are re-executed copies of the
// same binary, so every init-time registration the coordinator saw is
// linked into the worker too; shipping (kind, spec) across the wire is
// then enough to reconstruct the identical Map/Reduce functions on the
// other side.

var (
	kindMu sync.RWMutex
	kinds  = map[string]func(spec []byte) (*Job, error){}
)

// Kind is a registered job constructor: a factory that builds a *Job
// from a typed spec and stamps it with the registry name, so the same
// job can be rebuilt by kind name in a worker process.
type Kind[T any] struct {
	name  string
	build func(T) *Job
}

// DefineKind registers a job constructor under a unique name, to be
// called from package init (or package-level var initialization) of the
// driver that owns the job. The build function must be deterministic: a
// worker rebuilding the job from the same spec must obtain functions
// with identical behaviour, or distributed output diverges from the
// in-process engine. Registering the same name twice panics — kinds are
// a closed, link-time registry, and a collision is a programming error.
func DefineKind[T any](name string, build func(T) *Job) Kind[T] {
	if name == "" {
		panic("mapreduce: DefineKind with empty name")
	}
	kindMu.Lock()
	defer kindMu.Unlock()
	if _, dup := kinds[name]; dup {
		panic(fmt.Sprintf("mapreduce: job kind %q registered twice", name))
	}
	kinds[name] = func(spec []byte) (*Job, error) {
		var v T
		if err := gob.NewDecoder(bytes.NewReader(spec)).Decode(&v); err != nil {
			return nil, fmt.Errorf("mapreduce: decode spec for kind %q: %w", name, err)
		}
		return build(v), nil
	}
	return Kind[T]{name: name, build: build}
}

// New builds the job from spec and stamps Kind/Spec so a distributed
// cluster can re-execute its tasks in worker processes. The spec must be
// gob-encodable (exported fields only); since spec types are fixed at
// compile time by the registering driver, an encoding failure is a
// programming error and panics.
func (k Kind[T]) New(spec T) *Job {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&spec); err != nil {
		panic(fmt.Sprintf("mapreduce: encode spec for kind %q: %v", k.name, err))
	}
	job := k.build(spec)
	job.Kind = k.name
	job.Spec = buf.Bytes()
	return job
}

// buildKindJob rebuilds a job from its registered kind and encoded spec —
// the worker-side entry into the registry.
func buildKindJob(kind string, spec []byte) (*Job, error) {
	kindMu.RLock()
	build, ok := kinds[kind]
	kindMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("mapreduce: unknown job kind %q (not linked into this binary?)", kind)
	}
	return build(spec)
}
