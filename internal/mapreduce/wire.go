package mapreduce

// The coordinator/worker wire protocol: HTTP POSTs with JSON bodies, in
// the style of internal/serve. Workers pull — the coordinator never
// dials a worker — so a dead worker is simply one that stops polling and
// heartbeating, and recovery is entirely lease-driven:
//
//	POST /poll      pollRequest      → pollResponse (a task, or a wait)
//	POST /done      completion       → completionResponse
//	POST /heartbeat heartbeatMsg     → heartbeatResponse
//	GET  /dfs/...   chunk service    (dfs.Server over the cluster store)
//
// Intermediate run files are exchanged by path: coordinator and workers
// share the cluster's scratch directory (one machine, many processes —
// the shape of the paper's one-box "cluster"), while job input and
// output records go through the mounted dfs chunk service.

// wireRun names one committed sorted-run file a reduce task must merge.
type wireRun struct {
	Path    string
	Records int64
	Bytes   int64
}

// wireMapRun is one committed map-side run: wireRun plus the reducer it
// is destined for.
type wireMapRun struct {
	Reducer int
	Path    string
	Records int64
	Bytes   int64
}

// wireTask is one task assignment, self-contained: the job identity
// (kind + spec, enough to rebuild the job's functions in the worker),
// the task coordinates, and the attempt's private run directory.
type wireTask struct {
	JobID   int64
	JobName string
	Kind    string
	Spec    []byte

	Phase   string // "map" or "reduce"
	Index   int
	Attempt int

	NumReducers int
	MapOnly     bool

	// SplitIndex locates a map task's input split in the job's global
	// split list (the worker re-derives the list from job.Input through
	// the chunk service, which cuts splits identically).
	SplitIndex int

	// Runs lists a reduce task's fan-in: the committed map runs for this
	// reducer, in map-task order — the merge's tie-breaking seq order,
	// identical to the in-process engine's.
	Runs []wireRun

	// RunDir is the attempt-private directory for run and output files.
	// Attempts never share a directory, so a dead attempt's half-written
	// files are simply never referenced — idempotency by isolation, on
	// top of each file's own tmp+rename commit.
	RunDir string

	// LeaseMs is how long the coordinator will wait between heartbeats
	// before presuming the attempt dead and re-dispatching the task.
	LeaseMs int64

	// TraceID and SpanParent propagate the coordinator's job span to
	// the worker, which parents its task-attempt span under them. Both
	// empty when tracing is disabled; they ride only this request-side
	// struct, never a response, so enabling tracing cannot perturb any
	// output byte.
	TraceID    string
	SpanParent string
}

// pollRequest asks for a task.
type pollRequest struct {
	Worker int
}

// pollResponse carries an assignment, a backoff hint, or a shutdown.
type pollResponse struct {
	Task     *wireTask
	WaitMs   int64
	Shutdown bool
}

// completion reports a finished attempt, success or failure.
type completion struct {
	Worker  int
	JobID   int64
	Phase   string
	Index   int
	Attempt int

	// Err is the failure message; empty means success.
	Err string
	// BadRuns lists input run files found truncated or unreadable — the
	// coordinator re-executes their producing map tasks.
	BadRuns []string

	// MapRuns are a map attempt's committed per-reducer runs.
	MapRuns []wireMapRun
	// Output is a reduce (or map-only) attempt's committed output file
	// of framed records.
	Output wireRun

	Records      int64 // map input records consumed
	Groups       int64 // reduce key groups
	Work         int64
	SpilledRuns  int64
	SpilledBytes int64
	Counters     map[string]int64
}

// completionResponse acknowledges a report; Accepted is false for
// duplicates and stale attempts, which the coordinator ignores.
type completionResponse struct {
	Accepted bool
}

// heartbeatMsg renews an attempt's lease.
type heartbeatMsg struct {
	Worker  int
	JobID   int64
	Phase   string
	Index   int
	Attempt int
}

// heartbeatResponse tells a worker whether its attempt is still wanted.
type heartbeatResponse struct {
	Abandoned bool
}

// workerConfig is shipped to a spawned worker process via environment
// variable, everything it needs to join the cluster.
type workerConfig struct {
	URL         string // coordinator base URL
	Index       int    // this worker's index
	HeartbeatMs int64
	Faults      *FaultPlan
	// TraceDir, when non-empty, makes the worker record task-attempt
	// spans to its own JSONL file in this shared trace directory.
	TraceDir string
}
