package mapreduce

import (
	"os"
	"strings"
	"sync"
	"time"
)

// Deterministic fault injection for the distributed engine. A FaultPlan
// is a list of events, each naming a checkpoint in a task attempt's
// lifecycle (worker, task, attempt, point) and an action to take there —
// kill the process, stall with or without heartbeats, or corrupt a
// committed run file. The plan is shipped to every worker process and
// evaluated at fixed checkpoints on the task execution path, never from
// timers or randomness, so a recovery scenario replays identically on
// every run. Tests drive the whole matrix of §6-style failures (worker
// killed mid-map, mid-reduce, mid-commit; stragglers; truncated
// intermediates) from plans alone.

// FaultPoint identifies a checkpoint in a task attempt's lifecycle where
// a FaultEvent can fire.
type FaultPoint int

// The checkpoints, in execution order. AtMidTask fires halfway through a
// map task's input records, or after a reduce task's first key group.
// AtPreCommit fires after compute, before any output file is written;
// AtPostCommit fires after the attempt's output files are durable but
// before its completion is reported to the coordinator.
const (
	AtTaskStart FaultPoint = iota
	AtMidTask
	AtPreCommit
	AtPostCommit
)

// FaultAction is what a triggered FaultEvent does to the worker.
type FaultAction int

// The actions. ActKill exits the worker process immediately — the
// crash-stop failure the coordinator's lease machinery must recover
// from. ActSleep stalls the task for Delay while heartbeats continue (a
// straggler, triggering speculative re-execution but never lease
// expiry). ActFreeze stalls the task for Delay with heartbeats
// suspended, so the coordinator presumes the worker dead and re-runs the
// task, then receives a late duplicate completion when the freeze lifts.
// ActTruncateRun chops TruncateBytes off the attempt's last committed
// map-run file (fires at AtPostCommit), planting the torn intermediate
// that reducers must detect and the coordinator must repair by
// re-running the producing map task.
const (
	ActKill FaultAction = iota
	ActSleep
	ActFreeze
	ActTruncateRun
)

// FaultEvent matches one task-attempt checkpoint and performs an action
// there. Zero-valued selector fields are wildcards, except Worker, where
// only -1 is (worker indexes start at 0).
type FaultEvent struct {
	// Worker selects the worker process by index; -1 matches any worker.
	Worker int
	// Task selects the task by ID (e.g. "myjob/map/0"); "" matches any
	// task, and a trailing '*' matches by prefix ("myjob/reduce/*").
	Task string
	// Attempt selects the coordinator-assigned attempt number; 0 matches
	// any attempt.
	Attempt int
	// Point is the lifecycle checkpoint the event fires at.
	Point FaultPoint
	// Action is what happens when the event fires.
	Action FaultAction
	// Delay is the stall duration of ActSleep and ActFreeze.
	Delay time.Duration
	// TruncateBytes is how many trailing bytes ActTruncateRun removes.
	TruncateBytes int64
}

// matches reports whether the event selects the given checkpoint.
func (e FaultEvent) matches(worker int, task string, attempt int, point FaultPoint) bool {
	if e.Point != point {
		return false
	}
	if e.Worker != -1 && e.Worker != worker {
		return false
	}
	if e.Attempt != 0 && e.Attempt != attempt {
		return false
	}
	if e.Task != "" {
		if p, ok := strings.CutSuffix(e.Task, "*"); ok {
			return strings.HasPrefix(task, p)
		}
		return e.Task == task
	}
	return true
}

// FaultPlan is a deterministic fault-injection script for the
// distributed engine: each event fires at most once per worker process,
// at a fixed checkpoint of the task execution path. A nil plan injects
// nothing.
type FaultPlan struct {
	// Events are evaluated in order at every checkpoint; the first
	// unfired match fires.
	Events []FaultEvent
}

// injector evaluates a worker's fault plan at task checkpoints.
type injector struct {
	worker int
	events []FaultEvent
	mu     sync.Mutex
	fired  []bool
	// pauseHB suspends and resumes the worker's heartbeats (ActFreeze).
	pauseHB func(bool)
	// observe, when non-nil, is told about a fired event before its
	// action executes — the tracing hook, which must run ahead of
	// ActKill's os.Exit so the dying attempt's span reaches disk.
	observe func(ev *FaultEvent, task string, attempt int)
}

func newInjector(worker int, plan *FaultPlan, pauseHB func(bool), observe func(ev *FaultEvent, task string, attempt int)) *injector {
	in := &injector{worker: worker, pauseHB: pauseHB, observe: observe}
	if plan != nil {
		in.events = plan.Events
		in.fired = make([]bool, len(plan.Events))
	}
	return in
}

// at fires the first unfired event matching this checkpoint. Kill,
// sleep and freeze actions happen here; a matched ActTruncateRun is
// returned for the caller (which knows the run file paths) to apply.
func (in *injector) at(task string, attempt int, point FaultPoint) *FaultEvent {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	var ev *FaultEvent
	for i := range in.events {
		if !in.fired[i] && in.events[i].matches(in.worker, task, attempt, point) {
			in.fired[i] = true
			ev = &in.events[i]
			break
		}
	}
	in.mu.Unlock()
	if ev == nil {
		return nil
	}
	if in.observe != nil {
		in.observe(ev, task, attempt)
	}
	switch ev.Action {
	case ActKill:
		os.Exit(faultKillExitCode)
	case ActSleep:
		time.Sleep(ev.Delay)
	case ActFreeze:
		in.pauseHB(true)
		time.Sleep(ev.Delay)
		in.pauseHB(false)
	}
	return ev
}

// faultPointName names a FaultPoint for span events.
func faultPointName(p FaultPoint) string {
	switch p {
	case AtTaskStart:
		return "task-start"
	case AtMidTask:
		return "mid-task"
	case AtPreCommit:
		return "pre-commit"
	case AtPostCommit:
		return "post-commit"
	}
	return "unknown"
}

// faultActionName names a FaultAction for span events.
func faultActionName(a FaultAction) string {
	switch a {
	case ActKill:
		return "kill"
	case ActSleep:
		return "sleep"
	case ActFreeze:
		return "freeze"
	case ActTruncateRun:
		return "truncate-run"
	}
	return "unknown"
}

// faultKillExitCode distinguishes fault-plan kills from crashes in
// worker exit diagnostics.
const faultKillExitCode = 3
