package mapreduce

import (
	"reflect"
	"testing"
	"time"

	"knnjoin/internal/dfs"
)

// The recovery matrix: deterministic fault plans kill, stall, freeze and
// corrupt worker processes at fixed checkpoints, and every scenario must
// end with job output byte-identical to the zero-fault in-process run.
// All of these spawn real worker processes and wait out lease timeouts,
// so they are skipped under -short (the in-process engine is the -short
// path).

// faultLease is the lease timeout fault tests run with: long enough that
// a healthy worker under -race never misses it between 1/4-lease
// heartbeats, short enough that recovery stays sub-second.
const faultLease = 350 * time.Millisecond

func skipShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("fault-injection tests spawn worker processes; skipped with -short")
	}
}

// TestFaultKillMatrix kills one of three workers at each lifecycle
// checkpoint of a map or reduce attempt and asserts the job recovers by
// re-execution with byte-identical output. Attempt is pinned to 1 in
// every event so the re-dispatched attempt (which matches the same task
// selector, but runs on a worker whose injector state is fresh) is not
// killed again.
func TestFaultKillMatrix(t *testing.T) {
	skipShort(t)
	cases := []struct {
		name  string
		task  string
		point FaultPoint
	}{
		{"map-start", "t-wordcount/map/0", AtTaskStart},
		{"mid-map", "t-wordcount/map/1", AtMidTask},
		{"map-pre-commit", "t-wordcount/map/0", AtPreCommit},
		{"map-post-commit", "t-wordcount/map/0", AtPostCommit}, // durable but unreported
		{"mid-reduce", "t-wordcount/reduce/0", AtMidTask},
		{"reduce-pre-commit", "t-wordcount/reduce/1", AtPreCommit},
		{"reduce-post-commit", "t-wordcount/reduce/0", AtPostCommit},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan := &FaultPlan{Events: []FaultEvent{
				{Worker: -1, Task: tc.task, Attempt: 1, Point: tc.point, Action: ActKill},
			}}
			spec := testJobSpec{In: "in", Out: "out", NumReducers: 3, Mode: "wordcount"}
			js, _ := assertIdentical(t, spec, wordRecords("in", 60),
				DistConfig{Workers: 3, LeaseTimeout: faultLease, Faults: plan})
			if js.ReexecutedAttempts < 1 {
				t.Fatalf("ReexecutedAttempts = %d, want >= 1 after a kill at %s",
					js.ReexecutedAttempts, tc.name)
			}
		})
	}
}

// TestFaultKillDuringGroupedJob runs the secondary-sort/group-prefix job
// through a mid-reduce kill: recovery must preserve the value ordering
// contract, not just the key sets.
func TestFaultKillDuringGroupedJob(t *testing.T) {
	skipShort(t)
	plan := &FaultPlan{Events: []FaultEvent{
		{Worker: -1, Task: "t-grouped/reduce/*", Attempt: 1, Point: AtMidTask, Action: ActKill},
	}}
	spec := testJobSpec{In: "in", Out: "out", NumReducers: 3, Mode: "grouped"}
	js, _ := assertIdentical(t, spec, groupRecords("in", 120),
		DistConfig{Workers: 3, LeaseTimeout: faultLease, Faults: plan})
	if js.ReexecutedAttempts < 1 {
		t.Fatalf("ReexecutedAttempts = %d, want >= 1", js.ReexecutedAttempts)
	}
}

// TestFaultKillDuringMapOnlyJob covers recovery on the map-only output
// path, where map attempts commit job output directly.
func TestFaultKillDuringMapOnlyJob(t *testing.T) {
	skipShort(t)
	plan := &FaultPlan{Events: []FaultEvent{
		{Worker: -1, Task: "t-maponly/map/2", Attempt: 1, Point: AtPreCommit, Action: ActKill},
	}}
	spec := testJobSpec{In: "in", Out: "out", NumReducers: 2, Mode: "maponly"}
	js, _ := assertIdentical(t, spec, wordRecords("in", 80),
		DistConfig{Workers: 3, LeaseTimeout: faultLease, Faults: plan})
	if js.ReexecutedAttempts < 1 {
		t.Fatalf("ReexecutedAttempts = %d, want >= 1", js.ReexecutedAttempts)
	}
}

// TestFaultTruncatedRunRepair plants a torn intermediate: a map attempt
// commits its runs, then the last run file loses its tail. The reducer
// that merges it must detect the damage, the coordinator must re-execute
// the producing map task, and the retried reducer must see the fresh
// runs — ending byte-identical to the in-process run.
func TestFaultTruncatedRunRepair(t *testing.T) {
	skipShort(t)
	plan := &FaultPlan{Events: []FaultEvent{
		{Worker: -1, Task: "t-wordcount/map/0", Attempt: 1, Point: AtPostCommit,
			Action: ActTruncateRun, TruncateBytes: 7},
	}}
	spec := testJobSpec{In: "in", Out: "out", NumReducers: 3, Mode: "wordcount"}
	want, _ := runInProcess(t, spec, wordRecords("in", 60))
	got, js, err := runDist(t, spec, wordRecords("in", 60),
		DistConfig{Workers: 2, LeaseTimeout: faultLease, Faults: plan})
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("output differs after truncated-run repair: %s", firstDiff(got, want))
	}
	// The repair re-executes the producing map AND retries the reduce.
	if js.ReexecutedAttempts < 2 {
		t.Fatalf("ReexecutedAttempts = %d, want >= 2 (map re-run + reduce retry)", js.ReexecutedAttempts)
	}
	// The map task committed twice (the first commit was invalidated), so
	// worker-side commits exceed the task count.
	if js.WorkerTasks <= js.MapTasks+js.ReduceTasks {
		t.Fatalf("WorkerTasks = %d, want > %d after an invalidated commit",
			js.WorkerTasks, js.MapTasks+js.ReduceTasks)
	}
}

// TestFaultFrozenWorkerDuplicateCompletion freezes a worker (heartbeats
// suspended) after it durably committed a map attempt but before it
// reported. The coordinator presumes it dead, re-runs the task
// elsewhere, and must then discard the thawed worker's late duplicate
// completion — exactly-once output commitment from at-least-once
// execution.
func TestFaultFrozenWorkerDuplicateCompletion(t *testing.T) {
	skipShort(t)
	plan := &FaultPlan{Events: []FaultEvent{
		{Worker: -1, Task: "t-wordcount/map/0", Attempt: 1, Point: AtPostCommit,
			Action: ActFreeze, Delay: 4 * faultLease},
	}}
	spec := testJobSpec{In: "in", Out: "out", NumReducers: 3, Mode: "wordcount"}
	js, _ := assertIdentical(t, spec, wordRecords("in", 60),
		DistConfig{Workers: 2, LeaseTimeout: faultLease, Faults: plan})
	if js.ReexecutedAttempts < 1 {
		t.Fatalf("ReexecutedAttempts = %d, want >= 1 after a lease loss", js.ReexecutedAttempts)
	}
	// assertIdentical already pinned WorkerTasks == MapTasks+ReduceTasks:
	// had the duplicate completion been double-committed, both that count
	// and the output bytes would differ.
}

// TestFaultStragglerSpeculation stalls one worker mid-map with
// heartbeats alive — a straggler, not a corpse. With speculation enabled
// the coordinator launches a backup attempt on the other worker and the
// job finishes long before the stall lifts; without lease expiry the
// re-execution counter stays zero.
func TestFaultStragglerSpeculation(t *testing.T) {
	skipShort(t)
	const stall = 4 * time.Second
	plan := &FaultPlan{Events: []FaultEvent{
		{Worker: -1, Task: "t-wordcount/map/0", Attempt: 1, Point: AtMidTask,
			Action: ActSleep, Delay: stall},
	}}
	spec := testJobSpec{In: "in", Out: "out", NumReducers: 2, Mode: "wordcount"}
	want, _ := runInProcess(t, spec, wordRecords("in", 30))
	start := time.Now()
	got, js, err := runDist(t, spec, wordRecords("in", 30), DistConfig{
		Workers:          2,
		LeaseTimeout:     800 * time.Millisecond,
		SpeculativeAfter: 150 * time.Millisecond,
		Faults:           plan,
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("output differs under speculation: %s", firstDiff(got, want))
	}
	if js.SpeculativeAttempts < 1 {
		t.Fatalf("SpeculativeAttempts = %d, want >= 1", js.SpeculativeAttempts)
	}
	if js.ReexecutedAttempts != 0 {
		t.Fatalf("ReexecutedAttempts = %d, want 0 — the straggler kept heartbeating", js.ReexecutedAttempts)
	}
	if elapsed >= stall {
		t.Fatalf("job took %v, not under the straggler's %v stall — speculation did not save it", elapsed, stall)
	}
}

// TestFaultPlanReplaysIdentically runs the same fault plan twice:
// deterministic checkpoint-driven injection means both runs recover and
// both end in the same bytes.
func TestFaultPlanReplaysIdentically(t *testing.T) {
	skipShort(t)
	plan := &FaultPlan{Events: []FaultEvent{
		{Worker: -1, Task: "t-wordcount/map/1", Attempt: 1, Point: AtMidTask, Action: ActKill},
		{Worker: -1, Task: "t-wordcount/reduce/0", Attempt: 1, Point: AtPreCommit, Action: ActKill},
	}}
	spec := testJobSpec{In: "in", Out: "out", NumReducers: 2, Mode: "wordcount"}
	var outs [][]dfs.Record
	for i := 0; i < 2; i++ {
		got, js, err := runDist(t, spec, wordRecords("in", 60),
			DistConfig{Workers: 3, LeaseTimeout: faultLease, Faults: plan})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if js.ReexecutedAttempts < 2 {
			t.Fatalf("run %d: ReexecutedAttempts = %d, want >= 2 (two kills)", i, js.ReexecutedAttempts)
		}
		outs = append(outs, got)
	}
	if !reflect.DeepEqual(outs[0], outs[1]) {
		t.Fatalf("replayed fault plan produced different output: %s", firstDiff(outs[1], outs[0]))
	}
}

// TestFaultAllWorkersDeadFailsJob kills the only worker on its first
// task: with nobody left the watchdog must fail the job instead of
// waiting on leases forever.
func TestFaultAllWorkersDeadFailsJob(t *testing.T) {
	skipShort(t)
	plan := &FaultPlan{Events: []FaultEvent{
		{Worker: -1, Point: AtTaskStart, Action: ActKill},
	}}
	spec := testJobSpec{In: "in", Out: "out", NumReducers: 2, Mode: "wordcount"}
	_, _, err := runDist(t, spec, wordRecords("in", 20),
		DistConfig{Workers: 1, LeaseTimeout: faultLease, Faults: plan})
	if err == nil {
		t.Fatal("job with every worker dead reported success")
	}
}
