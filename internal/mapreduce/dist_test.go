package mapreduce

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"strings"
	"testing"

	"knnjoin/internal/dfs"
)

// TestMain turns re-executions of this test binary into worker
// processes: a distributed cluster spawns copies of os.Executable, and
// RunWorkerIfSpawned routes them into the worker loop (and exits)
// before any test runs.
func TestMain(m *testing.M) {
	RunWorkerIfSpawned()
	os.Exit(m.Run())
}

// testJobSpec parameterizes the toy jobs the distributed tests run.
// One kind with a Mode switch keeps the registry surface small while
// covering combiners, secondary sort, grouping prefixes and map-only
// output contracts.
type testJobSpec struct {
	In, Out     string
	NumReducers int
	Mode        string // "wordcount" | "grouped" | "maponly"
	MaxAttempts int
	FailTask    string // inject a task error: fail this task ...
	FailBelow   int    // ... on attempts below this number
}

var testKind = DefineKind("mr-test-job", buildTestJob)

func buildTestJob(s testJobSpec) *Job {
	job := &Job{
		Name:        "t-" + s.Mode,
		Input:       []string{s.In},
		Output:      s.Out,
		NumReducers: s.NumReducers,
		MaxAttempts: s.MaxAttempts,
	}
	if s.FailTask != "" {
		ft, below := s.FailTask, s.FailBelow
		job.FailTask = func(taskID string, attempt int) error {
			if taskID == ft && attempt < below {
				return fmt.Errorf("injected error: %s attempt %d", taskID, attempt)
			}
			return nil
		}
	}
	count := func(n int64) []byte {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(n))
		return b[:]
	}
	sum := func(ctx *TaskContext, key []byte, values *Values, emit Emit) error {
		var n int64
		for {
			v, ok := values.Next()
			if !ok {
				break
			}
			n += int64(binary.BigEndian.Uint64(v))
		}
		emit(key, count(n))
		return nil
	}
	switch s.Mode {
	case "wordcount":
		job.Map = func(ctx *TaskContext, rec dfs.Record, emit Emit) error {
			for _, w := range strings.Fields(string(rec)) {
				emit([]byte(w), count(1))
				ctx.Counter("words", 1)
			}
			return nil
		}
		job.Combine = sum
		job.Reduce = func(ctx *TaskContext, key []byte, values *Values, emit Emit) error {
			var n int64
			for {
				v, ok := values.Next()
				if !ok {
					break
				}
				n += int64(binary.BigEndian.Uint64(v))
			}
			ctx.AddWork(n)
			emit(nil, []byte(fmt.Sprintf("%s=%d", key, n)))
			return nil
		}
	case "grouped":
		// Composite keys [group byte | record suffix], grouped on the
		// first byte with values secondary-sorted by payload — the shape
		// of the join drivers' pivot-distance ordering.
		job.GroupKeyPrefix = 1
		job.ValueCompare = bytes.Compare
		job.Map = func(ctx *TaskContext, rec dfs.Record, emit Emit) error {
			if len(rec) < 2 {
				return fmt.Errorf("short record %q", rec)
			}
			emit([]byte{rec[0], rec[1]}, []byte(rec[1:]))
			return nil
		}
		job.Reduce = func(ctx *TaskContext, key []byte, values *Values, emit Emit) error {
			var parts []string
			for {
				v, ok := values.Next()
				if !ok {
					break
				}
				parts = append(parts, string(v))
			}
			emit(nil, []byte(fmt.Sprintf("%c:%s", key[0], strings.Join(parts, ","))))
			return nil
		}
	case "maponly":
		job.Map = func(ctx *TaskContext, rec dfs.Record, emit Emit) error {
			emit(rec, []byte(strings.ToUpper(string(rec))))
			return nil
		}
	default:
		panic("unknown test job mode " + s.Mode)
	}
	return job
}

// wordRecords writes n deterministic pseudo-random word records.
func wordRecords(name string, n int) func(dfs.Store) {
	return func(fs dfs.Store) {
		rnd := rand.New(rand.NewSource(7))
		recs := make([]dfs.Record, n)
		for i := range recs {
			recs[i] = dfs.Record(fmt.Sprintf("w%02d w%02d w%02d",
				rnd.Intn(20), rnd.Intn(20), rnd.Intn(20)))
		}
		fs.Write(name, recs)
	}
}

// groupRecords writes records of the form <group char><payload>.
func groupRecords(name string, n int) func(dfs.Store) {
	return func(fs dfs.Store) {
		rnd := rand.New(rand.NewSource(11))
		recs := make([]dfs.Record, n)
		for i := range recs {
			recs[i] = dfs.Record(fmt.Sprintf("%c%03d", 'a'+rnd.Intn(5), rnd.Intn(1000)))
		}
		fs.Write(name, recs)
	}
}

// runInProcess executes the spec's job on the in-process engine.
func runInProcess(t *testing.T, spec testJobSpec, input func(dfs.Store)) ([]dfs.Record, *JobStats) {
	t.Helper()
	fs := dfs.New(8)
	input(fs)
	js, err := NewCluster(fs, 4).Run(testKind.New(spec))
	if err != nil {
		t.Fatalf("in-process run: %v", err)
	}
	out, err := fs.Read(spec.Out)
	if err != nil {
		t.Fatalf("in-process output: %v", err)
	}
	return out, js
}

// runDist executes the spec's job on a fresh distributed cluster.
func runDist(t *testing.T, spec testJobSpec, input func(dfs.Store), cfg DistConfig) ([]dfs.Record, *JobStats, error) {
	t.Helper()
	fs := dfs.New(8)
	input(fs)
	if cfg.Workers == 0 {
		cfg.Workers = 3
	}
	c, err := NewDistCluster(fs, 4, cfg)
	if err != nil {
		t.Fatalf("NewDistCluster: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	js, err := c.Run(testKind.New(spec))
	if err != nil {
		return nil, nil, err
	}
	out, err := fs.Read(spec.Out)
	if err != nil {
		t.Fatalf("distributed output: %v", err)
	}
	return out, js, nil
}

// assertIdentical compares a distributed run against the in-process
// reference: byte-identical output and matching deterministic stats.
func assertIdentical(t *testing.T, spec testJobSpec, input func(dfs.Store), cfg DistConfig) (*JobStats, *JobStats) {
	t.Helper()
	want, wantJS := runInProcess(t, spec, input)
	got, gotJS, err := runDist(t, spec, input, cfg)
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("distributed output differs from in-process:\n got %d records\nwant %d records\nfirst got %q",
			len(got), len(want), firstDiff(got, want))
	}
	if gotJS.OutputRecords != wantJS.OutputRecords {
		t.Fatalf("OutputRecords = %d, want %d", gotJS.OutputRecords, wantJS.OutputRecords)
	}
	if gotJS.MapInputRecords != wantJS.MapInputRecords {
		t.Fatalf("MapInputRecords = %d, want %d", gotJS.MapInputRecords, wantJS.MapInputRecords)
	}
	if gotJS.WorkerTasks != gotJS.MapTasks+gotJS.ReduceTasks {
		t.Fatalf("WorkerTasks = %d, want %d map + %d reduce — job fell back in-process?",
			gotJS.WorkerTasks, gotJS.MapTasks, gotJS.ReduceTasks)
	}
	return gotJS, wantJS
}

func firstDiff(got, want []dfs.Record) string {
	for i := range got {
		if i >= len(want) {
			return fmt.Sprintf("extra record %d: %q", i, got[i])
		}
		if !bytes.Equal(got[i], want[i]) {
			return fmt.Sprintf("record %d: got %q want %q", i, got[i], want[i])
		}
	}
	return "distributed output is a prefix of in-process output"
}

func TestDistWordCountMatchesInProcess(t *testing.T) {
	spec := testJobSpec{In: "in", Out: "out", NumReducers: 4, Mode: "wordcount"}
	gotJS, wantJS := assertIdentical(t, spec, wordRecords("in", 200), DistConfig{})
	// The combiner makes shuffle volume deterministic, so it must agree
	// across engines too.
	if gotJS.ShuffleRecords != wantJS.ShuffleRecords || gotJS.ShuffleBytes != wantJS.ShuffleBytes {
		t.Fatalf("shuffle = %d recs/%d bytes, want %d/%d",
			gotJS.ShuffleRecords, gotJS.ShuffleBytes, wantJS.ShuffleRecords, wantJS.ShuffleBytes)
	}
	if gotJS.ReduceGroups != wantJS.ReduceGroups {
		t.Fatalf("ReduceGroups = %d, want %d", gotJS.ReduceGroups, wantJS.ReduceGroups)
	}
	if !reflect.DeepEqual(gotJS.Counters, wantJS.Counters) {
		t.Fatalf("Counters = %v, want %v", gotJS.Counters, wantJS.Counters)
	}
	if !reflect.DeepEqual(gotJS.ReduceInputRecords, wantJS.ReduceInputRecords) {
		t.Fatalf("ReduceInputRecords = %v, want %v", gotJS.ReduceInputRecords, wantJS.ReduceInputRecords)
	}
	if gotJS.ReexecutedAttempts != 0 || gotJS.SpeculativeAttempts != 0 {
		t.Fatalf("fault-free run reports %d re-executed, %d speculative attempts",
			gotJS.ReexecutedAttempts, gotJS.SpeculativeAttempts)
	}
}

func TestDistGroupedSecondarySortMatchesInProcess(t *testing.T) {
	spec := testJobSpec{In: "in", Out: "out", NumReducers: 3, Mode: "grouped"}
	assertIdentical(t, spec, groupRecords("in", 150), DistConfig{})
}

func TestDistMapOnlyMatchesInProcess(t *testing.T) {
	spec := testJobSpec{In: "in", Out: "out", NumReducers: 2, Mode: "maponly"}
	assertIdentical(t, spec, wordRecords("in", 90), DistConfig{})
}

func TestDistEmptyInput(t *testing.T) {
	empty := func(fs dfs.Store) { fs.Write("in", nil) }
	spec := testJobSpec{In: "in", Out: "out", NumReducers: 2, Mode: "wordcount"}
	got, _, err := runDist(t, spec, empty, DistConfig{Workers: 2})
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("empty input produced %d records", len(got))
	}
}

func TestDistKindlessJobFallsBackInProcess(t *testing.T) {
	fs := dfs.New(8)
	wordRecords("in", 40)(fs)
	c, err := NewDistCluster(fs, 4, DistConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	job := buildTestJob(testJobSpec{In: "in", Out: "out", NumReducers: 2, Mode: "wordcount"})
	if job.Kind != "" {
		t.Fatal("test premise broken: job has a kind")
	}
	js, err := c.Run(job)
	if err != nil {
		t.Fatalf("kindless run: %v", err)
	}
	if js.WorkerTasks != 0 {
		t.Fatalf("kindless job reports %d worker tasks", js.WorkerTasks)
	}
	want, _ := runInProcess(t, testJobSpec{In: "in", Out: "out", NumReducers: 2, Mode: "wordcount"}, wordRecords("in", 40))
	got, _ := fs.Read("out")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fallback output differs: %s", firstDiff(got, want))
	}
}

func TestDistTaskErrorRetriesThenSucceeds(t *testing.T) {
	spec := testJobSpec{In: "in", Out: "out", NumReducers: 2, Mode: "wordcount",
		MaxAttempts: 3, FailTask: "t-wordcount/map/0", FailBelow: 3}
	assertIdentical(t, spec, wordRecords("in", 60), DistConfig{})
}

func TestDistTaskErrorExhaustsAttempts(t *testing.T) {
	spec := testJobSpec{In: "in", Out: "out", NumReducers: 2, Mode: "wordcount",
		MaxAttempts: 2, FailTask: "t-wordcount/reduce/1", FailBelow: 100}
	_, _, err := runDist(t, spec, wordRecords("in", 60), DistConfig{Workers: 2})
	if err == nil {
		t.Fatal("job with an always-failing task succeeded")
	}
	if !strings.Contains(err.Error(), "failed after 2 attempts") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestDistSequentialJobsOneCluster(t *testing.T) {
	fs := dfs.New(8)
	wordRecords("in", 80)(fs)
	c, err := NewDistCluster(fs, 4, DistConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		out := fmt.Sprintf("out-%d", i)
		js, err := c.Run(testKind.New(testJobSpec{In: "in", Out: out, NumReducers: 3, Mode: "wordcount"}))
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if js.WorkerTasks == 0 {
			t.Fatalf("job %d ran in-process", i)
		}
	}
	first, _ := fs.Read("out-0")
	for i := 1; i < 3; i++ {
		got, _ := fs.Read(fmt.Sprintf("out-%d", i))
		if !reflect.DeepEqual(got, first) {
			t.Fatalf("job %d output differs from job 0", i)
		}
	}
}

func TestDistClusterCloseIsIdempotent(t *testing.T) {
	c, err := NewDistCluster(dfs.New(8), 2, DistConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Distributed() {
		t.Fatal("Distributed() = false on a distributed cluster")
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if NewCluster(dfs.New(8), 2).Distributed() {
		t.Fatal("Distributed() = true on an in-process cluster")
	}
}

func TestFaultEventMatching(t *testing.T) {
	ev := FaultEvent{Worker: -1, Task: "j/map/*", Attempt: 1, Point: AtMidTask}
	if !ev.matches(2, "j/map/7", 1, AtMidTask) {
		t.Fatal("wildcard worker + prefix task should match")
	}
	if ev.matches(2, "j/reduce/0", 1, AtMidTask) {
		t.Fatal("prefix mismatch should not match")
	}
	if ev.matches(2, "j/map/7", 2, AtMidTask) {
		t.Fatal("attempt mismatch should not match")
	}
	if ev.matches(2, "j/map/7", 1, AtPreCommit) {
		t.Fatal("point mismatch should not match")
	}
	pinned := FaultEvent{Worker: 1, Point: AtTaskStart}
	if pinned.matches(0, "x", 5, AtTaskStart) {
		t.Fatal("worker mismatch should not match")
	}
	if !pinned.matches(1, "x", 5, AtTaskStart) {
		t.Fatal("pinned worker should match any task/attempt")
	}
}
