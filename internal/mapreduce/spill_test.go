package mapreduce

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"knnjoin/internal/dfs"
)

// spillCluster builds a cluster whose shuffle spills to a temp dir.
func spillCluster(t *testing.T, nodes, chunk int, eng Engine) *Cluster {
	t.Helper()
	if eng.SpillDir == "" {
		eng.SpillDir = t.TempDir()
	}
	c, err := NewClusterEngine(dfs.New(chunk), nodes, eng)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// randomLines builds a deterministic duplicate-heavy workload large
// enough to exercise many runs and groups.
func randomLines(n int) []string {
	rng := rand.New(rand.NewSource(42))
	words := []string{"ant", "bee", "cat", "dog", "elk", "fox", "gnu", "hen"}
	lines := make([]string, n)
	for i := range lines {
		var sb strings.Builder
		for w := 0; w < 6; w++ {
			sb.WriteString(words[rng.Intn(len(words))])
			sb.WriteByte(' ')
		}
		lines[i] = sb.String()
	}
	return lines
}

// The spill backend must produce byte-identical output to the in-memory
// backend, record for record — the property that lets every join driver
// run out-of-core unchanged.
func TestSpillBackendOutputIdenticalToInMemory(t *testing.T) {
	lines := randomLines(200)
	for _, combine := range []bool{false, true} {
		mem := newTestCluster(4, 16)
		writeLines(mem.FS(), "in", lines...)
		memStats, err := mem.Run(wordCountJob("in", "out", combine))
		if err != nil {
			t.Fatal(err)
		}

		sp := spillCluster(t, 4, 16, Engine{})
		writeLines(sp.FS(), "in", lines...)
		spStats, err := sp.Run(wordCountJob("in", "out", combine))
		if err != nil {
			t.Fatal(err)
		}

		memOut, _ := mem.FS().Read("out")
		spOut, _ := sp.FS().Read("out")
		if len(memOut) != len(spOut) {
			t.Fatalf("combine=%v: output sizes differ: mem %d spill %d", combine, len(memOut), len(spOut))
		}
		for i := range memOut {
			if !bytes.Equal(memOut[i], spOut[i]) {
				t.Fatalf("combine=%v: output record %d differs: %q vs %q", combine, i, memOut[i], spOut[i])
			}
		}
		if spStats.SpilledRuns == 0 || spStats.SpilledBytes == 0 {
			t.Fatalf("combine=%v: spill engine spilled nothing: %+v", combine, spStats)
		}
		if memStats.SpilledRuns != 0 {
			t.Fatalf("combine=%v: in-memory engine spilled %d runs", combine, memStats.SpilledRuns)
		}
		if spStats.ShuffleBytes != memStats.ShuffleBytes || spStats.ShuffleRecords != memStats.ShuffleRecords {
			t.Fatalf("combine=%v: shuffle accounting diverged: mem %d/%d spill %d/%d", combine,
				memStats.ShuffleRecords, memStats.ShuffleBytes, spStats.ShuffleRecords, spStats.ShuffleBytes)
		}
	}
}

// With a MemLimit below the shuffle size, residency must stay under the
// limit while the job still completes; with a generous limit nothing
// spills and the shuffle stays resident.
func TestSpillMemLimitBoundsResidency(t *testing.T) {
	lines := randomLines(300)

	tight := spillCluster(t, 4, 8, Engine{MemLimit: 4 << 10})
	writeLines(tight.FS(), "in", lines...)
	st, err := tight.Run(wordCountJob("in", "out", false))
	if err != nil {
		t.Fatal(err)
	}
	if st.ShuffleBytes <= 4<<10 {
		t.Fatalf("workload too small to exceed the limit: shuffle=%d", st.ShuffleBytes)
	}
	if st.SpilledRuns == 0 {
		t.Fatal("over-limit workload did not spill")
	}
	if st.PeakResidentBytes > 4<<10 {
		t.Fatalf("peak resident %d exceeds the 4KiB MemLimit", st.PeakResidentBytes)
	}

	roomy := spillCluster(t, 4, 8, Engine{MemLimit: 64 << 20})
	writeLines(roomy.FS(), "in", lines...)
	st, err = roomy.Run(wordCountJob("in", "out", false))
	if err != nil {
		t.Fatal(err)
	}
	if st.SpilledRuns != 0 {
		t.Fatalf("under-limit workload spilled %d runs", st.SpilledRuns)
	}
	if st.PeakResidentBytes != st.ShuffleBytes {
		t.Fatalf("retained peak %d != shuffle bytes %d", st.PeakResidentBytes, st.ShuffleBytes)
	}
}

// A tiny MergeFanIn forces multi-pass merging: intermediate run files
// beyond the map tasks' own, and still byte-identical output.
func TestSpillFanInMultiPassMerge(t *testing.T) {
	lines := randomLines(240)

	mem := newTestCluster(4, 4) // 60 map tasks
	writeLines(mem.FS(), "in", lines...)
	if _, err := mem.Run(wordCountJob("in", "out", false)); err != nil {
		t.Fatal(err)
	}

	sp := spillCluster(t, 4, 4, Engine{MergeFanIn: 3})
	writeLines(sp.FS(), "in", lines...)
	st, err := sp.Run(wordCountJob("in", "out", false))
	if err != nil {
		t.Fatal(err)
	}
	if st.SpilledRuns <= int64(st.MapTasks) {
		t.Fatalf("fan-in 3 over %d map tasks produced no intermediate merges (%d spilled runs)",
			st.MapTasks, st.SpilledRuns)
	}
	memOut, _ := mem.FS().Read("out")
	spOut, _ := sp.FS().Read("out")
	if len(memOut) != len(spOut) {
		t.Fatalf("output sizes differ: mem %d spill %d", len(memOut), len(spOut))
	}
	for i := range memOut {
		if !bytes.Equal(memOut[i], spOut[i]) {
			t.Fatalf("output record %d differs under multi-pass merge", i)
		}
	}
}

// runFilesUnder lists completed run files below the engine spill dir.
func runFilesUnder(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "job-*", "run-*"))
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, m := range matches {
		if !strings.HasSuffix(m, ".tmp") {
			out = append(out, m)
		}
	}
	return out
}

// A partially written run file must fail the reduce attempt cleanly; a
// retry that finds the file intact again (the crash-mid-merge recovery
// story) must succeed with complete output.
func TestSpillCrashMidMergeRetries(t *testing.T) {
	spillRoot := t.TempDir()
	c := spillCluster(t, 2, 4, Engine{SpillDir: spillRoot})
	writeLines(c.FS(), "in", randomLines(40)...)

	var saved []byte
	var victim string
	job := wordCountJob("in", "out", false)
	job.NumReducers = 1
	job.MaxAttempts = 2
	job.FailTask = func(taskID string, attempt int) error {
		if !strings.HasSuffix(taskID, "/reduce/0") {
			return nil
		}
		switch attempt {
		case 1:
			// Corrupt one run file mid-record before the first merge.
			files := runFilesUnder(t, spillRoot)
			if len(files) == 0 {
				t.Fatal("no run files on disk at reduce time")
			}
			victim = files[0]
			var err error
			saved, err = os.ReadFile(victim)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(victim, int64(len(saved)/2)); err != nil {
				t.Fatal(err)
			}
		case 2:
			// The "restarted node" restored the file: retry must succeed.
			if err := os.WriteFile(victim, saved, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return nil
	}
	if _, err := c.Run(job); err != nil {
		t.Fatalf("retry after restored run file failed: %v", err)
	}

	// The recovered output must be complete and correct.
	mem := newTestCluster(2, 4)
	writeLines(mem.FS(), "in", randomLines(40)...)
	ref := wordCountJob("in", "out", false)
	ref.NumReducers = 1
	if _, err := mem.Run(ref); err != nil {
		t.Fatal(err)
	}
	want := readCounts(t, mem.FS(), "out")
	got := readCounts(t, c.FS(), "out")
	if len(got) != len(want) {
		t.Fatalf("recovered output has %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("recovered count %q = %d, want %d", k, got[k], v)
		}
	}
}

// A run file that stays truncated must abort the job with a truncation
// error after retries — never silently merge the readable prefix.
func TestSpillTruncatedRunFileAbortsJob(t *testing.T) {
	spillRoot := t.TempDir()
	c := spillCluster(t, 2, 4, Engine{SpillDir: spillRoot})
	writeLines(c.FS(), "in", randomLines(40)...)

	job := wordCountJob("in", "out", false)
	job.NumReducers = 1
	job.FailTask = func(taskID string, attempt int) error {
		if strings.HasSuffix(taskID, "/reduce/0") && attempt == 1 {
			files := runFilesUnder(t, spillRoot)
			if len(files) == 0 {
				t.Fatal("no run files on disk at reduce time")
			}
			fi, err := os.Stat(files[0])
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(files[0], fi.Size()-1); err != nil {
				t.Fatal(err)
			}
		}
		return nil
	}
	_, err := c.Run(job)
	if err == nil {
		t.Fatal("job with a truncated run file succeeded")
	}
	if !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("error does not name the truncation: %v", err)
	}
}

// The engine must reject configurations that cannot spill, and clean its
// per-job directories up after a successful run.
func TestSpillEngineValidationAndCleanup(t *testing.T) {
	if _, err := NewClusterEngine(dfs.New(0), 2, Engine{MemLimit: 1 << 20}); err == nil {
		t.Fatal("MemLimit without SpillDir was accepted")
	}
	if _, err := NewClusterEngine(dfs.New(0), 2, Engine{MergeFanIn: -1}); err == nil {
		t.Fatal("negative MergeFanIn was accepted")
	}

	spillRoot := t.TempDir()
	c := spillCluster(t, 2, 8, Engine{SpillDir: spillRoot})
	writeLines(c.FS(), "in", randomLines(30)...)
	if _, err := c.Run(wordCountJob("in", "out", false)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(spillRoot)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("job left spill debris behind: %v", names)
	}
}

// Lazy DFS splits and the spill engine together: a job whose input and
// shuffle both live on disk still produces in-memory-identical output.
func TestSpillWithDiskDFS(t *testing.T) {
	lines := randomLines(120)
	recs := make([]dfs.Record, len(lines))
	for i, l := range lines {
		recs[i] = dfs.Record(l)
	}

	mem := newTestCluster(3, 8)
	mem.FS().Write("in", recs)
	if _, err := mem.Run(wordCountJob("in", "out", false)); err != nil {
		t.Fatal(err)
	}

	disk, err := dfs.NewDisk(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClusterEngine(disk, 3, Engine{SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := disk.Write("in", recs); err != nil {
		t.Fatal(err)
	}
	st, err := c.Run(wordCountJob("in", "out", false))
	if err != nil {
		t.Fatal(err)
	}
	if st.MapInputRecords != int64(len(lines)) {
		t.Fatalf("map input records = %d, want %d", st.MapInputRecords, len(lines))
	}
	memOut, _ := mem.FS().Read("out")
	diskOut, err := disk.Read("out")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(memOut) != fmt.Sprint(diskOut) {
		t.Fatal("disk-DFS + spill output differs from in-memory output")
	}
}
