package mapreduce

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"knnjoin/internal/dfs"
	"knnjoin/internal/obs"
)

// DistConfig configures a distributed cluster: a coordinator in this
// process plus Workers spawned worker processes (re-executions of the
// current binary — main or TestMain must call RunWorkerIfSpawned). Jobs
// submitted through Cluster.Run execute on the workers when they carry a
// registered Kind; kindless jobs fall back to the in-process backend.
type DistConfig struct {
	// Workers is the number of worker processes; required, positive.
	Workers int

	// Dir is the shared scratch directory for intermediate run files;
	// empty creates (and removes on Close) a temporary directory.
	// Coordinator and workers must see the same filesystem — the
	// engine distributes compute across processes, not machines.
	Dir string

	// LeaseTimeout is how long a task attempt may go without a
	// heartbeat before it is presumed dead and its task re-dispatched.
	// Zero selects 800ms.
	LeaseTimeout time.Duration

	// SpeculativeAfter, when positive, launches a backup attempt for a
	// task whose sole attempt has been running at least this long while
	// the cluster is otherwise idle — straggler re-execution, §3.6 of
	// the MapReduce paper. Zero disables speculation.
	SpeculativeAfter time.Duration

	// Faults is an optional deterministic fault-injection plan shipped
	// to every worker; see FaultPlan. Nil injects nothing.
	Faults *FaultPlan

	// TraceDir, when non-empty, enables tracing: the coordinator and
	// every worker process record spans to per-process JSONL files in
	// this directory (merge and render them with cmd/knntrace).
	TraceDir string

	// Pprof exposes net/http/pprof under /debug/pprof on the
	// coordinator's HTTP server.
	Pprof bool

	// TraceParent, when valid, parents the coordinator's cluster span
	// under a caller-owned span (e.g. a CLI root span), joining the
	// cluster's spans to the caller's trace.
	TraceParent obs.SpanContext
}

// defaultLease is the lease timeout when DistConfig leaves it zero.
const defaultLease = 800 * time.Millisecond

// distEngine is the coordinator: an HTTP server workers poll for tasks,
// plus the spawned worker processes themselves.
type distEngine struct {
	cfg    DistConfig
	fs     dfs.Store
	nodes  int
	dir    string
	ownDir bool

	srv  *http.Server
	base string

	workers []*exec.Cmd
	exited  []chan struct{}
	live    atomic.Int32

	closed atomic.Bool
	mu     sync.Mutex
	cur    *coordJob
	jobSeq atomic.Int64

	// Observability: nil tracer/span when DistConfig.TraceDir is empty
	// (every use no-ops); the metrics registry always exists and backs
	// the coordinator's /metrics endpoint.
	tracer   *obs.Tracer
	rootSpan *obs.Span
	metrics  *obs.Registry
	mJobs    *obs.Counter
	mTasks   *obs.Counter
	mReexec  *obs.Counter
	mSpec    *obs.Counter
	mShufB   *obs.Counter
	mSpillB  *obs.Counter
	mDfsB    *obs.Counter
}

// lease returns the configured lease timeout.
func (e *distEngine) lease() time.Duration {
	if e.cfg.LeaseTimeout > 0 {
		return e.cfg.LeaseTimeout
	}
	return defaultLease
}

// NewDistCluster starts a distributed cluster over fs: a coordinator
// serving on loopback and cfg.Workers worker processes. The caller must
// Close the cluster to reap the workers and the scratch directory. The
// simulated node count n still governs NumReducers defaults and
// makespan accounting, exactly as on the in-process backends.
func NewDistCluster(fs dfs.Store, n int, cfg DistConfig) (*Cluster, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("mapreduce: DistConfig.Workers must be positive, got %d", cfg.Workers)
	}
	c := NewCluster(fs, n)
	eng, err := startDistEngine(fs, n, cfg)
	if err != nil {
		return nil, err
	}
	c.dist = eng
	return c, nil
}

func startDistEngine(fs dfs.Store, nodes int, cfg DistConfig) (*distEngine, error) {
	e := &distEngine{cfg: cfg, fs: fs, nodes: nodes}
	if cfg.TraceDir != "" {
		tr, err := obs.NewTracer(cfg.TraceDir, "coord")
		if err != nil {
			return nil, err
		}
		e.tracer = tr
		e.rootSpan = tr.StartSpan("cluster", cfg.TraceParent)
		e.rootSpan.SetAttr("workers", fmt.Sprint(cfg.Workers))
	}
	e.metrics = obs.NewRegistry()
	e.mJobs = e.metrics.Counter("mr_jobs_total", "Jobs run on this cluster.")
	e.mTasks = e.metrics.Counter("mr_worker_tasks_total", "Task attempts committed by workers.")
	e.mReexec = e.metrics.Counter("mr_reexecuted_attempts_total", "Attempts lost to lease expiry or bad-run repair and re-dispatched.")
	e.mSpec = e.metrics.Counter("mr_speculative_attempts_total", "Speculative backup attempts launched against stragglers.")
	e.mShufB = e.metrics.Counter("mr_shuffle_bytes_total", "Bytes of committed map-side shuffle runs.")
	e.mSpillB = e.metrics.Counter("mr_spill_bytes_total", "Bytes spilled to disk under memory pressure.")
	e.mDfsB = e.metrics.Counter("mr_dfs_chunk_bytes_total", "Bytes served by the coordinator's DFS chunk service.")
	if cfg.Dir == "" {
		dir, err := os.MkdirTemp("", "knnjoin-mr-*")
		if err != nil {
			return nil, fmt.Errorf("mapreduce: scratch dir: %w", err)
		}
		e.dir, e.ownDir = dir, true
	} else {
		abs, err := filepath.Abs(cfg.Dir)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: scratch dir: %w", err)
		}
		if err := os.MkdirAll(abs, 0o755); err != nil {
			return nil, fmt.Errorf("mapreduce: scratch dir: %w", err)
		}
		e.dir = abs
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		e.closeTracer()
		e.cleanupDir()
		return nil, fmt.Errorf("mapreduce: coordinator listen: %w", err)
	}
	e.base = "http://" + ln.Addr().String()
	mux := http.NewServeMux()
	mux.HandleFunc("/poll", jsonHandler(func(r *pollRequest) pollResponse { return e.assign(r.Worker) }))
	mux.HandleFunc("/done", jsonHandler(func(c *completion) completionResponse { return e.complete(c) }))
	mux.HandleFunc("/heartbeat", jsonHandler(func(h *heartbeatMsg) heartbeatResponse { return e.heartbeat(h) }))
	mux.Handle("/dfs/", http.StripPrefix("/dfs", countBytes(dfs.NewServer(fs), e.mDfsB)))
	metricsHandler := e.metrics.Handler()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		e.refreshTaskGauges()
		metricsHandler.ServeHTTP(w, r)
	})
	if cfg.Pprof {
		obs.RegisterPprof(mux)
	}
	e.srv = &http.Server{Handler: mux}
	go e.srv.Serve(ln)

	exe, err := os.Executable()
	if err != nil {
		e.shutdown()
		return nil, fmt.Errorf("mapreduce: locate own binary for worker re-exec: %w", err)
	}
	hb := e.lease() / 4
	for i := 0; i < cfg.Workers; i++ {
		wc := workerConfig{URL: e.base, Index: i, HeartbeatMs: hb.Milliseconds(),
			Faults: cfg.Faults, TraceDir: cfg.TraceDir}
		raw, err := json.Marshal(wc)
		if err != nil {
			e.shutdown()
			return nil, fmt.Errorf("mapreduce: worker config: %w", err)
		}
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), workerEnv+"="+string(raw))
		// Workers share the parent's stderr; stdout stays clean for CLIs
		// that write results there.
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			e.shutdown()
			return nil, fmt.Errorf("mapreduce: spawn worker %d: %w", i, err)
		}
		done := make(chan struct{})
		e.workers = append(e.workers, cmd)
		e.exited = append(e.exited, done)
		e.live.Add(1)
		go func() {
			cmd.Wait()
			e.live.Add(-1)
			close(done)
		}()
	}
	return e, nil
}

// CoordinatorURL returns the coordinator's base URL for a distributed
// cluster ("" for in-process clusters) — its /metrics endpoint serves
// the engine's metric families in Prometheus text format.
func (c *Cluster) CoordinatorURL() string {
	if c.dist == nil {
		return ""
	}
	return c.dist.base
}

// refreshTaskGauges recomputes the task-state gauges from the current
// job's task table on each /metrics scrape.
func (e *distEngine) refreshTaskGauges() {
	var pending, running, done int64
	e.mu.Lock()
	if j := e.cur; j != nil {
		for _, tasks := range [][]distTask{j.maps, j.reduces} {
			for i := range tasks {
				switch tasks[i].state {
				case taskPending:
					pending++
				case taskRunning:
					running++
				case taskDone:
					done++
				}
			}
		}
	}
	e.mu.Unlock()
	e.metrics.Gauge("mr_tasks_pending", "Tasks awaiting dispatch in the current job.").Set(pending)
	e.metrics.Gauge("mr_tasks_running", "Tasks with at least one live attempt in the current job.").Set(running)
	e.metrics.Gauge("mr_tasks_done", "Tasks committed in the current job.").Set(done)
	e.metrics.Gauge("mr_workers_live", "Worker processes currently alive.").Set(int64(e.live.Load()))
}

// countBytes wraps a handler, adding every response body byte to c.
func countBytes(h http.Handler, c *obs.Counter) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.ServeHTTP(&countingWriter{ResponseWriter: w, c: c}, r)
	})
}

// countingWriter tallies written bytes into an obs counter.
type countingWriter struct {
	http.ResponseWriter
	c *obs.Counter
}

// Write implements io.Writer, counting the bytes through.
func (w *countingWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.c.Add(int64(n))
	return n, err
}

// closeTracer ends the engine's cluster span and closes its tracer.
func (e *distEngine) closeTracer() {
	e.rootSpan.End()
	e.tracer.Close()
}

// jsonHandler adapts a request/response function to an HTTP endpoint.
func jsonHandler[Req, Resp any](fn func(*Req) Resp) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req Req
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(fn(&req))
	}
}

// close shuts the cluster down: fails any in-flight job, kills the
// workers, stops the coordinator server, and removes an owned scratch
// directory once every worker has been reaped.
func (e *distEngine) close() error {
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	e.mu.Lock()
	if e.cur != nil {
		e.finishLocked(e.cur, errors.New("mapreduce: cluster closed"))
	}
	e.mu.Unlock()
	for _, cmd := range e.workers {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
	}
	for _, done := range e.exited {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
		}
	}
	e.srv.Close()
	e.closeTracer()
	e.cleanupDir()
	return nil
}

func (e *distEngine) cleanupDir() {
	if e.ownDir {
		os.RemoveAll(e.dir)
	}
}

// shutdown tears down a partially started engine.
func (e *distEngine) shutdown() {
	e.closed.Store(true)
	for _, cmd := range e.workers {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
	}
	if e.srv != nil {
		e.srv.Close()
	}
	e.closeTracer()
	e.cleanupDir()
}
