package mapreduce

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"knnjoin/internal/dfs"
)

// DistConfig configures a distributed cluster: a coordinator in this
// process plus Workers spawned worker processes (re-executions of the
// current binary — main or TestMain must call RunWorkerIfSpawned). Jobs
// submitted through Cluster.Run execute on the workers when they carry a
// registered Kind; kindless jobs fall back to the in-process backend.
type DistConfig struct {
	// Workers is the number of worker processes; required, positive.
	Workers int

	// Dir is the shared scratch directory for intermediate run files;
	// empty creates (and removes on Close) a temporary directory.
	// Coordinator and workers must see the same filesystem — the
	// engine distributes compute across processes, not machines.
	Dir string

	// LeaseTimeout is how long a task attempt may go without a
	// heartbeat before it is presumed dead and its task re-dispatched.
	// Zero selects 800ms.
	LeaseTimeout time.Duration

	// SpeculativeAfter, when positive, launches a backup attempt for a
	// task whose sole attempt has been running at least this long while
	// the cluster is otherwise idle — straggler re-execution, §3.6 of
	// the MapReduce paper. Zero disables speculation.
	SpeculativeAfter time.Duration

	// Faults is an optional deterministic fault-injection plan shipped
	// to every worker; see FaultPlan. Nil injects nothing.
	Faults *FaultPlan
}

// defaultLease is the lease timeout when DistConfig leaves it zero.
const defaultLease = 800 * time.Millisecond

// distEngine is the coordinator: an HTTP server workers poll for tasks,
// plus the spawned worker processes themselves.
type distEngine struct {
	cfg    DistConfig
	fs     dfs.Store
	nodes  int
	dir    string
	ownDir bool

	srv  *http.Server
	base string

	workers []*exec.Cmd
	exited  []chan struct{}
	live    atomic.Int32

	closed atomic.Bool
	mu     sync.Mutex
	cur    *coordJob
	jobSeq atomic.Int64
}

// lease returns the configured lease timeout.
func (e *distEngine) lease() time.Duration {
	if e.cfg.LeaseTimeout > 0 {
		return e.cfg.LeaseTimeout
	}
	return defaultLease
}

// NewDistCluster starts a distributed cluster over fs: a coordinator
// serving on loopback and cfg.Workers worker processes. The caller must
// Close the cluster to reap the workers and the scratch directory. The
// simulated node count n still governs NumReducers defaults and
// makespan accounting, exactly as on the in-process backends.
func NewDistCluster(fs dfs.Store, n int, cfg DistConfig) (*Cluster, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("mapreduce: DistConfig.Workers must be positive, got %d", cfg.Workers)
	}
	c := NewCluster(fs, n)
	eng, err := startDistEngine(fs, n, cfg)
	if err != nil {
		return nil, err
	}
	c.dist = eng
	return c, nil
}

func startDistEngine(fs dfs.Store, nodes int, cfg DistConfig) (*distEngine, error) {
	e := &distEngine{cfg: cfg, fs: fs, nodes: nodes}
	if cfg.Dir == "" {
		dir, err := os.MkdirTemp("", "knnjoin-mr-*")
		if err != nil {
			return nil, fmt.Errorf("mapreduce: scratch dir: %w", err)
		}
		e.dir, e.ownDir = dir, true
	} else {
		abs, err := filepath.Abs(cfg.Dir)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: scratch dir: %w", err)
		}
		if err := os.MkdirAll(abs, 0o755); err != nil {
			return nil, fmt.Errorf("mapreduce: scratch dir: %w", err)
		}
		e.dir = abs
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		e.cleanupDir()
		return nil, fmt.Errorf("mapreduce: coordinator listen: %w", err)
	}
	e.base = "http://" + ln.Addr().String()
	mux := http.NewServeMux()
	mux.HandleFunc("/poll", jsonHandler(func(r *pollRequest) pollResponse { return e.assign(r.Worker) }))
	mux.HandleFunc("/done", jsonHandler(func(c *completion) completionResponse { return e.complete(c) }))
	mux.HandleFunc("/heartbeat", jsonHandler(func(h *heartbeatMsg) heartbeatResponse { return e.heartbeat(h) }))
	mux.Handle("/dfs/", http.StripPrefix("/dfs", dfs.NewServer(fs)))
	e.srv = &http.Server{Handler: mux}
	go e.srv.Serve(ln)

	exe, err := os.Executable()
	if err != nil {
		e.shutdown()
		return nil, fmt.Errorf("mapreduce: locate own binary for worker re-exec: %w", err)
	}
	hb := e.lease() / 4
	for i := 0; i < cfg.Workers; i++ {
		wc := workerConfig{URL: e.base, Index: i, HeartbeatMs: hb.Milliseconds(), Faults: cfg.Faults}
		raw, err := json.Marshal(wc)
		if err != nil {
			e.shutdown()
			return nil, fmt.Errorf("mapreduce: worker config: %w", err)
		}
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), workerEnv+"="+string(raw))
		// Workers share the parent's stderr; stdout stays clean for CLIs
		// that write results there.
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			e.shutdown()
			return nil, fmt.Errorf("mapreduce: spawn worker %d: %w", i, err)
		}
		done := make(chan struct{})
		e.workers = append(e.workers, cmd)
		e.exited = append(e.exited, done)
		e.live.Add(1)
		go func() {
			cmd.Wait()
			e.live.Add(-1)
			close(done)
		}()
	}
	return e, nil
}

// jsonHandler adapts a request/response function to an HTTP endpoint.
func jsonHandler[Req, Resp any](fn func(*Req) Resp) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req Req
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(fn(&req))
	}
}

// close shuts the cluster down: fails any in-flight job, kills the
// workers, stops the coordinator server, and removes an owned scratch
// directory once every worker has been reaped.
func (e *distEngine) close() error {
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	e.mu.Lock()
	if e.cur != nil {
		e.finishLocked(e.cur, errors.New("mapreduce: cluster closed"))
	}
	e.mu.Unlock()
	for _, cmd := range e.workers {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
	}
	for _, done := range e.exited {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
		}
	}
	e.srv.Close()
	e.cleanupDir()
	return nil
}

func (e *distEngine) cleanupDir() {
	if e.ownDir {
		os.RemoveAll(e.dir)
	}
}

// shutdown tears down a partially started engine.
func (e *distEngine) shutdown() {
	e.closed.Store(true)
	for _, cmd := range e.workers {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
	}
	if e.srv != nil {
		e.srv.Close()
	}
	e.cleanupDir()
}
