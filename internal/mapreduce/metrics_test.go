package mapreduce

import (
	"io"
	"net/http"
	"testing"

	"knnjoin/internal/dfs"
	"knnjoin/internal/obs"
)

// TestCoordinatorMetricsParse runs one job on a distributed cluster and
// scrapes the coordinator's GET /metrics: the payload must parse as
// Prometheus text exposition and its counters must reflect the job.
func TestCoordinatorMetricsParse(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed cluster spawns worker processes; skipped with -short")
	}
	fs := dfs.New(8)
	wordRecords("in", 60)(fs)
	c, err := NewDistCluster(fs, 4, DistConfig{Workers: 2})
	if err != nil {
		t.Fatalf("NewDistCluster: %v", err)
	}
	defer c.Close()
	spec := testJobSpec{In: "in", Out: "out", NumReducers: 2, Mode: "wordcount"}
	if _, err := c.Run(testKind.New(spec)); err != nil {
		t.Fatalf("job: %v", err)
	}

	resp, err := http.Get(c.CoordinatorURL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d: %s", resp.StatusCode, body)
	}
	fams, err := obs.ParseText(string(body))
	if err != nil {
		t.Fatalf("coordinator /metrics does not parse: %v\n%s", err, body)
	}
	byName := make(map[string]obs.Family, len(fams))
	for _, f := range fams {
		byName[f.Name] = f
	}
	jobs, ok := byName["mr_jobs_total"]
	if !ok {
		t.Fatal("mr_jobs_total missing from coordinator /metrics")
	}
	if jobs.Samples[0].Value < 1 {
		t.Fatalf("mr_jobs_total = %g, want >= 1", jobs.Samples[0].Value)
	}
	tasks, ok := byName["mr_worker_tasks_total"]
	if !ok {
		t.Fatal("mr_worker_tasks_total missing from coordinator /metrics")
	}
	if tasks.Samples[0].Value < 1 {
		t.Fatalf("mr_worker_tasks_total = %g, want >= 1", tasks.Samples[0].Value)
	}
}
