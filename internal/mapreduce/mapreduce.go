// Package mapreduce is an in-process MapReduce runtime with Hadoop-like
// semantics, built to host the paper's two-job kNN-join pipeline.
//
// It reproduces the properties the paper's algorithms and measurements
// depend on:
//
//   - map tasks consume DFS input splits (one task per split, §2.2);
//   - intermediate key-value pairs carry raw byte-comparable keys, are
//     partitioned across N reducers, and each map task sorts its
//     per-reducer output into a run (Hadoop's map-side sort/spill);
//   - reduce tasks k-way-merge the sorted runs of every map task and
//     stream each key group to the reduce function through an iterator —
//     no reducer ever materializes a per-key value table;
//   - an optional secondary sort (a value comparator, or composite keys
//     grouped on a key prefix) delivers each group's values in a
//     caller-chosen order, like Hadoop's grouping comparator;
//   - every byte crossing the shuffle is counted, which is exactly the
//     "shuffling cost" series of Figures 8–12;
//   - the simulated cluster has a fixed number of nodes, each running one
//     map and one reduce slot (the paper's Hadoop configuration), and the
//     engine reports both wall-clock phase times and a deterministic
//     simulated makespan based on user-reported work units;
//   - tasks can fail and are retried, so the fault-tolerance path the
//     paper credits MapReduce for is present and testable;
//   - the shuffle has two execution backends selected by Engine: the
//     in-memory default, and an out-of-core backend that spills map-side
//     sorted runs to length-prefixed run files and streams them back
//     through a bounded-memory k-way merge — Hadoop's external shuffle,
//     with byte-identical job output either way.
//
// Jobs are expressed with plain functions rather than an interface zoo:
// a Map function, an optional Reduce function (nil makes a map-only job,
// as the paper's first job is), and optional Combine/Setup hooks.
package mapreduce

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
	"slices"
	"sync"
	"time"

	"knnjoin/internal/dfs"
)

// KV is an intermediate key-value pair. Keys are raw bytes and compare
// with bytes.Compare, so numeric keys encoded big-endian sort in numeric
// order (string-keyed engines sort "10" before "9"; this one does not).
type KV struct {
	Key   []byte
	Value []byte
}

// Emit is the output callback handed to map, combine and reduce functions.
// The engine retains both slices, so callers must not reuse their backing
// arrays after emitting.
type Emit func(key, value []byte)

// MapFunc processes one input record. ctx carries side data and counters.
type MapFunc func(ctx *TaskContext, record dfs.Record, emit Emit) error

// ReduceFunc processes one key group. key is the group's first full key
// in sort order; values streams every value of the group, sorted by full
// key then ValueCompare (remaining ties arrive in a deterministic but
// unspecified order, map tasks first). The same signature serves
// combiners.
type ReduceFunc func(ctx *TaskContext, key []byte, values *Values, emit Emit) error

// SetupFunc runs once per task before any record is processed — the
// paper's "map-setup" hook of Algorithm 3, used there to precompute the
// LB(P_j^S, G_i) table.
type SetupFunc func(ctx *TaskContext) error

// PartitionFunc routes a key to one of n reducers. With GroupKeyPrefix
// set, all keys sharing a group prefix must route identically.
type PartitionFunc func(key []byte, n int) int

// CompareFunc is a three-way comparator over encoded values, the
// secondary-sort hook: negative means a before b.
type CompareFunc func(a, b []byte) int

// DefaultPartition hashes the key with FNV-1a, Hadoop-style.
func DefaultPartition(key []byte, n int) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % uint32(n))
}

// Uint32Partition routes keys carrying a fixed-width big-endian uint32
// prefix (codec.Uint32Key, codec.JoinKey) to reducer value%n — the
// modulo routing every join driver uses for its reducer ids.
func Uint32Partition(key []byte, n int) int {
	if len(key) < 4 {
		return 0
	}
	return int(binary.BigEndian.Uint32(key) % uint32(n))
}

// Job describes one MapReduce job.
type Job struct {
	Name   string
	Input  []string // DFS input files
	Output string   // DFS output file; reduce (or map-only) emissions land here

	// Kind names the registered job constructor (see DefineKind) that can
	// rebuild this job — functions and side data included — in another
	// process, and Spec is the gob-encoded argument it rebuilds from.
	// Functions cannot cross a process boundary, so only jobs built
	// through a Kind run on worker processes; a distributed cluster
	// executes kindless jobs locally on the coordinator instead. The
	// in-process engine ignores both fields.
	Kind string
	Spec []byte

	Map         MapFunc
	MapSetup    SetupFunc
	Reduce      ReduceFunc // nil ⇒ map-only job
	ReduceSetup SetupFunc
	Combine     ReduceFunc // optional map-side combiner, runs over sorted runs
	Partition   PartitionFunc

	// ValueCompare, when non-nil, secondary-sorts the values within each
	// key: map-side runs order equal-key pairs by it and the reduce-side
	// merge preserves that order, so reduce functions see values sorted
	// without buffering them.
	ValueCompare CompareFunc

	// GroupKeyPrefix, when positive, makes reduce groups span every key
	// sharing the same first GroupKeyPrefix bytes — Hadoop's grouping
	// comparator for composite keys. Sorting always uses the full key, so
	// a composite key's suffix (e.g. a pivot-distance) orders the values
	// within the group. The partitioner must route on the same prefix
	// (DefaultPartition is wrapped automatically; custom partitioners are
	// the caller's contract).
	GroupKeyPrefix int

	NumReducers int // defaults to the cluster's node count

	// Side is read-only data shipped to every task, the equivalent of
	// Hadoop's distributed cache (the paper ships the pivot set this way).
	Side map[string]any

	// MaxAttempts bounds task retries. Zero means 1 attempt.
	MaxAttempts int

	// FailTask, when non-nil, is consulted before each task attempt and
	// may return an injected error — used by tests to exercise retries.
	FailTask func(taskID string, attempt int) error
}

// resolvePartition returns the job's partitioner, defaulting to FNV
// hashing of the grouping view of the key. Both execution backends (and
// worker processes) resolve through here, so routing is identical
// everywhere.
func resolvePartition(job *Job) PartitionFunc {
	if job.Partition != nil {
		return job.Partition
	}
	prefix := job.GroupKeyPrefix
	return func(key []byte, n int) int {
		return DefaultPartition(groupOf(key, prefix), n)
	}
}

// groupOf returns the grouping view of key: its first prefix bytes when
// prefix is positive and the key is long enough, the whole key otherwise.
func groupOf(key []byte, prefix int) []byte {
	if prefix > 0 && len(key) > prefix {
		return key[:prefix]
	}
	return key
}

// TaskContext is the per-task environment passed to user functions.
type TaskContext struct {
	// JobName and TaskID identify the running task, e.g. "knn/map/3".
	JobName string
	TaskID  string

	side     map[string]any
	counters *CounterSet
	work     int64
}

// Side returns the named side-data value, or nil when absent.
func (c *TaskContext) Side(name string) any { return c.side[name] }

// Counter adds delta to the named user counter.
func (c *TaskContext) Counter(name string, delta int64) { c.counters.Add(name, delta) }

// AddWork reports abstract work units (the repo uses distance
// computations) consumed by this task. The scheduler turns per-task work
// into the simulated makespans reported in JobStats.
func (c *TaskContext) AddWork(units int64) { c.work += units }

// CounterSet is a concurrency-safe named-counter bag.
type CounterSet struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounterSet returns an empty counter set.
func NewCounterSet() *CounterSet { return &CounterSet{m: make(map[string]int64)} }

// Add increments the named counter by delta.
func (s *CounterSet) Add(name string, delta int64) {
	s.mu.Lock()
	s.m[name] += delta
	s.mu.Unlock()
}

// Get returns the named counter's value.
func (s *CounterSet) Get(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[name]
}

// Snapshot returns a copy of all counters.
func (s *CounterSet) Snapshot() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.m))
	for k, v := range s.m {
		out[k] = v
	}
	return out
}

// JobStats reports what one job did and what it cost.
type JobStats struct {
	Job               string
	MapTasks          int
	ReduceTasks       int
	MapInputRecords   int64
	ShuffleRecords    int64 // records crossing the shuffle (post-combine)
	ShuffleBytes      int64 // key+value bytes crossing the shuffle
	ReduceGroups      int64
	OutputRecords     int64
	MapWall           time.Duration
	ReduceWall        time.Duration
	SimMapMakespan    int64 // greedy-scheduled max work per node, map phase
	SimReduceMakespan int64
	// ReduceInputRecords holds each reduce task's input record count —
	// the raw material of load-balance analysis (the paper's §6.1.1
	// "unbalanced workload" discussion made measurable).
	ReduceInputRecords []int64
	// SpilledRuns and SpilledBytes count the sorted runs (and their
	// key+value payload) written to the spill directory, including
	// intermediate fan-in merges — zero on the in-memory backend.
	SpilledRuns  int64
	SpilledBytes int64
	// PeakResidentBytes is the high-water mark of shuffle bytes held in
	// memory: retained runs plus open merge read-ahead buffers. On the
	// in-memory backend this reaches the full shuffle size; on the spill
	// backend it stays within the engine's MemLimit. The distributed
	// backend reports 0 — residency is per worker process there.
	PeakResidentBytes int64
	// WorkerTasks counts tasks committed by worker processes — zero
	// unless the job ran on a distributed cluster, where it equals
	// MapTasks + ReduceTasks (proof the job did not fall back to the
	// in-process path).
	WorkerTasks int
	// ReexecutedAttempts counts task re-dispatches forced by failure:
	// lost leases (dead or frozen workers) and damaged intermediate
	// runs. Zero on a fault-free run.
	ReexecutedAttempts int64
	// SpeculativeAttempts counts backup attempts launched against
	// stragglers (DistConfig.SpeculativeAfter).
	SpeculativeAttempts int64
	Counters            map[string]int64
}

// ReduceSkew returns the max-over-mean ratio of reduce-task input sizes:
// 1 is perfect balance; the job's critical path grows with this factor.
// Jobs with no reduce input report 0.
func (s JobStats) ReduceSkew() float64 {
	var total, max int64
	for _, n := range s.ReduceInputRecords {
		total += n
		if n > max {
			max = n
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(s.ReduceInputRecords))
	return float64(max) / mean
}

// Total wall time of the job's compute phases.
func (s JobStats) Wall() time.Duration { return s.MapWall + s.ReduceWall }

// Cluster is a simulated shared-nothing cluster: a DFS plus a fixed number
// of nodes, each contributing one map slot and one reduce slot. The
// cluster's Engine decides where shuffle data lives between the phases —
// the zero Engine keeps every run in memory, a spill-configured Engine
// runs the out-of-core external shuffle.
type Cluster struct {
	fs    dfs.Store
	nodes int
	eng   Engine
	dist  *distEngine
}

// NewCluster creates an in-memory-shuffle cluster of n nodes over fs.
// n must be positive.
func NewCluster(fs dfs.Store, n int) *Cluster {
	if n <= 0 {
		panic("mapreduce: cluster needs at least one node")
	}
	return &Cluster{fs: fs, nodes: n}
}

// NewClusterEngine creates a cluster of n nodes over fs with an explicit
// execution backend. n must be positive.
func NewClusterEngine(fs dfs.Store, n int, eng Engine) (*Cluster, error) {
	if err := eng.validate(); err != nil {
		return nil, err
	}
	c := NewCluster(fs, n)
	c.eng = eng
	return c, nil
}

// FS returns the cluster's filesystem.
func (c *Cluster) FS() dfs.Store { return c.fs }

// Nodes returns the number of simulated nodes.
func (c *Cluster) Nodes() int { return c.nodes }

// Distributed reports whether jobs with a registered Kind execute on
// worker processes (see NewDistCluster).
func (c *Cluster) Distributed() bool { return c.dist != nil }

// Close releases the cluster's execution backend. On a distributed
// cluster it kills the worker processes, stops the coordinator and
// removes the scratch directory; on the in-process backends it is a
// no-op. Close is idempotent.
func (c *Cluster) Close() error {
	if c.dist != nil {
		return c.dist.close()
	}
	return nil
}

// taskResult carries one finished map task's output: one sorted run per
// reducer (map-only jobs skip the sort and keep emission order), each
// either resident in memory or spilled to a run file.
type taskResult struct {
	index   int
	runs    []runData // runs[r] is this task's sorted run for reducer r
	work    int64
	records int64 // input records consumed
}

// Run executes the job and returns its statistics. On any task error
// (after retries) the job aborts with that error.
func (c *Cluster) Run(job *Job) (*JobStats, error) {
	if job.Map == nil {
		return nil, fmt.Errorf("mapreduce: job %q has no Map function", job.Name)
	}
	if job.Output == "" {
		return nil, fmt.Errorf("mapreduce: job %q has no Output file", job.Name)
	}
	if job.Combine != nil && job.Reduce == nil {
		// A combiner only exists to shrink the shuffle; a map-only job has
		// none, and silently skipping it would change the output contract.
		return nil, fmt.Errorf("mapreduce: job %q has a Combine function but no Reduce", job.Name)
	}
	nReduce := job.NumReducers
	if nReduce <= 0 {
		nReduce = c.nodes
	}
	partition := resolvePartition(job)
	maxAttempts := job.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 1
	}

	if c.dist != nil && job.Kind != "" {
		// Distributed backend: tasks execute on worker processes, which
		// rebuild the job from its registered kind. Jobs without a kind
		// (no way to rebuild their functions elsewhere) fall through to
		// the in-process path below.
		return c.dist.run(job, nReduce, maxAttempts)
	}

	splits, err := c.fs.Splits(job.Input...)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", job.Name, err)
	}

	rs := &runState{memLimit: c.eng.MemLimit}
	rs.fanIn, rs.bufSize = c.eng.mergeBudget(c.nodes)
	if c.eng.SpillDir != "" && job.Reduce != nil {
		dir, derr := os.MkdirTemp(c.eng.SpillDir, "job-*")
		if derr != nil {
			return nil, fmt.Errorf("mapreduce: job %q: spill dir: %w", job.Name, derr)
		}
		rs.spillDir = dir
		defer os.RemoveAll(dir)
	}

	counters := NewCounterSet()
	stats := &JobStats{Job: job.Name, MapTasks: len(splits), ReduceTasks: nReduce}

	// ---- Map phase ----------------------------------------------------
	mapStart := time.Now()
	results := make([]*taskResult, len(splits))
	mapWork := make([]int64, len(splits))
	err = c.runParallel(len(splits), func(i int) error {
		res, werr := c.runMapTask(job, rs, splits[i], i, nReduce, partition, counters, maxAttempts)
		if werr != nil {
			return werr
		}
		results[i] = res
		mapWork[i] = res.work
		return nil
	})
	if err != nil {
		return nil, err
	}
	stats.MapWall = time.Since(mapStart)
	for _, res := range results {
		stats.MapInputRecords += res.records
	}
	stats.SimMapMakespan = makespan(mapWork, c.nodes)

	if job.Reduce == nil {
		// Map-only job: emissions of every task land in the output file in
		// task order, values only (the key is advisory for map-only jobs).
		var out []dfs.Record
		for _, res := range results {
			for _, run := range res.runs {
				for _, kv := range run.kvs {
					out = append(out, dfs.Record(kv.Value))
				}
			}
		}
		if werr := c.fs.Write(job.Output, out); werr != nil {
			return nil, fmt.Errorf("mapreduce: job %q: %w", job.Name, werr)
		}
		stats.OutputRecords = int64(len(out))
		stats.Counters = counters.Snapshot()
		return stats, nil
	}

	// ---- Shuffle --------------------------------------------------------
	// Hand each reducer the sorted runs destined for it, counting every
	// key and value byte that crosses — the paper's "shuffling cost".
	// Spilled runs were counted as they were written; resident runs are
	// summed here.
	reducerRuns := make([][]runData, nReduce)
	stats.ReduceInputRecords = make([]int64, nReduce)
	for _, res := range results {
		for r, run := range res.runs {
			if run.empty() || run.records() == 0 {
				continue
			}
			stats.ShuffleBytes += run.shuffleBytes()
			stats.ShuffleRecords += run.records()
			stats.ReduceInputRecords[r] += run.records()
			reducerRuns[r] = append(reducerRuns[r], run)
		}
	}

	// ---- Reduce phase ---------------------------------------------------
	reduceStart := time.Now()
	outputs := make([][]dfs.Record, nReduce)
	reduceWork := make([]int64, nReduce)
	var groupCount int64
	var groupMu sync.Mutex
	err = c.runParallel(nReduce, func(r int) error {
		recs, groups, work, rerr := c.runReduceTask(job, rs, r, reducerRuns[r], counters, maxAttempts)
		if rerr != nil {
			return rerr
		}
		outputs[r] = recs
		reduceWork[r] = work
		groupMu.Lock()
		groupCount += groups
		groupMu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	stats.ReduceWall = time.Since(reduceStart)
	stats.ReduceGroups = groupCount
	stats.SimReduceMakespan = makespan(reduceWork, c.nodes)

	var out []dfs.Record
	for _, recs := range outputs {
		out = append(out, recs...)
	}
	if werr := c.fs.Write(job.Output, out); werr != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", job.Name, werr)
	}
	stats.OutputRecords = int64(len(out))
	stats.SpilledRuns = rs.spilledRuns.Load()
	stats.SpilledBytes = rs.spilledBytes.Load()
	stats.PeakResidentBytes = rs.peak.Load()
	stats.Counters = counters.Snapshot()
	return stats, nil
}

func (c *Cluster) runMapTask(job *Job, rs *runState, split dfs.Split, index, nReduce int, partition PartitionFunc, counters *CounterSet, maxAttempts int) (*taskResult, error) {
	taskID := fmt.Sprintf("%s/map/%d", job.Name, index)
	var lastErr error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		res, err := c.attemptMapTask(job, rs, split, index, nReduce, partition, counters, taskID, attempt)
		if err == nil {
			return res, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("mapreduce: task %s failed after %d attempts: %w", taskID, maxAttempts, lastErr)
}

func (c *Cluster) attemptMapTask(job *Job, rs *runState, split dfs.Split, index, nReduce int, partition PartitionFunc, counters *CounterSet, taskID string, attempt int) (*taskResult, error) {
	if job.FailTask != nil {
		if err := job.FailTask(taskID, attempt); err != nil {
			return nil, err
		}
	}
	ctx := &TaskContext{JobName: job.Name, TaskID: taskID, side: job.Side, counters: counters}
	if job.MapSetup != nil {
		if err := job.MapSetup(ctx); err != nil {
			return nil, fmt.Errorf("map setup: %w", err)
		}
	}
	records, err := split.Load()
	if err != nil {
		return nil, fmt.Errorf("map input: %w", err)
	}
	res := &taskResult{index: index, runs: make([]runData, nReduce), records: int64(len(records))}
	emit := func(key, value []byte) {
		r := 0
		if nReduce > 1 {
			r = partition(key, nReduce)
			if r < 0 || r >= nReduce {
				panic(fmt.Sprintf("mapreduce: partition function returned %d for %d reducers", r, nReduce))
			}
		}
		res.runs[r].kvs = append(res.runs[r].kvs, KV{Key: key, Value: value})
	}
	for _, rec := range records {
		if err := job.Map(ctx, rec, emit); err != nil {
			return nil, fmt.Errorf("map record: %w", err)
		}
	}
	if job.Reduce != nil {
		// Map-side sort: turn each bucket into a sorted run (the spill
		// sort of a real Hadoop map task). Map-only jobs skip this — their
		// output contract is emission order.
		for r := range res.runs {
			sortRun(res.runs[r].kvs, job.ValueCompare)
		}
		if job.Combine != nil {
			for r := range res.runs {
				combined, err := combineRun(ctx, job, res.runs[r].kvs)
				if err != nil {
					return nil, fmt.Errorf("combine: %w", err)
				}
				res.runs[r].kvs = combined
			}
		}
		if err := c.retainOrSpill(rs, res); err != nil {
			return nil, err
		}
	}
	res.work = ctx.work
	return res, nil
}

// retainOrSpill decides where the finished task's sorted runs live. The
// task's bytes are first charged against the resident budget; if that
// would exceed the engine's MemLimit (or the engine always spills), the
// charge is reverted and every run goes to a run file instead. A run
// replays the identical sorted record sequence from either home, so the
// decision — which may differ across runs of a racy workload — can never
// change job output.
func (c *Cluster) retainOrSpill(rs *runState, res *taskResult) error {
	var total int64
	for _, run := range res.runs {
		total += kvBytes(run.kvs)
	}
	if rs.spillDir == "" {
		rs.reserve(total)
		return nil
	}
	// Retention may use half of MemLimit; the other half belongs to the
	// merge buffers (Engine.mergeBudget), so the two together stay under
	// the limit. The charge commits only when it fits (CAS loop) — a
	// speculative add would be visible to concurrent peak observations
	// and could report a never-retained residency above the limit.
	if rs.memLimit > 0 {
		for {
			cur := rs.resident.Load()
			n := cur + total
			if n > rs.memLimit/2 {
				break
			}
			if rs.resident.CompareAndSwap(cur, n) {
				rs.updatePeak(n)
				return nil
			}
		}
	}
	for r := range res.runs {
		if len(res.runs[r].kvs) == 0 {
			continue
		}
		rf, err := writeRunFile(rs, res.runs[r].kvs)
		if err != nil {
			return err
		}
		res.runs[r] = runData{file: rf}
	}
	return nil
}

// sortRun orders kvs by key bytes, then by the optional value comparator.
// The sort is unstable (a stable sort's merge rotations dominate the
// shuffle cost on duplicate-heavy runs) but deterministic: ties land in
// an unspecified yet reproducible order, so jobs stay deterministic per
// configuration; a job that needs a defined value order states it with
// ValueCompare.
func sortRun(kvs []KV, vcmp CompareFunc) {
	slices.SortFunc(kvs, func(a, b KV) int {
		if c := bytes.Compare(a.Key, b.Key); c != 0 {
			return c
		}
		if vcmp != nil {
			return vcmp(a.Value, b.Value)
		}
		return 0
	})
}

// combineRun streams the sorted run's key groups through the combiner and
// returns the combined output as a new sorted run. Combiners group on the
// full key (Hadoop's contract — the grouping prefix applies to reducers
// only, so a composite key's secondary order survives combining).
func combineRun(ctx *TaskContext, job *Job, run []KV) ([]KV, error) {
	if len(run) == 0 {
		return run, nil
	}
	m := newMerger([][]KV{run}, job.ValueCompare)
	out := make([]KV, 0, len(run))
	emit := func(key, value []byte) {
		out = append(out, KV{Key: key, Value: value})
	}
	if _, err := streamGroups(ctx, job.Combine, m, 0, emit); err != nil {
		return nil, err
	}
	// The combiner may emit in any order; restore run sortedness for the
	// reduce-side merge.
	sortRun(out, job.ValueCompare)
	return out, nil
}

func (c *Cluster) runReduceTask(job *Job, rs *runState, index int, runs []runData, counters *CounterSet, maxAttempts int) ([]dfs.Record, int64, int64, error) {
	taskID := fmt.Sprintf("%s/reduce/%d", job.Name, index)
	var lastErr error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		recs, groups, work, err := c.attemptReduceTask(job, rs, runs, counters, taskID, attempt)
		if err == nil {
			return recs, groups, work, nil
		}
		lastErr = err
	}
	return nil, 0, 0, fmt.Errorf("mapreduce: task %s failed after %d attempts: %w", taskID, maxAttempts, lastErr)
}

func (c *Cluster) attemptReduceTask(job *Job, rs *runState, runs []runData, counters *CounterSet, taskID string, attempt int) ([]dfs.Record, int64, int64, error) {
	if job.FailTask != nil {
		if err := job.FailTask(taskID, attempt); err != nil {
			return nil, 0, 0, err
		}
	}
	ctx := &TaskContext{JobName: job.Name, TaskID: taskID, side: job.Side, counters: counters}
	if job.ReduceSetup != nil {
		if err := job.ReduceSetup(ctx); err != nil {
			return nil, 0, 0, fmt.Errorf("reduce setup: %w", err)
		}
	}
	// Runs are immutable inputs, so a retry simply rebuilds the merge —
	// reopening spilled files from scratch. When the reducer received more
	// runs than the merge fan-in admits, contiguous groups are first
	// merged into intermediate run files (bounding the open read-ahead
	// buffers), which cannot change the merged order.
	runs, err := reduceFanIn(rs, runs, job.ValueCompare, rs.fanIn)
	if err != nil {
		return nil, 0, 0, err
	}
	cursors := openRuns(rs, runs)
	defer func() {
		for _, cu := range cursors {
			cu.close()
		}
	}()
	m := newMergerCursors(cursors, job.ValueCompare)
	var out []dfs.Record
	emit := func(_, value []byte) {
		out = append(out, dfs.Record(value))
	}
	groups, err := streamGroups(ctx, job.Reduce, m, job.GroupKeyPrefix, emit)
	if err != nil {
		return nil, 0, 0, err
	}
	// A merge source that died mid-stream (a truncated or unreadable run
	// file) silently ended the stream early — the attempt's output is
	// incomplete and must be discarded, not written.
	if err := m.failure(); err != nil {
		return nil, 0, 0, err
	}
	return out, groups, ctx.work, nil
}

// streamGroups drives fn over every key group of the merge stream: one
// call per group, values delivered through a streaming iterator. Groups
// are maximal key ranges sharing groupOf(key, prefix). Unconsumed values
// are drained after fn returns, so a group can be skipped cheaply.
func streamGroups(ctx *TaskContext, fn ReduceFunc, m *merger, prefix int, emit Emit) (int64, error) {
	var groups int64
	for {
		kv, ok := m.peek()
		if !ok {
			return groups, nil
		}
		groups++
		vi := &Values{m: m, group: groupOf(kv.Key, prefix), prefix: prefix}
		if err := fn(ctx, kv.Key, vi, emit); err != nil {
			return groups, fmt.Errorf("reduce key %q: %w", kv.Key, err)
		}
		for { // drain whatever the reduce function left unread
			if _, ok := vi.Next(); !ok {
				break
			}
		}
	}
}

// Values streams one key group's values to a reduce or combine function,
// in full-key order refined by the job's ValueCompare. The iterator is
// only valid during the function call that received it.
type Values struct {
	m      *merger
	group  []byte
	prefix int
}

// Next returns the group's next value, or ok=false when the group is
// exhausted. The returned slice is the emitted value itself — treat it as
// read-only.
func (v *Values) Next() ([]byte, bool) {
	kv, ok := v.m.peek()
	if !ok || !bytes.Equal(groupOf(kv.Key, v.prefix), v.group) {
		return nil, false
	}
	v.m.pop()
	return kv.Value, true
}

// Key returns the full composite key of the value peek'd next, or nil at
// group end — how a reducer reads a composite key's suffix while
// streaming.
func (v *Values) Key() []byte {
	kv, ok := v.m.peek()
	if !ok || !bytes.Equal(groupOf(kv.Key, v.prefix), v.group) {
		return nil
	}
	return kv.Key
}

// Collect drains the remaining values into a slice — for the rare reducer
// (and for tests) that genuinely needs the group materialized.
func (v *Values) Collect() [][]byte {
	var out [][]byte
	for {
		val, ok := v.Next()
		if !ok {
			return out
		}
		out = append(out, val)
	}
}

// merger k-way-merges sorted runs. Order: key bytes, then the value
// comparator, then run index (which preserves map-task order for ties —
// the old engine's "arrival order within a key"). Runs arrive as cursors,
// so in-memory slices and spilled run files merge through the same heap;
// each heap entry caches its cursor's current record, keeping the
// comparison path free of indirect calls.
type merger struct {
	heap []mergeSource
	vcmp CompareFunc
	fail error
}

type mergeSource struct {
	cur KV
	src cursor
	seq int
}

// newMerger merges in-memory runs — the combiner's path and the
// all-resident reduce path.
func newMerger(runs [][]KV, vcmp CompareFunc) *merger {
	cursors := make([]cursor, len(runs))
	for i, run := range runs {
		cursors[i] = &memCursor{kvs: run}
	}
	return newMergerCursors(cursors, vcmp)
}

// newMergerCursors merges arbitrary cursors; a cursor's slice position is
// its tie-breaking seq, so callers must pass runs in map-task order.
func newMergerCursors(cursors []cursor, vcmp CompareFunc) *merger {
	m := &merger{vcmp: vcmp}
	for i, c := range cursors {
		if kv, ok := c.peek(); ok {
			m.heap = append(m.heap, mergeSource{cur: kv, src: c, seq: i})
		} else if err := c.err(); err != nil && m.fail == nil {
			m.fail = err
		}
	}
	for i := len(m.heap)/2 - 1; i >= 0; i-- {
		m.down(i)
	}
	return m
}

// failure reports the first cursor error the merge encountered; the
// stream ends early when a source fails, and the consuming task must
// treat its output as incomplete.
func (m *merger) failure() error { return m.fail }

func (m *merger) less(a, b mergeSource) bool {
	if c := bytes.Compare(a.cur.Key, b.cur.Key); c != 0 {
		return c < 0
	}
	if m.vcmp != nil {
		if c := m.vcmp(a.cur.Value, b.cur.Value); c != 0 {
			return c < 0
		}
	}
	return a.seq < b.seq
}

func (m *merger) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(m.heap) && m.less(m.heap[l], m.heap[min]) {
			min = l
		}
		if r < len(m.heap) && m.less(m.heap[r], m.heap[min]) {
			min = r
		}
		if min == i {
			return
		}
		m.heap[i], m.heap[min] = m.heap[min], m.heap[i]
		i = min
	}
}

// peek returns the smallest pending KV without consuming it.
func (m *merger) peek() (KV, bool) {
	if len(m.heap) == 0 {
		return KV{}, false
	}
	return m.heap[0].cur, true
}

// pop consumes the smallest pending KV.
func (m *merger) pop() {
	s := &m.heap[0]
	s.src.advance()
	if kv, ok := s.src.peek(); ok {
		s.cur = kv
	} else {
		if err := s.src.err(); err != nil && m.fail == nil {
			m.fail = err
		}
		last := len(m.heap) - 1
		m.heap[0] = m.heap[last]
		m.heap = m.heap[:last]
	}
	m.down(0)
}

// runParallel executes fn(0..n-1) on at most c.nodes workers, returning
// the first error encountered. After a failure no new task indices are
// dispatched — only work already handed to a worker is drained — so one
// failing task short-circuits a large job instead of running it to
// completion just to discard the result.
func (c *Cluster) runParallel(n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	workers := c.nodes
	if workers > n {
		workers = n
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		failOnce sync.Once
		firstErr error
	)
	failed := make(chan struct{})
	tasks := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tasks {
				if err := fn(i); err != nil {
					errOnce.Do(func() { firstErr = err })
					failOnce.Do(func() { close(failed) })
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case <-failed:
			break dispatch
		default:
		}
		select {
		case tasks <- i:
		case <-failed:
			break dispatch
		}
	}
	close(tasks)
	wg.Wait()
	return firstErr
}

// makespan greedily schedules tasks (in index order) onto the least-loaded
// of `nodes` slots and returns the resulting maximum slot load. This is the
// deterministic "simulated parallel time" used by the speedup experiments.
func makespan(work []int64, nodes int) int64 {
	if len(work) == 0 {
		return 0
	}
	if nodes > len(work) {
		nodes = len(work)
	}
	slots := make([]int64, nodes)
	for _, w := range work {
		min := 0
		for s := 1; s < nodes; s++ {
			if slots[s] < slots[min] {
				min = s
			}
		}
		slots[min] += w
	}
	var max int64
	for _, s := range slots {
		if s > max {
			max = s
		}
	}
	return max
}
