// Package mapreduce is an in-process MapReduce runtime with Hadoop-like
// semantics, built to host the paper's two-job kNN-join pipeline.
//
// It reproduces the properties the paper's algorithms and measurements
// depend on:
//
//   - map tasks consume DFS input splits (one task per split, §2.2);
//   - intermediate key-value pairs are hash-partitioned across N reducers,
//     grouped by key, and keys are processed in sorted order;
//   - every byte crossing the shuffle is counted, which is exactly the
//     "shuffling cost" series of Figures 8–12;
//   - the simulated cluster has a fixed number of nodes, each running one
//     map and one reduce slot (the paper's Hadoop configuration), and the
//     engine reports both wall-clock phase times and a deterministic
//     simulated makespan based on user-reported work units;
//   - tasks can fail and are retried, so the fault-tolerance path the
//     paper credits MapReduce for is present and testable.
//
// Jobs are expressed with plain functions rather than an interface zoo:
// a Map function, an optional Reduce function (nil makes a map-only job,
// as the paper's first job is), and optional Combine/Setup hooks.
package mapreduce

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"knnjoin/internal/dfs"
)

// KV is an intermediate key-value pair.
type KV struct {
	Key   string
	Value []byte
}

// Emit is the output callback handed to map, combine and reduce functions.
type Emit func(key string, value []byte)

// MapFunc processes one input record. ctx carries side data and counters.
type MapFunc func(ctx *TaskContext, record dfs.Record, emit Emit) error

// ReduceFunc processes one key group. values holds every value emitted for
// key, in map-task order. The same signature serves combiners.
type ReduceFunc func(ctx *TaskContext, key string, values [][]byte, emit Emit) error

// SetupFunc runs once per task before any record is processed — the
// paper's "map-setup" hook of Algorithm 3, used there to precompute the
// LB(P_j^S, G_i) table.
type SetupFunc func(ctx *TaskContext) error

// PartitionFunc routes a key to one of n reducers.
type PartitionFunc func(key string, n int) int

// DefaultPartition hashes the key with FNV-1a, Hadoop-style.
func DefaultPartition(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// Job describes one MapReduce job.
type Job struct {
	Name   string
	Input  []string // DFS input files
	Output string   // DFS output file; reduce (or map-only) emissions land here

	Map         MapFunc
	MapSetup    SetupFunc
	Reduce      ReduceFunc // nil ⇒ map-only job
	ReduceSetup SetupFunc
	Combine     ReduceFunc // optional map-side combiner
	Partition   PartitionFunc

	NumReducers int // defaults to the cluster's node count

	// Side is read-only data shipped to every task, the equivalent of
	// Hadoop's distributed cache (the paper ships the pivot set this way).
	Side map[string]any

	// MaxAttempts bounds task retries. Zero means 1 attempt.
	MaxAttempts int

	// FailTask, when non-nil, is consulted before each task attempt and
	// may return an injected error — used by tests to exercise retries.
	FailTask func(taskID string, attempt int) error
}

// TaskContext is the per-task environment passed to user functions.
type TaskContext struct {
	// JobName and TaskID identify the running task, e.g. "knn/map/3".
	JobName string
	TaskID  string

	side     map[string]any
	counters *CounterSet
	work     int64
}

// Side returns the named side-data value, or nil when absent.
func (c *TaskContext) Side(name string) any { return c.side[name] }

// Counter adds delta to the named user counter.
func (c *TaskContext) Counter(name string, delta int64) { c.counters.Add(name, delta) }

// AddWork reports abstract work units (the repo uses distance
// computations) consumed by this task. The scheduler turns per-task work
// into the simulated makespans reported in JobStats.
func (c *TaskContext) AddWork(units int64) { c.work += units }

// CounterSet is a concurrency-safe named-counter bag.
type CounterSet struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounterSet returns an empty counter set.
func NewCounterSet() *CounterSet { return &CounterSet{m: make(map[string]int64)} }

// Add increments the named counter by delta.
func (s *CounterSet) Add(name string, delta int64) {
	s.mu.Lock()
	s.m[name] += delta
	s.mu.Unlock()
}

// Get returns the named counter's value.
func (s *CounterSet) Get(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[name]
}

// Snapshot returns a copy of all counters.
func (s *CounterSet) Snapshot() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.m))
	for k, v := range s.m {
		out[k] = v
	}
	return out
}

// JobStats reports what one job did and what it cost.
type JobStats struct {
	Job               string
	MapTasks          int
	ReduceTasks       int
	MapInputRecords   int64
	ShuffleRecords    int64 // records crossing the shuffle (post-combine)
	ShuffleBytes      int64 // key+value bytes crossing the shuffle
	ReduceGroups      int64
	OutputRecords     int64
	MapWall           time.Duration
	ReduceWall        time.Duration
	SimMapMakespan    int64 // greedy-scheduled max work per node, map phase
	SimReduceMakespan int64
	// ReduceInputRecords holds each reduce task's input record count —
	// the raw material of load-balance analysis (the paper's §6.1.1
	// "unbalanced workload" discussion made measurable).
	ReduceInputRecords []int64
	Counters           map[string]int64
}

// ReduceSkew returns the max-over-mean ratio of reduce-task input sizes:
// 1 is perfect balance; the job's critical path grows with this factor.
// Jobs with no reduce input report 0.
func (s JobStats) ReduceSkew() float64 {
	var total, max int64
	for _, n := range s.ReduceInputRecords {
		total += n
		if n > max {
			max = n
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(s.ReduceInputRecords))
	return float64(max) / mean
}

// Total wall time of the job's compute phases.
func (s JobStats) Wall() time.Duration { return s.MapWall + s.ReduceWall }

// Cluster is a simulated shared-nothing cluster: a DFS plus a fixed number
// of nodes, each contributing one map slot and one reduce slot.
type Cluster struct {
	fs    *dfs.FS
	nodes int
}

// NewCluster creates a cluster of n nodes over fs. n must be positive.
func NewCluster(fs *dfs.FS, n int) *Cluster {
	if n <= 0 {
		panic("mapreduce: cluster needs at least one node")
	}
	return &Cluster{fs: fs, nodes: n}
}

// FS returns the cluster's filesystem.
func (c *Cluster) FS() *dfs.FS { return c.fs }

// Nodes returns the number of simulated nodes.
func (c *Cluster) Nodes() int { return c.nodes }

// taskResult carries one finished map task's bucketed output.
type taskResult struct {
	index   int
	buckets [][]KV // one slice per reducer
	work    int64
}

// Run executes the job and returns its statistics. On any task error
// (after retries) the job aborts with that error.
func (c *Cluster) Run(job *Job) (*JobStats, error) {
	if job.Map == nil {
		return nil, fmt.Errorf("mapreduce: job %q has no Map function", job.Name)
	}
	if job.Output == "" {
		return nil, fmt.Errorf("mapreduce: job %q has no Output file", job.Name)
	}
	nReduce := job.NumReducers
	if nReduce <= 0 {
		nReduce = c.nodes
	}
	partition := job.Partition
	if partition == nil {
		partition = DefaultPartition
	}
	maxAttempts := job.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 1
	}

	splits, err := c.fs.Splits(job.Input...)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", job.Name, err)
	}

	counters := NewCounterSet()
	stats := &JobStats{Job: job.Name, MapTasks: len(splits), ReduceTasks: nReduce}

	// ---- Map phase ----------------------------------------------------
	mapStart := time.Now()
	results := make([]*taskResult, len(splits))
	mapWork := make([]int64, len(splits))
	err = c.runParallel(len(splits), func(i int) error {
		res, werr := c.runMapTask(job, splits[i], i, nReduce, partition, counters, maxAttempts)
		if werr != nil {
			return werr
		}
		results[i] = res
		mapWork[i] = res.work
		return nil
	})
	if err != nil {
		return nil, err
	}
	stats.MapWall = time.Since(mapStart)
	for _, sp := range splits {
		stats.MapInputRecords += int64(len(sp.Records))
	}
	stats.SimMapMakespan = makespan(mapWork, c.nodes)

	if job.Reduce == nil {
		// Map-only job: emissions of every task land in the output file in
		// task order, values only (the key is advisory for map-only jobs).
		var out []dfs.Record
		for _, res := range results {
			for _, bucket := range res.buckets {
				for _, kv := range bucket {
					out = append(out, dfs.Record(kv.Value))
				}
			}
		}
		c.fs.Write(job.Output, out)
		stats.OutputRecords = int64(len(out))
		stats.Counters = counters.Snapshot()
		return stats, nil
	}

	// ---- Shuffle --------------------------------------------------------
	// Deliver each map task's buckets to the reducers, counting bytes, then
	// group by key with keys in sorted order (Hadoop's sort phase).
	perReducer := make([][]KV, nReduce)
	for _, res := range results {
		for r, bucket := range res.buckets {
			for _, kv := range bucket {
				stats.ShuffleRecords++
				stats.ShuffleBytes += int64(len(kv.Key) + len(kv.Value))
			}
			perReducer[r] = append(perReducer[r], bucket...)
		}
	}
	stats.ReduceInputRecords = make([]int64, nReduce)
	for r := range perReducer {
		stats.ReduceInputRecords[r] = int64(len(perReducer[r]))
	}

	// ---- Reduce phase ---------------------------------------------------
	reduceStart := time.Now()
	outputs := make([][]dfs.Record, nReduce)
	reduceWork := make([]int64, nReduce)
	var groupCount int64
	var groupMu sync.Mutex
	err = c.runParallel(nReduce, func(r int) error {
		recs, groups, work, rerr := c.runReduceTask(job, r, perReducer[r], counters, maxAttempts)
		if rerr != nil {
			return rerr
		}
		outputs[r] = recs
		reduceWork[r] = work
		groupMu.Lock()
		groupCount += groups
		groupMu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	stats.ReduceWall = time.Since(reduceStart)
	stats.ReduceGroups = groupCount
	stats.SimReduceMakespan = makespan(reduceWork, c.nodes)

	var out []dfs.Record
	for _, recs := range outputs {
		out = append(out, recs...)
	}
	c.fs.Write(job.Output, out)
	stats.OutputRecords = int64(len(out))
	stats.Counters = counters.Snapshot()
	return stats, nil
}

func (c *Cluster) runMapTask(job *Job, split dfs.Split, index, nReduce int, partition PartitionFunc, counters *CounterSet, maxAttempts int) (*taskResult, error) {
	taskID := fmt.Sprintf("%s/map/%d", job.Name, index)
	var lastErr error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		res, err := c.attemptMapTask(job, split, index, nReduce, partition, counters, taskID, attempt)
		if err == nil {
			return res, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("mapreduce: task %s failed after %d attempts: %w", taskID, maxAttempts, lastErr)
}

func (c *Cluster) attemptMapTask(job *Job, split dfs.Split, index, nReduce int, partition PartitionFunc, counters *CounterSet, taskID string, attempt int) (*taskResult, error) {
	if job.FailTask != nil {
		if err := job.FailTask(taskID, attempt); err != nil {
			return nil, err
		}
	}
	ctx := &TaskContext{JobName: job.Name, TaskID: taskID, side: job.Side, counters: counters}
	if job.MapSetup != nil {
		if err := job.MapSetup(ctx); err != nil {
			return nil, fmt.Errorf("map setup: %w", err)
		}
	}
	res := &taskResult{index: index, buckets: make([][]KV, nReduce)}
	emit := func(key string, value []byte) {
		r := 0
		if nReduce > 1 {
			r = partition(key, nReduce)
			if r < 0 || r >= nReduce {
				panic(fmt.Sprintf("mapreduce: partition function returned %d for %d reducers", r, nReduce))
			}
		}
		res.buckets[r] = append(res.buckets[r], KV{Key: key, Value: value})
	}
	for _, rec := range split.Records {
		if err := job.Map(ctx, rec, emit); err != nil {
			return nil, fmt.Errorf("map record: %w", err)
		}
	}
	if job.Combine != nil {
		for r := range res.buckets {
			combined, err := combineBucket(ctx, job.Combine, res.buckets[r])
			if err != nil {
				return nil, fmt.Errorf("combine: %w", err)
			}
			res.buckets[r] = combined
		}
	}
	res.work = ctx.work
	return res, nil
}

func combineBucket(ctx *TaskContext, combine ReduceFunc, bucket []KV) ([]KV, error) {
	if len(bucket) == 0 {
		return bucket, nil
	}
	groups, keys := groupByKey(bucket)
	out := make([]KV, 0, len(keys))
	emit := func(key string, value []byte) {
		out = append(out, KV{Key: key, Value: value})
	}
	for _, k := range keys {
		if err := combine(ctx, k, groups[k], emit); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (c *Cluster) runReduceTask(job *Job, index int, input []KV, counters *CounterSet, maxAttempts int) ([]dfs.Record, int64, int64, error) {
	taskID := fmt.Sprintf("%s/reduce/%d", job.Name, index)
	var lastErr error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		recs, groups, work, err := c.attemptReduceTask(job, input, counters, taskID, attempt)
		if err == nil {
			return recs, groups, work, nil
		}
		lastErr = err
	}
	return nil, 0, 0, fmt.Errorf("mapreduce: task %s failed after %d attempts: %w", taskID, maxAttempts, lastErr)
}

func (c *Cluster) attemptReduceTask(job *Job, input []KV, counters *CounterSet, taskID string, attempt int) ([]dfs.Record, int64, int64, error) {
	if job.FailTask != nil {
		if err := job.FailTask(taskID, attempt); err != nil {
			return nil, 0, 0, err
		}
	}
	ctx := &TaskContext{JobName: job.Name, TaskID: taskID, side: job.Side, counters: counters}
	if job.ReduceSetup != nil {
		if err := job.ReduceSetup(ctx); err != nil {
			return nil, 0, 0, fmt.Errorf("reduce setup: %w", err)
		}
	}
	groups, keys := groupByKey(input)
	var out []dfs.Record
	emit := func(_ string, value []byte) {
		out = append(out, dfs.Record(value))
	}
	for _, k := range keys {
		if err := job.Reduce(ctx, k, groups[k], emit); err != nil {
			return nil, 0, 0, fmt.Errorf("reduce key %q: %w", k, err)
		}
	}
	return out, int64(len(keys)), ctx.work, nil
}

// groupByKey groups values by key preserving arrival order within a key,
// and returns the keys in sorted order.
func groupByKey(kvs []KV) (map[string][][]byte, []string) {
	groups := make(map[string][][]byte)
	for _, kv := range kvs {
		groups[kv.Key] = append(groups[kv.Key], kv.Value)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return groups, keys
}

// runParallel executes fn(0..n-1) on at most c.nodes workers, returning the
// first error encountered (all started work is drained first).
func (c *Cluster) runParallel(n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	workers := c.nodes
	if workers > n {
		workers = n
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	tasks := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tasks {
				if err := fn(i); err != nil {
					errOnce.Do(func() { firstErr = err })
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		tasks <- i
	}
	close(tasks)
	wg.Wait()
	return firstErr
}

// makespan greedily schedules tasks (in index order) onto the least-loaded
// of `nodes` slots and returns the resulting maximum slot load. This is the
// deterministic "simulated parallel time" used by the speedup experiments.
func makespan(work []int64, nodes int) int64 {
	if len(work) == 0 {
		return 0
	}
	if nodes > len(work) {
		nodes = len(work)
	}
	slots := make([]int64, nodes)
	for _, w := range work {
		min := 0
		for s := 1; s < nodes; s++ {
			if slots[s] < slots[min] {
				min = s
			}
		}
		slots[min] += w
	}
	var max int64
	for _, s := range slots {
		if s > max {
			max = s
		}
	}
	return max
}
