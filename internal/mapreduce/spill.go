package mapreduce

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"knnjoin/internal/dfs"
)

// Engine selects the execution backend of a Cluster: where map-side
// sorted runs live between the map and reduce phases.
//
// The zero value is the in-memory backend every cluster used before
// spilling existed: all runs stay resident until the job completes.
// Setting SpillDir turns on the out-of-core backend — the external
// shuffle Hadoop performs and the paper's clusters depend on (§2.2):
// completed runs are written to the spill directory as length-prefixed
// binary-key run files, and every reduce task k-way-merges them back off
// disk with a bounded amount of memory. Because runs hold the same
// key-sorted record sequence either way, a job's output is byte-identical
// across backends.
type Engine struct {
	// SpillDir is the directory for run files; each job creates (and
	// removes) a private subdirectory in it. Empty means in-memory.
	SpillDir string

	// MemLimit bounds the shuffle bytes kept resident in memory, split
	// half/half between retained runs (a map task whose completed runs
	// would push retention past limit/2 spills them to SpillDir instead)
	// and merge I/O buffers (see mergeBudget). ≤ 0 with SpillDir set
	// spills every run. The per-task working buffer is bounded
	// separately, by the DFS split size.
	MemLimit int64

	// MergeFanIn caps how many runs a reduce task merges at once. When a
	// reducer receives more spilled runs than this, contiguous groups are
	// first merged into intermediate run files (Hadoop's multi-pass
	// merge), keeping open-file read-ahead memory bounded. 0 derives the
	// cap from MemLimit; the minimum is 2.
	MergeFanIn int
}

// spillBufSize is the preferred I/O buffer of one open run file (or run
// writer) during a merge; MemLimit shrinks it. Buffers are charged
// against the engine's resident-memory accounting while open.
const spillBufSize = 32 << 10

// minSpillBuf floors the merge buffer size: limits so small that even
// this floor overruns them are clamped rather than honored.
const minSpillBuf = 128

// defaultFanIn bounds a merge when no MemLimit constrains it.
const defaultFanIn = 1024

// mergeBudget resolves the merge shape for a cluster of n nodes: the
// fan-in (how many runs one merge reads at once) and the per-file buffer
// size. Half of MemLimit is reserved for retained runs (see
// retainOrSpill), the other half is split across the n node-concurrent
// reduce tasks; each task's share must hold fanIn read buffers plus one
// write buffer for intermediate passes.
func (e Engine) mergeBudget(n int) (fanIn, bufSize int) {
	fanIn, bufSize = defaultFanIn, spillBufSize
	if e.MergeFanIn > 0 {
		fanIn = e.MergeFanIn
		if fanIn < 2 {
			fanIn = 2
		}
	}
	if e.MemLimit > 0 {
		perNode := e.MemLimit / 2 / int64(n)
		if e.MergeFanIn <= 0 {
			if f := int(perNode / spillBufSize); f < fanIn {
				fanIn = f
			}
			if fanIn < 2 {
				fanIn = 2
			}
		}
		// The buffer size always honors the budget for whatever fan-in is
		// in force — an explicit MergeFanIn above the derived cap shrinks
		// the buffers rather than busting MemLimit.
		if b := int(perNode / int64(fanIn+1)); b < bufSize {
			bufSize = b
		}
		if bufSize < minSpillBuf {
			bufSize = minSpillBuf
		}
	}
	return fanIn, bufSize
}

// validate rejects configurations that silently could not spill.
func (e Engine) validate() error {
	if e.SpillDir == "" && e.MemLimit > 0 {
		return fmt.Errorf("mapreduce: Engine.MemLimit set without Engine.SpillDir — nowhere to spill")
	}
	if e.MergeFanIn < 0 {
		return fmt.Errorf("mapreduce: Engine.MergeFanIn must not be negative, got %d", e.MergeFanIn)
	}
	return nil
}

// runState is the per-job execution state of the backend: resident-memory
// accounting and the job's private spill directory.
type runState struct {
	spillDir string // "" = in-memory job
	memLimit int64
	fanIn    int
	bufSize  int

	resident     atomic.Int64 // shuffle bytes currently in memory
	peak         atomic.Int64
	spilledRuns  atomic.Int64
	spilledBytes atomic.Int64
	nameSeq      atomic.Int64
}

// updatePeak folds a residency observation into the high-water mark.
func (rs *runState) updatePeak(n int64) {
	for {
		p := rs.peak.Load()
		if n <= p || rs.peak.CompareAndSwap(p, n) {
			return
		}
	}
}

// reserve charges n resident bytes and records the new high-water mark.
func (rs *runState) reserve(n int64) { rs.updatePeak(rs.resident.Add(n)) }

// release returns n resident bytes.
func (rs *runState) release(n int64) { rs.resident.Add(-n) }

// runData is one map task's sorted run for one reducer, in exactly one of
// two states: resident (kvs) or spilled (file). Both states replay the
// identical key-sorted record sequence, so the merge — and therefore the
// job output — cannot tell them apart.
type runData struct {
	kvs  []KV
	file *runFile
}

func (r runData) empty() bool { return r.kvs == nil && r.file == nil }

// records returns the run's record count without loading it.
func (r runData) records() int64 {
	if r.file != nil {
		return r.file.records
	}
	return int64(len(r.kvs))
}

// shuffleBytes returns the run's key+value payload bytes.
func (r runData) shuffleBytes() int64 {
	if r.file != nil {
		return r.file.bytes
	}
	return kvBytes(r.kvs)
}

// runFile describes one spilled run: a file of length-prefixed key/value
// records in key-sorted order. Because the keys are the order-preserving
// binary encodings of internal/codec, bytewise file order equals shuffle
// order — the file needs no footer, index or re-sort to be merged.
type runFile struct {
	path    string
	records int64
	bytes   int64 // key+value payload bytes
}

// kvBytes sums the shuffle payload of a run.
func kvBytes(kvs []KV) int64 {
	var n int64
	for _, kv := range kvs {
		n += int64(len(kv.Key) + len(kv.Value))
	}
	return n
}

// runFileWriter streams key-sorted records into a new run file. The file
// is written under a temporary name and renamed into place by finish, so
// a run file that exists is always complete — a crashed attempt leaves
// only a *.tmp the job-directory cleanup removes.
type runFileWriter struct {
	rs   *runState
	f    *os.File
	w    *bufio.Writer
	path string
	rf   runFile
}

// newRunFileWriter opens a fresh run file in the job's spill directory,
// charging its write buffer against the resident budget until the writer
// finishes or aborts.
func newRunFileWriter(rs *runState) (*runFileWriter, error) {
	path := filepath.Join(rs.spillDir, fmt.Sprintf("run-%06d", rs.nameSeq.Add(1)))
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return nil, fmt.Errorf("mapreduce: spill: %w", err)
	}
	rs.reserve(int64(rs.bufSize))
	return &runFileWriter{
		rs: rs, f: f, w: bufio.NewWriterSize(f, rs.bufSize),
		path: path, rf: runFile{path: path},
	}, nil
}

// append writes one record as two dfs frames: key, then value.
func (rw *runFileWriter) append(kv KV) error {
	if err := dfs.WriteFrame(rw.w, kv.Key); err != nil {
		return err
	}
	if err := dfs.WriteFrame(rw.w, kv.Value); err != nil {
		return err
	}
	rw.rf.records++
	rw.rf.bytes += int64(len(kv.Key) + len(kv.Value))
	return nil
}

// finish flushes, closes and atomically publishes the run file.
func (rw *runFileWriter) finish() (*runFile, error) {
	err := rw.w.Flush()
	if cerr := rw.f.Close(); err == nil {
		err = cerr
	}
	rw.rs.release(int64(rw.rs.bufSize))
	if err == nil {
		err = os.Rename(rw.path+".tmp", rw.path)
	}
	if err != nil {
		os.Remove(rw.path + ".tmp")
		return nil, fmt.Errorf("mapreduce: spill: %w", err)
	}
	rw.rs.spilledRuns.Add(1)
	rw.rs.spilledBytes.Add(rw.rf.bytes)
	rf := rw.rf
	return &rf, nil
}

// abort discards the partially written file.
func (rw *runFileWriter) abort() {
	rw.f.Close()
	rw.rs.release(int64(rw.rs.bufSize))
	os.Remove(rw.path + ".tmp")
}

// writeRunFile persists an in-memory sorted run to disk.
func writeRunFile(rs *runState, kvs []KV) (*runFile, error) {
	rw, err := newRunFileWriter(rs)
	if err != nil {
		return nil, err
	}
	for _, kv := range kvs {
		if err := rw.append(kv); err != nil {
			rw.abort()
			return nil, fmt.Errorf("mapreduce: spill: %w", err)
		}
	}
	return rw.finish()
}

// runBadError marks a run file that could not be opened or that ended
// mid-record — evidence the producing attempt's output is damaged. The
// distributed engine's reducers report the path back to the coordinator,
// which re-executes the producing map task.
type runBadError struct {
	path string
	msg  string
	err  error
}

func (e *runBadError) Error() string {
	return fmt.Sprintf("mapreduce: run %s %s: %v", e.path, e.msg, e.err)
}
func (e *runBadError) Unwrap() error { return e.err }

// cursor is one sorted-run stream feeding the k-way merge: the current
// record, a way to advance, and a sticky error for streams that can fail
// mid-read (disk runs). The merge drops an erroring cursor and surfaces
// the error through the merger, failing the reduce attempt — retries
// reopen the files from scratch.
type cursor interface {
	peek() (KV, bool)
	advance()
	err() error
	close()
}

// memCursor streams an in-memory run.
type memCursor struct {
	kvs []KV
	pos int
}

func (c *memCursor) peek() (KV, bool) {
	if c.pos >= len(c.kvs) {
		return KV{}, false
	}
	return c.kvs[c.pos], true
}
func (c *memCursor) advance()   { c.pos++ }
func (c *memCursor) err() error { return nil }
func (c *memCursor) close()     {}

// fileCursor streams a spilled run file through a fixed read-ahead
// buffer, charged against the engine's resident-memory accounting while
// the cursor is open.
type fileCursor struct {
	rs      *runState
	f       *os.File
	r       *bufio.Reader
	path    string
	left    int64 // records not yet surfaced
	cur     KV
	ok      bool
	failure error
}

// openRunCursor opens a spilled run for merging.
func openRunCursor(rs *runState, rf *runFile) *fileCursor {
	c := &fileCursor{rs: rs, path: rf.path, left: rf.records}
	f, err := os.Open(rf.path)
	if err != nil {
		c.failure = &runBadError{path: rf.path, msg: "unreadable", err: err}
		return c
	}
	c.f = f
	c.r = bufio.NewReaderSize(f, rs.bufSize)
	rs.reserve(int64(rs.bufSize))
	c.advance()
	return c
}

func (c *fileCursor) peek() (KV, bool) { return c.cur, c.ok }

func (c *fileCursor) advance() {
	c.ok = false
	if c.failure != nil || c.left == 0 {
		return
	}
	key, err := dfs.ReadFrame(c.r)
	if err == nil {
		var val []byte
		if val, err = dfs.ReadFrame(c.r); err == nil {
			c.left--
			c.cur, c.ok = KV{Key: key, Value: val}, true
			return
		}
	}
	// A run file that ends early was partially written or truncated —
	// surface it instead of silently merging a prefix.
	c.failure = &runBadError{path: c.path, msg: "truncated mid-record", err: err}
}

func (c *fileCursor) err() error { return c.failure }

func (c *fileCursor) close() {
	if c.f != nil {
		c.f.Close()
		c.f = nil
		c.rs.release(int64(c.rs.bufSize))
	}
}

// openRuns turns a reducer's runs into merge cursors, charging file
// read-ahead buffers as they open.
func openRuns(rs *runState, runs []runData) []cursor {
	out := make([]cursor, len(runs))
	for i, run := range runs {
		if run.file != nil {
			out[i] = openRunCursor(rs, run.file)
		} else {
			out[i] = &memCursor{kvs: run.kvs}
		}
	}
	return out
}

// mergeToFile merges the given runs (a contiguous seq range) into a
// single spilled run, preserving the exact record order a flat merge of
// those runs would produce. Records stream from the input cursors to the
// output writer one at a time — the pass exists to cut fan-in, so its
// memory footprint is just the open read-ahead and write buffers.
func mergeToFile(rs *runState, runs []runData, vcmp CompareFunc) (*runFile, error) {
	cursors := openRuns(rs, runs)
	defer func() {
		for _, c := range cursors {
			c.close()
		}
	}()
	m := newMergerCursors(cursors, vcmp)
	rw, err := newRunFileWriter(rs)
	if err != nil {
		return nil, err
	}
	for {
		kv, ok := m.peek()
		if !ok {
			break
		}
		if err := rw.append(kv); err != nil {
			rw.abort()
			return nil, fmt.Errorf("mapreduce: spill: %w", err)
		}
		m.pop()
	}
	if err := m.failure(); err != nil {
		rw.abort()
		return nil, err
	}
	return rw.finish()
}

// reduceFanIn repeatedly merges contiguous groups of runs until at most
// fanIn remain. Grouping contiguous seq ranges and breaking merge ties on
// source order keeps the final stream identical to a flat merge of every
// original run, so multi-pass merging never changes job output.
func reduceFanIn(rs *runState, runs []runData, vcmp CompareFunc, fanIn int) ([]runData, error) {
	if rs.spillDir == "" {
		// In-memory backend: nothing to bound — resident slices carry no
		// per-run read-ahead buffer, and there is nowhere to merge to.
		return runs, nil
	}
	for len(runs) > fanIn {
		merged := make([]runData, 0, (len(runs)+fanIn-1)/fanIn)
		for lo := 0; lo < len(runs); lo += fanIn {
			hi := lo + fanIn
			if hi > len(runs) {
				hi = len(runs)
			}
			if hi-lo == 1 {
				merged = append(merged, runs[lo])
				continue
			}
			rf, err := mergeToFile(rs, runs[lo:hi], vcmp)
			if err != nil {
				return nil, err
			}
			merged = append(merged, runData{file: rf})
		}
		runs = merged
	}
	return runs, nil
}
