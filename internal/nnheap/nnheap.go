// Package nnheap provides the bounded candidate heaps used by every kNN
// computation in the repository: a k-bounded max-heap that retains the k
// smallest-distance candidates seen so far (the running KNN(r,S) of
// Algorithm 3), and a general min-heap used by best-first R-tree search and
// by Algorithm 1's bound computation.
package nnheap

import (
	"container/heap"
	"fmt"
	"sort"
)

// Candidate is a neighbor candidate: an opaque identifier plus its distance
// to the query object.
type Candidate struct {
	ID   int64
	Dist float64
}

// KHeap retains the k candidates with the smallest distances among all
// candidates pushed so far. The zero value is not usable; construct with
// NewKHeap.
//
// Internally it is a max-heap on distance so the current worst retained
// candidate — the pruning threshold θ of Algorithm 3 — is inspectable in
// O(1) via Top.
type KHeap struct {
	k     int
	items []Candidate
}

// NewKHeap returns a heap bounded to k candidates. k must be positive.
func NewKHeap(k int) *KHeap {
	if k <= 0 {
		panic("nnheap: k must be positive")
	}
	return &KHeap{k: k, items: make([]Candidate, 0, k)}
}

// K returns the bound the heap was constructed with.
func (h *KHeap) K() int { return h.k }

// Len returns the number of retained candidates (≤ k).
func (h *KHeap) Len() int { return len(h.items) }

// Full reports whether the heap holds k candidates.
func (h *KHeap) Full() bool { return len(h.items) == h.k }

// Top returns the largest retained distance. It panics on an empty heap.
func (h *KHeap) Top() Candidate {
	if len(h.items) == 0 {
		panic("nnheap: Top of empty KHeap")
	}
	return h.items[0]
}

// Threshold returns the current pruning distance: the k-th smallest
// distance seen so far once the heap is full, or +∞-like fallback `def`
// while it is not. Callers pass the paper's partition bound θ_i as def so
// pruning is correct before k candidates accumulate.
func (h *KHeap) Threshold(def float64) float64 {
	if h.Full() {
		return h.items[0].Dist
	}
	return def
}

// Push offers a candidate. It reports whether the candidate was retained
// (i.e. it was among the k best seen so far at the time of the call).
func (h *KHeap) Push(c Candidate) bool {
	if len(h.items) < h.k {
		h.items = append(h.items, c)
		h.up(len(h.items) - 1)
		return true
	}
	if c.Dist >= h.items[0].Dist {
		return false
	}
	h.items[0] = c
	h.down(0)
	return true
}

// Sorted returns the retained candidates ordered by ascending distance,
// ties broken by ascending ID for determinism. The heap is unchanged.
func (h *KHeap) Sorted() []Candidate {
	return h.AppendSorted(make([]Candidate, 0, len(h.items)))
}

// AppendSorted appends the retained candidates to dst in the Sorted
// order (ascending distance, ties by ascending ID) and returns the
// extended slice. Reducers pass a reused buffer (dst[:0]) so the per-r
// emit path of the block kernels allocates nothing here.
func (h *KHeap) AppendSorted(dst []Candidate) []Candidate {
	start := len(dst)
	dst = append(dst, h.items...)
	out := dst[start:]
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return dst
}

// Reset empties the heap, retaining capacity, so reducers can reuse one
// allocation per joined object.
func (h *KHeap) Reset() { h.items = h.items[:0] }

// Items returns a copy of the retained candidates in the heap's INTERNAL
// array order (not sorted). Together with RestoreKHeap it transfers the
// exact heap state across a process boundary: when several retained
// candidates share the k-th-best distance, which of them a later Push
// evicts depends on the internal array order, so a reconstruction that
// re-pushed the candidates as a set could diverge from the original
// under distance ties. Round-tripping the array verbatim cannot.
func (h *KHeap) Items() []Candidate {
	return append([]Candidate(nil), h.items...)
}

// RestoreKHeap reconstructs the heap whose Items call produced items,
// byte-for-byte: same bound k, same internal array order. It rejects
// states no KHeap can reach (more than k candidates, or an array
// violating the max-heap invariant), which guards the cross-process
// callers against corrupted or hand-rolled wire data.
func RestoreKHeap(k int, items []Candidate) (*KHeap, error) {
	if k <= 0 {
		return nil, fmt.Errorf("nnheap: RestoreKHeap: k must be positive, got %d", k)
	}
	if len(items) > k {
		return nil, fmt.Errorf("nnheap: RestoreKHeap: %d candidates exceed k=%d", len(items), k)
	}
	for i := 1; i < len(items); i++ {
		if items[(i-1)/2].Dist < items[i].Dist {
			return nil, fmt.Errorf("nnheap: RestoreKHeap: max-heap invariant violated at index %d", i)
		}
	}
	h := &KHeap{k: k, items: make([]Candidate, 0, k)}
	h.items = append(h.items, items...)
	return h, nil
}

func (h *KHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].Dist >= h.items[i].Dist {
			return
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *KHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h.items[l].Dist > h.items[largest].Dist {
			largest = l
		}
		if r < n && h.items[r].Dist > h.items[largest].Dist {
			largest = r
		}
		if largest == i {
			return
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
}

// MinItem is an entry of MinHeap: an arbitrary payload ordered by Priority.
type MinItem struct {
	Priority float64
	Payload  any
}

// MinHeap is a standard min-heap on Priority, used for best-first R-tree
// traversal. The zero value is ready to use.
type MinHeap struct{ entries minEntries }

type minEntries []MinItem

func (e minEntries) Len() int           { return len(e) }
func (e minEntries) Less(i, j int) bool { return e[i].Priority < e[j].Priority }
func (e minEntries) Swap(i, j int)      { e[i], e[j] = e[j], e[i] }
func (e *minEntries) Push(x any)        { *e = append(*e, x.(MinItem)) }
func (e *minEntries) Pop() any          { old := *e; n := len(old); it := old[n-1]; *e = old[:n-1]; return it }

// Len returns the number of queued items.
func (h *MinHeap) Len() int { return h.entries.Len() }

// Push queues an item.
func (h *MinHeap) Push(it MinItem) { heap.Push(&h.entries, it) }

// Pop removes and returns the minimum-priority item. It panics when empty.
func (h *MinHeap) Pop() MinItem { return heap.Pop(&h.entries).(MinItem) }

// Peek returns the minimum-priority item without removing it.
func (h *MinHeap) Peek() MinItem {
	if h.entries.Len() == 0 {
		panic("nnheap: Peek of empty MinHeap")
	}
	return h.entries[0]
}
