package nnheap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKHeapBasic(t *testing.T) {
	h := NewKHeap(3)
	if h.K() != 3 || h.Len() != 0 || h.Full() {
		t.Fatal("fresh heap state wrong")
	}
	for i, d := range []float64{5, 1, 4, 2, 3} {
		h.Push(Candidate{ID: int64(i), Dist: d})
	}
	if !h.Full() || h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
	got := h.Sorted()
	wantDists := []float64{1, 2, 3}
	for i, c := range got {
		if c.Dist != wantDists[i] {
			t.Fatalf("Sorted()[%d].Dist = %v, want %v", i, c.Dist, wantDists[i])
		}
	}
	if h.Top().Dist != 3 {
		t.Fatalf("Top().Dist = %v, want 3", h.Top().Dist)
	}
}

func TestKHeapPushReportsRetention(t *testing.T) {
	h := NewKHeap(2)
	if !h.Push(Candidate{1, 10}) || !h.Push(Candidate{2, 20}) {
		t.Fatal("pushes into non-full heap must be retained")
	}
	if h.Push(Candidate{3, 30}) {
		t.Fatal("worse-than-worst candidate must be rejected")
	}
	if !h.Push(Candidate{4, 5}) {
		t.Fatal("better candidate must be retained")
	}
	if h.Top().Dist != 10 {
		t.Fatalf("Top().Dist = %v, want 10", h.Top().Dist)
	}
}

func TestKHeapEqualDistanceRejected(t *testing.T) {
	// A candidate with distance equal to the current worst must not evict
	// it: Definition 1 permits any tie-breaking, and rejecting keeps the
	// heap stable and avoids needless churn.
	h := NewKHeap(1)
	h.Push(Candidate{1, 7})
	if h.Push(Candidate{2, 7}) {
		t.Fatal("equal-distance candidate should be rejected")
	}
	if h.Top().ID != 1 {
		t.Fatal("original candidate should survive")
	}
}

func TestKHeapThreshold(t *testing.T) {
	h := NewKHeap(2)
	if got := h.Threshold(99); got != 99 {
		t.Fatalf("Threshold on empty = %v, want default", got)
	}
	h.Push(Candidate{1, 3})
	if got := h.Threshold(99); got != 99 {
		t.Fatalf("Threshold on non-full = %v, want default", got)
	}
	h.Push(Candidate{2, 8})
	if got := h.Threshold(99); got != 8 {
		t.Fatalf("Threshold on full = %v, want 8", got)
	}
}

func TestKHeapReset(t *testing.T) {
	h := NewKHeap(4)
	for i := 0; i < 10; i++ {
		h.Push(Candidate{int64(i), float64(i)})
	}
	h.Reset()
	if h.Len() != 0 || h.Full() {
		t.Fatal("Reset did not empty heap")
	}
	h.Push(Candidate{1, 1})
	if h.Len() != 1 {
		t.Fatal("heap unusable after Reset")
	}
}

func TestKHeapPanics(t *testing.T) {
	mustPanic(t, func() { NewKHeap(0) })
	mustPanic(t, func() { NewKHeap(2).Top() })
	mustPanic(t, func() { (&MinHeap{}).Peek() })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestKHeapSortedTieBreaksByID(t *testing.T) {
	h := NewKHeap(3)
	h.Push(Candidate{9, 1})
	h.Push(Candidate{3, 1})
	h.Push(Candidate{5, 1})
	got := h.Sorted()
	if got[0].ID != 3 || got[1].ID != 5 || got[2].ID != 9 {
		t.Fatalf("tie order = %v", got)
	}
}

// Property: for any input sequence and any k, the heap retains exactly the
// k smallest distances (as a multiset).
func TestKHeapKeepsKSmallestQuick(t *testing.T) {
	f := func(dists []float64, kRaw uint8) bool {
		if len(dists) == 0 {
			return true
		}
		k := int(kRaw)%len(dists) + 1
		h := NewKHeap(k)
		for i, d := range dists {
			if d < 0 {
				d = -d
			}
			h.Push(Candidate{ID: int64(i), Dist: d})
		}
		want := make([]float64, 0, len(dists))
		for _, d := range dists {
			if d < 0 {
				d = -d
			}
			want = append(want, d)
		}
		sort.Float64s(want)
		want = want[:min(k, len(want))]
		got := h.Sorted()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Dist != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: once full, Threshold is monotonically non-increasing as more
// candidates are pushed — the θ refinement loop in Algorithm 3 (line 24)
// depends on this.
func TestKHeapThresholdMonotoneQuick(t *testing.T) {
	f := func(dists []float64) bool {
		h := NewKHeap(3)
		prev := -1.0
		for i, d := range dists {
			if d < 0 {
				d = -d
			}
			h.Push(Candidate{int64(i), d})
			if h.Full() {
				cur := h.Threshold(0)
				if prev >= 0 && cur > prev {
					return false
				}
				prev = cur
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestMinHeapOrdering(t *testing.T) {
	h := &MinHeap{}
	vals := []float64{5, 3, 8, 1, 9, 2}
	for _, v := range vals {
		h.Push(MinItem{Priority: v, Payload: v})
	}
	if h.Peek().Priority != 1 {
		t.Fatalf("Peek = %v, want 1", h.Peek().Priority)
	}
	sort.Float64s(vals)
	for _, want := range vals {
		if got := h.Pop(); got.Priority != want {
			t.Fatalf("Pop = %v, want %v", got.Priority, want)
		}
	}
	if h.Len() != 0 {
		t.Fatal("heap not drained")
	}
}

func BenchmarkKHeapPush(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	dists := make([]float64, 4096)
	for i := range dists {
		dists[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := NewKHeap(10)
		for j, d := range dists {
			h.Push(Candidate{int64(j), d})
		}
	}
}
