// Package driver owns the scaffolding every public join operator used to
// repeat: build a DFS (in-memory, or disk-backed when a spill backend is
// configured), simulate a cluster over it, load the R and S datasets as
// Tagged records, run an algorithm, and decode the result file. Join,
// RangeJoin, ClosestPairs and LOF (via the self-join) all run through
// one Env instead of four copies of that setup. It also
// hosts the reduce-side collection helpers shared by the block/region
// reducers — including the columnar-Block collectors every driver's hot
// loop now runs on — and the emit-time conversion from candidate heaps
// to result neighbors.
package driver

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"knnjoin/internal/codec"
	"knnjoin/internal/dataset"
	"knnjoin/internal/dfs"
	"knnjoin/internal/mapreduce"
	"knnjoin/internal/nnheap"
	"knnjoin/internal/obs"
	"knnjoin/internal/stats"
	"knnjoin/internal/vector"
)

// Canonical file names every operator uses on its private filesystem.
const (
	RFile   = "R"
	SFile   = "S"
	OutFile = "out"
)

// Env is one join run's environment: a fresh filesystem and a simulated
// cluster of the requested size.
type Env struct {
	FS      dfs.Store
	Cluster *mapreduce.Cluster

	ownedDir string // spill directory this Env created and must remove
}

// Config selects an environment's shape: cluster size, split size, and
// the execution backend (see mapreduce.Engine). The zero value of the
// backend fields keeps everything in memory — the default every caller
// had before spilling existed.
type Config struct {
	// Nodes is the simulated cluster size. Must be positive.
	Nodes int
	// ChunkRecords is the DFS split size (records per map task); ≤0
	// selects the DFS default.
	ChunkRecords int
	// SpillDir, when non-empty, selects the out-of-core backend rooted at
	// this directory: DFS chunks and shuffle runs both live under it.
	SpillDir string
	// MemLimit bounds resident shuffle bytes (half for retained runs,
	// half for merge buffers; see mapreduce.Engine). MemLimit > 0 with an
	// empty SpillDir makes the Env create — and remove on Close — a
	// temporary spill directory.
	MemLimit int64
	// Workers, when positive, runs every job on that many worker
	// processes coordinated over RPC (see mapreduce.NewDistCluster)
	// instead of the in-process engine. Output is byte-identical either
	// way. Workers takes the place of the MemLimit spill engine: the
	// distributed engine always stages intermediate runs on disk.
	Workers int
	// Faults is an optional deterministic fault-injection plan for the
	// worker processes; nil injects nothing. Only meaningful with
	// Workers > 0.
	Faults *mapreduce.FaultPlan
	// TraceDir, when non-empty, enables span tracing on the distributed
	// engine: coordinator and workers write per-process JSONL span
	// files there (see internal/obs and cmd/knntrace). Only meaningful
	// with Workers > 0; tracing never changes any output byte.
	TraceDir string
	// TraceParent optionally parents the engine's cluster span under a
	// caller-owned span (e.g. a CLI root span).
	TraceParent obs.SpanContext
	// Pprof exposes net/http/pprof on the coordinator's HTTP server.
	// Only meaningful with Workers > 0.
	Pprof bool
}

// New builds an in-memory environment with nodes simulated nodes and the
// given DFS chunk size (records per input split; ≤0 selects the DFS
// default).
func New(nodes, chunkRecords int) *Env {
	fs := dfs.New(chunkRecords)
	return &Env{FS: fs, Cluster: mapreduce.NewCluster(fs, nodes)}
}

// NewEnv builds an environment for the configuration. With a spill
// backend configured, both the DFS chunks and the shuffle runs live on
// disk in a private subdirectory of SpillDir (or the system temp dir),
// created here and removed by Close — so any number of runs can share one
// spill root without colliding. Call Close when the run's results have
// been read.
func NewEnv(cfg Config) (*Env, error) {
	if cfg.Workers > 0 {
		fs := dfs.New(cfg.ChunkRecords)
		cluster, err := mapreduce.NewDistCluster(fs, cfg.Nodes, mapreduce.DistConfig{
			Workers:     cfg.Workers,
			Faults:      cfg.Faults,
			TraceDir:    cfg.TraceDir,
			TraceParent: cfg.TraceParent,
			Pprof:       cfg.Pprof,
		})
		if err != nil {
			return nil, err
		}
		return &Env{FS: fs, Cluster: cluster}, nil
	}
	if cfg.SpillDir == "" && cfg.MemLimit <= 0 {
		return New(cfg.Nodes, cfg.ChunkRecords), nil
	}
	root := cfg.SpillDir
	if root == "" {
		root = os.TempDir()
	} else if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("driver: spill dir: %w", err)
	}
	dir, err := os.MkdirTemp(root, "knnjoin-env-*")
	if err != nil {
		return nil, fmt.Errorf("driver: spill dir: %w", err)
	}
	env := &Env{ownedDir: dir}
	fs, err := dfs.NewDisk(filepath.Join(dir, "dfs"), cfg.ChunkRecords)
	if err != nil {
		env.Close()
		return nil, err
	}
	shuffleDir := filepath.Join(dir, "shuffle")
	if err := os.MkdirAll(shuffleDir, 0o755); err != nil {
		env.Close()
		return nil, fmt.Errorf("driver: spill dir: %w", err)
	}
	cluster, err := mapreduce.NewClusterEngine(fs, cfg.Nodes, mapreduce.Engine{
		SpillDir: shuffleDir, MemLimit: cfg.MemLimit,
	})
	if err != nil {
		env.Close()
		return nil, err
	}
	env.FS, env.Cluster = fs, cluster
	return env, nil
}

// Close releases the environment: the private spill subdirectory the Env
// created is removed with everything in it (a caller-provided spill root
// itself is left in place). Closing an in-memory Env is a no-op, so
// callers may defer it unconditionally.
func (e *Env) Close() {
	if e.Cluster != nil {
		e.Cluster.Close()
	}
	if e.ownedDir != "" {
		os.RemoveAll(e.ownedDir)
		e.ownedDir = ""
	}
}

// LoadRS validates the datasets and writes them to the canonical R and S
// files as source-tagged records. Validation happens here, at dataset
// load, because it is the last place a dimensionality mix-up is an input
// error: past this point mismatched points meet inside a reducer, where
// Metric.Dist treats the mix as a programming error and panics.
func (e *Env) LoadRS(r, s []codec.Object) error {
	if err := CheckDims(r, s); err != nil {
		return err
	}
	if err := dataset.ToDFS(e.FS, RFile, r, codec.FromR); err != nil {
		return err
	}
	return dataset.ToDFS(e.FS, SFile, s, codec.FromS)
}

// CheckDims verifies that every object of r and s shares one
// dimensionality (taken from the first object present) and reports the
// first offender otherwise.
func CheckDims(r, s []codec.Object) error {
	dim, stamped := 0, false
	for _, set := range []struct {
		name string
		objs []codec.Object
	}{{"R", r}, {"S", s}} {
		for i := range set.objs {
			d := set.objs[i].Point.Dim()
			if !stamped {
				dim, stamped = d, true
				continue
			}
			if d != dim {
				return fmt.Errorf("driver: %s object %d has %d dims, want %d",
					set.name, set.objs[i].ID, d, dim)
			}
		}
	}
	return nil
}

// Results decodes the canonical output file into join results sorted by
// R object ID — the output contract of every join algorithm.
func (e *Env) Results() ([]codec.Result, error) {
	return ReadResults(e.FS, OutFile)
}

// ReadResults decodes a result file produced by any join job and returns
// the results sorted by R object ID.
func ReadResults(fs dfs.Store, name string) ([]codec.Result, error) {
	recs, err := fs.Read(name)
	if err != nil {
		return nil, err
	}
	out := make([]codec.Result, len(recs))
	for i, r := range recs {
		res, err := codec.DecodeResult(r)
		if err != nil {
			return nil, fmt.Errorf("driver: result record %d of %q: %w", i, name, err)
		}
		out[i] = res
	}
	SortResults(out)
	return out, nil
}

// AddJobStats appends one MapReduce job's measured actuals to the
// report's per-job breakdown. Every algorithm calls it after each
// cluster.Run, so the public Stats expose where shuffle bytes and
// distance computations were actually spent, job by job. Distance
// computations are read from the conventional "pairs" counter; jobs
// that count comparisons under another name use AddJobStatsCounter.
func AddJobStats(rep *stats.Report, js *mapreduce.JobStats) {
	AddJobStatsCounter(rep, js, "pairs")
}

// AddJobStatsCounter is AddJobStats with the job's comparison counter
// named explicitly (e.g. setsim's "verified").
func AddJobStatsCounter(rep *stats.Report, js *mapreduce.JobStats, distCounter string) {
	rep.AddJob(stats.JobStat{
		Name:               js.Job,
		ShuffleRecords:     js.ShuffleRecords,
		ShuffleBytes:       js.ShuffleBytes,
		DistComps:          js.Counters[distCounter],
		SpilledBytes:       js.SpilledBytes,
		Wall:               js.Wall(),
		MapWall:            js.MapWall,
		ReduceWall:         js.ReduceWall,
		WorkerTasks:        js.WorkerTasks,
		ReexecutedAttempts: js.ReexecutedAttempts,
	})
}

// CollectRSBlocks streams one reducer group of Tagged values into two
// columnar Blocks, R and S, in arrival (key) order — the block form of
// CollectRS shared by every region/bucket reducer (H-BRJ,
// 1-Bucket-Theta, LSH buckets, broadcast). Each side decodes with a
// constant number of allocations instead of two per point.
func CollectRSBlocks(values *mapreduce.Values) (rs, ss *vector.Block, err error) {
	rs, ss = &vector.Block{}, &vector.Block{}
	for v, ok := values.Next(); ok; v, ok = values.Next() {
		src, err := codec.PeekSource(v)
		if err != nil {
			return nil, nil, err
		}
		dst := ss
		if src == codec.FromR {
			dst = rs
		}
		if _, _, err := codec.AppendTaggedToBlock(dst, v); err != nil {
			return nil, nil, err
		}
	}
	// The per-side appends only enforce one dimensionality per block; a
	// group whose R and S sides disagree would otherwise meet inside a
	// distance kernel, which treats the mix as a programming-error
	// invariant (panic). Catch it here, the CheckDims treatment at the
	// block-build site, so a malformed group fails the job instead.
	if rs.Len() > 0 && ss.Len() > 0 && rs.Dim != ss.Dim {
		return nil, nil, fmt.Errorf("driver: reducer group mixes %d-dim R rows with %d-dim S rows", rs.Dim, ss.Dim)
	}
	return rs, ss, nil
}

// CollectRSBlocksKernel is CollectRSBlocks plus kernel tier attachment
// on the scanned side: the S block — the one the distance kernels sweep
// — is Prepared for the requested tier (see vector.Kernel). The R block
// only sources queries and keeps its plain float64 rows.
func CollectRSBlocksKernel(values *mapreduce.Values, k vector.Kernel) (rs, ss *vector.Block, err error) {
	rs, ss, err = CollectRSBlocks(values)
	if err != nil {
		return nil, nil, err
	}
	ss.Prepare(k)
	return rs, ss, nil
}

// joinBatchRows is the R-row batch width of JoinBlocksKNN: enough
// queries to amortize streaming an S panel across the batch, few enough
// that the per-query heaps stay cache-resident.
const joinBatchRows = 64

// JoinBlocksKNN emits one Result per R row — the row's k nearest S rows
// — sweeping S in cache-sized panels across batches of R rows via the
// query-batched kernels. It is the shared reduce loop of every region/
// bucket reducer whose join is a full rBlk × sBlk nested loop
// (1-Bucket-Theta regions, broadcast, LSH buckets): each S panel is
// loaded once per batch of queries instead of once per query, and the
// per-query results are bit-identical to the sequential NearestK loop.
// Returns the scanned pair count for the "pairs" counter.
func JoinBlocksKNN(rBlk, sBlk *vector.Block, k int, m vector.Metric, emit mapreduce.Emit) int64 {
	squared := m == vector.L2
	var heaps []*nnheap.KHeap
	var qs []vector.Point
	var cbuf []nnheap.Candidate
	var nbuf []codec.Neighbor
	var pairs int64
	for base := 0; base < rBlk.Len(); base += joinBatchRows {
		end := base + joinBatchRows
		if end > rBlk.Len() {
			end = rBlk.Len()
		}
		qs = qs[:0]
		for row := base; row < end; row++ {
			qs = append(qs, rBlk.At(row))
		}
		for len(heaps) < len(qs) {
			heaps = append(heaps, nnheap.NewKHeap(k))
		}
		for _, h := range heaps[:len(qs)] {
			h.Reset()
		}
		pairs += sBlk.NearestKBatch(qs, m, heaps[:len(qs)])
		for i, row := 0, base; row < end; i, row = i+1, row+1 {
			cbuf = heaps[i].AppendSorted(cbuf[:0])
			nbuf = AppendNeighbors(nbuf[:0], cbuf, squared)
			emit(nil, codec.EncodeResult(codec.Result{RID: rBlk.IDs[row], Neighbors: nbuf}))
		}
	}
	return pairs
}

// AppendNeighbors converts sorted candidates into result neighbors,
// appending to dst and returning the extended slice. squared marks
// candidates produced by the L2 block kernels, whose distances are
// squared: each survivor takes its single sqrt here, at emit time — the
// only sqrt of the squared-distance pipeline.
func AppendNeighbors(dst []codec.Neighbor, cands []nnheap.Candidate, squared bool) []codec.Neighbor {
	for _, c := range cands {
		d := c.Dist
		if squared {
			d = math.Sqrt(d) //lint:allow sqrtfree: the emit site — neighbors leave the engine in true L2 units
		}
		dst = append(dst, codec.Neighbor{ID: c.ID, Dist: d})
	}
	return dst
}

// SortResults orders results by R object ID in place.
func SortResults(rs []codec.Result) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].RID < rs[j].RID })
}
