// Package driver owns the scaffolding every public join operator used to
// repeat: build an in-memory DFS, simulate a cluster over it, load the R
// and S datasets as Tagged records, run an algorithm, and decode the
// result file. Join, RangeJoin, ClosestPairs and LOF (via the self-join)
// all run through one Env instead of four copies of that setup.
package driver

import (
	"fmt"
	"sort"

	"knnjoin/internal/codec"
	"knnjoin/internal/dataset"
	"knnjoin/internal/dfs"
	"knnjoin/internal/mapreduce"
)

// Canonical file names every operator uses on its private filesystem.
const (
	RFile   = "R"
	SFile   = "S"
	OutFile = "out"
)

// Env is one join run's environment: a fresh filesystem and a simulated
// cluster of the requested size.
type Env struct {
	FS      *dfs.FS
	Cluster *mapreduce.Cluster
}

// New builds an environment with nodes simulated nodes and the given DFS
// chunk size (records per input split; ≤0 selects the DFS default).
func New(nodes, chunkRecords int) *Env {
	fs := dfs.New(chunkRecords)
	return &Env{FS: fs, Cluster: mapreduce.NewCluster(fs, nodes)}
}

// LoadRS writes the outer and inner datasets to the canonical R and S
// files as source-tagged records.
func (e *Env) LoadRS(r, s []codec.Object) {
	dataset.ToDFS(e.FS, RFile, r, codec.FromR)
	dataset.ToDFS(e.FS, SFile, s, codec.FromS)
}

// Results decodes the canonical output file into join results sorted by
// R object ID — the output contract of every join algorithm.
func (e *Env) Results() ([]codec.Result, error) {
	return ReadResults(e.FS, OutFile)
}

// ReadResults decodes a result file produced by any join job and returns
// the results sorted by R object ID.
func ReadResults(fs *dfs.FS, name string) ([]codec.Result, error) {
	recs, err := fs.Read(name)
	if err != nil {
		return nil, err
	}
	out := make([]codec.Result, len(recs))
	for i, r := range recs {
		res, err := codec.DecodeResult(r)
		if err != nil {
			return nil, fmt.Errorf("driver: result record %d of %q: %w", i, name, err)
		}
		out[i] = res
	}
	SortResults(out)
	return out, nil
}

// CollectRS streams one reducer group of Tagged values into R and S
// object lists, in arrival (key) order. Shared by every block/region
// reducer that joins its R objects against its S objects (H-BRJ,
// 1-Bucket-Theta, LSH buckets, broadcast).
func CollectRS(values *mapreduce.Values) (rs, ss []codec.Object, err error) {
	for v, ok := values.Next(); ok; v, ok = values.Next() {
		t, err := codec.DecodeTagged(v)
		if err != nil {
			return nil, nil, err
		}
		if t.Src == codec.FromR {
			rs = append(rs, t.Object)
		} else {
			ss = append(ss, t.Object)
		}
	}
	return rs, ss, nil
}

// SortResults orders results by R object ID in place.
func SortResults(rs []codec.Result) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].RID < rs[j].RID })
}
