// Package driver owns the scaffolding every public join operator used to
// repeat: build an in-memory DFS, simulate a cluster over it, load the R
// and S datasets as Tagged records, run an algorithm, and decode the
// result file. Join, RangeJoin, ClosestPairs and LOF (via the self-join)
// all run through one Env instead of four copies of that setup. It also
// hosts the reduce-side collection helpers shared by the block/region
// reducers — including the columnar-Block collectors every driver's hot
// loop now runs on — and the emit-time conversion from candidate heaps
// to result neighbors.
package driver

import (
	"fmt"
	"math"
	"sort"

	"knnjoin/internal/codec"
	"knnjoin/internal/dataset"
	"knnjoin/internal/dfs"
	"knnjoin/internal/mapreduce"
	"knnjoin/internal/nnheap"
	"knnjoin/internal/vector"
)

// Canonical file names every operator uses on its private filesystem.
const (
	RFile   = "R"
	SFile   = "S"
	OutFile = "out"
)

// Env is one join run's environment: a fresh filesystem and a simulated
// cluster of the requested size.
type Env struct {
	FS      *dfs.FS
	Cluster *mapreduce.Cluster
}

// New builds an environment with nodes simulated nodes and the given DFS
// chunk size (records per input split; ≤0 selects the DFS default).
func New(nodes, chunkRecords int) *Env {
	fs := dfs.New(chunkRecords)
	return &Env{FS: fs, Cluster: mapreduce.NewCluster(fs, nodes)}
}

// LoadRS validates the datasets and writes them to the canonical R and S
// files as source-tagged records. Validation happens here, at dataset
// load, because it is the last place a dimensionality mix-up is an input
// error: past this point mismatched points meet inside a reducer, where
// Metric.Dist treats the mix as a programming error and panics.
func (e *Env) LoadRS(r, s []codec.Object) error {
	if err := CheckDims(r, s); err != nil {
		return err
	}
	dataset.ToDFS(e.FS, RFile, r, codec.FromR)
	dataset.ToDFS(e.FS, SFile, s, codec.FromS)
	return nil
}

// CheckDims verifies that every object of r and s shares one
// dimensionality (taken from the first object present) and reports the
// first offender otherwise.
func CheckDims(r, s []codec.Object) error {
	dim, stamped := 0, false
	for _, set := range []struct {
		name string
		objs []codec.Object
	}{{"R", r}, {"S", s}} {
		for i := range set.objs {
			d := set.objs[i].Point.Dim()
			if !stamped {
				dim, stamped = d, true
				continue
			}
			if d != dim {
				return fmt.Errorf("driver: %s object %d has %d dims, want %d",
					set.name, set.objs[i].ID, d, dim)
			}
		}
	}
	return nil
}

// Results decodes the canonical output file into join results sorted by
// R object ID — the output contract of every join algorithm.
func (e *Env) Results() ([]codec.Result, error) {
	return ReadResults(e.FS, OutFile)
}

// ReadResults decodes a result file produced by any join job and returns
// the results sorted by R object ID.
func ReadResults(fs *dfs.FS, name string) ([]codec.Result, error) {
	recs, err := fs.Read(name)
	if err != nil {
		return nil, err
	}
	out := make([]codec.Result, len(recs))
	for i, r := range recs {
		res, err := codec.DecodeResult(r)
		if err != nil {
			return nil, fmt.Errorf("driver: result record %d of %q: %w", i, name, err)
		}
		out[i] = res
	}
	SortResults(out)
	return out, nil
}

// CollectRSBlocks streams one reducer group of Tagged values into two
// columnar Blocks, R and S, in arrival (key) order — the block form of
// CollectRS shared by every region/bucket reducer (H-BRJ,
// 1-Bucket-Theta, LSH buckets, broadcast). Each side decodes with a
// constant number of allocations instead of two per point.
func CollectRSBlocks(values *mapreduce.Values) (rs, ss *vector.Block, err error) {
	rs, ss = &vector.Block{}, &vector.Block{}
	for v, ok := values.Next(); ok; v, ok = values.Next() {
		src, err := codec.PeekSource(v)
		if err != nil {
			return nil, nil, err
		}
		dst := ss
		if src == codec.FromR {
			dst = rs
		}
		if _, _, err := codec.AppendTaggedToBlock(dst, v); err != nil {
			return nil, nil, err
		}
	}
	return rs, ss, nil
}

// AppendNeighbors converts sorted candidates into result neighbors,
// appending to dst and returning the extended slice. squared marks
// candidates produced by the L2 block kernels, whose distances are
// squared: each survivor takes its single sqrt here, at emit time — the
// only sqrt of the squared-distance pipeline.
func AppendNeighbors(dst []codec.Neighbor, cands []nnheap.Candidate, squared bool) []codec.Neighbor {
	for _, c := range cands {
		d := c.Dist
		if squared {
			d = math.Sqrt(d)
		}
		dst = append(dst, codec.Neighbor{ID: c.ID, Dist: d})
	}
	return dst
}

// SortResults orders results by R object ID in place.
func SortResults(rs []codec.Result) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].RID < rs[j].RID })
}
