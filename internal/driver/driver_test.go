package driver

import (
	"testing"

	"knnjoin/internal/codec"
	"knnjoin/internal/dfs"
	"knnjoin/internal/vector"
)

func obj(id int64, x float64) codec.Object {
	return codec.Object{ID: id, Point: vector.Point{x}}
}

func TestEnvLoadAndResults(t *testing.T) {
	env := New(4, 2)
	if err := env.LoadRS([]codec.Object{obj(1, 0), obj(2, 1)}, []codec.Object{obj(7, 5)}); err != nil {
		t.Fatal(err)
	}
	if got := env.FS.Size(RFile); got != 2 {
		t.Fatalf("R file has %d records, want 2", got)
	}
	if got := env.FS.Size(SFile); got != 1 {
		t.Fatalf("S file has %d records, want 1", got)
	}
	// Loaded records must round-trip as source-tagged objects.
	recs, err := env.FS.Read(SFile)
	if err != nil {
		t.Fatal(err)
	}
	tagged, err := codec.DecodeTagged(recs[0])
	if err != nil {
		t.Fatal(err)
	}
	if tagged.Src != codec.FromS || tagged.ID != 7 {
		t.Fatalf("S record decoded as %+v", tagged)
	}

	// Results reads the canonical output file sorted by RID.
	env.FS.Write(OutFile, []dfs.Record{
		codec.EncodeResult(codec.Result{RID: 9}),
		codec.EncodeResult(codec.Result{RID: 2, Neighbors: []codec.Neighbor{{ID: 7, Dist: 4}}}),
	})
	results, err := env.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].RID != 2 || results[1].RID != 9 {
		t.Fatalf("results = %+v, want RIDs 2, 9", results)
	}
	if len(results[0].Neighbors) != 1 || results[0].Neighbors[0].ID != 7 {
		t.Fatalf("neighbors lost in round trip: %+v", results[0])
	}
}

// Mixed dimensionalities must be rejected at dataset load — past this
// point they would meet inside a reducer, where Metric.Dist panics.
func TestLoadRSRejectsMixedDimensions(t *testing.T) {
	twoD := codec.Object{ID: 3, Point: vector.Point{1, 2}}
	env := New(2, 0)
	if err := env.LoadRS([]codec.Object{obj(1, 0), twoD}, nil); err == nil {
		t.Error("mixed dims within R accepted")
	}
	if err := env.LoadRS([]codec.Object{obj(1, 0)}, []codec.Object{twoD}); err == nil {
		t.Error("R/S dim mismatch accepted")
	}
	if err := CheckDims(nil, []codec.Object{twoD, obj(9, 1)}); err == nil {
		t.Error("mixed dims within S accepted")
	}
	if err := CheckDims(nil, nil); err != nil {
		t.Errorf("empty datasets rejected: %v", err)
	}
}

func TestReadResultsErrors(t *testing.T) {
	env := New(1, 0)
	if _, err := env.Results(); err == nil {
		t.Error("missing output file must error")
	}
	env.FS.Write(OutFile, []dfs.Record{{1, 2, 3}})
	if _, err := env.Results(); err == nil {
		t.Error("corrupt result record must error")
	}
}
