package zknn

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"knnjoin/internal/codec"
	"knnjoin/internal/dfs"
	"knnjoin/internal/driver"
	"knnjoin/internal/hbrj"
	"knnjoin/internal/mapreduce"
	"knnjoin/internal/nnheap"
	"knnjoin/internal/stats"
	"knnjoin/internal/vector"
)

// Options configures an H-zkNNJ run.
type Options struct {
	// K is the number of neighbors. Required, positive.
	K int
	// Shifts is α, the number of shifted copies (≥1; the first copy is
	// unshifted). Default 3, the customary accuracy/cost sweet spot.
	Shifts int
	// CandidatesPerSide is how many z-order neighbors to examine on each
	// side of r's curve position. Default 2·K.
	CandidatesPerSide int
	// SampleSize drives boundary estimation on the driver. Default 4096.
	SampleSize int
	// Seed fixes the shift vectors and sampling.
	Seed int64
}

func (o Options) withDefaults() (Options, error) {
	if o.K <= 0 {
		return o, fmt.Errorf("zknn: k must be positive, got %d", o.K)
	}
	if o.Shifts <= 0 {
		o.Shifts = 3
	}
	if o.CandidatesPerSide <= 0 {
		o.CandidatesPerSide = 2 * o.K
	}
	if o.SampleSize <= 0 {
		o.SampleSize = 4096
	}
	return o, nil
}

// zRecord is what crosses the shuffle: a tagged object plus its z-value
// under one shift. Encoded as shift byte + z + the usual Tagged record.
func encodeZ(shift int, z uint64, base []byte) []byte {
	out := make([]byte, 0, 9+len(base))
	out = append(out, byte(shift))
	out = binary.LittleEndian.AppendUint64(out, z)
	return append(out, base...)
}

// The reducer reads the layout in place: the z at [1:9] and the Tagged
// payload from offset 9, which decodes straight into a columnar block.

// Run executes the approximate join. rFile and sFile must contain Tagged
// records; outFile receives one codec.Result per R object, each holding
// its approximate k nearest neighbors. The L2 metric is assumed — the
// Z-curve's locality argument is Euclidean.
func Run(cluster *mapreduce.Cluster, rFile, sFile, outFile string, opts Options) (*stats.Report, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	report := &stats.Report{
		Algorithm: "H-zkNNJ",
		K:         opts.K,
		Nodes:     cluster.Nodes(),
		RSize:     cluster.FS().Size(rFile),
		SSize:     cluster.FS().Size(sFile),
	}

	// ---- Driver: bounding box, shift vectors, boundary estimation ------
	prepStart := time.Now()
	sample, dims, err := sampleObjects(cluster.FS(), rFile, sFile, opts.SampleSize, opts.Seed)
	if err != nil {
		return nil, err
	}
	min, max := boundingBox(sample, dims)
	// Shift magnitude: a few percent of the box diagonal per dimension.
	span := 0.0
	for d := 0; d < dims; d++ {
		span += max[d] - min[d]
	}
	shiftPad := span / float64(dims) * 0.25
	q := newQuantizer(min, max, shiftPad)

	rng := rand.New(rand.NewSource(opts.Seed))
	shifts := make([][]float64, opts.Shifts)
	for i := 1; i < opts.Shifts; i++ { // shifts[0] stays nil: identity
		v := make([]float64, dims)
		for d := range v {
			v[d] = rng.Float64() * shiftPad
		}
		shifts[i] = v
	}

	// Boundaries per shift: equi-depth on the sample's z-values, one
	// range per node.
	nRanges := cluster.Nodes()
	boundaries := make([][]uint64, opts.Shifts)
	for i := range shifts {
		zs := make([]uint64, len(sample))
		for j, o := range sample {
			zs[j] = q.Z(o.Point, shifts[i])
		}
		sort.Slice(zs, func(a, b int) bool { return zs[a] < zs[b] })
		bs := make([]uint64, nRanges-1)
		for b := range bs {
			bs[b] = zs[(b+1)*len(zs)/nRanges]
		}
		boundaries[i] = bs
	}
	report.AddPhase("Z Preprocessing", time.Since(prepStart))

	// ---- Job 1: route shifted copies to ranges, harvest candidates -----
	partialFile := outFile + ".partial"
	job := candidateKind.New(candidateSpec{
		RFile:      rFile,
		SFile:      sFile,
		Output:     partialFile,
		Min:        min,
		Max:        max,
		ShiftPad:   shiftPad,
		Shifts:     shifts,
		Boundaries: boundaries,
		Opts:       opts,
	})
	start := time.Now()
	js, err := cluster.Run(job)
	if err != nil {
		return nil, err
	}
	report.AddPhase("Candidate Join", time.Since(start))
	driver.AddJobStats(report, js)
	report.Pairs += js.Counters["pairs"]
	report.ShuffleBytes += js.ShuffleBytes
	report.ShuffleRecords += js.ShuffleRecords
	report.ReplicasS = js.Counters["replicas_s"]
	report.SimMakespan += js.SimMapMakespan + js.SimReduceMakespan
	report.JoinSkew = js.ReduceSkew()

	// ---- Job 2: merge the α candidate lists per object ------------------
	ms, err := hbrj.MergeResults(cluster, partialFile, outFile, opts.K)
	cluster.FS().Remove(partialFile)
	if err != nil {
		return nil, err
	}
	report.AddPhase("Result Merging", ms.Wall())
	driver.AddJobStats(report, ms)
	report.ShuffleBytes += ms.ShuffleBytes
	report.ShuffleRecords += ms.ShuffleRecords
	report.SimMakespan += ms.SimMapMakespan + ms.SimReduceMakespan
	report.OutputPairs = ms.Counters["result_pairs"]
	return report, nil
}

// candidateSpec rebuilds the candidate job in a worker process. The
// quantizer is carried as its construction inputs (min, max, shiftPad)
// because newQuantizer derives the rest deterministically.
type candidateSpec struct {
	RFile, SFile string
	Output       string
	Min, Max     []float64
	ShiftPad     float64
	Shifts       [][]float64
	Boundaries   [][]uint64
	Opts         Options
}

var candidateKind = mapreduce.DefineKind("zknn-candidates", buildCandidateJob)

func buildCandidateJob(s candidateSpec) *mapreduce.Job {
	nRanges := len(s.Boundaries[0]) + 1
	return &mapreduce.Job{
		Name:        "zknn-candidates",
		Input:       []string{s.RFile, s.SFile},
		Output:      s.Output,
		NumReducers: s.Opts.Shifts * nRanges,
		Partition:   mapreduce.Uint32Partition,
		Side: map[string]any{
			"q":          newQuantizer(s.Min, s.Max, s.ShiftPad),
			"shifts":     s.Shifts,
			"boundaries": s.Boundaries,
			"opts":       s.Opts,
		},
		Map:    candidateMap,
		Reduce: candidateReduce,
	}
}

// candidateMap emits one shifted copy per α to its curve range, with
// boundary-adjacent replication on the S side.
func candidateMap(ctx *mapreduce.TaskContext, rec dfs.Record, emit mapreduce.Emit) error {
	q := ctx.Side("q").(*quantizer)
	shifts := ctx.Side("shifts").([][]float64)
	boundaries := ctx.Side("boundaries").([][]uint64)
	t, err := codec.DecodeTagged(rec)
	if err != nil {
		return err
	}
	for i := range shifts {
		z := q.Z(t.Point, shifts[i])
		rg := rangeOf(z, boundaries[i])
		key := i*len(boundaries[i]) + i + rg // shift-major reducer id
		emit(codec.Uint32Key(uint32(key)), encodeZ(i, z, rec))
		if t.Src == codec.FromS {
			ctx.Counter("replicas_s", 1)
			// Replicate boundary-adjacent S copies so every r sees
			// its full z-neighborhood despite the range split.
			if rg > 0 {
				emit(codec.Uint32Key(uint32(key-1)), encodeZ(i, z, rec))
				ctx.Counter("replicas_s", 1)
			}
			if rg < len(boundaries[i]) {
				emit(codec.Uint32Key(uint32(key+1)), encodeZ(i, z, rec))
				ctx.Counter("replicas_s", 1)
			}
		}
	}
	return nil
}

// candidateReduce sorts one curve range and emits, for every r in it, the
// true distances to its z-order neighborhood in S. Both sides decode into
// columnar blocks (constant allocations per group); S is curve-ordered
// through an index permutation instead of moving coordinates, and the
// candidate distances run through the fused squared-L2 kernel with the
// sqrt taken at emit time.
func candidateReduce(ctx *mapreduce.TaskContext, _ []byte, values *mapreduce.Values, emit mapreduce.Emit) error {
	opts := ctx.Side("opts").(Options)
	rBlk, sBlk := &vector.Block{}, &vector.Block{}
	var rz, sz []uint64
	for v, ok := values.Next(); ok; v, ok = values.Next() {
		if len(v) < 9 {
			return fmt.Errorf("zknn: record truncated")
		}
		z := binary.LittleEndian.Uint64(v[1:9])
		src, err := codec.PeekSource(v[9:])
		if err != nil {
			return err
		}
		if src == codec.FromR {
			rz = append(rz, z)
			_, _, err = codec.AppendTaggedToBlock(rBlk, v[9:])
		} else {
			sz = append(sz, z)
			_, _, err = codec.AppendTaggedToBlock(sBlk, v[9:])
		}
		if err != nil {
			return err
		}
	}
	// Curve order for S: a permutation sorted by (z, ID), plus the sorted
	// z-values for the per-r binary search.
	perm := make([]int, sBlk.Len())
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		if sz[perm[a]] != sz[perm[b]] {
			return sz[perm[a]] < sz[perm[b]]
		}
		return sBlk.IDs[perm[a]] < sBlk.IDs[perm[b]]
	})
	zSorted := make([]uint64, len(perm))
	for i, p := range perm {
		zSorted[i] = sz[p]
	}

	var pairs int64
	heap := nnheap.NewKHeap(opts.K)
	var cbuf []nnheap.Candidate
	var nbuf []codec.Neighbor
	for row := 0; row < rBlk.Len(); row++ {
		rPoint := rBlk.At(row)
		pos := sort.Search(len(zSorted), func(i int) bool { return zSorted[i] >= rz[row] })
		lo := pos - opts.CandidatesPerSide
		if lo < 0 {
			lo = 0
		}
		hi := pos + opts.CandidatesPerSide
		if hi > len(zSorted) {
			hi = len(zSorted)
		}
		heap.Reset()
		for x := lo; x < hi; x++ {
			si := perm[x]
			pairs++
			heap.Push(nnheap.Candidate{ID: sBlk.IDs[si], Dist: sBlk.SqDistTo(si, rPoint)})
		}
		cbuf = heap.AppendSorted(cbuf[:0])
		nbuf = driver.AppendNeighbors(nbuf[:0], cbuf, true)
		emit(nil, codec.EncodeResult(codec.Result{RID: rBlk.IDs[row], Neighbors: nbuf}))
	}
	ctx.Counter("pairs", pairs)
	ctx.AddWork(pairs)
	return nil
}

// sampleObjects draws up to n objects uniformly from the two files and
// reports the dimensionality.
func sampleObjects(fs dfs.Store, rFile, sFile string, n int, seed int64) ([]codec.Object, int, error) {
	var all []codec.Object
	for _, name := range []string{rFile, sFile} {
		recs, err := fs.Read(name)
		if err != nil {
			return nil, 0, err
		}
		for _, rec := range recs {
			t, err := codec.DecodeTagged(rec)
			if err != nil {
				return nil, 0, err
			}
			all = append(all, t.Object)
		}
	}
	if len(all) == 0 {
		return nil, 0, fmt.Errorf("zknn: empty input")
	}
	dims := all[0].Point.Dim()
	if n >= len(all) {
		return all, dims, nil
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(all))[:n]
	out := make([]codec.Object, n)
	for i, j := range idx {
		out[i] = all[j]
	}
	return out, dims, nil
}

// boundingBox computes per-dimension min/max of the sample.
func boundingBox(objs []codec.Object, dims int) (min, max []float64) {
	min = make([]float64, dims)
	max = make([]float64, dims)
	for d := 0; d < dims; d++ {
		min[d], max[d] = objs[0].Point[d], objs[0].Point[d]
	}
	for _, o := range objs {
		for d, v := range o.Point {
			if v < min[d] {
				min[d] = v
			}
			if v > max[d] {
				max[d] = v
			}
		}
	}
	return min, max
}

// Recall measures result quality against an exact join: the fraction of
// (r, distance) pairs whose distance is within tolerance of the exact
// k-th list. Exact and approx must be sorted by RID with neighbors
// ascending (the standard output contract).
func Recall(approx, exact []codec.Result) float64 {
	if len(exact) == 0 {
		return 1
	}
	byID := make(map[int64]codec.Result, len(approx))
	for _, a := range approx {
		byID[a.RID] = a
	}
	var hit, total int
	for _, e := range exact {
		a := byID[e.RID]
		got := make(map[int64]bool, len(a.Neighbors))
		for _, nb := range a.Neighbors {
			got[nb.ID] = true
		}
		for i, nb := range e.Neighbors {
			total++
			if got[nb.ID] {
				hit++
				continue
			}
			// Distance-equal stand-ins count as hits: ties are legal.
			if i < len(a.Neighbors) && a.Neighbors[i].Dist <= nb.Dist+1e-12 {
				hit++
			}
		}
	}
	return float64(hit) / float64(total)
}
