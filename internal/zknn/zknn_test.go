package zknn

import (
	"math"
	"testing"
	"testing/quick"

	"knnjoin/internal/codec"
	"knnjoin/internal/dataset"
	"knnjoin/internal/dfs"
	"knnjoin/internal/mapreduce"
	"knnjoin/internal/naive"
	"knnjoin/internal/vector"
)

func runZKNN(t testing.TB, rObjs, sObjs []codec.Object, opts Options, nodes int) ([]codec.Result, *runView) {
	t.Helper()
	fs := dfs.New(256)
	cluster := mapreduce.NewCluster(fs, nodes)
	dataset.ToDFS(fs, "R", rObjs, codec.FromR)
	dataset.ToDFS(fs, "S", sObjs, codec.FromS)
	rep, err := Run(cluster, "R", "S", "out", opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := naive.ReadResults(fs, "out")
	if err != nil {
		t.Fatal(err)
	}
	return got, &runView{pairs: rep.Pairs, shuffle: rep.ShuffleRecords, phases: len(rep.Phases)}
}

type runView struct {
	pairs, shuffle int64
	phases         int
}

func TestZKNNShapeAndValidity(t *testing.T) {
	objs := dataset.Uniform(800, 3, 100, 1)
	got, _ := runZKNN(t, objs, objs, Options{K: 5, Seed: 1}, 4)
	if len(got) != len(objs) {
		t.Fatalf("rows = %d, want %d", len(got), len(objs))
	}
	byID := make(map[int64]vector.Point, len(objs))
	for _, o := range objs {
		byID[o.ID] = o.Point
	}
	for i, res := range got {
		if res.RID != int64(i) {
			t.Fatalf("row %d has RID %d", i, res.RID)
		}
		if len(res.Neighbors) != 5 {
			t.Fatalf("r %d has %d neighbors", res.RID, len(res.Neighbors))
		}
		prev := -1.0
		for _, nb := range res.Neighbors {
			if nb.Dist < prev {
				t.Fatalf("r %d neighbors not ascending", res.RID)
			}
			prev = nb.Dist
			// Every reported distance must be the true distance to a real
			// S object — approximation affects *which* neighbors, never
			// the reported distances.
			want := vector.Dist(byID[res.RID], byID[nb.ID])
			if math.Abs(nb.Dist-want) > 1e-9 {
				t.Fatalf("r %d → s %d: reported %v, true %v", res.RID, nb.ID, nb.Dist, want)
			}
		}
	}
}

func TestZKNNRecallHighWithShifts(t *testing.T) {
	objs := dataset.Uniform(2000, 3, 100, 2)
	exact, _ := naive.BruteForce(objs, objs, 10, vector.L2)
	approx, _ := runZKNN(t, objs, objs, Options{K: 10, Shifts: 3, Seed: 3}, 4)
	if r := Recall(approx, exact); r < 0.9 {
		t.Fatalf("recall with 3 shifts = %.3f, want ≥ 0.9", r)
	}
}

func TestZKNNRecallImprovesWithShifts(t *testing.T) {
	objs := dataset.OSM(2500, 4)
	exact, _ := naive.BruteForce(objs, objs, 10, vector.L2)
	r1Res, _ := runZKNN(t, objs, objs, Options{K: 10, Shifts: 1, CandidatesPerSide: 12, Seed: 5}, 4)
	r4Res, _ := runZKNN(t, objs, objs, Options{K: 10, Shifts: 4, CandidatesPerSide: 12, Seed: 5}, 4)
	r1, r4 := Recall(r1Res, exact), Recall(r4Res, exact)
	if r4 < r1 {
		t.Fatalf("recall fell with more shifts: 1 shift %.3f vs 4 shifts %.3f", r1, r4)
	}
	if r4 < 0.85 {
		t.Fatalf("recall with 4 shifts = %.3f, want ≥ 0.85", r4)
	}
}

func TestZKNNForestHighDims(t *testing.T) {
	objs := dataset.Forest(1500, 6)
	exact, _ := naive.BruteForce(objs, objs, 5, vector.L2)
	approx, _ := runZKNN(t, objs, objs, Options{K: 5, Shifts: 3, Seed: 7}, 4)
	// 10-d z-order has only 6 bits/dim: locality is weaker, so the bar is
	// lower — but it must still be far above random (≈ k/n ≈ 0.003).
	if r := Recall(approx, exact); r < 0.5 {
		t.Fatalf("recall on 10-d forest = %.3f, want ≥ 0.5", r)
	}
}

func TestZKNNCheaperThanExactCross(t *testing.T) {
	objs := dataset.Uniform(3000, 3, 100, 8)
	_, st := runZKNN(t, objs, objs, Options{K: 10, Shifts: 3, Seed: 9}, 4)
	cross := int64(len(objs)) * int64(len(objs))
	if st.pairs >= cross/4 {
		t.Fatalf("zknn computed %d pairs — not cheap vs %d cross product", st.pairs, cross)
	}
}

func TestZKNNSingleNode(t *testing.T) {
	objs := dataset.Uniform(500, 2, 100, 10)
	exact, _ := naive.BruteForce(objs, objs, 5, vector.L2)
	approx, _ := runZKNN(t, objs, objs, Options{K: 5, Shifts: 3, Seed: 11}, 1)
	if r := Recall(approx, exact); r < 0.95 {
		t.Fatalf("single-node 2-d recall = %.3f, want ≥ 0.95", r)
	}
}

func TestZKNNKLargerThanS(t *testing.T) {
	rObjs := dataset.Uniform(50, 2, 100, 12)
	sObjs := dataset.Uniform(4, 2, 100, 13)
	got, _ := runZKNN(t, rObjs, sObjs, Options{K: 10, Seed: 1}, 2)
	for _, res := range got {
		if len(res.Neighbors) != 4 {
			t.Fatalf("r %d: %d neighbors, want all 4", res.RID, len(res.Neighbors))
		}
	}
}

func TestZKNNDeterministicPerSeed(t *testing.T) {
	objs := dataset.Uniform(600, 3, 100, 14)
	a, _ := runZKNN(t, objs, objs, Options{K: 4, Seed: 20}, 4)
	b, _ := runZKNN(t, objs, objs, Options{K: 4, Seed: 20}, 4)
	for i := range a {
		if a[i].RID != b[i].RID || len(a[i].Neighbors) != len(b[i].Neighbors) {
			t.Fatal("same seed, different shapes")
		}
		for j := range a[i].Neighbors {
			if a[i].Neighbors[j] != b[i].Neighbors[j] {
				t.Fatal("same seed, different neighbors")
			}
		}
	}
}

func TestZKNNValidation(t *testing.T) {
	fs := dfs.New(0)
	cluster := mapreduce.NewCluster(fs, 2)
	if _, err := Run(cluster, "R", "S", "out", Options{K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Run(cluster, "missing", "S", "out", Options{K: 3}); err == nil {
		t.Error("missing input accepted")
	}
	fs.Write("R", nil)
	fs.Write("S", nil)
	if _, err := Run(cluster, "R", "S", "out", Options{K: 3}); err == nil {
		t.Error("empty input accepted")
	}
}

func TestRecallHelper(t *testing.T) {
	exact := []codec.Result{{RID: 1, Neighbors: []codec.Neighbor{{ID: 10, Dist: 1}, {ID: 11, Dist: 2}}}}
	perfect := []codec.Result{{RID: 1, Neighbors: []codec.Neighbor{{ID: 10, Dist: 1}, {ID: 11, Dist: 2}}}}
	if r := Recall(perfect, exact); r != 1 {
		t.Fatalf("perfect recall = %v", r)
	}
	half := []codec.Result{{RID: 1, Neighbors: []codec.Neighbor{{ID: 10, Dist: 1}, {ID: 99, Dist: 5}}}}
	if r := Recall(half, exact); r != 0.5 {
		t.Fatalf("half recall = %v", r)
	}
	// Distance ties count as hits even with different IDs.
	tie := []codec.Result{{RID: 1, Neighbors: []codec.Neighbor{{ID: 77, Dist: 1}, {ID: 11, Dist: 2}}}}
	if r := Recall(tie, exact); r != 1 {
		t.Fatalf("tie recall = %v", r)
	}
	if r := Recall(nil, nil); r != 1 {
		t.Fatalf("empty recall = %v", r)
	}
}

// Property: Morton codes preserve ordering along any single axis when the
// other coordinates are fixed — the monotonicity that makes z-order a
// locality map.
func TestZMonotonicQuick(t *testing.T) {
	q := newQuantizer([]float64{0, 0}, []float64{100, 100}, 0)
	f := func(aRaw, bRaw, otherRaw uint16) bool {
		a := float64(aRaw) / 655.35
		b := float64(bRaw) / 655.35
		other := float64(otherRaw) / 655.35
		if a > b {
			a, b = b, a
		}
		za := q.Z(vector.Point{a, other}, nil)
		zb := q.Z(vector.Point{b, other}, nil)
		return za <= zb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: quantizer cells stay in range for any input, including values
// far outside the box (clamped, never panicking).
func TestQuantizerClampQuick(t *testing.T) {
	q := newQuantizer([]float64{-10}, []float64{10}, 0)
	f := func(v float64) bool {
		if math.IsNaN(v) {
			v = 0
		}
		c := q.cell(0, v)
		return c <= (1<<q.bits)-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRangeOf(t *testing.T) {
	bs := []uint64{10, 20, 30}
	cases := map[uint64]int{0: 0, 10: 0, 11: 1, 20: 1, 25: 2, 30: 2, 31: 3, 1 << 60: 3}
	for z, want := range cases {
		if got := rangeOf(z, bs); got != want {
			t.Errorf("rangeOf(%d) = %d, want %d", z, got, want)
		}
	}
	if got := rangeOf(5, nil); got != 0 {
		t.Errorf("rangeOf with no boundaries = %d", got)
	}
}

func BenchmarkZKNN(b *testing.B) {
	objs := dataset.Uniform(20000, 4, 100, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := dfs.New(0)
		cluster := mapreduce.NewCluster(fs, 8)
		dataset.ToDFS(fs, "R", objs, codec.FromR)
		dataset.ToDFS(fs, "S", objs, codec.FromS)
		if _, err := Run(cluster, "R", "S", "out", Options{K: 10, Shifts: 3, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
