// Package zknn implements H-zkNNJ, the z-order-based *approximate* kNN
// join of Zhang et al. (EDBT 2012) — the alternative the reproduced paper
// explicitly excludes from its exact-method comparison (§7) and the
// second algorithm of the system H-BRJ comes from.
//
// The idea: map multi-dimensional points onto a space-filling Z-curve
// (bit-interleaved Morton codes). Nearby points usually get nearby
// z-values, so each object's kNN candidates are its 2k z-order neighbors.
// Because the curve has "seams", the whole dataset is joined α times
// under independent random shifts, and the best k of all candidate sets
// are kept. Accuracy rises quickly with α; cost is α sorted scans instead
// of a distance-pruned search.
//
// The MapReduce realization follows the original: a driver-side sample
// estimates z-value range boundaries that split the curve into one range
// per reducer; mappers route every shifted object to its range (and S
// objects near a boundary to the adjacent range too); each reducer sorts
// its slice of the curve and harvests candidates with two binary
// searches per r; a final job merges the per-shift candidate lists.
package zknn

import (
	"math"
	"sort"

	"knnjoin/internal/vector"
)

// zBits is the total Morton-code width; per-dimension resolution is
// zBits/dims bits.
const zBits = 63

// quantizer scales each dimension into the integer grid the Morton code
// interleaves. One quantizer is shared by R and S (built from their
// union's bounding box, padded so random shifts stay in range).
type quantizer struct {
	min, max []float64 // padded bounding box
	bits     uint      // bits per dimension
}

// newQuantizer builds a quantizer for the given bounding box with room
// for shift vectors up to shiftPad (in original coordinate units).
func newQuantizer(min, max []float64, shiftPad float64) *quantizer {
	dims := len(min)
	q := &quantizer{min: make([]float64, dims), max: make([]float64, dims)}
	q.bits = uint(zBits / dims)
	if q.bits == 0 {
		q.bits = 1
	}
	if q.bits > 20 {
		q.bits = 20
	}
	for d := 0; d < dims; d++ {
		q.min[d] = min[d]
		q.max[d] = max[d] + shiftPad
		if q.max[d] <= q.min[d] {
			q.max[d] = q.min[d] + 1
		}
	}
	return q
}

// cell maps one coordinate into the grid.
func (q *quantizer) cell(d int, v float64) uint64 {
	limit := uint64(1)<<q.bits - 1
	frac := (v - q.min[d]) / (q.max[d] - q.min[d])
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	c := uint64(math.Floor(frac * float64(limit+1)))
	if c > limit {
		c = limit
	}
	return c
}

// Z computes the Morton code of p shifted by shift (shift may be nil for
// the identity copy).
func (q *quantizer) Z(p vector.Point, shift []float64) uint64 {
	dims := len(p)
	var z uint64
	for d := 0; d < dims; d++ {
		v := p[d]
		if len(shift) > 0 {
			v += shift[d]
		}
		c := q.cell(d, v)
		// Interleave: bit b of dimension d lands at position b*dims+d.
		for b := uint(0); b < q.bits; b++ {
			z |= ((c >> b) & 1) << (b*uint(dims) + uint(d))
		}
	}
	return z
}

// rangeOf locates z among sorted boundaries: the index of the first
// boundary ≥ z, i.e. ranges are (-∞,b0], (b0,b1], ..., (b_{n-2}, +∞).
func rangeOf(z uint64, boundaries []uint64) int {
	return sort.Search(len(boundaries), func(i int) bool { return z <= boundaries[i] })
}
