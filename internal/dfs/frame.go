package dfs

import (
	"bufio"
	"encoding/binary"
	"io"
)

// WriteFrame appends one length-prefixed byte string to w: a uvarint
// payload length followed by the payload. It is the single framing
// primitive of every on-disk file this repository writes — the Disk
// store's record files and the MapReduce engine's shuffle run files —
// so a format change (say, adding checksums) lands in exactly one
// encode/decode pair.
func WriteFrame(w *bufio.Writer, b []byte) error {
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(b)))
	if _, err := w.Write(lenBuf[:n]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

// ReadFrame reads one WriteFrame-encoded byte string from r. A frame cut
// short mid-payload surfaces as an error (io.ErrUnexpectedEOF from
// ReadFull), never as a silently shortened payload.
func ReadFrame(r *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}
