package dfs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func newDiskT(t *testing.T, chunk int) *Disk {
	t.Helper()
	d, err := NewDisk(t.TempDir(), chunk)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func recsOf(ss ...string) []Record {
	out := make([]Record, len(ss))
	for i, s := range ss {
		out[i] = Record(s)
	}
	return out
}

// The Disk store must behave exactly like the in-memory FS for every
// Store operation: same contents, sizes, byte counts, listings and split
// shapes.
func TestDiskMatchesFSSemantics(t *testing.T) {
	disk := newDiskT(t, 3)
	mem := New(3)

	var stores = []Store{disk, mem}
	for _, st := range stores {
		if err := st.Write("a", recsOf("one", "two", "three", "four")); err != nil {
			t.Fatal(err)
		}
		if err := st.Append("a", recsOf("five", "six", "seven")); err != nil {
			t.Fatal(err)
		}
		if err := st.Write("b", nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"a", "b"} {
		want, err := mem.Read(name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := disk.Read(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%q: disk has %d records, fs has %d", name, len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("%q record %d: disk %q, fs %q", name, i, got[i], want[i])
			}
		}
		if disk.Size(name) != mem.Size(name) || disk.Bytes(name) != mem.Bytes(name) {
			t.Fatalf("%q: size/bytes disagree: disk %d/%d fs %d/%d",
				name, disk.Size(name), disk.Bytes(name), mem.Size(name), mem.Bytes(name))
		}
	}
	if fmt.Sprint(disk.List()) != fmt.Sprint(mem.List()) {
		t.Fatalf("listings disagree: disk %v fs %v", disk.List(), mem.List())
	}

	dsp, err := disk.Splits("a")
	if err != nil {
		t.Fatal(err)
	}
	msp, err := mem.Splits("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(dsp) != len(msp) {
		t.Fatalf("split counts disagree: disk %d fs %d", len(dsp), len(msp))
	}
	for i := range dsp {
		if dsp[i].Count() != msp[i].Count() || dsp[i].Index != msp[i].Index {
			t.Fatalf("split %d shape disagrees: disk %+v fs %+v", i, dsp[i], msp[i])
		}
		got, err := dsp[i].Load()
		if err != nil {
			t.Fatal(err)
		}
		want, err := msp[i].Load()
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if !bytes.Equal(got[j], want[j]) {
				t.Fatalf("split %d record %d: disk %q fs %q", i, j, got[j], want[j])
			}
		}
	}
}

// Lazy splits must not hold records: only Load touches the disk, and a
// second Load after an external truncation fails rather than fabricating
// data — the property the engine's retry path depends on.
func TestDiskSplitsAreLazy(t *testing.T) {
	disk := newDiskT(t, 2)
	if err := disk.Write("f", recsOf("aa", "bb", "cc", "dd", "ee")); err != nil {
		t.Fatal(err)
	}
	sp, err := disk.Splits("f")
	if err != nil {
		t.Fatal(err)
	}
	if len(sp) != 3 {
		t.Fatalf("got %d splits, want 3", len(sp))
	}
	for _, s := range sp {
		if s.Records != nil {
			t.Fatalf("lazy split %d materialized records eagerly", s.Index)
		}
	}
	recs, err := sp[2].Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0]) != "ee" {
		t.Fatalf("split 2 = %q, want [ee]", recs)
	}

	// Truncate the backing file: loading must now fail loudly.
	paths, err := filepath.Glob(filepath.Join(disk.Dir(), "dfs-f.v*"))
	if err != nil || len(paths) != 1 {
		t.Fatalf("backing files = %v, %v", paths, err)
	}
	if err := os.Truncate(paths[0], 3); err != nil {
		t.Fatal(err)
	}
	if _, err := sp[1].Load(); err == nil {
		t.Fatal("Load of a truncated file did not fail")
	}
}

// A Write replacing a file must not disturb splits handed out earlier:
// they keep loading the records they were cut from, matching the
// in-memory FS's snapshot semantics; Remove then clears every version
// from disk.
func TestDiskWriteKeepsOutstandingSplitSnapshots(t *testing.T) {
	disk := newDiskT(t, 2)
	if err := disk.Write("f", recsOf("old1", "old2", "old3")); err != nil {
		t.Fatal(err)
	}
	sp, err := disk.Splits("f")
	if err != nil {
		t.Fatal(err)
	}
	if err := disk.Write("f", recsOf("new1")); err != nil {
		t.Fatal(err)
	}
	recs, err := sp[1].Load()
	if err != nil {
		t.Fatalf("outstanding split after replace: %v", err)
	}
	if len(recs) != 1 || string(recs[0]) != "old3" {
		t.Fatalf("outstanding split = %q, want the pre-replace snapshot [old3]", recs)
	}
	now, err := disk.Read("f")
	if err != nil || len(now) != 1 || string(now[0]) != "new1" {
		t.Fatalf("current contents = %q, %v", now, err)
	}

	disk.Remove("f")
	entries, err := os.ReadDir(disk.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("Remove left versions behind: %v", entries)
	}
}

// Write must replace, Remove must be idempotent, and names with
// separator characters must not escape the spill directory.
func TestDiskReplaceRemoveAndNameEscaping(t *testing.T) {
	disk := newDiskT(t, 0)
	if err := disk.Write("x", recsOf("old")); err != nil {
		t.Fatal(err)
	}
	if err := disk.Write("x", recsOf("new", "newer")); err != nil {
		t.Fatal(err)
	}
	if got := disk.Size("x"); got != 2 {
		t.Fatalf("size after replace = %d, want 2", got)
	}
	disk.Remove("x")
	disk.Remove("x") // idempotent
	if _, err := disk.Read("x"); err == nil {
		t.Fatal("read of removed file succeeded")
	}

	name := "dir/part-0001"
	if err := disk.Write(name, recsOf("v")); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(disk.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].IsDir() {
		t.Fatalf("slash-bearing name did not map to one flat file: %v", entries)
	}
	recs, err := disk.Read(name)
	if err != nil || len(recs) != 1 || string(recs[0]) != "v" {
		t.Fatalf("read %q = %q, %v", name, recs, err)
	}
}
