package dfs

import (
	"net/http/httptest"
	"reflect"
	"testing"
)

// remotePair starts a chunk service over a fresh in-memory store and
// returns a Remote connected to it.
func remotePair(t *testing.T, chunk int) (*FS, *Remote) {
	t.Helper()
	fs := New(chunk)
	srv := httptest.NewServer(NewServer(fs))
	t.Cleanup(srv.Close)
	r, err := NewRemote(srv.URL)
	if err != nil {
		t.Fatalf("NewRemote: %v", err)
	}
	return fs, r
}

func TestRemoteRoundTrip(t *testing.T) {
	_, r := remotePair(t, 2)
	if r.ChunkRecords() != 2 {
		t.Fatalf("ChunkRecords = %d, want 2", r.ChunkRecords())
	}
	if err := r.Write("a", recs("x", "yy", "zzz")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := r.Append("a", recs("w")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	got, err := r.Read("a")
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(got, recs("x", "yy", "zzz", "w")) {
		t.Fatalf("Read = %q", got)
	}
	if n := r.Size("a"); n != 4 {
		t.Fatalf("Size = %d, want 4", n)
	}
	if b := r.Bytes("a"); b != 7 {
		t.Fatalf("Bytes = %d, want 7", b)
	}
	if names := r.List(); !reflect.DeepEqual(names, []string{"a"}) {
		t.Fatalf("List = %v", names)
	}
}

func TestRemoteSplitsLazyLoad(t *testing.T) {
	fs, r := remotePair(t, 2)
	if err := fs.Write("f", recs("1", "2", "3", "4", "5")); err != nil {
		t.Fatal(err)
	}
	splits, err := r.Splits("f")
	if err != nil {
		t.Fatalf("Splits: %v", err)
	}
	if len(splits) != 3 {
		t.Fatalf("got %d splits, want 3", len(splits))
	}
	if splits[2].Count() != 1 {
		t.Fatalf("last split Count = %d, want 1", splits[2].Count())
	}
	var all []Record
	for _, sp := range splits {
		got, err := sp.Load()
		if err != nil {
			t.Fatalf("Load split %d: %v", sp.Index, err)
		}
		if len(got) != sp.Count() {
			t.Fatalf("split %d loaded %d records, Count says %d", sp.Index, len(got), sp.Count())
		}
		all = append(all, got...)
	}
	if !reflect.DeepEqual(all, recs("1", "2", "3", "4", "5")) {
		t.Fatalf("splits reassembled to %q", all)
	}
}

func TestRemoteMissingFile(t *testing.T) {
	_, r := remotePair(t, 0)
	if _, err := r.Read("nope"); err == nil {
		t.Fatal("Read of missing file succeeded")
	}
	if _, err := r.Splits("nope"); err == nil {
		t.Fatal("Splits of missing file succeeded")
	}
	if n := r.Size("nope"); n != 0 {
		t.Fatalf("Size of missing file = %d", n)
	}
}

func TestRemoteRemove(t *testing.T) {
	fs, r := remotePair(t, 0)
	if err := r.Write("gone", recs("a")); err != nil {
		t.Fatal(err)
	}
	r.Remove("gone")
	if n := fs.Size("gone"); n != 0 {
		t.Fatalf("file survived Remove: %d records", n)
	}
	r.Remove("gone") // idempotent
}

func TestRemoteEscapedNames(t *testing.T) {
	_, r := remotePair(t, 0)
	name := "out.partial&v=1 100%"
	if err := r.Write(name, recs("v")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := r.Read(name)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(got, recs("v")) {
		t.Fatalf("Read = %q", got)
	}
}
