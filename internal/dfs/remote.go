package dfs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
)

// This file promotes a Store to a shared chunk service: Server exposes
// any Store over HTTP, and Remote is a Store-shaped client for it. The
// pair is what lets MapReduce worker processes read input splits (and
// drivers in other processes read whole files) from the coordinator's
// store — the role HDFS datanodes play for Hadoop tasks. Records travel
// as the same uvarint-length-prefixed frames every on-disk file in this
// repository uses, so the wire format is the run-file format.
//
// Endpoints (relative to the mount point):
//
//	GET  /config                   → JSON {Chunk}
//	GET  /meta?name=F              → JSON {Exists, Count, Bytes}
//	GET  /list                     → JSON [names...]
//	GET  /chunk?name=F&index=I     → framed records of input split I
//	GET  /read?name=F              → framed records of the whole file
//	POST /write?name=F             ← framed records (replace)
//	POST /append?name=F            ← framed records (append)
//	POST /remove?name=F
//
// The service carries no authentication and is meant to be bound to
// loopback, like the rest of the repo's local serving tiers.

// Server exposes a Store over HTTP as a chunk service.
type Server struct {
	store Store
}

// NewServer returns an http.Handler serving the chunk-service protocol
// over store.
func NewServer(store Store) *Server { return &Server{store: store} }

// FileMeta is the /meta response: existence and size of one file.
type FileMeta struct {
	Exists bool
	Count  int
	Bytes  int64
}

// storeConfig is the /config response.
type storeConfig struct {
	Chunk int
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	op := strings.TrimPrefix(r.URL.Path, "/")
	name := r.URL.Query().Get("name")
	switch op {
	case "config":
		writeJSON(w, storeConfig{Chunk: s.store.ChunkRecords()})
	case "meta":
		m := FileMeta{Count: s.store.Size(name), Bytes: s.store.Bytes(name)}
		for _, n := range s.store.List() {
			if n == name {
				m.Exists = true
				break
			}
		}
		writeJSON(w, m)
	case "list":
		writeJSON(w, s.store.List())
	case "chunk":
		index, err := strconv.Atoi(r.URL.Query().Get("index"))
		if err != nil {
			http.Error(w, "bad index", http.StatusBadRequest)
			return
		}
		splits, err := s.store.Splits(name)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		if index < 0 || index >= len(splits) {
			http.Error(w, fmt.Sprintf("dfs: %q has no split %d", name, index), http.StatusNotFound)
			return
		}
		recs, err := splits[index].Load()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeFramed(w, recs)
	case "read":
		recs, err := s.store.Read(name)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeFramed(w, recs)
	case "write", "append":
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		recs, err := DecodeRecords(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if op == "write" {
			err = s.store.Write(name, recs)
		} else {
			err = s.store.Append(name, recs)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	case "remove":
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		s.store.Remove(name)
	default:
		http.NotFound(w, r)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func writeFramed(w http.ResponseWriter, recs []Record) {
	w.Header().Set("Content-Type", "application/octet-stream")
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		if err := WriteFrame(bw, rec); err != nil {
			return // client gone; nothing useful to report
		}
	}
	bw.Flush()
}

// EncodeRecords frames records into a buffer — the request-body encoding
// of /write and /append.
func EncodeRecords(recs []Record) []byte {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	for _, rec := range recs {
		WriteFrame(w, rec) // bytes.Buffer writes cannot fail
	}
	w.Flush()
	return buf.Bytes()
}

// DecodeRecords reads framed records until EOF — the inverse of
// EncodeRecords and of the /chunk and /read response bodies.
func DecodeRecords(r io.Reader) ([]Record, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	var out []Record
	for {
		rec, err := ReadFrame(br)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("dfs: framed stream: %w", err)
		}
		out = append(out, Record(rec))
	}
}

// Remote is a Store backed by a chunk service at a base URL. Every
// method is one HTTP round trip; Splits returns lazy splits that fetch
// their chunk when a map task loads them, so a worker process holds at
// most the splits it is actively running.
type Remote struct {
	base   string
	chunk  int
	client *http.Client
}

// NewRemote connects to the chunk service mounted at base (e.g.
// "http://127.0.0.1:PORT/dfs") and learns its chunk size.
func NewRemote(base string) (*Remote, error) {
	r := &Remote{base: strings.TrimSuffix(base, "/"), client: &http.Client{}}
	var cfg storeConfig
	if err := r.getJSON("/config", &cfg); err != nil {
		return nil, err
	}
	r.chunk = cfg.Chunk
	return r, nil
}

func (r *Remote) getJSON(path string, v any) error {
	body, err := r.do(http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	defer body.Close()
	return json.NewDecoder(body).Decode(v)
}

func (r *Remote) do(method, path string, body []byte) (io.ReadCloser, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, r.base+path, rd)
	if err != nil {
		return nil, fmt.Errorf("dfs: remote: %w", err)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("dfs: remote: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		return nil, fmt.Errorf("dfs: remote %s: %s", path, strings.TrimSpace(string(msg)))
	}
	return resp.Body, nil
}

// ChunkRecords returns the service's records-per-chunk.
func (r *Remote) ChunkRecords() int { return r.chunk }

// Write stores records under name, replacing any existing file.
func (r *Remote) Write(name string, records []Record) error {
	body, err := r.do(http.MethodPost, "/write?name="+escape(name), EncodeRecords(records))
	if err != nil {
		return err
	}
	return body.Close()
}

// Append adds records to an existing or new file.
func (r *Remote) Append(name string, records []Record) error {
	body, err := r.do(http.MethodPost, "/append?name="+escape(name), EncodeRecords(records))
	if err != nil {
		return err
	}
	return body.Close()
}

// Read returns all records of the named file.
func (r *Remote) Read(name string) ([]Record, error) {
	body, err := r.do(http.MethodGet, "/read?name="+escape(name), nil)
	if err != nil {
		return nil, err
	}
	defer body.Close()
	return DecodeRecords(body)
}

// Remove deletes the named file; failures are swallowed to match the
// Store contract's idempotent, error-free Remove.
func (r *Remote) Remove(name string) {
	if body, err := r.do(http.MethodPost, "/remove?name="+escape(name), nil); err == nil {
		body.Close()
	}
}

// List returns the names of all files in lexicographic order.
func (r *Remote) List() []string {
	var names []string
	if err := r.getJSON("/list", &names); err != nil {
		return nil
	}
	return names
}

// meta fetches existence and sizes of one file.
func (r *Remote) meta(name string) (FileMeta, error) {
	var m FileMeta
	err := r.getJSON("/meta?name="+escape(name), &m)
	return m, err
}

// Size returns the number of records in the named file, or 0 if absent.
func (r *Remote) Size(name string) int {
	m, _ := r.meta(name)
	return m.Count
}

// Bytes returns the total payload bytes of the named file.
func (r *Remote) Bytes(name string) int64 {
	m, _ := r.meta(name)
	return m.Bytes
}

// Splits chops the named files into lazy input splits of at most
// ChunkRecords records each; a split fetches its chunk from the service
// when loaded, and re-fetches on every Load so a retried map task starts
// from clean input.
func (r *Remote) Splits(names ...string) ([]Split, error) {
	var out []Split
	for _, name := range names {
		m, err := r.meta(name)
		if err != nil {
			return nil, err
		}
		if !m.Exists {
			return nil, fmt.Errorf("dfs: no such file %q", name)
		}
		for i := 0; i < m.Count; i += r.chunk {
			end := i + r.chunk
			if end > m.Count {
				end = m.Count
			}
			name, idx := name, i/r.chunk
			out = append(out, Split{File: name, Index: idx, count: end - i,
				load: func() ([]Record, error) {
					body, err := r.do(http.MethodGet,
						fmt.Sprintf("/chunk?name=%s&index=%d", escape(name), idx), nil)
					if err != nil {
						return nil, err
					}
					defer body.Close()
					return DecodeRecords(body)
				}})
		}
	}
	return out, nil
}

// escape percent-escapes a file name for use as a query value.
func escape(name string) string { return url.QueryEscape(name) }
