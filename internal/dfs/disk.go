package dfs

import (
	"bufio"
	"fmt"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// Disk is the out-of-core Store: every file's records live in a spill
// directory as one length-prefixed binary file, and only metadata (record
// counts, chunk offsets) stays in memory. Input splits load their records
// on demand, one chunk at a time, so a dataset far larger than RAM
// streams through the MapReduce engine the way HDFS blocks stream through
// Hadoop map tasks.
//
// On-disk format: each record is a uvarint payload length followed by the
// payload bytes. The format carries no ordering of its own — record order
// is file order, exactly as with the in-memory FS.
//
// Disk is safe for concurrent use across distinct file names (the
// pattern of every driver: parallel tasks never write one name). It
// assumes sole ownership of its directory for the duration of the run;
// it does not rediscover files written by a previous process.
//
// Writes are versioned: replacing a file writes a fresh on-disk version
// and leaves the previous one in place until Remove, so input splits
// handed out before the replacement keep loading the records they were
// cut from — the same snapshot semantics the in-memory FS gets for free
// from holding sub-slices of the old record list.
type Disk struct {
	mu    sync.Mutex
	dir   string
	chunk int
	ver   atomic.Int64
	files map[string]*diskFile
}

// diskFile is the in-memory metadata of one on-disk file version.
type diskFile struct {
	path    string
	count   int      // records
	bytes   int64    // payload bytes (excluding length prefixes)
	offs    []int64  // byte offset of record i*chunk, one entry per chunk
	end     int64    // byte offset past the last record
	retired []string // paths of replaced versions, deleted on Remove
}

// NewDisk returns a disk-backed store rooted at dir (created if absent).
// chunkRecords ≤ 0 selects DefaultChunkRecords.
func NewDisk(dir string, chunkRecords int) (*Disk, error) {
	if chunkRecords <= 0 {
		chunkRecords = DefaultChunkRecords
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dfs: spill dir: %w", err)
	}
	return &Disk{dir: dir, chunk: chunkRecords, files: make(map[string]*diskFile)}, nil
}

// Dir returns the store's spill directory.
func (d *Disk) Dir() string { return d.dir }

// ChunkRecords returns the configured records-per-chunk.
func (d *Disk) ChunkRecords() int { return d.chunk }

// pathFor maps a DFS file name to a fresh versioned on-disk path. Names
// are percent-escaped so any name the drivers use (including separators)
// maps to a flat, collision-free file in the spill directory; the
// version suffix keeps a replacing Write from invalidating readers of
// the previous version.
func (d *Disk) pathFor(name string) string {
	return filepath.Join(d.dir, fmt.Sprintf("dfs-%s.v%d", url.PathEscape(name), d.ver.Add(1)))
}

// writeRecords appends records to w, tracking chunk offsets in meta.
func writeRecords(w *bufio.Writer, meta *diskFile, chunk int, records []Record) error {
	for _, r := range records {
		if meta.count%chunk == 0 {
			meta.offs = append(meta.offs, meta.end)
		}
		if err := WriteFrame(w, r); err != nil {
			return err
		}
		meta.count++
		meta.bytes += int64(len(r))
		meta.end += int64(uvarintLen(uint64(len(r))) + len(r))
	}
	return nil
}

// uvarintLen returns the encoded size of v's uvarint length prefix.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Write stores records under name, replacing any existing file. The new
// contents are written to a temporary file and renamed into place, so a
// failed Write leaves the previous version — bytes and metadata — fully
// intact.
func (d *Disk) Write(name string, records []Record) error {
	meta := &diskFile{path: d.pathFor(name)}
	f, err := os.Create(meta.path + ".tmp")
	if err != nil {
		return fmt.Errorf("dfs: write %q: %w", name, err)
	}
	w := bufio.NewWriter(f)
	if err := writeRecords(w, meta, d.chunk, records); err == nil {
		err = w.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(meta.path+".tmp", meta.path)
	}
	if err != nil {
		os.Remove(meta.path + ".tmp")
		return fmt.Errorf("dfs: write %q: %w", name, err)
	}
	d.mu.Lock()
	if old, ok := d.files[name]; ok {
		meta.retired = append(append(meta.retired, old.retired...), old.path)
	}
	d.files[name] = meta
	d.mu.Unlock()
	return nil
}

// Append adds records to an existing or new file.
func (d *Disk) Append(name string, records []Record) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	meta, ok := d.files[name]
	if !ok {
		meta = &diskFile{path: d.pathFor(name)}
		if f, err := os.Create(meta.path); err != nil {
			return fmt.Errorf("dfs: append %q: %w", name, err)
		} else {
			f.Close()
		}
		d.files[name] = meta
	}
	f, err := os.OpenFile(meta.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("dfs: append %q: %w", name, err)
	}
	// Work on a copy of the metadata so a mid-write failure leaves the
	// recorded state describing the intact prefix of the file.
	cp := *meta
	cp.offs = append([]int64(nil), meta.offs...)
	w := bufio.NewWriter(f)
	if err := writeRecords(w, &cp, d.chunk, records); err == nil {
		err = w.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		// Drop any partially written suffix so the recorded metadata and
		// the bytes on disk keep describing the same intact prefix.
		os.Truncate(meta.path, meta.end)
		return fmt.Errorf("dfs: append %q: %w", name, err)
	}
	d.files[name] = &cp
	return nil
}

// readRange reads records [from, to) of meta, seeking to the chunk-grid
// offset at startOff covering record index from.
func readRange(meta *diskFile, startOff int64, from, to int) ([]Record, error) {
	f, err := os.Open(meta.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if _, err := f.Seek(startOff, io.SeekStart); err != nil {
		return nil, err
	}
	r := bufio.NewReaderSize(f, 64<<10)
	out := make([]Record, 0, to-from)
	for i := from; i < to; i++ {
		rec, err := ReadFrame(r)
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
		out = append(out, Record(rec))
	}
	return out, nil
}

// Read returns all records of the named file in write order. The whole
// file is materialized — callers that want bounded memory should consume
// the file through Splits instead.
func (d *Disk) Read(name string) ([]Record, error) {
	d.mu.Lock()
	meta, ok := d.files[name]
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("dfs: no such file %q", name)
	}
	recs, err := readRange(meta, 0, 0, meta.count)
	if err != nil {
		return nil, fmt.Errorf("dfs: read %q: %w", name, err)
	}
	return recs, nil
}

// Remove deletes the named file — its current version and any retired
// versions kept alive for outstanding splits. Removing a missing file is
// not an error, matching the idempotent semantics job drivers want
// during cleanup.
func (d *Disk) Remove(name string) {
	d.mu.Lock()
	meta, ok := d.files[name]
	delete(d.files, name)
	d.mu.Unlock()
	if ok {
		os.Remove(meta.path)
		for _, p := range meta.retired {
			os.Remove(p)
		}
	}
}

// List returns the names of all files in lexicographic order.
func (d *Disk) List() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.files))
	for n := range d.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Size returns the number of records in the named file, or 0 if absent.
func (d *Disk) Size(name string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if meta, ok := d.files[name]; ok {
		return meta.count
	}
	return 0
}

// Bytes returns the total payload bytes of the named file.
func (d *Disk) Bytes(name string) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if meta, ok := d.files[name]; ok {
		return meta.bytes
	}
	return 0
}

// Splits chops the named files into lazy input splits of at most
// ChunkRecords records each. A split's records are read from disk when
// its map task calls Load, so at most one split per concurrently running
// task is resident.
func (d *Disk) Splits(names ...string) ([]Split, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []Split
	for _, name := range names {
		meta, ok := d.files[name]
		if !ok {
			return nil, fmt.Errorf("dfs: no such file %q", name)
		}
		for i := 0; i < meta.count; i += d.chunk {
			end := i + d.chunk
			if end > meta.count {
				end = meta.count
			}
			m, idx, off, from, to := meta, i/d.chunk, meta.offs[i/d.chunk], i, end
			out = append(out, Split{File: name, Index: idx, count: to - from,
				load: func() ([]Record, error) {
					recs, err := readRange(m, off, from, to)
					if err != nil {
						return nil, fmt.Errorf("dfs: split %d of %q: %w", idx, name, err)
					}
					return recs, nil
				}})
		}
	}
	return out, nil
}
