package dfs

import (
	"fmt"
	"testing"
	"testing/quick"
)

func recs(ss ...string) []Record {
	out := make([]Record, len(ss))
	for i, s := range ss {
		out[i] = Record(s)
	}
	return out
}

func TestWriteRead(t *testing.T) {
	fs := New(0)
	fs.Write("a", recs("x", "y", "z"))
	got, err := fs.Read("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || string(got[0]) != "x" || string(got[2]) != "z" {
		t.Fatalf("got %v", got)
	}
}

func TestReadMissing(t *testing.T) {
	fs := New(0)
	if _, err := fs.Read("nope"); err == nil {
		t.Fatal("expected error for missing file")
	}
	if _, err := fs.Splits("nope"); err == nil {
		t.Fatal("expected error for missing split source")
	}
}

func TestWriteCopiesInput(t *testing.T) {
	fs := New(0)
	r := Record("abc")
	fs.Write("a", []Record{r})
	r[0] = 'Z'
	got, _ := fs.Read("a")
	if string(got[0]) != "abc" {
		t.Fatal("Write did not copy caller's buffer")
	}
}

func TestWriteReplaces(t *testing.T) {
	fs := New(0)
	fs.Write("a", recs("1", "2"))
	fs.Write("a", recs("3"))
	if fs.Size("a") != 1 {
		t.Fatalf("Size = %d, want 1", fs.Size("a"))
	}
}

func TestAppend(t *testing.T) {
	fs := New(0)
	fs.Append("a", recs("1"))
	fs.Append("a", recs("2", "3"))
	got, _ := fs.Read("a")
	if len(got) != 3 || string(got[2]) != "3" {
		t.Fatalf("got %v", got)
	}
}

func TestRemoveIdempotent(t *testing.T) {
	fs := New(0)
	fs.Write("a", recs("1"))
	fs.Remove("a")
	fs.Remove("a")
	if fs.Size("a") != 0 {
		t.Fatal("file not removed")
	}
}

func TestListSorted(t *testing.T) {
	fs := New(0)
	fs.Write("b", nil)
	fs.Write("a", nil)
	fs.Write("c", nil)
	got := fs.List()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("List = %v", got)
	}
}

func TestBytes(t *testing.T) {
	fs := New(0)
	fs.Write("a", recs("ab", "cde"))
	if fs.Bytes("a") != 5 {
		t.Fatalf("Bytes = %d, want 5", fs.Bytes("a"))
	}
	if fs.Bytes("missing") != 0 {
		t.Fatal("Bytes of missing file should be 0")
	}
}

func TestSplitsChunking(t *testing.T) {
	fs := New(3)
	var rr []Record
	for i := 0; i < 8; i++ {
		rr = append(rr, Record(fmt.Sprintf("r%d", i)))
	}
	fs.Write("a", rr)
	splits, err := fs.Splits("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 3 {
		t.Fatalf("got %d splits, want 3", len(splits))
	}
	sizes := []int{3, 3, 2}
	for i, sp := range splits {
		if sp.File != "a" || sp.Index != i || len(sp.Records) != sizes[i] {
			t.Fatalf("split %d = {%s %d %d recs}", i, sp.File, sp.Index, len(sp.Records))
		}
	}
	if string(splits[2].Records[1]) != "r7" {
		t.Fatal("record order lost across splits")
	}
}

func TestSplitsMultipleFiles(t *testing.T) {
	fs := New(2)
	fs.Write("a", recs("1", "2", "3"))
	fs.Write("b", recs("4"))
	splits, err := fs.Splits("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 3 || splits[2].File != "b" {
		t.Fatalf("splits = %+v", splits)
	}
}

func TestDefaultChunkSize(t *testing.T) {
	if New(0).ChunkRecords() != DefaultChunkRecords {
		t.Fatal("default chunk size not applied")
	}
	if New(-5).ChunkRecords() != DefaultChunkRecords {
		t.Fatal("negative chunk size not defaulted")
	}
	if New(7).ChunkRecords() != 7 {
		t.Fatal("explicit chunk size not honored")
	}
}

// Property: splitting never loses, duplicates, or reorders records, for
// any file size and chunk size.
func TestSplitsLosslessQuick(t *testing.T) {
	f := func(n uint16, chunk uint8) bool {
		size := int(n)%500 + 1
		fs := New(int(chunk)%17 + 1)
		in := make([]Record, size)
		for i := range in {
			in[i] = Record(fmt.Sprintf("%d", i))
		}
		fs.Write("f", in)
		splits, err := fs.Splits("f")
		if err != nil {
			return false
		}
		var flat []Record
		for _, sp := range splits {
			flat = append(flat, sp.Records...)
		}
		if len(flat) != size {
			return false
		}
		for i, r := range flat {
			if string(r) != fmt.Sprintf("%d", i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	fs := New(4)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			name := fmt.Sprintf("f%d", g%4)
			for i := 0; i < 50; i++ {
				fs.Append(name, recs("x"))
				fs.Size(name)
				fs.List()
				fs.Read(name)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	total := 0
	for _, n := range fs.List() {
		total += fs.Size(n)
	}
	if total != 8*50 {
		t.Fatalf("total records = %d, want 400", total)
	}
}
