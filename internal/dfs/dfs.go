// Package dfs is a minimal in-memory stand-in for HDFS.
//
// The paper's pipeline relies on HDFS for exactly one behaviour that
// matters to the algorithms: imported data are split into equal-size
// chunks, and each chunk becomes the input split of one map task (§2.2).
// This package reproduces that behaviour — files are stored as ordered
// record lists and split into fixed-record-count chunks that the MapReduce
// engine consumes as input splits — without pretending to be a real
// filesystem.
package dfs

import (
	"fmt"
	"sort"
	"sync"
)

// Record is one opaque record of a file. Files store bytes, not typed
// objects, so that what a map task reads is exactly what a real system
// would deserialize.
type Record []byte

// FS is an in-memory chunked file store, safe for concurrent use.
type FS struct {
	mu        sync.RWMutex
	chunkSize int
	files     map[string][]Record
}

// DefaultChunkRecords is the default number of records per chunk/split.
const DefaultChunkRecords = 4096

// New returns a filesystem whose files split into chunks of chunkRecords
// records each. chunkRecords ≤ 0 selects DefaultChunkRecords.
func New(chunkRecords int) *FS {
	if chunkRecords <= 0 {
		chunkRecords = DefaultChunkRecords
	}
	return &FS{chunkSize: chunkRecords, files: make(map[string][]Record)}
}

// ChunkRecords returns the configured records-per-chunk.
func (fs *FS) ChunkRecords() int { return fs.chunkSize }

// Write stores records under name, replacing any existing file. The
// records are copied so callers may reuse their buffers.
func (fs *FS) Write(name string, records []Record) {
	cp := make([]Record, len(records))
	for i, r := range records {
		c := make(Record, len(r))
		copy(c, r)
		cp[i] = c
	}
	fs.mu.Lock()
	fs.files[name] = cp
	fs.mu.Unlock()
}

// Append adds records to an existing or new file.
func (fs *FS) Append(name string, records []Record) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	cur := fs.files[name]
	for _, r := range records {
		c := make(Record, len(r))
		copy(c, r)
		cur = append(cur, c)
	}
	fs.files[name] = cur
}

// Read returns all records of the named file in write order.
func (fs *FS) Read(name string) ([]Record, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	recs, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("dfs: no such file %q", name)
	}
	out := make([]Record, len(recs))
	copy(out, recs)
	return out, nil
}

// Remove deletes the named file. Removing a missing file is not an error,
// matching the idempotent semantics job drivers want during cleanup.
func (fs *FS) Remove(name string) {
	fs.mu.Lock()
	delete(fs.files, name)
	fs.mu.Unlock()
}

// List returns the names of all files in lexicographic order.
func (fs *FS) List() []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Size returns the number of records in the named file, or 0 if absent.
func (fs *FS) Size(name string) int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return len(fs.files[name])
}

// Bytes returns the total payload bytes of the named file.
func (fs *FS) Bytes(name string) int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var total int64
	for _, r := range fs.files[name] {
		total += int64(len(r))
	}
	return total
}

// Split is one input split: a contiguous chunk of a file's records that
// feeds exactly one map task.
type Split struct {
	File    string
	Index   int
	Records []Record
}

// Splits chops the named files into input splits of at most ChunkRecords
// records each, preserving record order within each file. Files are
// processed in the order given, matching how a job lists its inputs.
func (fs *FS) Splits(names ...string) ([]Split, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []Split
	for _, name := range names {
		recs, ok := fs.files[name]
		if !ok {
			return nil, fmt.Errorf("dfs: no such file %q", name)
		}
		for i := 0; i < len(recs); i += fs.chunkSize {
			end := i + fs.chunkSize
			if end > len(recs) {
				end = len(recs)
			}
			out = append(out, Split{File: name, Index: i / fs.chunkSize, Records: recs[i:end]})
		}
	}
	return out, nil
}
