// Package dfs is a minimal stand-in for HDFS with two storage backends.
//
// The paper's pipeline relies on HDFS for exactly one behaviour that
// matters to the algorithms: imported data are split into equal-size
// chunks, and each chunk becomes the input split of one map task (§2.2).
// This package reproduces that behaviour — files are stored as ordered
// record lists and split into fixed-record-count chunks that the MapReduce
// engine consumes as input splits — without pretending to be a real
// filesystem.
//
// Two implementations of the Store interface are provided: FS keeps every
// chunk in RAM (fast, bounded by the machine's memory), and Disk persists
// chunks to a spill directory as length-prefixed record files, so
// datasets larger than memory flow through the engine one input split at
// a time — the out-of-core regime the paper's Hadoop clusters run in.
package dfs

import (
	"fmt"
	"sort"
	"sync"
)

// Record is one opaque record of a file. Files store bytes, not typed
// objects, so that what a map task reads is exactly what a real system
// would deserialize.
type Record []byte

// Store is the filesystem contract the MapReduce engine and the join
// drivers program against: named files of ordered records, chopped into
// fixed-record-count input splits. FS implements it in memory; Disk
// implements it over a spill directory.
type Store interface {
	// ChunkRecords returns the configured records-per-chunk (split size).
	ChunkRecords() int
	// Write stores records under name, replacing any existing file.
	Write(name string, records []Record) error
	// Append adds records to an existing or new file.
	Append(name string, records []Record) error
	// Read returns all records of the named file in write order.
	Read(name string) ([]Record, error)
	// Remove deletes the named file; removing a missing file is a no-op.
	Remove(name string)
	// List returns the names of all files in lexicographic order.
	List() []string
	// Size returns the number of records in the named file, or 0 if absent.
	Size(name string) int
	// Bytes returns the total payload bytes of the named file.
	Bytes(name string) int64
	// Splits chops the named files into input splits of at most
	// ChunkRecords records each, preserving record order per file.
	Splits(names ...string) ([]Split, error)
}

// FS is an in-memory chunked file store, safe for concurrent use.
type FS struct {
	mu        sync.RWMutex
	chunkSize int
	files     map[string][]Record
}

// DefaultChunkRecords is the default number of records per chunk/split.
const DefaultChunkRecords = 4096

// New returns a filesystem whose files split into chunks of chunkRecords
// records each. chunkRecords ≤ 0 selects DefaultChunkRecords.
func New(chunkRecords int) *FS {
	if chunkRecords <= 0 {
		chunkRecords = DefaultChunkRecords
	}
	return &FS{chunkSize: chunkRecords, files: make(map[string][]Record)}
}

// ChunkRecords returns the configured records-per-chunk.
func (fs *FS) ChunkRecords() int { return fs.chunkSize }

// Write stores records under name, replacing any existing file. The
// records are copied so callers may reuse their buffers. The error is
// always nil; it exists so FS satisfies Store, whose disk-backed
// implementation can genuinely fail.
func (fs *FS) Write(name string, records []Record) error {
	cp := make([]Record, len(records))
	for i, r := range records {
		c := make(Record, len(r))
		copy(c, r)
		cp[i] = c
	}
	fs.mu.Lock()
	fs.files[name] = cp
	fs.mu.Unlock()
	return nil
}

// Append adds records to an existing or new file. The error is always
// nil (see Write).
func (fs *FS) Append(name string, records []Record) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	cur := fs.files[name]
	for _, r := range records {
		c := make(Record, len(r))
		copy(c, r)
		cur = append(cur, c)
	}
	fs.files[name] = cur
	return nil
}

// Read returns all records of the named file in write order.
func (fs *FS) Read(name string) ([]Record, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	recs, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("dfs: no such file %q", name)
	}
	out := make([]Record, len(recs))
	copy(out, recs)
	return out, nil
}

// Remove deletes the named file. Removing a missing file is not an error,
// matching the idempotent semantics job drivers want during cleanup.
func (fs *FS) Remove(name string) {
	fs.mu.Lock()
	delete(fs.files, name)
	fs.mu.Unlock()
}

// List returns the names of all files in lexicographic order.
func (fs *FS) List() []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Size returns the number of records in the named file, or 0 if absent.
func (fs *FS) Size(name string) int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return len(fs.files[name])
}

// Bytes returns the total payload bytes of the named file.
func (fs *FS) Bytes(name string) int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var total int64
	for _, r := range fs.files[name] {
		total += int64(len(r))
	}
	return total
}

// Split is one input split: a contiguous chunk of a file's records that
// feeds exactly one map task. In-memory stores populate Records directly;
// disk-backed stores defer to a loader so a split's records enter memory
// only while its map task runs.
type Split struct {
	File    string
	Index   int
	Records []Record

	count int
	load  func() ([]Record, error)
}

// Count returns the number of records in the split without loading them.
func (s Split) Count() int { return s.count }

// Load returns the split's records, reading them from the backing store
// if they are not already in memory. Each call to a lazy split re-reads
// the store, so a retried map task starts from clean input.
func (s Split) Load() ([]Record, error) {
	if s.Records != nil || s.load == nil {
		return s.Records, nil
	}
	return s.load()
}

// Splits chops the named files into input splits of at most ChunkRecords
// records each, preserving record order within each file. Files are
// processed in the order given, matching how a job lists its inputs.
func (fs *FS) Splits(names ...string) ([]Split, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []Split
	for _, name := range names {
		recs, ok := fs.files[name]
		if !ok {
			return nil, fmt.Errorf("dfs: no such file %q", name)
		}
		for i := 0; i < len(recs); i += fs.chunkSize {
			end := i + fs.chunkSize
			if end > len(recs) {
				end = len(recs)
			}
			out = append(out, Split{File: name, Index: i / fs.chunkSize,
				Records: recs[i:end], count: end - i})
		}
	}
	return out, nil
}
