// Package gorder implements the Gorder kNN join of Xia, Lu, Ooi and Hu
// (VLDB 2004) — reference [17] of the reproduced paper and the
// grid-partitioning member of its §7 centralized lineage.
//
// Gorder (G-ordering + scheduled block nested loop join):
//
//  1. PCA-rotate the data so the leading dimensions carry the most
//     variance (a pure rotation: L2 distances are exactly preserved, so
//     the join stays exact).
//  2. Impose a grid over the rotated space and sort objects in "grid
//     order" — lexicographic cell order — so physically close objects
//     become close on disk; cut the sorted sequence into fixed-size
//     blocks.
//  3. Join with a scheduled block nested loop: for each R block, visit S
//     blocks in ascending block-MBR MinDist order and stop as soon as
//     that bound exceeds every pending r's current kNN radius; within a
//     surviving block pair, skip s objects per-r via the same MinDist
//     test on r itself.
package gorder

import (
	"fmt"
	"math"
	"sort"

	"knnjoin/internal/codec"
	"knnjoin/internal/nnheap"
	"knnjoin/internal/vector"
)

// Options configures a Gorder join.
type Options struct {
	// BlockSize is the number of objects per data block (the paper's
	// page). Zero picks 256.
	BlockSize int
	// GridSegments is ℓ, the number of segments per (rotated) dimension.
	// Zero picks 16.
	GridSegments int
	// PCAIters bounds the power-iteration sweeps per component. Zero
	// picks 30.
	PCAIters int
}

func (o Options) withDefaults() Options {
	if o.BlockSize <= 0 {
		o.BlockSize = 256
	}
	if o.GridSegments <= 0 {
		o.GridSegments = 16
	}
	if o.PCAIters <= 0 {
		o.PCAIters = 30
	}
	return o
}

// Join computes the exact kNN join R ⋉ S under L2 with the Gorder
// method. It returns results ordered by R object ID and the number of
// object-object distance computations performed.
func Join(rObjs, sObjs []codec.Object, k int, opts Options) ([]codec.Result, int64, error) {
	if k <= 0 {
		return nil, 0, fmt.Errorf("gorder: k must be positive, got %d", k)
	}
	if len(rObjs) == 0 {
		return nil, 0, nil
	}
	if len(sObjs) == 0 {
		return nil, 0, fmt.Errorf("gorder: empty S")
	}
	opts = opts.withDefaults()
	dim := rObjs[0].Point.Dim()

	// PCA rotation fitted on a union view of both datasets.
	basis := pcaBasis(append(append([]codec.Object{}, rObjs...), sObjs...), dim, opts.PCAIters)
	rRot := rotateAll(rObjs, basis)
	sRot := rotateAll(sObjs, basis)

	// Grid order: sort both datasets by cell, then by first coordinate
	// within the cell (a cheap refinement the paper also applies).
	lo, hi := bounds(append(append([]rotated{}, rRot...), sRot...), dim)
	sortGridOrder(rRot, lo, hi, opts.GridSegments)
	sortGridOrder(sRot, lo, hi, opts.GridSegments)

	rBlocks := cut(rRot, opts.BlockSize)
	sBlocks := cut(sRot, opts.BlockSize)

	var pairs int64
	out := make([]codec.Result, 0, len(rObjs))
	heaps := make([]*nnheap.KHeap, 0, opts.BlockSize)
	for _, rb := range rBlocks {
		// Fresh heaps per R block.
		heaps = heaps[:0]
		for range rb.objs {
			heaps = append(heaps, nnheap.NewKHeap(k))
		}
		// Schedule S blocks by ascending MinDist to this R block.
		type sched struct {
			idx int
			md  float64
		}
		order := make([]sched, len(sBlocks))
		for i, sb := range sBlocks {
			order[i] = sched{i, mbrMinDist(rb.mbrLo, rb.mbrHi, sb.mbrLo, sb.mbrHi)}
		}
		sort.Slice(order, func(a, b int) bool {
			if order[a].md != order[b].md {
				return order[a].md < order[b].md
			}
			return order[a].idx < order[b].idx
		})
		for _, sc := range order {
			// Block-level pruning: the worst pending radius gates the pair.
			worst := 0.0
			for _, h := range heaps {
				if !h.Full() {
					worst = math.Inf(1)
					break
				}
				if t := h.Top().Dist; t > worst {
					worst = t
				}
			}
			if sc.md > worst {
				break // every later block is at least this far
			}
			sb := sBlocks[sc.idx]
			for x, r := range rb.objs {
				h := heaps[x]
				// Per-object pruning against the S block's MBR.
				if h.Full() && pointMBRMinDist(r.pt, sb.mbrLo, sb.mbrHi) > h.Top().Dist {
					continue
				}
				for _, s := range sb.objs {
					d := vector.Dist(r.pt, s.pt)
					pairs++
					h.Push(nnheap.Candidate{ID: s.id, Dist: d})
				}
			}
		}
		for x, r := range rb.objs {
			cands := heaps[x].Sorted()
			nbs := make([]codec.Neighbor, len(cands))
			for j, c := range cands {
				nbs[j] = codec.Neighbor{ID: c.ID, Dist: c.Dist}
			}
			out = append(out, codec.Result{RID: r.id, Neighbors: nbs})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].RID < out[b].RID })
	return out, pairs, nil
}

// rotated is an object in PCA space.
type rotated struct {
	id int64
	pt vector.Point
}

// block is a run of grid-ordered objects with its MBR.
type block struct {
	objs         []rotated
	mbrLo, mbrHi vector.Point
}

// pcaBasis returns an orthonormal basis (rows) whose leading vectors are
// the principal components of the data, computed by power iteration with
// deflation. All dim components are kept: the transform is a rotation and
// preserves L2 exactly.
func pcaBasis(objs []codec.Object, dim, iters int) []vector.Point {
	// Covariance matrix.
	mean := make([]float64, dim)
	for _, o := range objs {
		for d, v := range o.Point {
			mean[d] += v
		}
	}
	for d := range mean {
		mean[d] /= float64(len(objs))
	}
	cov := make([][]float64, dim)
	for i := range cov {
		cov[i] = make([]float64, dim)
	}
	for _, o := range objs {
		for i := 0; i < dim; i++ {
			di := o.Point[i] - mean[i]
			for j := i; j < dim; j++ {
				cov[i][j] += di * (o.Point[j] - mean[j])
			}
		}
	}
	for i := 0; i < dim; i++ {
		for j := 0; j < i; j++ {
			cov[i][j] = cov[j][i]
		}
	}

	basis := make([]vector.Point, 0, dim)
	work := make(vector.Point, dim)
	for c := 0; c < dim; c++ {
		// Deterministic start vector, orthogonalized against found basis.
		v := make(vector.Point, dim)
		v[c%dim] = 1
		for i := range v {
			v[i] += 1e-3 * float64(i+1)
		}
		orthonormalize(v, basis)
		for it := 0; it < iters; it++ {
			// work = cov · v
			for i := 0; i < dim; i++ {
				var s float64
				for j := 0; j < dim; j++ {
					s += cov[i][j] * v[j]
				}
				work[i] = s
			}
			copy(v, work)
			if !orthonormalize(v, basis) {
				// Degenerate direction (zero variance): fall back to a unit
				// vector orthogonal to the basis.
				v = make(vector.Point, dim)
				v[c%dim] = 1
				if !orthonormalize(v, basis) {
					for d := 0; d < dim; d++ {
						v = make(vector.Point, dim)
						v[d] = 1
						if orthonormalize(v, basis) {
							break
						}
					}
				}
				break
			}
		}
		basis = append(basis, v)
	}
	return basis
}

// orthonormalize makes v orthogonal to basis and unit length; reports
// false when v collapses to ~zero.
func orthonormalize(v vector.Point, basis []vector.Point) bool {
	for _, b := range basis {
		var dot float64
		for i := range v {
			dot += v[i] * b[i]
		}
		for i := range v {
			v[i] -= dot * b[i]
		}
	}
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	norm = math.Sqrt(norm)
	if norm < 1e-12 {
		return false
	}
	for i := range v {
		v[i] /= norm
	}
	return true
}

// rotateAll projects objects onto the basis.
func rotateAll(objs []codec.Object, basis []vector.Point) []rotated {
	out := make([]rotated, len(objs))
	for x, o := range objs {
		p := make(vector.Point, len(basis))
		for c, b := range basis {
			var dot float64
			for i := range b {
				dot += o.Point[i] * b[i]
			}
			p[c] = dot
		}
		out[x] = rotated{id: o.ID, pt: p}
	}
	return out
}

func bounds(objs []rotated, dim int) (lo, hi vector.Point) {
	lo = make(vector.Point, dim)
	hi = make(vector.Point, dim)
	copy(lo, objs[0].pt)
	copy(hi, objs[0].pt)
	for _, o := range objs {
		for d, v := range o.pt {
			if v < lo[d] {
				lo[d] = v
			}
			if v > hi[d] {
				hi[d] = v
			}
		}
	}
	return lo, hi
}

// sortGridOrder orders objects by their grid cell (lexicographic over
// dimensions), refining within a cell by the first rotated coordinate.
func sortGridOrder(objs []rotated, lo, hi vector.Point, segments int) {
	cellOf := func(p vector.Point) []int {
		cells := make([]int, len(p))
		for d, v := range p {
			span := hi[d] - lo[d]
			if span <= 0 {
				continue
			}
			c := int((v - lo[d]) / span * float64(segments))
			if c >= segments {
				c = segments - 1
			}
			cells[d] = c
		}
		return cells
	}
	// Sort a permutation: the keys are indexed by original position, so
	// the comparator must not index them through the permuted slice.
	perm := make([]int, len(objs))
	keys := make([][]int, len(objs))
	for i := range objs {
		perm[i] = i
		keys[i] = cellOf(objs[i].pt)
	}
	sort.SliceStable(perm, func(a, b int) bool {
		ka, kb := keys[perm[a]], keys[perm[b]]
		for d := range ka {
			if ka[d] != kb[d] {
				return ka[d] < kb[d]
			}
		}
		return objs[perm[a]].pt[0] < objs[perm[b]].pt[0]
	})
	sorted := make([]rotated, len(objs))
	for i, p := range perm {
		sorted[i] = objs[p]
	}
	copy(objs, sorted)
}

// cut slices the ordered sequence into blocks and computes MBRs.
func cut(objs []rotated, size int) []block {
	var out []block
	for i := 0; i < len(objs); i += size {
		end := i + size
		if end > len(objs) {
			end = len(objs)
		}
		b := block{objs: objs[i:end]}
		b.mbrLo = objs[i].pt.Clone()
		b.mbrHi = objs[i].pt.Clone()
		for _, o := range objs[i:end] {
			for d, v := range o.pt {
				if v < b.mbrLo[d] {
					b.mbrLo[d] = v
				}
				if v > b.mbrHi[d] {
					b.mbrHi[d] = v
				}
			}
		}
		out = append(out, b)
	}
	return out
}

// mbrMinDist is the minimum L2 distance between two boxes.
func mbrMinDist(aLo, aHi, bLo, bHi vector.Point) float64 {
	var s float64
	for d := range aLo {
		switch {
		case aHi[d] < bLo[d]:
			g := bLo[d] - aHi[d]
			s += g * g
		case bHi[d] < aLo[d]:
			g := aLo[d] - bHi[d]
			s += g * g
		}
	}
	return math.Sqrt(s)
}

// pointMBRMinDist is the minimum L2 distance from a point to a box.
func pointMBRMinDist(p, lo, hi vector.Point) float64 {
	var s float64
	for d := range p {
		switch {
		case p[d] < lo[d]:
			g := lo[d] - p[d]
			s += g * g
		case p[d] > hi[d]:
			g := p[d] - hi[d]
			s += g * g
		}
	}
	return math.Sqrt(s)
}
