package gorder

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"knnjoin/internal/codec"
	"knnjoin/internal/dataset"
	"knnjoin/internal/naive"
	"knnjoin/internal/vector"
)

func assertExact(t *testing.T, got []codec.Result, rObjs, sObjs []codec.Object, k int) {
	t.Helper()
	want, _ := naive.BruteForce(rObjs, sObjs, k, vector.L2)
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].RID != want[i].RID {
			t.Fatalf("row %d RID %d, want %d", i, got[i].RID, want[i].RID)
		}
		if len(got[i].Neighbors) != len(want[i].Neighbors) {
			t.Fatalf("r %d: %d neighbors, want %d", got[i].RID, len(got[i].Neighbors), len(want[i].Neighbors))
		}
		for j := range want[i].Neighbors {
			// The rotation introduces ~1e-12 relative float noise.
			if math.Abs(got[i].Neighbors[j].Dist-want[i].Neighbors[j].Dist) > 1e-6 {
				t.Fatalf("r %d nb %d: %v, want %v", got[i].RID, j,
					got[i].Neighbors[j].Dist, want[i].Neighbors[j].Dist)
			}
		}
	}
}

func TestJoinMatchesBruteForceUniform(t *testing.T) {
	r := dataset.Uniform(400, 4, 100, 51)
	s := dataset.Uniform(500, 4, 100, 52)
	got, pairs, err := Join(r, s, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pairs <= 0 {
		t.Fatal("no pairs counted")
	}
	assertExact(t, got, r, s, 5)
}

func TestJoinForestSelfJoin(t *testing.T) {
	objs := dataset.Forest(1000, 53)
	got, _, err := Join(objs, objs, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertExact(t, got, objs, objs, 8)
}

func TestJoinSkewedOSM(t *testing.T) {
	objs := dataset.OSM(900, 54)
	got, _, err := Join(objs, objs, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertExact(t, got, objs, objs, 4)
}

func TestJoinKLargerThanS(t *testing.T) {
	r := dataset.Uniform(50, 3, 100, 55)
	s := dataset.Uniform(6, 3, 100, 56)
	got, _, err := Join(r, s, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range got {
		if len(res.Neighbors) != 6 {
			t.Fatalf("r %d: %d neighbors, want all 6", res.RID, len(res.Neighbors))
		}
	}
}

func TestJoinValidation(t *testing.T) {
	objs := dataset.Uniform(10, 2, 10, 57)
	if _, _, err := Join(objs, objs, 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := Join(objs, nil, 3, Options{}); err == nil {
		t.Error("empty S accepted")
	}
	if got, _, err := Join(nil, objs, 3, Options{}); err != nil || got != nil {
		t.Error("empty R should be empty success")
	}
}

func TestJoinSmallBlocks(t *testing.T) {
	// Pathological block size 1 exercises scheduling heavily.
	objs := dataset.Uniform(120, 3, 100, 58)
	got, _, err := Join(objs, objs, 3, Options{BlockSize: 1, GridSegments: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertExact(t, got, objs, objs, 3)
}

// The scheduled block join must prune: far fewer pairs than the cross
// product on clustered data.
func TestJoinPrunes(t *testing.T) {
	objs := dataset.OSM(5000, 59)
	_, pairs, err := Join(objs, objs, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cross := int64(len(objs)) * int64(len(objs))
	if pairs > cross/3 {
		t.Fatalf("gorder computed %d of %d pairs — pruning ineffective", pairs, cross)
	}
}

// PCA basis must be orthonormal — the property that makes the join exact.
func TestPCABasisOrthonormal(t *testing.T) {
	for _, seed := range []int64{60, 61, 62} {
		objs := dataset.Forest(500, seed)
		basis := pcaBasis(objs, 10, 30)
		if len(basis) != 10 {
			t.Fatalf("basis size %d", len(basis))
		}
		for i := range basis {
			for j := range basis {
				var dot float64
				for d := range basis[i] {
					dot += basis[i][d] * basis[j][d]
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(dot-want) > 1e-6 {
					t.Fatalf("basis[%d]·basis[%d] = %v, want %v", i, j, dot, want)
				}
			}
		}
	}
}

// Rotation preserves pairwise distances (exactness foundation).
func TestRotationPreservesDistances(t *testing.T) {
	objs := dataset.Uniform(200, 5, 100, 63)
	basis := pcaBasis(objs, 5, 30)
	rot := rotateAll(objs, basis)
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 200; trial++ {
		a, b := rng.Intn(len(objs)), rng.Intn(len(objs))
		orig := vector.Dist(objs[a].Point, objs[b].Point)
		rotd := vector.Dist(rot[a].pt, rot[b].pt)
		if math.Abs(orig-rotd) > 1e-9*(1+orig) {
			t.Fatalf("distance changed under rotation: %v vs %v", orig, rotd)
		}
	}
}

// PCA's job: the first component carries the most variance on stretched
// data.
func TestPCAFindsStretchDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	objs := make([]codec.Object, 2000)
	for i := range objs {
		// Variance 10000 along an oblique direction, 1 elsewhere.
		tval := rng.NormFloat64() * 100
		objs[i] = codec.Object{ID: int64(i), Point: vector.Point{
			tval + rng.NormFloat64(),
			tval + rng.NormFloat64(),
			rng.NormFloat64(),
		}}
	}
	basis := pcaBasis(objs, 3, 50)
	// First component should be ≈ (1,1,0)/√2 up to sign.
	c := basis[0]
	if math.Abs(math.Abs(c[0])-math.Sqrt2/2) > 0.05 ||
		math.Abs(math.Abs(c[1])-math.Sqrt2/2) > 0.05 ||
		math.Abs(c[2]) > 0.05 {
		t.Fatalf("first component %v, want ±(0.707,0.707,0)", c)
	}
}

func TestMBRDistances(t *testing.T) {
	aLo, aHi := vector.Point{0, 0}, vector.Point{1, 1}
	bLo, bHi := vector.Point{4, 5}, vector.Point{6, 7}
	if got := mbrMinDist(aLo, aHi, bLo, bHi); math.Abs(got-5) > 1e-12 {
		t.Fatalf("mbrMinDist = %v, want 5 (3-4-5)", got)
	}
	if got := mbrMinDist(aLo, aHi, vector.Point{0.5, 0.5}, vector.Point{2, 2}); got != 0 {
		t.Fatalf("overlapping boxes dist = %v", got)
	}
	if got := pointMBRMinDist(vector.Point{4, 5}, aLo, aHi); math.Abs(got-5) > 1e-12 {
		t.Fatalf("pointMBRMinDist = %v, want 5", got)
	}
	if got := pointMBRMinDist(vector.Point{0.5, 0.5}, aLo, aHi); got != 0 {
		t.Fatalf("inside point dist = %v", got)
	}
}

// Property: exactness for arbitrary shapes, block sizes and grids.
func TestJoinCorrectQuick(t *testing.T) {
	f := func(seed int64, nRaw, kRaw, blockRaw, segRaw uint8) bool {
		n := int(nRaw)%100 + 2
		k := int(kRaw)%6 + 1
		objs := dataset.Uniform(n, 3, 100, seed)
		got, _, err := Join(objs, objs, k, Options{
			BlockSize:    int(blockRaw)%32 + 1,
			GridSegments: int(segRaw)%12 + 1,
		})
		if err != nil {
			return false
		}
		want, _ := naive.BruteForce(objs, objs, k, vector.L2)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].RID != want[i].RID || len(got[i].Neighbors) != len(want[i].Neighbors) {
				return false
			}
			for j := range want[i].Neighbors {
				if math.Abs(got[i].Neighbors[j].Dist-want[i].Neighbors[j].Dist) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkJoin(b *testing.B) {
	objs := dataset.Forest(10000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Join(objs, objs, 10, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
