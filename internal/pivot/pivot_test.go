package pivot

import (
	"math"
	"math/rand"
	"testing"

	"knnjoin/internal/codec"
	"knnjoin/internal/vector"
)

func uniformObjects(n, dim int, seed int64) []codec.Object {
	rng := rand.New(rand.NewSource(seed))
	out := make([]codec.Object, n)
	for i := range out {
		p := make(vector.Point, dim)
		for d := range p {
			p[d] = rng.Float64() * 100
		}
		out[i] = codec.Object{ID: int64(i), Point: p}
	}
	return out
}

// clusteredObjects puts points into tight, well-separated clusters plus a
// handful of extreme outliers — the shape that distinguishes the three
// strategies in Table 2.
func clusteredObjects(n, dim int, seed int64) []codec.Object {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]vector.Point, 8)
	for c := range centers {
		p := make(vector.Point, dim)
		for d := range p {
			p[d] = rng.Float64() * 1000
		}
		centers[c] = p
	}
	out := make([]codec.Object, n)
	for i := range out {
		p := make(vector.Point, dim)
		if i < 5 { // outliers far outside all clusters
			for d := range p {
				p[d] = 1e5 + rng.Float64()*1e4
			}
		} else {
			c := centers[rng.Intn(len(centers))]
			for d := range p {
				p[d] = c[d] + rng.NormFloat64()*5
			}
		}
		out[i] = codec.Object{ID: int64(i), Point: p}
	}
	return out
}

func TestSelectBasicContract(t *testing.T) {
	data := uniformObjects(500, 4, 1)
	for _, s := range []Strategy{Random, Farthest, KMeans} {
		got, err := Select(s, data, 20, Options{Seed: 42})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if len(got) != 20 {
			t.Fatalf("%v: got %d pivots, want 20", s, len(got))
		}
		for i, p := range got {
			if p.Dim() != 4 {
				t.Fatalf("%v: pivot %d has dim %d", s, i, p.Dim())
			}
			for _, v := range p {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%v: pivot %d has bad coordinate %v", s, i, v)
				}
			}
		}
	}
}

func TestSelectErrors(t *testing.T) {
	data := uniformObjects(5, 2, 1)
	if _, err := Select(Random, data, 0, Options{}); err == nil {
		t.Error("numPivots=0 accepted")
	}
	if _, err := Select(Random, data, -1, Options{}); err == nil {
		t.Error("negative numPivots accepted")
	}
	if _, err := Select(Random, data, 6, Options{}); err == nil {
		t.Error("more pivots than data accepted")
	}
	if _, err := Select(Strategy(99), data, 2, Options{}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestSelectDeterministicForSeed(t *testing.T) {
	data := uniformObjects(300, 3, 2)
	for _, s := range []Strategy{Random, Farthest, KMeans} {
		a, _ := Select(s, data, 10, Options{Seed: 7})
		b, _ := Select(s, data, 10, Options{Seed: 7})
		for i := range a {
			if !a[i].Equal(b[i]) {
				t.Fatalf("%v: selection not deterministic", s)
			}
		}
		c, _ := Select(s, data, 10, Options{Seed: 8})
		same := true
		for i := range a {
			if !a[i].Equal(c[i]) {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%v: different seeds produced identical pivots (suspicious)", s)
		}
	}
}

func TestRandomPivotsComeFromData(t *testing.T) {
	data := uniformObjects(100, 2, 3)
	got, _ := Select(Random, data, 5, Options{Seed: 1})
	for _, p := range got {
		found := false
		for _, o := range data {
			if o.Point.Equal(p) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("random pivot %v is not a data point", p)
		}
	}
}

// Farthest selection must pick up extreme outliers as pivots — this is the
// paper's explanation for its pathological partition skew (§6.1.1).
func TestFarthestPrefersOutliers(t *testing.T) {
	data := clusteredObjects(2000, 3, 4)
	got, _ := Select(Farthest, data, 10, Options{Seed: 1, SampleSize: 2000})
	outlierPivots := 0
	for _, p := range got {
		if p[0] > 5e4 {
			outlierPivots++
		}
	}
	if outlierPivots == 0 {
		t.Fatal("farthest selection chose no outliers on heavily skewed data")
	}
}

// k-means pivots should track the true cluster centers far better than the
// same number of random pivots on clustered data.
func TestKMeansTracksClusters(t *testing.T) {
	data := clusteredObjects(2000, 3, 5)
	// Strip outliers so the comparison is about cluster structure.
	data = data[5:]
	kmeans, _ := Select(KMeans, data, 8, Options{Seed: 1, SampleSize: 1500, KMeansIters: 15})

	// Quantization error: mean distance from each object to nearest pivot.
	quantErr := func(pivots []vector.Point) float64 {
		var sum float64
		for _, o := range data {
			best := math.Inf(1)
			for _, p := range pivots {
				if d := vector.Dist(o.Point, p); d < best {
					best = d
				}
			}
			sum += best
		}
		return sum / float64(len(data))
	}
	random, _ := Select(Random, data, 8, Options{Seed: 1})
	if ke, re := quantErr(kmeans), quantErr(random); ke >= re {
		t.Fatalf("k-means quantization error %.2f not better than random %.2f", ke, re)
	}
}

func TestSampleSizeClamped(t *testing.T) {
	data := uniformObjects(50, 2, 6)
	// SampleSize larger than the dataset must not panic or loop.
	got, err := Select(Farthest, data, 10, Options{Seed: 1, SampleSize: 10_000})
	if err != nil || len(got) != 10 {
		t.Fatalf("got %d pivots, err=%v", len(got), err)
	}
}

func TestDistCountAccumulates(t *testing.T) {
	data := uniformObjects(400, 3, 7)
	for _, s := range []Strategy{Random, Farthest, KMeans} {
		var n int64
		if _, err := Select(s, data, 10, Options{Seed: 1, DistCount: &n}); err != nil {
			t.Fatal(err)
		}
		if n <= 0 {
			t.Errorf("%v: DistCount = %d, want > 0", s, n)
		}
	}
}

func TestSelectWithAlternateMetrics(t *testing.T) {
	data := uniformObjects(200, 4, 8)
	for _, m := range []vector.Metric{vector.L1, vector.LInf} {
		for _, s := range []Strategy{Random, Farthest, KMeans} {
			got, err := Select(s, data, 6, Options{Seed: 1, Metric: m})
			if err != nil || len(got) != 6 {
				t.Fatalf("%v/%v: %v", s, m, err)
			}
		}
	}
}

func TestParseStrategy(t *testing.T) {
	for s, want := range map[string]Strategy{
		"random": Random, "r": Random, "": Random,
		"farthest": Farthest, "f": Farthest,
		"kmeans": KMeans, "k-means": KMeans, "k": KMeans,
	} {
		got, err := ParseStrategy(s)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseStrategy("voronoi"); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestStrategyString(t *testing.T) {
	if Random.String() != "random" || Farthest.String() != "farthest" || KMeans.String() != "kmeans" {
		t.Error("unexpected names")
	}
	if Strategy(9).String() != "Strategy(9)" {
		t.Error("unexpected fallback")
	}
}

func TestPivotsAreCopies(t *testing.T) {
	data := uniformObjects(50, 2, 9)
	got, _ := Select(Random, data, 5, Options{Seed: 1})
	got[0][0] = 1e9
	for _, o := range data {
		if o.Point[0] == 1e9 {
			t.Fatal("pivot aliases dataset storage")
		}
	}
}

func BenchmarkSelectRandom(b *testing.B)   { benchSelect(b, Random) }
func BenchmarkSelectFarthest(b *testing.B) { benchSelect(b, Farthest) }
func BenchmarkSelectKMeans(b *testing.B)   { benchSelect(b, KMeans) }

func benchSelect(b *testing.B, s Strategy) {
	data := uniformObjects(5000, 10, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Select(s, data, 100, Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// A k-means run where clusters inevitably empty (far more centers than
// distinct values) must recover via reseeding, never return fewer pivots.
func TestKMeansEmptyClusterReseed(t *testing.T) {
	objs := make([]codec.Object, 64)
	for i := range objs {
		objs[i] = codec.Object{ID: int64(i), Point: vector.Point{1, 1}}
	}
	// Two distinct stragglers so not everything is one point.
	objs[62].Point = vector.Point{9, 9}
	objs[63].Point = vector.Point{-7, 2}
	for seed := int64(0); seed < 5; seed++ {
		pivots, err := Select(KMeans, objs, 8, Options{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(pivots) != 8 {
			t.Fatalf("seed %d: got %d pivots, want 8", seed, len(pivots))
		}
	}
}
