// Package pivot implements the three pivot-selection strategies of §4.1 of
// the paper: random selection, farthest selection, and k-means selection.
//
// Pivot selection is the preprocessing step executed on the master node
// before either MapReduce job runs. The chosen pivots define the Voronoi
// diagram that partitions both R and S, so selection quality directly
// drives partition balance (Table 2), group balance (Table 3) and the
// pruning power of every later bound.
package pivot

import (
	"fmt"
	"math/rand"
	"strings"

	"knnjoin/internal/codec"
	"knnjoin/internal/vector"
)

// Strategy identifies a pivot-selection strategy.
type Strategy int

const (
	// Random draws T candidate sets and keeps the one with the largest
	// total pairwise distance (§4.1, "Random Selection").
	Random Strategy = iota
	// Farthest grows the pivot set greedily, each new pivot maximizing the
	// sum of distances to those already chosen (§4.1, "Farthest Selection").
	Farthest
	// KMeans clusters a sample with Lloyd's algorithm and uses the cluster
	// centers as pivots (§4.1, "k-means Selection").
	KMeans
)

// String returns the strategy's conventional name.
func (s Strategy) String() string {
	switch s {
	case Random:
		return "random"
	case Farthest:
		return "farthest"
	case KMeans:
		return "kmeans"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy converts a strategy name into a Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "random", "r", "":
		return Random, nil
	case "farthest", "f":
		return Farthest, nil
	case "kmeans", "k-means", "k":
		return KMeans, nil
	}
	return Random, fmt.Errorf("pivot: unknown strategy %q", s)
}

// Options tunes selection.
type Options struct {
	// Metric is the distance measure; the zero value is L2.
	Metric vector.Metric
	// CandidateSets is the paper's T for Random selection. Zero means 3.
	CandidateSets int
	// SampleSize bounds how many objects Farthest and KMeans consider
	// (the paper samples because preprocessing runs on one master node).
	// Zero means min(len(data), 20·numPivots).
	SampleSize int
	// KMeansIters bounds Lloyd iterations. Zero means 8.
	KMeansIters int
	// Seed makes selection deterministic.
	Seed int64

	// DistCount, when non-nil, accumulates the number of distance
	// computations the selection performed; the paper charges pivot
	// selection to the "Pivot Selection" phase of Figure 6.
	DistCount *int64
}

func (o Options) withDefaults(numPivots, dataLen int) Options {
	if o.CandidateSets <= 0 {
		o.CandidateSets = 3
	}
	if o.SampleSize <= 0 {
		o.SampleSize = 20 * numPivots
	}
	if o.SampleSize > dataLen {
		o.SampleSize = dataLen
	}
	if o.KMeansIters <= 0 {
		o.KMeansIters = 8
	}
	return o
}

func (o Options) count(n int64) {
	if o.DistCount != nil {
		*o.DistCount += n
	}
}

// Select picks numPivots pivots from data using the given strategy. The
// returned points are copies; data is not modified. Select fails if fewer
// objects than pivots are available.
func Select(strategy Strategy, data []codec.Object, numPivots int, opts Options) ([]vector.Point, error) {
	if numPivots <= 0 {
		return nil, fmt.Errorf("pivot: numPivots must be positive, got %d", numPivots)
	}
	if len(data) < numPivots {
		return nil, fmt.Errorf("pivot: need at least %d objects, have %d", numPivots, len(data))
	}
	opts = opts.withDefaults(numPivots, len(data))
	rng := rand.New(rand.NewSource(opts.Seed))
	switch strategy {
	case Random:
		return selectRandom(data, numPivots, opts, rng), nil
	case Farthest:
		return selectFarthest(data, numPivots, opts, rng), nil
	case KMeans:
		return selectKMeans(data, numPivots, opts, rng), nil
	}
	return nil, fmt.Errorf("pivot: unknown strategy %v", strategy)
}

// selectRandom draws T random candidate sets of numPivots objects each and
// returns the set with the maximum total pairwise distance. For large sets
// the pairwise sum is estimated on a bounded subsample of pairs — the
// selection only needs a relative ranking of the T candidate sets.
func selectRandom(data []codec.Object, numPivots int, opts Options, rng *rand.Rand) []vector.Point {
	const maxExactPairs = 1 << 17
	bestScore := -1.0
	var best []vector.Point
	for t := 0; t < opts.CandidateSets; t++ {
		set := samplePoints(data, numPivots, rng)
		var score float64
		totalPairs := numPivots * (numPivots - 1) / 2
		if totalPairs <= maxExactPairs {
			for i := 0; i < len(set); i++ {
				for j := i + 1; j < len(set); j++ {
					score += opts.Metric.Dist(set[i], set[j])
				}
			}
			opts.count(int64(totalPairs))
		} else {
			for p := 0; p < maxExactPairs; p++ {
				i, j := rng.Intn(len(set)), rng.Intn(len(set))
				if i != j {
					score += opts.Metric.Dist(set[i], set[j])
				}
			}
			opts.count(maxExactPairs)
		}
		if score > bestScore {
			bestScore, best = score, set
		}
	}
	return best
}

// selectFarthest implements farthest-first traversal over a sample: the
// i-th pivot maximizes the sum of its distances to the first i−1 pivots.
func selectFarthest(data []codec.Object, numPivots int, opts Options, rng *rand.Rand) []vector.Point {
	sample := samplePoints(data, opts.SampleSize, rng)
	pivots := make([]vector.Point, 0, numPivots)
	first := rng.Intn(len(sample))
	pivots = append(pivots, sample[first])

	// sumDist[i] accumulates Σ_p |sample[i], p| over chosen pivots, so each
	// iteration costs one new distance per sample object.
	sumDist := make([]float64, len(sample))
	chosen := make([]bool, len(sample))
	chosen[first] = true
	last := sample[first]
	for len(pivots) < numPivots {
		bestIdx, bestSum := -1, -1.0
		for i := range sample {
			if chosen[i] {
				continue
			}
			sumDist[i] += opts.Metric.Dist(sample[i], last)
			if sumDist[i] > bestSum {
				bestIdx, bestSum = i, sumDist[i]
			}
		}
		opts.count(int64(len(sample)))
		chosen[bestIdx] = true
		last = sample[bestIdx]
		pivots = append(pivots, last)
	}
	return pivots
}

// selectKMeans runs Lloyd's k-means on a sample and returns the centroids.
// Empty clusters are re-seeded from the farthest sample point, a standard
// Lloyd repair that keeps exactly numPivots pivots.
func selectKMeans(data []codec.Object, numPivots int, opts Options, rng *rand.Rand) []vector.Point {
	sample := samplePoints(data, opts.SampleSize, rng)
	centers := samplePoints(data, numPivots, rng)
	assign := make([]int, len(sample))
	for iter := 0; iter < opts.KMeansIters; iter++ {
		changed := false
		for i, p := range sample {
			best, bestD := 0, opts.Metric.Dist(p, centers[0])
			for c := 1; c < len(centers); c++ {
				if d := opts.Metric.Dist(p, centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i], changed = best, true
			}
		}
		opts.count(int64(len(sample) * len(centers)))
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		sums := make([]vector.Point, len(centers))
		counts := make([]int, len(centers))
		dim := sample[0].Dim()
		for c := range sums {
			sums[c] = make(vector.Point, dim)
		}
		for i, p := range sample {
			c := assign[i]
			counts[c]++
			for d, v := range p {
				sums[c][d] += v
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				centers[c] = reseedEmptyCluster(sample, centers, opts, rng)
				continue
			}
			inv := 1 / float64(counts[c])
			for d := range sums[c] {
				sums[c][d] *= inv
			}
			centers[c] = sums[c]
		}
	}
	return centers
}

// reseedEmptyCluster returns the sample point farthest from its nearest
// center, the usual fix for a cluster that lost all members.
func reseedEmptyCluster(sample, centers []vector.Point, opts Options, rng *rand.Rand) vector.Point {
	bestIdx, bestD := rng.Intn(len(sample)), -1.0
	for i, p := range sample {
		nearest := opts.Metric.Dist(p, centers[0])
		for c := 1; c < len(centers); c++ {
			if d := opts.Metric.Dist(p, centers[c]); d < nearest {
				nearest = d
			}
		}
		if nearest > bestD {
			bestIdx, bestD = i, nearest
		}
	}
	opts.count(int64(len(sample) * len(centers)))
	return sample[bestIdx].Clone()
}

// samplePoints draws n distinct objects uniformly without replacement and
// returns copies of their points.
func samplePoints(data []codec.Object, n int, rng *rand.Rand) []vector.Point {
	if n > len(data) {
		n = len(data)
	}
	idx := rng.Perm(len(data))[:n]
	out := make([]vector.Point, n)
	for i, j := range idx {
		out[i] = data[j].Point.Clone()
	}
	return out
}
