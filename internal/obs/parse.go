package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// Sample is one rendered metric line: a name (with any {labels}
// suffix intact) and its value.
type Sample struct {
	// Name is the sample's full name, including any label suffix
	// such as `_bucket{le="5"}`.
	Name string
	// Value is the sample's numeric value.
	Value float64
}

// Family is one parsed metric family from a text exposition payload.
type Family struct {
	// Name is the family name from the # TYPE line.
	Name string
	// Help is the family's # HELP text.
	Help string
	// Type is "counter", "gauge" or "histogram".
	Type string
	// Samples are the family's value lines in exposition order.
	Samples []Sample
}

// ParseText parses a Prometheus text exposition payload (the subset
// this package emits: HELP and TYPE comment lines followed by sample
// lines) into families. It rejects samples that precede their TYPE
// line, malformed values, and histograms whose cumulative buckets
// decrease — the checks the /metrics endpoint tests lean on.
func ParseText(text string) ([]Family, error) {
	var fams []Family
	var cur *Family
	help := make(map[string]string)
	for n, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, h, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("obs: line %d: HELP without text", n+1)
			}
			help[name] = h
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("obs: line %d: TYPE without type", n+1)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				return nil, fmt.Errorf("obs: line %d: unknown type %q", n+1, typ)
			}
			fams = append(fams, Family{Name: name, Help: help[name], Type: typ})
			cur = &fams[len(fams)-1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("obs: line %d: sample without value", n+1)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: bad value %q: %v", n+1, val, err)
		}
		if cur == nil || !sampleBelongs(cur.Name, name) {
			return nil, fmt.Errorf("obs: line %d: sample %s outside its family", n+1, name)
		}
		cur.Samples = append(cur.Samples, Sample{Name: name, Value: v})
	}
	for i := range fams {
		if err := checkFamily(&fams[i]); err != nil {
			return nil, err
		}
	}
	return fams, nil
}

// sampleBelongs reports whether a sample line name belongs to the
// family: the bare name for counters/gauges, or the name plus a
// _bucket/_sum/_count suffix for histograms.
func sampleBelongs(fam, sample string) bool {
	if sample == fam {
		return true
	}
	rest, ok := strings.CutPrefix(sample, fam)
	if !ok {
		return false
	}
	return rest == "_sum" || rest == "_count" || strings.HasPrefix(rest, "_bucket{")
}

// checkFamily enforces per-type shape: histograms need monotone
// cumulative buckets ending at +Inf with a matching _count; counters
// and gauges need exactly one sample.
func checkFamily(f *Family) error {
	switch f.Type {
	case "counter", "gauge":
		if len(f.Samples) != 1 {
			return fmt.Errorf("obs: family %s: want 1 sample, got %d", f.Name, len(f.Samples))
		}
		return nil
	case "histogram":
		var prev float64
		var infSeen bool
		var inf, count float64
		for _, s := range f.Samples {
			switch {
			case strings.HasPrefix(s.Name, f.Name+"_bucket{"):
				if s.Value < prev {
					return fmt.Errorf("obs: family %s: bucket %s not cumulative", f.Name, s.Name)
				}
				prev = s.Value
				if strings.Contains(s.Name, `le="+Inf"`) {
					infSeen, inf = true, s.Value
				}
			case s.Name == f.Name+"_count":
				count = s.Value
			}
		}
		if !infSeen {
			return fmt.Errorf("obs: family %s: missing +Inf bucket", f.Name)
		}
		if inf != count {
			return fmt.Errorf("obs: family %s: +Inf bucket %g != count %g", f.Name, inf, count)
		}
		return nil
	}
	return fmt.Errorf("obs: family %s: unknown type %s", f.Name, f.Type)
}
