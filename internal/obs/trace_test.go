package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
)

// TestTracerRoundTrip writes spans from two "processes" into one trace
// directory and checks ReadDir merges them with parentage intact.
func TestTracerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	coord, err := NewTracer(dir, "coord")
	if err != nil {
		t.Fatal(err)
	}
	worker, err := NewTracer(dir, "worker-0")
	if err != nil {
		t.Fatal(err)
	}

	job := coord.StartSpan("job", SpanContext{})
	job.SetAttr("algo", "pgbj")
	task := worker.StartSpan("task", job.Context())
	task.Event("fault-kill", "point", "mid-task")
	task.SetAttr("outcome", "killed")
	task.End()
	job.Event("lease-expired", "task", "m0")
	job.End()
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	if err := worker.Close(); err != nil {
		t.Fatal(err)
	}

	spans, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	j, tk := byName["job"], byName["task"]
	if j.TraceID == "" || j.TraceID != tk.TraceID {
		t.Fatalf("trace IDs differ: job=%q task=%q", j.TraceID, tk.TraceID)
	}
	if tk.Parent != j.SpanID {
		t.Fatalf("task parent = %q, want job span %q", tk.Parent, j.SpanID)
	}
	if j.Attrs["algo"] != "pgbj" || tk.Attrs["outcome"] != "killed" {
		t.Fatalf("attrs lost: job=%v task=%v", j.Attrs, tk.Attrs)
	}
	if len(tk.Events) != 1 || tk.Events[0].Name != "fault-kill" || tk.Events[0].Attrs["point"] != "mid-task" {
		t.Fatalf("task events = %v", tk.Events)
	}
	if tk.EndNs < tk.StartNs || j.EndNs < j.StartNs {
		t.Fatal("span end before start")
	}
}

// TestNilTracerNoOps proves the disabled path: every operation on a
// nil tracer and its nil spans must be callable and side-effect free.
func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	s := tr.StartSpan("x", SpanContext{})
	if s != nil {
		t.Fatal("nil tracer returned non-nil span")
	}
	s.SetAttr("k", "v")
	s.Event("e")
	s.End()
	if c := s.Context(); c.Valid() {
		t.Fatalf("nil span context valid: %+v", c)
	}
	if tr.NewTraceID() != "" || tr.Proc() != "" {
		t.Fatal("nil tracer minted IDs")
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSpanContextThreading checks the context.Context carriers.
func TestSpanContextThreading(t *testing.T) {
	ctx := context.Background()
	if s := SpanFromContext(ctx); s != nil {
		t.Fatal("empty context produced a span")
	}
	tr, err := NewTracer(t.TempDir(), "p")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	s := tr.StartSpan("req", SpanContext{})
	ctx = ContextWithSpan(ctx, s)
	got := SpanFromContext(ctx)
	if got != s {
		t.Fatal("span did not round-trip through context")
	}
}

// TestTracerConcurrent hammers one tracer from many goroutines; run
// under -race this is the tracer's thread-safety proof.
func TestTracerConcurrent(t *testing.T) {
	dir := t.TempDir()
	tr, err := NewTracer(dir, "hammer")
	if err != nil {
		t.Fatal(err)
	}
	root := tr.StartSpan("root", SpanContext{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := tr.StartSpan("child", root.Context())
				s.SetAttr("i", "x")
				s.Event("tick")
				root.Event("spawn")
				s.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 8*50+1 {
		t.Fatalf("got %d spans, want %d", len(spans), 8*50+1)
	}
	ids := make(map[string]bool, len(spans))
	for _, sp := range spans {
		if ids[sp.SpanID] {
			t.Fatalf("duplicate span ID %s", sp.SpanID)
		}
		ids[sp.SpanID] = true
	}
}

// TestDoubleEndWritesOnce guards the flush-before-kill path, where a
// span can be ended by the fault observer and again by its defer.
func TestDoubleEndWritesOnce(t *testing.T) {
	dir := t.TempDir()
	tr, err := NewTracer(dir, "p")
	if err != nil {
		t.Fatal(err)
	}
	s := tr.StartSpan("once", SpanContext{})
	s.End()
	s.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 {
		t.Fatalf("double End wrote %d spans", len(spans))
	}
}

// TestTimelineRenders smoke-checks the ASCII renderer: every process
// lane appears and event markers survive.
func TestTimelineRenders(t *testing.T) {
	spans := []SpanRecord{
		{TraceID: "t1", SpanID: "a", Name: "job", Proc: "coord", StartNs: 0, EndNs: 10e6},
		{TraceID: "t1", SpanID: "b", Parent: "a", Name: "task", Proc: "worker-0", StartNs: 1e6, EndNs: 4e6,
			Attrs:  map[string]string{"outcome": "killed"},
			Events: []Event{{Name: "fault-kill", AtNs: 3e6}}},
		{TraceID: "t1", SpanID: "c", Parent: "a", Name: "task", Proc: "worker-1", StartNs: 5e6, EndNs: 9e6,
			Attrs: map[string]string{"outcome": "committed"}},
	}
	out := Timeline(spans, 100)
	for _, want := range []string{"coord", "worker-0", "worker-1", "!", "3 span(s)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
	if Timeline(nil, 80) != "(no spans)\n" {
		t.Fatal("empty timeline wrong")
	}
}

// TestChromeTraceRoundTrip exports spans to Chrome trace JSON and
// parses it back, checking phases, counts and metadata survive.
func TestChromeTraceRoundTrip(t *testing.T) {
	spans := []SpanRecord{
		{TraceID: "t1", SpanID: "a", Name: "job", Proc: "coord", StartNs: 1e6, EndNs: 10e6},
		{TraceID: "t1", SpanID: "b", Parent: "a", Name: "task", Proc: "worker-0", StartNs: 2e6, EndNs: 4e6,
			Events: []Event{{Name: "fault-kill", AtNs: 3e6, Attrs: map[string]string{"point": "mid-task"}}}},
	}
	raw, err := ChromeTrace(spans)
	if err != nil {
		t.Fatal(err)
	}
	events, err := ParseChromeTrace(raw)
	if err != nil {
		t.Fatal(err)
	}
	var x, inst int
	for _, ev := range events {
		switch ev.Ph {
		case "X":
			x++
			if ev.Dur <= 0 {
				t.Fatalf("X event %s has dur %d", ev.Name, ev.Dur)
			}
		case "i":
			inst++
			if ev.Name != "fault-kill" || ev.Args["point"] != "mid-task" {
				t.Fatalf("instant event wrong: %+v", ev)
			}
		}
	}
	if x != 2 || inst != 1 {
		t.Fatalf("got %d X + %d i events, want 2 + 1", x, inst)
	}
	if _, err := ParseChromeTrace([]byte("{not json")); err == nil {
		t.Fatal("ParseChromeTrace accepted garbage")
	}
}
