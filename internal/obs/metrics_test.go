package obs

import (
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestExpositionFormat renders a registry with all three metric kinds
// and feeds the output through ParseText — the satellite-3 exposition
// parser test: every family parses, HELP/TYPE present, histogram
// bucket sums consistent.
func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("knnserve_cache_hits_total", "Cache hits.").Add(7)
	r.Gauge("mr_tasks_running", "Running tasks.").Set(3)
	h := r.Histogram("knnserve_request_latency_ms", "Request latency.", []float64{1, 5, 10})
	for _, v := range []float64{0.5, 2, 2, 7, 100} {
		h.Observe(v)
	}

	text := r.Render()
	fams, err := ParseText(text)
	if err != nil {
		t.Fatalf("rendered output did not parse: %v\n%s", err, text)
	}
	if len(fams) != 3 {
		t.Fatalf("got %d families, want 3:\n%s", len(fams), text)
	}
	byName := map[string]Family{}
	for _, f := range fams {
		if f.Help == "" {
			t.Fatalf("family %s missing HELP", f.Name)
		}
		byName[f.Name] = f
	}
	if f := byName["knnserve_cache_hits_total"]; f.Type != "counter" || f.Samples[0].Value != 7 {
		t.Fatalf("counter family wrong: %+v", f)
	}
	if f := byName["mr_tasks_running"]; f.Type != "gauge" || f.Samples[0].Value != 3 {
		t.Fatalf("gauge family wrong: %+v", f)
	}
	hist := byName["knnserve_request_latency_ms"]
	if hist.Type != "histogram" {
		t.Fatalf("histogram family wrong: %+v", hist)
	}
	want := map[string]float64{
		`knnserve_request_latency_ms_bucket{le="1"}`:    1,
		`knnserve_request_latency_ms_bucket{le="5"}`:    3,
		`knnserve_request_latency_ms_bucket{le="10"}`:   4,
		`knnserve_request_latency_ms_bucket{le="+Inf"}`: 5,
		`knnserve_request_latency_ms_sum`:               111.5,
		`knnserve_request_latency_ms_count`:             5,
	}
	for _, s := range hist.Samples {
		if w, ok := want[s.Name]; !ok || math.Abs(s.Value-w) > 1e-9 {
			t.Fatalf("sample %s = %g, want %g (ok=%v)", s.Name, s.Value, w, ok)
		}
		delete(want, s.Name)
	}
	if len(want) != 0 {
		t.Fatalf("missing samples: %v", want)
	}

	// Families must come out sorted for deterministic scrapes.
	if !strings.Contains(text, "# TYPE knnserve_cache_hits_total counter") {
		t.Fatalf("TYPE line missing:\n%s", text)
	}
	i := strings.Index(text, "knnserve_cache_hits_total")
	j := strings.Index(text, "mr_tasks_running")
	if i > j {
		t.Fatal("families not sorted by name")
	}
}

// TestParseTextRejects covers the parser's malformed-input paths.
func TestParseTextRejects(t *testing.T) {
	for _, bad := range []string{
		"orphan_sample 5\n",
		"# TYPE x wibble\nx 1\n",
		"# TYPE x counter\nx notanumber\n",
		"# TYPE x counter\nx 1\nx 2\n",
		"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n",
		"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 3\n",
	} {
		if _, err := ParseText(bad); err == nil {
			t.Fatalf("ParseText accepted %q", bad)
		}
	}
}

// TestRegistryHandler scrapes the HTTP endpoint.
func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "X.").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type %q", ct)
	}
	if _, err := ParseText(string(body)); err != nil {
		t.Fatal(err)
	}
	post, err := srv.Client().Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Fatalf("POST status %d, want 405", post.StatusCode)
	}
}

// TestRegistryConcurrent is the satellite-3 race hammer: goroutines
// bump all three metric kinds while others render; under -race this
// proves the registry lock-free paths are clean, and the final counts
// must be exact (no lost updates).
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines, iters = 16, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hammer_total", "Hammered counter.")
			ga := r.Gauge("hammer_gauge", "Hammered gauge.")
			h := r.Histogram("hammer_ms", "Hammered histogram.", []float64{1, 10, 100})
			for i := 0; i < iters; i++ {
				c.Inc()
				ga.Add(1)
				h.Observe(float64(i % 200))
				if i%100 == 0 {
					if _, err := ParseText(r.Render()); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hammer_total", "Hammered counter.").Value(); got != goroutines*iters {
		t.Fatalf("counter = %d, want %d", got, goroutines*iters)
	}
	h := r.Histogram("hammer_ms", "Hammered histogram.", []float64{1, 10, 100})
	if h.Count() != goroutines*iters {
		t.Fatalf("histogram count = %d, want %d", h.Count(), goroutines*iters)
	}
	// Sum of 16 goroutines each observing 0..199 repeated 2.5 times:
	// per goroutine sum = 2*sum(0..199) + sum(0..99) = 2*19900 + 4950.
	wantSum := float64(goroutines) * (2*19900 + 4950)
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Fatalf("histogram sum = %g, want %g", h.Sum(), wantSum)
	}
	if _, err := ParseText(r.Render()); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramQuantile pins the bucket-quantile estimator used to
// back the serve tier's /stats snapshot.
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_ms", "Q.", []float64{1, 2, 4, 8, 16})
	var empty *Histogram
	if empty.Quantile(0.5) != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	for i := 0; i < 10; i++ {
		h.Observe(2) // all mass in le="2"
	}
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("p50 = %g, want 2", got)
	}
	if got := h.Quantile(0.99); got != 2 {
		t.Fatalf("p99 = %g, want 2", got)
	}
	h.Observe(100) // overflow bucket
	if got := h.Quantile(1); got != 16 {
		t.Fatalf("p100 = %g, want 16 (largest finite bound)", got)
	}
}

// TestNilRegistryNoOps proves disabled metrics cost nothing and crash
// nothing.
func TestNilRegistryNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "X.")
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter held a value")
	}
	g := r.Gauge("y", "Y.")
	g.Set(5)
	if g.Value() != 0 {
		t.Fatal("nil gauge held a value")
	}
	h := r.Histogram("z", "Z.", nil)
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram held observations")
	}
	if r.Render() != "" {
		t.Fatal("nil registry rendered output")
	}
}

// TestRegisterTypeConflictPanics pins the wiring-bug guard.
func TestRegisterTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "D.")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering dup as gauge did not panic")
		}
	}()
	r.Gauge("dup", "D.")
}
