// Package obs is the unified observability layer: span-based tracing
// written to per-process JSONL files, a small Prometheus-style metrics
// registry, and pprof wiring helpers — stdlib only, shared by the
// MapReduce engine, the serving tiers and the CLIs.
//
// The package's hard contract is zero perturbation: enabling tracing or
// metrics must never change any query or join output byte. Tracing
// enforces this structurally — a nil *Tracer (the disabled state) makes
// every span operation a no-op, spans carry trace context through
// request *fields* that responses never echo, and nothing on a data
// path ever reads a span back. Metrics are plain atomic counters that
// no result computation consults.
//
// Tracing model: a trace is a tree of spans identified by a TraceID;
// each span has its own SpanID, an optional parent span, a name, start
// and end timestamps, string attributes, and point-in-time events
// (fault injections, lease losses, re-dispatches). Every process writes
// the spans it owns to its own JSONL file in a shared trace directory;
// cmd/knntrace merges the files into one timeline and exports Chrome
// trace-event JSON. Context crosses process boundaries as a SpanContext
// (TraceID + SpanID) embedded in the RPC request — coordinator→worker
// task assignments, router→shard scan calls.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanContext identifies a span for cross-process parenting: the trace
// it belongs to and the span itself. The zero value is "no context" —
// a span started with it roots a new trace.
type SpanContext struct {
	// TraceID names the trace; empty means no propagated context.
	TraceID string `json:"trace,omitempty"`
	// SpanID names the parent span within the trace.
	SpanID string `json:"span,omitempty"`
}

// Valid reports whether the context carries a trace to join.
func (c SpanContext) Valid() bool { return c.TraceID != "" }

// Event is a point-in-time annotation on a span: a fault injection
// firing, a lease expiring, a task being re-dispatched.
type Event struct {
	// Name identifies the event ("fault-kill", "lease-expired", ...).
	Name string `json:"name"`
	// AtNs is the event time in Unix nanoseconds.
	AtNs int64 `json:"at_ns"`
	// Attrs are optional event details.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// SpanRecord is the JSONL wire form of one finished span — what
// tracers write and what ReadDir returns for merging and rendering.
type SpanRecord struct {
	// TraceID groups the spans of one logical operation.
	TraceID string `json:"trace"`
	// SpanID is this span's unique identifier.
	SpanID string `json:"span"`
	// Parent is the parent span's ID; empty for a root span.
	Parent string `json:"parent,omitempty"`
	// Name is the span's operation name ("job", "task", "knn", ...).
	Name string `json:"name"`
	// Proc names the process that recorded the span ("coord",
	// "worker-1", "serve", "shard-0-1", ...).
	Proc string `json:"proc"`
	// StartNs and EndNs bound the span in Unix nanoseconds.
	StartNs int64 `json:"start_ns"`
	// EndNs is the span's end time in Unix nanoseconds.
	EndNs int64 `json:"end_ns"`
	// Attrs are the span's key=value annotations.
	Attrs map[string]string `json:"attrs,omitempty"`
	// Events are the span's point-in-time annotations, in order.
	Events []Event `json:"events,omitempty"`
}

// Span is one in-flight traced operation. All methods are safe for
// concurrent use and are no-ops on a nil receiver, so callers thread
// spans unconditionally and pay nothing when tracing is disabled.
type Span struct {
	mu  sync.Mutex
	t   *Tracer
	rec SpanRecord
}

// Context returns the span's propagation context (zero for nil spans).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.rec.TraceID, SpanID: s.rec.SpanID}
}

// SetAttr annotates the span with a key=value attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.rec.Attrs == nil {
		s.rec.Attrs = make(map[string]string)
	}
	s.rec.Attrs[key] = value
	s.mu.Unlock()
}

// Event appends a point-in-time event. attrs alternate key, value; an
// odd trailing key is ignored.
func (s *Span) Event(name string, attrs ...string) {
	if s == nil {
		return
	}
	ev := Event{Name: name, AtNs: time.Now().UnixNano()}
	if len(attrs) >= 2 {
		ev.Attrs = make(map[string]string, len(attrs)/2)
		for i := 0; i+1 < len(attrs); i += 2 {
			ev.Attrs[attrs[i]] = attrs[i+1]
		}
	}
	s.mu.Lock()
	s.rec.Events = append(s.rec.Events, ev)
	s.mu.Unlock()
}

// End stamps the span's end time and writes it to the tracer's file.
// Ending a span twice writes it once.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.rec.EndNs != 0 {
		s.mu.Unlock()
		return
	}
	s.rec.EndNs = time.Now().UnixNano()
	rec := s.rec
	s.mu.Unlock()
	s.t.write(&rec)
}

// Tracer writes the spans of one process to a JSONL file in the trace
// directory. A nil Tracer is the disabled state: StartSpan returns a
// nil span and every operation no-ops. Construct with NewTracer; call
// Close (or at least Flush) before the process exits.
type Tracer struct {
	proc string
	pid  int
	seq  atomic.Int64

	mu  sync.Mutex
	f   *os.File
	w   *bufio.Writer
	err error
}

// NewTracer creates the trace directory if needed and opens a fresh
// span file unique to this (process name, pid) pair.
func NewTracer(dir, proc string) (*Tracer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: trace dir: %w", err)
	}
	pid := os.Getpid()
	f, err := os.CreateTemp(dir, fmt.Sprintf("%s-%d-*.jsonl", proc, pid))
	if err != nil {
		return nil, fmt.Errorf("obs: trace file: %w", err)
	}
	return &Tracer{proc: proc, pid: pid, f: f, w: bufio.NewWriterSize(f, 64<<10)}, nil
}

// Proc returns the tracer's process name ("" for a nil tracer).
func (t *Tracer) Proc() string {
	if t == nil {
		return ""
	}
	return t.proc
}

// NewTraceID mints a process-unique trace identifier.
func (t *Tracer) NewTraceID() string {
	if t == nil {
		return ""
	}
	return fmt.Sprintf("t%d-%x-%d", t.pid, time.Now().UnixNano(), t.seq.Add(1))
}

// StartSpan opens a span. A valid parent places the span in the
// parent's trace; the zero SpanContext roots a new trace. Returns nil
// (a no-op span) on a nil tracer.
func (t *Tracer) StartSpan(name string, parent SpanContext) *Span {
	if t == nil {
		return nil
	}
	s := &Span{t: t}
	s.rec = SpanRecord{
		SpanID:  fmt.Sprintf("%s-%d-%d", t.proc, t.pid, t.seq.Add(1)),
		Name:    name,
		Proc:    t.proc,
		StartNs: time.Now().UnixNano(),
	}
	if parent.Valid() {
		s.rec.TraceID, s.rec.Parent = parent.TraceID, parent.SpanID
	} else {
		s.rec.TraceID = t.NewTraceID()
	}
	return s
}

// write appends one finished span to the file.
func (t *Tracer) write(rec *SpanRecord) {
	if t == nil {
		return
	}
	raw, err := json.Marshal(rec)
	t.mu.Lock()
	defer t.mu.Unlock()
	if err != nil {
		t.err = err
		return
	}
	if t.err != nil {
		return
	}
	if _, err := t.w.Write(raw); err != nil {
		t.err = err
		return
	}
	if err := t.w.WriteByte('\n'); err != nil {
		t.err = err
	}
}

// Flush forces buffered spans to disk — called before os.Exit paths
// (fault-plan kills) so the dying attempt's span survives.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err == nil {
		t.err = t.w.Flush()
	}
	return t.err
}

// Close flushes and closes the span file, reporting the first error
// the tracer hit.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err == nil {
		t.err = t.w.Flush()
	}
	if cerr := t.f.Close(); t.err == nil {
		t.err = cerr
	}
	return t.err
}

// ReadDir loads every *.jsonl span file in a trace directory and
// returns the merged spans ordered by start time (ties by span ID, so
// the merge is deterministic across runs with equal timestamps).
func ReadDir(dir string) ([]SpanRecord, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var spans []SpanRecord
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			return nil, fmt.Errorf("obs: trace file %s: %w", p, err)
		}
		for n, line := range splitLines(raw) {
			var rec SpanRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return nil, fmt.Errorf("obs: trace file %s line %d: %w", p, n+1, err)
			}
			spans = append(spans, rec)
		}
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].StartNs != spans[j].StartNs {
			return spans[i].StartNs < spans[j].StartNs
		}
		return spans[i].SpanID < spans[j].SpanID
	})
	return spans, nil
}

// splitLines cuts raw into its non-empty newline-separated lines.
func splitLines(raw []byte) [][]byte {
	var lines [][]byte
	start := 0
	for i := 0; i <= len(raw); i++ {
		if i == len(raw) || raw[i] == '\n' {
			if i > start {
				lines = append(lines, raw[start:i])
			}
			start = i + 1
		}
	}
	return lines
}
