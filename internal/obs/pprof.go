package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	runtimepprof "runtime/pprof"
)

// RegisterPprof mounts the net/http/pprof handlers under /debug/pprof/
// on mux. Long-running processes (knnserve, the coordinator, shard
// procs) call this only when their -pprof flag is set, so profiling
// surface is opt-in.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// StartCPUProfile begins a CPU profile written to path and returns a
// stop function for defer. Empty path is a no-op — CLIs pass their
// -cpuprofile flag straight through.
func StartCPUProfile(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpuprofile: %w", err)
	}
	if err := runtimepprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpuprofile: %w", err)
	}
	return func() {
		runtimepprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile writes a heap profile to path after forcing a GC
// so the profile reflects live objects. Empty path is a no-op.
func WriteHeapProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := runtimepprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("obs: memprofile: %w", err)
	}
	return nil
}
