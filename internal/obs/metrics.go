package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds a process's metric families and renders them in
// Prometheus text exposition format. All operations are safe for
// concurrent use; metric reads and writes are lock-free atomics, the
// registry lock guards only family registration.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// family is one registered metric family: a name, its help text, a
// type, and the live metric instance.
type family struct {
	name string
	help string
	typ  string
	m    metric
}

// metric is the render hook every metric kind implements.
type metric interface {
	// collect appends the family's sample lines (without HELP/TYPE)
	// to b.
	collect(b *strings.Builder, name string)
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// register installs a family or returns the existing one, panicking if
// the name was already registered as a different type (a wiring bug).
func (r *Registry) register(name, help, typ string, fresh func() metric) metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.fams == nil {
		r.fams = make(map[string]*family)
	}
	if f, ok := r.fams[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s, was %s", name, typ, f.typ))
		}
		return f.m
	}
	m := fresh()
	r.fams[name] = &family{name: name, help: help, typ: typ, m: m}
	return m
}

// Counter is a monotonically increasing count. A nil Counter (from a
// nil registry) is a no-op, so disabled metrics cost nothing to bump.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// collect implements metric.
func (c *Counter) collect(b *strings.Builder, name string) {
	fmt.Fprintf(b, "%s %d\n", name, c.v.Load())
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, "counter", func() metric { return &Counter{} }).(*Counter)
}

// Gauge is a value that can go up and down (queue depths, task-state
// occupancy). Nil-safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current gauge value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// collect implements metric.
func (g *Gauge) collect(b *strings.Builder, name string) {
	fmt.Fprintf(b, "%s %d\n", name, g.v.Load())
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, "gauge", func() metric { return &Gauge{} }).(*Gauge)
}

// DefaultLatencyBuckets are the fixed histogram bounds (milliseconds)
// used for request-latency families: sub-millisecond through 10s.
var DefaultLatencyBuckets = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Histogram is a fixed-bucket histogram. Bucket counts are atomic
// int64s; the float64 sum is maintained with a CAS loop over its bit
// pattern, so Observe never takes a lock.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations (0 for a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) estimated from the
// bucket counts: the upper bound of the bucket holding the q-th
// observation. Returns 0 when empty. The estimate is exact when all
// observations in the selected bucket equal its bound and otherwise
// errs toward the bound — good enough for the /stats snapshot the
// serve tier publishes.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			// Overflow bucket: no finite upper bound; report the
			// largest finite bound as the floor of the estimate.
			return h.bounds[len(h.bounds)-1]
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// collect implements metric, emitting cumulative le buckets, _sum and
// _count per the Prometheus histogram convention.
func (h *Histogram) collect(b *strings.Builder, name string) {
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{le=\"%s\"} %d\n", name, strconv.FormatFloat(bound, 'g', -1, 64), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(b, "%s_sum %s\n", name, strconv.FormatFloat(h.Sum(), 'g', -1, 64))
	fmt.Fprintf(b, "%s_count %d\n", name, h.count.Load())
}

// Histogram returns the named histogram with the given bucket upper
// bounds (sorted ascending; a +Inf overflow bucket is implicit),
// registering it on first use. Passing nil bounds uses
// DefaultLatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	return r.register(name, help, "histogram", func() metric {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		sort.Float64s(b)
		return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	}).(*Histogram)
}

// Render writes every registered family in Prometheus text exposition
// format, families sorted by name for deterministic output.
func (r *Registry) Render() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		f.m.collect(&b, f.name)
	}
	return b.String()
}

// Handler returns the GET /metrics handler serving the registry in
// text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(r.Render()))
	})
}
