package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// ChromeEvent is one Chrome trace-event record: a complete-duration
// event (Ph "X") for a span or an instant event (Ph "i") for a span
// event. The exported JSON loads directly in Perfetto / chrome://tracing.
type ChromeEvent struct {
	// Name is the event's display name.
	Name string `json:"name"`
	// Ph is the event phase: "X" for spans, "i" for instants.
	Ph string `json:"ph"`
	// Ts is the start timestamp in microseconds.
	Ts int64 `json:"ts"`
	// Dur is the duration in microseconds (Ph "X" only).
	Dur int64 `json:"dur,omitempty"`
	// Pid groups events by trace.
	Pid int `json:"pid"`
	// Tid groups events by recording process within a trace.
	Tid int `json:"tid"`
	// S scopes instant events to their thread ("t", Ph "i" only).
	S string `json:"s,omitempty"`
	// Args carries span/event attributes plus span identity.
	Args map[string]string `json:"args,omitempty"`
}

// chromeTraceFile is the top-level Chrome trace JSON object.
type chromeTraceFile struct {
	TraceEvents []ChromeEvent     `json:"traceEvents"`
	Metadata    map[string]string `json:"metadata,omitempty"`
}

// ChromeTrace converts merged spans to Chrome trace-event JSON. Each
// distinct trace becomes a pid, each recording process within it a
// tid; spans map to "X" duration events and span events to "i"
// instants on the same tid.
func ChromeTrace(spans []SpanRecord) ([]byte, error) {
	tracePid := make(map[string]int)
	procTid := make(map[string]int)
	var events []ChromeEvent
	for _, sp := range spans {
		pid, ok := tracePid[sp.TraceID]
		if !ok {
			pid = len(tracePid) + 1
			tracePid[sp.TraceID] = pid
		}
		tid, ok := procTid[sp.Proc]
		if !ok {
			tid = len(procTid) + 1
			procTid[sp.Proc] = tid
		}
		args := map[string]string{"span": sp.SpanID, "proc": sp.Proc}
		if sp.Parent != "" {
			args["parent"] = sp.Parent
		}
		for k, v := range sp.Attrs {
			args[k] = v
		}
		dur := (sp.EndNs - sp.StartNs) / 1e3
		if dur < 1 {
			dur = 1
		}
		events = append(events, ChromeEvent{
			Name: sp.Name, Ph: "X",
			Ts: sp.StartNs / 1e3, Dur: dur,
			Pid: pid, Tid: tid, Args: args,
		})
		for _, ev := range sp.Events {
			evArgs := map[string]string{"span": sp.SpanID}
			for k, v := range ev.Attrs {
				evArgs[k] = v
			}
			events = append(events, ChromeEvent{
				Name: ev.Name, Ph: "i", S: "t",
				Ts:  ev.AtNs / 1e3,
				Pid: pid, Tid: tid, Args: evArgs,
			})
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Ts < events[j].Ts })
	return json.MarshalIndent(chromeTraceFile{
		TraceEvents: events,
		Metadata:    map[string]string{"source": "knntrace"},
	}, "", " ")
}

// ParseChromeTrace decodes Chrome trace-event JSON produced by
// ChromeTrace — the structural round-trip check the CI obs job runs.
func ParseChromeTrace(raw []byte) ([]ChromeEvent, error) {
	var f chromeTraceFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("obs: chrome trace: %w", err)
	}
	for i, ev := range f.TraceEvents {
		switch ev.Ph {
		case "X", "i":
		default:
			return nil, fmt.Errorf("obs: chrome trace event %d: unknown phase %q", i, ev.Ph)
		}
		if ev.Name == "" {
			return nil, fmt.Errorf("obs: chrome trace event %d: empty name", i)
		}
	}
	return f.TraceEvents, nil
}

// Timeline renders merged spans as an ASCII per-process timeline,
// width columns wide. Each recording process gets a lane; spans
// become [name----] bars placed proportionally between the earliest
// start and latest end, with span events marked as '!'. Stragglers
// and re-executed attempts read directly off the lane lengths.
func Timeline(spans []SpanRecord, width int) string {
	if len(spans) == 0 {
		return "(no spans)\n"
	}
	if width < 40 {
		width = 40
	}
	minNs, maxNs := spans[0].StartNs, spans[0].EndNs
	procs := make(map[string][]SpanRecord)
	var order []string
	for _, sp := range spans {
		if sp.StartNs < minNs {
			minNs = sp.StartNs
		}
		if sp.EndNs > maxNs {
			maxNs = sp.EndNs
		}
		if _, ok := procs[sp.Proc]; !ok {
			order = append(order, sp.Proc)
		}
		procs[sp.Proc] = append(procs[sp.Proc], sp)
	}
	sort.Strings(order)
	span := maxNs - minNs
	if span <= 0 {
		span = 1
	}
	labelW := 0
	for _, p := range order {
		if len(p) > labelW {
			labelW = len(p)
		}
	}
	barW := width - labelW - 3
	if barW < 20 {
		barW = 20
	}
	col := func(ns int64) int {
		c := int(float64(ns-minNs) / float64(span) * float64(barW-1))
		if c < 0 {
			c = 0
		}
		if c >= barW {
			c = barW - 1
		}
		return c
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace window: %.1fms across %d process(es), %d span(s)\n",
		float64(span)/1e6, len(order), len(spans))
	for _, p := range order {
		// Each span gets its own row within the process lane so
		// overlapping attempts (speculation, re-dispatch) stay visible.
		for i, sp := range procs[p] {
			lane := make([]byte, barW)
			for j := range lane {
				lane[j] = ' '
			}
			s, e := col(sp.StartNs), col(sp.EndNs)
			for j := s; j <= e; j++ {
				lane[j] = '-'
			}
			lane[s] = '['
			lane[e] = ']'
			name := sp.Name
			if out := sp.Attrs["outcome"]; out != "" {
				name += ":" + out
			}
			switch {
			case e-s-1 >= len(name):
				// The label fits inside the bar.
				for j := 0; j < len(name); j++ {
					lane[s+1+j] = name[j]
				}
			case e+2+len(name) <= barW:
				// Too narrow — label to the right of the bar.
				for j := 0; j < len(name); j++ {
					lane[e+2+j] = name[j]
				}
			default:
				// Bar hugs the right edge — label to the left.
				for j := 0; j < len(name) && s-2-len(name)+j >= 0; j++ {
					lane[s-2-len(name)+j] = name[j]
				}
			}
			for _, ev := range sp.Events {
				lane[col(ev.AtNs)] = '!'
			}
			label := p
			if i > 0 {
				label = strings.Repeat(" ", len(p))
			}
			fmt.Fprintf(&b, "%-*s | %s\n", labelW, label, string(lane))
		}
	}
	return b.String()
}
