package obs

import "context"

// spanKey is the context key for the active span.
type spanKey struct{}

// ContextWithSpan returns ctx carrying s as the active span. A nil
// span is stored as-is — SpanFromContext round-trips it to nil and
// every operation on it no-ops.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the active span carried by ctx, or nil when
// none is set — safe to use directly thanks to nil-safe span methods.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}
