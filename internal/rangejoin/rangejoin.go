// Package rangejoin extends the paper's machinery from the kNN predicate
// to the range predicate of its Definition 3: the θ-range join
// R ⋈_θ S = {(r, s) | r ∈ R, s ∈ S, |r,s| ≤ θ}.
//
// The pipeline is PGBJ's with one substitution: where PGBJ derives a
// per-partition distance bound θ_i (Equation 6) before routing replicas,
// the range join's bound is the query radius θ itself, identical for
// every partition. Everything else carries over verbatim — Voronoi
// partitioning with summary tables (MapReduce job 1), geometric grouping
// of R-partitions, Theorem-6/Corollary-2 replica routing of S, and a
// reducer that prunes with Corollary 1 hyperplane tests and Theorem-2
// windows. The package exists to demonstrate that claim of the paper's
// §2.3 ("we can answer range selection queries based on the following
// theorem") at full join scale, and because a distributed ε-range join
// is the building block of DBSCAN-style clustering.
package rangejoin

import (
	"fmt"
	"sort"
	"time"

	"knnjoin/internal/codec"
	"knnjoin/internal/dfs"
	"knnjoin/internal/driver"
	"knnjoin/internal/grouping"
	"knnjoin/internal/mapreduce"
	"knnjoin/internal/nnheap"
	"knnjoin/internal/pgbj"
	"knnjoin/internal/pivot"
	"knnjoin/internal/stats"
	"knnjoin/internal/vector"
	"knnjoin/internal/voronoi"
)

// Options configures a range join.
type Options struct {
	// Radius is θ, the inclusive distance threshold. Required, ≥ 0.
	Radius float64
	// Metric is the distance measure; default L2.
	Metric vector.Metric
	// NumPivots is |P|. Required, positive.
	NumPivots int
	// PivotStrategy is the §4.1 selection strategy; default random.
	PivotStrategy pivot.Strategy
	// NumGroups is the number of reducer groups; zero means the cluster's
	// node count.
	NumGroups int
	// Seed fixes pivot selection.
	Seed int64
	// Kernel selects the reduce-side distance scan tier (see
	// vector.Kernel); the zero value keeps the fused float64 kernels.
	Kernel vector.Kernel
}

func (o Options) validate(cluster *mapreduce.Cluster) (Options, error) {
	if o.Radius < 0 {
		return o, fmt.Errorf("rangejoin: radius must not be negative, got %g", o.Radius)
	}
	if o.NumPivots <= 0 {
		return o, fmt.Errorf("rangejoin: NumPivots must be positive, got %d", o.NumPivots)
	}
	if o.NumGroups <= 0 {
		o.NumGroups = cluster.Nodes()
		if o.NumGroups > o.NumPivots {
			o.NumGroups = o.NumPivots
		}
	}
	return o, nil
}

// side-data keys for the join job.
const (
	sidePivots   = "pivots"
	sideSummary  = "summary"
	sideGroupOf  = "groupOf"
	sideGroupLBs = "groupLBs"
	sideOpts     = "opts"
)

// Run executes the range join on the cluster. rFile and sFile must
// contain Tagged records (dataset.ToDFS); outFile receives one
// codec.Result per R object that has at least one in-range partner,
// neighbors ascending by distance.
func Run(cluster *mapreduce.Cluster, rFile, sFile, outFile string, opts Options) (*stats.Report, error) {
	opts, err := opts.validate(cluster)
	if err != nil {
		return nil, err
	}
	report := &stats.Report{
		Algorithm: "range-join",
		Nodes:     cluster.Nodes(),
		RSize:     cluster.FS().Size(rFile),
		SSize:     cluster.FS().Size(sFile),
	}

	// ---- Pivot selection on R -------------------------------------------
	start := time.Now()
	rTagged, err := readTagged(cluster.FS(), rFile)
	if err != nil {
		return nil, err
	}
	if len(rTagged) == 0 {
		return nil, fmt.Errorf("rangejoin: empty R input %q", rFile)
	}
	objs := make([]codec.Object, len(rTagged))
	for i, t := range rTagged {
		objs[i] = t.Object
	}
	var distCount int64
	pivots, err := pivot.Select(opts.PivotStrategy, objs, opts.NumPivots, pivot.Options{
		Metric: opts.Metric, Seed: opts.Seed, DistCount: &distCount,
	})
	if err != nil {
		return nil, err
	}
	report.Pairs += distCount
	pp := voronoi.NewPartitioner(pivots, opts.Metric)
	report.AddPhase("Pivot Selection", time.Since(start))

	// ---- Job 1: Voronoi partitioning (map-only) --------------------------
	// Identical to PGBJ's partition step, so the job is its registered
	// kind, sharing the worker-side rebuild path.
	partFile := outFile + ".partitioned"
	partJob := pgbj.PartitionJob("range-partition", []string{rFile, sFile}, partFile, pivots, opts.Metric)
	start = time.Now()
	js, err := cluster.Run(partJob)
	if err != nil {
		return nil, err
	}
	defer cluster.FS().Remove(partFile)
	report.AddPhase("Data Partitioning", time.Since(start))
	driver.AddJobStats(report, js)
	report.Pairs += js.Counters["pairs"]
	report.SimMakespan += js.SimMapMakespan

	// ---- Index merging + grouping ----------------------------------------
	start = time.Now()
	parted, err := readTagged(cluster.FS(), partFile)
	if err != nil {
		return nil, err
	}
	builder := voronoi.NewSummaryBuilder(pp.NumPartitions(), 1)
	for _, t := range parted {
		builder.Add(t)
	}
	sum := builder.Finalize()
	report.AddPhase("Index Merging", time.Since(start))

	start = time.Now()
	groups, err := grouping.Geometric(pp, sum, opts.NumGroups)
	if err != nil {
		return nil, err
	}
	// The kNN join derives θ_i per partition; the range join's bound is
	// the radius itself, so every partition shares it.
	thetas := make([]float64, pp.NumPartitions())
	for i := range thetas {
		thetas[i] = opts.Radius
	}
	groupLBs := grouping.GroupLBs(pp, sum, thetas, groups)
	report.AddPhase("Partition Grouping", time.Since(start))

	// ---- Job 2: the range join -------------------------------------------
	// Composite JoinKeys: the group id picks the reducer, and the key
	// suffix streams each group's S partitions in SortByPivotDist order —
	// the shuffle's secondary sort replaces the reducer-side sort.
	job := joinKind.New(joinSpec{
		Input:    partFile,
		Output:   outFile,
		Pivots:   pivots,
		Summary:  sum,
		GroupOf:  groups.GroupOf,
		GroupLBs: groupLBs,
		Opts:     opts,
	})
	start = time.Now()
	js, err = cluster.Run(job)
	if err != nil {
		return nil, err
	}
	report.AddPhase("Range Join", time.Since(start))
	driver.AddJobStats(report, js)
	report.Pairs += js.Counters["pairs"]
	report.ShuffleBytes += js.ShuffleBytes
	report.ShuffleRecords += js.ShuffleRecords
	report.ReplicasS = js.Counters["replicas_s"]
	report.SimMakespan += js.SimMapMakespan + js.SimReduceMakespan
	report.JoinSkew = js.ReduceSkew()
	report.OutputPairs = js.Counters["result_pairs"]
	return report, nil
}

// joinSpec rebuilds the range-join job in a worker process. The
// partitioner is carried as its pivots (NewPartitioner is deterministic)
// and the per-partition θ is implicit: every partition's bound is the
// query radius.
type joinSpec struct {
	Input, Output string
	Pivots        []vector.Point
	Summary       *voronoi.Summary
	GroupOf       []int
	GroupLBs      [][]float64
	Opts          Options
}

var joinKind = mapreduce.DefineKind("range-join", buildJoinJob)

func buildJoinJob(s joinSpec) *mapreduce.Job {
	return &mapreduce.Job{
		Name:           "range-join",
		Input:          []string{s.Input},
		Output:         s.Output,
		NumReducers:    s.Opts.NumGroups,
		Partition:      mapreduce.Uint32Partition,
		GroupKeyPrefix: codec.JoinKeyGroupPrefix,
		Side: map[string]any{
			sidePivots:   voronoi.NewPartitioner(s.Pivots, s.Opts.Metric),
			sideSummary:  s.Summary,
			sideGroupOf:  s.GroupOf,
			sideGroupLBs: s.GroupLBs,
			sideOpts:     s.Opts,
		},
		Map:    routeMap,
		Reduce: joinReduce,
	}
}

// routeMap routes R objects to their group and replicates S objects to
// every group whose Corollary-2 bound (with θ in place of θ_i) admits
// them.
func routeMap(ctx *mapreduce.TaskContext, rec dfs.Record, emit mapreduce.Emit) error {
	groupOf := ctx.Side(sideGroupOf).([]int)
	groupLBs := ctx.Side(sideGroupLBs).([][]float64)
	t, err := codec.DecodeTagged(rec)
	if err != nil {
		return err
	}
	switch t.Src {
	case codec.FromR:
		emit(codec.JoinKey(groupOf[t.Partition], t), rec)
	case codec.FromS:
		for g, lb := range groupLBs[t.Partition] {
			if t.PivotDist >= lb {
				ctx.Counter("replicas_s", 1)
				emit(codec.JoinKey(g, t), rec)
			}
		}
	}
	return nil
}

// joinReduce answers the range query of every r in the group against the
// group's replica set, with Corollary-1 and Theorem-2 pruning at radius θ.
func joinReduce(ctx *mapreduce.TaskContext, _ []byte, values *mapreduce.Values, emit mapreduce.Emit) error {
	pp := ctx.Side(sidePivots).(*voronoi.Partitioner)
	sum := ctx.Side(sideSummary).(*voronoi.Summary)
	opts := ctx.Side(sideOpts).(Options)
	theta := opts.Radius

	// The composite-key stream arrives R before S with partition ids
	// ascending, and each S partition already in SortByPivotDist order —
	// the shuffle's secondary sort did the work this reducer used to do.
	// The group decodes into one columnar block Prepared for the
	// requested kernel tier; R rows run in query batches so each
	// Theorem-2 window of S is swept panel by panel across the whole
	// batch (RangeToBatchRanges). θ is the fixed radius — no per-row
	// feedback — so batching cannot change any prune decision, and
	// RangeTo compares true (sqrt'd) distances so the radius edge
	// matches Metric.Dist bit for bit on every tier.
	gb, err := pgbj.CollectGroupBlockKernel(values, opts.Kernel)
	if err != nil {
		return err
	}
	blk := gb.Block

	const batchRows = 64
	qs := make([]vector.Point, batchRows)
	lows := make([]int, batchRows)
	highs := make([]int, batchRows)
	bufs := make([][]nnheap.Candidate, batchRows)
	var nbuf []codec.Neighbor
	var pairs, resultPairs int64
	for _, rp := range gb.RParts {
		for base := rp.Lo; base < rp.Hi; base += batchRows {
			end := base + batchRows
			if end > rp.Hi {
				end = rp.Hi
			}
			nq := end - base
			for i := 0; i < nq; i++ {
				qs[i] = blk.At(base + i)
				bufs[i] = bufs[i][:0]
			}
			for _, sp := range gb.SParts {
				gap := pp.PivotDist(int(rp.ID), int(sp.ID))
				for i := 0; i < nq; i++ {
					lows[i], highs[i] = 0, 0 // empty window unless the row survives the prunes
					rToPj := opts.Metric.Dist(qs[i], pp.Pivots[sp.ID])
					pairs++
					if sp.ID != rp.ID &&
						voronoi.HyperplaneDist(rToPj, blk.PivotDist[base+i], gap, opts.Metric) > theta {
						continue // Corollary 1: the whole partition is out of range
					}
					wlo, whi, ok := voronoi.Theorem2Window(sum.S[sp.ID], rToPj, theta)
					if !ok {
						continue
					}
					lows[i], highs[i] = blk.PivotDistWindow(sp.Lo, sp.Hi, wlo, whi)
				}
				blk.RangeToBatchRanges(qs[:nq], lows[:nq], highs[:nq], opts.Metric, theta, bufs[:nq], &pairs)
			}
			for i := 0; i < nq; i++ {
				cbuf := bufs[i]
				if len(cbuf) == 0 {
					continue
				}
				sort.Slice(cbuf, func(a, b int) bool {
					if cbuf[a].Dist != cbuf[b].Dist {
						return cbuf[a].Dist < cbuf[b].Dist
					}
					return cbuf[a].ID < cbuf[b].ID
				})
				nbuf = driver.AppendNeighbors(nbuf[:0], cbuf, false)
				resultPairs += int64(len(nbuf))
				emit(nil, codec.EncodeResult(codec.Result{RID: blk.IDs[base+i], Neighbors: nbuf}))
			}
		}
	}
	ctx.Counter("pairs", pairs)
	ctx.Counter("result_pairs", resultPairs)
	ctx.AddWork(pairs)
	return nil
}

// BruteForce computes the exact range join centrally, for verification.
// Results are ordered by R object ID; objects with no in-range partner
// are omitted, matching Run's output contract.
func BruteForce(rObjs, sObjs []codec.Object, radius float64, m vector.Metric) []codec.Result {
	var out []codec.Result
	for _, r := range rObjs {
		var nbs []codec.Neighbor
		for _, s := range sObjs {
			if d := m.Dist(r.Point, s.Point); d <= radius {
				nbs = append(nbs, codec.Neighbor{ID: s.ID, Dist: d})
			}
		}
		if len(nbs) == 0 {
			continue
		}
		sort.Slice(nbs, func(a, b int) bool {
			if nbs[a].Dist != nbs[b].Dist {
				return nbs[a].Dist < nbs[b].Dist
			}
			return nbs[a].ID < nbs[b].ID
		})
		out = append(out, codec.Result{RID: r.ID, Neighbors: nbs})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].RID < out[b].RID })
	return out
}

// readTagged decodes a file of Tagged records.
func readTagged(fs dfs.Store, name string) ([]codec.Tagged, error) {
	recs, err := fs.Read(name)
	if err != nil {
		return nil, err
	}
	out := make([]codec.Tagged, len(recs))
	for i, r := range recs {
		t, err := codec.DecodeTagged(r)
		if err != nil {
			return nil, fmt.Errorf("rangejoin: record %d of %q: %w", i, name, err)
		}
		out[i] = t
	}
	return out, nil
}
