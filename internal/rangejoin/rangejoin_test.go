package rangejoin

import (
	"math"
	"testing"
	"testing/quick"

	"knnjoin/internal/codec"
	"knnjoin/internal/dataset"
	"knnjoin/internal/dfs"
	"knnjoin/internal/mapreduce"
	"knnjoin/internal/naive"
	"knnjoin/internal/stats"
	"knnjoin/internal/vector"
)

func runRange(t testing.TB, rObjs, sObjs []codec.Object, opts Options, nodes int) ([]codec.Result, *stats.Report) {
	t.Helper()
	fs := dfs.New(256)
	cluster := mapreduce.NewCluster(fs, nodes)
	dataset.ToDFS(fs, "R", rObjs, codec.FromR)
	dataset.ToDFS(fs, "S", sObjs, codec.FromS)
	rep, err := Run(cluster, "R", "S", "out", opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := naive.ReadResults(fs, "out")
	if err != nil {
		t.Fatal(err)
	}
	return got, rep
}

// sameResults asserts got matches want exactly: same rows, same neighbor
// IDs and distances. Range joins have no ties ambiguity — the result set
// is fully determined by the radius.
func sameResults(t *testing.T, got, want []codec.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d result rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].RID != want[i].RID {
			t.Fatalf("row %d: RID %d, want %d", i, got[i].RID, want[i].RID)
		}
		if len(got[i].Neighbors) != len(want[i].Neighbors) {
			t.Fatalf("r %d: %d neighbors, want %d", want[i].RID, len(got[i].Neighbors), len(want[i].Neighbors))
		}
		for j := range want[i].Neighbors {
			g, w := got[i].Neighbors[j], want[i].Neighbors[j]
			if g.ID != w.ID || math.Abs(g.Dist-w.Dist) > 1e-9 {
				t.Fatalf("r %d neighbor %d: (%d, %v), want (%d, %v)", want[i].RID, j, g.ID, g.Dist, w.ID, w.Dist)
			}
		}
	}
}

func TestExactVsBruteForce(t *testing.T) {
	objs := dataset.Uniform(1200, 3, 100, 1)
	for _, radius := range []float64{3, 8, 20} {
		want := BruteForce(objs, objs, radius, vector.L2)
		got, _ := runRange(t, objs, objs, Options{Radius: radius, NumPivots: 40, Seed: 1}, 4)
		sameResults(t, got, want)
	}
}

func TestExactOnSkewedData(t *testing.T) {
	objs := dataset.OSM(2000, 2)
	want := BruteForce(objs, objs, 0.5, vector.L2)
	got, rep := runRange(t, objs, objs, Options{Radius: 0.5, NumPivots: 60, Seed: 3}, 8)
	sameResults(t, got, want)
	// The routing must beat broadcast: fewer than |S|·groups replicas.
	if rep.ReplicasS >= int64(len(objs))*8 {
		t.Fatalf("replication %d is no better than broadcast", rep.ReplicasS)
	}
}

func TestExactDistinctRAndS(t *testing.T) {
	rObjs := dataset.Uniform(500, 4, 100, 4)
	sObjs := dataset.Uniform(800, 4, 100, 5)
	want := BruteForce(rObjs, sObjs, 15, vector.L2)
	got, _ := runRange(t, rObjs, sObjs, Options{Radius: 15, NumPivots: 30, Seed: 6}, 4)
	sameResults(t, got, want)
}

func TestExactOtherMetrics(t *testing.T) {
	objs := dataset.Uniform(600, 3, 100, 7)
	for _, m := range []vector.Metric{vector.L1, vector.LInf} {
		want := BruteForce(objs, objs, 10, m)
		got, _ := runRange(t, objs, objs, Options{Radius: 10, Metric: m, NumPivots: 25, Seed: 8}, 4)
		sameResults(t, got, want)
	}
}

func TestRadiusZeroFindsDuplicatesOnly(t *testing.T) {
	objs := dataset.Uniform(300, 2, 100, 9)
	objs = append(objs, codec.Object{ID: 9999, Point: objs[0].Point.Clone()})
	got, _ := runRange(t, objs, objs, Options{Radius: 0, NumPivots: 20, Seed: 10}, 4)
	want := BruteForce(objs, objs, 0, vector.L2)
	sameResults(t, got, want)
	// Every object matches itself; the planted duplicate pair matches
	// both ways.
	if len(got) != len(objs) {
		t.Fatalf("rows = %d, want %d", len(got), len(objs))
	}
	byID := make(map[int64]codec.Result)
	for _, res := range got {
		byID[res.RID] = res
	}
	if len(byID[9999].Neighbors) != 2 || len(byID[objs[0].ID].Neighbors) != 2 {
		t.Fatalf("duplicate pair not cross-matched: %+v / %+v", byID[9999], byID[objs[0].ID])
	}
}

func TestHugeRadiusIsCrossProduct(t *testing.T) {
	objs := dataset.Uniform(150, 2, 100, 11)
	got, _ := runRange(t, objs, objs, Options{Radius: 1e9, NumPivots: 10, Seed: 12}, 4)
	if len(got) != len(objs) {
		t.Fatalf("rows = %d, want %d", len(got), len(objs))
	}
	for _, res := range got {
		if len(res.Neighbors) != len(objs) {
			t.Fatalf("r %d: %d neighbors, want all %d", res.RID, len(res.Neighbors), len(objs))
		}
	}
}

func TestPruningCutsWork(t *testing.T) {
	objs := dataset.OSM(3000, 13)
	_, rep := runRange(t, objs, objs, Options{Radius: 0.2, NumPivots: 80, Seed: 14}, 8)
	cross := int64(len(objs)) * int64(len(objs))
	if rep.Pairs >= cross/4 {
		t.Fatalf("range join computed %d of %d pairs — pruning ineffective", rep.Pairs, cross)
	}
}

func TestValidation(t *testing.T) {
	fs := dfs.New(0)
	cluster := mapreduce.NewCluster(fs, 2)
	if _, err := Run(cluster, "R", "S", "out", Options{Radius: -1, NumPivots: 4}); err == nil {
		t.Error("negative radius accepted")
	}
	if _, err := Run(cluster, "R", "S", "out", Options{Radius: 1}); err == nil {
		t.Error("zero pivots accepted")
	}
	if _, err := Run(cluster, "missing", "S", "out", Options{Radius: 1, NumPivots: 4}); err == nil {
		t.Error("missing input accepted")
	}
	fs.Write("R", nil)
	fs.Write("S", nil)
	if _, err := Run(cluster, "R", "S", "out", Options{Radius: 1, NumPivots: 4}); err == nil {
		t.Error("empty input accepted")
	}
}

// Property: the distributed range join agrees with brute force across
// random shapes — radii, dimensions, node counts.
func TestAgreementQuick(t *testing.T) {
	f := func(seed int64, dimRaw, nodesRaw, radRaw uint8) bool {
		dim := int(dimRaw)%4 + 1
		nodes := int(nodesRaw)%5 + 1
		radius := float64(radRaw%100) + 1
		objs := dataset.Uniform(150, dim, 100, seed)
		want := BruteForce(objs, objs, radius, vector.L2)
		got, _ := runRangeQuiet(objs, objs, Options{Radius: radius, NumPivots: 12, Seed: seed}, nodes)
		if got == nil || len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].RID != want[i].RID || len(got[i].Neighbors) != len(want[i].Neighbors) {
				return false
			}
			for j := range want[i].Neighbors {
				if got[i].Neighbors[j].ID != want[i].Neighbors[j].ID {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// runRangeQuiet is runRange without the testing.TB plumbing, for
// testing/quick properties.
func runRangeQuiet(rObjs, sObjs []codec.Object, opts Options, nodes int) ([]codec.Result, error) {
	fs := dfs.New(256)
	cluster := mapreduce.NewCluster(fs, nodes)
	dataset.ToDFS(fs, "R", rObjs, codec.FromR)
	dataset.ToDFS(fs, "S", sObjs, codec.FromS)
	if _, err := Run(cluster, "R", "S", "out", opts); err != nil {
		return nil, err
	}
	return naive.ReadResults(fs, "out")
}

func BenchmarkRangeJoin(b *testing.B) {
	objs := dataset.OSM(20000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := dfs.New(0)
		cluster := mapreduce.NewCluster(fs, 8)
		dataset.ToDFS(fs, "R", objs, codec.FromR)
		dataset.ToDFS(fs, "S", objs, codec.FromS)
		if _, err := Run(cluster, "R", "S", "out", Options{Radius: 0.1, NumPivots: 200, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
