// Package hbrj implements H-BRJ, the comparison system of the paper's
// evaluation (Zhang et al., EDBT'12, as described in §3 and §6): R and S
// are split into √N random blocks each; every (R-block, S-block) pair is
// joined by one of N reducers, which bulk-loads an R-tree over its S-block
// and probes it for each r; a second MapReduce job merges the √N partial
// kNN lists per object into the final result.
//
// Its shuffle cost is √N·(|R|+|S|) for the block job plus √N·k·|R| for the
// merge job, and its per-reducer work has no pivot-based pruning — the two
// costs PGBJ is designed to beat.
package hbrj

import (
	"fmt"
	"sort"
	"time"

	"knnjoin/internal/codec"
	"knnjoin/internal/dfs"
	"knnjoin/internal/driver"
	"knnjoin/internal/mapreduce"
	"knnjoin/internal/nnheap"
	"knnjoin/internal/rtree"
	"knnjoin/internal/stats"
	"knnjoin/internal/vector"
)

// Options configures an H-BRJ run.
type Options struct {
	K      int
	Metric vector.Metric
	// Fanout is the per-node capacity of the reducers' R-trees; zero
	// selects rtree.DefaultFanout.
	Fanout int
}

// Blocks returns √N rounded down (at least 1): the number of blocks per
// dataset for a cluster of n nodes, as the paper prescribes.
func Blocks(n int) int {
	b := 1
	for (b+1)*(b+1) <= n {
		b++
	}
	return b
}

// blockOf maps an object ID to one of b random blocks; IDs may be
// negative, so the remainder is normalized.
func blockOf(id int64, b int) int {
	return int(((id % int64(b)) + int64(b))) % b
}

// Run executes H-BRJ: the block join job followed by the merge job.
// rFile and sFile must contain Tagged records; outFile receives one
// codec.Result per R object.
func Run(cluster *mapreduce.Cluster, rFile, sFile, outFile string, opts Options) (*stats.Report, error) {
	if opts.K <= 0 {
		return nil, fmt.Errorf("hbrj: k must be positive, got %d", opts.K)
	}
	b := Blocks(cluster.Nodes())
	report := &stats.Report{
		Algorithm: "H-BRJ",
		K:         opts.K,
		Nodes:     cluster.Nodes(),
		RSize:     cluster.FS().Size(rFile),
		SSize:     cluster.FS().Size(sFile),
	}

	partialFile := outFile + ".partial"
	job := blockJoinKind.New(blockJoinSpec{
		RFile:  rFile,
		SFile:  sFile,
		Output: partialFile,
		Blocks: b,
		Opts:   opts,
	})
	start := time.Now()
	js, err := cluster.Run(job)
	if err != nil {
		return nil, err
	}
	report.AddPhase("Block Join", time.Since(start))
	driver.AddJobStats(report, js)
	report.Pairs += js.Counters["pairs"]
	report.ShuffleBytes += js.ShuffleBytes
	report.ShuffleRecords += js.ShuffleRecords
	report.ReplicasS = js.Counters["replicas_s"]
	report.SimMakespan += js.SimMapMakespan + js.SimReduceMakespan
	report.JoinSkew = js.ReduceSkew()

	ms, err := MergeResults(cluster, partialFile, outFile, opts.K)
	cluster.FS().Remove(partialFile)
	if err != nil {
		return nil, err
	}
	report.AddPhase("Result Merging", ms.Wall())
	driver.AddJobStats(report, ms)
	report.ShuffleBytes += ms.ShuffleBytes
	report.ShuffleRecords += ms.ShuffleRecords
	report.SimMakespan += ms.SimMapMakespan + ms.SimReduceMakespan
	report.OutputPairs = ms.Counters["result_pairs"]
	return report, nil
}

// blockJoinSpec rebuilds the block-join job in a worker process. The
// blocking factor and options travel through Side so the map and reduce
// functions are capture-free.
type blockJoinSpec struct {
	RFile, SFile string
	Output       string
	Blocks       int
	Opts         Options
}

const (
	sideBlocks = "blocks"
	sideOpts   = "opts"
)

var blockJoinKind = mapreduce.DefineKind("hbrj-block-join", buildBlockJoinJob)

func buildBlockJoinJob(s blockJoinSpec) *mapreduce.Job {
	return &mapreduce.Job{
		Name:           "hbrj-block-join",
		Input:          []string{s.RFile, s.SFile},
		Output:         s.Output,
		NumReducers:    s.Blocks * s.Blocks,
		Partition:      mapreduce.Uint32Partition,
		GroupKeyPrefix: codec.RegionKeyGroupPrefix,
		Side: map[string]any{
			sideBlocks: s.Blocks,
			sideOpts:   s.Opts,
		},
		Map:    blockRouteMap,
		Reduce: blockJoinReduce,
	}
}

// blockRouteMap replicates each object to its row or column of the b×b
// reducer grid.
func blockRouteMap(ctx *mapreduce.TaskContext, rec dfs.Record, emit mapreduce.Emit) error {
	b := ctx.Side(sideBlocks).(int)
	t, err := codec.DecodeTagged(rec)
	if err != nil {
		return err
	}
	switch t.Src {
	case codec.FromR:
		// R-block a joins every S-block: reducers (a, 0..b-1).
		a := blockOf(t.ID, b)
		for col := 0; col < b; col++ {
			emit(codec.RegionKey(a*b+col, t), rec)
		}
	case codec.FromS:
		col := blockOf(t.ID, b)
		ctx.Counter("replicas_s", int64(b))
		for a := 0; a < b; a++ {
			emit(codec.RegionKey(a*b+col, t), rec)
		}
	}
	return nil
}

func blockJoinReduce(ctx *mapreduce.TaskContext, _ []byte, values *mapreduce.Values, emit mapreduce.Emit) error {
	opts := ctx.Side(sideOpts).(Options)
	// Columnar decode; the R-tree's leaf points are views into the
	// S block's flat backing store, so the bulk load copies no
	// coordinates and the group costs a constant number of decode
	// allocations.
	rBlk, sBlk, err := driver.CollectRSBlocks(values)
	if err != nil {
		return err
	}
	tree := rtree.Bulk(codec.BlockObjects(sBlk), rtree.Options{Metric: opts.Metric, Fanout: opts.Fanout})
	var nbuf []codec.Neighbor
	for row := 0; row < rBlk.Len(); row++ {
		cands := tree.KNN(rBlk.At(row), opts.K)
		nbuf = nbuf[:0]
		for _, c := range cands {
			nbuf = append(nbuf, codec.Neighbor{ID: c.ID, Dist: c.Dist})
		}
		emit(nil, codec.EncodeResult(codec.Result{RID: rBlk.IDs[row], Neighbors: nbuf}))
	}
	ctx.Counter("pairs", tree.DistCount)
	ctx.AddWork(tree.DistCount)
	return nil
}

// MergeResults is the second MapReduce job shared by H-BRJ and PBJ: it
// groups partial kNN lists by R object — keyed by the object id's
// order-preserving binary encoding, so each reducer emits its share in
// ascending-RID order (ids are hash-scattered across reducers, so the
// concatenated file is only per-reducer sorted) — and keeps the k
// global best. The input file holds codec.Result records; so does the
// output.
func MergeResults(cluster *mapreduce.Cluster, inFile, outFile string, k int) (*mapreduce.JobStats, error) {
	return cluster.Run(mergeKind.New(mergeSpec{Input: inFile, Output: outFile, K: k}))
}

// mergeSpec rebuilds the merge job in a worker process.
type mergeSpec struct {
	Input, Output string
	K             int
}

const sideK = "k"

var mergeKind = mapreduce.DefineKind("knn-merge", buildMergeJob)

func buildMergeJob(s mergeSpec) *mapreduce.Job {
	return &mapreduce.Job{
		Name:   "knn-merge",
		Input:  []string{s.Input},
		Output: s.Output,
		Side:   map[string]any{sideK: s.K},
		Map:    mergeMap,
		Reduce: mergeReduce,
	}
}

func mergeMap(_ *mapreduce.TaskContext, rec dfs.Record, emit mapreduce.Emit) error {
	res, err := codec.DecodeResult(rec)
	if err != nil {
		return err
	}
	emit(codec.Int64Key(res.RID), rec)
	return nil
}

func mergeReduce(ctx *mapreduce.TaskContext, key []byte, values *mapreduce.Values, emit mapreduce.Emit) error {
	k := ctx.Side(sideK).(int)
	rid := codec.KeyInt64(key)
	// Partial lists may overlap (e.g. H-zkNNJ finds the same s
	// under several shifts); a kNN list is a set, so dedupe by
	// neighbor ID before ranking.
	best := make(map[int64]float64)
	for v, ok := values.Next(); ok; v, ok = values.Next() {
		res, err := codec.DecodeResult(v)
		if err != nil {
			return err
		}
		for _, nb := range res.Neighbors {
			if d, ok := best[nb.ID]; !ok || nb.Dist < d {
				best[nb.ID] = nb.Dist
			}
		}
	}
	ids := make([]int64, 0, len(best))
	for id := range best {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	heap := nnheap.NewKHeap(k)
	for _, id := range ids {
		heap.Push(nnheap.Candidate{ID: id, Dist: best[id]})
	}
	cands := heap.Sorted()
	nbs := make([]codec.Neighbor, len(cands))
	for i, c := range cands {
		nbs[i] = codec.Neighbor{ID: c.ID, Dist: c.Dist}
	}
	ctx.Counter("result_pairs", int64(len(nbs)))
	emit(nil, codec.EncodeResult(codec.Result{RID: rid, Neighbors: nbs}))
	return nil
}
