package hbrj

import (
	"math"
	"testing"

	"knnjoin/internal/codec"
	"knnjoin/internal/dataset"
	"knnjoin/internal/dfs"
	"knnjoin/internal/mapreduce"
	"knnjoin/internal/naive"
	"knnjoin/internal/vector"
)

func runHBRJ(t testing.TB, rObjs, sObjs []codec.Object, opts Options, nodes int) ([]codec.Result, int64, int64) {
	t.Helper()
	fs := dfs.New(256)
	cluster := mapreduce.NewCluster(fs, nodes)
	dataset.ToDFS(fs, "R", rObjs, codec.FromR)
	dataset.ToDFS(fs, "S", sObjs, codec.FromS)
	rep, err := Run(cluster, "R", "S", "out", opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := naive.ReadResults(fs, "out")
	if err != nil {
		t.Fatal(err)
	}
	return got, rep.ReplicasS, rep.ShuffleRecords
}

func assertExact(t *testing.T, got []codec.Result, rObjs, sObjs []codec.Object, k int, m vector.Metric) {
	t.Helper()
	want, _ := naive.BruteForce(rObjs, sObjs, k, m)
	if len(got) != len(want) {
		t.Fatalf("result rows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].RID != want[i].RID {
			t.Fatalf("row %d: RID %d, want %d", i, got[i].RID, want[i].RID)
		}
		g, w := got[i].Neighbors, want[i].Neighbors
		if len(g) != len(w) {
			t.Fatalf("r %d: %d neighbors, want %d", got[i].RID, len(g), len(w))
		}
		for j := range w {
			if math.Abs(g[j].Dist-w[j].Dist) > 1e-9 {
				t.Fatalf("r %d neighbor %d: dist %v, want %v", got[i].RID, j, g[j].Dist, w[j].Dist)
			}
		}
	}
}

func TestBlocks(t *testing.T) {
	tests := map[int]int{1: 1, 2: 1, 3: 1, 4: 2, 8: 2, 9: 3, 15: 3, 16: 4, 25: 5, 36: 6}
	for n, want := range tests {
		if got := Blocks(n); got != want {
			t.Errorf("Blocks(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestHBRJMatchesBruteForce(t *testing.T) {
	rObjs := dataset.Uniform(400, 3, 100, 41)
	sObjs := dataset.Uniform(500, 3, 100, 42)
	got, _, _ := runHBRJ(t, rObjs, sObjs, Options{K: 5}, 9)
	assertExact(t, got, rObjs, sObjs, 5, vector.L2)
}

func TestHBRJForestSelfJoin(t *testing.T) {
	objs := dataset.Forest(700, 43)
	got, _, _ := runHBRJ(t, objs, objs, Options{K: 10}, 9)
	assertExact(t, got, objs, objs, 10, vector.L2)
}

func TestHBRJSkewedData(t *testing.T) {
	objs := dataset.OSM(600, 44)
	got, _, _ := runHBRJ(t, objs, objs, Options{K: 5}, 4)
	assertExact(t, got, objs, objs, 5, vector.L2)
}

func TestHBRJVariousNodeCounts(t *testing.T) {
	objs := dataset.Uniform(300, 3, 100, 45)
	for _, nodes := range []int{1, 2, 4, 6, 16} {
		got, _, _ := runHBRJ(t, objs, objs, Options{K: 4}, nodes)
		assertExact(t, got, objs, objs, 4, vector.L2)
	}
}

func TestHBRJVariousK(t *testing.T) {
	objs := dataset.Uniform(250, 2, 100, 46)
	for _, k := range []int{1, 3, 20} {
		got, _, _ := runHBRJ(t, objs, objs, Options{K: k}, 4)
		assertExact(t, got, objs, objs, k, vector.L2)
	}
}

func TestHBRJAlternateMetrics(t *testing.T) {
	objs := dataset.Uniform(300, 3, 100, 47)
	for _, m := range []vector.Metric{vector.L1, vector.LInf} {
		got, _, _ := runHBRJ(t, objs, objs, Options{K: 5, Metric: m}, 4)
		assertExact(t, got, objs, objs, 5, m)
	}
}

func TestHBRJKLargerThanS(t *testing.T) {
	rObjs := dataset.Uniform(50, 2, 100, 48)
	sObjs := dataset.Uniform(7, 2, 100, 49)
	got, _, _ := runHBRJ(t, rObjs, sObjs, Options{K: 12}, 9)
	assertExact(t, got, rObjs, sObjs, 12, vector.L2)
}

func TestHBRJShuffleCostFormula(t *testing.T) {
	// §3: block job shuffles √N·(|R|+|S|); the merge job adds √N·|R|
	// partial result records.
	rObjs := dataset.Uniform(120, 2, 100, 50)
	sObjs := dataset.Uniform(80, 2, 100, 51)
	nodes := 9 // √9 = 3
	_, replicas, shuffle := runHBRJ(t, rObjs, sObjs, Options{K: 3}, nodes)
	if replicas != int64(3*len(sObjs)) {
		t.Fatalf("replicas = %d, want %d", replicas, 3*len(sObjs))
	}
	wantShuffle := int64(3*(len(rObjs)+len(sObjs)) + 3*len(rObjs))
	if shuffle != wantShuffle {
		t.Fatalf("shuffle records = %d, want %d", shuffle, wantShuffle)
	}
}

func TestHBRJValidation(t *testing.T) {
	fs := dfs.New(0)
	cluster := mapreduce.NewCluster(fs, 4)
	if _, err := Run(cluster, "R", "S", "out", Options{K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Run(cluster, "missing", "S", "out", Options{K: 3}); err == nil {
		t.Error("missing input accepted")
	}
}

func TestMergeResultsKeepsKBest(t *testing.T) {
	fs := dfs.New(0)
	cluster := mapreduce.NewCluster(fs, 2)
	partials := []codec.Result{
		{RID: 1, Neighbors: []codec.Neighbor{{ID: 10, Dist: 3}, {ID: 11, Dist: 5}}},
		{RID: 1, Neighbors: []codec.Neighbor{{ID: 12, Dist: 1}, {ID: 13, Dist: 4}}},
		{RID: 2, Neighbors: []codec.Neighbor{{ID: 14, Dist: 2}}},
	}
	recs := make([]dfs.Record, len(partials))
	for i, p := range partials {
		recs[i] = codec.EncodeResult(p)
	}
	fs.Write("partials", recs)
	if _, err := MergeResults(cluster, "partials", "merged", 2); err != nil {
		t.Fatal(err)
	}
	got, err := naive.ReadResults(fs, "merged")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("rows = %d", len(got))
	}
	r1 := got[0]
	if r1.RID != 1 || len(r1.Neighbors) != 2 ||
		r1.Neighbors[0].ID != 12 || r1.Neighbors[1].ID != 10 {
		t.Fatalf("merged r1 = %+v", r1)
	}
	if got[1].RID != 2 || len(got[1].Neighbors) != 1 {
		t.Fatalf("merged r2 = %+v", got[1])
	}
}
