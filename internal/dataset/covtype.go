package dataset

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"strconv"
	"strings"

	"knnjoin/internal/codec"
	"knnjoin/internal/vector"
)

// covTypeQuantitative is the number of leading quantitative attributes of
// the UCI Forest CoverType record (elevation, aspect, slope, distances,
// hillshades). The remaining 44 columns are binary indicators and the
// final column the class label; the paper uses exactly these 10 integer
// attributes ("we use 10 integer attributes in the experiments"), and so
// does this loader.
const covTypeQuantitative = 10

// ReadCovType parses the UCI Forest CoverType file (covtype.data, one
// comma-separated record of 55 integers per line) and returns objects
// over the 10 quantitative attributes, IDs assigned by line order — the
// exact preparation §6 of the paper describes. Gzipped input
// (covtype.data.gz as distributed by UCI) is detected and decompressed
// transparently. maxRecords bounds the result; 0 means no bound.
//
// The synthetic Forest generator stands in for this dataset everywhere
// in the repository's experiments; the loader exists so the real data
// can be dropped in:
//
//	f, _ := os.Open("covtype.data.gz")
//	objs, _ := dataset.ReadCovType(f, 0)
//	results, stats, _ := knnjoin.Join(objs, objs, knnjoin.Options{K: 10})
func ReadCovType(r io.Reader, maxRecords int) ([]codec.Object, error) {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("dataset: covtype gzip: %w", err)
		}
		defer gz.Close()
		return readCovTypeLines(gz, maxRecords)
	}
	return readCovTypeLines(br, maxRecords)
}

func readCovTypeLines(r io.Reader, maxRecords int) ([]codec.Object, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []codec.Object
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) < covTypeQuantitative {
			return nil, fmt.Errorf("dataset: covtype line %d: %d fields, need at least %d",
				line, len(fields), covTypeQuantitative)
		}
		p := make(vector.Point, covTypeQuantitative)
		for d := 0; d < covTypeQuantitative; d++ {
			v, err := strconv.ParseFloat(strings.TrimSpace(fields[d]), 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: covtype line %d field %d: %w", line, d+1, err)
			}
			p[d] = v
		}
		out = append(out, codec.Object{ID: int64(len(out)), Point: p})
		if maxRecords > 0 && len(out) == maxRecords {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("dataset: covtype input is empty")
	}
	return out, nil
}
