package dataset

import (
	"bytes"
	"compress/gzip"
	"strings"
	"testing"
)

// covTypeLine renders one 55-column UCI record whose 10 quantitative
// attributes are base+0 .. base+9.
func covTypeLine(base int) string {
	fields := make([]string, 55)
	for i := range fields {
		switch {
		case i < 10:
			fields[i] = itoa(base + i)
		case i < 54:
			fields[i] = "0" // binary indicator columns
		default:
			fields[i] = "2" // class label
		}
	}
	return strings.Join(fields, ",")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

func TestReadCovType(t *testing.T) {
	in := covTypeLine(100) + "\n\n" + covTypeLine(200) + "\n" + covTypeLine(300) + "\n"
	objs, err := ReadCovType(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 3 {
		t.Fatalf("got %d objects, want 3", len(objs))
	}
	for i, o := range objs {
		if o.ID != int64(i) {
			t.Fatalf("object %d has ID %d", i, o.ID)
		}
		if o.Point.Dim() != 10 {
			t.Fatalf("object %d has %d dims, want 10", i, o.Point.Dim())
		}
		want := float64((i+1)*100 + 9)
		if o.Point[9] != want {
			t.Fatalf("object %d dim 9 = %v, want %v", i, o.Point[9], want)
		}
	}
}

func TestReadCovTypeMaxRecords(t *testing.T) {
	in := covTypeLine(1) + "\n" + covTypeLine(2) + "\n" + covTypeLine(3) + "\n"
	objs, err := ReadCovType(strings.NewReader(in), 2)
	if err != nil || len(objs) != 2 {
		t.Fatalf("got %d objects (%v), want 2", len(objs), err)
	}
}

func TestReadCovTypeGzip(t *testing.T) {
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if _, err := gz.Write([]byte(covTypeLine(7) + "\n")); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	objs, err := ReadCovType(&buf, 0)
	if err != nil || len(objs) != 1 {
		t.Fatalf("gzip read: %d objects, err %v", len(objs), err)
	}
	if objs[0].Point[0] != 7 {
		t.Fatalf("dim 0 = %v, want 7", objs[0].Point[0])
	}
}

func TestReadCovTypeErrors(t *testing.T) {
	if _, err := ReadCovType(strings.NewReader(""), 0); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadCovType(strings.NewReader("1,2,3\n"), 0); err == nil {
		t.Error("short record accepted")
	}
	if _, err := ReadCovType(strings.NewReader(strings.Repeat("x,", 54)+"x\n"), 0); err == nil {
		t.Error("non-numeric record accepted")
	}
	bad := []byte{0x1f, 0x8b, 0xff, 0xff} // gzip magic, corrupt stream
	if _, err := ReadCovType(bytes.NewReader(bad), 0); err == nil {
		t.Error("corrupt gzip accepted")
	}
}
