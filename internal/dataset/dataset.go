// Package dataset provides the workloads of the paper's evaluation (§6)
// as synthetic, deterministic generators, plus dataset I/O.
//
// The paper evaluates on two real datasets we cannot ship:
//
//   - Forest CoverType (580K objects, 10 integer attributes used). We
//     generate a CoverType-like dataset: 10 integer attributes whose
//     marginal distributions mimic the cartographic variables, organized
//     into a handful of spatial clusters (cover types), with the last four
//     attributes deliberately low-variance — the property the paper uses
//     to explain Figure 10's flattening between 6 and 10 dimensions.
//   - OpenStreetMap (10M lon/lat records). We generate an OSM-like
//     dataset: a heavily skewed mixture of dense city clusters over a
//     sparse uniform background.
//
// The "Expanded Forest ×t" datasets are produced with the exact expansion
// algorithm of §6: per-dimension value-frequency ranking, each synthetic
// object taking the next-ranked value per dimension.
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"knnjoin/internal/codec"
	"knnjoin/internal/dfs"
	"knnjoin/internal/vector"
)

// ForestDim is the dimensionality of the CoverType-like dataset.
const ForestDim = 10

// Forest generates n CoverType-like objects. Objects belong to one of
// seven latent "cover types" that shift the terrain attributes, giving the
// cluster structure Voronoi partitioning benefits from. Attributes 7–10
// (indexes 6–9) have low variance by construction.
func Forest(n int, seed int64) []codec.Object {
	rng := rand.New(rand.NewSource(seed))
	type cover struct {
		elev, hydro, road, fire float64
	}
	covers := []cover{
		{2000, 150, 800, 900},
		{2350, 250, 1500, 1200},
		{2650, 300, 2200, 1500},
		{2850, 200, 1700, 2200},
		{3000, 350, 2800, 1800},
		{3200, 180, 1200, 2600},
		{3400, 260, 3200, 3000},
	}
	clip := func(v, lo, hi float64) float64 { return math.Max(lo, math.Min(hi, v)) }
	out := make([]codec.Object, n)
	for i := range out {
		c := covers[rng.Intn(len(covers))]
		p := make(vector.Point, ForestDim)
		// High-variance terrain attributes (dims 1–6 of the paper).
		p[0] = clip(c.elev+rng.NormFloat64()*180, 1850, 3860) // elevation
		p[1] = rng.Float64() * 360                            // aspect
		p[2] = rng.ExpFloat64() * c.hydro                     // horiz. dist. to hydrology
		p[3] = rng.ExpFloat64() * c.road                      // horiz. dist. to roadways
		p[4] = c.elev/30 - 45 + rng.NormFloat64()*58          // vert. dist. to hydrology
		p[5] = rng.ExpFloat64() * c.fire                      // horiz. dist. to fire points
		// Low-variance attributes (dims 7–10): hillshades and slope.
		p[6] = clip(212+rng.NormFloat64()*22, 0, 255) // hillshade 9am
		p[7] = clip(223+rng.NormFloat64()*16, 0, 255) // hillshade noon
		p[8] = clip(143+rng.NormFloat64()*28, 0, 255) // hillshade 3pm
		p[9] = clip(14+rng.NormFloat64()*6, 0, 60)    // slope
		for d := range p {
			p[d] = math.Round(p[d]) // CoverType attributes are integers
		}
		out[i] = codec.Object{ID: int64(i), Point: p}
	}
	return out
}

// Expand implements the §6 expansion: it returns a dataset of factor×len(base)
// objects preserving each dimension's value distribution. For every base
// object, factor−1 synthetic objects are created; the j-th replaces each
// coordinate with the value j positions after it in that dimension's
// frequency-ascending value ranking (staying at the last value when the
// ranking runs out, exactly as the paper specifies).
func Expand(base []codec.Object, factor int) []codec.Object {
	if factor <= 1 || len(base) == 0 {
		return append([]codec.Object(nil), base...)
	}
	dim := base[0].Point.Dim()
	// Per-dimension ranking of distinct values by ascending frequency,
	// ties by ascending value for determinism.
	nextRank := make([]map[float64]int, dim) // value → index in ranking
	rankings := make([][]float64, dim)
	for d := 0; d < dim; d++ {
		freq := make(map[float64]int)
		for _, o := range base {
			freq[o.Point[d]]++
		}
		vals := make([]float64, 0, len(freq))
		for v := range freq {
			vals = append(vals, v)
		}
		sort.Slice(vals, func(a, b int) bool {
			if freq[vals[a]] != freq[vals[b]] {
				return freq[vals[a]] < freq[vals[b]]
			}
			return vals[a] < vals[b]
		})
		idx := make(map[float64]int, len(vals))
		for i, v := range vals {
			idx[v] = i
		}
		rankings[d], nextRank[d] = vals, idx
	}

	out := make([]codec.Object, 0, len(base)*factor)
	var id int64
	for _, o := range base {
		out = append(out, codec.Object{ID: id, Point: o.Point.Clone()})
		id++
	}
	for j := 1; j < factor; j++ {
		for _, o := range base {
			p := make(vector.Point, dim)
			for d := 0; d < dim; d++ {
				rank := nextRank[d][o.Point[d]] + j
				if rank >= len(rankings[d]) {
					rank = len(rankings[d]) - 1 // paper: keep the value constant
				}
				p[d] = rankings[d][rank]
			}
			out = append(out, codec.Object{ID: id, Point: p})
			id++
		}
	}
	return out
}

// OSM generates n OSM-like 2-d records (longitude, latitude): 85% of the
// mass in a few hundred city clusters with Zipf-distributed sizes, the
// rest uniform background — the spatial skew that drives Figure 9.
func OSM(n int, seed int64) []codec.Object {
	rng := rand.New(rand.NewSource(seed))
	nCities := 200
	if n < nCities*4 {
		nCities = n/4 + 1
	}
	type city struct {
		lon, lat, spread float64
	}
	cities := make([]city, nCities)
	for i := range cities {
		cities[i] = city{
			lon:    rng.Float64()*360 - 180,
			lat:    rng.Float64()*170 - 85,
			spread: 0.05 + rng.ExpFloat64()*0.3,
		}
	}
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(nCities-1))
	out := make([]codec.Object, n)
	for i := range out {
		p := make(vector.Point, 2)
		if rng.Float64() < 0.85 {
			c := cities[zipf.Uint64()]
			p[0] = c.lon + rng.NormFloat64()*c.spread
			p[1] = c.lat + rng.NormFloat64()*c.spread
		} else {
			p[0] = rng.Float64()*360 - 180
			p[1] = rng.Float64()*170 - 85
		}
		out[i] = codec.Object{ID: int64(i), Point: p}
	}
	return out
}

// Gaussian generates n objects from a mixture of `clusters` spherical
// Gaussian blobs in dim dimensions: cluster centers are uniform in
// [0.15·scale, 0.85·scale]^dim and every cluster contributes roughly
// n/clusters points with the given per-coordinate standard deviation.
// stddev ≤ 0 selects scale/20. This is the "clustered" workload shape of
// the planner's evaluation: Voronoi partitioning thrives on it, and the
// intrinsic-dimensionality and skew estimates must tell it apart from
// uniform noise.
func Gaussian(n, dim, clusters int, stddev, scale float64, seed int64) []codec.Object {
	if clusters <= 0 {
		clusters = 8
	}
	if clusters > n {
		clusters = n
	}
	if stddev <= 0 {
		stddev = scale / 20
	}
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, clusters)
	for c := range centers {
		ctr := make([]float64, dim)
		for d := range ctr {
			ctr[d] = (0.15 + 0.7*rng.Float64()) * scale
		}
		centers[c] = ctr
	}
	out := make([]codec.Object, n)
	for i := range out {
		ctr := centers[rng.Intn(clusters)]
		p := make(vector.Point, dim)
		for d := range p {
			p[d] = ctr[d] + rng.NormFloat64()*stddev
		}
		out[i] = codec.Object{ID: int64(i), Point: p}
	}
	return out
}

// Zipf generates n objects with Zipf-skewed density: `sites` anchor
// points uniform in [0, scale)^dim receive objects with rank-r
// probability ∝ 1/r^1.3 (the OSM generator's exponent), each object
// jittered around its site by a Gaussian of one third of the mean
// inter-site spacing. The first-ranked site ends up holding a large
// constant fraction of the data — the partition-size skew that breaks
// fixed-configuration joins and that the planner's ClusterSkew statistic
// must detect. sites ≤ 0 selects 64.
func Zipf(n, dim, sites int, scale float64, seed int64) []codec.Object {
	if sites <= 0 {
		sites = 64
	}
	if sites > n {
		sites = n
	}
	rng := rand.New(rand.NewSource(seed))
	anchors := make([][]float64, sites)
	for s := range anchors {
		a := make([]float64, dim)
		for d := range a {
			a[d] = rng.Float64() * scale
		}
		anchors[s] = a
	}
	var zipf *rand.Zipf
	if sites > 1 {
		zipf = rand.NewZipf(rng, 1.3, 1, uint64(sites-1))
	}
	spacing := scale / math.Pow(float64(sites), 1/float64(dim))
	out := make([]codec.Object, n)
	for i := range out {
		var site uint64
		if zipf != nil {
			site = zipf.Uint64()
		}
		a := anchors[site]
		p := make(vector.Point, dim)
		for d := range p {
			p[d] = a[d] + rng.NormFloat64()*spacing/3
		}
		out[i] = codec.Object{ID: int64(i), Point: p}
	}
	return out
}

// Uniform generates n objects uniform in [0, scale)^dim; the simplest
// workload for tests and micro-benchmarks.
func Uniform(n, dim int, scale float64, seed int64) []codec.Object {
	rng := rand.New(rand.NewSource(seed))
	out := make([]codec.Object, n)
	for i := range out {
		p := make(vector.Point, dim)
		for d := range p {
			p[d] = rng.Float64() * scale
		}
		out[i] = codec.Object{ID: int64(i), Point: p}
	}
	return out
}

// Project returns a copy of objs truncated to the first dim dimensions —
// how the dimensionality experiment (Figure 10) derives its 2–10d inputs.
func Project(objs []codec.Object, dim int) []codec.Object {
	out := make([]codec.Object, len(objs))
	for i, o := range objs {
		out[i] = codec.Object{ID: o.ID, Point: o.Point.Project(dim)}
	}
	return out
}

// Renumber returns a copy of objs with IDs 0..n-1 in slice order, for
// callers that subset or concatenate datasets.
func Renumber(objs []codec.Object) []codec.Object {
	out := make([]codec.Object, len(objs))
	for i, o := range objs {
		out[i] = codec.Object{ID: int64(i), Point: o.Point}
	}
	return out
}

// ToDFS stores objs in the filesystem under name, each record a Tagged
// object carrying the dataset tag. Partition −1 marks "not yet
// partitioned"; the first MapReduce job fills it in. The error is the
// store's — in-memory stores never fail, disk-backed ones can.
func ToDFS(fs dfs.Store, name string, objs []codec.Object, src codec.Source) error {
	recs := make([]dfs.Record, len(objs))
	for i, o := range objs {
		recs[i] = codec.EncodeTagged(codec.Tagged{Object: o, Src: src, Partition: -1})
	}
	return fs.Write(name, recs)
}

// FromDFS reads a file written by ToDFS (or produced by a partitioning
// job) back into tagged objects.
func FromDFS(fs dfs.Store, name string) ([]codec.Tagged, error) {
	recs, err := fs.Read(name)
	if err != nil {
		return nil, err
	}
	out := make([]codec.Tagged, len(recs))
	for i, r := range recs {
		t, err := codec.DecodeTagged(r)
		if err != nil {
			return nil, fmt.Errorf("dataset: record %d of %q: %w", i, name, err)
		}
		out[i] = t
	}
	return out, nil
}

// WriteCSV writes objects as "id,x1,x2,..." lines.
func WriteCSV(w io.Writer, objs []codec.Object) error {
	bw := bufio.NewWriter(w)
	for _, o := range objs {
		if _, err := fmt.Fprintf(bw, "%d,%s\n", o.ID, o.Point.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses objects written by WriteCSV. Blank lines are skipped.
// All objects must share one dimensionality.
func ReadCSV(r io.Reader) ([]codec.Object, error) {
	var out []codec.Object
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	dim := -1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		idStr, rest, ok := strings.Cut(text, ",")
		if !ok {
			return nil, fmt.Errorf("dataset: line %d: need id,coords", line)
		}
		id, err := strconv.ParseInt(strings.TrimSpace(idStr), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad id: %w", line, err)
		}
		p, err := vector.Parse(rest)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		if dim == -1 {
			dim = p.Dim()
		} else if p.Dim() != dim {
			return nil, fmt.Errorf("dataset: line %d: dimension %d differs from %d", line, p.Dim(), dim)
		}
		out = append(out, codec.Object{ID: id, Point: p})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
