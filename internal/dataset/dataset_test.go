package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"knnjoin/internal/codec"
	"knnjoin/internal/dfs"
	"knnjoin/internal/vector"
)

func TestForestShape(t *testing.T) {
	objs := Forest(5000, 1)
	if len(objs) != 5000 {
		t.Fatalf("len = %d", len(objs))
	}
	for i, o := range objs {
		if o.ID != int64(i) {
			t.Fatalf("ID[%d] = %d", i, o.ID)
		}
		if o.Point.Dim() != ForestDim {
			t.Fatalf("dim = %d", o.Point.Dim())
		}
		for d, v := range o.Point {
			if v != math.Round(v) {
				t.Fatalf("attribute %d = %v not integral", d, v)
			}
		}
		if o.Point[0] < 1850 || o.Point[0] > 3860 {
			t.Fatalf("elevation %v out of range", o.Point[0])
		}
	}
}

func TestForestDeterministic(t *testing.T) {
	a, b := Forest(100, 7), Forest(100, 7)
	for i := range a {
		if !a[i].Point.Equal(b[i].Point) {
			t.Fatal("same seed produced different data")
		}
	}
	c := Forest(100, 8)
	same := true
	for i := range a {
		if !a[i].Point.Equal(c[i].Point) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

// The paper's Fig. 10 analysis: attributes 7–10 must have low variance
// relative to the terrain attributes.
func TestForestTailDimsLowVariance(t *testing.T) {
	objs := Forest(20000, 2)
	variance := func(d int) float64 {
		var sum, sq float64
		for _, o := range objs {
			sum += o.Point[d]
		}
		mean := sum / float64(len(objs))
		for _, o := range objs {
			dv := o.Point[d] - mean
			sq += dv * dv
		}
		return sq / float64(len(objs))
	}
	highVar := math.Min(variance(0), math.Min(variance(3), variance(5)))
	for d := 6; d < 10; d++ {
		if v := variance(d); v > highVar/4 {
			t.Errorf("dim %d variance %.1f not clearly below terrain variance %.1f", d, v, highVar)
		}
	}
}

func TestExpandFactorAndSize(t *testing.T) {
	base := Forest(500, 3)
	for _, f := range []int{1, 2, 5, 10} {
		got := Expand(base, f)
		if len(got) != 500*f {
			t.Fatalf("factor %d: len = %d, want %d", f, len(got), 500*f)
		}
		seen := make(map[int64]bool)
		for _, o := range got {
			if seen[o.ID] {
				t.Fatalf("duplicate ID %d", o.ID)
			}
			seen[o.ID] = true
			if o.Point.Dim() != ForestDim {
				t.Fatalf("dim = %d", o.Point.Dim())
			}
		}
	}
}

func TestExpandPreservesBasePrefix(t *testing.T) {
	base := Forest(200, 4)
	got := Expand(base, 3)
	for i := range base {
		if !got[i].Point.Equal(base[i].Point) {
			t.Fatalf("object %d modified by expansion", i)
		}
	}
}

// The expansion only emits values that already exist in the base dataset —
// a direct consequence of taking the "next value" from the frequency
// ranking — so every dimension's support set is preserved.
func TestExpandPreservesValueSupport(t *testing.T) {
	base := Forest(300, 5)
	got := Expand(base, 4)
	for d := 0; d < ForestDim; d++ {
		support := make(map[float64]bool)
		for _, o := range base {
			support[o.Point[d]] = true
		}
		for _, o := range got {
			if !support[o.Point[d]] {
				t.Fatalf("dim %d: expansion invented value %v", d, o.Point[d])
			}
		}
	}
}

func TestExpandLastValueStaysConstant(t *testing.T) {
	// A single distinct value per dimension: every expansion copy keeps it.
	base := []codec.Object{
		{ID: 0, Point: vector.Point{5, 5}},
		{ID: 1, Point: vector.Point{5, 5}},
	}
	got := Expand(base, 3)
	if len(got) != 6 {
		t.Fatalf("len = %d", len(got))
	}
	for _, o := range got {
		if !o.Point.Equal(vector.Point{5, 5}) {
			t.Fatalf("constant dataset changed: %v", o.Point)
		}
	}
}

func TestExpandEdgeCases(t *testing.T) {
	if got := Expand(nil, 5); len(got) != 0 {
		t.Fatal("expanding empty base")
	}
	base := Forest(10, 6)
	if got := Expand(base, 0); len(got) != 10 {
		t.Fatal("factor 0 should behave as 1")
	}
}

func TestOSMShapeAndSkew(t *testing.T) {
	objs := OSM(30000, 1)
	if len(objs) != 30000 {
		t.Fatalf("len = %d", len(objs))
	}
	for _, o := range objs {
		if o.Point.Dim() != 2 {
			t.Fatalf("dim = %d", o.Point.Dim())
		}
		// Allow slight cluster spillover beyond the lon/lat box.
		if o.Point[0] < -200 || o.Point[0] > 200 || o.Point[1] < -100 || o.Point[1] > 100 {
			t.Fatalf("coordinate out of range: %v", o.Point)
		}
	}
	// Skew check: a coarse grid must show a heavily loaded cell far above
	// the uniform expectation.
	cells := make(map[[2]int]int)
	for _, o := range objs {
		cells[[2]int{int(o.Point[0]) / 10, int(o.Point[1]) / 10}]++
	}
	max := 0
	for _, c := range cells {
		if c > max {
			max = c
		}
	}
	uniformExpect := 30000 / (36 * 18)
	if max < 5*uniformExpect {
		t.Errorf("max cell %d does not show city skew (uniform ≈ %d)", max, uniformExpect)
	}
}

func TestUniform(t *testing.T) {
	objs := Uniform(1000, 4, 50, 3)
	for _, o := range objs {
		for _, v := range o.Point {
			if v < 0 || v >= 50 {
				t.Fatalf("value %v outside [0,50)", v)
			}
		}
	}
}

func TestProject(t *testing.T) {
	objs := Forest(50, 9)
	got := Project(objs, 4)
	for i, o := range got {
		if o.Point.Dim() != 4 || o.ID != objs[i].ID {
			t.Fatalf("bad projection %+v", o)
		}
		for d := 0; d < 4; d++ {
			if o.Point[d] != objs[i].Point[d] {
				t.Fatal("projection altered values")
			}
		}
	}
}

func TestRenumber(t *testing.T) {
	objs := []codec.Object{{ID: 17, Point: vector.Point{1}}, {ID: 3, Point: vector.Point{2}}}
	got := Renumber(objs)
	if got[0].ID != 0 || got[1].ID != 1 {
		t.Fatalf("got IDs %d,%d", got[0].ID, got[1].ID)
	}
}

func TestDFSRoundTrip(t *testing.T) {
	fs := dfs.New(0)
	objs := Forest(200, 10)
	ToDFS(fs, "forest", objs, codec.FromR)
	got, err := FromDFS(fs, "forest")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(objs) {
		t.Fatalf("len = %d", len(got))
	}
	for i, tg := range got {
		if tg.ID != objs[i].ID || !tg.Point.Equal(objs[i].Point) {
			t.Fatalf("object %d mismatch", i)
		}
		if tg.Src != codec.FromR || tg.Partition != -1 {
			t.Fatalf("bad tag %+v", tg)
		}
	}
}

func TestFromDFSErrors(t *testing.T) {
	fs := dfs.New(0)
	if _, err := FromDFS(fs, "missing"); err == nil {
		t.Error("missing file accepted")
	}
	fs.Write("bad", []dfs.Record{[]byte("garbage")})
	if _, err := FromDFS(fs, "bad"); err == nil {
		t.Error("garbage record accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	objs := OSM(100, 11)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, objs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(objs) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range objs {
		if got[i].ID != objs[i].ID || !got[i].Point.Equal(objs[i].Point) {
			t.Fatalf("row %d mismatch: %+v vs %+v", i, got[i], objs[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"noid\n",
		"x,1,2\n",
		"1,1,bad\n",
		"1,1,2\n2,1\n", // dimension mismatch
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("ReadCSV(%q): expected error", c)
		}
	}
	got, err := ReadCSV(strings.NewReader("\n1,5,6\n\n"))
	if err != nil || len(got) != 1 {
		t.Fatalf("blank-line handling: %v %v", got, err)
	}
}

// Property: Expand(base, f) has exactly f×len(base) objects with unique
// sequential IDs for any base size and factor.
func TestExpandSizeQuick(t *testing.T) {
	f := func(nRaw, fRaw uint8) bool {
		n := int(nRaw)%50 + 1
		factor := int(fRaw)%6 + 1
		base := Uniform(n, 3, 100, int64(nRaw)*31+int64(fRaw))
		got := Expand(base, factor)
		if len(got) != n*factor {
			return false
		}
		for i, o := range got {
			if o.ID != int64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkForestGen(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Forest(10000, int64(i))
	}
}

func BenchmarkExpand10x(b *testing.B) {
	base := Forest(2000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Expand(base, 10)
	}
}

func TestGaussianShape(t *testing.T) {
	objs := Gaussian(2000, 3, 4, 2, 100, 42)
	if len(objs) != 2000 {
		t.Fatalf("got %d objects, want 2000", len(objs))
	}
	if objs[0].Point.Dim() != 3 {
		t.Fatalf("dims = %d, want 3", objs[0].Point.Dim())
	}
	// A tight 4-cluster mixture occupies far less of the 4×4×4 coarse
	// grid than uniform noise would: count occupied cells.
	cells := map[[3]int]int{}
	for _, o := range objs {
		var c [3]int
		for d := 0; d < 3; d++ {
			c[d] = int(o.Point[d] / 25)
		}
		cells[c]++
	}
	if len(cells) > 24 {
		t.Fatalf("gaussian mixture occupies %d of 64 coarse cells; expected concentration", len(cells))
	}
}

func TestZipfSkew(t *testing.T) {
	const n = 2000
	objs := Zipf(n, 2, 64, 100, 42)
	if len(objs) != n {
		t.Fatalf("got %d objects, want %d", len(objs), n)
	}
	// The rank-1 site must dominate: the fullest cell of a 4×4 grid has
	// to hold far more than the uniform expectation n/16.
	cells := map[[2]int]int{}
	for _, o := range objs {
		var c [2]int
		for d := 0; d < 2; d++ {
			v := int(o.Point[d] / 25)
			if v < 0 {
				v = 0
			}
			if v > 3 {
				v = 3
			}
			c[d] = v
		}
		cells[c]++
	}
	max := 0
	for _, cnt := range cells {
		if cnt > max {
			max = cnt
		}
	}
	if max < 2*n/16 {
		t.Fatalf("fullest cell holds %d of %d; want Zipf skew ≥ 2× the uniform %d", max, n, n/16)
	}
}

func TestGaussianZipfDeterministic(t *testing.T) {
	equal := func(a, b []codec.Object) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].ID != b[i].ID || !a[i].Point.Equal(b[i].Point) {
				return false
			}
		}
		return true
	}
	for name, gen := range map[string]func(seed int64) []codec.Object{
		"gaussian": func(seed int64) []codec.Object { return Gaussian(300, 4, 8, 0, 100, seed) },
		"zipf":     func(seed int64) []codec.Object { return Zipf(300, 3, 0, 100, seed) },
	} {
		a, b, c := gen(5), gen(5), gen(6)
		if !equal(a, b) {
			t.Errorf("%s: same seed differs", name)
		}
		if equal(a, c) {
			t.Errorf("%s: different seeds identical", name)
		}
	}
}
