package codec

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestUint32KeyRoundTripAndOrder(t *testing.T) {
	vals := []uint32{0, 1, 2, 9, 10, 11, 99, 100, 1 << 16, math.MaxUint32}
	var prev []byte
	for _, v := range vals {
		k := Uint32Key(v)
		if len(k) != 4 {
			t.Fatalf("Uint32Key(%d) has %d bytes", v, len(k))
		}
		if got := KeyUint32(k); got != v {
			t.Fatalf("round trip %d → %d", v, got)
		}
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("byte order broken at %d", v)
		}
		prev = k
	}
}

// The decimal-string footgun the binary keys exist to fix: as strings,
// "10" < "9"; as Uint32Keys, 9 < 10.
func TestUint32KeyBeatsStringOrder(t *testing.T) {
	if !("10" < "9") {
		t.Fatal("string order assumption broken")
	}
	if bytes.Compare(Uint32Key(9), Uint32Key(10)) >= 0 {
		t.Fatal("Uint32Key(9) must sort before Uint32Key(10)")
	}
}

func TestInt64KeyRoundTripAndOrder(t *testing.T) {
	vals := []int64{math.MinInt64, -1 << 32, -2, -1, 0, 1, 2, 9, 10, 1 << 40, math.MaxInt64}
	var prev []byte
	for _, v := range vals {
		k := Int64Key(v)
		if got := KeyInt64(k); got != v {
			t.Fatalf("round trip %d → %d", v, got)
		}
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("byte order broken at %d", v)
		}
		prev = k
	}
}

func TestFloat64KeyRoundTripAndOrder(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -2.5, -1, -math.SmallestNonzeroFloat64,
		0, math.SmallestNonzeroFloat64, 0.5, 1, 2.5, 1e300, math.Inf(1)}
	var prev []byte
	for _, v := range vals {
		k := Float64Key(v)
		if got := KeyFloat64(k); got != v {
			t.Fatalf("round trip %g → %g", v, got)
		}
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("byte order broken at %g", v)
		}
		prev = k
	}
}

// Property: sorting random floats by key bytes equals sorting numerically.
func TestFloat64KeyOrderRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	fs := make([]float64, 500)
	for i := range fs {
		fs[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(12)-6))
	}
	keys := make([][]byte, len(fs))
	for i, f := range fs {
		keys[i] = Float64Key(f)
	}
	sort.Slice(keys, func(a, b int) bool { return bytes.Compare(keys[a], keys[b]) < 0 })
	sort.Float64s(fs)
	for i := range fs {
		if got := KeyFloat64(keys[i]); got != fs[i] {
			t.Fatalf("position %d: key order gives %g, numeric order gives %g", i, got, fs[i])
		}
	}
}

// JoinKey's byte order must realize the reducers' streaming contract:
// group major, then R before S, then partition, then ascending pivot
// distance with ids breaking ties.
func TestJoinKeyOrder(t *testing.T) {
	mk := func(group int, src Source, part int32, dist float64, id int64) []byte {
		return JoinKey(group, Tagged{
			Object: Object{ID: id}, Src: src, Partition: part, PivotDist: dist,
		})
	}
	ordered := [][]byte{
		mk(0, FromS, 9, 0.1, 5),
		mk(1, FromR, 0, 2.0, 1),
		mk(1, FromR, 3, 1.0, 2),
		mk(1, FromS, 2, 0.5, 7),
		mk(1, FromS, 2, 0.5, 8), // id breaks the distance tie
		mk(1, FromS, 2, 0.75, 3),
		mk(1, FromS, 4, 0.0, 9),
		mk(2, FromR, 0, 0.0, 0),
	}
	for i := 1; i < len(ordered); i++ {
		if bytes.Compare(ordered[i-1], ordered[i]) >= 0 {
			t.Fatalf("JoinKey order broken between entries %d and %d", i-1, i)
		}
	}
	if KeyUint32(ordered[1]) != 1 {
		t.Fatalf("group prefix decodes to %d, want 1", KeyUint32(ordered[1]))
	}
	if len(ordered[0]) != JoinKeyGroupPrefix+1+4+8+8 {
		t.Fatalf("JoinKey length = %d", len(ordered[0]))
	}
}
