// Package codec defines the data objects that flow through the kNN-join
// pipeline and their binary wire encoding.
//
// Every record that crosses the MapReduce shuffle is serialized with this
// package, so the engine's shuffle-byte counters measure realistic sizes —
// the quantity reported as "shuffling cost" in Figures 8–12 of the paper.
package codec

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"

	"knnjoin/internal/vector"
)

// Source tags which input dataset an object came from (the paper's "origin"
// field emitted by the first MapReduce job's mappers, Figure 4).
type Source byte

const (
	// FromR marks an object of the outer dataset R.
	FromR Source = 'R'
	// FromS marks an object of the inner dataset S.
	FromS Source = 'S'
)

// String returns "R" or "S".
func (s Source) String() string { return string(rune(s)) }

// Object is a point with a dataset-unique identifier.
type Object struct {
	ID    int64
	Point vector.Point
}

// Tagged is an object annotated by the first MapReduce job: its source
// dataset, the Voronoi partition it belongs to (index of the closest
// pivot), and its distance to that pivot. This mirrors the mapper output
// of Figure 4 in the paper.
type Tagged struct {
	Object
	Src       Source
	Partition int32
	PivotDist float64
}

// Neighbor is one entry of a kNN result list.
type Neighbor struct {
	ID   int64
	Dist float64
}

// Result is the final output for one object r of R: its k nearest
// neighbors in ascending distance order.
type Result struct {
	RID       int64
	Neighbors []Neighbor
}

const (
	objHeader    = 8 + 4 // id + dim
	taggedHeader = objHeader + 1 + 4 + 8
)

// AppendObject appends the wire form of o to dst and returns the extended
// slice.
func AppendObject(dst []byte, o Object) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(o.ID))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(o.Point)))
	for _, v := range o.Point {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// EncodeObject returns the wire form of o.
func EncodeObject(o Object) []byte {
	return AppendObject(make([]byte, 0, objHeader+8*len(o.Point)), o)
}

// DecodeObject parses an object from the front of b, returning the object
// and the number of bytes consumed.
func DecodeObject(b []byte) (Object, int, error) {
	if len(b) < objHeader {
		return Object{}, 0, fmt.Errorf("codec: object truncated: %d bytes", len(b))
	}
	id := int64(binary.LittleEndian.Uint64(b))
	dim := int(binary.LittleEndian.Uint32(b[8:]))
	need := objHeader + 8*dim
	if dim < 0 || len(b) < need {
		return Object{}, 0, fmt.Errorf("codec: object truncated: dim=%d, have %d bytes", dim, len(b))
	}
	p := make(vector.Point, dim)
	off := objHeader
	for i := 0; i < dim; i++ {
		p[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		off += 8
	}
	return Object{ID: id, Point: p}, need, nil
}

// PeekSource returns the source tag of a Tagged wire record without
// decoding it — enough for a streaming reducer to route the record into
// the right Block before the full decode.
func PeekSource(b []byte) (Source, error) {
	if len(b) < objHeader {
		return 0, fmt.Errorf("codec: tagged record truncated: %d bytes", len(b))
	}
	dim := int(binary.LittleEndian.Uint32(b[8:]))
	off := objHeader + 8*dim
	if dim < 0 || len(b) < off+1 {
		return 0, fmt.Errorf("codec: tagged record truncated: dim=%d, have %d bytes", dim, len(b))
	}
	s := Source(b[off])
	if s != FromR && s != FromS {
		return 0, fmt.Errorf("codec: bad source tag %q", b[off])
	}
	return s, nil
}

// AppendTaggedToBlock decodes one Tagged wire record and appends its
// object — id, pivot distance, coordinates — to the block's parallel
// slices, returning the record's source and partition tags. Coordinates
// land directly in the block's flat backing store: no per-point Point
// allocation, only amortized slice growth. The first record stamps the
// block's dimensionality; a later record of a different dimensionality
// is a data error and is reported instead of corrupting the block.
func AppendTaggedToBlock(b *vector.Block, rec []byte) (Source, int32, error) {
	if len(rec) < objHeader {
		return 0, 0, fmt.Errorf("codec: tagged record truncated: %d bytes", len(rec))
	}
	id := int64(binary.LittleEndian.Uint64(rec))
	dim := int(binary.LittleEndian.Uint32(rec[8:]))
	need := objHeader + 8*dim + 1 + 4 + 8
	if dim < 0 || len(rec) < need {
		return 0, 0, fmt.Errorf("codec: tagged record truncated: dim=%d, have %d bytes", dim, len(rec))
	}
	off := objHeader + 8*dim
	src := Source(rec[off])
	if src != FromR && src != FromS {
		return 0, 0, fmt.Errorf("codec: bad source tag %q", rec[off])
	}
	if b.Len() == 0 {
		b.Dim = dim
	} else if dim != b.Dim {
		return 0, 0, fmt.Errorf("codec: dimension mismatch in block: record has %d dims, block has %d", dim, b.Dim)
	}
	part := int32(binary.LittleEndian.Uint32(rec[off+1:]))
	pd := math.Float64frombits(binary.LittleEndian.Uint64(rec[off+5:]))

	b.IDs = append(b.IDs, id)
	b.PivotDist = append(b.PivotDist, pd)
	base := len(b.Coords)
	b.Coords = slices.Grow(b.Coords, dim)[:base+dim]
	row := b.Coords[base:]
	for i := range row {
		row[i] = math.Float64frombits(binary.LittleEndian.Uint64(rec[objHeader+8*i:]))
	}
	return src, part, nil
}

// DecodeBlock decodes a batch of Tagged wire records — a whole reducer
// value group — into one columnar Block plus parallel source and
// partition slices. The backing slices are sized exactly in a single
// header pre-pass, so the group decodes with a constant number of
// allocations instead of two per point (the Object/Point pair the
// per-record DecodeTagged path allocates).
func DecodeBlock(recs [][]byte) (*vector.Block, []Source, []int32, error) {
	// Size the backing store from the first record's header: every
	// record of a group shares one dimensionality (enforced during the
	// decode), so one header read replaces a pre-pass over all records.
	coords := 0
	if len(recs) > 0 {
		if len(recs[0]) < objHeader {
			return nil, nil, nil, fmt.Errorf("codec: tagged record truncated: %d bytes", len(recs[0]))
		}
		dim := int(binary.LittleEndian.Uint32(recs[0][8:]))
		// A corrupt dim header must surface as AppendTaggedToBlock's
		// decode error, not as a giant allocation here — the record can
		// never hold more coordinates than its own length admits.
		if max := (len(recs[0]) - objHeader) / 8; dim > max {
			dim = max
		}
		if dim > 0 {
			coords = len(recs) * dim
		}
	}
	b := &vector.Block{
		IDs:       make([]int64, 0, len(recs)),
		PivotDist: make([]float64, 0, len(recs)),
		Coords:    make([]float64, 0, coords),
	}
	srcs := make([]Source, len(recs))
	parts := make([]int32, len(recs))
	for i, rec := range recs {
		src, part, err := AppendTaggedToBlock(b, rec)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("codec: block record %d: %w", i, err)
		}
		srcs[i], parts[i] = src, part
	}
	return b, srcs, parts, nil
}

// DecodeBlockKernel is DecodeBlock plus kernel tier attachment: the
// decoded block is Prepared for the requested scan tier (see
// vector.Kernel), so reducers pick their kernel at block construction —
// one conversion pass at decode, reused by every scan over the group.
func DecodeBlockKernel(recs [][]byte, k vector.Kernel) (*vector.Block, []Source, []int32, error) {
	b, srcs, parts, err := DecodeBlock(recs)
	if err != nil {
		return nil, nil, nil, err
	}
	b.Prepare(k)
	return b, srcs, parts, nil
}

// BlockObjects materializes a block as objects whose Points alias the
// block's backing array — one slice allocation, zero coordinate copies.
// The views are valid while the block is not appended to.
func BlockObjects(b *vector.Block) []Object {
	out := make([]Object, b.Len())
	for i := range out {
		out[i] = Object{ID: b.IDs[i], Point: b.At(i)}
	}
	return out
}

// EncodeTagged returns the wire form of t.
func EncodeTagged(t Tagged) []byte {
	dst := make([]byte, 0, taggedHeader+8*len(t.Point))
	dst = AppendObject(dst, t.Object)
	dst = append(dst, byte(t.Src))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(t.Partition))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(t.PivotDist))
	return dst
}

// DecodeTagged parses a Tagged record produced by EncodeTagged.
func DecodeTagged(b []byte) (Tagged, error) {
	o, n, err := DecodeObject(b)
	if err != nil {
		return Tagged{}, err
	}
	rest := b[n:]
	if len(rest) < 1+4+8 {
		return Tagged{}, fmt.Errorf("codec: tagged record truncated: %d trailing bytes", len(rest))
	}
	t := Tagged{Object: o}
	t.Src = Source(rest[0])
	if t.Src != FromR && t.Src != FromS {
		return Tagged{}, fmt.Errorf("codec: bad source tag %q", rest[0])
	}
	t.Partition = int32(binary.LittleEndian.Uint32(rest[1:]))
	t.PivotDist = math.Float64frombits(binary.LittleEndian.Uint64(rest[5:]))
	return t, nil
}

// EncodeResult returns the wire form of a kNN result list.
func EncodeResult(r Result) []byte {
	dst := make([]byte, 0, 8+4+16*len(r.Neighbors))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(r.RID))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Neighbors)))
	for _, nb := range r.Neighbors {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(nb.ID))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(nb.Dist))
	}
	return dst
}

// DecodeResult parses a Result produced by EncodeResult.
func DecodeResult(b []byte) (Result, error) {
	if len(b) < 12 {
		return Result{}, fmt.Errorf("codec: result truncated: %d bytes", len(b))
	}
	r := Result{RID: int64(binary.LittleEndian.Uint64(b))}
	n := int(binary.LittleEndian.Uint32(b[8:]))
	if n < 0 || len(b) < 12+16*n {
		return Result{}, fmt.Errorf("codec: result truncated: n=%d, have %d bytes", n, len(b))
	}
	r.Neighbors = make([]Neighbor, n)
	off := 12
	for i := 0; i < n; i++ {
		r.Neighbors[i].ID = int64(binary.LittleEndian.Uint64(b[off:]))
		r.Neighbors[i].Dist = math.Float64frombits(binary.LittleEndian.Uint64(b[off+8:]))
		off += 16
	}
	return r, nil
}
