package codec

import (
	"testing"

	"knnjoin/internal/vector"
)

// Fuzz targets: every decoder must reject or correctly parse arbitrary
// bytes without panicking — these records cross the shuffle, so a
// malformed buffer must never take down a task.

func FuzzDecodeObject(f *testing.F) {
	f.Add(EncodeObject(Object{ID: 1, Point: vector.Point{1, 2, 3}}))
	f.Add(EncodeObject(Object{ID: -9, Point: nil}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		o, n, err := DecodeObject(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Round trip must be stable.
		again, n2, err := DecodeObject(EncodeObject(o))
		if err != nil || n2 <= 0 {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.ID != o.ID || again.Point.Dim() != o.Point.Dim() {
			t.Fatal("round trip changed the object")
		}
	})
}

func FuzzDecodeTagged(f *testing.F) {
	f.Add(EncodeTagged(Tagged{Object: Object{ID: 5, Point: vector.Point{1}}, Src: FromR, Partition: 2, PivotDist: 3}))
	f.Add(EncodeTagged(Tagged{Object: Object{ID: 0}, Src: FromS}))
	f.Add([]byte("not a record"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tg, err := DecodeTagged(data)
		if err != nil {
			return
		}
		if tg.Src != FromR && tg.Src != FromS {
			t.Fatalf("accepted invalid source %q", tg.Src)
		}
		if _, err := DecodeTagged(EncodeTagged(tg)); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}

func FuzzDecodeResult(f *testing.F) {
	f.Add(EncodeResult(Result{RID: 7, Neighbors: []Neighbor{{ID: 1, Dist: 2}}}))
	f.Add(EncodeResult(Result{}))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeResult(data)
		if err != nil {
			return
		}
		if _, err := DecodeResult(EncodeResult(r)); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}
