package codec

import (
	"math"
	"testing"
	"testing/quick"

	"knnjoin/internal/vector"
)

func TestObjectRoundTrip(t *testing.T) {
	o := Object{ID: -42, Point: vector.Point{1.5, -2.25, 0, math.Pi}}
	b := EncodeObject(o)
	got, n, err := DecodeObject(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Fatalf("consumed %d of %d bytes", n, len(b))
	}
	if got.ID != o.ID || !got.Point.Equal(o.Point) {
		t.Fatalf("round trip = %+v, want %+v", got, o)
	}
}

func TestObjectZeroDim(t *testing.T) {
	o := Object{ID: 7}
	got, _, err := DecodeObject(EncodeObject(o))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 7 || got.Point.Dim() != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestObjectTruncated(t *testing.T) {
	b := EncodeObject(Object{ID: 1, Point: vector.Point{1, 2, 3}})
	for cut := 1; cut < len(b); cut++ {
		if _, _, err := DecodeObject(b[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
	if _, _, err := DecodeObject(nil); err == nil {
		t.Fatal("nil buffer not detected")
	}
}

func TestTaggedRoundTrip(t *testing.T) {
	for _, src := range []Source{FromR, FromS} {
		in := Tagged{
			Object:    Object{ID: 99, Point: vector.Point{3, 4}},
			Src:       src,
			Partition: 17,
			PivotDist: 5.5,
		}
		got, err := DecodeTagged(EncodeTagged(in))
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != in.ID || !got.Point.Equal(in.Point) || got.Src != in.Src ||
			got.Partition != in.Partition || got.PivotDist != in.PivotDist {
			t.Fatalf("round trip = %+v, want %+v", got, in)
		}
	}
}

func TestTaggedBadSource(t *testing.T) {
	b := EncodeTagged(Tagged{Object: Object{ID: 1}, Src: 'X'})
	if _, err := DecodeTagged(b); err == nil {
		t.Fatal("invalid source tag not rejected")
	}
}

func TestTaggedTruncated(t *testing.T) {
	b := EncodeTagged(Tagged{Object: Object{ID: 1, Point: vector.Point{9}}, Src: FromR})
	for cut := 1; cut < len(b); cut++ {
		if _, err := DecodeTagged(b[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestResultRoundTrip(t *testing.T) {
	in := Result{
		RID: 5,
		Neighbors: []Neighbor{
			{ID: 10, Dist: 0.5},
			{ID: 11, Dist: 1.25},
		},
	}
	got, err := DecodeResult(EncodeResult(in))
	if err != nil {
		t.Fatal(err)
	}
	if got.RID != in.RID || len(got.Neighbors) != len(in.Neighbors) {
		t.Fatalf("round trip = %+v", got)
	}
	for i := range in.Neighbors {
		if got.Neighbors[i] != in.Neighbors[i] {
			t.Fatalf("neighbor %d = %+v, want %+v", i, got.Neighbors[i], in.Neighbors[i])
		}
	}
}

func TestResultEmptyNeighbors(t *testing.T) {
	got, err := DecodeResult(EncodeResult(Result{RID: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if got.RID != 3 || len(got.Neighbors) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestResultTruncated(t *testing.T) {
	b := EncodeResult(Result{RID: 1, Neighbors: []Neighbor{{2, 3}}})
	for cut := 1; cut < len(b); cut++ {
		if _, err := DecodeResult(b[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestSourceString(t *testing.T) {
	if FromR.String() != "R" || FromS.String() != "S" {
		t.Fatal("unexpected source strings")
	}
}

// Property: Tagged round-trips for arbitrary field values, including NaN
// and infinite coordinates (bit-exact via Float64bits).
func TestTaggedRoundTripQuick(t *testing.T) {
	f := func(id int64, coords []float64, part int32, dist float64, srcBit bool) bool {
		src := FromR
		if srcBit {
			src = FromS
		}
		in := Tagged{
			Object:    Object{ID: id, Point: vector.Point(coords)},
			Src:       src,
			Partition: part,
			PivotDist: dist,
		}
		got, err := DecodeTagged(EncodeTagged(in))
		if err != nil {
			return false
		}
		if got.ID != in.ID || got.Src != in.Src || got.Partition != in.Partition {
			return false
		}
		if math.Float64bits(got.PivotDist) != math.Float64bits(in.PivotDist) {
			return false
		}
		if got.Point.Dim() != len(coords) {
			return false
		}
		for i, v := range coords {
			if math.Float64bits(got.Point[i]) != math.Float64bits(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: encoding is prefix-decodable — DecodeObject consumes exactly
// the bytes AppendObject produced even when followed by arbitrary garbage.
func TestObjectPrefixDecodableQuick(t *testing.T) {
	f := func(id int64, coords []float64, tail []byte) bool {
		o := Object{ID: id, Point: vector.Point(coords)}
		b := append(EncodeObject(o), tail...)
		got, n, err := DecodeObject(b)
		if err != nil || got.ID != id || got.Point.Dim() != len(coords) {
			return false
		}
		return n == len(b)-len(tail)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeTagged(b *testing.B) {
	in := Tagged{Object: Object{ID: 1, Point: make(vector.Point, 10)}, Src: FromS, Partition: 3, PivotDist: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = EncodeTagged(in)
	}
}

func BenchmarkDecodeTagged(b *testing.B) {
	buf := EncodeTagged(Tagged{Object: Object{ID: 1, Point: make(vector.Point, 10)}, Src: FromS})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeTagged(buf); err != nil {
			b.Fatal(err)
		}
	}
}
