package codec

import (
	"testing"

	"knnjoin/internal/vector"
)

func sampleTagged(n, dim int) []Tagged {
	out := make([]Tagged, n)
	for i := range out {
		p := make(vector.Point, dim)
		for d := range p {
			p[d] = float64(i*dim + d)
		}
		out[i] = Tagged{
			Object:    Object{ID: int64(i) - 2, Point: p}, // negative ids too
			Src:       FromS,
			Partition: int32(i % 3),
			PivotDist: float64(i) / 7,
		}
	}
	if n > 0 {
		out[0].Src = FromR
	}
	return out
}

func TestDecodeBlockRoundTrip(t *testing.T) {
	for _, dim := range []int{0, 1, 5} {
		tags := sampleTagged(9, dim)
		recs := make([][]byte, len(tags))
		for i, tg := range tags {
			recs[i] = EncodeTagged(tg)
		}
		blk, srcs, parts, err := DecodeBlock(recs)
		if err != nil {
			t.Fatal(err)
		}
		if blk.Len() != len(tags) || blk.Dim != dim {
			t.Fatalf("dim=%d: len=%d blockDim=%d", dim, blk.Len(), blk.Dim)
		}
		for i, tg := range tags {
			if blk.IDs[i] != tg.ID || blk.PivotDist[i] != tg.PivotDist ||
				srcs[i] != tg.Src || parts[i] != tg.Partition || !blk.At(i).Equal(tg.Point) {
				t.Fatalf("dim=%d row %d: round trip mismatch", dim, i)
			}
		}
	}
	// Empty group.
	blk, srcs, parts, err := DecodeBlock(nil)
	if err != nil || blk.Len() != 0 || len(srcs) != 0 || len(parts) != 0 {
		t.Fatalf("empty group: blk=%+v srcs=%v parts=%v err=%v", blk, srcs, parts, err)
	}
}

// A corrupt dim header must surface as a decode error, never as a giant
// pre-sizing allocation.
func TestDecodeBlockRejectsCorruptDimHeader(t *testing.T) {
	rec := make([]byte, 12)
	rec[8], rec[9], rec[10], rec[11] = 0xFF, 0xFF, 0xFF, 0xFF // dim = ~4.3e9
	if _, _, _, err := DecodeBlock([][]byte{rec, rec}); err == nil {
		t.Fatal("corrupt dim header accepted")
	}
}

func TestDecodeBlockRejectsMixedDims(t *testing.T) {
	a := EncodeTagged(Tagged{Object: Object{ID: 1, Point: vector.Point{1, 2}}, Src: FromR})
	b := EncodeTagged(Tagged{Object: Object{ID: 2, Point: vector.Point{1, 2, 3}}, Src: FromS})
	if _, _, _, err := DecodeBlock([][]byte{a, b}); err == nil {
		t.Fatal("mixed dimensionalities accepted")
	}
}

func TestAppendTaggedToBlockErrors(t *testing.T) {
	var blk vector.Block
	if _, _, err := AppendTaggedToBlock(&blk, []byte{1, 2}); err == nil {
		t.Fatal("truncated record accepted")
	}
	good := EncodeTagged(Tagged{Object: Object{ID: 1, Point: vector.Point{4}}, Src: FromR, PivotDist: 2})
	if _, _, err := AppendTaggedToBlock(&blk, good[:len(good)-1]); err == nil {
		t.Fatal("short record accepted")
	}
	bad := append([]byte(nil), good...)
	bad[8+4+8] = 'X' // corrupt the source tag
	if _, _, err := AppendTaggedToBlock(&blk, bad); err == nil {
		t.Fatal("bad source tag accepted")
	}
	if blk.Len() != 0 {
		t.Fatalf("failed appends mutated the block: len=%d", blk.Len())
	}
	src, part, err := AppendTaggedToBlock(&blk, good)
	if err != nil || src != FromR || part != 0 || blk.Len() != 1 {
		t.Fatalf("good append: src=%v part=%d len=%d err=%v", src, part, blk.Len(), err)
	}
}

func TestPeekSource(t *testing.T) {
	for _, want := range []Source{FromR, FromS} {
		rec := EncodeTagged(Tagged{Object: Object{ID: 1, Point: vector.Point{1, 2, 3}}, Src: want})
		got, err := PeekSource(rec)
		if err != nil || got != want {
			t.Fatalf("PeekSource = %v, %v; want %v", got, err, want)
		}
	}
	if _, err := PeekSource([]byte{1}); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestBlockObjectsAliasesCoords(t *testing.T) {
	tags := sampleTagged(4, 3)
	recs := make([][]byte, len(tags))
	for i, tg := range tags {
		recs[i] = EncodeTagged(tg)
	}
	blk, _, _, err := DecodeBlock(recs)
	if err != nil {
		t.Fatal(err)
	}
	objs := BlockObjects(blk)
	if len(objs) != 4 {
		t.Fatalf("len = %d", len(objs))
	}
	for i, o := range objs {
		if o.ID != tags[i].ID || !o.Point.Equal(tags[i].Point) {
			t.Fatalf("object %d mismatch", i)
		}
	}
	blk.Coords[0] = -1
	if objs[0].Point[0] != -1 {
		t.Fatal("BlockObjects copied coordinates instead of aliasing")
	}
}
