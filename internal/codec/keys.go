package codec

import (
	"encoding/binary"
	"math"
)

// Binary shuffle keys.
//
// The MapReduce engine sorts intermediate pairs by raw key bytes, so every
// key the join drivers emit must be byte-comparable: bytes.Compare order
// has to equal the intended numeric order. The encoders here guarantee
// that — fixed-width big-endian for unsigned reducer/partition ids, an
// offset-binary transform for signed ids, and the usual IEEE-754
// total-order transform for float suffixes — replacing the decimal string
// keys ("10" < "2" under a string sort) the drivers once built with
// strconv.

// Uint32Key returns the 4-byte big-endian encoding of v: byte order
// equals numeric order. It is the standard reducer-id key.
func Uint32Key(v uint32) []byte {
	return binary.BigEndian.AppendUint32(make([]byte, 0, 4), v)
}

// KeyUint32 decodes the leading Uint32Key prefix of key.
func KeyUint32(key []byte) uint32 {
	return binary.BigEndian.Uint32(key)
}

// AppendInt64Key appends the 8-byte order-preserving encoding of v:
// offset-binary (sign bit flipped) big-endian, so negative ids sort
// before positive ones.
func AppendInt64Key(dst []byte, v int64) []byte {
	return binary.BigEndian.AppendUint64(dst, uint64(v)^(1<<63))
}

// Int64Key returns the 8-byte order-preserving encoding of v.
func Int64Key(v int64) []byte {
	return AppendInt64Key(make([]byte, 0, 8), v)
}

// KeyInt64 decodes the leading Int64Key prefix of key.
func KeyInt64(key []byte) int64 {
	return int64(binary.BigEndian.Uint64(key) ^ (1 << 63))
}

// AppendFloat64Key appends the 8-byte total-order encoding of f: the
// IEEE-754 bits with the sign bit flipped for non-negatives and all bits
// flipped for negatives, so byte order equals numeric order (with -0 < +0
// and NaNs at the extremes).
func AppendFloat64Key(dst []byte, f float64) []byte {
	bits := math.Float64bits(f)
	if bits&(1<<63) != 0 {
		bits = ^bits
	} else {
		bits |= 1 << 63
	}
	return binary.BigEndian.AppendUint64(dst, bits)
}

// Float64Key returns the 8-byte total-order encoding of f.
func Float64Key(f float64) []byte {
	return AppendFloat64Key(make([]byte, 0, 8), f)
}

// KeyFloat64 decodes the leading Float64Key prefix of key.
func KeyFloat64(key []byte) float64 {
	bits := binary.BigEndian.Uint64(key)
	if bits&(1<<63) != 0 {
		bits &^= 1 << 63
	} else {
		bits = ^bits
	}
	return math.Float64frombits(bits)
}

// RegionKeyGroupPrefix is the byte length of a RegionKey's reducer-group
// prefix — the Job.GroupKeyPrefix for jobs keyed by RegionKey.
const RegionKeyGroupPrefix = 4

// RegionKey builds the shuffle key of the block/region join jobs (H-BRJ,
// 1-Bucket-Theta, broadcast): the reducer region id as grouping prefix,
// then the source tag and object id, so a region's objects stream to the
// reducer R-first in ascending id order — a deterministic order that no
// reducer has to re-establish.
func RegionKey(region int, t Tagged) []byte {
	dst := make([]byte, 0, RegionKeyGroupPrefix+1+8)
	dst = binary.BigEndian.AppendUint32(dst, uint32(region))
	dst = append(dst, byte(t.Src))
	return AppendInt64Key(dst, t.ID)
}

// JoinKeyGroupPrefix is the byte length of a JoinKey's reducer-group
// prefix — the Job.GroupKeyPrefix for jobs keyed by JoinKey.
const JoinKeyGroupPrefix = 4

// JoinKey builds the composite shuffle key of the pivot-based join jobs
// (PGBJ, PBJ, the range join):
//
//	group(4, big-endian) | src(1) | partition(4) | pivotDist(8) | id(8)
//
// Grouping on the 4-byte prefix gives one reduce call per reducer group,
// while the suffix secondary-sorts the group's values: all R objects
// first ('R' < 'S'), partitions ascending, and within an S partition
// ascending pivot distance with ids breaking ties — exactly the
// SortByPivotDist order the reducers need for Theorem-2 windows, now
// produced by the shuffle's sort-merge instead of an in-reducer sort.
func JoinKey(group int, t Tagged) []byte {
	dst := make([]byte, 0, JoinKeyGroupPrefix+1+4+8+8)
	dst = binary.BigEndian.AppendUint32(dst, uint32(group))
	dst = append(dst, byte(t.Src))
	dst = binary.BigEndian.AppendUint32(dst, uint32(t.Partition))
	dst = AppendFloat64Key(dst, t.PivotDist)
	return AppendInt64Key(dst, t.ID)
}
