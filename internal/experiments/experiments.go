// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) on the emulated cluster, at a laptop-friendly scale.
//
// The default reproduction scale (Scale = 1) uses a 20,000-object
// CoverType-like base dataset, so the paper's default workload
// "Forest ×10" becomes 200,000 objects, with pivot counts {200..800}
// standing in for the paper's {2000..8000} at a comparable pivot density.
// All experiments are self-joins with k = 10 and 16 nodes by default,
// mirroring §6's defaults (their cluster default is 36 nodes; 16 keeps
// wall-clock sane on one machine — the speedup experiment still sweeps
// 9/16/25/36).
//
// Each experiment returns rendered text tables whose rows correspond to
// the series of the original table or figure. Absolute numbers differ
// from the paper (different hardware, scale, and synthetic data); the
// EXPERIMENTS.md file tracks the shape comparison.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"knnjoin/internal/codec"
	"knnjoin/internal/dataset"
	"knnjoin/internal/driver"
	"knnjoin/internal/grouping"
	"knnjoin/internal/hbrj"
	"knnjoin/internal/naive"
	"knnjoin/internal/pgbj"
	"knnjoin/internal/pivot"
	"knnjoin/internal/stats"
	"knnjoin/internal/vector"
	"knnjoin/internal/voronoi"
)

// Config scales and seeds an experiment run.
type Config struct {
	// Scale multiplies dataset sizes; 1.0 is the default reproduction
	// scale (Forest×10 = 200K objects). Benchmarks and tests use ~0.02.
	Scale float64
	// Seed fixes data generation and all randomized choices.
	Seed int64
	// Nodes is the default simulated cluster size. Default 16.
	Nodes int
	// K is the default number of neighbors. Default 10.
	K int
	// SpillDir selects the out-of-core execution backend for every
	// experiment run (see driver.Config). Empty keeps runs in memory.
	SpillDir string
	// MemLimit bounds resident shuffle bytes per run; > 0 with an empty
	// SpillDir uses a temporary directory per run.
	MemLimit int64
	// Kernel selects the reduce-side distance scan tier for every
	// experiment run (see vector.Kernel). Zero value is the exact block
	// kernel.
	Kernel vector.Kernel
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Nodes <= 0 {
		c.Nodes = 16
	}
	if c.K <= 0 {
		c.K = 10
	}
	return c
}

// Runner executes experiments, caching generated datasets per
// configuration so sweeps don't pay generation repeatedly.
type Runner struct {
	cfg    Config
	forest map[int][]codec.Object // factor → Forest×factor
	osm    []codec.Object
}

// NewRunner returns a runner for the configuration.
func NewRunner(cfg Config) *Runner {
	return &Runner{cfg: cfg.withDefaults(), forest: make(map[int][]codec.Object)}
}

// Config returns the runner's effective configuration.
func (r *Runner) Config() Config { return r.cfg }

// forestBase is the size of the un-expanded Forest-like dataset.
func (r *Runner) forestBase() int {
	n := int(20000 * r.cfg.Scale)
	if n < 200 {
		n = 200
	}
	return n
}

// ForestX returns the Forest×factor dataset (factor 1 is the base).
func (r *Runner) ForestX(factor int) []codec.Object {
	if objs, ok := r.forest[factor]; ok {
		return objs
	}
	base, ok := r.forest[1]
	if !ok {
		base = dataset.Forest(r.forestBase(), r.cfg.Seed)
		r.forest[1] = base
	}
	objs := dataset.Renumber(dataset.Expand(base, factor))
	r.forest[factor] = objs
	return objs
}

// OSM returns the OSM-like dataset (half the default Forest×10 size, in
// the same spirit as the paper's 10M OSM vs 5.8M Forest ratio inverted
// for laptop scale).
func (r *Runner) OSM() []codec.Object {
	if r.osm == nil {
		n := int(100000 * r.cfg.Scale)
		if n < 500 {
			n = 500
		}
		r.osm = dataset.OSM(n, r.cfg.Seed+1)
	}
	return r.osm
}

// PivotCounts returns the sweep of pivot-set sizes standing in for the
// paper's {2000, 4000, 6000, 8000}.
func (r *Runner) PivotCounts() []int {
	out := make([]int, 4)
	for i := range out {
		f := i + 1
		n := int(200 * float64(f) * r.cfg.Scale)
		if min := r.cfg.Nodes + 4*f; n < min {
			n = min
		}
		out[i] = n
	}
	return out
}

// DefaultPivots is the |P| used by the non-sweep experiments, the second
// entry of PivotCounts (the paper settles on 4000 of {2000..8000}).
func (r *Runner) DefaultPivots() int { return r.PivotCounts()[1] }

// ExpResult is a rendered experiment.
type ExpResult struct {
	Name   string
	Title  string
	Tables []*stats.Table
	Notes  []string
}

// Render writes the result as text.
func (e *ExpResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n\n", e.Name, e.Title); err != nil {
		return err
	}
	for _, t := range e.Tables {
		if _, err := io.WriteString(w, t.String()+"\n"); err != nil {
			return err
		}
	}
	for _, n := range e.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// String renders to a string.
func (e *ExpResult) String() string {
	var b strings.Builder
	_ = e.Render(&b)
	return b.String()
}

// partitionSizes Voronoi-partitions objs with numPivots pivots chosen by
// the strategy and returns the per-partition object counts.
func (r *Runner) partitionSizes(objs []codec.Object, strategy pivot.Strategy, numPivots int) ([]int, *voronoi.Partitioner, error) {
	pivots, err := pivot.Select(strategy, objs, numPivots, pivot.Options{Seed: r.cfg.Seed})
	if err != nil {
		return nil, nil, err
	}
	pp := voronoi.NewPartitioner(pivots, vector.L2)
	counts := make([]int, numPivots)
	for _, o := range objs {
		part, _ := pp.Assign(o.Point, nil)
		counts[part]++
	}
	return counts, pp, nil
}

// Table2 reproduces Table 2: statistics of partition size per pivot
// selection strategy and pivot count.
func (r *Runner) Table2() (*ExpResult, error) {
	objs := r.ForestX(10)
	tb := &stats.Table{Header: []string{"# pivots", "strategy", "min", "max", "avg", "dev"}}
	for _, np := range r.PivotCounts() {
		for _, s := range []pivot.Strategy{pivot.Random, pivot.Farthest, pivot.KMeans} {
			counts, _, err := r.partitionSizes(objs, s, np)
			if err != nil {
				return nil, err
			}
			d := stats.DescribeInts(counts)
			tb.AddRow(np, s.String(), d.Min, d.Max, d.Avg, d.Dev)
		}
	}
	return &ExpResult{
		Name:   "table2",
		Title:  fmt.Sprintf("Partition-size statistics, Forest×10 (%d objects)", len(objs)),
		Tables: []*stats.Table{tb},
		Notes: []string{
			"paper shape: farthest selection yields extreme max/dev (outlier pivots); " +
				"random and k-means stay balanced; dev shrinks as |P| grows",
		},
	}, nil
}

// Table3 reproduces Table 3: statistics of group size under geometric
// grouping, per pivot selection strategy and pivot count.
func (r *Runner) Table3() (*ExpResult, error) {
	objs := r.ForestX(10)
	k := r.cfg.K
	tb := &stats.Table{Header: []string{"# pivots", "strategy", "min", "max", "avg", "dev"}}
	for _, np := range r.PivotCounts() {
		for _, s := range []pivot.Strategy{pivot.Random, pivot.Farthest, pivot.KMeans} {
			_, pp, err := r.partitionSizes(objs, s, np)
			if err != nil {
				return nil, err
			}
			// Build the R-side summary needed by the grouping (counts only).
			b := voronoi.NewSummaryBuilder(np, k)
			for _, o := range objs {
				part, d := pp.Assign(o.Point, nil)
				b.Add(codec.Tagged{Object: o, Src: codec.FromR, Partition: int32(part), PivotDist: d})
			}
			sum := b.Finalize()
			res, err := grouping.Geometric(pp, sum, r.cfg.Nodes)
			if err != nil {
				return nil, err
			}
			d := stats.DescribeInts(res.GroupSizes(sum))
			tb.AddRow(np, s.String(), d.Min, d.Max, d.Avg, d.Dev)
		}
	}
	return &ExpResult{
		Name:   "table3",
		Title:  fmt.Sprintf("Group-size statistics (geometric grouping, %d groups)", r.cfg.Nodes),
		Tables: []*stats.Table{tb},
		Notes: []string{
			"paper shape: farthest selection destroys group balance; random and " +
				"k-means groups stay within a fraction of a percent of the mean",
		},
	}, nil
}

// runPGBJ runs one configured PGBJ join on a fresh cluster over objs
// (self-join) and returns the report.
func (r *Runner) runPGBJ(objs []codec.Object, k, nodes, numPivots int,
	ps pivot.Strategy, gs pgbj.GroupStrategy, disableHP, disableWin bool) (*stats.Report, error) {
	return r.runPGBJOpts(objs, nodes, pgbj.Options{
		K: k, NumPivots: numPivots, PivotStrategy: ps, GroupStrategy: gs,
		Seed: r.cfg.Seed, DisableHyperplanePruning: disableHP, DisableWindowPruning: disableWin,
		Kernel: r.cfg.Kernel,
	})
}

// newEnv builds one experiment run's environment on the configured
// execution backend (in-memory by default, spilling when the Config says
// so). Callers must Close the env when its results have been read.
func (r *Runner) newEnv(nodes int) (*driver.Env, error) {
	return driver.NewEnv(driver.Config{
		Nodes: nodes, SpillDir: r.cfg.SpillDir, MemLimit: r.cfg.MemLimit,
	})
}

// newSelfJoinEnv is newEnv with objs loaded as both R and S — the setup
// every self-join experiment starts from.
func (r *Runner) newSelfJoinEnv(objs []codec.Object, nodes int) (*driver.Env, error) {
	env, err := r.newEnv(nodes)
	if err != nil {
		return nil, err
	}
	if err := env.LoadRS(objs, objs); err != nil {
		env.Close()
		return nil, err
	}
	return env, nil
}

// runPGBJOpts is runPGBJ with full control over the pgbj options.
func (r *Runner) runPGBJOpts(objs []codec.Object, nodes int, opts pgbj.Options) (*stats.Report, error) {
	env, err := r.newSelfJoinEnv(objs, nodes)
	if err != nil {
		return nil, err
	}
	defer env.Close()
	return pgbj.Run(env.Cluster, "R", "S", "out", opts)
}

// runAlgo runs one of the three compared algorithms as a self-join.
func (r *Runner) runAlgo(alg string, objs []codec.Object, k, nodes, numPivots int) (*stats.Report, error) {
	env, err := r.newSelfJoinEnv(objs, nodes)
	if err != nil {
		return nil, err
	}
	defer env.Close()
	cluster := env.Cluster
	switch alg {
	case "PGBJ":
		return pgbj.Run(cluster, "R", "S", "out", pgbj.Options{
			K: k, NumPivots: numPivots, PivotStrategy: pivot.Random,
			GroupStrategy: pgbj.Geometric, Seed: r.cfg.Seed, Kernel: r.cfg.Kernel,
		})
	case "PBJ":
		return pgbj.RunPBJ(cluster, "R", "S", "out", pgbj.Options{
			K: k, NumPivots: numPivots, PivotStrategy: pivot.Random, Seed: r.cfg.Seed,
			Kernel: r.cfg.Kernel,
		})
	case "H-BRJ":
		return hbrj.Run(cluster, "R", "S", "out", hbrj.Options{K: k})
	case "basic":
		return naive.Broadcast(cluster, "R", "S", "out",
			naive.BroadcastOptions{K: k, Kernel: r.cfg.Kernel})
	}
	return nil, fmt.Errorf("experiments: unknown algorithm %q", alg)
}

// strategyCombos are the four plotted combinations of Figure 6/7 (farthest
// selection is excluded exactly as the paper excludes it: its partitions
// are so skewed the join would dominate the plot).
var strategyCombos = []struct {
	name string
	ps   pivot.Strategy
	gs   pgbj.GroupStrategy
}{
	{"RGE", pivot.Random, pgbj.Geometric},
	{"RGR", pivot.Random, pgbj.Greedy},
	{"KGE", pivot.KMeans, pgbj.Geometric},
	{"KGR", pivot.KMeans, pgbj.Greedy},
}

// Fig6and7 reproduces Figure 6 (per-phase running time of RGE/RGR/KGE/KGR
// at each pivot count) and Figure 7 (computation selectivity and average
// replication of S vs pivot count) from one sweep.
func (r *Runner) Fig6and7() (*ExpResult, *ExpResult, error) {
	objs := r.ForestX(10)
	k, nodes := r.cfg.K, r.cfg.Nodes

	fig6 := &stats.Table{Header: []string{"|P|", "combo", "pivot sel", "partition", "index merge", "grouping", "knn join", "total"}}
	fig7a := &stats.Table{Header: []string{"|P|", "combo", "selectivity (‰)", "avg replication"}}
	for _, np := range r.PivotCounts() {
		for _, combo := range strategyCombos {
			rep, err := r.runPGBJ(objs, k, nodes, np, combo.ps, combo.gs, false, false)
			if err != nil {
				return nil, nil, err
			}
			fig6.AddRow(np, combo.name,
				rep.PhaseWall("Pivot Selection"),
				rep.PhaseWall("Data Partitioning"),
				rep.PhaseWall("Index Merging"),
				rep.PhaseWall("Partition Grouping"),
				rep.PhaseWall("KNN Join"),
				rep.TotalWall())
			fig7a.AddRow(np, combo.name, rep.Selectivity()*1000, rep.AvgReplication())
		}
	}
	res6 := &ExpResult{
		Name:   "fig6",
		Title:  fmt.Sprintf("Query cost of tuning parameters (Forest×10, k=%d, %d nodes)", k, nodes),
		Tables: []*stats.Table{fig6},
		Notes: []string{
			"paper shape: k-means selection (KGE/KGR) pays heavy pivot-selection time; " +
				"greedy grouping (RGR/KGR) pays heavy grouping time; join time is flat across groupings",
			"farthest selection omitted, as in the paper (>10000s there)",
		},
	}
	res7 := &ExpResult{
		Name:   "fig7",
		Title:  "Computation selectivity & replication vs |P|",
		Tables: []*stats.Table{fig7a},
		Notes: []string{
			"paper shape: selectivity is U-shaped in |P| (minimum near the second pivot count); " +
				"replication decreases monotonically with |P|; greedy slightly below geometric",
		},
	}
	return res6, res7, nil
}

// effectOfK renders Figure 8/9: running time, selectivity and shuffle
// cost of H-BRJ, PBJ and PGBJ as k sweeps.
func (r *Runner) effectOfK(name, title string, objs []codec.Object, ks []int) (*ExpResult, error) {
	tb := &stats.Table{Header: []string{"k", "algo", "time", "sim Mdist", "selectivity (‰)", "shuffle"}}
	numPivots := r.DefaultPivots()
	for _, k := range ks {
		for _, alg := range []string{"H-BRJ", "PBJ", "PGBJ"} {
			rep, err := r.runAlgo(alg, objs, k, r.cfg.Nodes, numPivots)
			if err != nil {
				return nil, err
			}
			tb.AddRow(k, alg, rep.TotalWall(), float64(rep.SimMakespan)/1e6,
				rep.Selectivity()*1000, stats.FormatBytes(rep.ShuffleBytes))
		}
	}
	return &ExpResult{
		Name:   name,
		Title:  title,
		Tables: []*stats.Table{tb},
		Notes: []string{
			"paper shape: PGBJ < PBJ < H-BRJ in time and selectivity at every k; " +
				"PGBJ's shuffle is nearly flat in k while PBJ/H-BRJ grow linearly",
		},
	}, nil
}

// Fig8 reproduces Figure 8: effect of k on Forest×10.
func (r *Runner) Fig8() (*ExpResult, error) {
	objs := r.ForestX(10)
	return r.effectOfK("fig8",
		fmt.Sprintf("Effect of k over Forest×10 (%d objects)", len(objs)),
		objs, []int{10, 20, 30, 40, 50})
}

// Fig9 reproduces Figure 9: effect of k on the OSM-like dataset.
func (r *Runner) Fig9() (*ExpResult, error) {
	objs := r.OSM()
	return r.effectOfK("fig9",
		fmt.Sprintf("Effect of k over OSM (%d objects, 2-d skewed)", len(objs)),
		objs, []int{10, 20, 30, 40, 50})
}

// Fig10 reproduces Figure 10: effect of dimensionality (2–10 d).
func (r *Runner) Fig10() (*ExpResult, error) {
	full := r.ForestX(10)
	tb := &stats.Table{Header: []string{"dims", "algo", "time", "sim Mdist", "selectivity (‰)", "shuffle"}}
	numPivots := r.DefaultPivots()
	for _, d := range []int{2, 4, 6, 8, 10} {
		objs := dataset.Project(full, d)
		for _, alg := range []string{"H-BRJ", "PBJ", "PGBJ"} {
			rep, err := r.runAlgo(alg, objs, r.cfg.K, r.cfg.Nodes, numPivots)
			if err != nil {
				return nil, err
			}
			tb.AddRow(d, alg, rep.TotalWall(), float64(rep.SimMakespan)/1e6,
				rep.Selectivity()*1000, stats.FormatBytes(rep.ShuffleBytes))
		}
	}
	return &ExpResult{
		Name:   "fig10",
		Title:  "Effect of dimensionality over Forest×10",
		Tables: []*stats.Table{tb},
		Notes: []string{
			"paper shape: H-BRJ degrades fastest with dimension; PGBJ's shuffle grows " +
				"steeply 2→6 then flattens 6→10 (low-variance tail attributes)",
		},
	}, nil
}

// Fig11 reproduces Figure 11: scalability with dataset size ×1..×25.
func (r *Runner) Fig11() (*ExpResult, error) {
	tb := &stats.Table{Header: []string{"size ×", "objects", "algo", "time", "sim Mdist", "selectivity (‰)", "shuffle"}}
	numPivots := r.DefaultPivots()
	for _, factor := range []int{1, 5, 10, 15, 20, 25} {
		objs := r.ForestX(factor)
		for _, alg := range []string{"H-BRJ", "PBJ", "PGBJ"} {
			rep, err := r.runAlgo(alg, objs, r.cfg.K, r.cfg.Nodes, numPivots)
			if err != nil {
				return nil, err
			}
			tb.AddRow(factor, len(objs), alg, rep.TotalWall(), float64(rep.SimMakespan)/1e6,
				rep.Selectivity()*1000, stats.FormatBytes(rep.ShuffleBytes))
		}
	}
	return &ExpResult{
		Name:   "fig11",
		Title:  "Scalability: Forest ×1..×25",
		Tables: []*stats.Table{tb},
		Notes: []string{
			"paper shape: all algorithms grow superlinearly with size; PGBJ grows slowest " +
				"(≈6× faster than H-BRJ at ×25 in the paper)",
		},
	}, nil
}

// Fig12 reproduces Figure 12: speedup with 9/16/25/36 nodes.
func (r *Runner) Fig12() (*ExpResult, error) {
	objs := r.ForestX(10)
	tb := &stats.Table{Header: []string{"nodes", "algo", "time", "sim Mdist", "selectivity (‰)", "shuffle"}}
	for _, nodes := range []int{9, 16, 25, 36} {
		numPivots := r.DefaultPivots()
		if numPivots < nodes {
			numPivots = nodes
		}
		for _, alg := range []string{"H-BRJ", "PBJ", "PGBJ"} {
			rep, err := r.runAlgo(alg, objs, r.cfg.K, nodes, numPivots)
			if err != nil {
				return nil, err
			}
			tb.AddRow(nodes, alg, rep.TotalWall(), float64(rep.SimMakespan)/1e6,
				rep.Selectivity()*1000, stats.FormatBytes(rep.ShuffleBytes))
		}
	}
	return &ExpResult{
		Name:   "fig12",
		Title:  "Speedup: 9–36 nodes over Forest×10",
		Tables: []*stats.Table{tb},
		Notes: []string{
			"paper shape: simulated cost (sim Mdist) drops with node count for all three; " +
				"PGBJ's selectivity is constant in N while PBJ/H-BRJ selectivity grows; " +
				"shuffle grows with node count",
			"wall time on one machine saturates at the physical core count; " +
				"the simulated makespan column carries the speedup shape",
		},
	}, nil
}

// Ablation is an extension beyond the paper: it toggles PGBJ's two
// reducer-side pruning rules to quantify each one's contribution to the
// computation selectivity.
func (r *Runner) Ablation() (*ExpResult, error) {
	objs := r.ForestX(5)
	tb := &stats.Table{Header: []string{"config", "selectivity (‰)", "pairs", "time"}}
	for _, row := range []struct {
		name                    string
		noHP, noWindow, noOrder bool
	}{
		{"full pruning", false, false, false},
		{"no hyperplane (Cor. 1)", true, false, false},
		{"no window (Thm. 2)", false, true, false},
		{"no nearest-first order (Alg. 3 l.14)", false, false, true},
		{"no pruning", true, true, false},
	} {
		rep, err := r.runPGBJOpts(objs, r.cfg.Nodes, pgbj.Options{
			K: r.cfg.K, NumPivots: r.DefaultPivots(), PivotStrategy: pivot.Random,
			GroupStrategy: pgbj.Geometric, Seed: r.cfg.Seed,
			DisableHyperplanePruning: row.noHP, DisableWindowPruning: row.noWindow,
			DisableNearestFirstOrder: row.noOrder, Kernel: r.cfg.Kernel,
		})
		if err != nil {
			return nil, err
		}
		tb.AddRow(row.name, rep.Selectivity()*1000, rep.Pairs, rep.TotalWall())
	}
	return &ExpResult{
		Name:   "ablation",
		Title:  "Pruning-rule ablation (PGBJ, Forest×5)",
		Tables: []*stats.Table{tb},
		Notes: []string{
			"extension beyond the paper: isolates Corollary 1 vs Theorem 2 contributions and the " +
				"nearest-first partition order whose early θ-tightening powers both",
		},
	}, nil
}

// GroupingCost is a second extension: exact replication (Theorem 7) under
// geometric vs greedy grouping across pivot counts.
func (r *Runner) GroupingCost() (*ExpResult, error) {
	objs := r.ForestX(10)
	tb := &stats.Table{Header: []string{"|P|", "grouping", "avg replication", "grouping time"}}
	for _, np := range r.PivotCounts() {
		for _, gs := range []pgbj.GroupStrategy{pgbj.Geometric, pgbj.Greedy} {
			rep, err := r.runPGBJ(objs, r.cfg.K, r.cfg.Nodes, np, pivot.Random, gs, false, false)
			if err != nil {
				return nil, err
			}
			tb.AddRow(np, gs.String(), rep.AvgReplication(), rep.PhaseWall("Partition Grouping"))
		}
	}
	return &ExpResult{
		Name:   "grouping-cost",
		Title:  "Replication: geometric vs greedy grouping (Theorem 7 realized)",
		Tables: []*stats.Table{tb},
		Notes:  []string{"paper §6.1.3: greedy trims replication slightly but its grouping phase dominates"},
	}, nil
}

// All runs every experiment in paper order and writes them to w.
func (r *Runner) All(w io.Writer) error {
	run := func(res *ExpResult, err error) error {
		if err != nil {
			return err
		}
		return res.Render(w)
	}
	if err := run(r.Table2()); err != nil {
		return err
	}
	if err := run(r.Table3()); err != nil {
		return err
	}
	f6, f7, err := r.Fig6and7()
	if err != nil {
		return err
	}
	if err := f6.Render(w); err != nil {
		return err
	}
	if err := f7.Render(w); err != nil {
		return err
	}
	for _, f := range []func() (*ExpResult, error){
		r.Fig8, r.Fig9, r.Fig10, r.Fig11, r.Fig12,
		r.Ablation, r.GroupingCost, r.ZKNN, r.LSH, r.Baselines, r.TopKPairs, r.RangeJoinExp, r.Skew, r.SetSim, r.Centralized,
	} {
		if err := run(f()); err != nil {
			return err
		}
	}
	return nil
}
