package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// quickCfg keeps experiment tests fast: ~400-object base (Forest×10 =
// 4000 objects), 4 nodes.
func quickCfg() Config {
	return Config{Scale: 0.02, Seed: 1, Nodes: 4, K: 5}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 1 || c.Nodes != 16 || c.K != 10 {
		t.Fatalf("defaults = %+v", c)
	}
}

func TestRunnerDatasetsCached(t *testing.T) {
	r := NewRunner(quickCfg())
	a := r.ForestX(10)
	b := r.ForestX(10)
	if &a[0] != &b[0] {
		t.Fatal("ForestX not cached")
	}
	if len(r.ForestX(2)) != 2*len(r.ForestX(1)) {
		t.Fatal("expansion factor wrong")
	}
	if len(r.OSM()) == 0 || r.OSM()[0].Point.Dim() != 2 {
		t.Fatal("OSM dataset wrong shape")
	}
}

func TestPivotCountsMonotone(t *testing.T) {
	r := NewRunner(quickCfg())
	pcs := r.PivotCounts()
	if len(pcs) != 4 {
		t.Fatalf("got %d pivot counts", len(pcs))
	}
	for i := 1; i < len(pcs); i++ {
		if pcs[i] <= pcs[i-1] {
			t.Fatalf("pivot counts not increasing: %v", pcs)
		}
	}
	if r.DefaultPivots() != pcs[1] {
		t.Fatal("DefaultPivots is not the second sweep entry")
	}
}

func TestTable2Renders(t *testing.T) {
	r := NewRunner(quickCfg())
	res, err := r.Table2()
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	for _, want := range []string{"table2", "random", "farthest", "kmeans", "dev"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// 4 pivot counts × 3 strategies = 12 data rows.
	if rows := len(res.Tables[0].Rows); rows != 12 {
		t.Fatalf("rows = %d, want 12", rows)
	}
}

// The paper's Table 2 finding must reproduce at any scale: farthest
// selection's max partition dwarfs random selection's.
func TestTable2FarthestSkew(t *testing.T) {
	r := NewRunner(quickCfg())
	objs := r.ForestX(10)
	randCounts, _, err := r.partitionSizes(objs, 0, r.PivotCounts()[0])
	if err != nil {
		t.Fatal(err)
	}
	farCounts, _, err := r.partitionSizes(objs, 1, r.PivotCounts()[0])
	if err != nil {
		t.Fatal(err)
	}
	maxOf := func(xs []int) int {
		m := 0
		for _, x := range xs {
			if x > m {
				m = x
			}
		}
		return m
	}
	if maxOf(farCounts) <= maxOf(randCounts) {
		t.Fatalf("farthest max %d not above random max %d", maxOf(farCounts), maxOf(randCounts))
	}
}

func TestTable3Renders(t *testing.T) {
	r := NewRunner(quickCfg())
	res, err := r.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if rows := len(res.Tables[0].Rows); rows != 12 {
		t.Fatalf("rows = %d, want 12", rows)
	}
}

func TestFig6and7(t *testing.T) {
	r := NewRunner(quickCfg())
	f6, f7, err := r.Fig6and7()
	if err != nil {
		t.Fatal(err)
	}
	if rows := len(f6.Tables[0].Rows); rows != 16 { // 4 |P| × 4 combos
		t.Fatalf("fig6 rows = %d, want 16", rows)
	}
	if rows := len(f7.Tables[0].Rows); rows != 16 {
		t.Fatalf("fig7 rows = %d, want 16", rows)
	}
	for _, combo := range []string{"RGE", "RGR", "KGE", "KGR"} {
		if !strings.Contains(f6.String(), combo) {
			t.Fatalf("fig6 missing combo %s", combo)
		}
	}
}

func TestFig8(t *testing.T) {
	r := NewRunner(quickCfg())
	res, err := r.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if rows := len(res.Tables[0].Rows); rows != 15 { // 5 k × 3 algos
		t.Fatalf("rows = %d, want 15", rows)
	}
	for _, alg := range []string{"H-BRJ", "PBJ", "PGBJ"} {
		if !strings.Contains(res.String(), alg) {
			t.Fatalf("missing algorithm %s", alg)
		}
	}
}

func TestFig9(t *testing.T) {
	r := NewRunner(quickCfg())
	res, err := r.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if rows := len(res.Tables[0].Rows); rows != 15 {
		t.Fatalf("rows = %d, want 15", rows)
	}
}

func TestFig10(t *testing.T) {
	r := NewRunner(quickCfg())
	res, err := r.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if rows := len(res.Tables[0].Rows); rows != 15 { // 5 dims × 3 algos
		t.Fatalf("rows = %d, want 15", rows)
	}
}

func TestFig11(t *testing.T) {
	cfg := quickCfg()
	cfg.Scale = 0.01 // ×25 would otherwise dominate test time
	r := NewRunner(cfg)
	res, err := r.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if rows := len(res.Tables[0].Rows); rows != 18 { // 6 sizes × 3 algos
		t.Fatalf("rows = %d, want 18", rows)
	}
}

func TestFig12(t *testing.T) {
	r := NewRunner(quickCfg())
	res, err := r.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if rows := len(res.Tables[0].Rows); rows != 12 { // 4 node counts × 3 algos
		t.Fatalf("rows = %d, want 12", rows)
	}
}

func TestAblation(t *testing.T) {
	r := NewRunner(quickCfg())
	res, err := r.Ablation()
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	// "no pruning" must report more pairs than "full pruning".
	full, none := rows[0], rows[4]
	if full[0] != "full pruning" || none[0] != "no pruning" {
		t.Fatalf("unexpected row order: %v / %v", full, none)
	}
}

func TestGroupingCost(t *testing.T) {
	r := NewRunner(quickCfg())
	res, err := r.GroupingCost()
	if err != nil {
		t.Fatal(err)
	}
	if rows := len(res.Tables[0].Rows); rows != 8 { // 4 |P| × 2 groupings
		t.Fatalf("rows = %d, want 8", rows)
	}
}

func TestZKNNExperiment(t *testing.T) {
	r := NewRunner(quickCfg())
	res, err := r.ZKNN()
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 5 { // exact + 4 shift counts
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	if rows[0][1] != "1" { // exact PGBJ recall is 1.000
		t.Fatalf("exact recall cell = %q, want 1", rows[0][1])
	}
}

func TestLSHExperiment(t *testing.T) {
	r := NewRunner(quickCfg())
	res, err := r.LSH()
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 6 { // exact + 4 table counts + H-zkNNJ
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	if rows[0][1] != "1" {
		t.Fatalf("exact recall cell = %q, want 1", rows[0][1])
	}
}

func TestBaselinesExperiment(t *testing.T) {
	r := NewRunner(quickCfg())
	res, err := r.Baselines()
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	// The broadcast strategy replicates S to every node; nothing may
	// replicate more.
	if rows[0][0] != "basic (broadcast)" {
		t.Fatalf("first row = %q", rows[0][0])
	}
}

func TestTopKPairsExperiment(t *testing.T) {
	r := NewRunner(quickCfg())
	res, err := r.TopKPairs()
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 8 { // 4 k values × 2 methods
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	for _, row := range rows {
		if row[5] != "true" {
			t.Fatalf("top-k row %v reported inexact results", row)
		}
	}
}

func TestSetSimExperiment(t *testing.T) {
	r := NewRunner(quickCfg())
	res, err := r.SetSim()
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, row := range rows {
		if row[5] != "true" {
			t.Fatalf("setsim row %v reported inexact results", row)
		}
	}
}

func TestSkewExperiment(t *testing.T) {
	r := NewRunner(quickCfg())
	res, err := r.Skew()
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 6 { // 3 pivot strategies + H-BRJ + broadcast + theta
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	skewOf := func(row []string) float64 {
		var v float64
		if _, err := fmt.Sscanf(row[1], "%f", &v); err != nil {
			t.Fatalf("bad skew cell %q", row[1])
		}
		return v
	}
	// Every skew is ≥ 1 by definition; farthest selection must be the
	// most skewed of the PGBJ rows.
	for _, row := range rows {
		if skewOf(row) < 1 {
			t.Fatalf("row %v has skew < 1", row)
		}
	}
	if skewOf(rows[2]) <= skewOf(rows[0]) {
		t.Fatalf("farthest skew %v not above random %v", skewOf(rows[2]), skewOf(rows[0]))
	}
}

func TestRangeJoinExperiment(t *testing.T) {
	r := NewRunner(quickCfg())
	res, err := r.RangeJoinExp()
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, row := range rows {
		if row[5] != "true" {
			t.Fatalf("range row %v reported inexact results", row)
		}
	}
}

func TestCentralizedExperiment(t *testing.T) {
	r := NewRunner(quickCfg())
	res, err := r.Centralized()
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 (nested loop, R-tree, MuX, Gorder, iDistance, vindex)", len(rows))
	}
	for _, row := range rows {
		if row[3] != "true" {
			t.Fatalf("method %q reported inexact results", row[0])
		}
	}
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	cfg := quickCfg()
	cfg.Scale = 0.008
	r := NewRunner(cfg)
	var b strings.Builder
	if err := r.All(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range []string{"table2", "table3", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "ablation", "grouping-cost", "zknn", "lsh", "baselines", "topk", "range", "skew", "setsim", "centralized"} {
		if !strings.Contains(out, "== "+name) {
			t.Fatalf("All output missing %s", name)
		}
	}
}
