package experiments

import (
	"fmt"
	"math"
	"time"

	"knnjoin/internal/codec"
	"knnjoin/internal/lsh"
	"knnjoin/internal/naive"
	"knnjoin/internal/pgbj"
	"knnjoin/internal/pivot"
	"knnjoin/internal/rangejoin"
	"knnjoin/internal/setsim"
	"knnjoin/internal/stats"
	"knnjoin/internal/theta"
	"knnjoin/internal/topk"
	"knnjoin/internal/vector"
	"knnjoin/internal/zknn"
)

// LSH is an extension experiment: the RankReduce-style LSH join (ref
// [15]) versus exact PGBJ and the other approximate method, H-zkNNJ —
// the recall/cost frontier of both families the paper excludes from its
// exact comparison.
func (r *Runner) LSH() (*ExpResult, error) {
	objs := r.ForestX(2)
	k := r.cfg.K
	exact, _ := naive.BruteForce(objs, objs, k, vector.L2)

	tb := &stats.Table{Header: []string{"algo", "recall", "time", "selectivity (‰)", "shuffle"}}
	addRow := func(name string, rep *stats.Report, results []codec.Result) {
		tb.AddRow(name, zknn.Recall(results, exact), rep.TotalWall(),
			rep.Selectivity()*1000, stats.FormatBytes(rep.ShuffleBytes))
	}

	pgbjRep, err := r.runAlgo("PGBJ", objs, k, r.cfg.Nodes, r.DefaultPivots())
	if err != nil {
		return nil, err
	}
	addRow("PGBJ (exact)", pgbjRep, exact)

	for _, tables := range []int{1, 2, 4, 8} {
		env, err := r.newSelfJoinEnv(objs, r.cfg.Nodes)
		if err != nil {
			return nil, err
		}
		rep, err := lsh.Run(env.Cluster, "R", "S", "out",
			lsh.Options{K: k, Tables: tables, Seed: r.cfg.Seed, Kernel: r.cfg.Kernel})
		if err != nil {
			env.Close()
			return nil, err
		}
		results, err := naive.ReadResults(env.FS, "out")
		env.Close()
		if err != nil {
			return nil, err
		}
		addRow(fmt.Sprintf("RankReduce L=%d", tables), rep, results)
	}

	env, err := r.newSelfJoinEnv(objs, r.cfg.Nodes)
	if err != nil {
		return nil, err
	}
	defer env.Close()
	zRep, err := zknn.Run(env.Cluster, "R", "S", "out", zknn.Options{K: k, Shifts: 3, Seed: r.cfg.Seed})
	if err != nil {
		return nil, err
	}
	zResults, err := naive.ReadResults(env.FS, "out")
	if err != nil {
		return nil, err
	}
	addRow("H-zkNNJ α=3", zRep, zResults)

	return &ExpResult{
		Name:   "lsh",
		Title:  fmt.Sprintf("Approximate LSH join vs exact PGBJ and H-zkNNJ (Forest×2, %d objects, k=%d)", len(objs), k),
		Tables: []*stats.Table{tb},
		Notes: []string{
			"extension beyond the paper: recall climbs with the table count L at proportional cost; " +
				"on 10-d data random projections hold locality better than a 6-bit-per-dim z-order",
		},
	}, nil
}

// Baselines is an extension experiment realizing §3's shuffle-cost
// discussion: every exact MapReduce framework in the repository on one
// workload — the basic broadcast strategy (|R|+N·|S| shuffle), H-BRJ and
// 1-Bucket-Theta (√N×√N cross-product tilings), PBJ (pruning without
// grouping) and PGBJ (|R|+α·|S|).
func (r *Runner) Baselines() (*ExpResult, error) {
	objs := r.ForestX(5)
	k, nodes := r.cfg.K, r.cfg.Nodes
	tb := &stats.Table{Header: []string{"framework", "time", "sim Mdist", "selectivity (‰)", "shuffle", "avg repl of S"}}

	type run struct {
		name string
		fn   func() (*stats.Report, error)
	}
	runs := []run{
		{"basic (broadcast)", func() (*stats.Report, error) {
			env, err := r.newSelfJoinEnv(objs, nodes)
			if err != nil {
				return nil, err
			}
			defer env.Close()
			return naive.Broadcast(env.Cluster, "R", "S", "out",
				naive.BroadcastOptions{K: k, Kernel: r.cfg.Kernel})
		}},
		{"1-Bucket-Theta", func() (*stats.Report, error) {
			env, err := r.newSelfJoinEnv(objs, nodes)
			if err != nil {
				return nil, err
			}
			defer env.Close()
			return theta.Run(env.Cluster, "R", "S", "out",
				theta.Options{K: k, Seed: r.cfg.Seed, Kernel: r.cfg.Kernel})
		}},
		{"H-BRJ", func() (*stats.Report, error) {
			return r.runAlgo("H-BRJ", objs, k, nodes, 0)
		}},
		{"PBJ", func() (*stats.Report, error) {
			return r.runAlgo("PBJ", objs, k, nodes, r.DefaultPivots())
		}},
		{"PGBJ", func() (*stats.Report, error) {
			return r.runAlgo("PGBJ", objs, k, nodes, r.DefaultPivots())
		}},
	}
	for _, rn := range runs {
		rep, err := rn.fn()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", rn.name, err)
		}
		tb.AddRow(rn.name, rep.TotalWall(), float64(rep.SimMakespan)/1e6,
			rep.Selectivity()*1000, stats.FormatBytes(rep.ShuffleBytes), rep.AvgReplication())
	}
	return &ExpResult{
		Name:   "baselines",
		Title:  fmt.Sprintf("Exact MapReduce frameworks side by side (Forest×5, %d objects, k=%d, %d nodes)", len(objs), k, nodes),
		Tables: []*stats.Table{tb},
		Notes: []string{
			"extension beyond the paper: §3's cost hierarchy realized — broadcast replicates S N times, " +
				"the cross-product tilings √N times, PGBJ only α times; " +
				"1-Bucket-Theta matches H-BRJ's costs but survives adversarial ID distributions",
		},
	}, nil
}

// SetSim is an extension experiment running the set-similarity join of
// Vernica et al. (ref [16]) — the §7 related work whose techniques the
// paper notes cannot be transferred to the kNN join. Implementing it on
// the same MapReduce engine makes that comparison concrete: a different
// join predicate (Jaccard threshold over token sets), a different
// pruning idea (frequency-ordered prefix filtering), same runtime.
func (r *Runner) SetSim() (*ExpResult, error) {
	n := int(10000 * r.cfg.Scale)
	if n < 300 {
		n = 300
	}
	records := setsim.Baskets(n, n/4+50, 5, 15, 0.2, r.cfg.Seed)
	cross := float64(n) * float64(n-1) / 2
	tb := &stats.Table{Header: []string{"threshold", "time", "verified (‰ of cross)", "output pairs", "join skew", "exact"}}
	for _, th := range []float64{0.5, 0.7, 0.9} {
		env, err := r.newEnv(r.cfg.Nodes)
		if err != nil {
			return nil, err
		}
		if err := setsim.ToDFS(env.FS, "in", records); err != nil {
			env.Close()
			return nil, err
		}
		got, rep, err := setsim.Run(env.Cluster, "in", "out", setsim.Options{Threshold: th})
		env.Close()
		if err != nil {
			return nil, err
		}
		want := setsim.BruteForce(records, th)
		exact := len(got) == len(want)
		for i := 0; exact && i < len(want); i++ {
			exact = got[i].A == want[i].A && got[i].B == want[i].B
		}
		tb.AddRow(fmt.Sprintf("%.1f", th), rep.TotalWall(), float64(rep.Pairs)/cross*1000,
			rep.OutputPairs, rep.JoinSkew, exact)
	}
	return &ExpResult{
		Name:   "setsim",
		Title:  fmt.Sprintf("Set-similarity join (ref [16], %d basket records, %d nodes)", n, r.cfg.Nodes),
		Tables: []*stats.Table{tb},
		Notes: []string{
			"extension beyond the paper: the §7 technique that does NOT transfer to kNN joins, " +
				"runnable on the same engine; prefix filtering verifies a shrinking sliver of the " +
				"cross product as the threshold rises",
		},
	}, nil
}

// Skew is an extension experiment quantifying reducer load balance —
// the §6.1.1 "unbalanced workload" discussion made measurable. The
// paper drops farthest selection from Figure 6 because its runs blew
// past 10,000s; this table shows *why* with one number: the max-over-
// mean reduce-task input of the join job, which is the factor by which
// the slowest reducer (the job's critical path) exceeds its fair share.
func (r *Runner) Skew() (*ExpResult, error) {
	objs := r.ForestX(2)
	k, nodes := r.cfg.K, r.cfg.Nodes
	tb := &stats.Table{Header: []string{"method", "join skew (max/mean)", "join phase", "sim Mdist"}}

	for _, ps := range []pivot.Strategy{pivot.Random, pivot.KMeans, pivot.Farthest} {
		rep, err := r.runPGBJ(objs, k, nodes, r.DefaultPivots(), ps, pgbj.Geometric, false, false)
		if err != nil {
			return nil, err
		}
		tb.AddRow("PGBJ + "+ps.String()+" pivots", rep.JoinSkew,
			rep.PhaseWall("KNN Join"), float64(rep.SimMakespan)/1e6)
	}
	for _, base := range []string{"H-BRJ", "basic"} {
		rep, err := r.runAlgo(base, objs, k, nodes, r.DefaultPivots())
		if err != nil {
			return nil, err
		}
		tb.AddRow(base, rep.JoinSkew, rep.Phases[0].Wall, float64(rep.SimMakespan)/1e6)
	}
	thetaEnv, err := r.newSelfJoinEnv(objs, nodes)
	if err != nil {
		return nil, err
	}
	defer thetaEnv.Close()
	thetaRep, err := theta.Run(thetaEnv.Cluster, "R", "S", "out",
		theta.Options{K: k, Seed: r.cfg.Seed, Kernel: r.cfg.Kernel})
	if err != nil {
		return nil, err
	}
	tb.AddRow("1-Bucket-Theta", thetaRep.JoinSkew, thetaRep.PhaseWall("Region Join"),
		float64(thetaRep.SimMakespan)/1e6)

	return &ExpResult{
		Name:   "skew",
		Title:  fmt.Sprintf("Reducer load balance (Forest×2, %d objects, k=%d, %d nodes)", len(objs), k, nodes),
		Tables: []*stats.Table{tb},
		Notes: []string{
			"extension beyond the paper: skew 1.0 is perfect balance; the join's critical path " +
				"scales with it — farthest selection's partition pathology (Tables 2–3) lands here, " +
				"which is why Figure 6 omits that strategy",
		},
	}, nil
}

// RangeJoinExp is an extension experiment: the θ-range join built from
// PGBJ's machinery with the fixed radius standing in for the derived
// bound θ_i — Definition 3 made distributed. It sweeps the radius and
// reports how selectivity, replication and output size scale, against
// the centralized scan's constant cross-product cost.
func (r *Runner) RangeJoinExp() (*ExpResult, error) {
	objs := r.OSM()
	if len(objs) > 40000 {
		objs = objs[:40000] // radius sweep outputs grow quadratically
	}
	nodes := r.cfg.Nodes
	tb := &stats.Table{Header: []string{"radius", "time", "selectivity (‰)", "avg repl of S", "output pairs", "exact"}}
	for _, radius := range []float64{0.05, 0.1, 0.2, 0.4} {
		env, err := r.newSelfJoinEnv(objs, nodes)
		if err != nil {
			return nil, err
		}
		rep, err := rangejoin.Run(env.Cluster, "R", "S", "out", rangejoin.Options{
			Radius: radius, NumPivots: r.DefaultPivots(), Seed: r.cfg.Seed,
			Kernel: r.cfg.Kernel,
		})
		if err != nil {
			env.Close()
			return nil, err
		}
		got, err := naive.ReadResults(env.FS, "out")
		env.Close()
		if err != nil {
			return nil, err
		}
		want := rangejoin.BruteForce(objs, objs, radius, vector.L2)
		exact := len(got) == len(want)
		var wantPairs int64
		for i := range want {
			wantPairs += int64(len(want[i].Neighbors))
			exact = exact && len(got[i].Neighbors) == len(want[i].Neighbors)
		}
		exact = exact && rep.OutputPairs == wantPairs
		tb.AddRow(fmt.Sprintf("%.2f", radius), rep.TotalWall(), rep.Selectivity()*1000,
			rep.AvgReplication(), rep.OutputPairs, exact)
	}
	return &ExpResult{
		Name:   "range",
		Title:  fmt.Sprintf("θ-range join via the PGBJ pipeline (OSM, %d objects, %d nodes)", len(objs), nodes),
		Tables: []*stats.Table{tb},
		Notes: []string{
			"extension beyond the paper: Corollary-2 routing with the radius as the bound; " +
				"replication and selectivity grow with θ while correctness is gated against brute force",
		},
	}, nil
}

// TopKPairs is an extension experiment: the top-k closest-pairs join of
// ref [11] — threshold-pruned MapReduce versus the centralized scan, with
// the exactness gate the paper's own comparisons use.
func (r *Runner) TopKPairs() (*ExpResult, error) {
	objs := r.ForestX(2)
	nodes := r.cfg.Nodes
	tb := &stats.Table{Header: []string{"k pairs", "method", "time", "computed pairs", "of cross (‰)", "exact"}}
	cross := float64(len(objs)) * float64(len(objs))

	for _, k := range []int{1, 10, 100, 1000} {
		opts := topk.Options{K: k, ExcludeSelf: true, Unordered: true, Seed: r.cfg.Seed}

		start := time.Now()
		want, bfPairs, err := topk.BruteForce(objs, objs, opts)
		if err != nil {
			return nil, err
		}
		tb.AddRow(k, "nested loop", time.Since(start), bfPairs, float64(bfPairs)/cross*1000, true)

		env, err := r.newSelfJoinEnv(objs, nodes)
		if err != nil {
			return nil, err
		}
		start = time.Now()
		got, rep, err := topk.Run(env.Cluster, "R", "S", "out", opts)
		env.Close()
		if err != nil {
			return nil, err
		}
		exact := len(got) == len(want)
		for i := 0; exact && i < len(want); i++ {
			exact = math.Abs(got[i].Dist-want[i].Dist) <= 1e-9
		}
		tb.AddRow(k, "MR top-k join", time.Since(start), rep.Pairs, float64(rep.Pairs)/cross*1000, exact)
	}
	return &ExpResult{
		Name:   "topk",
		Title:  fmt.Sprintf("Top-k closest pairs (ref [11], Forest×2, %d objects, %d nodes)", len(objs), nodes),
		Tables: []*stats.Table{tb},
		Notes: []string{
			"extension beyond the paper: the sampled threshold prunes the cross product by orders of " +
				"magnitude; the pruning weakens as k grows and the threshold admits more of the space",
		},
	}, nil
}
