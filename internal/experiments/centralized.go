package experiments

import (
	"fmt"
	"time"

	"knnjoin/internal/codec"
	"knnjoin/internal/gorder"
	"knnjoin/internal/idistance"
	"knnjoin/internal/mux"
	"knnjoin/internal/naive"
	"knnjoin/internal/rtree"
	"knnjoin/internal/stats"
	"knnjoin/internal/vector"
	"knnjoin/internal/vindex"
)

// Centralized is an extension experiment: the single-machine kNN-join
// methods of the paper's related work (§7) side by side — nested-loop
// brute force, the R-tree probe join (H-BRJ-reducer style), MuX's
// page/bucket join (refs [2][3]), Gorder (grid-order scheduled block
// join, ref [17]), the iDistance/B+-tree join (IJoin style, refs
// [19][20]), and this repository's pivot index — on one workload,
// measuring time and distance-computation selectivity.
func (r *Runner) Centralized() (*ExpResult, error) {
	objs := r.ForestX(1)
	k := r.cfg.K
	cross := float64(len(objs)) * float64(len(objs))
	tb := &stats.Table{Header: []string{"method", "time", "selectivity (‰)", "exact"}}

	// Nested loop.
	start := time.Now()
	want, pairs := naive.BruteForce(objs, objs, k, vector.L2)
	tb.AddRow("nested loop", time.Since(start), float64(pairs)/cross*1000, true)

	check := func(got []codec.Result) bool {
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].RID != want[i].RID || len(got[i].Neighbors) != len(want[i].Neighbors) {
				return false
			}
			for j := range want[i].Neighbors {
				diff := got[i].Neighbors[j].Dist - want[i].Neighbors[j].Dist
				if diff > 1e-9 || diff < -1e-9 {
					return false
				}
			}
		}
		return true
	}

	// R-tree probe join.
	start = time.Now()
	tree := rtree.Bulk(objs, rtree.Options{})
	rtRes := make([]codec.Result, len(objs))
	for i, o := range objs {
		cands := tree.KNN(o.Point, k)
		nbs := make([]codec.Neighbor, len(cands))
		for j, c := range cands {
			nbs[j] = codec.Neighbor{ID: c.ID, Dist: c.Dist}
		}
		rtRes[i] = codec.Result{RID: o.ID, Neighbors: nbs}
	}
	tb.AddRow("R-tree probes", time.Since(start), float64(tree.DistCount)/cross*1000, check(rtRes))

	// MuX (page/bucket two-granularity join, refs [2][3]).
	start = time.Now()
	muxRes, muxPairs, err := mux.Join(objs, objs, k, mux.Options{})
	if err != nil {
		return nil, err
	}
	tb.AddRow("MuX", time.Since(start), float64(muxPairs)/cross*1000, check(muxRes))

	// Gorder (grid-order scheduled block join, ref [17]).
	start = time.Now()
	goRes, goPairs, err := gorder.Join(objs, objs, k, gorder.Options{})
	if err != nil {
		return nil, err
	}
	tb.AddRow("Gorder", time.Since(start), float64(goPairs)/cross*1000, check(goRes))

	// iDistance / IJoin.
	start = time.Now()
	idRes, idIx, err := idistance.Join(objs, objs, k, idistance.Options{Seed: r.cfg.Seed})
	if err != nil {
		return nil, err
	}
	tb.AddRow("iDistance (IJoin)", time.Since(start), float64(idIx.DistCount)/cross*1000, check(idRes))

	// Pivot index (this repo's vindex).
	start = time.Now()
	vix, err := vindex.Build(objs, vindex.Options{Seed: r.cfg.Seed, BoundK: k})
	if err != nil {
		return nil, err
	}
	vRes := make([]codec.Result, len(objs))
	var vStats vindex.Stats
	for i, o := range objs {
		cands, st := vix.KNNWithStats(o.Point, k)
		vStats.Add(st)
		nbs := make([]codec.Neighbor, len(cands))
		for j, c := range cands {
			nbs[j] = codec.Neighbor{ID: c.ID, Dist: c.Dist}
		}
		vRes[i] = codec.Result{RID: o.ID, Neighbors: nbs}
	}
	tb.AddRow("pivot index (vindex)", time.Since(start), float64(vStats.DistComputations)/cross*1000, check(vRes))

	return &ExpResult{
		Name:   "centralized",
		Title:  fmt.Sprintf("Centralized kNN-join methods (Forest×1, %d objects, k=%d)", len(objs), k),
		Tables: []*stats.Table{tb},
		Notes: []string{
			"extension beyond the paper: §7's single-machine lineage made runnable; " +
				"all methods must be exact — the exact column is a correctness gate, not a result",
		},
	}, nil
}
