package experiments

import (
	"fmt"

	"knnjoin/internal/codec"
	"knnjoin/internal/naive"
	"knnjoin/internal/stats"
	"knnjoin/internal/vector"
	"knnjoin/internal/zknn"
)

// ZKNN is an extension experiment: H-zkNNJ — the approximate method the
// paper excludes (§7) — versus exact PGBJ, measuring the recall/cost
// trade-off as the shift count α grows.
func (r *Runner) ZKNN() (*ExpResult, error) {
	objs := r.ForestX(2)
	k := r.cfg.K
	exact, _ := naive.BruteForce(objs, objs, k, vector.L2)

	tb := &stats.Table{Header: []string{"algo", "recall", "time", "selectivity (‰)", "shuffle"}}
	addRow := func(name string, rep *stats.Report, results []codec.Result) {
		tb.AddRow(name, zknn.Recall(results, exact), rep.TotalWall(),
			rep.Selectivity()*1000, stats.FormatBytes(rep.ShuffleBytes))
	}

	pgbjRep, err := r.runAlgo("PGBJ", objs, k, r.cfg.Nodes, r.DefaultPivots())
	if err != nil {
		return nil, err
	}
	addRow("PGBJ (exact)", pgbjRep, exact)

	for _, shifts := range []int{1, 2, 3, 5} {
		env, err := r.newSelfJoinEnv(objs, r.cfg.Nodes)
		if err != nil {
			return nil, err
		}
		rep, err := zknn.Run(env.Cluster, "R", "S", "out", zknn.Options{K: k, Shifts: shifts, Seed: r.cfg.Seed})
		if err != nil {
			env.Close()
			return nil, err
		}
		results, err := naive.ReadResults(env.FS, "out")
		env.Close()
		if err != nil {
			return nil, err
		}
		addRow(fmt.Sprintf("H-zkNNJ α=%d", shifts), rep, results)
	}
	return &ExpResult{
		Name:   "zknn",
		Title:  fmt.Sprintf("Approximate H-zkNNJ vs exact PGBJ (Forest×2, %d objects, k=%d)", len(objs), k),
		Tables: []*stats.Table{tb},
		Notes: []string{
			"extension beyond the paper: the z-order method it excluded from the exact comparison; " +
				"recall climbs with the shift count α at proportional cost",
		},
	}, nil
}
