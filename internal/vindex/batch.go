package vindex

import (
	"fmt"

	"knnjoin/internal/nnheap"
	"knnjoin/internal/vector"
	"knnjoin/internal/voronoi"
)

// KNNBatch answers one kNN query per element of qs with a shared k,
// preserving order. It is a thin wrapper over KNNBatchWithStats.
func (ix *Index) KNNBatch(qs []vector.Point, k int) [][]nnheap.Candidate {
	ks := make([]int, len(qs))
	for i := range ks {
		ks[i] = k
	}
	res, _ := ix.KNNBatchWithStats(qs, ks)
	return res
}

// KNNBatchWithStats answers len(qs) independent kNN queries together,
// in round lockstep: in round t every live query visits the t-th
// partition of its OWN ascending pivot-distance order, and the queries
// that land on the same partition in the same round share one
// query-batched kernel sweep (vector.NearestKBatchRanges), so each
// cache-sized panel of the partition is loaded once per group instead
// of once per query. Each query's partition visit order, per-partition
// θ evolution, pruning decisions, and Theorem-2 windows are exactly
// those of a sequential KNNWithStats call, so results[i] and stats[i]
// match ix.KNNWithStats(qs[i], ks[i]) — the lockstep only changes the
// interleaving across queries, never the work of one query.
//
// Like every query method it performs no writes to the Index, so
// concurrent batches (and mixed batch/single calls) on one shared
// Index are safe.
func (ix *Index) KNNBatchWithStats(qs []vector.Point, ks []int) ([][]nnheap.Candidate, []Stats) {
	if len(qs) != len(ks) {
		panic(fmt.Sprintf("vindex: KNNBatchWithStats: %d queries, %d ks", len(qs), len(ks)))
	}
	nq := len(qs)
	results := make([][]nnheap.Candidate, nq)
	stats := make([]Stats, nq)
	if nq == 0 {
		return results, stats
	}
	m := ix.opts.Metric
	squared := m == vector.L2
	numPart := ix.pp.NumPartitions()

	// Per-query state: the same Assign → startingBound → sorted-order
	// setup KNNWithStats performs, flattened across the batch.
	heaps := make([]*nnheap.KHeap, nq)
	thetas := make([]float64, nq)
	qParts := make([]int, nq)
	qDists := make([]float64, nq)
	orderFlat := make([]int, nq*numPart)
	gapsFlat := make([]float64, nq*numPart)
	live := make([]int, 0, nq) // queries with k ≥ 1
	for i, q := range qs {
		if ks[i] <= 0 {
			continue
		}
		live = append(live, i)
		st := &stats[i]
		qParts[i], qDists[i] = ix.pp.Assign(q, &st.DistComputations)
		thetas[i] = ix.startingBound(q, ks[i], &st.DistComputations)
		order := orderFlat[i*numPart : (i+1)*numPart]
		gaps := gapsFlat[i*numPart : (i+1)*numPart]
		for j := range order {
			order[j] = j
			if j == qParts[i] {
				gaps[j] = qDists[i]
			} else {
				gaps[j] = m.Dist(q, ix.pp.Pivots[j])
				st.DistComputations++
			}
		}
		sortOrderByGap(order, gaps)
		heaps[i] = nnheap.NewKHeap(ks[i])
	}

	// Round lockstep. byPart groups this round's queries by the
	// partition they visit; group slices are reused across rounds.
	byPart := make([][]int, numPart)
	batchQ := make([]vector.Point, 0, nq)
	batchH := make([]*nnheap.KHeap, 0, nq)
	batchIdx := make([]int, 0, nq)
	lows := make([]int, 0, nq)
	highs := make([]int, 0, nq)
	touched := make([]int, 0, nq)
	for t := 0; t < numPart; t++ {
		touched = touched[:0]
		for _, i := range live {
			j := orderFlat[i*numPart+t]
			if len(byPart[j]) == 0 {
				touched = append(touched, j)
			}
			byPart[j] = append(byPart[j], i)
		}
		for _, j := range touched {
			members := byPart[j]
			byPart[j] = members[:0]
			blk := ix.blocks[j]
			if blk.Len() == 0 {
				continue
			}
			batchQ, batchH, batchIdx = batchQ[:0], batchH[:0], batchIdx[:0]
			lows, highs = lows[:0], highs[:0]
			for _, i := range members {
				st := &stats[i]
				qToPj := gapsFlat[i*numPart+j]
				if j != qParts[i] && voronoi.HyperplaneDist(qToPj, qDists[i], ix.pp.PivotDist(qParts[i], j), m) > thetas[i] {
					st.PartitionsPruned++
					continue
				}
				wLo, wHi, ok := voronoi.Theorem2Window(ix.sum.S[j], qToPj, thetas[i])
				if !ok {
					st.PartitionsPruned++
					continue
				}
				st.PartitionsScanned++
				from, to := blk.PivotDistWindow(0, blk.Len(), wLo, wHi)
				st.DistComputations += int64(to - from)
				batchQ = append(batchQ, qs[i])
				batchH = append(batchH, heaps[i])
				batchIdx = append(batchIdx, i)
				lows = append(lows, from)
				highs = append(highs, to)
			}
			if len(batchQ) == 0 {
				continue
			}
			blk.NearestKBatchRanges(batchQ, lows, highs, m, batchH)
			for _, i := range batchIdx {
				if t2 := thresholdDist(heaps[i], thetas[i], squared); t2 < thetas[i] {
					thetas[i] = t2
				}
			}
		}
	}
	for _, i := range live {
		results[i] = sortedDists(heaps[i], squared)
	}
	return results, stats
}

// sortOrderByGap sorts the partition indices in order by ascending gap
// (insertion sort over the typically small pivot count — the batched
// path runs it once per query).
func sortOrderByGap(order []int, gaps []float64) {
	for a := 1; a < len(order); a++ {
		j := order[a]
		g := gaps[j]
		b := a - 1
		for ; b >= 0 && gaps[order[b]] > g; b-- {
			order[b+1] = order[b]
		}
		order[b+1] = j
	}
}
