package vindex

import (
	"math"
	"math/rand"
	"os"
	"testing"

	"knnjoin/internal/dataset"
	"knnjoin/internal/nnheap"
	"knnjoin/internal/vector"
)

var testKernels = []vector.Kernel{
	vector.KernelBlock, vector.KernelScalar, vector.KernelF32,
	vector.KernelQuantized, vector.KernelAuto,
}

func sameCandidates(t *testing.T, got, want []nnheap.Candidate, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d candidates, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID ||
			math.Float64bits(got[i].Dist) != math.Float64bits(want[i].Dist) {
			t.Fatalf("%s pos %d: (%d, %v), want (%d, %v)",
				label, i, got[i].ID, got[i].Dist, want[i].ID, want[i].Dist)
		}
	}
}

// Every kernel tier must return the exact same neighbors and the exact
// same work accounting as the default fused float64 tier: the filter
// tiers only skip rows their certified bounds prove non-contributing,
// and the stats count windowed rows, not refined rows.
func TestKernelTiersSameKNN(t *testing.T) {
	objs := dataset.Forest(2500, 3)
	ix, err := Build(objs, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	queries := make([]vector.Point, 25)
	for i := range queries {
		q := objs[rng.Intn(len(objs))].Point.Clone()
		for d := range q {
			q[d] += rng.NormFloat64() * 5
		}
		queries[i] = q
	}
	type answer struct {
		res []nnheap.Candidate
		st  Stats
	}
	base := make([]answer, len(queries))
	for i, q := range queries {
		base[i].res, base[i].st = ix.KNNWithStats(q, 10)
	}
	for _, kern := range testKernels[1:] {
		ix.SetKernel(kern)
		for i, q := range queries {
			res, st := ix.KNNWithStats(q, 10)
			sameCandidates(t, res, base[i].res, kern.String())
			if st != base[i].st {
				t.Fatalf("%v query %d: stats %+v, want %+v", kern, i, st, base[i].st)
			}
		}
	}
}

// The round-lockstep batch must be indistinguishable from sequential
// per-query calls — results and stats — on every kernel tier.
func TestKNNBatchMatchesSequential(t *testing.T) {
	objs := dataset.OSM(3000, 5)
	ix, err := Build(objs, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	qs := make([]vector.Point, 40)
	ks := make([]int, len(qs))
	for i := range qs {
		qs[i] = vector.Point{rng.Float64()*360 - 180, rng.Float64()*170 - 85}
		ks[i] = rng.Intn(12) // includes k=0 → nil result
	}
	for _, kern := range testKernels {
		ix.SetKernel(kern)
		gotRes, gotSt := ix.KNNBatchWithStats(qs, ks)
		for i := range qs {
			wantRes, wantSt := ix.KNNWithStats(qs[i], ks[i])
			sameCandidates(t, gotRes[i], wantRes, kern.String())
			if gotSt[i] != wantSt {
				t.Fatalf("%v query %d: stats %+v, want %+v", kern, i, gotSt[i], wantSt)
			}
		}
	}
}

func TestKNNBatchEmptyAndDegenerate(t *testing.T) {
	objs := dataset.Uniform(50, 2, 10, 3)
	ix, err := Build(objs, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, st := ix.KNNBatchWithStats(nil, nil)
	if len(res) != 0 || len(st) != 0 {
		t.Fatalf("empty batch returned %d/%d entries", len(res), len(st))
	}
	res = ix.KNNBatch([]vector.Point{{5, 5}}, 100)
	if len(res[0]) != 50 {
		t.Fatalf("k>n returned %d", len(res[0]))
	}
}

// Save/Load round-trips must keep block-kernel queries exact: the
// loaded index rebuilds its partition blocks from the stored Tagged
// records and SetKernel re-attaches tiers.
func TestLoadRebuildsBlocks(t *testing.T) {
	objs := dataset.Forest(800, 9)
	ix, err := Build(objs, Options{Seed: 4, Kernel: vector.KernelQuantized})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Kernel() != vector.KernelQuantized {
		t.Fatalf("Kernel() = %v", ix.Kernel())
	}
	q := objs[13].Point
	want := ix.KNN(q, 7)

	dir := t.TempDir()
	path := dir + "/ix.bin"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	ld, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if ld.Kernel() != vector.KernelBlock {
		t.Fatalf("loaded kernel = %v, want block (format records no tier)", ld.Kernel())
	}
	sameCandidates(t, ld.KNN(q, 7), want, "loaded/block")
	ld.SetKernel(vector.KernelF32)
	sameCandidates(t, ld.KNN(q, 7), want, "loaded/f32")
}
