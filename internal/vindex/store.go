package vindex

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"knnjoin/internal/codec"
	"knnjoin/internal/vector"
	"knnjoin/internal/voronoi"
)

// The on-disk format is a versioned little-endian binary stream:
//
//	magic "KNNVIDX1" | metric | boundK | numPivots
//	pivots (dim + coords each)
//	summary rows (R and S, with KDists)
//	partitions (count + Tagged records via codec)
//
// Everything an Index needs is self-contained, so Load rebuilds pivot
// distance matrices rather than storing the O(|P|²) matrix.

var storeMagic = [8]byte{'K', 'N', 'N', 'V', 'I', 'D', 'X', '1'}

// Save writes the index to w in the versioned binary format.
func (ix *Index) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(storeMagic[:]); err != nil {
		return err
	}
	writeU32 := func(v uint32) { binary.Write(bw, binary.LittleEndian, v) }
	writeF64 := func(v float64) { binary.Write(bw, binary.LittleEndian, math.Float64bits(v)) }

	writeU32(uint32(ix.opts.Metric))
	writeU32(uint32(ix.opts.BoundK))
	writeU32(uint32(ix.pp.NumPartitions()))

	// Pivots.
	for _, p := range ix.pp.Pivots {
		writeU32(uint32(p.Dim()))
		for _, v := range p {
			writeF64(v)
		}
	}
	// Summary rows.
	for i := 0; i < ix.pp.NumPartitions(); i++ {
		r := ix.sum.R[i]
		writeU32(uint32(r.Count))
		writeF64(r.L)
		writeF64(r.U)
		s := ix.sum.S[i]
		writeU32(uint32(s.Count))
		writeF64(s.L)
		writeF64(s.U)
		writeU32(uint32(len(s.KDists)))
		for _, d := range s.KDists {
			writeF64(d)
		}
	}
	// Partitions.
	for _, part := range ix.part {
		writeU32(uint32(len(part)))
		for _, t := range part {
			rec := codec.EncodeTagged(t)
			writeU32(uint32(len(rec)))
			if _, err := bw.Write(rec); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadFile reads an index file written by Save — the shared open/load/
// close path of every consumer that loads indexes from disk (knnindex,
// knnserve startup, the serve layer's /reload).
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Load reads an index written by Save.
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("vindex: reading magic: %w", err)
	}
	if magic != storeMagic {
		return nil, fmt.Errorf("vindex: bad magic %q (not an index file?)", magic)
	}
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	readF64 := func() (float64, error) {
		var v uint64
		err := binary.Read(br, binary.LittleEndian, &v)
		return math.Float64frombits(v), err
	}

	metricRaw, err := readU32()
	if err != nil {
		return nil, err
	}
	boundK, err := readU32()
	if err != nil {
		return nil, err
	}
	numPivots, err := readU32()
	if err != nil {
		return nil, err
	}
	if numPivots == 0 || numPivots > 1<<24 {
		return nil, fmt.Errorf("vindex: implausible pivot count %d", numPivots)
	}
	if boundK == 0 || boundK > 1<<20 {
		return nil, fmt.Errorf("vindex: implausible boundK %d", boundK)
	}
	metric := vector.Metric(metricRaw)
	if metric != vector.L2 && metric != vector.L1 && metric != vector.LInf {
		return nil, fmt.Errorf("vindex: unknown metric %d", metricRaw)
	}

	pivots := make([]vector.Point, numPivots)
	for i := range pivots {
		dim, err := readU32()
		if err != nil {
			return nil, err
		}
		if dim > 1<<16 {
			return nil, fmt.Errorf("vindex: implausible dimensionality %d", dim)
		}
		p := make(vector.Point, dim)
		for d := range p {
			if p[d], err = readF64(); err != nil {
				return nil, err
			}
		}
		pivots[i] = p
	}

	sum := &voronoi.Summary{
		K: int(boundK),
		R: make([]voronoi.RSummary, numPivots),
		S: make([]voronoi.SSummary, numPivots),
	}
	for i := 0; i < int(numPivots); i++ {
		cnt, err := readU32()
		if err != nil {
			return nil, err
		}
		sum.R[i].Count = int(cnt)
		if sum.R[i].L, err = readF64(); err != nil {
			return nil, err
		}
		if sum.R[i].U, err = readF64(); err != nil {
			return nil, err
		}
		if cnt, err = readU32(); err != nil {
			return nil, err
		}
		sum.S[i].Count = int(cnt)
		if sum.S[i].L, err = readF64(); err != nil {
			return nil, err
		}
		if sum.S[i].U, err = readF64(); err != nil {
			return nil, err
		}
		nk, err := readU32()
		if err != nil {
			return nil, err
		}
		if nk > boundK {
			return nil, fmt.Errorf("vindex: partition %d has %d KDists > boundK %d", i, nk, boundK)
		}
		kd := make([]float64, nk)
		for j := range kd {
			if kd[j], err = readF64(); err != nil {
				return nil, err
			}
		}
		sum.S[i].KDists = kd
	}

	parts := make([][]codec.Tagged, numPivots)
	size := 0
	for i := range parts {
		n, err := readU32()
		if err != nil {
			return nil, err
		}
		if n > 1<<28 {
			return nil, fmt.Errorf("vindex: implausible partition size %d", n)
		}
		part := make([]codec.Tagged, n)
		for j := range part {
			rl, err := readU32()
			if err != nil {
				return nil, err
			}
			if rl > 1<<24 {
				return nil, fmt.Errorf("vindex: implausible record length %d", rl)
			}
			buf := make([]byte, rl)
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, err
			}
			if part[j], err = codec.DecodeTagged(buf); err != nil {
				return nil, err
			}
		}
		parts[i] = part
		size += len(part)
	}
	if size == 0 {
		return nil, fmt.Errorf("vindex: stored index is empty")
	}

	// The format predates the kernel tiers and does not record one; the
	// loaded index starts on the default fused float64 kernel and the
	// caller applies its configured tier with SetKernel.
	blocks, err := blocksFromParts(parts, vector.KernelBlock)
	if err != nil {
		return nil, err
	}
	return &Index{
		pp:     voronoi.NewPartitioner(pivots, metric),
		sum:    sum,
		part:   parts,
		blocks: blocks,
		size:   size,
		opts:   Options{Metric: metric, NumPivots: int(numPivots), BoundK: int(boundK)},
	}, nil
}
