// Package vindex turns the paper's Voronoi partitioning machinery into a
// reusable in-memory index for online queries: build once over a dataset,
// then answer kNN and range queries with the same pruning rules the
// distributed reducers use (Corollary 1 hyperplane pruning, Theorem 2
// pivot-distance windows, and an Algorithm-1-style starting bound).
//
// This is the single-machine complement to the distributed join — the
// pattern iDistance [20] pioneered and the paper's §2.3 builds on — and
// it lets applications that preprocess a dataset with PGBJ reuse the same
// partitioning for ad-hoc queries.
package vindex

import (
	"fmt"
	"math"
	"sort"

	"knnjoin/internal/codec"
	"knnjoin/internal/nnheap"
	"knnjoin/internal/pivot"
	"knnjoin/internal/vector"
	"knnjoin/internal/voronoi"
)

// Options configures index construction.
type Options struct {
	// Metric is the distance measure; zero value is L2.
	Metric vector.Metric
	// NumPivots controls partition granularity; zero picks ≈ 2·√n.
	NumPivots int
	// PivotStrategy selects §4.1's strategy; default random.
	PivotStrategy pivot.Strategy
	// Seed fixes pivot selection.
	Seed int64
	// BoundK sizes the per-partition kNN summary used for starting
	// bounds (TS's k smallest pivot distances). Queries with k ≤ BoundK
	// get tight Algorithm-1 starting bounds; larger k still works but
	// starts unbounded. Default 16.
	BoundK int
	// Kernel selects the distance scan tier of the per-partition blocks
	// (see vector.Kernel); the zero value keeps the fused float64
	// kernels. SetKernel changes it after Build or Load.
	Kernel vector.Kernel
}

func (o Options) withDefaults(n int) Options {
	if o.NumPivots <= 0 {
		o.NumPivots = 2 * intSqrt(n)
	}
	if o.NumPivots < 1 {
		o.NumPivots = 1
	}
	if o.NumPivots > n {
		o.NumPivots = n
	}
	if o.BoundK <= 0 {
		o.BoundK = 16
	}
	return o
}

func intSqrt(n int) int {
	x := 0
	for (x+1)*(x+1) <= n {
		x++
	}
	return x
}

// Index is an immutable pivot-partitioned index over a dataset. After
// Build (or Load) returns, queries never mutate the Index, so any number
// of goroutines may call KNN, Range, and the *WithStats variants on one
// shared Index concurrently.
type Index struct {
	pp   *voronoi.Partitioner
	sum  *voronoi.Summary
	part [][]codec.Tagged // per-partition objects, sorted by pivot distance
	// blocks mirrors part in the columnar vector.Block layout the reduce
	// side scans — one block per partition, rows in pivot-distance order —
	// so kNN queries run on the same tiered kernels as the joins. part is
	// kept alongside: Save and RangeSelect still walk Tagged records.
	blocks []*vector.Block
	size   int
	opts   Options
}

// Stats reports the work one query performed. The accounting that used
// to accumulate on a shared Index field (and made concurrent queries a
// data race) is instead returned per call, keeping queries side-effect
// free.
type Stats struct {
	// DistComputations counts distance evaluations — object–pivot
	// probes and object–object verifications — the paper's selectivity
	// bookkeeping (Equation 13).
	DistComputations int64
	// PartitionsScanned counts Voronoi cells whose Theorem-2 window was
	// actually examined; PartitionsPruned counts cells skipped wholesale
	// by Corollary 1 or an empty window. KNN queries fill both; Range
	// reports only DistComputations.
	PartitionsScanned int
	// PartitionsPruned counts cells skipped without touching objects.
	PartitionsPruned int
}

// Add folds another query's stats into s, for callers aggregating
// across a batch of queries.
func (s *Stats) Add(o Stats) {
	s.DistComputations += o.DistComputations
	s.PartitionsScanned += o.PartitionsScanned
	s.PartitionsPruned += o.PartitionsPruned
}

// Build constructs an index over objs. The objects are copied into
// per-partition storage; objs may be reused afterwards.
func Build(objs []codec.Object, opts Options) (*Index, error) {
	if len(objs) == 0 {
		return nil, fmt.Errorf("vindex: cannot build over an empty dataset")
	}
	opts = opts.withDefaults(len(objs))
	pivots, err := pivot.Select(opts.PivotStrategy, objs, opts.NumPivots, pivot.Options{
		Metric: opts.Metric,
		Seed:   opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	pp := voronoi.NewPartitioner(pivots, opts.Metric)
	parts := pp.Partition(objs, codec.FromS, nil)
	b := voronoi.NewSummaryBuilder(opts.NumPivots, opts.BoundK)
	for _, g := range parts {
		for _, o := range g {
			b.Add(o)
		}
		voronoi.SortByPivotDist(g)
	}
	blocks, err := blocksFromParts(parts, opts.Kernel)
	if err != nil {
		return nil, err
	}
	return &Index{pp: pp, sum: b.Finalize(), part: parts, blocks: blocks, size: len(objs), opts: opts}, nil
}

// blocksFromParts assembles the columnar per-partition blocks and
// attaches the scan tier. Partition rows must already be sorted by
// pivot distance so PivotDistWindow stays valid on the blocks.
func blocksFromParts(parts [][]codec.Tagged, kern vector.Kernel) ([]*vector.Block, error) {
	blocks := make([]*vector.Block, len(parts))
	for j, part := range parts {
		blk := &vector.Block{}
		for _, t := range part {
			if err := blk.Append(t.ID, t.PivotDist, t.Point); err != nil {
				return nil, fmt.Errorf("vindex: partition %d: %w", j, err)
			}
		}
		blk.Prepare(kern)
		blocks[j] = blk
	}
	return blocks, nil
}

// SetKernel re-resolves the scan tier of every partition block (and
// records it in the options). It MUTATES the index — call it right
// after Build or Load, before the index is shared across goroutines;
// never concurrently with queries.
func (ix *Index) SetKernel(k vector.Kernel) {
	ix.opts.Kernel = k
	for _, blk := range ix.blocks {
		blk.Prepare(k)
	}
}

// Kernel reports the configured scan tier (KernelAuto resolves per
// block; this returns the requested tier, not the per-block outcome).
func (ix *Index) Kernel() vector.Kernel { return ix.opts.Kernel }

// Len returns the number of indexed objects.
func (ix *Index) Len() int { return ix.size }

// NumPartitions returns the pivot count.
func (ix *Index) NumPartitions() int { return ix.pp.NumPartitions() }

// Dim returns the dimensionality of the indexed points.
func (ix *Index) Dim() int { return ix.pp.Pivots[0].Dim() }

// KNN returns the k nearest indexed objects to q in ascending distance
// order (distance ties by ID). Fewer than k are returned only when the
// index holds fewer objects. It is a thin wrapper over KNNWithStats for
// callers that do not need the per-query accounting.
func (ix *Index) KNN(q vector.Point, k int) []nnheap.Candidate {
	res, _ := ix.KNNWithStats(q, k)
	return res
}

// KNNWithStats is KNN plus the per-query work accounting. It performs no
// writes to the Index, so concurrent calls on one shared Index are safe.
//
// The walk is a composition of the exported pieces in route.go —
// AssignQuery, StartingBound, QueryOrder, then one KNNStep per
// partition in visit order — so the sharded router (internal/shard)
// replays the identical computation across processes.
func (ix *Index) KNNWithStats(q vector.Point, k int) ([]nnheap.Candidate, Stats) {
	var st Stats
	if k <= 0 {
		return nil, st
	}
	qPart, qDist := ix.pp.Assign(q, &st.DistComputations)

	// Starting bound: Algorithm 1 with the query's "partition" being the
	// degenerate cell {q} (U = 0), i.e. θ = k-th smallest of
	// |q,p_j| + p_j.d_i over the summary's per-partition kNN lists.
	theta := ix.startingBound(q, k, &st.DistComputations)

	// Visit partitions in ascending pivot-distance order (Algorithm 3's
	// line-14 heuristic specialized to one query).
	order, gaps := ix.QueryOrder(q, qPart, qDist, &st.DistComputations)

	// Scan on the partition blocks with the active kernel tier. Under L2
	// the heap holds SQUARED distances (the kernels' native space) and θ
	// stays in true-distance space for the windowing math; the sqrt per
	// survivor happens once at return. Tightening θ once per partition is
	// equivalent to the former per-push update: θ is only read by the
	// next partition's pruning checks.
	heap := nnheap.NewKHeap(k)
	var sc vector.Scratch
	for _, j := range order {
		theta = ix.KNNStep(j, qPart, q, qDist, gaps[j], theta, heap, &sc, &st)
	}
	return ix.FinishKNN(heap), st
}

// thresholdDist converts the heap's rejection threshold into
// true-distance space: the k-th best when the heap is full, else def.
func thresholdDist(heap *nnheap.KHeap, def float64, squared bool) float64 {
	if !heap.Full() {
		return def
	}
	t := heap.Top().Dist
	if squared {
		t = math.Sqrt(t) //lint:allow sqrtfree: one sqrt per partition step converts the squared heap bound to the true-units θ the walk prices
	}
	return t
}

// sortedDists drains the heap in ascending order, converting squared
// distances back to true distances when the scan ran in squared space.
func sortedDists(heap *nnheap.KHeap, squared bool) []nnheap.Candidate {
	res := heap.Sorted()
	if squared {
		for i := range res {
			res[i].Dist = math.Sqrt(res[i].Dist) //lint:allow sqrtfree: the emit site — query responses carry true L2 distances
		}
	}
	return res
}

// startingBound computes a valid upper bound on the k-th NN distance of q
// from the summary alone: ub = |q,p_j| + d for each of partition j's k
// smallest pivot distances d (triangle inequality). Returns +Inf when the
// summary cannot cover k objects (k > BoundK coverage). Distance
// computations accrue into distCount.
func (ix *Index) startingBound(q vector.Point, k int, distCount *int64) float64 {
	pq := nnheap.NewKHeap(k)
	m := ix.opts.Metric
	for j := range ix.sum.S {
		kd := ix.sum.S[j].KDists
		if len(kd) == 0 {
			continue
		}
		qToPj := m.Dist(q, ix.pp.Pivots[j])
		*distCount++
		for _, d := range kd { // ascending
			ub := qToPj + d
			if pq.Full() && ub >= pq.Top().Dist {
				break
			}
			pq.Push(nnheap.Candidate{Dist: ub})
		}
	}
	if !pq.Full() {
		return math.Inf(1)
	}
	return pq.Top().Dist
}

// Range returns all indexed objects within radius of q, in ID order,
// using RangeSelect's pruning. It is a thin wrapper over RangeWithStats.
func (ix *Index) Range(q vector.Point, radius float64) []codec.Object {
	res, _ := ix.RangeWithStats(q, radius)
	return res
}

// RangeWithStats is Range plus the per-query work accounting. Like
// KNNWithStats it performs no writes to the Index.
func (ix *Index) RangeWithStats(q vector.Point, radius float64) ([]codec.Object, Stats) {
	var st Stats
	got := ix.pp.RangeSelect(ix.part, ix.sum, q, radius, &st.DistComputations)
	out := make([]codec.Object, len(got))
	for i, t := range got {
		out[i] = t.Object
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out, st
}
