package vindex

import (
	"math/rand"
	"sync"
	"testing"

	"knnjoin/internal/dataset"
	"knnjoin/internal/vector"
)

// TestConcurrentQueriesOneSharedIndex is the regression test for the
// DistCount data race: KNN and Range used to mutate a shared Index field
// on every call, so two concurrent queries raced. Queries are now
// side-effect free; this test hammers one shared Index from many
// goroutines (run under -race in CI) and checks every goroutine gets the
// exact sequential answers.
func TestConcurrentQueriesOneSharedIndex(t *testing.T) {
	objs := dataset.Forest(3000, 1)
	ix, err := Build(objs, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Precompute the sequential ground truth for a fixed query set.
	const numQueries = 24
	queries := make([]vector.Point, numQueries)
	rng := rand.New(rand.NewSource(17))
	for i := range queries {
		q := objs[rng.Intn(len(objs))].Point.Clone()
		for d := range q {
			q[d] += rng.NormFloat64() * 5
		}
		queries[i] = q
	}
	wantKNN := make([][]float64, numQueries)
	wantStats := make([]Stats, numQueries)
	wantRange := make([]int, numQueries)
	for i, q := range queries {
		res, st := ix.KNNWithStats(q, 10)
		ds := make([]float64, len(res))
		for j, c := range res {
			ds[j] = c.Dist
		}
		wantKNN[i] = ds
		wantStats[i] = st
		got, _ := ix.RangeWithStats(q, 50)
		wantRange[i] = len(got)
	}

	const goroutines = 12 // the issue's acceptance bar is ≥ 8
	const rounds = 30
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for r := 0; r < rounds; r++ {
				i := rng.Intn(numQueries)
				res, st := ix.KNNWithStats(queries[i], 10)
				if len(res) != len(wantKNN[i]) {
					errs <- "kNN result length diverged under concurrency"
					return
				}
				for j := range res {
					if res[j].Dist != wantKNN[i][j] {
						errs <- "kNN distances diverged under concurrency"
						return
					}
				}
				// Side-effect-free queries must also report identical
				// per-query stats regardless of what other goroutines do.
				if st != wantStats[i] {
					errs <- "per-query stats diverged under concurrency"
					return
				}
				if got, _ := ix.RangeWithStats(queries[i], 50); len(got) != wantRange[i] {
					errs <- "range result diverged under concurrency"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
