package vindex

import (
	"knnjoin/internal/codec"
	"knnjoin/internal/nnheap"
	"knnjoin/internal/vector"
	"knnjoin/internal/voronoi"
)

// This file exports the kNN walk of KNNWithStats as composable pieces,
// so the sharded serving tier (internal/shard) can replay the EXACT
// single-node query — same visit order, same pruning decisions, same θ
// evolution, same Stats — while delegating only the block scans to
// remote shard processes. KNNWithStats itself is a composition of these
// pieces, which is what makes "sharded responses are byte-identical to
// single-node responses" a structural property instead of a testing
// aspiration: both paths run this code, the router merely crosses a
// process boundary between steps.

// StepKind classifies the routing decision RouteStep makes for one
// partition of the walk.
type StepKind int

// The decisions. StepSkip is an empty partition — the walk moves on
// without touching any counter. StepPruned means Corollary 1 or an
// empty Theorem-2 window eliminated the whole cell (PartitionsPruned
// accounting). StepScan means the cell's pivot-distance window must be
// scanned (PartitionsScanned accounting).
const (
	StepSkip StepKind = iota
	StepPruned
	StepScan
)

// AssignQuery places q in its Voronoi cell: the nearest pivot's index
// and the distance to it. The |P| object–pivot probes accrue into
// distCount when non-nil.
func (ix *Index) AssignQuery(q vector.Point, distCount *int64) (part int, dist float64) {
	return ix.pp.Assign(q, distCount)
}

// StartingBound exposes the Algorithm-1 starting bound θ the walk
// begins with (see startingBound).
func (ix *Index) StartingBound(q vector.Point, k int, distCount *int64) float64 {
	return ix.startingBound(q, k, distCount)
}

// QueryOrder computes the walk's partition visit order (ascending
// query–pivot distance, ties by partition index) and the gap slice
// gaps[j] = |q, p_j| the pruning checks consume. The |P|−1 gap
// computations accrue into distCount.
func (ix *Index) QueryOrder(q vector.Point, qPart int, qDist float64, distCount *int64) (order []int, gaps []float64) {
	m := ix.opts.Metric
	order = make([]int, ix.pp.NumPartitions())
	gaps = make([]float64, len(order))
	for j := range order {
		order[j] = j
		if j == qPart {
			gaps[j] = qDist
		} else {
			gaps[j] = m.Dist(q, ix.pp.Pivots[j])
			*distCount++
		}
	}
	// Ties broken by partition index so the visit order is deterministic
	// and identical to the batched path's (KNNBatchWithStats) — the
	// per-query Stats depend on it.
	sortOrderByGap(order, gaps)
	return order, gaps
}

// RouteStep makes the partition-j pruning decision of the walk without
// touching any object data: skip (empty cell), prune (Corollary 1 or an
// empty Theorem-2 window), or scan, in which case [lo, hi] is the
// pivot-distance window to examine. Emptiness comes from the summary
// (S[j].Count), not the partition block, so a metadata-only view
// (MetaOnly) routes exactly like the full index.
func (ix *Index) RouteStep(j, qPart int, qDist, qToPj, theta float64) (lo, hi float64, kind StepKind) {
	if ix.sum.S[j].Count == 0 {
		return 0, 0, StepSkip
	}
	// Corollary 1: prune the whole cell when the hyperplane between the
	// query's cell and cell j is farther than θ.
	if j != qPart && voronoi.HyperplaneDist(qToPj, qDist, ix.pp.PivotDist(qPart, j), ix.opts.Metric) > theta {
		return 0, 0, StepPruned
	}
	lo, hi, ok := voronoi.Theorem2Window(ix.sum.S[j], qToPj, theta)
	if !ok {
		return 0, 0, StepPruned
	}
	return lo, hi, StepScan
}

// KNNStep executes the full partition-j step of the walk: the RouteStep
// decision, its Stats accounting, and — for StepScan — the windowed
// kernel scan plus θ tightening. It returns the possibly-tightened θ
// the next step must use. The index must hold partition j's objects
// (the full index, or a Subset that owns cell j).
func (ix *Index) KNNStep(j, qPart int, q vector.Point, qDist, qToPj, theta float64, heap *nnheap.KHeap, sc *vector.Scratch, st *Stats) float64 {
	lo, hi, kind := ix.RouteStep(j, qPart, qDist, qToPj, theta)
	switch kind {
	case StepPruned:
		st.PartitionsPruned++
	case StepScan:
		st.PartitionsScanned++
		blk := ix.blocks[j]
		from, to := blk.PivotDistWindow(0, blk.Len(), lo, hi)
		st.DistComputations += int64(blk.NearestKRangeScratch(q, from, to, ix.opts.Metric, heap, sc))
		if t := thresholdDist(heap, theta, ix.opts.Metric == vector.L2); t < theta {
			theta = t
		}
	}
	return theta
}

// FinishKNN drains the walk's heap into the final ascending result,
// converting squared distances back to true distances under L2 (the
// kernels' native space).
func (ix *Index) FinishKNN(heap *nnheap.KHeap) []nnheap.Candidate {
	return sortedDists(heap, ix.opts.Metric == vector.L2)
}

// RangeScan scans partition j's rows whose pivot distance lies in
// [lo, hi] — a window RouteStep (with θ = radius) produced — and
// returns the objects within radius of q plus the number of rows
// examined (the caller's distance-computation charge). It mirrors
// voronoi.RangeSelect's verification loop row for row, so a sharded
// range query charges exactly the computations the single-node one
// does.
func (ix *Index) RangeScan(j int, q vector.Point, lo, hi, radius float64) ([]codec.Object, int) {
	part := ix.part[j]
	from, to := voronoi.WindowIndices(part, lo, hi)
	var out []codec.Object
	m := ix.opts.Metric
	for x := from; x < to; x++ {
		if m.Dist(q, part[x].Point) <= radius {
			out = append(out, part[x].Object)
		}
	}
	return out, to - from
}

// PartitionLen returns the number of objects partition j holds
// according to the summary — on a Subset, zero for cells the subset
// does not own.
func (ix *Index) PartitionLen(j int) int { return ix.sum.S[j].Count }

// Pivots returns the partitioner's pivot points. The slice is the
// index's own storage: callers must treat it as read-only.
func (ix *Index) Pivots() []vector.Point { return ix.pp.Pivots }

// Metric returns the distance metric the index was built with.
func (ix *Index) Metric() vector.Metric { return ix.opts.Metric }
