package vindex

import (
	"fmt"
	"math"

	"knnjoin/internal/codec"
	"knnjoin/internal/vector"
	"knnjoin/internal/voronoi"
)

// Subset returns an index over only the given Voronoi cells — the slice
// of the dataset one shard process serves. The subset keeps the FULL
// pivot set and pivot-distance matrix (routing math needs every
// hyperplane), shares the owned cells' object storage with the parent
// (the parent is immutable after Build/Load, so sharing is safe), and
// zeroes the summary rows of cells it does not own: PartitionLen
// reports 0 for them, RouteStep skips them, and StartingBound never
// consults pivot-distance lists of objects the subset cannot return.
// Queries against a Subset are therefore exact over the objects it
// holds. Cells must be in range and free of duplicates.
//
// SetKernel on a subset re-prepares blocks shared with the parent; like
// the parent's own SetKernel it must happen before the indexes are
// queried concurrently.
func (ix *Index) Subset(cells []int) (*Index, error) {
	n := ix.pp.NumPartitions()
	own := make([]bool, n)
	for _, c := range cells {
		if c < 0 || c >= n {
			return nil, fmt.Errorf("vindex: Subset: cell %d out of range [0,%d)", c, n)
		}
		if own[c] {
			return nil, fmt.Errorf("vindex: Subset: duplicate cell %d", c)
		}
		own[c] = true
	}
	sum := &voronoi.Summary{
		K: ix.sum.K,
		R: make([]voronoi.RSummary, n),
		S: make([]voronoi.SSummary, n),
	}
	part := make([][]codec.Tagged, n)
	blocks := make([]*vector.Block, n)
	size := 0
	for j := 0; j < n; j++ {
		if own[j] {
			sum.R[j] = ix.sum.R[j]
			sum.S[j] = ix.sum.S[j]
			part[j] = ix.part[j]
			blocks[j] = ix.blocks[j]
			size += len(ix.part[j])
			continue
		}
		// Empty rows use the SummaryBuilder's empty-cell convention
		// (L=+Inf, U=−Inf) so every bound treats them exactly like a cell
		// that never received an object.
		sum.R[j] = voronoi.RSummary{L: math.Inf(1), U: math.Inf(-1)}
		sum.S[j] = voronoi.SSummary{L: math.Inf(1), U: math.Inf(-1)}
		blocks[j] = &vector.Block{}
		blocks[j].Prepare(ix.opts.Kernel)
	}
	return &Index{pp: ix.pp, sum: sum, part: part, blocks: blocks, size: size, opts: ix.opts}, nil
}

// MetaOnly returns a routing-only view of the index: the full pivot
// set, pivot-distance matrix and summary (so AssignQuery, StartingBound,
// QueryOrder and RouteStep behave exactly as on the full index), but no
// object storage. The sharded router holds one of these — it decides
// which cells matter and delegates every scan, so it never pays the
// memory of the blocks. Scanning methods must not be called on it:
// RouteStep will direct scans at cells whose blocks are empty here.
func (ix *Index) MetaOnly() *Index {
	n := ix.pp.NumPartitions()
	blocks := make([]*vector.Block, n)
	for j := range blocks {
		blocks[j] = &vector.Block{}
	}
	return &Index{
		pp:     ix.pp,
		sum:    ix.sum,
		part:   make([][]codec.Tagged, n),
		blocks: blocks,
		size:   ix.size,
		opts:   ix.opts,
	}
}
