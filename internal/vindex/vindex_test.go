package vindex

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"knnjoin/internal/codec"
	"knnjoin/internal/dataset"
	"knnjoin/internal/vector"
)

func bruteKNNDists(objs []codec.Object, q vector.Point, k int, m vector.Metric) []float64 {
	ds := make([]float64, len(objs))
	for i, o := range objs {
		ds[i] = m.Dist(q, o.Point)
	}
	sort.Float64s(ds)
	if k > len(ds) {
		k = len(ds)
	}
	return ds[:k]
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Fatal("empty build accepted")
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	objs := dataset.Forest(3000, 1)
	ix, err := Build(objs, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		q := objs[rng.Intn(len(objs))].Point.Clone()
		for d := range q {
			q[d] += rng.NormFloat64() * 10
		}
		k := rng.Intn(15) + 1
		got := ix.KNN(q, k)
		want := bruteKNNDists(objs, q, k, vector.L2)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i].Dist-want[i]) > 1e-9 {
				t.Fatalf("trial %d pos %d: %v, want %v", trial, i, got[i].Dist, want[i])
			}
		}
	}
}

func TestKNNSkewedData(t *testing.T) {
	objs := dataset.OSM(4000, 3)
	ix, err := Build(objs, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		q := vector.Point{rng.Float64()*360 - 180, rng.Float64()*170 - 85}
		got := ix.KNN(q, 8)
		want := bruteKNNDists(objs, q, 8, vector.L2)
		for i := range want {
			if math.Abs(got[i].Dist-want[i]) > 1e-9 {
				t.Fatalf("trial %d pos %d: %v, want %v", trial, i, got[i].Dist, want[i])
			}
		}
	}
}

func TestKNNAlternateMetrics(t *testing.T) {
	objs := dataset.Uniform(1500, 4, 100, 5)
	for _, m := range []vector.Metric{vector.L1, vector.LInf} {
		ix, err := Build(objs, Options{Metric: m, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(6))
		for trial := 0; trial < 25; trial++ {
			q := dataset.Uniform(1, 4, 100, rng.Int63())[0].Point
			got := ix.KNN(q, 5)
			want := bruteKNNDists(objs, q, 5, m)
			for i := range want {
				if math.Abs(got[i].Dist-want[i]) > 1e-9 {
					t.Fatalf("%v trial %d: %v, want %v", m, trial, got[i].Dist, want[i])
				}
			}
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	objs := dataset.Uniform(20, 2, 10, 7)
	ix, err := Build(objs, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.KNN(vector.Point{5, 5}, 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
	if got := ix.KNN(vector.Point{5, 5}, 100); len(got) != 20 {
		t.Fatalf("k>n returned %d", len(got))
	}
	// k above BoundK still correct (starting bound falls back to +Inf).
	ixSmall, err := Build(objs, Options{Seed: 1, BoundK: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := ixSmall.KNN(vector.Point{5, 5}, 10)
	want := bruteKNNDists(objs, vector.Point{5, 5}, 10, vector.L2)
	for i := range want {
		if math.Abs(got[i].Dist-want[i]) > 1e-9 {
			t.Fatalf("pos %d: %v, want %v", i, got[i].Dist, want[i])
		}
	}
}

func TestRangeMatchesLinearScan(t *testing.T) {
	objs := dataset.Uniform(2000, 3, 100, 8)
	ix, err := Build(objs, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		q := dataset.Uniform(1, 3, 100, rng.Int63())[0].Point
		radius := rng.Float64() * 30
		got := ix.Range(q, radius)
		var want []int64
		for _, o := range objs {
			if vector.Dist(q, o.Point) <= radius {
				want = append(want, o.ID)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i] {
				t.Fatalf("trial %d pos %d: %d, want %d", trial, i, got[i].ID, want[i])
			}
		}
	}
}

// The index must beat a linear scan on distance computations — otherwise
// the pruning is broken even if results are right.
func TestKNNPrunes(t *testing.T) {
	objs := dataset.OSM(20000, 10)
	ix, err := Build(objs, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	const queries = 20
	var total Stats
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < queries; i++ {
		q := objs[rng.Intn(len(objs))].Point
		_, st := ix.KNNWithStats(q, 10)
		if st.PartitionsScanned == 0 {
			t.Fatal("no partition scanned yet results expected")
		}
		total.Add(st)
	}
	perQuery := total.DistComputations / queries
	if perQuery > int64(len(objs))/2 {
		t.Fatalf("avg %d distances per query over %d objects — pruning ineffective", perQuery, len(objs))
	}
}

func TestNumPartitionsDefault(t *testing.T) {
	objs := dataset.Uniform(400, 2, 10, 12)
	ix, err := Build(objs, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumPartitions() != 40 { // 2·√400
		t.Fatalf("NumPartitions = %d, want 40", ix.NumPartitions())
	}
	if ix.Len() != 400 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

// Property: index kNN distances equal brute force for arbitrary shapes.
func TestKNNCorrectQuick(t *testing.T) {
	f := func(seed int64, nRaw, kRaw, pRaw uint8) bool {
		n := int(nRaw)%150 + 1
		k := int(kRaw)%10 + 1
		objs := dataset.Uniform(n, 3, 100, seed)
		ix, err := Build(objs, Options{Seed: seed, NumPivots: int(pRaw)%n + 1})
		if err != nil {
			return false
		}
		q := dataset.Uniform(1, 3, 100, seed+1)[0].Point
		got := ix.KNN(q, k)
		want := bruteKNNDists(objs, q, k, vector.L2)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if math.Abs(got[i].Dist-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	objs := dataset.Forest(20000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(objs, Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKNN(b *testing.B) {
	objs := dataset.Forest(20000, 1)
	ix, err := Build(objs, Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	q := objs[7].Point
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.KNN(q, 10)
	}
}
