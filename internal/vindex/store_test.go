package vindex

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"knnjoin/internal/dataset"
	"knnjoin/internal/vector"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	objs := dataset.Forest(1500, 21)
	ix, err := Build(objs, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != ix.Len() || loaded.NumPartitions() != ix.NumPartitions() {
		t.Fatalf("shape changed: %d/%d vs %d/%d",
			loaded.Len(), loaded.NumPartitions(), ix.Len(), ix.NumPartitions())
	}
	// Queries on the loaded index must match the original exactly.
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 30; trial++ {
		q := objs[rng.Intn(len(objs))].Point.Clone()
		for d := range q {
			q[d] += rng.NormFloat64() * 5
		}
		a := ix.KNN(q, 7)
		b := loaded.KNN(q, 7)
		if len(a) != len(b) {
			t.Fatalf("trial %d: result sizes differ", trial)
		}
		for i := range a {
			if a[i].ID != b[i].ID || math.Abs(a[i].Dist-b[i].Dist) > 1e-12 {
				t.Fatalf("trial %d pos %d: %+v vs %+v", trial, i, a[i], b[i])
			}
		}
	}
}

func TestSaveLoadAlternateMetric(t *testing.T) {
	objs := dataset.Uniform(400, 3, 100, 23)
	ix, err := Build(objs, Options{Metric: vector.L1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q := vector.Point{50, 50, 50}
	a, b := ix.KNN(q, 5), loaded.KNN(q, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("L1 index changed after round trip: %+v vs %+v", a[i], b[i])
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC________________"),
		append(storeMagic[:], 0xFF, 0xFF, 0xFF, 0xFF), // bad metric
	}
	for i, c := range cases {
		if _, err := Load(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	objs := dataset.Uniform(100, 2, 50, 24)
	ix, err := Build(objs, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cut at a spread of prefixes; all must fail cleanly, never panic.
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		cut := int(float64(len(full)) * frac)
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d/%d bytes accepted", cut, len(full))
		}
	}
}

func BenchmarkSave(b *testing.B) {
	objs := dataset.Forest(20000, 1)
	ix, err := Build(objs, Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := ix.Save(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoad(b *testing.B) {
	objs := dataset.Forest(20000, 1)
	ix, err := Build(objs, Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Load(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
