// Package rtree provides an STR-bulk-loaded R-tree with best-first kNN
// search. It exists for the H-BRJ baseline (§3, §6): each H-BRJ reducer
// indexes its S-block with an R-tree and answers kNN queries for every r
// it received, exactly as the comparison system of Zhang et al. does.
package rtree

import (
	"math"
	"sort"

	"knnjoin/internal/codec"
	"knnjoin/internal/nnheap"
	"knnjoin/internal/vector"
)

// DefaultFanout is the default maximum number of entries per node.
const DefaultFanout = 32

// Rect is an axis-aligned minimum bounding rectangle.
type Rect struct {
	Min, Max vector.Point
}

// newRectFor returns the degenerate rectangle covering a single point.
func newRectFor(p vector.Point) Rect {
	return Rect{Min: p.Clone(), Max: p.Clone()}
}

// extend grows r to cover other.
func (r *Rect) extend(other Rect) {
	for d := range r.Min {
		r.Min[d] = math.Min(r.Min[d], other.Min[d])
		r.Max[d] = math.Max(r.Max[d], other.Max[d])
	}
}

// Contains reports whether p lies inside r (inclusive).
func (r Rect) Contains(p vector.Point) bool {
	for d := range p {
		if p[d] < r.Min[d] || p[d] > r.Max[d] {
			return false
		}
	}
	return true
}

// MinDist returns the smallest possible distance from p to any point of r
// under the metric — the standard R-tree MINDIST bound that makes
// best-first search correct.
func (r Rect) MinDist(p vector.Point, m vector.Metric) float64 {
	gap := make(vector.Point, len(p))
	for d := range p {
		switch {
		case p[d] < r.Min[d]:
			gap[d] = r.Min[d] - p[d]
		case p[d] > r.Max[d]:
			gap[d] = p[d] - r.Max[d]
		}
	}
	zero := make(vector.Point, len(p))
	return m.Dist(gap, zero)
}

type node struct {
	rect     Rect
	leaf     bool
	children []*node
	entries  []codec.Object
}

// Tree is an immutable, bulk-loaded R-tree over a set of objects.
type Tree struct {
	root   *node
	metric vector.Metric
	size   int
	fanout int

	// DistCount accumulates object-distance computations performed by
	// queries, feeding the paper's computation-selectivity measure. MBR
	// MINDIST evaluations are charged too: the paper counts "object pairs
	// to be computed ... including the pivots in our case", and for H-BRJ
	// index probes are the analogous bookkeeping cost.
	DistCount int64
}

// Options configures tree construction.
type Options struct {
	Metric vector.Metric // zero value is L2
	Fanout int           // ≤ 0 selects DefaultFanout
}

// Bulk builds a tree from objs using Sort-Tile-Recursive packing. The
// input slice is not retained; objs may be reused by the caller.
func Bulk(objs []codec.Object, opts Options) *Tree {
	fanout := opts.Fanout
	if fanout <= 0 {
		fanout = DefaultFanout
	}
	if fanout < 2 {
		fanout = 2
	}
	t := &Tree{metric: opts.Metric, size: len(objs), fanout: fanout}
	if len(objs) == 0 {
		return t
	}
	cp := make([]codec.Object, len(objs))
	copy(cp, objs)
	leaves := packLeaves(cp, fanout)
	t.root = buildUpper(leaves, fanout)
	return t
}

// packLeaves tiles the objects into leaves of ≤ fanout entries using STR:
// recursively sort by each dimension and slice into equal tiles.
func packLeaves(objs []codec.Object, fanout int) []*node {
	dim := objs[0].Point.Dim()
	var leaves []*node
	var tile func(part []codec.Object, d int)
	tile = func(part []codec.Object, d int) {
		if len(part) <= fanout {
			n := &node{leaf: true, entries: part, rect: newRectFor(part[0].Point)}
			for _, o := range part[1:] {
				n.rect.extend(newRectFor(o.Point))
			}
			leaves = append(leaves, n)
			return
		}
		if d < dim {
			sort.Slice(part, func(a, b int) bool { return part[a].Point[d] < part[b].Point[d] })
		}
		// Number of slabs along this dimension: the STR rule uses the
		// (dim−d)-th root of the number of leaves still needed.
		leavesNeeded := (len(part) + fanout - 1) / fanout
		slabs := int(math.Ceil(math.Pow(float64(leavesNeeded), 1/float64(dim-min(d, dim-1)))))
		if slabs < 2 {
			slabs = 2
		}
		per := (len(part) + slabs - 1) / slabs
		for i := 0; i < len(part); i += per {
			end := i + per
			if end > len(part) {
				end = len(part)
			}
			next := d + 1
			if next >= dim {
				next = dim // sentinel: no further sorting, just chop
			}
			tile(part[i:end], next)
		}
	}
	tile(objs, 0)
	return leaves
}

// buildUpper packs nodes level by level until one root remains.
func buildUpper(level []*node, fanout int) *node {
	for len(level) > 1 {
		var next []*node
		for i := 0; i < len(level); i += fanout {
			end := i + fanout
			if end > len(level) {
				end = len(level)
			}
			n := &node{children: level[i:end:end], rect: level[i].rect}
			n.rect = Rect{Min: level[i].rect.Min.Clone(), Max: level[i].rect.Max.Clone()}
			for _, c := range level[i+1 : end] {
				n.rect.extend(c.rect)
			}
			next = append(next, n)
		}
		level = next
	}
	return level[0]
}

// Len returns the number of indexed objects.
func (t *Tree) Len() int { return t.size }

// KNN returns the k nearest objects to q in ascending distance order
// (ties by ID), using best-first traversal. Fewer than k objects are
// returned when the tree is smaller than k.
func (t *Tree) KNN(q vector.Point, k int) []nnheap.Candidate {
	if t.root == nil || k <= 0 {
		return nil
	}
	best := nnheap.NewKHeap(k)
	var pq nnheap.MinHeap
	pq.Push(nnheap.MinItem{Priority: t.root.rect.MinDist(q, t.metric), Payload: t.root})
	t.DistCount++
	for pq.Len() > 0 {
		it := pq.Pop()
		if best.Full() && it.Priority > best.Top().Dist {
			break // everything remaining is farther than the k-th best
		}
		n := it.Payload.(*node)
		if n.leaf {
			for _, o := range n.entries {
				d := t.metric.Dist(q, o.Point)
				t.DistCount++
				best.Push(nnheap.Candidate{ID: o.ID, Dist: d})
			}
			continue
		}
		for _, c := range n.children {
			md := c.rect.MinDist(q, t.metric)
			t.DistCount++
			if !best.Full() || md <= best.Top().Dist {
				pq.Push(nnheap.MinItem{Priority: md, Payload: c})
			}
		}
	}
	return best.Sorted()
}

// Range returns all objects within distance radius of q, in ID order.
func (t *Tree) Range(q vector.Point, radius float64) []codec.Object {
	if t.root == nil {
		return nil
	}
	var out []codec.Object
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			for _, o := range n.entries {
				t.DistCount++
				if t.metric.Dist(q, o.Point) <= radius {
					out = append(out, o)
				}
			}
			return
		}
		for _, c := range n.children {
			t.DistCount++
			if c.rect.MinDist(q, t.metric) <= radius {
				walk(c)
			}
		}
	}
	walk(t.root)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Height returns the number of levels (0 for an empty tree), exposed for
// tests and diagnostics.
func (t *Tree) Height() int {
	h, n := 0, t.root
	for n != nil {
		h++
		if n.leaf {
			break
		}
		n = n.children[0]
	}
	return h
}
