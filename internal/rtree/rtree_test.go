package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"knnjoin/internal/codec"
	"knnjoin/internal/vector"
)

func randObjects(rng *rand.Rand, n, dim int) []codec.Object {
	out := make([]codec.Object, n)
	for i := range out {
		p := make(vector.Point, dim)
		for d := range p {
			p[d] = rng.Float64() * 100
		}
		out[i] = codec.Object{ID: int64(i), Point: p}
	}
	return out
}

func bruteKNN(objs []codec.Object, q vector.Point, k int, m vector.Metric) []struct {
	id int64
	d  float64
} {
	type cand struct {
		id int64
		d  float64
	}
	cands := make([]cand, len(objs))
	for i, o := range objs {
		cands[i] = cand{o.ID, m.Dist(q, o.Point)}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].d != cands[b].d {
			return cands[a].d < cands[b].d
		}
		return cands[a].id < cands[b].id
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]struct {
		id int64
		d  float64
	}, k)
	for i := 0; i < k; i++ {
		out[i] = struct {
			id int64
			d  float64
		}{cands[i].id, cands[i].d}
	}
	return out
}

func TestEmptyTree(t *testing.T) {
	tr := Bulk(nil, Options{})
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatal("empty tree shape wrong")
	}
	if got := tr.KNN(vector.Point{1, 2}, 3); got != nil {
		t.Fatalf("KNN on empty = %v", got)
	}
	if got := tr.Range(vector.Point{1, 2}, 5); got != nil {
		t.Fatalf("Range on empty = %v", got)
	}
}

func TestSingleObject(t *testing.T) {
	tr := Bulk([]codec.Object{{ID: 7, Point: vector.Point{3, 4}}}, Options{})
	got := tr.KNN(vector.Point{0, 0}, 5)
	if len(got) != 1 || got[0].ID != 7 || math.Abs(got[0].Dist-5) > 1e-12 {
		t.Fatalf("got %v", got)
	}
}

func TestKNNMatchesBruteForceByDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	objs := randObjects(rng, 1000, 4)
	tr := Bulk(objs, Options{})
	for trial := 0; trial < 50; trial++ {
		q := randObjects(rng, 1, 4)[0].Point
		k := rng.Intn(20) + 1
		got := tr.KNN(q, k)
		want := bruteKNN(objs, q, k, vector.L2)
		if len(got) != len(want) {
			t.Fatalf("len = %d, want %d", len(got), len(want))
		}
		for i := range got {
			// Compare distances (ties may legitimately differ by ID choice,
			// but our tie-break is ID-ascending on both sides).
			if math.Abs(got[i].Dist-want[i].d) > 1e-9 {
				t.Fatalf("trial %d k=%d pos %d: dist %v, want %v", trial, k, i, got[i].Dist, want[i].d)
			}
		}
	}
}

func TestKNNAlternateMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	objs := randObjects(rng, 500, 3)
	for _, m := range []vector.Metric{vector.L1, vector.LInf} {
		tr := Bulk(objs, Options{Metric: m})
		for trial := 0; trial < 20; trial++ {
			q := randObjects(rng, 1, 3)[0].Point
			got := tr.KNN(q, 7)
			want := bruteKNN(objs, q, 7, m)
			for i := range got {
				if math.Abs(got[i].Dist-want[i].d) > 1e-9 {
					t.Fatalf("%v: pos %d dist %v, want %v", m, i, got[i].Dist, want[i].d)
				}
			}
		}
	}
}

func TestKNNMoreThanTreeSize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	objs := randObjects(rng, 9, 2)
	tr := Bulk(objs, Options{})
	got := tr.KNN(vector.Point{0, 0}, 100)
	if len(got) != 9 {
		t.Fatalf("len = %d, want all 9", len(got))
	}
}

func TestKNNZeroK(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := Bulk(randObjects(rng, 10, 2), Options{})
	if got := tr.KNN(vector.Point{0, 0}, 0); got != nil {
		t.Fatalf("k=0 → %v", got)
	}
}

func TestRangeMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	objs := randObjects(rng, 800, 3)
	tr := Bulk(objs, Options{})
	for trial := 0; trial < 30; trial++ {
		q := randObjects(rng, 1, 3)[0].Point
		radius := rng.Float64() * 40
		got := tr.Range(q, radius)
		var want []int64
		for _, o := range objs {
			if vector.Dist(q, o.Point) <= radius {
				want = append(want, o.ID)
			}
		}
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i] {
				t.Fatalf("trial %d pos %d: id %d, want %d", trial, i, got[i].ID, want[i])
			}
		}
	}
}

func TestDuplicatePointsAllReturned(t *testing.T) {
	objs := []codec.Object{
		{ID: 1, Point: vector.Point{5, 5}},
		{ID: 2, Point: vector.Point{5, 5}},
		{ID: 3, Point: vector.Point{5, 5}},
		{ID: 4, Point: vector.Point{50, 50}},
	}
	tr := Bulk(objs, Options{})
	got := tr.KNN(vector.Point{5, 5}, 3)
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for _, c := range got {
		if c.Dist != 0 {
			t.Fatalf("expected all-zero distances, got %v", got)
		}
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	small := Bulk(randObjects(rng, 30, 2), Options{Fanout: 4})
	big := Bulk(randObjects(rng, 3000, 2), Options{Fanout: 4})
	if small.Height() < 2 {
		t.Errorf("30 objects at fanout 4 should need ≥2 levels, got %d", small.Height())
	}
	if big.Height() > 8 {
		t.Errorf("3000 objects at fanout 4 gave height %d (packing broken?)", big.Height())
	}
}

func TestTreeDoesNotAliasInput(t *testing.T) {
	objs := []codec.Object{{ID: 1, Point: vector.Point{1, 1}}, {ID: 2, Point: vector.Point{2, 2}}}
	tr := Bulk(objs, Options{})
	objs[0], objs[1] = objs[1], objs[0] // caller reuses its slice
	got := tr.KNN(vector.Point{1, 1}, 1)
	if got[0].ID != 1 {
		t.Fatal("tree aliases caller's slice")
	}
}

func TestMinDist(t *testing.T) {
	r := Rect{Min: vector.Point{0, 0}, Max: vector.Point{10, 10}}
	tests := []struct {
		p    vector.Point
		m    vector.Metric
		want float64
	}{
		{vector.Point{5, 5}, vector.L2, 0},     // inside
		{vector.Point{13, 14}, vector.L2, 5},   // corner 3-4-5
		{vector.Point{-3, 5}, vector.L2, 3},    // edge
		{vector.Point{13, 14}, vector.L1, 7},   // corner, L1
		{vector.Point{13, 14}, vector.LInf, 4}, // corner, L∞
	}
	for _, tc := range tests {
		if got := r.MinDist(tc.p, tc.m); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("MinDist(%v, %v) = %v, want %v", tc.p, tc.m, got, tc.want)
		}
	}
	if !r.Contains(vector.Point{0, 10}) || r.Contains(vector.Point{0, 10.1}) {
		t.Error("Contains boundary behaviour wrong")
	}
}

func TestDistCountGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := Bulk(randObjects(rng, 500, 3), Options{})
	before := tr.DistCount
	tr.KNN(vector.Point{1, 2, 3}, 5)
	if tr.DistCount <= before {
		t.Fatal("DistCount did not grow")
	}
}

// Best-first search should visit far fewer objects than a full scan on
// clustered data — the entire point of H-BRJ using an index.
func TestKNNPrunesAgainstFullScan(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	objs := randObjects(rng, 20000, 2)
	tr := Bulk(objs, Options{})
	tr.DistCount = 0
	tr.KNN(vector.Point{50, 50}, 10)
	if tr.DistCount > int64(len(objs)/2) {
		t.Fatalf("kNN visited %d distances for %d objects — no pruning", tr.DistCount, len(objs))
	}
}

// Property: for random data, tree kNN distances equal brute-force kNN
// distances for every k.
func TestKNNCorrectQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8, kRaw uint8, fanRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%200 + 1
		k := int(kRaw)%20 + 1
		fan := int(fanRaw)%30 + 2
		objs := randObjects(rng, n, 3)
		tr := Bulk(objs, Options{Fanout: fan})
		q := randObjects(rng, 1, 3)[0].Point
		got := tr.KNN(q, k)
		want := bruteKNN(objs, q, k, vector.L2)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if math.Abs(got[i].Dist-want[i].d) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBulkLoad(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	objs := randObjects(rng, 50000, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Bulk(objs, Options{})
	}
}

func BenchmarkKNN10(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	tr := Bulk(randObjects(rng, 50000, 4), Options{})
	q := randObjects(rng, 1, 4)[0].Point
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.KNN(q, 10)
	}
}
