package topk

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"knnjoin/internal/codec"
	"knnjoin/internal/dataset"
	"knnjoin/internal/dfs"
	"knnjoin/internal/mapreduce"
	"knnjoin/internal/vector"
)

func runTopK(t testing.TB, rObjs, sObjs []codec.Object, opts Options, nodes int) ([]Pair, *runView) {
	t.Helper()
	fs := dfs.New(256)
	cluster := mapreduce.NewCluster(fs, nodes)
	dataset.ToDFS(fs, "R", rObjs, codec.FromR)
	dataset.ToDFS(fs, "S", sObjs, codec.FromS)
	pairs, rep, err := Run(cluster, "R", "S", "out", opts)
	if err != nil {
		t.Fatal(err)
	}
	return pairs, &runView{pairs: rep.Pairs, replicas: rep.ReplicasS}
}

type runView struct{ pairs, replicas int64 }

// samePairDistances asserts the two pair lists carry the same multiset of
// distances — the exactness contract (ties may legally swap IDs).
func samePairDistances(t *testing.T, got, want []Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("pair %d: got dist %v, want %v", i, got[i].Dist, want[i].Dist)
		}
	}
}

func TestExactVsBruteForce(t *testing.T) {
	rObjs := dataset.Uniform(900, 3, 100, 1)
	sObjs := dataset.Uniform(700, 3, 100, 2)
	for _, k := range []int{1, 5, 25} {
		opts := Options{K: k, Seed: 3}
		want, _, err := BruteForce(rObjs, sObjs, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := runTopK(t, rObjs, sObjs, opts, 4)
		samePairDistances(t, got, want)
	}
}

func TestSelfJoinExcludeSelfUnordered(t *testing.T) {
	objs := dataset.OSM(1200, 4)
	opts := Options{K: 20, ExcludeSelf: true, Unordered: true, Seed: 5}
	want, _, err := BruteForce(objs, objs, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := runTopK(t, objs, objs, opts, 6)
	samePairDistances(t, got, want)
	for _, p := range got {
		if p.RID >= p.SID {
			t.Fatalf("unordered violated: (%d, %d)", p.RID, p.SID)
		}
		if p.Dist < 0 {
			t.Fatalf("negative distance %v", p.Dist)
		}
	}
}

func TestSelfJoinWithoutExclusionFindsZeroPairs(t *testing.T) {
	objs := dataset.Uniform(300, 2, 100, 7)
	got, _ := runTopK(t, objs, objs, Options{K: 5, Seed: 7}, 3)
	for _, p := range got {
		if p.Dist != 0 || p.RID != p.SID {
			t.Fatalf("self-join top pairs must be self-pairs at distance 0, got %+v", p)
		}
	}
}

func TestAscendingOutput(t *testing.T) {
	objs := dataset.Forest(800, 9)
	got, _ := runTopK(t, objs, objs, Options{K: 30, ExcludeSelf: true, Seed: 9}, 4)
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Dist < got[j].Dist }) {
		t.Fatal("output pairs not ascending by distance")
	}
}

func TestCheaperThanCross(t *testing.T) {
	rObjs := dataset.Uniform(3000, 3, 100, 11)
	sObjs := dataset.Uniform(3000, 3, 100, 12)
	_, st := runTopK(t, rObjs, sObjs, Options{K: 10, Seed: 13}, 4)
	cross := int64(len(rObjs)) * int64(len(sObjs))
	if st.pairs >= cross/4 {
		t.Fatalf("computed %d pairs — threshold pruning ineffective vs %d cross", st.pairs, cross)
	}
}

func TestKLargerThanData(t *testing.T) {
	rObjs := dataset.Uniform(6, 2, 100, 14)
	sObjs := dataset.Uniform(5, 2, 100, 15)
	opts := Options{K: 1000, Seed: 16}
	want, _, err := BruteForce(rObjs, sObjs, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := runTopK(t, rObjs, sObjs, opts, 4)
	if len(got) != len(rObjs)*len(sObjs) {
		t.Fatalf("got %d pairs, want the whole cross product %d", len(got), len(rObjs)*len(sObjs))
	}
	samePairDistances(t, got, want)
}

func TestSingleNode(t *testing.T) {
	objs := dataset.Uniform(400, 4, 100, 17)
	opts := Options{K: 15, ExcludeSelf: true, Seed: 18}
	want, _, err := BruteForce(objs, objs, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := runTopK(t, objs, objs, opts, 1)
	samePairDistances(t, got, want)
}

func TestManyNodesFewObjects(t *testing.T) {
	objs := dataset.Uniform(40, 3, 100, 19)
	opts := Options{K: 8, ExcludeSelf: true, Seed: 20}
	want, _, err := BruteForce(objs, objs, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := runTopK(t, objs, objs, opts, 16)
	samePairDistances(t, got, want)
}

func TestL1Metric(t *testing.T) {
	objs := dataset.Uniform(500, 3, 100, 21)
	opts := Options{K: 12, Metric: vector.L1, ExcludeSelf: true, Seed: 22}
	want, _, err := BruteForce(objs, objs, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := runTopK(t, objs, objs, opts, 4)
	samePairDistances(t, got, want)
}

func TestValidation(t *testing.T) {
	fs := dfs.New(0)
	cluster := mapreduce.NewCluster(fs, 2)
	if _, _, err := Run(cluster, "R", "S", "out", Options{K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := Run(cluster, "missing", "S", "out", Options{K: 3}); err == nil {
		t.Error("missing input accepted")
	}
	fs.Write("R", nil)
	fs.Write("S", nil)
	if _, _, err := Run(cluster, "R", "S", "out", Options{K: 3}); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := BruteForce(nil, nil, Options{K: -1}); err == nil {
		t.Error("brute force accepted k=-1")
	}
}

func TestPairCodecRoundTrip(t *testing.T) {
	f := func(rid, sid int64, dist float64) bool {
		in := Pair{RID: rid, SID: sid, Dist: dist}
		out, err := DecodePair(EncodePair(in))
		if err != nil {
			return false
		}
		if math.IsNaN(dist) {
			return out.RID == rid && out.SID == sid && math.IsNaN(out.Dist)
		}
		return out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	if _, err := DecodePair([]byte{1, 2, 3}); err == nil {
		t.Error("truncated pair accepted")
	}
}

// Property: the pair heap keeps exactly the k smallest distances of any
// input stream.
func TestPairHeapQuick(t *testing.T) {
	f := func(raw []float64, kRaw uint8) bool {
		k := int(kRaw%10) + 1
		h := newPairHeap(k)
		var ds []float64
		for i, d := range raw {
			if math.IsNaN(d) {
				continue
			}
			ds = append(ds, d)
			h.push(Pair{RID: int64(i), SID: int64(i), Dist: d})
		}
		sort.Float64s(ds)
		want := ds
		if len(want) > k {
			want = want[:k]
		}
		got := h.sorted()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Dist != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSlabOf(t *testing.T) {
	bs := []float64{10, 20, 30}
	cases := map[float64]int{-5: 0, 9.99: 0, 10: 0, 10.01: 1, 25: 2, 30: 2, 31: 3}
	for x, want := range cases {
		if got := slabOf(x, bs); got != want {
			t.Errorf("slabOf(%v) = %d, want %d", x, got, want)
		}
	}
	if got := slabOf(math.Inf(-1), bs); got != 0 {
		t.Errorf("slabOf(-inf) = %d", got)
	}
	if got := slabOf(math.Inf(1), bs); got != 3 {
		t.Errorf("slabOf(+inf) = %d", got)
	}
}

func TestSlabBoundariesDedup(t *testing.T) {
	objs := make([]codec.Object, 50)
	for i := range objs {
		objs[i] = codec.Object{ID: int64(i), Point: vector.Point{7}}
	}
	bs := slabBoundaries(objs, 0, 8)
	if len(bs) > 1 {
		t.Fatalf("constant axis produced %d boundaries, want ≤ 1", len(bs))
	}
	if slabBoundaries(objs, 0, 1) != nil {
		t.Fatal("n=1 must produce no boundaries")
	}
}

func TestMaxVarianceAxis(t *testing.T) {
	objs := []codec.Object{
		{ID: 0, Point: vector.Point{1, 100}},
		{ID: 1, Point: vector.Point{1.1, -100}},
		{ID: 2, Point: vector.Point{0.9, 50}},
	}
	if got := maxVarianceAxis(objs); got != 1 {
		t.Fatalf("maxVarianceAxis = %d, want 1", got)
	}
	if got := maxVarianceAxis(nil); got != 0 {
		t.Fatalf("empty sample axis = %d, want 0", got)
	}
}

func BenchmarkTopK(b *testing.B) {
	objs := dataset.Uniform(20000, 4, 100, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := dfs.New(0)
		cluster := mapreduce.NewCluster(fs, 8)
		dataset.ToDFS(fs, "R", objs, codec.FromR)
		dataset.ToDFS(fs, "S", objs, codec.FromS)
		if _, _, err := Run(cluster, "R", "S", "out", Options{K: 100, ExcludeSelf: true, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
