// Package topk implements the parallel top-k closest-pairs join of Kim
// and Shim (ICDE'12), reference [11] of the paper — the "special case of
// our proposed problem" its related work singles out: instead of the k
// nearest neighbors of *every* r, find the k closest (r, s) pairs of the
// whole cross product R × S.
//
// The algorithm is exact and runs in three stages:
//
//  1. Driver: sample both datasets and take the k-th smallest sample
//     pair distance as threshold τ. Sample pairs are a subset of all
//     pairs, so τ bounds the true k-th pair distance from above and no
//     qualifying pair is lost.
//  2. MapReduce job 1: partition space into equi-depth slabs along the
//     highest-variance axis; R objects go to their home slab, S objects
//     are replicated to every slab their τ-neighborhood on that axis
//     touches, so each qualifying pair meets in exactly one reducer.
//     Reducers plane-sweep the slab with a shrinking local threshold
//     and keep their k best pairs.
//  3. MapReduce job 2: a single reducer merges the local lists into the
//     global top-k.
package topk

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"knnjoin/internal/codec"
	"knnjoin/internal/dfs"
	"knnjoin/internal/driver"
	"knnjoin/internal/mapreduce"
	"knnjoin/internal/stats"
	"knnjoin/internal/vector"
)

// Pair is one joined result: an R object, an S object and their distance.
type Pair struct {
	RID, SID int64
	Dist     float64
}

// Options configures a top-k closest-pairs join.
type Options struct {
	// K is the number of closest pairs to return. Required, positive.
	K int
	// Metric is the distance measure; default L2.
	Metric vector.Metric
	// ExcludeSelf drops pairs whose two IDs are equal — the natural
	// setting for self-joins, where every object is at distance zero
	// from itself.
	ExcludeSelf bool
	// Unordered keeps only pairs with RID < SID. For a self-join this
	// returns each unordered pair once instead of in both orientations.
	Unordered bool
	// SampleSize bounds the per-dataset driver sample for the threshold
	// estimate. Default 512 (≈262K sample pairs).
	SampleSize int
	// Seed fixes the sampling.
	Seed int64
}

func (o Options) withDefaults() (Options, error) {
	if o.K <= 0 {
		return o, fmt.Errorf("topk: k must be positive, got %d", o.K)
	}
	if o.SampleSize <= 0 {
		o.SampleSize = 512
	}
	return o, nil
}

const pairBytes = 8 + 8 + 8

// EncodePair returns the wire form of p.
func EncodePair(p Pair) []byte {
	dst := make([]byte, 0, pairBytes)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(p.RID))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(p.SID))
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Dist))
}

// DecodePair parses a Pair produced by EncodePair.
func DecodePair(b []byte) (Pair, error) {
	if len(b) < pairBytes {
		return Pair{}, fmt.Errorf("topk: pair truncated: %d bytes", len(b))
	}
	return Pair{
		RID:  int64(binary.LittleEndian.Uint64(b)),
		SID:  int64(binary.LittleEndian.Uint64(b[8:])),
		Dist: math.Float64frombits(binary.LittleEndian.Uint64(b[16:])),
	}, nil
}

// pairHeap is a max-heap of the k best (smallest-distance) pairs seen.
type pairHeap struct {
	k     int
	pairs []Pair
}

func newPairHeap(k int) *pairHeap { return &pairHeap{k: k} }

func (h *pairHeap) full() bool { return len(h.pairs) == h.k }

// threshold is the current k-th best distance, or def while not full.
func (h *pairHeap) threshold(def float64) float64 {
	if !h.full() {
		return def
	}
	return h.pairs[0].Dist
}

func (h *pairHeap) push(p Pair) {
	if len(h.pairs) < h.k {
		h.pairs = append(h.pairs, p)
		h.up(len(h.pairs) - 1)
		return
	}
	if p.Dist >= h.pairs[0].Dist {
		return
	}
	h.pairs[0] = p
	h.down(0)
}

func (h *pairHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.pairs[parent].Dist >= h.pairs[i].Dist {
			break
		}
		h.pairs[parent], h.pairs[i] = h.pairs[i], h.pairs[parent]
		i = parent
	}
}

func (h *pairHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h.pairs) && h.pairs[l].Dist > h.pairs[big].Dist {
			big = l
		}
		if r < len(h.pairs) && h.pairs[r].Dist > h.pairs[big].Dist {
			big = r
		}
		if big == i {
			return
		}
		h.pairs[i], h.pairs[big] = h.pairs[big], h.pairs[i]
		i = big
	}
}

// sorted returns the heap's pairs ascending by distance (ties by IDs for
// determinism).
func (h *pairHeap) sorted() []Pair {
	out := append([]Pair(nil), h.pairs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		if out[i].RID != out[j].RID {
			return out[i].RID < out[j].RID
		}
		return out[i].SID < out[j].SID
	})
	return out
}

// admissible reports whether the (r, s) pairing survives the option
// filters.
func admissible(opts Options, rid, sid int64) bool {
	if opts.ExcludeSelf && rid == sid {
		return false
	}
	if opts.Unordered && rid >= sid {
		return false
	}
	return true
}

// Run executes the join. rFile and sFile must contain Tagged records;
// outFile receives the global top-k pairs, one EncodePair record each,
// ascending by distance.
func Run(cluster *mapreduce.Cluster, rFile, sFile, outFile string, opts Options) ([]Pair, *stats.Report, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	report := &stats.Report{
		Algorithm: "top-k pairs",
		K:         opts.K,
		Nodes:     cluster.Nodes(),
		RSize:     cluster.FS().Size(rFile),
		SSize:     cluster.FS().Size(sFile),
	}

	// ---- Driver: threshold τ, slab axis and boundaries -----------------
	prepStart := time.Now()
	rSample, err := sampleFile(cluster.FS(), rFile, opts.SampleSize, opts.Seed)
	if err != nil {
		return nil, nil, err
	}
	sSample, err := sampleFile(cluster.FS(), sFile, opts.SampleSize, opts.Seed+1)
	if err != nil {
		return nil, nil, err
	}
	if len(rSample) == 0 || len(sSample) == 0 {
		return nil, nil, fmt.Errorf("topk: empty input")
	}
	tau, samplePairs := sampleThreshold(rSample, sSample, opts)
	report.Pairs += samplePairs
	axis := maxVarianceAxis(append(append([]codec.Object(nil), rSample...), sSample...))
	boundaries := slabBoundaries(rSample, axis, cluster.Nodes())
	report.AddPhase("Threshold Estimation", time.Since(prepStart))

	// ---- Job 1: slab-partitioned pair generation ------------------------
	partialFile := outFile + ".partial"
	job := pairJoinKind.New(pairJoinSpec{
		RFile:      rFile,
		SFile:      sFile,
		Output:     partialFile,
		Tau:        tau,
		Axis:       axis,
		Boundaries: boundaries,
		Opts:       opts,
	})
	start := time.Now()
	js, err := cluster.Run(job)
	if err != nil {
		return nil, nil, err
	}
	report.AddPhase("Pair Join", time.Since(start))
	driver.AddJobStats(report, js)
	report.Pairs += js.Counters["pairs"]
	report.ShuffleBytes += js.ShuffleBytes
	report.ShuffleRecords += js.ShuffleRecords
	report.ReplicasS = js.Counters["replicas_s"]
	report.SimMakespan += js.SimMapMakespan + js.SimReduceMakespan
	report.JoinSkew = js.ReduceSkew()

	// ---- Job 2: global top-k merge --------------------------------------
	merge := mergeKind.New(mergeSpec{Input: partialFile, Output: outFile, Opts: opts})
	start = time.Now()
	ms, err := cluster.Run(merge)
	cluster.FS().Remove(partialFile)
	if err != nil {
		return nil, nil, err
	}
	report.AddPhase("Top-k Merge", time.Since(start))
	driver.AddJobStats(report, ms)
	report.ShuffleBytes += ms.ShuffleBytes
	report.ShuffleRecords += ms.ShuffleRecords
	report.SimMakespan += ms.SimMapMakespan + ms.SimReduceMakespan
	report.OutputPairs = ms.OutputRecords

	pairs, err := ReadPairs(cluster.FS(), outFile)
	if err != nil {
		return nil, nil, err
	}
	return pairs, report, nil
}

// pairJoinSpec rebuilds the pair-generation job in a worker process.
type pairJoinSpec struct {
	RFile, SFile string
	Output       string
	Tau          float64
	Axis         int
	Boundaries   []float64
	Opts         Options
}

var pairJoinKind = mapreduce.DefineKind("topk-pair-join", buildPairJoinJob)

func buildPairJoinJob(s pairJoinSpec) *mapreduce.Job {
	return &mapreduce.Job{
		Name:        "topk-pair-join",
		Input:       []string{s.RFile, s.SFile},
		Output:      s.Output,
		NumReducers: len(s.Boundaries) + 1,
		Partition:   mapreduce.Uint32Partition,
		Side:        map[string]any{"opts": s.Opts, "tau": s.Tau, "axis": s.Axis, "boundaries": s.Boundaries},
		Map:         slabMap,
		Reduce:      slabReduce,
	}
}

// slabMap sends each r to its home slab and replicates each s to every
// slab its τ-neighborhood on the axis touches.
func slabMap(ctx *mapreduce.TaskContext, rec dfs.Record, emit mapreduce.Emit) error {
	tau := ctx.Side("tau").(float64)
	axis := ctx.Side("axis").(int)
	boundaries := ctx.Side("boundaries").([]float64)
	t, err := codec.DecodeTagged(rec)
	if err != nil {
		return err
	}
	x := t.Point[axis]
	switch t.Src {
	case codec.FromR:
		emit(codec.Uint32Key(uint32(slabOf(x, boundaries))), rec)
	case codec.FromS:
		lo := slabOf(x-tau, boundaries)
		hi := slabOf(x+tau, boundaries)
		for slab := lo; slab <= hi; slab++ {
			emit(codec.Uint32Key(uint32(slab)), rec)
			ctx.Counter("replicas_s", 1)
		}
	}
	return nil
}

// mergeSpec rebuilds the single-reducer top-k merge job.
type mergeSpec struct {
	Input, Output string
	Opts          Options
}

var mergeKind = mapreduce.DefineKind("topk-merge", buildMergeJob)

func buildMergeJob(s mergeSpec) *mapreduce.Job {
	return &mapreduce.Job{
		Name:        "topk-merge",
		Input:       []string{s.Input},
		Output:      s.Output,
		NumReducers: 1,
		Side:        map[string]any{"opts": s.Opts},
		Map:         mergeMap,
		Reduce:      mergeReduce,
	}
}

func mergeMap(_ *mapreduce.TaskContext, rec dfs.Record, emit mapreduce.Emit) error {
	emit(codec.Uint32Key(0), rec)
	return nil
}

func mergeReduce(ctx *mapreduce.TaskContext, _ []byte, values *mapreduce.Values, emit mapreduce.Emit) error {
	opts := ctx.Side("opts").(Options)
	heap := newPairHeap(opts.K)
	for v, ok := values.Next(); ok; v, ok = values.Next() {
		p, err := DecodePair(v)
		if err != nil {
			return err
		}
		heap.push(p)
	}
	for _, p := range heap.sorted() {
		emit(nil, EncodePair(p))
	}
	return nil
}

// slabReduce plane-sweeps one slab: R objects against the slab's S
// objects sorted along the slab axis, with the window narrowing as the
// local top-k fills. Both sides decode into columnar blocks (constant
// allocations per group); the S side is axis-ordered through an index
// permutation instead of moving coordinates, and distances run through
// the fused block kernel.
func slabReduce(ctx *mapreduce.TaskContext, _ []byte, values *mapreduce.Values, emit mapreduce.Emit) error {
	opts := ctx.Side("opts").(Options)
	tau := ctx.Side("tau").(float64)
	axis := ctx.Side("axis").(int)
	rBlk, sBlk, err := driver.CollectRSBlocks(values)
	if err != nil {
		return err
	}
	perm := make([]int, sBlk.Len())
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return sBlk.At(perm[a])[axis] < sBlk.At(perm[b])[axis] })
	sx := make([]float64, len(perm))
	for i, p := range perm {
		sx[i] = sBlk.At(p)[axis]
	}

	heap := newPairHeap(opts.K)
	var pairs int64
	for row := 0; row < rBlk.Len(); row++ {
		rPoint := rBlk.At(row)
		rid := rBlk.IDs[row]
		limit := heap.threshold(tau)
		x := rPoint[axis]
		lo := sort.SearchFloat64s(sx, x-limit)
		for i := lo; i < len(perm); i++ {
			// Re-read the (possibly shrunken) threshold each step: the
			// sweep gets cheaper as better pairs arrive.
			limit = heap.threshold(tau)
			if sx[i] > x+limit {
				break
			}
			si := perm[i]
			if !admissible(opts, rid, sBlk.IDs[si]) {
				continue
			}
			pairs++
			if d := sBlk.DistTo(si, rPoint, opts.Metric); d <= limit {
				heap.push(Pair{RID: rid, SID: sBlk.IDs[si], Dist: d})
			}
		}
	}
	for _, p := range heap.sorted() {
		emit(nil, EncodePair(p))
	}
	ctx.Counter("pairs", pairs)
	ctx.AddWork(pairs)
	return nil
}

// ReadPairs decodes a pair file written by Run.
func ReadPairs(fs dfs.Store, name string) ([]Pair, error) {
	recs, err := fs.Read(name)
	if err != nil {
		return nil, err
	}
	out := make([]Pair, len(recs))
	for i, r := range recs {
		p, err := DecodePair(r)
		if err != nil {
			return nil, fmt.Errorf("topk: pair record %d: %w", i, err)
		}
		out[i] = p
	}
	return out, nil
}

// sampleFile draws up to n objects uniformly from one Tagged file.
func sampleFile(fs dfs.Store, name string, n int, seed int64) ([]codec.Object, error) {
	recs, err := fs.Read(name)
	if err != nil {
		return nil, err
	}
	objs := make([]codec.Object, len(recs))
	for i, rec := range recs {
		t, err := codec.DecodeTagged(rec)
		if err != nil {
			return nil, err
		}
		objs[i] = t.Object
	}
	if n >= len(objs) {
		return objs, nil
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(objs))[:n]
	out := make([]codec.Object, n)
	for i, j := range idx {
		out[i] = objs[j]
	}
	return out, nil
}

// sampleThreshold returns the k-th smallest admissible sample pair
// distance — an upper bound on the true k-th pair distance, because the
// sample cross product is a subset of the full one. When the sample has
// fewer than k admissible pairs the threshold is +Inf (degenerate inputs
// only; the join then just prunes nothing). The second return is the
// number of distances computed.
func sampleThreshold(rSample, sSample []codec.Object, opts Options) (float64, int64) {
	heap := newPairHeap(opts.K)
	var pairs int64
	for _, r := range rSample {
		for _, s := range sSample {
			if !admissible(opts, r.ID, s.ID) {
				continue
			}
			pairs++
			heap.push(Pair{RID: r.ID, SID: s.ID, Dist: opts.Metric.Dist(r.Point, s.Point)})
		}
	}
	if !heap.full() {
		return math.Inf(1), pairs
	}
	return heap.threshold(math.Inf(1)), pairs
}

// maxVarianceAxis picks the dimension with the largest sample variance —
// the axis along which slab pruning is strongest.
func maxVarianceAxis(sample []codec.Object) int {
	if len(sample) == 0 {
		return 0
	}
	dims := sample[0].Point.Dim()
	best, bestVar := 0, -1.0
	for d := 0; d < dims; d++ {
		var sum, sq float64
		for _, o := range sample {
			sum += o.Point[d]
		}
		mean := sum / float64(len(sample))
		for _, o := range sample {
			diff := o.Point[d] - mean
			sq += diff * diff
		}
		if v := sq / float64(len(sample)); v > bestVar {
			best, bestVar = d, v
		}
	}
	return best
}

// slabBoundaries returns n-1 equi-depth cut points of the sample along
// axis, defining n slabs.
func slabBoundaries(sample []codec.Object, axis, n int) []float64 {
	if n <= 1 {
		return nil
	}
	xs := make([]float64, len(sample))
	for i, o := range sample {
		xs[i] = o.Point[axis]
	}
	sort.Float64s(xs)
	out := make([]float64, 0, n-1)
	for i := 1; i < n; i++ {
		b := xs[i*len(xs)/n]
		// Skip duplicate cut points: a zero-width slab would never
		// receive an R object and only waste a reducer.
		if len(out) == 0 || b > out[len(out)-1] {
			out = append(out, b)
		}
	}
	return out
}

// slabOf returns the index of the slab containing x: slab i spans
// [boundaries[i-1], boundaries[i]). ±Inf clamp to the outermost slabs.
func slabOf(x float64, boundaries []float64) int {
	return sort.SearchFloat64s(boundaries, x)
}

// BruteForce computes the exact top-k closest pairs centrally, for
// verification and as the baseline the MapReduce variant is measured
// against. The returned pairs are ascending by distance; the second
// return is the number of distance computations (the full admissible
// cross product).
func BruteForce(rObjs, sObjs []codec.Object, opts Options) ([]Pair, int64, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, 0, err
	}
	heap := newPairHeap(opts.K)
	var pairs int64
	for _, r := range rObjs {
		for _, s := range sObjs {
			if !admissible(opts, r.ID, s.ID) {
				continue
			}
			pairs++
			heap.push(Pair{RID: r.ID, SID: s.ID, Dist: opts.Metric.Dist(r.Point, s.Point)})
		}
	}
	return heap.sorted(), pairs, nil
}
