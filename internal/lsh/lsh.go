// Package lsh implements an LSH-based approximate kNN join on MapReduce
// in the style of RankReduce (Stupar, Michel, Schenkel — LSDS-IR'10),
// the method the paper cites as reference [15] and excludes from its
// exact comparison (§7).
//
// The hash family is the p-stable scheme for the Euclidean metric
// (Gionis et al. [7]; Datar et al.): h(v) = ⌊(a·v + b)/w⌋ with a drawn
// from a Gaussian and b uniform in [0, w). Each of L tables concatenates
// m such hashes into a bucket signature, so near objects collide in at
// least one table with high probability. The join hashes R ∪ S into
// buckets (the map), computes in-bucket candidates (the reduce), and
// merges the L per-table candidate lists per object with the shared
// merge job.
//
// Like H-zkNNJ the result is approximate: every reported neighbor is a
// real S object at its true distance, but a true neighbor that hashes
// into a different bucket than r in every table is missed. Recall rises
// with the table count L and falls with stricter signatures (more
// hashes per table), both at proportional shuffle and computation cost.
package lsh

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"knnjoin/internal/codec"
	"knnjoin/internal/dfs"
	"knnjoin/internal/driver"
	"knnjoin/internal/hbrj"
	"knnjoin/internal/mapreduce"
	"knnjoin/internal/nnheap"
	"knnjoin/internal/stats"
	"knnjoin/internal/vector"
)

// Options configures a RankReduce-style LSH join.
type Options struct {
	// K is the number of neighbors. Required, positive.
	K int
	// Tables is L, the number of independent hash tables. Default 4.
	Tables int
	// Hashes is m, the number of concatenated hash functions per table.
	// Larger m makes buckets stricter (higher precision, lower recall).
	// Default 4.
	Hashes int
	// BucketWidth is w of the p-stable family. Zero selects an automatic
	// width: twice the mean k-th-neighbor distance estimated on a sample,
	// so a bucket tends to span one k-neighborhood.
	BucketWidth float64
	// SampleSize bounds the driver-side sample used to estimate the
	// automatic bucket width. Default 2048.
	SampleSize int
	// Seed fixes the hash functions and the sampling.
	Seed int64
	// Kernel selects the reduce-side distance scan tier (see
	// vector.Kernel); the zero value keeps the fused float64 kernels.
	Kernel vector.Kernel
}

func (o Options) withDefaults() (Options, error) {
	if o.K <= 0 {
		return o, fmt.Errorf("lsh: k must be positive, got %d", o.K)
	}
	if o.Tables <= 0 {
		o.Tables = 4
	}
	if o.Hashes <= 0 {
		o.Hashes = 4
	}
	if o.BucketWidth < 0 {
		return o, fmt.Errorf("lsh: bucket width must not be negative, got %g", o.BucketWidth)
	}
	if o.SampleSize <= 0 {
		o.SampleSize = 2048
	}
	return o, nil
}

// table is one p-stable hash table: m Gaussian projection vectors and
// their uniform offsets. Signatures are ⌊(A_i·v + B_i)/w⌋ for each i.
// Fields are exported so tables survive the gob trip to worker
// processes.
type table struct {
	A [][]float64
	B []float64
}

// signature writes v's bucket signature under t into dst (reused across
// calls) and returns it.
func (t *table) signature(dst []int64, v vector.Point, w float64) []int64 {
	dst = dst[:0]
	for i, a := range t.A {
		var dot float64
		for d, x := range v {
			dot += a[d] * x
		}
		dst = append(dst, int64(math.Floor((dot+t.B[i])/w)))
	}
	return dst
}

// newTables draws L tables of m Gaussian projections over dim dimensions.
func newTables(rng *rand.Rand, l, m, dim int, w float64) []table {
	ts := make([]table, l)
	for t := range ts {
		ts[t].A = make([][]float64, m)
		ts[t].B = make([]float64, m)
		for i := 0; i < m; i++ {
			a := make([]float64, dim)
			for d := range a {
				a[d] = rng.NormFloat64()
			}
			ts[t].A[i] = a
			ts[t].B[i] = rng.Float64() * w
		}
	}
	return ts
}

// bucketKey renders a table index and signature as a binary shuffle key:
// the table index as a fixed-width prefix, then each signature component
// in its order-preserving 8-byte encoding — byte-comparable and
// collision-free by construction for any table count.
func bucketKey(t int, sig []int64) []byte {
	key := make([]byte, 0, 4+8*len(sig))
	key = append(key, codec.Uint32Key(uint32(t))...)
	for _, v := range sig {
		key = codec.AppendInt64Key(key, v)
	}
	return key
}

// Run executes the approximate join. rFile and sFile must contain Tagged
// records; outFile receives one codec.Result per R object holding its
// approximate k nearest neighbors. The L2 metric is assumed — the
// p-stable hash family is Euclidean.
func Run(cluster *mapreduce.Cluster, rFile, sFile, outFile string, opts Options) (*stats.Report, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	report := &stats.Report{
		Algorithm: "RankReduce",
		K:         opts.K,
		Nodes:     cluster.Nodes(),
		RSize:     cluster.FS().Size(rFile),
		SSize:     cluster.FS().Size(sFile),
	}

	// ---- Driver: sample, estimate bucket width, draw hash tables -------
	prepStart := time.Now()
	sample, dims, err := sampleTagged(cluster.FS(), opts.SampleSize, opts.Seed, rFile, sFile)
	if err != nil {
		return nil, err
	}
	w := opts.BucketWidth
	if w == 0 {
		w = estimateWidth(sample, opts.K)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	tables := newTables(rng, opts.Tables, opts.Hashes, dims, w)
	report.AddPhase("LSH Preprocessing", time.Since(prepStart))

	// ---- Job 1: hash into buckets, join within buckets -----------------
	partialFile := outFile + ".partial"
	job := bucketKind.New(bucketSpec{
		RFile:  rFile,
		SFile:  sFile,
		Output: partialFile,
		Tables: tables,
		W:      w,
		Opts:   opts,
	})
	start := time.Now()
	js, err := cluster.Run(job)
	if err != nil {
		return nil, err
	}
	report.AddPhase("Bucket Join", time.Since(start))
	driver.AddJobStats(report, js)
	report.Pairs += js.Counters["pairs"]
	report.ShuffleBytes += js.ShuffleBytes
	report.ShuffleRecords += js.ShuffleRecords
	report.ReplicasS = js.Counters["replicas_s"]
	report.SimMakespan += js.SimMapMakespan + js.SimReduceMakespan
	report.JoinSkew = js.ReduceSkew()

	// ---- Job 2: merge the L candidate lists per object ------------------
	ms, err := hbrj.MergeResults(cluster, partialFile, outFile, opts.K)
	cluster.FS().Remove(partialFile)
	if err != nil {
		return nil, err
	}
	report.AddPhase("Result Merging", ms.Wall())
	driver.AddJobStats(report, ms)
	report.ShuffleBytes += ms.ShuffleBytes
	report.ShuffleRecords += ms.ShuffleRecords
	report.SimMakespan += ms.SimMapMakespan + ms.SimReduceMakespan
	report.OutputPairs = ms.Counters["result_pairs"]
	return report, nil
}

// bucketSpec rebuilds the bucket-join job in a worker process.
type bucketSpec struct {
	RFile, SFile string
	Output       string
	Tables       []table
	W            float64
	Opts         Options
}

var bucketKind = mapreduce.DefineKind("lsh-bucket-join", buildBucketJob)

func buildBucketJob(s bucketSpec) *mapreduce.Job {
	return &mapreduce.Job{
		Name:   "lsh-bucket-join",
		Input:  []string{s.RFile, s.SFile},
		Output: s.Output,
		Side:   map[string]any{"tables": s.Tables, "w": s.W, "opts": s.Opts},
		Map:    bucketMap,
		Reduce: bucketReduce,
	}
}

// bucketMap hashes each object into its bucket under every table.
func bucketMap(ctx *mapreduce.TaskContext, rec dfs.Record, emit mapreduce.Emit) error {
	tables := ctx.Side("tables").([]table)
	w := ctx.Side("w").(float64)
	opts := ctx.Side("opts").(Options)
	t, err := codec.DecodeTagged(rec)
	if err != nil {
		return err
	}
	sig := make([]int64, 0, opts.Hashes)
	for ti := range tables {
		sig = tables[ti].signature(sig, t.Point, w)
		emit(bucketKey(ti, sig), rec)
		if t.Src == codec.FromS {
			ctx.Counter("replicas_s", 1)
		}
	}
	return nil
}

// bucketReduce verifies one bucket's candidates: every R object in it is
// paired with every S object in it, true L2 distances computed with the
// query-batched block kernels via driver.JoinBlocksKNN (squared until
// the emit-time sqrt). Each r gets a partial Result — empty when the
// bucket holds no S objects, so the merge job still emits a line for it.
func bucketReduce(ctx *mapreduce.TaskContext, _ []byte, values *mapreduce.Values, emit mapreduce.Emit) error {
	opts := ctx.Side("opts").(Options)
	rBlk, sBlk, err := driver.CollectRSBlocksKernel(values, opts.Kernel)
	if err != nil {
		return err
	}
	driver.JoinBlocksKNN(rBlk, sBlk, opts.K, vector.L2, emit)
	pairs := int64(rBlk.Len()) * int64(sBlk.Len())
	ctx.Counter("pairs", pairs)
	ctx.AddWork(pairs)
	return nil
}

// sampleTagged draws up to n objects uniformly from the named Tagged
// files and reports the dimensionality.
func sampleTagged(fs dfs.Store, n int, seed int64, names ...string) ([]codec.Object, int, error) {
	var all []codec.Object
	for _, name := range names {
		recs, err := fs.Read(name)
		if err != nil {
			return nil, 0, err
		}
		for _, rec := range recs {
			t, err := codec.DecodeTagged(rec)
			if err != nil {
				return nil, 0, err
			}
			all = append(all, t.Object)
		}
	}
	if len(all) == 0 {
		return nil, 0, fmt.Errorf("lsh: empty input")
	}
	dims := all[0].Point.Dim()
	if n >= len(all) {
		return all, dims, nil
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(all))[:n]
	out := make([]codec.Object, n)
	for i, j := range idx {
		out[i] = all[j]
	}
	return out, dims, nil
}

// estimateWidth returns twice the mean k-th-neighbor distance over up to
// 64 sample points, measured within the sample — a bucket width at which
// one bucket tends to cover one k-neighborhood. Falls back to 1 when the
// sample is degenerate (all points coincide).
func estimateWidth(sample []codec.Object, k int) float64 {
	probes := len(sample)
	if probes > 64 {
		probes = 64
	}
	heap := nnheap.NewKHeap(k)
	var sum float64
	var cnt int
	for i := 0; i < probes; i++ {
		heap.Reset()
		for j, o := range sample {
			if j == i {
				continue
			}
			heap.Push(nnheap.Candidate{ID: o.ID, Dist: vector.Dist(sample[i].Point, o.Point)})
		}
		if heap.Len() == 0 {
			continue
		}
		sum += heap.Top().Dist // k-th smallest (max of the heap)
		cnt++
	}
	if cnt == 0 || sum == 0 {
		return 1
	}
	return 2 * sum / float64(cnt)
}
