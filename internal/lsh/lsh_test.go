package lsh

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"knnjoin/internal/codec"
	"knnjoin/internal/dataset"
	"knnjoin/internal/dfs"
	"knnjoin/internal/mapreduce"
	"knnjoin/internal/naive"
	"knnjoin/internal/vector"
	"knnjoin/internal/zknn"
)

func runLSH(t testing.TB, rObjs, sObjs []codec.Object, opts Options, nodes int) ([]codec.Result, int64) {
	t.Helper()
	fs := dfs.New(256)
	cluster := mapreduce.NewCluster(fs, nodes)
	dataset.ToDFS(fs, "R", rObjs, codec.FromR)
	dataset.ToDFS(fs, "S", sObjs, codec.FromS)
	rep, err := Run(cluster, "R", "S", "out", opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := naive.ReadResults(fs, "out")
	if err != nil {
		t.Fatal(err)
	}
	return got, rep.Pairs
}

func TestShapeAndValidity(t *testing.T) {
	objs := dataset.Uniform(800, 3, 100, 1)
	got, _ := runLSH(t, objs, objs, Options{K: 5, Seed: 1}, 4)
	if len(got) != len(objs) {
		t.Fatalf("rows = %d, want %d", len(got), len(objs))
	}
	byID := make(map[int64]vector.Point, len(objs))
	for _, o := range objs {
		byID[o.ID] = o.Point
	}
	for i, res := range got {
		if res.RID != int64(i) {
			t.Fatalf("row %d has RID %d", i, res.RID)
		}
		if len(res.Neighbors) > 5 {
			t.Fatalf("r %d has %d neighbors, want ≤ 5", res.RID, len(res.Neighbors))
		}
		prev := -1.0
		seen := make(map[int64]bool)
		for _, nb := range res.Neighbors {
			if nb.Dist < prev {
				t.Fatalf("r %d neighbors not ascending", res.RID)
			}
			prev = nb.Dist
			if seen[nb.ID] {
				t.Fatalf("r %d repeats neighbor %d", res.RID, nb.ID)
			}
			seen[nb.ID] = true
			// Approximation affects which neighbors are found, never the
			// reported distances: each must be the true distance to a real
			// S object.
			want := vector.Dist(byID[res.RID], byID[nb.ID])
			if math.Abs(nb.Dist-want) > 1e-9 {
				t.Fatalf("r %d → s %d: reported %v, true %v", res.RID, nb.ID, nb.Dist, want)
			}
		}
	}
}

func TestRecallOnUniformData(t *testing.T) {
	objs := dataset.Uniform(2000, 3, 100, 2)
	exact, _ := naive.BruteForce(objs, objs, 10, vector.L2)
	approx, _ := runLSH(t, objs, objs, Options{K: 10, Tables: 8, Hashes: 2, Seed: 3}, 4)
	if r := zknn.Recall(approx, exact); r < 0.8 {
		t.Fatalf("recall with 8 tables = %.3f, want ≥ 0.8", r)
	}
}

func TestRecallImprovesWithTables(t *testing.T) {
	objs := dataset.OSM(2500, 4)
	exact, _ := naive.BruteForce(objs, objs, 10, vector.L2)
	oneRes, _ := runLSH(t, objs, objs, Options{K: 10, Tables: 1, Hashes: 3, Seed: 5}, 4)
	eightRes, _ := runLSH(t, objs, objs, Options{K: 10, Tables: 8, Hashes: 3, Seed: 5}, 4)
	one, eight := zknn.Recall(oneRes, exact), zknn.Recall(eightRes, exact)
	if eight < one {
		t.Fatalf("recall fell with more tables: 1 table %.3f vs 8 tables %.3f", one, eight)
	}
	if eight < 0.8 {
		t.Fatalf("recall with 8 tables = %.3f, want ≥ 0.8", eight)
	}
}

func TestStricterSignaturesCheaper(t *testing.T) {
	objs := dataset.Uniform(2000, 3, 100, 6)
	_, loosePairs := runLSH(t, objs, objs, Options{K: 10, Tables: 2, Hashes: 1, Seed: 7}, 4)
	_, strictPairs := runLSH(t, objs, objs, Options{K: 10, Tables: 2, Hashes: 6, Seed: 7}, 4)
	if strictPairs >= loosePairs {
		t.Fatalf("more hashes per table did not shrink buckets: m=1 %d pairs vs m=6 %d", loosePairs, strictPairs)
	}
}

func TestCheaperThanExactCross(t *testing.T) {
	objs := dataset.Uniform(3000, 3, 100, 8)
	_, pairs := runLSH(t, objs, objs, Options{K: 10, Seed: 9}, 4)
	cross := int64(len(objs)) * int64(len(objs))
	if pairs >= cross/4 {
		t.Fatalf("lsh computed %d pairs — not cheap vs %d cross product", pairs, cross)
	}
}

func TestKLargerThanS(t *testing.T) {
	rObjs := dataset.Uniform(50, 2, 100, 12)
	sObjs := dataset.Uniform(4, 2, 100, 13)
	got, _ := runLSH(t, rObjs, sObjs, Options{K: 10, Tables: 8, Hashes: 1, BucketWidth: 1000, Seed: 1}, 2)
	if len(got) != len(rObjs) {
		t.Fatalf("rows = %d, want %d", len(got), len(rObjs))
	}
	for _, res := range got {
		if len(res.Neighbors) > 4 {
			t.Fatalf("r %d: %d neighbors, want ≤ 4", res.RID, len(res.Neighbors))
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	objs := dataset.Uniform(600, 3, 100, 14)
	a, _ := runLSH(t, objs, objs, Options{K: 4, Seed: 20}, 4)
	b, _ := runLSH(t, objs, objs, Options{K: 4, Seed: 20}, 4)
	for i := range a {
		if a[i].RID != b[i].RID || len(a[i].Neighbors) != len(b[i].Neighbors) {
			t.Fatal("same seed, different shapes")
		}
		for j := range a[i].Neighbors {
			if a[i].Neighbors[j] != b[i].Neighbors[j] {
				t.Fatal("same seed, different neighbors")
			}
		}
	}
}

func TestValidation(t *testing.T) {
	fs := dfs.New(0)
	cluster := mapreduce.NewCluster(fs, 2)
	if _, err := Run(cluster, "R", "S", "out", Options{K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Run(cluster, "R", "S", "out", Options{K: 3, BucketWidth: -1}); err == nil {
		t.Error("negative width accepted")
	}
	if _, err := Run(cluster, "missing", "S", "out", Options{K: 3}); err == nil {
		t.Error("missing input accepted")
	}
	fs.Write("R", nil)
	fs.Write("S", nil)
	if _, err := Run(cluster, "R", "S", "out", Options{K: 3}); err == nil {
		t.Error("empty input accepted")
	}
}

// Property: a point always lands in exactly the same bucket as itself,
// and the bucket key embeds the table index — the two facts the join's
// correctness-of-collision argument rests on.
func TestSignatureDeterministicQuick(t *testing.T) {
	tbls := newTables(rand.New(rand.NewSource(1)), 2, 4, 3, 10)
	f := func(x, y, z float64) bool {
		for _, v := range []*float64{&x, &y, &z} {
			if math.IsNaN(*v) || math.IsInf(*v, 0) {
				*v = 0
			}
			*v = math.Mod(*v, 1e6)
		}
		p := vector.Point{x, y, z}
		s1 := tbls[0].signature(nil, p, 10)
		s2 := tbls[0].signature(nil, p, 10)
		k0 := bucketKey(0, s1)
		k1 := bucketKey(1, tbls[1].signature(nil, p, 10))
		return bytes.Equal(bucketKey(0, s2), k0) && !bytes.Equal(k0, k1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: two points farther apart than m·w·√dim in every projection
// cannot share a bucket; nearby duplicates always do. We check the
// always-collide half, which is deterministic: identical points share
// every table's bucket.
func TestIdenticalPointsCollideQuick(t *testing.T) {
	tbls := newTables(rand.New(rand.NewSource(2)), 4, 4, 2, 5)
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
			x, y = 1, 2
		}
		p := vector.Point{math.Mod(x, 1e6), math.Mod(y, 1e6)}
		q := p.Clone()
		for ti := range tbls {
			if !bytes.Equal(bucketKey(ti, tbls[ti].signature(nil, p, 5)), bucketKey(ti, tbls[ti].signature(nil, q, 5))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEstimateWidthDegenerate(t *testing.T) {
	same := make([]codec.Object, 10)
	for i := range same {
		same[i] = codec.Object{ID: int64(i), Point: vector.Point{1, 1}}
	}
	if w := estimateWidth(same, 3); w != 1 {
		t.Fatalf("degenerate width = %v, want fallback 1", w)
	}
	if w := estimateWidth(same[:1], 3); w != 1 {
		t.Fatalf("single-object width = %v, want fallback 1", w)
	}
	spread := dataset.Uniform(100, 2, 50, 3)
	if w := estimateWidth(spread, 3); w <= 0 {
		t.Fatalf("width on spread data = %v, want positive", w)
	}
}

func BenchmarkLSH(b *testing.B) {
	objs := dataset.Uniform(20000, 4, 100, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := dfs.New(0)
		cluster := mapreduce.NewCluster(fs, 8)
		dataset.ToDFS(fs, "R", objs, codec.FromR)
		dataset.ToDFS(fs, "S", objs, codec.FromS)
		if _, err := Run(cluster, "R", "S", "out", Options{K: 10, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
