package grouping

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"knnjoin/internal/codec"
	"knnjoin/internal/vector"
	"knnjoin/internal/voronoi"
)

type fixture struct {
	pp     *voronoi.Partitioner
	sum    *voronoi.Summary
	thetas []float64
	sParts [][]codec.Tagged
	rObjs  []codec.Object
	sObjs  []codec.Object
}

func makeFixture(t testing.TB, seed int64, nObjs, nPivots, dim, k int) *fixture {
	rng := rand.New(rand.NewSource(seed))
	mk := func(n int, idBase int64) []codec.Object {
		out := make([]codec.Object, n)
		for i := range out {
			p := make(vector.Point, dim)
			for d := range p {
				p[d] = rng.Float64() * 100
			}
			out[i] = codec.Object{ID: idBase + int64(i), Point: p}
		}
		return out
	}
	rObjs := mk(nObjs, 0)
	sObjs := mk(nObjs, int64(nObjs))
	pivots := make([]vector.Point, nPivots)
	for i := range pivots {
		pivots[i] = rObjs[rng.Intn(len(rObjs))].Point.Clone()
	}
	pp := voronoi.NewPartitioner(pivots, vector.L2)
	b := voronoi.NewSummaryBuilder(nPivots, k)
	for _, g := range pp.Partition(rObjs, codec.FromR, nil) {
		for _, o := range g {
			b.Add(o)
		}
	}
	sParts := pp.Partition(sObjs, codec.FromS, nil)
	for _, g := range sParts {
		for _, o := range g {
			b.Add(o)
		}
	}
	for _, g := range sParts {
		voronoi.SortByPivotDist(g)
	}
	sum := b.Finalize()
	return &fixture{pp: pp, sum: sum, thetas: Thetas(sum, pp), sParts: sParts, rObjs: rObjs, sObjs: sObjs}
}

func (f *fixture) sDists() [][]float64 {
	out := make([][]float64, len(f.sParts))
	for i, g := range f.sParts {
		ds := make([]float64, len(g))
		for j, o := range g {
			ds[j] = o.PivotDist
		}
		out[i] = ds
	}
	return out
}

func checkCover(t *testing.T, res *Result, numPartitions int) {
	t.Helper()
	seen := make([]int, numPartitions)
	for g, parts := range res.Groups {
		for _, i := range parts {
			seen[i]++
			if res.GroupOf[i] != g {
				t.Fatalf("GroupOf[%d] = %d, want %d", i, res.GroupOf[i], g)
			}
		}
		if !sort.IntsAreSorted(parts) {
			t.Fatalf("group %d members not sorted: %v", g, parts)
		}
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("partition %d appears in %d groups", i, n)
		}
	}
}

func TestGeometricCoversAllPartitions(t *testing.T) {
	f := makeFixture(t, 1, 400, 24, 3, 3)
	res, err := Geometric(f.pp, f.sum, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumGroups() != 6 {
		t.Fatalf("NumGroups = %d", res.NumGroups())
	}
	checkCover(t, res, 24)
}

func TestGreedyCoversAllPartitions(t *testing.T) {
	f := makeFixture(t, 2, 400, 24, 3, 3)
	res, err := Greedy(f.pp, f.sum, 6, f.thetas)
	if err != nil {
		t.Fatal(err)
	}
	checkCover(t, res, 24)
}

func TestValidationErrors(t *testing.T) {
	f := makeFixture(t, 3, 100, 8, 2, 2)
	if _, err := Geometric(f.pp, f.sum, 0); err == nil {
		t.Error("zero groups accepted")
	}
	if _, err := Geometric(f.pp, f.sum, 9); err == nil {
		t.Error("more groups than partitions accepted")
	}
	if _, err := Greedy(f.pp, f.sum, 2, f.thetas[:3]); err == nil {
		t.Error("wrong theta length accepted")
	}
}

func TestSingleGroupTakesEverything(t *testing.T) {
	f := makeFixture(t, 4, 150, 10, 2, 2)
	for _, mk := range []func() (*Result, error){
		func() (*Result, error) { return Geometric(f.pp, f.sum, 1) },
		func() (*Result, error) { return Greedy(f.pp, f.sum, 1, f.thetas) },
	} {
		res, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Groups[0]) != 10 {
			t.Fatalf("single group holds %d partitions", len(res.Groups[0]))
		}
	}
}

func TestGroupsEqualPartitions(t *testing.T) {
	// N == |P| ⇒ each group is exactly one partition.
	f := makeFixture(t, 5, 200, 8, 2, 2)
	res, err := Geometric(f.pp, f.sum, 8)
	if err != nil {
		t.Fatal(err)
	}
	for g, parts := range res.Groups {
		if len(parts) != 1 {
			t.Fatalf("group %d has %d partitions", g, len(parts))
		}
	}
}

// Algorithm 4's purpose: object counts per group should be close to even.
func TestGeometricBalancesLoad(t *testing.T) {
	f := makeFixture(t, 6, 3000, 40, 3, 5)
	res, err := Geometric(f.pp, f.sum, 8)
	if err != nil {
		t.Fatal(err)
	}
	sizes := res.GroupSizes(f.sum)
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 3000 {
		t.Fatalf("group sizes sum to %d, want 3000", total)
	}
	avg := float64(total) / float64(len(sizes))
	for g, s := range sizes {
		if math.Abs(float64(s)-avg) > 0.5*avg {
			t.Errorf("group %d size %d deviates >50%% from average %.0f", g, s, avg)
		}
	}
}

// Geometric seeds must be mutually far: the two seed pivots of a 2-group
// split should be farther apart than the average pivot gap.
func TestGeometricSeedsAreFar(t *testing.T) {
	f := makeFixture(t, 7, 500, 16, 2, 3)
	res, err := Geometric(f.pp, f.sum, 2)
	if err != nil {
		t.Fatal(err)
	}
	seed0, seed1 := res.Groups[0][0], res.Groups[1][0]
	// Heuristic but robust: seeds are in the top half of pairwise gaps.
	gap := f.pp.PivotDist(seed0, seed1)
	var gaps []float64
	for i := 0; i < 16; i++ {
		for j := i + 1; j < 16; j++ {
			gaps = append(gaps, f.pp.PivotDist(i, j))
		}
	}
	sort.Float64s(gaps)
	if gap < gaps[len(gaps)/2] {
		t.Errorf("seed gap %.2f below median %.2f", gap, gaps[len(gaps)/2])
	}
}

func TestGroupLBsAreGroupMinima(t *testing.T) {
	f := makeFixture(t, 8, 300, 12, 3, 3)
	res, err := Geometric(f.pp, f.sum, 4)
	if err != nil {
		t.Fatal(err)
	}
	glbs := GroupLBs(f.pp, f.sum, f.thetas, res)
	for l := 0; l < 12; l++ {
		for g, parts := range res.Groups {
			want := math.Inf(1)
			for _, i := range parts {
				if f.sum.R[i].Count == 0 {
					continue
				}
				v := voronoi.LBReplica(f.pp.PivotDist(i, l), f.sum.R[i].U, f.thetas[i])
				if v < want {
					want = v
				}
			}
			if got := glbs[l][g]; got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
				t.Fatalf("GroupLBs[%d][%d] = %v, want %v", l, g, got, want)
			}
		}
	}
}

// Theorem-6 routing with GroupLBs must never lose a true neighbor: for
// every r, its exact kNN all land in r's group's replica set.
func TestGroupRoutingPreservesTrueNeighbors(t *testing.T) {
	f := makeFixture(t, 9, 400, 16, 2, 4)
	for _, strat := range []string{"geo", "greedy"} {
		var res *Result
		var err error
		if strat == "geo" {
			res, err = Geometric(f.pp, f.sum, 4)
		} else {
			res, err = Greedy(f.pp, f.sum, 4, f.thetas)
		}
		if err != nil {
			t.Fatal(err)
		}
		glbs := GroupLBs(f.pp, f.sum, f.thetas, res)
		// Replica sets per group.
		inGroup := make([]map[int64]bool, res.NumGroups())
		for g := range inGroup {
			inGroup[g] = make(map[int64]bool)
		}
		for l, part := range f.sParts {
			for _, s := range part {
				for g := 0; g < res.NumGroups(); g++ {
					if s.PivotDist >= glbs[l][g] {
						inGroup[g][s.ID] = true
					}
				}
			}
		}
		for _, r := range f.rObjs {
			rPart, _ := f.pp.Assign(r.Point, nil)
			g := res.GroupOf[rPart]
			type cand struct {
				id int64
				d  float64
			}
			cands := make([]cand, len(f.sObjs))
			for x, s := range f.sObjs {
				cands[x] = cand{s.ID, vector.Dist(r.Point, s.Point)}
			}
			sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
			for x := 0; x < 4; x++ {
				if !inGroup[g][cands[x].id] {
					t.Fatalf("%s: true neighbor %d of r %d missing from group %d replicas",
						strat, cands[x].id, r.ID, g)
				}
			}
		}
	}
}

// §5.2.2's goal: greedy grouping should not replicate more than geometric
// under the cost model it optimizes (the Eq. 12 approximation).
func TestGreedyNoWorseOnApproxCost(t *testing.T) {
	f := makeFixture(t, 10, 1500, 30, 3, 5)
	geo, err := Geometric(f.pp, f.sum, 6)
	if err != nil {
		t.Fatal(err)
	}
	gre, err := Greedy(f.pp, f.sum, 6, f.thetas)
	if err != nil {
		t.Fatal(err)
	}
	geoCost := ApproxReplication(GroupLBs(f.pp, f.sum, f.thetas, geo), f.sum)
	greCost := ApproxReplication(GroupLBs(f.pp, f.sum, f.thetas, gre), f.sum)
	// Greedy is greedy, not optimal; allow a modest slack before failing.
	if float64(greCost) > 1.15*float64(geoCost) {
		t.Errorf("greedy approx replication %d far exceeds geometric %d", greCost, geoCost)
	}
}

func TestExactReplicationMatchesBruteForce(t *testing.T) {
	f := makeFixture(t, 11, 300, 10, 2, 3)
	res, err := Geometric(f.pp, f.sum, 3)
	if err != nil {
		t.Fatal(err)
	}
	glbs := GroupLBs(f.pp, f.sum, f.thetas, res)
	got := ExactReplication(glbs, f.sDists())
	var want int64
	for l, part := range f.sParts {
		for _, s := range part {
			for g := 0; g < res.NumGroups(); g++ {
				if s.PivotDist >= glbs[l][g] {
					want++
				}
			}
		}
	}
	if got != want {
		t.Fatalf("ExactReplication = %d, want %d", got, want)
	}
}

func TestApproxDominatesExact(t *testing.T) {
	// Equation 12 over-approximates Equation 11: whole partitions count.
	f := makeFixture(t, 12, 500, 12, 3, 3)
	res, err := Geometric(f.pp, f.sum, 4)
	if err != nil {
		t.Fatal(err)
	}
	glbs := GroupLBs(f.pp, f.sum, f.thetas, res)
	exact := ExactReplication(glbs, f.sDists())
	approx := ApproxReplication(glbs, f.sum)
	if approx < exact {
		t.Fatalf("approx replication %d < exact %d", approx, exact)
	}
}

// More pivots ⇒ tighter bounds ⇒ fewer replicas (the §5 motivation and
// the declining curve of Figure 7(b)).
func TestReplicationShrinksWithMorePivots(t *testing.T) {
	costAt := func(nPivots int) float64 {
		f := makeFixture(t, 13, 2000, nPivots, 3, 5)
		res, err := Geometric(f.pp, f.sum, 4)
		if err != nil {
			t.Fatal(err)
		}
		glbs := GroupLBs(f.pp, f.sum, f.thetas, res)
		return float64(ExactReplication(glbs, f.sDists())) / 2000
	}
	few, many := costAt(8), costAt(64)
	if many >= few {
		t.Errorf("avg replication with 64 pivots (%.2f) not below 8 pivots (%.2f)", many, few)
	}
}

// Property: both strategies produce an exact disjoint cover for arbitrary
// shapes.
func TestCoverPropertyQuick(t *testing.T) {
	f := func(seed int64, pivotRaw, groupRaw uint8) bool {
		nPivots := int(pivotRaw)%12 + 2
		n := int(groupRaw)%nPivots + 1
		fx := makeFixture(nil, seed, 120, nPivots, 2, 2)
		for _, mk := range []func() (*Result, error){
			func() (*Result, error) { return Geometric(fx.pp, fx.sum, n) },
			func() (*Result, error) { return Greedy(fx.pp, fx.sum, n, fx.thetas) },
		} {
			res, err := mk()
			if err != nil {
				return false
			}
			seen := make([]int, nPivots)
			for g, parts := range res.Groups {
				for _, i := range parts {
					seen[i]++
					if res.GroupOf[i] != g {
						return false
					}
				}
			}
			for _, c := range seen {
				if c != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGeometric(b *testing.B) {
	f := makeFixture(b, 1, 5000, 100, 6, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Geometric(f.pp, f.sum, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedy(b *testing.B) {
	f := makeFixture(b, 1, 5000, 100, 6, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Greedy(f.pp, f.sum, 16, f.thetas); err != nil {
			b.Fatal(err)
		}
	}
}
