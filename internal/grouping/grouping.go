// Package grouping implements §5 of the paper: clustering the Voronoi
// partitions of R into N reducer groups so that a large pivot count (good
// bounds) can coexist with a small reducer count (practical cluster), and
// the replication RP(S) of Theorem 7 stays low.
//
// Two strategies are provided, matching §5.2: geometric grouping
// (Algorithm 4, pivot-distance driven, load balanced) and greedy grouping
// (cost-model driven via the approximation of Equation 12).
package grouping

import (
	"fmt"
	"math"
	"sort"

	"knnjoin/internal/voronoi"
)

// Result is a disjoint cover of the R-partitions by N groups.
type Result struct {
	Groups  [][]int // Groups[g] lists the partition indices of group g
	GroupOf []int   // GroupOf[i] is the group of partition i
}

// NumGroups returns N.
func (r *Result) NumGroups() int { return len(r.Groups) }

// GroupSizes returns the number of R objects per group — the quantity
// whose balance Table 3 reports.
func (r *Result) GroupSizes(sum *voronoi.Summary) []int {
	sizes := make([]int, len(r.Groups))
	for g, parts := range r.Groups {
		for _, i := range parts {
			sizes[g] += sum.R[i].Count
		}
	}
	return sizes
}

// validate checks the shared preconditions of both strategies.
func validate(pp *voronoi.Partitioner, n int) error {
	if n <= 0 {
		return fmt.Errorf("grouping: need a positive group count, got %d", n)
	}
	if n > pp.NumPartitions() {
		return fmt.Errorf("grouping: %d groups exceed %d partitions", n, pp.NumPartitions())
	}
	return nil
}

// Thetas computes θ_i for every R-partition P_i^R — Algorithm 1 of
// §4.3.2: the upper bound on the kNN distance of any object in P_i^R,
// derived from the k smallest pivot distances the TR/TS summary tables
// record (the bound behind Theorem 4 and Corollary 2). Both grouping
// strategies and the second MapReduce job's replica routing consume this
// vector.
func Thetas(sum *voronoi.Summary, pp *voronoi.Partitioner) []float64 {
	out := make([]float64, pp.NumPartitions())
	for i := range out {
		out[i] = sum.BoundKNN(i, pp)
	}
	return out
}

// Geometric implements geometric grouping — §5.2.1, Algorithm 4, the
// strategy whose group-size balance Table 3 reports. Groups are seeded
// with mutually far pivots (farthest-first), then each remaining
// partition joins the currently smallest group among which its pivot is
// nearest, keeping the per-group object counts nearly equal.
func Geometric(pp *voronoi.Partitioner, sum *voronoi.Summary, n int) (*Result, error) {
	if err := validate(pp, n); err != nil {
		return nil, err
	}
	m := pp.NumPartitions()
	res := &Result{Groups: make([][]int, n), GroupOf: make([]int, m)}
	for i := range res.GroupOf {
		res.GroupOf[i] = -1
	}
	remaining := make(map[int]bool, m)
	for i := 0; i < m; i++ {
		remaining[i] = true
	}

	// Line 1: the first seed maximizes total distance to all other pivots.
	first, bestSum := -1, math.Inf(-1)
	for i := 0; i < m; i++ {
		var s float64
		for j := 0; j < m; j++ {
			s += pp.PivotDist(i, j)
		}
		if s > bestSum {
			first, bestSum = i, s
		}
	}
	assign := func(g, part int) {
		res.Groups[g] = append(res.Groups[g], part)
		res.GroupOf[part] = g
		delete(remaining, part)
	}
	assign(0, first)
	seeds := []int{first}

	// Lines 3–5: remaining seeds maximize distance to already-picked seeds.
	for g := 1; g < n; g++ {
		best, bestSum := -1, math.Inf(-1)
		for i := range remaining {
			var s float64
			for _, sd := range seeds {
				s += pp.PivotDist(i, sd)
			}
			if s > bestSum || (s == bestSum && (best == -1 || i < best)) {
				best, bestSum = i, s
			}
		}
		assign(g, best)
		seeds = append(seeds, best)
	}

	// Lines 6–9: grow the smallest group by its nearest remaining pivot.
	sizes := make([]int, n)
	for g, parts := range res.Groups {
		for _, i := range parts {
			sizes[g] += sum.R[i].Count
		}
	}
	for len(remaining) > 0 {
		g := 0
		for x := 1; x < n; x++ {
			if sizes[x] < sizes[g] {
				g = x
			}
		}
		best, bestSum := -1, math.Inf(1)
		for i := range remaining {
			var s float64
			for _, j := range res.Groups[g] {
				s += pp.PivotDist(i, j)
			}
			if s < bestSum || (s == bestSum && (best == -1 || i < best)) {
				best, bestSum = i, s
			}
		}
		assign(g, best)
		sizes[g] += sum.R[best].Count
	}
	sortGroups(res)
	return res, nil
}

// Greedy implements §5.2.2: groups are seeded exactly as in Algorithm 4,
// but each growth step picks the partition that minimizes the increase of
// the approximated replica set RP(S, G_i) of Equation 12 — whole
// S-partitions count as replicated as soon as their group lower bound
// LB(P_j^S, G_i) falls to or below U(P_j^S).
func Greedy(pp *voronoi.Partitioner, sum *voronoi.Summary, n int, thetas []float64) (*Result, error) {
	if err := validate(pp, n); err != nil {
		return nil, err
	}
	if len(thetas) != pp.NumPartitions() {
		return nil, fmt.Errorf("grouping: %d thetas for %d partitions", len(thetas), pp.NumPartitions())
	}
	m := pp.NumPartitions()
	res := &Result{Groups: make([][]int, n), GroupOf: make([]int, m)}
	for i := range res.GroupOf {
		res.GroupOf[i] = -1
	}
	remaining := make(map[int]bool, m)
	for i := 0; i < m; i++ {
		remaining[i] = true
	}

	// lb(P_l^S, P_i^R) per Corollary 2; +Inf when partition i holds no R
	// objects (U = −Inf would otherwise poison the arithmetic).
	lb := func(l, i int) float64 {
		if sum.R[i].Count == 0 {
			return math.Inf(1)
		}
		return voronoi.LBReplica(pp.PivotDist(i, l), sum.R[i].U, thetas[i])
	}

	// Per-group state: current LB(P_l^S, G) per S-partition l, current
	// approximate replica count, and current object count for balancing.
	groupLB := make([][]float64, n)
	sizes := make([]int, n)
	for g := range groupLB {
		groupLB[g] = make([]float64, m)
		for l := range groupLB[g] {
			groupLB[g][l] = math.Inf(1)
		}
	}
	replicated := make([][]bool, n)
	for g := range replicated {
		replicated[g] = make([]bool, m)
	}

	assign := func(g, part int) {
		res.Groups[g] = append(res.Groups[g], part)
		res.GroupOf[part] = g
		delete(remaining, part)
		sizes[g] += sum.R[part].Count
		for l := 0; l < m; l++ {
			if v := lb(l, part); v < groupLB[g][l] {
				groupLB[g][l] = v
			}
			if !replicated[g][l] && sum.S[l].Count > 0 && groupLB[g][l] <= sum.S[l].U {
				replicated[g][l] = true
			}
		}
	}

	// Seeding identical to Algorithm 4 (the paper reuses the framework).
	first, bestSum := -1, math.Inf(-1)
	for i := 0; i < m; i++ {
		var s float64
		for j := 0; j < m; j++ {
			s += pp.PivotDist(i, j)
		}
		if s > bestSum {
			first, bestSum = i, s
		}
	}
	assign(0, first)
	seeds := []int{first}
	for g := 1; g < n; g++ {
		best, bestSum := -1, math.Inf(-1)
		for i := range remaining {
			var s float64
			for _, sd := range seeds {
				s += pp.PivotDist(i, sd)
			}
			if s > bestSum || (s == bestSum && (best == -1 || i < best)) {
				best, bestSum = i, s
			}
		}
		assign(g, best)
		seeds = append(seeds, best)
	}

	// Growth: smallest group first; candidate minimizing ΔRP(S, G_g).
	for len(remaining) > 0 {
		g := 0
		for x := 1; x < n; x++ {
			if sizes[x] < sizes[g] {
				g = x
			}
		}
		best, bestDelta := -1, math.Inf(1)
		for i := range remaining {
			var delta float64
			for l := 0; l < m; l++ {
				if replicated[g][l] || sum.S[l].Count == 0 {
					continue
				}
				if lb(l, i) <= sum.S[l].U {
					delta += float64(sum.S[l].Count)
				}
			}
			if delta < bestDelta || (delta == bestDelta && (best == -1 || i < best)) {
				best, bestDelta = i, delta
			}
		}
		assign(g, best)
	}
	sortGroups(res)
	return res, nil
}

// sortGroups orders each group's member list; group identity and content
// are unchanged. Deterministic member order makes results reproducible.
func sortGroups(res *Result) {
	for _, g := range res.Groups {
		sort.Ints(g)
	}
}

// GroupLBs computes LB(P_j^S, G_g) of Theorem 6 (§5.1) for every
// S-partition and group: the minimum over the group's member partitions
// of Corollary 2's per-partition threshold, so an S object replicates to
// G_g iff its pivot distance reaches the table entry. The second
// MapReduce job's mappers route replicas with exactly this table — it is
// the LB(P_j^S, G_i) side data of Algorithm 3's setup hook.
func GroupLBs(pp *voronoi.Partitioner, sum *voronoi.Summary, thetas []float64, res *Result) [][]float64 {
	m := pp.NumPartitions()
	out := make([][]float64, m) // out[sPartition][group]
	for l := 0; l < m; l++ {
		row := make([]float64, res.NumGroups())
		for g := range row {
			row[g] = math.Inf(1)
		}
		out[l] = row
	}
	for g, parts := range res.Groups {
		for _, i := range parts {
			if sum.R[i].Count == 0 {
				continue
			}
			for l := 0; l < m; l++ {
				v := voronoi.LBReplica(pp.PivotDist(i, l), sum.R[i].U, thetas[i])
				if v < out[l][g] {
					out[l][g] = v
				}
			}
		}
	}
	return out
}

// ExactReplication evaluates RP(S) of Theorem 7 (§5.2) exactly: given
// each S-partition's full ascending pivot-distance list, it counts how
// many (object, group) replicas the routing rule of Theorem 6 produces —
// the "replication of S" quantity Figure 7b plots and greedy grouping
// tries to minimize.
func ExactReplication(groupLBs [][]float64, sDists [][]float64) int64 {
	var total int64
	for l, row := range groupLBs {
		ds := sDists[l]
		for _, lbv := range row {
			// Objects with |s,p_l| ≥ lbv replicate; ds is ascending.
			idx := sort.SearchFloat64s(ds, lbv)
			total += int64(len(ds) - idx)
		}
	}
	return total
}

// ApproxReplication evaluates Equation 12's coarse estimate of RP(S)
// (§5.2.2): an entire S-partition counts as replicated to a group as
// soon as any of its objects would be — i.e. as soon as LB(P_j^S, G_i)
// falls to or below the partition's largest pivot distance U(P_j^S) from
// table TS. Greedy grouping optimizes this quantity because the exact
// Theorem-7 count is too expensive to re-evaluate at every growth step.
func ApproxReplication(groupLBs [][]float64, sum *voronoi.Summary) int64 {
	var total int64
	for l, row := range groupLBs {
		if sum.S[l].Count == 0 {
			continue
		}
		for _, lbv := range row {
			if lbv <= sum.S[l].U {
				total += int64(sum.S[l].Count)
			}
		}
	}
	return total
}
